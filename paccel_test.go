package paccel_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"paccel"
)

// TestFacadeEndToEnd drives the public API exactly as the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	net := paccel.NewSimNetwork(paccel.SimConfig{})
	alice, err := paccel.NewEndpoint(paccel.Config{Transport: net.Endpoint("A")})
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := paccel.NewEndpoint(paccel.Config{Transport: net.Endpoint("B")})
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	a, err := alice.Dial(paccel.PeerSpec{
		Addr: "B", LocalID: []byte("alice"), RemoteID: []byte("bob"),
		LocalPort: 1, RemotePort: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bob.Dial(paccel.PeerSpec{
		Addr: "A", LocalID: []byte("bob"), RemoteID: []byte("alice"),
		LocalPort: 2, RemotePort: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	b.OnDeliver(func(p []byte) { got <- append([]byte(nil), p...) })
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, []byte("hello")) {
			t.Fatalf("got %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
	st := a.Stats()
	if st.FastSends != 1 || st.ConnIDSent != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFacadeTelemetry drives the observability surface end to end: a
// recorder installed through Config.Telemetry fills histograms and the
// event ring, the torn-read-free EndpointStats come from Snapshot(), and
// the debug HTTP endpoint serves the JSON view.
func TestFacadeTelemetry(t *testing.T) {
	rec := paccel.NewTelemetry(paccel.TelemetryOptions{})
	net := paccel.NewSimNetwork(paccel.SimConfig{})
	net.SetTelemetry(rec)
	mk := func(addr string) *paccel.Endpoint {
		ep, err := paccel.NewEndpoint(paccel.Config{
			Transport: net.Endpoint(addr),
			Telemetry: rec, TelemetrySampleEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	alice, bob := mk("A"), mk("B")
	a, err := alice.Dial(paccel.PeerSpec{Addr: "B", LocalID: []byte("alice"), RemoteID: []byte("bob"), LocalPort: 1, RemotePort: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Dial(paccel.PeerSpec{Addr: "A", LocalID: []byte("bob"), RemoteID: []byte("alice"), LocalPort: 2, RemotePort: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := a.Send([]byte("observe")); err != nil {
			t.Fatal(err)
		}
	}

	snap := rec.Snapshot(false)
	if snap.EventsTotal < 2 { // the two Dials log "active" transitions
		t.Fatalf("EventsTotal = %d, want >= 2", snap.EventsTotal)
	}
	var sendPre paccel.TelemetryHistogram
	for _, h := range snap.Ops {
		if h.Op == "send_pre" {
			sendPre = h
		}
	}
	if sendPre.Count < 8 {
		t.Fatalf("send_pre count = %d, want >= 8 at SampleEvery=1", sendPre.Count)
	}
	if st := bob.Snapshot(); st.Received == 0 {
		t.Fatalf("endpoint snapshot = %+v, want Received > 0", st)
	}

	srv, err := paccel.ServeTelemetry("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got paccel.TelemetrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.EventsTotal != rec.Snapshot(false).EventsTotal {
		t.Fatalf("served EventsTotal = %d", got.EventsTotal)
	}
}

func TestFacadeErrorsExported(t *testing.T) {
	net := paccel.NewSimNetwork(paccel.SimConfig{})
	ep, err := paccel.NewEndpoint(paccel.Config{Transport: net.Endpoint("X")})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ep.Dial(paccel.PeerSpec{Addr: "Y", LocalID: []byte("x"), RemoteID: []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("z")); !errors.Is(err, paccel.ErrConnClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeGroup(t *testing.T) {
	mesh, err := paccel.NewGroupMesh([]string{"a", "b"}, paccel.SimConfig{}, paccel.GroupTotal, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	got := make(chan string, 2)
	mesh.Groups["b"].OnDeliver(func(origin string, p []byte) { got <- origin + ":" + string(p) })
	if err := mesh.Groups["a"].Send([]byte("ordered")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "a:ordered" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestFacadeUDP(t *testing.T) {
	tr, err := paccel.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if tr.LocalAddr() == "" {
		t.Fatal("no local addr")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDefaults(t *testing.T) {
	if paccel.DefaultStack == nil {
		t.Fatal("DefaultStack nil")
	}
	cfg := paccel.PaperSimConfig()
	if cfg.Latency != 35*time.Microsecond {
		t.Fatalf("paper latency = %v", cfg.Latency)
	}
	if cfg.BitRate != 140e6 {
		t.Fatalf("paper bit rate = %v", cfg.BitRate)
	}
}

func TestBuildStackOptions(t *testing.T) {
	net := paccel.NewSimNetwork(paccel.SimConfig{})
	var silencePeer []byte
	var oneWays int
	build := paccel.BuildStack(paccel.StackOptions{
		WindowSize:    4,
		FragThreshold: 64,
		AdaptiveRTO:   true,
		Heartbeat:     20 * time.Millisecond,
		OnSilence:     func(peer []byte, d time.Duration) { silencePeer = peer },
		Stamp:         func(time.Duration) { oneWays++ },
	})
	mk := func(addr string) *paccel.Endpoint {
		ep, err := paccel.NewEndpoint(paccel.Config{Transport: net.Endpoint(addr), Build: build})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	epA, epB := mk("A"), mk("B")
	a, err := epA.Dial(paccel.PeerSpec{Addr: "B", LocalID: []byte("a"), RemoteID: []byte("b"), LocalPort: 1, RemotePort: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(paccel.PeerSpec{Addr: "A", LocalID: []byte("b"), RemoteID: []byte("a"), LocalPort: 2, RemotePort: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 4)
	b.OnDeliver(func(p []byte) { got <- append([]byte(nil), p...) })
	// Oversized payload exercises the custom frag threshold.
	big := bytes.Repeat([]byte("z"), 200)
	if err := a.Send(big); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, big) {
			t.Fatal("fragmented payload corrupted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
	// A small (unfragmented) message passes the stamp layer and samples
	// one-way latency; fragments bypass it (reassembled synthetically).
	if err := a.Send([]byte("small")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("small send timeout")
	}
	if oneWays == 0 {
		t.Fatal("stamp callback never fired")
	}
	_ = silencePeer // silence requires a real partition; wiring is covered elsewhere
	// The doubled-window variant builds and runs too.
	if _, err := paccel.BuildStack(paccel.StackOptions{DoubleWindow: true})(paccel.PeerSpec{LocalID: []byte("x"), RemoteID: []byte("y")}, 0); err != nil {
		t.Fatal(err)
	}
}

package paccel_test

import (
	"fmt"

	"paccel"
)

// Example shows the basic accelerated exchange: dial both ends over an
// in-memory network and send.
func Example() {
	net := paccel.NewSimNetwork(paccel.SimConfig{})
	alice, _ := paccel.NewEndpoint(paccel.Config{Transport: net.Endpoint("A")})
	defer alice.Close()
	bob, _ := paccel.NewEndpoint(paccel.Config{Transport: net.Endpoint("B")})
	defer bob.Close()

	a, _ := alice.Dial(paccel.PeerSpec{
		Addr: "B", LocalID: []byte("alice"), RemoteID: []byte("bob"),
		LocalPort: 1, RemotePort: 2,
	})
	b, _ := bob.Dial(paccel.PeerSpec{
		Addr: "A", LocalID: []byte("bob"), RemoteID: []byte("alice"),
		LocalPort: 2, RemotePort: 1,
	})

	done := make(chan struct{})
	b.OnDeliver(func(p []byte) {
		fmt.Printf("bob got %q\n", p)
		close(done)
	})
	a.Send([]byte("hello"))
	<-done
	// Output: bob got "hello"
}

// ExampleNewRPCClient demonstrates correlated request/response calls.
func ExampleNewRPCClient() {
	net := paccel.NewSimNetwork(paccel.SimConfig{})
	cliEP, _ := paccel.NewEndpoint(paccel.Config{Transport: net.Endpoint("C")})
	defer cliEP.Close()
	srvEP, _ := paccel.NewEndpoint(paccel.Config{Transport: net.Endpoint("S")})
	defer srvEP.Close()
	cli, _ := cliEP.Dial(paccel.PeerSpec{Addr: "S", LocalID: []byte("c"), RemoteID: []byte("s"), LocalPort: 1, RemotePort: 2})
	srv, _ := srvEP.Dial(paccel.PeerSpec{Addr: "C", LocalID: []byte("s"), RemoteID: []byte("c"), LocalPort: 2, RemotePort: 1})

	paccel.ServeRPC(srv, func(req []byte) []byte {
		return append([]byte("echo "), req...)
	})
	client := paccel.NewRPCClient(cli)
	defer client.Close()
	resp, _ := client.Call([]byte("42"))
	fmt.Printf("%s\n", resp)
	// Output: echo 42
}

// ExampleNewGroupMesh demonstrates totally-ordered multicast.
func ExampleNewGroupMesh() {
	mesh, _ := paccel.NewGroupMesh([]string{"a", "b"}, paccel.SimConfig{}, paccel.GroupTotal, "a")
	defer mesh.Close()
	done := make(chan struct{})
	mesh.Groups["b"].OnDeliver(func(origin string, p []byte) {
		fmt.Printf("%s said %q\n", origin, p)
		close(done)
	})
	mesh.Groups["a"].Send([]byte("ordered"))
	<-done
	// Output: a said "ordered"
}

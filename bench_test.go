// Benchmarks regenerating the paper's evaluation on today's hardware, one
// per table/figure (see EXPERIMENTS.md for the mapping), plus ablations
// of the design choices called out in DESIGN.md.
package paccel_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"paccel/internal/core"
	"paccel/internal/evsim"
	"paccel/internal/experiments"
	"paccel/internal/group"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/rpc"
	"paccel/internal/udp"
	"paccel/internal/vclock"
)

// pingPongBench runs closed-loop round trips, the Table 4 "#roundtrips/
// sec" and "one-way latency" rows.
func pingPongBench(b *testing.B, opt experiments.PairOptions, payload int) {
	b.Helper()
	p, err := experiments.NewPair(opt)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.B.OnDeliver(func(data []byte) {
		if err := p.B.Send(data); err != nil {
			b.Error(err)
		}
	})
	done := make(chan struct{}, 1)
	p.A.OnDeliver(func([]byte) { done <- struct{}{} })
	buf := make([]byte, payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.A.Send(buf); err != nil {
			b.Fatal(err)
		}
		<-done
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perOp/2000, "oneway-µs")
	b.ReportMetric(1e9/perOp, "rt/s")
}

// BenchmarkRoundTrip is Table 4 rows 1 and 3 on the Go implementation:
// accelerated 8-byte round trips over the in-memory network.
func BenchmarkRoundTrip(b *testing.B) {
	pingPongBench(b, experiments.PairOptions{}, 8)
}

// BenchmarkRoundTripCompiledFilters is the Exokernel-style ablation
// (§3.3): packet filters lowered to closures instead of interpreted.
func BenchmarkRoundTripCompiledFilters(b *testing.B) {
	pingPongBench(b, experiments.PairOptions{CompiledFilters: true}, 8)
}

// BenchmarkRoundTripDoubledWindow is the §5 layer-doubling experiment:
// the window layer stacked twice.
func BenchmarkRoundTripDoubledWindow(b *testing.B) {
	pingPongBench(b, experiments.PairOptions{Build: experiments.DoubledWindowStack}, 8)
}

// BenchmarkSecureRoundTrip is the encrypted channel on the fast path:
// 8-byte round trips with AES-GCM sealing every frame in both
// directions (DESIGN.md §17). Compare against BenchmarkRoundTrip for
// the end-to-end cost of the crypto.
func BenchmarkSecureRoundTrip(b *testing.B) {
	pingPongBench(b, experiments.PairOptions{Build: experiments.SecureLeanStack}, 8)
}

// BenchmarkSecureAllocs is the encrypted steady-state send: seal in the
// send filter, flush, far-side authenticated open and delivery — the
// perf gate holds this at 0 allocs/op.
func BenchmarkSecureAllocs(b *testing.B) {
	p, err := experiments.NewPair(experiments.PairOptions{Build: experiments.SecureLeanStack})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.B.OnDeliver(func([]byte) {})
	payload := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.A.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundTripBaseline is the §1 comparison: the same four layers
// run traditionally (synchronous layered processing, per-layer padded
// headers, identification on every message).
func BenchmarkRoundTripBaseline(b *testing.B) {
	p, err := experiments.NewBaselinePair(netsim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.B.OnDeliver(func(data []byte) {
		if err := p.B.Send(data); err != nil {
			b.Error(err)
		}
	})
	done := make(chan struct{}, 1)
	p.A.OnDeliver(func([]byte) { done <- struct{}{} })
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.A.Send(buf); err != nil {
			b.Fatal(err)
		}
		<-done
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(1e9/perOp, "rt/s")
}

// streamBench is Table 4 rows 2 and 4: one-way throughput.
func streamBench(b *testing.B, payload int) {
	b.Helper()
	p, err := experiments.NewPair(experiments.PairOptions{
		NetConfig: netsim.Config{MTU: 64 << 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.SetBytes(int64(payload))
	b.ReportAllocs()
	b.ResetTimer()
	msgs, _, err := p.StreamOneWay(b.N, make([]byte, payload))
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(msgs, "msgs/s")
}

// BenchmarkStreamThroughput8B is Table 4 row 2 (paper: 80,000 msgs/s).
func BenchmarkStreamThroughput8B(b *testing.B) { streamBench(b, 8) }

// BenchmarkBandwidth1K is Table 4 row 4 (paper: 15 MB/s).
func BenchmarkBandwidth1K(b *testing.B) { streamBench(b, 1024) }

// BenchmarkTable4Sim regenerates the whole of Table 4 on the calibrated
// 1996 testbed model.
func BenchmarkTable4Sim(b *testing.B) {
	var t4 evsim.Table4
	for i := 0; i < b.N; i++ {
		t4 = evsim.ComputeTable4(evsim.PaperCosts())
	}
	b.ReportMetric(float64(t4.OneWayLatency.Microseconds()), "sim-oneway-µs")
	b.ReportMetric(t4.MsgsPerSec, "sim-msgs/s")
	b.ReportMetric(t4.RoundTripsSec, "sim-rt/s")
	b.ReportMetric(t4.BandwidthMBs, "sim-MB/s")
}

// BenchmarkFig4Breakdown regenerates the Figure 4 round-trip timeline.
func BenchmarkFig4Breakdown(b *testing.B) {
	var rtt time.Duration
	for i := 0; i < b.N; i++ {
		_, res := evsim.FirstRoundTripTimeline(evsim.PaperCosts())
		rtt = res.FirstRTT
	}
	b.ReportMetric(float64(rtt.Microseconds()), "sim-rtt-µs")
}

// BenchmarkFig5Sweep regenerates the Figure 5 latency-vs-rate curves and
// reports the two saturation points (paper: ~1900 rt/s with GC after each
// receive, ~6000 rt/s with occasional GC).
func BenchmarkFig5Sweep(b *testing.B) {
	var gcRate, occRate float64
	for i := 0; i < b.N; i++ {
		gcRate, _ = evsim.MaxRoundTripRate(evsim.PaperCosts(), 800)
		noGC := evsim.PaperCosts()
		noGC.GCEveryReceive = false
		occRate, _ = evsim.MaxRoundTripRate(noGC, 800)
	}
	b.ReportMetric(gcRate, "sim-rt/s-gc")
	b.ReportMetric(occRate, "sim-rt/s-occ")
}

// BenchmarkLayerScalingSim reports the §5 layer-doubling saturation cost
// on the model.
func BenchmarkLayerScalingSim(b *testing.B) {
	var base, doubled float64
	for i := 0; i < b.N; i++ {
		cm := evsim.PaperCosts()
		base, _ = evsim.MaxRoundTripRate(cm, 600)
		cm.ExtraLayers = 1
		doubled, _ = evsim.MaxRoundTripRate(cm, 600)
	}
	b.ReportMetric(base, "rt/s-4layer")
	b.ReportMetric(doubled, "rt/s-5layer")
}

// BenchmarkUnacceleratedSim reports the original-Horus model round trip
// (paper: ~1.5 ms vs the PA's 170 µs).
func BenchmarkUnacceleratedSim(b *testing.B) {
	um := evsim.PaperUnaccelerated()
	var rtt time.Duration
	for i := 0; i < b.N; i++ {
		rtt = um.RoundTrip(8)
	}
	b.ReportMetric(float64(rtt.Microseconds()), "sim-rtt-µs")
}

// BenchmarkSendOneWay measures a single accelerated Send (delivery
// inline on the synchronous network), the finest-grained critical path.
func BenchmarkSendOneWay(b *testing.B) {
	p, err := experiments.NewPair(experiments.PairOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.B.OnDeliver(func([]byte) {})
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := p.A.Send(buf)
			if err == nil {
				break
			}
			if errors.Is(err, core.ErrBacklogFull) {
				time.Sleep(5 * time.Microsecond) // window backpressure
				continue
			}
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupFIFOMulticast measures one FIFO multicast (send + local
// delivery + fan-out to 3 peers) — the paper's multicast extension.
func BenchmarkGroupFIFOMulticast(b *testing.B) {
	m, err := group.NewRealMesh([]string{"a", "b", "c", "d"}, netsim.Config{}, group.FIFO, "")
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := m.Groups["a"].Send(payload)
			if err == nil {
				break
			}
			if errors.Is(err, core.ErrBacklogFull) {
				time.Sleep(5 * time.Microsecond) // window backpressure
				continue
			}
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupTotalOrder measures one sequenced multicast through the
// sequencer (send → sequencer → ordered fan-out).
func BenchmarkGroupTotalOrder(b *testing.B) {
	m, err := group.NewRealMesh([]string{"seq", "b", "c", "d"}, netsim.Config{}, group.Total, "seq")
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	delivered := make(chan struct{}, 1)
	m.Groups["b"].OnDeliver(func(string, []byte) { delivered <- struct{}{} })
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Groups["b"].Send(payload); err != nil {
			b.Fatal(err)
		}
		<-delivered // own message back at the sequenced position
	}
}

// BenchmarkGroupFanout measures one whole-group multicast through the
// template+stamp fanout engine (DESIGN.md §16): mesh-wired groups hand
// whole-group sends to core.Fanout — one header build and filter pass,
// one stamp per member, one batched transmit.
func BenchmarkGroupFanout(b *testing.B) {
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}
	m, err := group.NewRealMesh(names, netsim.Config{}, group.FIFO, "")
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := m.Groups["m0"].Send(payload)
			if err == nil {
				break
			}
			if errors.Is(err, core.ErrBacklogFull) {
				time.Sleep(5 * time.Microsecond) // window backpressure
				continue
			}
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupFanoutAllocs is the engine's zero-allocation gate at the
// perf-gate tier: a 64-member fanout over the lean stateless stack must
// stay at 0 allocs/op steady-state (the same invariant TestAllocBudget
// enforces at 16 members).
func BenchmarkGroupFanoutAllocs(b *testing.B) {
	net := netsim.New(vclock.Real{}, netsim.Config{})
	sink := net.Endpoint("sink")
	sink.SetHandler(func(string, []byte) {})
	ep, err := core.NewEndpoint(core.Config{
		Transport: net.Endpoint("fan"), Build: experiments.LeanStack,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ep.Close()
	conns := make([]*core.Conn, 64)
	for i := range conns {
		conns[i], err = ep.Dial(core.PeerSpec{
			Addr:    "sink",
			LocalID: []byte("fan"), RemoteID: []byte(fmt.Sprintf("m%02d", i)),
			LocalPort: uint16(i + 1), RemotePort: uint16(i + 1),
			Epoch: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	fan, err := core.NewFanout(ep, conns...)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 32)
	for i := 0; i < 256; i++ { // warm pools, prime prediction
		if err := fan.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fan.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerLoadSim runs the §6 Maximum Load analysis.
func BenchmarkServerLoadSim(b *testing.B) {
	cm := evsim.PaperCosts()
	cm.GCEveryReceive = false
	var r evsim.ServerLoadResult
	for i := 0; i < b.N; i++ {
		r = evsim.ServerLoad(evsim.ServerLoadConfig{Model: cm, Clients: 64, Processors: 4})
	}
	b.ReportMetric(r.ServerCap, "sim-rpc/s-4cpu")
}

// BenchmarkMultiClientServer measures a server fanning 4 concurrent
// clients (§6), the real-mode companion to BenchmarkServerLoadSim.
func BenchmarkMultiClientServer(b *testing.B) {
	net := netsim.New(vclock.Real{}, netsim.Config{})
	server, err := core.NewEndpoint(core.Config{
		Transport: net.Endpoint("server"),
		Accept: func(remote layers.IdentInfo, netSrc string) (core.PeerSpec, bool) {
			return core.PeerSpec{
				Addr:      netSrc,
				LocalID:   bytes.TrimRight(remote.Dst, "\x00"),
				RemoteID:  bytes.TrimRight(remote.Src, "\x00"),
				LocalPort: remote.DstPort, RemotePort: remote.SrcPort,
				Epoch: remote.Epoch,
			}, true
		},
		OnConn: func(c *core.Conn) {
			c.OnDeliver(func(req []byte) {
				if err := c.Send(req); err != nil {
					b.Error(err)
				}
			})
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()

	const clients = 4
	type cli struct {
		conn *core.Conn
		done chan struct{}
	}
	cs := make([]cli, clients)
	for i := range cs {
		host := fmt.Sprintf("c%d", i)
		ep, err := core.NewEndpoint(core.Config{Transport: net.Endpoint(host)})
		if err != nil {
			b.Fatal(err)
		}
		defer ep.Close()
		conn, err := ep.Dial(core.PeerSpec{
			Addr: "server", LocalID: []byte(host), RemoteID: []byte("srv"),
			LocalPort: uint16(i + 10), RemotePort: 1, Epoch: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{}, 1)
		conn.OnDeliver(func([]byte) { done <- struct{}{} })
		cs[i] = cli{conn: conn, done: done}
	}
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine grabs one client slot round-robin.
		i := int(rrCounter.Add(1)) % clients
		c := cs[i]
		for pb.Next() {
			if err := c.conn.Send(payload); err != nil {
				b.Error(err)
				return
			}
			<-c.done
		}
	})
}

var rrCounter atomic.Int64

// BenchmarkEndpointParallelRecv measures the router under concurrent
// receives across 8 connections: "sharded" is the production cookie
// router, "single-lock" the pre-sharding ablation
// (core.Config.SingleLockRouter). Run with GOMAXPROCS ≥ 8 to see the
// contention difference.
func BenchmarkEndpointParallelRecv(b *testing.B) {
	b.Run("sharded", func(b *testing.B) {
		experiments.BenchParallelRecv(b, experiments.ParallelRecvConns, false)
	})
	b.Run("single-lock", func(b *testing.B) {
		experiments.BenchParallelRecv(b, experiments.ParallelRecvConns, true)
	})
}

// BenchmarkFastSendAllocs measures the accelerated send critical path
// (lean checksum+frag+ident stack, instantaneous network) — the far
// side's delivery runs inside the same call, so 0 allocs/op means the
// whole send+deliver chain is allocation-free.
func BenchmarkFastSendAllocs(b *testing.B) {
	p, err := experiments.NewPair(experiments.PairOptions{Build: experiments.LeanStack})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.B.OnDeliver(func([]byte) {})
	payload := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.A.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastDeliverAllocs measures the routed delivery critical path
// alone: a captured cookie-only frame replayed into the endpoint's
// receive handler (router lookup, packet filter, fast-path delivery,
// application callback).
func BenchmarkFastDeliverAllocs(b *testing.B) {
	h, err := experiments.NewRecvHarness(1, false)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Deliver(0)
	}
}

// BenchmarkRPC measures one correlated request/response call over an
// accelerated connection (the §6 workload, via the rpc package).
func BenchmarkRPC(b *testing.B) {
	p, err := experiments.NewPair(experiments.PairOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	rpc.Serve(p.B, func(req []byte) []byte { return req })
	client := rpc.NewClient(p.A)
	defer client.Close()
	req := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.CallTimeout(req, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(1e9/perOp, "rpc/s")
}

// BenchmarkGSOSendBatchAllocs measures the kernel-offload batch send
// path over real UDP loopback: one SendBatch of a 64×512B equal-size
// burst (one UDP_SEGMENT super-datagram's worth when the kernel
// supports it, one plain sendmmsg chunk otherwise). The Allocs suffix
// puts it under the perf gate's zero-tolerance rule: the steady-state
// batch send path promises 0 allocs/op on every tier.
func BenchmarkGSOSendBatchAllocs(b *testing.B) {
	tx, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer tx.Close()
	rx, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer rx.Close()
	ds := make([][]byte, 64)
	for i := range ds {
		ds[i] = make([]byte, 512)
	}
	dst := rx.LocalAddr()
	for i := 0; i < 32; i++ {
		if _, err := tx.SendBatch(dst, ds); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.SendBatch(dst, ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedRecvBurst measures the SO_REUSEPORT receive tier
// end-to-end: a 64-datagram burst into a 2-queue sharded listener,
// timed until every datagram of the burst has been delivered (closed
// loop, so the number is burst latency through kernel hash + pinned
// read loops + GRO split, not raw send cost). On platforms without
// SO_REUSEPORT the listener degrades to one socket and the benchmark
// still runs.
func BenchmarkShardedRecvBurst(b *testing.B) {
	rx, err := udp.ListenSharded("127.0.0.1:0", 2)
	if err != nil {
		b.Fatal(err)
	}
	defer rx.Close()
	var got atomic.Int64
	done := make(chan struct{}, 1)
	rx.SetHandler(func(string, []byte) {
		if got.Add(1)%64 == 0 {
			select {
			case done <- struct{}{}:
			default:
			}
		}
	})
	tx, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer tx.Close()
	ds := make([][]byte, 64)
	for i := range ds {
		ds[i] = make([]byte, 512)
	}
	dst := rx.LocalAddr()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.SendBatch(dst, ds); err != nil {
			b.Fatal(err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			b.Fatalf("burst %d not delivered (got %d datagrams)", i, got.Load())
		}
	}
}

// BenchmarkRouterDeliverLoaded measures the routed delivery fast path
// with the cookie table loaded to 100k learned entries — the fleet-
// reboot regime. The open-addressed cache-packed table keeps this
// within a few ns of the empty-table BenchmarkFastDeliverAllocs number.
func BenchmarkRouterDeliverLoaded(b *testing.B) {
	const entries = 100_000
	h, err := experiments.NewRecvHarness(1, false)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	if n := h.Server.BindBenchCookies(h.Conns[0], 1<<20, entries, true); n != entries {
		b.Fatalf("bound %d of %d synthetic routes", n, entries)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Deliver(0)
	}
}

// BenchmarkAdmissionShedAllocs measures the admission reject path: an
// identified first message hitting a full endpoint with the storm
// detector enabled. The Allocs suffix puts it under the perf gate's
// zero-tolerance rule — shedding must stay free while the endpoint is
// drowning, or shedding itself becomes the overload.
func BenchmarkAdmissionShedAllocs(b *testing.B) {
	sh, err := experiments.NewShedHarness(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	defer sh.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.Shed()
	}
	b.StopTimer()
	if got := sh.Server.Snapshot().ShedTotal; got < uint64(b.N) {
		b.Fatalf("only %d of %d replays were shed", got, b.N)
	}
}

// BenchmarkConnChurn measures one full local connect/disconnect cycle —
// Dial (admission check, routing insert, stack build) plus Close
// (routing removal, teardown) — the per-connection cost a redialing
// fleet pays on the server.
func BenchmarkConnChurn(b *testing.B) {
	net := netsim.New(vclock.Real{}, netsim.Config{})
	ep, err := core.NewEndpoint(core.Config{Transport: net.Endpoint("S")})
	if err != nil {
		b.Fatal(err)
	}
	defer ep.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := ep.Dial(core.PeerSpec{
			Addr: "X", LocalID: []byte("s"), RemoteID: []byte("x"),
			LocalPort: uint16(i%65000 + 1), RemotePort: 9, Epoch: uint32(i / 65000),
		})
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// Package filter implements the Protocol Accelerator's packet filters
// (paper §3.3, Table 2).
//
// A packet filter is a small stack-machine program, constructed at run
// time by the protocol layers themselves, that handles the
// message-specific header information the PA cannot predict. Unusually,
// filters run in both paths: the send filter *writes* header fields
// (lengths, checksums, timestamps) via POP_FIELD, and the delivery filter
// verifies them. Programs have no loops or calls, so they can be validated
// in advance and their exact stack need computed (§3.3).
//
// A program finishes with an integer status:
//
//	StatusOK   (0) — fast path may proceed
//	StatusDrop     — discard the message (e.g. checksum mismatch)
//	anything else  — fall back to the layered slow path (e.g. a message
//	                 too large to send unfragmented)
//
// This reconciles the paper's Figure 3 (boolean use) with §3.3's
// "non-zero value → execute the pre-processing phase".
package filter

import "fmt"

// Op is a packet filter operation code (paper Table 2).
type Op uint8

// The operation set. PushConst..Abort are the paper's Table 2; Dup, Swap
// and Not are the "customized instructions" convenience ops; the *Fast
// variants are produced automatically by Program.Compile for conveniently
// aligned fields.
const (
	// Nop does nothing; patched-out instructions become Nops.
	Nop Op = iota
	// PushConst pushes Arg onto the stack.
	PushConst
	// PushField pushes the value of Field.
	PushField
	// PushSize pushes the size of the message payload in bytes.
	PushSize
	// PushTime pushes the engine-supplied message timestamp (Env.Time).
	// It is one of the "customized instructions": the paper names
	// timestamps as message-specific information, which only a filter
	// can fill in.
	PushTime
	// Digest pushes a message digest of the payload, computed by the
	// registered digest function identified by Dig.
	Digest
	// PopField pops the top of stack into Field. This is the write
	// capability that makes send filters able to fill in headers.
	PopField
	// Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr pop two entries,
	// apply the operation (second-from-top OP top) and push the result.
	Add
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
	// Eq, Ne, Lt, Le, Gt, Ge pop two entries and push 1 if
	// (second-from-top CMP top), else 0. Comparisons are unsigned.
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	// Not pops the top entry and pushes its logical negation (1 if
	// zero, else 0).
	Not
	// Dup duplicates the top entry.
	Dup
	// Swap exchanges the top two entries.
	Swap
	// Return finishes the program with status Arg.
	Return
	// Abort pops the top entry; if it is non-zero the program finishes
	// with status Arg, otherwise execution continues.
	Abort
	// Seal invokes the environment's AEAD to encrypt the payload in
	// place and write the authentication tag into the message-specific
	// blob field identified by Field. A non-zero AEAD result finishes
	// the program with that status; a missing AEAD is a fault. Like
	// Digest, it is a "customized instruction" (§3.3): the tag is
	// message-specific information only a filter can fill in.
	Seal
	// Open is Seal's delivery-path dual: verify the tag in Field against
	// the payload and decrypt in place, finishing with the AEAD's status
	// when it is non-zero (conventionally StatusDrop on a forgery).
	Open
)

var opNames = map[Op]string{
	Nop: "nop", PushConst: "push.const", PushField: "push.field",
	PushSize: "push.size", PushTime: "push.time", Digest: "digest", PopField: "pop.field",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	Not: "not", Dup: "dup", Swap: "swap",
	Return: "return", Abort: "abort",
	Seal: "seal", Open: "open",
}

// String returns the assembler mnemonic for the op.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// stackEffect returns (pops, pushes) for the op. Return and Abort are
// handled specially by validation.
func (o Op) stackEffect() (pops, pushes int) {
	switch o {
	case Nop:
		return 0, 0
	case PushConst, PushField, PushSize, PushTime, Digest:
		return 0, 1
	case PopField:
		return 1, 0
	case Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
		Eq, Ne, Lt, Le, Gt, Ge:
		return 2, 1
	case Not:
		return 1, 1
	case Dup:
		return 1, 2
	case Swap:
		return 2, 2
	case Return:
		return 0, 0
	case Abort:
		return 1, 0
	case Seal, Open:
		return 0, 0
	}
	return 0, 0
}

// binary reports whether the op is a two-operand arithmetic/comparison.
func (o Op) binary() bool {
	switch o {
	case Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
		Eq, Ne, Lt, Le, Gt, Ge:
		return true
	}
	return false
}

// Result statuses. Any status other than StatusOK and StatusDrop requests
// the layered slow path; layers may use distinct non-zero values to tag
// the reason.
const (
	// StatusOK allows the fast path to proceed.
	StatusOK = 0
	// StatusSlow is the conventional "fall back to the protocol stack"
	// status.
	StatusSlow = 1
	// StatusDrop discards the message (delivery path only; on the send
	// path it is treated as a send error).
	StatusDrop = -1
	// StatusFault is returned by the VM itself on a runtime fault
	// (division by zero). Treated like StatusDrop by the delivery path.
	StatusFault = -2
)

package filter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paccel/internal/header"
)

func TestOptimizedSendFilter(t *testing.T) {
	s, length, cksum, _ := testSchema(t)
	prog := sendProgram(t, length, cksum, 1024)
	opt := prog.Optimize()
	// The canonical send filter (4 guard ops + two fill pairs) fuses
	// into 3 steps.
	if len(opt.steps) >= prog.Len() {
		t.Fatalf("no fusion: %d steps from %d instructions", len(opt.steps), prog.Len())
	}
	env := newEnv(s, []byte("payload!"))
	if got := opt.Run(env); got != StatusOK {
		t.Fatalf("optimized run = %d", got)
	}
	if got := length.Read(env.Hdr[header.MsgSpec], env.Order); got != 8 {
		t.Fatalf("len = %d", got)
	}
	if got := cksum.Read(env.Hdr[header.MsgSpec], env.Order); got != InternetChecksum([]byte("payload!")) {
		t.Fatalf("ck = %#x", got)
	}
	// The oversize guard still fires.
	big := newEnv(s, make([]byte, 2048))
	if got := opt.Run(big); got != StatusSlow {
		t.Fatalf("oversize = %d", got)
	}
}

func TestOptimizedRecvFilter(t *testing.T) {
	s, length, cksum, _ := testSchema(t)
	send := sendProgram(t, length, cksum, 1024)
	recv := recvProgram(t, length, cksum).Optimize()
	env := newEnv(s, []byte("verify me"))
	if send.Run(env) != StatusOK {
		t.Fatal("send failed")
	}
	if got := recv.Run(env); got != StatusOK {
		t.Fatalf("recv = %d", got)
	}
	env.Payload[0] ^= 1
	if got := recv.Run(env); got != StatusDrop {
		t.Fatalf("corrupt recv = %d", got)
	}
}

func TestOptimizedTimestampFusion(t *testing.T) {
	s := header.New()
	ts, err := s.AddField(header.MsgSpec, "stamp", "ts", 32, header.DontCare)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	b.PushTime()
	b.PopField(ts)
	prog := b.MustBuild()
	opt := prog.Optimize()
	if len(opt.steps) != 1 {
		t.Fatalf("steps = %d, want 1", len(opt.steps))
	}
	env := newEnv(s, nil)
	env.Time = 987654
	opt.Run(env)
	if got := ts.Read(env.Hdr[header.MsgSpec], env.Order); got != 987654 {
		t.Fatalf("ts = %d", got)
	}
}

func TestOptimizedConstComparison(t *testing.T) {
	s, _, _, seq := testSchema(t)
	b := NewBuilder()
	b.PushField(seq)
	b.PushConst(7)
	b.Arith(Ne)
	b.Abort(StatusSlow)
	prog := b.MustBuild()
	opt := prog.Optimize()
	if len(opt.steps) != 1 {
		t.Fatalf("steps = %d", len(opt.steps))
	}
	env := newEnv(s, nil)
	seq.Write(env.Hdr[header.ProtoSpec], env.Order, 7)
	if opt.Run(env) != StatusOK {
		t.Fatal("match rejected")
	}
	seq.Write(env.Hdr[header.ProtoSpec], env.Order, 8)
	if opt.Run(env) != StatusSlow {
		t.Fatal("mismatch accepted")
	}
}

// Property: Optimize agrees with the interpreter on random programs.
func TestQuickOptimizedMatchesInterpreter(t *testing.T) {
	s, length, cksum, seq := testSchema(t)
	handles := []header.Handle{length, cksum, seq}
	f := func(seed int64, payload []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		depth := 0
		n := 2 + rng.Intn(16)
		for i := 0; i < n; i++ {
			switch k := rng.Intn(12); {
			case k < 4 || depth == 0:
				switch rng.Intn(5) {
				case 0:
					b.PushConst(int64(rng.Intn(1 << 16)))
				case 1:
					b.PushField(handles[rng.Intn(len(handles))])
				case 2:
					b.PushSize()
				case 3:
					b.PushTime()
				case 4:
					b.Digest(DigestInternet)
				}
				depth++
			case k < 7 && depth >= 2:
				ops := []Op{Add, Sub, Ne, Eq, Gt, Lt}
				b.Arith(ops[rng.Intn(len(ops))])
				depth--
			case k < 9:
				b.PopField(handles[rng.Intn(len(handles))])
				depth--
			default:
				b.Abort(int64(rng.Intn(3)))
				depth--
			}
		}
		p, err := b.Build()
		if err != nil {
			return true
		}
		o := p.Optimize()
		envI := newEnv(s, payload)
		envO := newEnv(s, payload)
		envI.Time, envO.Time = 42, 42
		if p.Run(envI) != o.Run(envO) {
			return false
		}
		for cl := header.Class(0); cl < header.NumClasses; cl++ {
			for i := range envI.Hdr[cl] {
				if envI.Hdr[cl][i] != envO.Hdr[cl][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOptimized(b *testing.B) {
	s, length, cksum, _ := testSchema(b)
	opt := sendProgram(b, length, cksum, 1024).Optimize()
	env := newEnv(s, make([]byte, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if opt.Run(env) != StatusOK {
			b.Fatal("filter failed")
		}
	}
}

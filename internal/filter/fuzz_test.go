package filter

import (
	"testing"

	"paccel/internal/header"
)

// FuzzAssemble feeds arbitrary text through the assembler: it must never
// panic, and anything it accepts must disassemble and reassemble to a
// program with identical behaviourally-relevant shape.
func FuzzAssemble(f *testing.F) {
	s := header.New()
	h1, _ := s.AddField(header.MsgSpec, "l", "len", 16, header.DontCare)
	h2, _ := s.AddField(header.ProtoSpec, "l", "seq", 32, header.DontCare)
	if err := s.Compile(); err != nil {
		f.Fatal(err)
	}
	_ = h1
	_ = h2
	resolve := SchemaResolver(s)
	f.Add("push.size\npop.field len\nreturn 0")
	f.Add("push.field seq\npush.const 3\nne\nabort 1")
	f.Add("; comment only")
	f.Add("digest inet16\npop.field len")
	f.Add("garbage op here")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src, resolve)
		if err != nil {
			return
		}
		p2, err := Assemble(p.Disassemble(), resolve)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, p.Disassemble())
		}
		if p2.Len() != p.Len() || p2.MaxStack() != p.MaxStack() {
			t.Fatalf("shape changed: %d/%d vs %d/%d",
				p.Len(), p.MaxStack(), p2.Len(), p2.MaxStack())
		}
	})
}

// FuzzRunNeverPanics executes accepted programs on arbitrary payloads.
func FuzzRunNeverPanics(f *testing.F) {
	s := header.New()
	ln, _ := s.AddField(header.MsgSpec, "l", "len", 16, header.DontCare)
	ck, _ := s.AddField(header.MsgSpec, "l", "ck", 16, header.DontCare)
	if err := s.Compile(); err != nil {
		f.Fatal(err)
	}
	resolve := SchemaResolver(s)
	_ = ln
	_ = ck
	f.Add("push.size\npop.field len\ndigest inet16\npop.field ck", []byte("payload"))
	f.Add("push.field len\npush.size\nne\nabort -1", []byte{})
	f.Fuzz(func(t *testing.T, src string, payload []byte) {
		p, err := Assemble(src, resolve)
		if err != nil {
			return
		}
		env := func() *Env {
			e := &Env{Payload: payload}
			for c := header.Class(0); c < header.NumClasses; c++ {
				e.Hdr[c] = make([]byte, s.Size(c))
			}
			return e
		}
		r1 := p.Run(env())
		r2 := p.Compile().Run(env())
		r3 := p.Optimize().Run(env())
		if r1 != r2 || r1 != r3 {
			t.Fatalf("strategies disagree: %d %d %d on %q", r1, r2, r3, src)
		}
	})
}

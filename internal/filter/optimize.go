package filter

import (
	"encoding/binary"

	"paccel/internal/bits"
	"paccel/internal/header"
)

// Optimize lowers the program like Compile, additionally fusing common
// instruction pairs into single steps — the paper's plan to "compile
// highly optimized code for the in-line by-pass function on the fly"
// (§6). The fused patterns are the ones the canonical filters are made
// of:
//
//	PushSize ; PopField f          → store the payload size directly
//	Digest d ; PopField f          → store the digest directly
//	PushTime ; PopField f          → store the timestamp directly
//	PushField f ; PushSize ; Ne ; Abort s → compare-and-maybe-return
//	PushField f ; Digest d ; Ne ; Abort s → verify-digest-and-maybe-return
//
// Fused steps skip the operand stack entirely. Semantics are identical to
// Run/Compile; TestQuickOptimizedMatchesInterpreter asserts it.
//
// SetConst patches are visible to an Optimized program only for
// instructions that were not fused away; optimize after patching, or
// avoid patching fused regions.
func (p *Program) Optimize() *Compiled {
	c := &Compiled{maxStack: p.maxStack}
	for i := 0; i < len(p.ins); {
		if st, used := fuse(p.ins[i:]); used > 0 {
			c.steps = append(c.steps, st)
			i += used
			continue
		}
		c.steps = append(c.steps, compileInstr(&p.ins[i]))
		i++
	}
	return c
}

// fuse recognizes a fusable prefix of ins and returns its step and length.
func fuse(ins []Instr) (step, int) {
	// value-producer ; PopField
	if len(ins) >= 2 && ins[1].Op == PopField {
		if w := fieldWriter(ins[1].Field); w != nil {
			switch ins[0].Op {
			case PushSize:
				return func(env *Env, stack []uint64) (int, bool, []uint64) {
					w(env, uint64(len(env.Payload)))
					return 0, false, stack
				}, 2
			case PushTime:
				return func(env *Env, stack []uint64) (int, bool, []uint64) {
					w(env, env.Time)
					return 0, false, stack
				}, 2
			case Digest:
				if fn, ok := digestFunc(ins[0].Dig); ok {
					return func(env *Env, stack []uint64) (int, bool, []uint64) {
						w(env, fn(env.Payload))
						return 0, false, stack
					}, 2
				}
			case PushConst:
				v := uint64(ins[0].Arg)
				return func(env *Env, stack []uint64) (int, bool, []uint64) {
					w(env, v)
					return 0, false, stack
				}, 2
			}
		}
	}
	// PushField f ; producer ; Ne ; Abort s
	if len(ins) >= 4 && ins[0].Op == PushField &&
		ins[2].Op == Ne && ins[3].Op == Abort {
		r := fieldReader(ins[0].Field)
		status := int(ins[3].Arg)
		switch ins[1].Op {
		case PushSize:
			return func(env *Env, stack []uint64) (int, bool, []uint64) {
				if r(env) != uint64(len(env.Payload)) {
					return status, true, stack
				}
				return 0, false, stack
			}, 4
		case Digest:
			if fn, ok := digestFunc(ins[1].Dig); ok {
				return func(env *Env, stack []uint64) (int, bool, []uint64) {
					if r(env) != fn(env.Payload) {
						return status, true, stack
					}
					return 0, false, stack
				}, 4
			}
		case PushConst:
			v := uint64(ins[1].Arg)
			return func(env *Env, stack []uint64) (int, bool, []uint64) {
				if r(env) != v {
					return status, true, stack
				}
				return 0, false, stack
			}, 4
		}
	}
	// PushSize ; PushConst k ; Gt ; Abort s  (the frag layer's guard)
	if len(ins) >= 4 && ins[0].Op == PushSize && ins[1].Op == PushConst &&
		ins[2].Op == Gt && ins[3].Op == Abort {
		limit := uint64(ins[1].Arg)
		status := int(ins[3].Arg)
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			if uint64(len(env.Payload)) > limit {
				return status, true, stack
			}
			return 0, false, stack
		}, 4
	}
	return nil, 0
}

// fieldWriter returns a direct store for h, or nil if the geometry has no
// fast path worth fusing.
func fieldWriter(h header.Handle) func(env *Env, v uint64) {
	cls, off, size := h.Class(), h.Offset(), h.SizeBits()
	if bits.Aligned(off, size) {
		byteOff := off / 8
		switch size {
		case 16:
			return func(env *Env, v uint64) {
				b := env.Hdr[cls][byteOff:]
				if env.Order == bits.LittleEndian {
					binary.LittleEndian.PutUint16(b, uint16(v))
				} else {
					binary.BigEndian.PutUint16(b, uint16(v))
				}
			}
		case 32:
			return func(env *Env, v uint64) {
				b := env.Hdr[cls][byteOff:]
				if env.Order == bits.LittleEndian {
					binary.LittleEndian.PutUint32(b, uint32(v))
				} else {
					binary.BigEndian.PutUint32(b, uint32(v))
				}
			}
		}
	}
	return func(env *Env, v uint64) {
		h.Write(env.Hdr[cls], env.Order, v)
	}
}

// fieldReader returns a direct load for h.
func fieldReader(h header.Handle) func(env *Env) uint64 {
	cls, off, size := h.Class(), h.Offset(), h.SizeBits()
	if bits.Aligned(off, size) {
		byteOff := off / 8
		switch size {
		case 16:
			return func(env *Env) uint64 {
				b := env.Hdr[cls][byteOff:]
				if env.Order == bits.LittleEndian {
					return uint64(binary.LittleEndian.Uint16(b))
				}
				return uint64(binary.BigEndian.Uint16(b))
			}
		case 32:
			return func(env *Env) uint64 {
				b := env.Hdr[cls][byteOff:]
				if env.Order == bits.LittleEndian {
					return uint64(binary.LittleEndian.Uint32(b))
				}
				return uint64(binary.BigEndian.Uint32(b))
			}
		}
	}
	return func(env *Env) uint64 {
		return h.Read(env.Hdr[cls], env.Order)
	}
}

package filter

import (
	"paccel/internal/bits"
	"paccel/internal/header"
)

// AEAD is the engine-supplied authenticated-encryption surface behind the
// Seal and Open ops. Seal encrypts env.Payload in place and writes the
// auth tag into the blob field tag; Open verifies and decrypts. Both
// return a filter status: 0 continues execution, anything else finishes
// the program with that status.
type AEAD interface {
	Seal(env *Env, tag header.Handle) int
	Open(env *Env, tag header.Handle) int
}

// Env is the execution environment of a packet filter run: the four class
// header regions of the message being sent or delivered, the payload, and
// the byte order of the message's aligned fields.
type Env struct {
	Hdr     [header.NumClasses][]byte
	Payload []byte
	Order   bits.ByteOrder
	// Time is the engine-supplied timestamp pushed by the PushTime op,
	// conventionally microseconds on the connection's clock.
	Time uint64
	// AEAD backs the Seal/Open ops; programs containing them fault when
	// it is nil.
	AEAD AEAD
}

// hdr returns the class header region a field lives in.
func (e *Env) hdr(h header.Handle) []byte { return e.Hdr[h.Class()] }

// Run interprets the program against env and returns the final status.
// A program that falls off the end returns StatusOK; runtime faults
// (division or modulo by zero, shift ≥ 64) return StatusFault.
//
// Run is allocation-free for programs whose MaxStack is at most 16 —
// "typically just a few entries" (§3.3).
func (p *Program) Run(env *Env) int {
	var small [16]uint64
	var stack []uint64
	if p.maxStack <= len(small) {
		stack = small[:0]
	} else {
		stack = make([]uint64, 0, p.maxStack)
	}
	for i := range p.ins {
		in := &p.ins[i]
		switch in.Op {
		case Nop:
		case PushConst:
			stack = append(stack, uint64(in.Arg))
		case PushField:
			stack = append(stack, in.Field.Read(env.hdr(in.Field), env.Order))
		case PushSize:
			stack = append(stack, uint64(len(env.Payload)))
		case PushTime:
			stack = append(stack, env.Time)
		case Digest:
			fn, ok := digestFunc(in.Dig)
			if !ok {
				return StatusFault
			}
			stack = append(stack, fn(env.Payload))
		case PopField:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			in.Field.Write(env.hdr(in.Field), env.Order, v)
		case Not:
			if stack[len(stack)-1] == 0 {
				stack[len(stack)-1] = 1
			} else {
				stack[len(stack)-1] = 0
			}
		case Dup:
			stack = append(stack, stack[len(stack)-1])
		case Swap:
			n := len(stack)
			stack[n-1], stack[n-2] = stack[n-2], stack[n-1]
		case Return:
			return int(in.Arg)
		case Abort:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v != 0 {
				return int(in.Arg)
			}
		case Seal:
			if env.AEAD == nil {
				return StatusFault
			}
			if s := env.AEAD.Seal(env, in.Field); s != 0 {
				return s
			}
		case Open:
			if env.AEAD == nil {
				return StatusFault
			}
			if s := env.AEAD.Open(env, in.Field); s != 0 {
				return s
			}
		default:
			a := stack[len(stack)-2]
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r, fault := binop(in.Op, a, b)
			if fault {
				return StatusFault
			}
			stack[len(stack)-1] = r
		}
	}
	return StatusOK
}

// binop applies a binary op to (a OP b). fault is true for division or
// modulo by zero and for shifts of 64 or more bits.
func binop(op Op, a, b uint64) (r uint64, fault bool) {
	switch op {
	case Add:
		return a + b, false
	case Sub:
		return a - b, false
	case Mul:
		return a * b, false
	case Div:
		if b == 0 {
			return 0, true
		}
		return a / b, false
	case Mod:
		if b == 0 {
			return 0, true
		}
		return a % b, false
	case And:
		return a & b, false
	case Or:
		return a | b, false
	case Xor:
		return a ^ b, false
	case Shl:
		if b >= 64 {
			return 0, true
		}
		return a << b, false
	case Shr:
		if b >= 64 {
			return 0, true
		}
		return a >> b, false
	case Eq:
		return b2u(a == b), false
	case Ne:
		return b2u(a != b), false
	case Lt:
		return b2u(a < b), false
	case Le:
		return b2u(a <= b), false
	case Gt:
		return b2u(a > b), false
	case Ge:
		return b2u(a >= b), false
	}
	return 0, true
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

package filter

import (
	"encoding/binary"
	"sync"

	"paccel/internal/bits"
)

// Compiled is a packet filter program lowered to a chain of pre-bound Go
// closures. It is this implementation's analogue of the Exokernel trick
// the paper intends to adopt — compiling filter programs to machine code
// (§3.3) — and is benchmarked against the interpreter as an ablation.
//
// Field accesses that turn out conveniently aligned are specialized to
// direct word loads/stores, the paper's "customized instructions".
// A Compiled program shares the underlying instruction storage with its
// Program, so SetConst patches take effect in both.
type Compiled struct {
	steps    []step
	maxStack int
}

// step executes one instruction. It returns (status, done); when done is
// false the status is ignored.
type step func(env *Env, stack []uint64) (int, bool, []uint64)

// Compile lowers the program. The result is safe for concurrent use to the
// same degree as the Program itself (SetConst is not synchronized).
func (p *Program) Compile() *Compiled {
	c := &Compiled{maxStack: p.maxStack}
	c.steps = make([]step, len(p.ins))
	for i := range p.ins {
		c.steps[i] = compileInstr(&p.ins[i])
	}
	return c
}

// vmFrame is a pooled operand stack. Closure-chained execution would
// otherwise force the stack to escape to the heap on every Run — the
// hidden cost that makes naive "compilation" slower than the interpreter
// in Go.
type vmFrame struct{ buf [64]uint64 }

var framePool = sync.Pool{New: func() any { return new(vmFrame) }}

// Run executes the compiled program, with the same semantics as
// Program.Run.
func (c *Compiled) Run(env *Env) int {
	f := framePool.Get().(*vmFrame)
	defer framePool.Put(f)
	var stack []uint64
	if c.maxStack <= len(f.buf) {
		stack = f.buf[:0]
	} else {
		stack = make([]uint64, 0, c.maxStack)
	}
	for _, st := range c.steps {
		status, done, s := st(env, stack)
		if done {
			return status
		}
		stack = s
	}
	return StatusOK
}

func compileInstr(in *Instr) step {
	switch in.Op {
	case Nop:
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			return 0, false, stack
		}
	case PushConst:
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			return 0, false, append(stack, uint64(in.Arg))
		}
	case PushField:
		return compileFieldPush(in)
	case PushSize:
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			return 0, false, append(stack, uint64(len(env.Payload)))
		}
	case PushTime:
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			return 0, false, append(stack, env.Time)
		}
	case Digest:
		fn, _ := digestFunc(in.Dig)
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			return 0, false, append(stack, fn(env.Payload))
		}
	case PopField:
		return compileFieldPop(in)
	case Not:
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			if stack[len(stack)-1] == 0 {
				stack[len(stack)-1] = 1
			} else {
				stack[len(stack)-1] = 0
			}
			return 0, false, stack
		}
	case Dup:
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			return 0, false, append(stack, stack[len(stack)-1])
		}
	case Swap:
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			n := len(stack)
			stack[n-1], stack[n-2] = stack[n-2], stack[n-1]
			return 0, false, stack
		}
	case Return:
		status := int(in.Arg)
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			return status, true, stack
		}
	case Abort:
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v != 0 {
				return int(in.Arg), true, stack
			}
			return 0, false, stack
		}
	case Seal, Open:
		h := in.Field
		open := in.Op == Open
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			if env.AEAD == nil {
				return StatusFault, true, stack
			}
			var s int
			if open {
				s = env.AEAD.Open(env, h)
			} else {
				s = env.AEAD.Seal(env, h)
			}
			if s != 0 {
				return s, true, stack
			}
			return 0, false, stack
		}
	default:
		op := in.Op
		return func(env *Env, stack []uint64) (int, bool, []uint64) {
			a := stack[len(stack)-2]
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r, fault := binop(op, a, b)
			if fault {
				return StatusFault, true, stack
			}
			stack[len(stack)-1] = r
			return 0, false, stack
		}
	}
}

// compileFieldPush specializes aligned 16/32-bit fields to direct loads —
// the dominant cases (lengths, checksums, sequence numbers).
func compileFieldPush(in *Instr) step {
	h := in.Field
	cls, off, size := h.Class(), h.Offset(), h.SizeBits()
	if bits.Aligned(off, size) {
		byteOff := off / 8
		switch size {
		case 16:
			return func(env *Env, stack []uint64) (int, bool, []uint64) {
				b := env.Hdr[cls][byteOff:]
				var v uint64
				if env.Order == bits.LittleEndian {
					v = uint64(binary.LittleEndian.Uint16(b))
				} else {
					v = uint64(binary.BigEndian.Uint16(b))
				}
				return 0, false, append(stack, v)
			}
		case 32:
			return func(env *Env, stack []uint64) (int, bool, []uint64) {
				b := env.Hdr[cls][byteOff:]
				var v uint64
				if env.Order == bits.LittleEndian {
					v = uint64(binary.LittleEndian.Uint32(b))
				} else {
					v = uint64(binary.BigEndian.Uint32(b))
				}
				return 0, false, append(stack, v)
			}
		}
	}
	return func(env *Env, stack []uint64) (int, bool, []uint64) {
		return 0, false, append(stack, h.Read(env.Hdr[cls], env.Order))
	}
}

func compileFieldPop(in *Instr) step {
	h := in.Field
	cls, off, size := h.Class(), h.Offset(), h.SizeBits()
	if bits.Aligned(off, size) {
		byteOff := off / 8
		switch size {
		case 16:
			return func(env *Env, stack []uint64) (int, bool, []uint64) {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				b := env.Hdr[cls][byteOff:]
				if env.Order == bits.LittleEndian {
					binary.LittleEndian.PutUint16(b, uint16(v))
				} else {
					binary.BigEndian.PutUint16(b, uint16(v))
				}
				return 0, false, stack
			}
		case 32:
			return func(env *Env, stack []uint64) (int, bool, []uint64) {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				b := env.Hdr[cls][byteOff:]
				if env.Order == bits.LittleEndian {
					binary.LittleEndian.PutUint32(b, uint32(v))
				} else {
					binary.BigEndian.PutUint32(b, uint32(v))
				}
				return 0, false, stack
			}
		}
	}
	return func(env *Env, stack []uint64) (int, bool, []uint64) {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h.Write(env.Hdr[cls], env.Order, v)
		return 0, false, stack
	}
}

package filter

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"paccel/internal/bits"
	"paccel/internal/header"
)

// testSchema builds a small compiled schema resembling the chksum layer's
// fields: a 16-bit length and 16-bit checksum (message-specific) plus a
// 32-bit sequence number (protocol-specific).
func testSchema(t testing.TB) (s *header.Schema, length, cksum, seq header.Handle) {
	t.Helper()
	s = header.New()
	var err error
	if length, err = s.AddField(header.MsgSpec, "chksum", "len", 16, header.DontCare); err != nil {
		t.Fatal(err)
	}
	if cksum, err = s.AddField(header.MsgSpec, "chksum", "ck", 16, header.DontCare); err != nil {
		t.Fatal(err)
	}
	if seq, err = s.AddField(header.ProtoSpec, "seqno", "seq", 32, header.DontCare); err != nil {
		t.Fatal(err)
	}
	if err = s.Compile(); err != nil {
		t.Fatal(err)
	}
	return s, length, cksum, seq
}

func newEnv(s *header.Schema, payload []byte) *Env {
	env := &Env{Payload: payload, Order: bits.BigEndian}
	for c := header.Class(0); c < header.NumClasses; c++ {
		env.Hdr[c] = make([]byte, s.Size(c))
	}
	return env
}

// sendProgram builds the canonical send filter: store payload size and
// Internet checksum into the message-specific header, reject payloads over
// mtu with StatusSlow.
func sendProgram(t testing.TB, length, cksum header.Handle, mtu int64) *Program {
	t.Helper()
	b := NewBuilder()
	b.PushSize()
	b.PushConst(mtu)
	b.Arith(Gt)
	b.Abort(StatusSlow) // too large: fall back to the stack (frag layer)
	b.PushSize()
	b.PopField(length)
	b.Digest(DigestInternet)
	b.PopField(cksum)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// recvProgram verifies length and checksum, dropping mismatches.
func recvProgram(t testing.TB, length, cksum header.Handle) *Program {
	t.Helper()
	b := NewBuilder()
	b.PushField(length)
	b.PushSize()
	b.Arith(Ne)
	b.Abort(StatusDrop)
	b.PushField(cksum)
	b.Digest(DigestInternet)
	b.Arith(Ne)
	b.Abort(StatusDrop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSendRecvFilterRoundTrip(t *testing.T) {
	s, length, cksum, _ := testSchema(t)
	send := sendProgram(t, length, cksum, 1024)
	recv := recvProgram(t, length, cksum)

	env := newEnv(s, []byte("eight by"))
	if got := send.Run(env); got != StatusOK {
		t.Fatalf("send filter = %d", got)
	}
	if got := length.Read(env.Hdr[header.MsgSpec], env.Order); got != 8 {
		t.Fatalf("len field = %d", got)
	}
	if got := recv.Run(env); got != StatusOK {
		t.Fatalf("recv filter = %d", got)
	}
	// Corrupt the payload: the delivery filter must drop.
	env.Payload[0] ^= 0xFF
	if got := recv.Run(env); got != StatusDrop {
		t.Fatalf("recv filter on corrupt payload = %d, want drop", got)
	}
}

func TestSendFilterRejectsOversize(t *testing.T) {
	s, length, cksum, _ := testSchema(t)
	send := sendProgram(t, length, cksum, 4)
	env := newEnv(s, []byte("too large"))
	if got := send.Run(env); got != StatusSlow {
		t.Fatalf("send filter = %d, want slow-path", got)
	}
}

func TestArithOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{Add, 3, 4, 7}, {Sub, 10, 4, 6}, {Mul, 3, 4, 12},
		{Div, 12, 4, 3}, {Mod, 10, 3, 1},
		{And, 0b1100, 0b1010, 0b1000}, {Or, 0b1100, 0b1010, 0b1110},
		{Xor, 0b1100, 0b1010, 0b0110}, {Shl, 1, 4, 16}, {Shr, 16, 4, 1},
		{Eq, 5, 5, 1}, {Eq, 5, 6, 0}, {Ne, 5, 6, 1},
		{Lt, 5, 6, 1}, {Le, 6, 6, 1}, {Gt, 7, 6, 1}, {Ge, 6, 7, 0},
	}
	for _, c := range cases {
		got, fault := binop(c.op, c.a, c.b)
		if fault || got != c.want {
			t.Errorf("%s(%d,%d) = %d fault=%v, want %d", c.op, c.a, c.b, got, fault, c.want)
		}
	}
}

func TestRuntimeFaults(t *testing.T) {
	for _, op := range []Op{Div, Mod} {
		b := NewBuilder()
		b.PushConst(1)
		b.PushConst(0)
		b.Arith(op)
		b.Return(0)
		p := b.MustBuild()
		if got := p.Run(&Env{}); got != StatusFault {
			t.Errorf("%s by zero = %d, want fault", op, got)
		}
	}
	b := NewBuilder()
	b.PushConst(1)
	b.PushConst(64)
	b.Arith(Shl)
	p := b.MustBuild()
	if got := p.Run(&Env{}); got != StatusFault {
		t.Errorf("shift 64 = %d, want fault", got)
	}
}

func TestStackOps(t *testing.T) {
	// dup + sub -> 0; swap makes 2-1 = 1 into 1-2 = huge; use Not.
	b := NewBuilder()
	b.PushConst(7)
	b.Arith(Dup)
	b.Arith(Sub)
	b.Arith(Not)
	b.Abort(42)
	b.Return(StatusSlow)
	p := b.MustBuild()
	if got := p.Run(&Env{}); got != 42 {
		t.Fatalf("got %d, want 42", got)
	}

	b = NewBuilder()
	b.PushConst(2)
	b.PushConst(1)
	b.Arith(Swap) // now 1 2
	b.Arith(Sub)  // 1-2 wraps
	b.Abort(9)
	b.Return(0)
	p = b.MustBuild()
	if got := p.Run(&Env{}); got != 9 {
		t.Fatalf("swap/sub path = %d, want 9", got)
	}
}

func TestValidationUnderflow(t *testing.T) {
	b := NewBuilder()
	b.Arith(Add)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidationUnreachable(t *testing.T) {
	b := NewBuilder()
	b.Return(0)
	b.PushConst(1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidationInvalidHandle(t *testing.T) {
	b := NewBuilder()
	b.PushField(header.Handle{})
	if _, err := b.Build(); err == nil {
		t.Fatal("invalid handle accepted")
	}
}

func TestValidationBadDigest(t *testing.T) {
	b := NewBuilder()
	b.ins = append(b.ins, Instr{Op: Digest, Dig: DigestID(9999)})
	if _, err := b.Build(); err == nil {
		t.Fatal("unregistered digest accepted")
	}
}

func TestMaxStackComputation(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.PushConst(int64(i))
	}
	for i := 0; i < 4; i++ {
		b.Arith(Add)
	}
	b.Abort(1)
	p := b.MustBuild()
	if p.MaxStack() != 5 {
		t.Fatalf("MaxStack = %d, want 5", p.MaxStack())
	}
}

func TestSetConst(t *testing.T) {
	b := NewBuilder()
	idx := b.PushConst(10)
	b.PushSize()
	b.Arith(Lt) // const < size ?
	b.Abort(StatusSlow)
	p := b.MustBuild()
	env := &Env{Payload: make([]byte, 20)}
	if got := p.Run(env); got != StatusSlow {
		t.Fatalf("pre-patch = %d", got)
	}
	// Post-processing rewrites the window limit (paper §3.3).
	if err := p.SetConst(idx, 100); err != nil {
		t.Fatal(err)
	}
	if got := p.Run(env); got != StatusOK {
		t.Fatalf("post-patch = %d", got)
	}
	if err := p.SetConst(1, 5); err == nil {
		t.Fatal("SetConst on non-const accepted")
	}
	if err := p.SetConst(99, 5); err == nil {
		t.Fatal("SetConst out of range accepted")
	}
	// The compiled form shares storage, so the patch is visible there
	// too.
	if got := p.Compile().Run(env); got != StatusOK {
		t.Fatalf("compiled post-patch = %d", got)
	}
}

func TestFallOffEndReturnsOK(t *testing.T) {
	b := NewBuilder()
	b.PushConst(1)
	b.PushConst(1)
	b.Arith(Add)
	b.Abort(0) // top is non-zero but status 0 == OK either way
	p := b.MustBuild()
	if got := p.Run(&Env{}); got != StatusOK {
		t.Fatalf("got %d, want StatusOK", got)
	}
	// Truly empty program.
	if got := NewBuilder().MustBuild().Run(&Env{}); got != StatusOK {
		t.Fatalf("empty program = %d", got)
	}
}

func TestInternetChecksum(t *testing.T) {
	// RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2,
	// checksum is its complement 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := InternetChecksum(b); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
	// Odd length pads with zero.
	if got := InternetChecksum([]byte{0xFF}); got != uint64(^uint16(0xFF00)) {
		t.Fatalf("odd checksum = %#x", got)
	}
	if got := InternetChecksum(nil); got != 0xFFFF {
		t.Fatalf("empty checksum = %#x", got)
	}
}

func TestDigestRegistry(t *testing.T) {
	id := RegisterDigest("test-digest", func(b []byte) uint64 { return uint64(len(b)) })
	got, ok := LookupDigest("test-digest")
	if !ok || got != id {
		t.Fatal("lookup failed")
	}
	if DigestName(id) != "test-digest" {
		t.Fatalf("name = %q", DigestName(id))
	}
	if DigestName(DigestID(12345)) == "test-digest" {
		t.Fatal("bogus id resolved")
	}
	// Re-registration replaces the function but keeps the id.
	id2 := RegisterDigest("test-digest", func(b []byte) uint64 { return 7 })
	if id2 != id {
		t.Fatal("re-registration changed id")
	}
	fn, _ := digestFunc(id)
	if fn(nil) != 7 {
		t.Fatal("re-registration did not replace function")
	}
}

func TestDisassemble(t *testing.T) {
	_, length, cksum, _ := testSchema(t)
	p := sendProgram(t, length, cksum, 1024)
	d := p.Disassemble()
	for _, want := range []string{"push.size", "pop.field len", "digest inet16", "abort 1"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	s, _, _, _ := testSchema(t)
	src := `
	; verify length then checksum
	push.field len
	push.size
	ne
	abort -1    # drop
	push.field chksum/ck
	digest inet16
	ne
	abort -1
	return 0
`
	p, err := Assemble(src, SchemaResolver(s))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 9 {
		t.Fatalf("len = %d", p.Len())
	}
	env := newEnv(s, []byte("hi"))
	// Unfilled headers: length 0 != 2 -> drop.
	if got := p.Run(env); got != StatusDrop {
		t.Fatalf("got %d", got)
	}
}

func TestAssembleErrors(t *testing.T) {
	s, _, _, _ := testSchema(t)
	r := SchemaResolver(s)
	for _, src := range []string{
		"frobnicate",
		"push.const",
		"push.const notanumber",
		"push.field nosuchfield",
		"digest nosuchdigest",
		"add 3",
		"push.field len extra",
	} {
		if _, err := Assemble(src, r); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestSchemaResolverLayerQualified(t *testing.T) {
	s := header.New()
	a, _ := s.AddField(header.ProtoSpec, "l1", "x", 8, header.DontCare)
	b, _ := s.AddField(header.Gossip, "l2", "x", 8, header.DontCare)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	r := SchemaResolver(s)
	h, ok := r("x")
	if !ok || h != a {
		t.Fatal("unqualified lookup should find first registration")
	}
	h, ok = r("l2/x")
	if !ok || h != b {
		t.Fatal("qualified lookup failed")
	}
	if _, ok := r("l3/x"); ok {
		t.Fatal("bogus layer resolved")
	}
}

// Property: the compiled program agrees with the interpreter on random
// programs built from random (but valid) instruction streams.
func TestQuickCompiledMatchesInterpreter(t *testing.T) {
	s, length, cksum, seq := testSchema(t)
	handles := []header.Handle{length, cksum, seq}
	f := func(seed int64, payload []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		depth := 0
		n := 3 + rng.Intn(20)
		for i := 0; i < n; i++ {
			switch k := rng.Intn(10); {
			case k < 3 || depth == 0:
				switch rng.Intn(4) {
				case 0:
					b.PushConst(int64(rng.Uint64()))
				case 1:
					b.PushField(handles[rng.Intn(len(handles))])
				case 2:
					b.PushSize()
				case 3:
					b.Digest(DigestInternet)
				}
				depth++
			case k < 6 && depth >= 2:
				ops := []Op{Add, Sub, Mul, And, Or, Xor, Eq, Ne, Lt, Le, Gt, Ge}
				b.Arith(ops[rng.Intn(len(ops))])
				depth--
			case k < 7:
				b.PopField(handles[rng.Intn(len(handles))])
				depth--
			case k < 8:
				b.Abort(int64(rng.Intn(5)))
				depth--
			case k < 9:
				b.Arith(Dup)
				depth++
			default:
				b.Arith(Not)
			}
		}
		p, err := b.Build()
		if err != nil {
			return true // generator produced invalid program; skip
		}
		c := p.Compile()
		envI := newEnv(s, payload)
		envC := newEnv(s, payload)
		ri := p.Run(envI)
		rc := c.Run(envC)
		if ri != rc {
			return false
		}
		for cl := header.Class(0); cl < header.NumClasses; cl++ {
			for i := range envI.Hdr[cl] {
				if envI.Hdr[cl][i] != envC.Hdr[cl][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: assembling a disassembled program yields the same behaviour.
func TestDisassembleAssembleIdentity(t *testing.T) {
	s, length, cksum, _ := testSchema(t)
	p := recvProgram(t, length, cksum)
	p2, err := Assemble(p.Disassemble(), SchemaResolver(s))
	if err != nil {
		t.Fatal(err)
	}
	env1 := newEnv(s, []byte("abc"))
	env2 := newEnv(s, []byte("abc"))
	if p.Run(env1) != p2.Run(env2) {
		t.Fatal("reassembled program behaves differently")
	}
}

func TestRunAllocationFree(t *testing.T) {
	s, length, cksum, _ := testSchema(t)
	send := sendProgram(t, length, cksum, 1024)
	env := newEnv(s, []byte("payload!"))
	allocs := testing.AllocsPerRun(100, func() { send.Run(env) })
	if allocs != 0 {
		t.Fatalf("Run allocates %.1f times per run", allocs)
	}
}

func BenchmarkInterpreted(b *testing.B) {
	s, length, cksum, _ := testSchema(b)
	send := sendProgram(b, length, cksum, 1024)
	env := newEnv(s, make([]byte, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if send.Run(env) != StatusOK {
			b.Fatal("filter failed")
		}
	}
}

func BenchmarkCompiled(b *testing.B) {
	s, length, cksum, _ := testSchema(b)
	send := sendProgram(b, length, cksum, 1024).Compile()
	env := newEnv(s, make([]byte, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if send.Run(env) != StatusOK {
			b.Fatal("filter failed")
		}
	}
}

func BenchmarkInternetChecksum1K(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		InternetChecksum(buf)
	}
}

package filter

import (
	"fmt"
	"strconv"
	"strings"

	"paccel/internal/header"
)

// FieldResolver maps an assembler field name (e.g. "seq" or "chksum/ck")
// to a header handle.
type FieldResolver func(name string) (header.Handle, bool)

// SchemaResolver returns a FieldResolver over a compiled schema: "name"
// matches the first field with that name in registration order;
// "layer/name" matches exactly.
func SchemaResolver(s *header.Schema) FieldResolver {
	return func(name string) (header.Handle, bool) {
		layer := ""
		if i := strings.IndexByte(name, '/'); i >= 0 {
			layer, name = name[:i], name[i+1:]
		}
		for _, h := range s.Fields() {
			if h.Name() != name {
				continue
			}
			if layer == "" || h.Layer() == layer {
				return h, true
			}
		}
		return header.Handle{}, false
	}
}

var nameOps = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// Assemble parses an assembler listing into a validated Program. Each line
// holds one instruction; ';' and '#' start comments; blank lines are
// ignored.
func Assemble(src string, resolve FieldResolver) (*Program, error) {
	b := NewBuilder()
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		// Tolerate a leading numeric label, as printed by Disassemble.
		if len(fields) > 1 {
			if _, err := strconv.Atoi(fields[0]); err == nil {
				fields = fields[1:]
			}
		}
		op, ok := nameOps[fields[0]]
		if !ok {
			return nil, fmt.Errorf("filter: line %d: unknown op %q", lineno+1, fields[0])
		}
		arg := func() (string, error) {
			if len(fields) != 2 {
				return "", fmt.Errorf("filter: line %d: %s needs exactly one argument", lineno+1, fields[0])
			}
			return fields[1], nil
		}
		noArg := func() error {
			if len(fields) != 1 {
				return fmt.Errorf("filter: line %d: %s takes no argument", lineno+1, fields[0])
			}
			return nil
		}
		switch op {
		case PushConst, Return, Abort:
			a, err := arg()
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseInt(a, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("filter: line %d: bad integer %q", lineno+1, a)
			}
			switch op {
			case PushConst:
				b.PushConst(v)
			case Return:
				b.Return(v)
			case Abort:
				b.Abort(v)
			}
		case PushField, PopField, Seal, Open:
			a, err := arg()
			if err != nil {
				return nil, err
			}
			h, ok := resolve(a)
			if !ok {
				return nil, fmt.Errorf("filter: line %d: unknown field %q", lineno+1, a)
			}
			switch op {
			case PushField:
				b.PushField(h)
			case PopField:
				b.PopField(h)
			case Seal:
				b.Seal(h)
			case Open:
				b.Open(h)
			}
		case Digest:
			a, err := arg()
			if err != nil {
				return nil, err
			}
			id, ok := LookupDigest(a)
			if !ok {
				return nil, fmt.Errorf("filter: line %d: unknown digest %q", lineno+1, a)
			}
			b.Digest(id)
		default:
			if err := noArg(); err != nil {
				return nil, err
			}
			switch op {
			case PushSize:
				b.PushSize()
			case PushTime:
				b.PushTime()
			default:
				b.Arith(op)
			}
		}
	}
	return b.Build()
}

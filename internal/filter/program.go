package filter

import (
	"fmt"
	"strings"

	"paccel/internal/header"
)

// Instr is one packet filter instruction.
type Instr struct {
	Op    Op
	Arg   int64         // PushConst value; Return/Abort status
	Field header.Handle // PushField / PopField target
	Dig   DigestID      // Digest function
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case PushConst, Return, Abort:
		return fmt.Sprintf("%s %d", in.Op, in.Arg)
	case PushField, PopField, Seal, Open:
		return fmt.Sprintf("%s %s", in.Op, in.Field.Name())
	case Digest:
		return fmt.Sprintf("%s %s", in.Op, DigestName(in.Dig))
	}
	return in.Op.String()
}

// Program is a validated, immutable-length packet filter program.
// Instruction arguments may be patched at run time (the paper: "part of
// the packet filter program may be rewritten when the protocol state is
// updated in the post-processing phase"), but the instruction sequence —
// and therefore the validation result — is fixed.
type Program struct {
	ins      []Instr
	maxStack int
}

// Instructions returns a copy of the program's instructions.
func (p *Program) Instructions() []Instr { return append([]Instr(nil), p.ins...) }

// MaxStack returns the statically computed stack requirement.
func (p *Program) MaxStack() int { return p.maxStack }

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.ins) }

// SetConst patches the argument of the PushConst instruction at index i.
// It is the run-time rewriting hook for state-dependent message-specific
// information. It returns an error if instruction i is not a PushConst.
func (p *Program) SetConst(i int, v int64) error {
	if i < 0 || i >= len(p.ins) {
		return fmt.Errorf("filter: SetConst index %d out of range", i)
	}
	if p.ins[i].Op != PushConst {
		return fmt.Errorf("filter: SetConst on %s instruction", p.ins[i].Op)
	}
	p.ins[i].Arg = v
	return nil
}

// UsesTime reports whether the program contains a PushTime instruction.
// The engine uses it to skip the per-message clock read when nothing in
// the connection's filters consumes the timestamp; layers that read
// Env.Time outside the filters (like the stamp layer's post hooks) must
// emit PushTime so the engine keeps supplying it.
func (p *Program) UsesTime() bool {
	for i := range p.ins {
		if p.ins[i].Op == PushTime {
			return true
		}
	}
	return false
}

// Disassemble renders the whole program, one instruction per line.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, in := range p.ins {
		fmt.Fprintf(&b, "%3d  %s\n", i, in.String())
	}
	return b.String()
}

// Builder accumulates instructions for a packet filter. Each protocol
// layer appends the instructions for its own message-specific fields
// during stack initialization; Build validates the combined program.
type Builder struct {
	ins []Instr
	err error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Err returns the first error recorded by an emit call.
func (b *Builder) Err() error { return b.err }

// Len returns the number of instructions emitted so far; layers use it to
// remember patchable instruction indices.
func (b *Builder) Len() int { return len(b.ins) }

func (b *Builder) emit(in Instr) int {
	b.ins = append(b.ins, in)
	return len(b.ins) - 1
}

// PushConst emits a push of constant v and returns the instruction index
// (for later SetConst patching).
func (b *Builder) PushConst(v int64) int { return b.emit(Instr{Op: PushConst, Arg: v}) }

// PushField emits a push of field h.
func (b *Builder) PushField(h header.Handle) int {
	if !h.Valid() {
		b.fail("PushField with invalid handle")
	}
	return b.emit(Instr{Op: PushField, Field: h})
}

// PushSize emits a push of the payload size.
func (b *Builder) PushSize() int { return b.emit(Instr{Op: PushSize}) }

// PushTime emits a push of the engine-supplied message timestamp.
func (b *Builder) PushTime() int { return b.emit(Instr{Op: PushTime}) }

// Digest emits a digest push.
func (b *Builder) Digest(id DigestID) int { return b.emit(Instr{Op: Digest, Dig: id}) }

// PopField emits a pop into field h.
func (b *Builder) PopField(h header.Handle) int {
	if !h.Valid() {
		b.fail("PopField with invalid handle")
	}
	return b.emit(Instr{Op: PopField, Field: h})
}

// Seal emits an AEAD seal: encrypt the payload in place, auth tag into
// blob field h.
func (b *Builder) Seal(h header.Handle) int {
	if !h.Valid() {
		b.fail("Seal with invalid handle")
	}
	return b.emit(Instr{Op: Seal, Field: h})
}

// Open emits an AEAD open: verify the tag in blob field h and decrypt the
// payload in place.
func (b *Builder) Open(h header.Handle) int {
	if !h.Valid() {
		b.fail("Open with invalid handle")
	}
	return b.emit(Instr{Op: Open, Field: h})
}

// Arith emits a binary arithmetic/comparison/stack op or Not/Dup/Swap.
func (b *Builder) Arith(op Op) int {
	switch {
	case op.binary(), op == Not, op == Dup, op == Swap, op == Nop:
	default:
		b.fail(fmt.Sprintf("Arith with non-arithmetic op %s", op))
	}
	return b.emit(Instr{Op: op})
}

// Return emits a terminal return of status v.
func (b *Builder) Return(v int64) int { return b.emit(Instr{Op: Return, Arg: v}) }

// Abort emits a conditional return: pops the top entry and finishes with
// status v if it was non-zero.
func (b *Builder) Abort(v int64) int { return b.emit(Instr{Op: Abort, Arg: v}) }

func (b *Builder) fail(msg string) {
	if b.err == nil {
		b.err = fmt.Errorf("filter: %s", msg)
	}
}

// Build validates the program and returns it. Validation checks that the
// stack never underflows, that every digest id is registered, and computes
// the maximum stack depth (possible because programs have no loops, §3.3).
// A program that falls off the end returns StatusOK.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	depth, maxDepth := 0, 0
	for i, in := range b.ins {
		pops, pushes := in.Op.stackEffect()
		if _, known := opNames[in.Op]; !known {
			return nil, fmt.Errorf("filter: instruction %d: unknown op %d", i, uint8(in.Op))
		}
		if in.Op == Digest {
			if _, ok := digestFunc(in.Dig); !ok {
				return nil, fmt.Errorf("filter: instruction %d: unregistered digest %d", i, in.Dig)
			}
		}
		if (in.Op == PushField || in.Op == PopField || in.Op == Seal || in.Op == Open) && !in.Field.Valid() {
			return nil, fmt.Errorf("filter: instruction %d: invalid field handle", i)
		}
		if depth < pops {
			return nil, fmt.Errorf("filter: instruction %d (%s): stack underflow (depth %d, needs %d)",
				i, in.Op, depth, pops)
		}
		depth += pushes - pops
		if depth > maxDepth {
			maxDepth = depth
		}
		if in.Op == Return && i < len(b.ins)-1 {
			return nil, fmt.Errorf("filter: instruction %d: unreachable code after return", i)
		}
	}
	ins := append([]Instr(nil), b.ins...)
	return &Program{ins: ins, maxStack: maxDepth}, nil
}

// MustBuild is Build that panics on error, for statically correct
// programs in tests and examples.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

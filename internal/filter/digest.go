package filter

import (
	"fmt"
	"hash/crc32"
	"sync"
)

// DigestFunc computes a message digest over the payload, pushed onto the
// filter stack by the Digest op. The paper's DIGEST takes a "function ptr";
// we use a registry of named functions so programs remain serializable.
type DigestFunc func(payload []byte) uint64

// DigestID identifies a registered digest function.
type DigestID int

var digests struct {
	sync.RWMutex
	byName map[string]DigestID
	funcs  []DigestFunc
	names  []string
}

// RegisterDigest registers fn under name and returns its id. Registering a
// name twice replaces the function (tests use this); the id is stable.
func RegisterDigest(name string, fn DigestFunc) DigestID {
	digests.Lock()
	defer digests.Unlock()
	if digests.byName == nil {
		digests.byName = make(map[string]DigestID)
	}
	if id, ok := digests.byName[name]; ok {
		digests.funcs[id] = fn
		return id
	}
	id := DigestID(len(digests.funcs))
	digests.byName[name] = id
	digests.funcs = append(digests.funcs, fn)
	digests.names = append(digests.names, name)
	return id
}

// LookupDigest returns the id registered for name.
func LookupDigest(name string) (DigestID, bool) {
	digests.RLock()
	defer digests.RUnlock()
	id, ok := digests.byName[name]
	return id, ok
}

// DigestName returns the name a digest id was registered under.
func DigestName(id DigestID) string {
	digests.RLock()
	defer digests.RUnlock()
	if id < 0 || int(id) >= len(digests.names) {
		return fmt.Sprintf("digest(%d)", int(id))
	}
	return digests.names[id]
}

// DigestByID returns the registered digest function for id.
func DigestByID(id DigestID) (DigestFunc, bool) { return digestFunc(id) }

func digestFunc(id DigestID) (DigestFunc, bool) {
	digests.RLock()
	defer digests.RUnlock()
	if id < 0 || int(id) >= len(digests.funcs) {
		return nil, false
	}
	return digests.funcs[id], true
}

// InternetChecksum computes the 16-bit one's-complement Internet checksum
// (RFC 1071) of b. It is the digest the chksum layer installs in both
// packet filters.
func InternetChecksum(b []byte) uint64 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return uint64(^uint16(sum))
}

// Well-known digest ids, registered at package init.
var (
	// DigestInternet is the RFC 1071 Internet checksum.
	DigestInternet DigestID
	// DigestCRC32C is the Castagnoli CRC-32.
	DigestCRC32C DigestID
	// DigestXor8 is a trivial one-byte XOR, useful in tests.
	DigestXor8 DigestID
)

func init() {
	DigestInternet = RegisterDigest("inet16", InternetChecksum)
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	DigestCRC32C = RegisterDigest("crc32c", func(b []byte) uint64 {
		return uint64(crc32.Checksum(b, castagnoli))
	})
	DigestXor8 = RegisterDigest("xor8", func(b []byte) uint64 {
		var x byte
		for _, c := range b {
			x ^= c
		}
		return uint64(x)
	})
}

package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// The opt-in debug endpoint: JSON snapshots of the recorder plus the
// standard Go introspection surfaces (expvar, pprof) on one mux. Nothing
// here runs unless the application calls Serve — production endpoints
// with no operator looking pay only the recording cost.

// Server is a running debug endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the debug endpoint on addr, exposing:
//
//	/telemetry            recorder snapshot as JSON (?buckets=1 for the
//	                      raw histogram buckets)
//	/telemetry/events     only the event ring, oldest first
//	/debug/vars           expvar
//	/debug/pprof/         pprof index, profile, trace, symbol, cmdline
//
// The recorder may be nil (the introspection surfaces still work; the
// snapshot is empty). Serve returns once the listener is bound; requests
// are handled on a background goroutine until Close.
func Serve(addr string, rec *Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, rec.Snapshot(req.URL.Query().Get("buckets") == "1"))
	})
	mux.HandleFunc("/telemetry/events", func(w http.ResponseWriter, req *http.Request) {
		events, total := []Event{}, uint64(0)
		if rec != nil {
			events, total = rec.ring.snapshot()
		}
		writeJSON(w, struct {
			Events      []Event `json:"events"`
			EventsTotal uint64  `json:"events_total"`
		}{events, total})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // Close's ErrServerClosed is the only exit
	return s, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client disconnects are not actionable
}

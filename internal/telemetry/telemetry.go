// Package telemetry is the engine's always-on observability layer: the
// microsecond-level breakdown the paper presents once, offline, in
// Figure 4 — send pre-processing, lazy post-processing, delivery, flush
// batching, recovery probing — kept live at runtime.
//
// Two data structures, both fixed-size and lock-free or lock-light:
//
//   - sharded log-bucketed latency histograms (histogram.go): recording
//     is two atomic adds into a flat array, no locks, no allocations,
//     so the critical paths can afford it on every operation;
//   - a structured event ring (ring.go): connection state transitions,
//     faults, migrations and resumptions with their cause, fixed
//     capacity, overwriting the oldest — rare events, so a mutex.
//
// The Recorder handle is nil-safe: every method no-ops on a nil
// receiver, so instrumented code pays exactly one predictable branch
// when telemetry is disabled (the engine also skips its clock reads in
// that case — see the instrumentation sites in internal/core).
// Histogram durations are real execution times (the instrumented code
// reads the wall clock); event timestamps come from the recorder's
// configured clock, so virtual-time tests get deterministic event logs.
//
// Serve (serve.go) exposes snapshots as JSON over an opt-in HTTP debug
// endpoint, alongside expvar and pprof.
package telemetry

import (
	"time"

	"paccel/internal/vclock"
)

// Op names one instrumented critical-path operation.
type Op uint8

// The instrumented operations. The first five are the engine's Figure-4
// phases; OpOneWay is the stamp layer's one-way latency samples.
const (
	// OpSendPre is send pre-processing: header prediction, the send
	// packet filter, and transmit queueing (Conn.sendMsg).
	OpSendPre Op = iota
	// OpPost is one deferred post-processing drain: the batch of §3.1
	// post-send/post-delivery work run at a drain point.
	OpPost
	// OpDeliver is the delivery path from router hand-off to
	// application callback return (Conn.deliverIncoming).
	OpDeliver
	// OpFlush is one transmit-queue flush handed to the transport — a
	// SendBatch burst or the per-datagram loop (Conn.sendQueued).
	OpFlush
	// OpProbe is one recovery probe round: session-resumption replay
	// plus its settle pass (recovery.go).
	OpProbe
	// OpOneWay is the stamp layer's one-way latency estimate (only
	// meaningful when both endpoints share a clock).
	OpOneWay
	// OpFanout is one group-fanout operation: the shared template build,
	// the per-member stamping pass, and the batched transmit
	// (core.Fanout.Send).
	OpFanout

	// NumOps bounds the Op space; it is the histogram array dimension.
	NumOps
)

// opNames index by Op for reports and JSON.
var opNames = [NumOps]string{
	"send_pre", "post", "deliver", "flush", "probe", "oneway", "fanout",
}

// String names the operation.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "?"
}

// NumShards is the histogram shard count (power of two). Callers spread
// connections over shards (the engine assigns each connection its dial
// sequence), so two cores recording for different connections touch
// different cache lines.
const NumShards = 8

// Options configures a Recorder.
type Options struct {
	// Clock stamps ring events; nil means the real clock. Histogram
	// durations are measured by the instrumented code itself and are
	// always real execution times.
	Clock vclock.Clock
	// EventCapacity is the event ring size; 0 means DefaultEventCapacity.
	EventCapacity int
}

// DefaultEventCapacity is the event ring size when Options leaves it 0.
const DefaultEventCapacity = 512

// Recorder is the telemetry handle instrumented code records into. A nil
// *Recorder is valid and records nothing — the disabled path is one
// branch per instrumentation site.
type Recorder struct {
	clock  vclock.Clock
	hists  [NumShards][NumOps]histShard
	ring   eventRing
	gauges gaugeSet
	named  namedGauges
}

// New creates a Recorder.
func New(opts Options) *Recorder {
	clk := opts.Clock
	if clk == nil {
		clk = vclock.Real{}
	}
	capacity := opts.EventCapacity
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &Recorder{clock: clk, ring: eventRing{buf: make([]Event, capacity)}}
}

// Record adds one duration observation for op. shard spreads concurrent
// recorders over cache lines; any value works (it is reduced mod
// NumShards). Nil-safe, lock-free, allocation-free.
func (r *Recorder) Record(op Op, shard uint32, d time.Duration) {
	if r == nil {
		return
	}
	r.hists[shard&(NumShards-1)][op].record(int64(d))
}

// Event appends one structured event to the ring, overwriting the oldest
// when full. conn identifies the connection (the engine passes the
// outgoing cookie; 0 means endpoint- or network-scoped). Nil-safe; cause
// should be pre-built (a constant or fmt string) by the caller.
func (r *Recorder) Event(kind EventKind, conn uint64, cause string) {
	if r == nil {
		return
	}
	r.ring.append(Event{Time: r.clock.Now(), Conn: conn, Kind: kind, Cause: cause})
}

// Snapshot is a point-in-time view of the recorder: per-operation
// histogram summaries and the retained events, oldest first.
type Snapshot struct {
	Ops []HistogramSnapshot `json:"ops"`
	// Events are the retained ring entries in order; EventsTotal counts
	// every event ever appended, including overwritten ones.
	Events      []Event `json:"events"`
	EventsTotal uint64  `json:"events_total"`
	// Gauges are the instantaneous load readings by gauge name: the
	// engine's fixed gauge set plus any registered named gauges
	// (per-router queue depths and drop counts from the topology
	// simulator).
	Gauges map[string]int64 `json:"gauges,omitempty"`
}

// Snapshot captures the recorder state. withBuckets includes the raw
// non-empty histogram buckets (the debug endpoint's detailed view).
// Nil-safe: a nil recorder snapshots as empty.
func (r *Recorder) Snapshot(withBuckets bool) Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	shards := make([]*histShard, NumShards)
	for op := Op(0); op < NumOps; op++ {
		for i := range shards {
			shards[i] = &r.hists[i][op]
		}
		merged, count, sum := mergeShards(shards)
		s.Ops = append(s.Ops, summarize(op.String(), &merged, count, sum, withBuckets))
	}
	s.Events, s.EventsTotal = r.ring.snapshot()
	s.Gauges = make(map[string]int64, NumGauges)
	for g := Gauge(0); g < NumGauges; g++ {
		s.Gauges[g.String()] = r.gauges[g].Load()
	}
	for name, v := range r.namedValues() {
		s.Gauges[name] = v
	}
	return s
}

// ConnEvents returns the retained events for one connection (by the
// conn value they were recorded with), oldest first. Nil-safe.
func (r *Recorder) ConnEvents(conn uint64) []Event {
	if r == nil {
		return nil
	}
	all, _ := r.ring.snapshot()
	var out []Event
	for _, e := range all {
		if e.Conn == conn {
			out = append(out, e)
		}
	}
	return out
}

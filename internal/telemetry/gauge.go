package telemetry

import "sync/atomic"

// Gauges: last-value-wins instantaneous readings, as opposed to the
// histograms (distributions) and the event ring (history). The engine
// uses them for endpoint load — live connections, routing-table entries,
// occupancy against the configured capacity, whether the storm detector
// is tripped — updated where population changes, never on the
// per-message paths. A gauge set is a single atomic store.

// Gauge names one instantaneous reading.
type Gauge uint8

// The engine's load gauges.
const (
	// GaugeConns is the endpoint's live connection count.
	GaugeConns Gauge = iota
	// GaugeTableEntries is the number of routed cookies across the
	// router's shard tables.
	GaugeTableEntries
	// GaugeOccupancyPct is live connections as a percentage of the
	// configured hard capacity (Config.MaxConns).
	GaugeOccupancyPct
	// GaugeStormActive is 1 while the admission storm detector is
	// tripped, 0 otherwise.
	GaugeStormActive

	// NumGauges bounds the Gauge space.
	NumGauges
)

var gaugeNames = [NumGauges]string{
	"conns", "table_entries", "occupancy_pct", "storm_active",
}

// String names the gauge.
func (g Gauge) String() string {
	if int(g) < len(gaugeNames) {
		return gaugeNames[g]
	}
	return "?"
}

// SetGauge stores the current value of g. Nil-safe, lock-free,
// allocation-free.
func (r *Recorder) SetGauge(g Gauge, v int64) {
	if r == nil || g >= NumGauges {
		return
	}
	r.gauges[g].Store(v)
}

// GaugeValue reads the current value of g (0 if never set). Nil-safe.
func (r *Recorder) GaugeValue(g Gauge) int64 {
	if r == nil || g >= NumGauges {
		return 0
	}
	return r.gauges[g].Load()
}

type gaugeSet [NumGauges]atomic.Int64

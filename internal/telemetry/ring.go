package telemetry

import (
	"encoding/json"
	"sync"
	"time"
)

// The event ring: a fixed-capacity, overwrite-oldest log of structured
// connection events. Events are rare (state transitions, faults,
// migrations, resumptions — not per-message), so a mutex is the right
// tool: it keeps (Seq, slot) assignment atomic, which makes the order of
// events recorded at the same clock tick deterministic (the virtual-time
// tests rely on it), and it costs nothing on the per-message paths,
// which never touch the ring.

// EventKind classifies a ring event.
type EventKind uint8

// Event kinds.
const (
	// EventState is a connection lifecycle transition
	// (active→recovering, →failed, →closed, recovering→active).
	EventState EventKind = iota
	// EventFault is an injected or observed fault: transport errors,
	// injected drops, link partitions, corruption.
	EventFault
	// EventMigration is a peer address migration (NAT rebind followed).
	EventMigration
	// EventResume is a session-resumption action: a recovery probe
	// round or a window replay.
	EventResume
	// EventShed is an admission-control action: a refused connection
	// (rate-limited — the first and every 1024th), a storm detector
	// transition, or an idle eviction made for admission.
	EventShed
	// EventRebind is a middlebox address rewrite coming into existence
	// or changing: a NAT mapping allocated, expired, or re-allocated on
	// a new external address mid-session. Rebinds are rare and
	// diagnostic gold (they explain why a peer suddenly went silent),
	// so they are never sampled.
	EventRebind
)

var eventKindNames = [...]string{"state", "fault", "migration", "resume", "shed", "rebind"}

// String names the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "?"
}

// Event is one structured ring entry. Seq is a global, gapless record
// order — two events stamped at the same clock tick are still totally
// ordered by it.
type Event struct {
	Seq  uint64
	Time time.Time
	// Conn identifies the connection (the engine's outgoing cookie);
	// 0 is endpoint- or network-scoped.
	Conn  uint64
	Kind  EventKind
	Cause string
}

// eventJSON is the wire form of an Event: symbolic kind, nanosecond time.
type eventJSON struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"time_unix_ns"`
	Conn   uint64 `json:"conn,omitempty"`
	Kind   string `json:"kind"`
	Cause  string `json:"cause"`
}

// MarshalJSON renders the event with symbolic kind and nanosecond time.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{e.Seq, e.Time.UnixNano(), e.Conn, e.Kind.String(), e.Cause})
}

// UnmarshalJSON parses the MarshalJSON form back (tools consuming the
// debug endpoint round-trip snapshots).
func (e *Event) UnmarshalJSON(b []byte) error {
	var w eventJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	kind := EventKind(len(eventKindNames)) // unknown names map out of range
	for i, n := range eventKindNames {
		if n == w.Kind {
			kind = EventKind(i)
			break
		}
	}
	*e = Event{Seq: w.Seq, Time: time.Unix(0, w.TimeNs), Conn: w.Conn, Kind: kind, Cause: w.Cause}
	return nil
}

// eventRing is the fixed ring. next counts every append ever; the live
// window is the last min(next, len(buf)) entries.
type eventRing struct {
	mu   sync.Mutex
	buf  []Event
	next uint64
}

// append records one event, overwriting the oldest entry when full.
func (r *eventRing) append(e Event) {
	r.mu.Lock()
	e.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// snapshot copies the retained events oldest-first and reports the total
// ever appended.
func (r *eventRing) snapshot() ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	capacity := uint64(len(r.buf))
	count := n
	if count > capacity {
		count = capacity
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.buf[i%capacity])
	}
	return out, n
}

package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Named gauges: the fixed Gauge enum covers the engine's own load
// readings, but simulation components exist in variable numbers — a
// topology has as many routers as the scenario built, each with its own
// queue depth and drop count. A NamedGauge is a last-value-wins reading
// registered under a caller-chosen name ("r1/queue_depth").
//
// The handle is resolved once, at component construction, so the update
// sites never touch the registry map: a Set or Add is one atomic
// operation, cheap enough for a per-packet accounting site, though
// callers should still prefer updating where state changes (enqueue,
// drop) rather than polling. Both the Recorder method and the handle
// methods are nil-safe, matching the rest of the package: with telemetry
// disabled the resolved handle is nil and every update is one branch.

// NamedGauge is one registered gauge. The zero value is usable; a nil
// *NamedGauge no-ops.
type NamedGauge struct {
	v atomic.Int64
}

// Set stores the current value. Nil-safe, lock-free, allocation-free.
func (g *NamedGauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the current value by delta (queue occupancy counts up on
// enqueue and down on departure). Nil-safe, lock-free, allocation-free.
func (g *NamedGauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the current value. Nil-safe.
func (g *NamedGauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// namedGauges is the registry: a mutex-protected map resolved at
// component construction time, never on update paths.
type namedGauges struct {
	mu sync.Mutex
	m  map[string]*NamedGauge
}

// NamedGauge resolves (registering on first use) the gauge with the
// given name. Resolving the same name twice returns the same handle, so
// a rebuilt component keeps appending to the same reading. Nil-safe: a
// nil Recorder returns a nil handle whose methods no-op.
func (r *Recorder) NamedGauge(name string) *NamedGauge {
	if r == nil {
		return nil
	}
	r.named.mu.Lock()
	defer r.named.mu.Unlock()
	if r.named.m == nil {
		r.named.m = make(map[string]*NamedGauge)
	}
	g, ok := r.named.m[name]
	if !ok {
		g = &NamedGauge{}
		r.named.m[name] = g
	}
	return g
}

// namedValues snapshots the registry as name → value.
func (r *Recorder) namedValues() map[string]int64 {
	r.named.mu.Lock()
	defer r.named.mu.Unlock()
	if len(r.named.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(r.named.m))
	for name, g := range r.named.m {
		out[name] = g.Value()
	}
	return out
}

// NamedGaugeNames lists the registered names, sorted (reports iterate
// deterministically). Nil-safe.
func (r *Recorder) NamedGaugeNames() []string {
	if r == nil {
		return nil
	}
	r.named.mu.Lock()
	defer r.named.mu.Unlock()
	names := make([]string, 0, len(r.named.m))
	for name := range r.named.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Log-bucketed latency histograms, the Figure-4 measurement made
// always-on: every critical-path duration lands in a fixed-size array of
// atomic counters, so recording is lock-free, allocation-free, and cheap
// enough to leave enabled in production.
//
// Bucketing is logarithmic with linear sub-buckets ("HDR-lite"): values
// below 2^subBits nanoseconds get exact buckets; above that, each octave
// is split into 2^subBits linear sub-buckets, bounding the relative
// quantization error at 1/2^subBits (≈12.5% with subBits = 3) across the
// full uint64 range. The bucket count is a compile-time constant, so a
// histogram is one flat array — no resizing, no tree, no pointer chasing.

const (
	// subBits is the per-octave sub-bucket resolution.
	subBits = 3
	subNum  = 1 << subBits
	subMask = subNum - 1

	// numBuckets covers every uint64 nanosecond value: subNum exact
	// buckets for values < subNum, then (64-subBits) octaves of subNum
	// sub-buckets each.
	numBuckets = subNum + (64-subBits)*subNum
)

// bucketOf maps a non-negative duration in nanoseconds to its bucket.
func bucketOf(ns int64) int {
	v := uint64(ns)
	if v < subNum {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the top bit, ≥ subBits
	// Low bits of the mantissa just below the top bit select the linear
	// sub-bucket inside the octave.
	sub := int(v>>(uint(exp)-subBits)) & subMask
	return subNum + (exp-subBits)*subNum + sub
}

// bucketLow returns the smallest nanosecond value mapped to bucket i —
// the inverse of bucketOf, used when reconstructing percentiles.
func bucketLow(i int) int64 {
	if i < subNum {
		return int64(i)
	}
	i -= subNum
	exp := i/subNum + subBits
	sub := i % subNum
	return int64(1)<<uint(exp) | int64(sub)<<(uint(exp)-subBits)
}

// histShard is one shard of one operation's histogram. count is
// derivable from the buckets but kept separate so snapshotting can size
// its work cheaply; sum preserves the exact mean.
type histShard struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// record adds one observation to the shard: two independent atomic adds
// (bucket and count/sum) — no lock, no allocation. Readers tolerate the
// momentary skew between them (a snapshot is a statistical view, not a
// barrier).
func (h *histShard) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// HistogramSnapshot summarizes one operation's merged shards.
type HistogramSnapshot struct {
	Op      string            `json:"op"`
	Count   uint64            `json:"count"`
	MeanNs  float64           `json:"mean_ns"`
	P50Ns   int64             `json:"p50_ns"`
	P90Ns   int64             `json:"p90_ns"`
	P99Ns   int64             `json:"p99_ns"`
	MaxNs   int64             `json:"max_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-empty bucket of the merged histogram:
// LowNs is the inclusive lower bound of the bucket's value range.
type HistogramBucket struct {
	LowNs int64  `json:"low_ns"`
	Count uint64 `json:"count"`
}

// mergeShards folds the per-shard bucket arrays of one operation into a
// single flat array and returns (buckets, count, sum).
func mergeShards(shards []*histShard) ([numBuckets]uint64, uint64, int64) {
	var merged [numBuckets]uint64
	var count uint64
	var sum int64
	for _, sh := range shards {
		c := sh.count.Load()
		if c == 0 {
			continue
		}
		count += c
		sum += sh.sum.Load()
		for i := range sh.buckets {
			if n := sh.buckets[i].Load(); n != 0 {
				merged[i] += n
			}
		}
	}
	return merged, count, sum
}

// summarize computes the snapshot of a merged histogram. withBuckets
// includes the raw non-empty buckets (the debug endpoint wants them; the
// console report does not).
func summarize(op string, merged *[numBuckets]uint64, count uint64, sum int64, withBuckets bool) HistogramSnapshot {
	s := HistogramSnapshot{Op: op, Count: count}
	if count == 0 {
		return s
	}
	s.MeanNs = float64(sum) / float64(count)
	// Percentile p is the lower bound of the bucket holding the
	// ceil(p·count)-th observation; max the lower bound of the last
	// non-empty bucket (a ≤12.5% underestimate, the bucketing contract).
	targets := [3]uint64{
		(count*50 + 99) / 100,
		(count*90 + 99) / 100,
		(count*99 + 99) / 100,
	}
	out := [3]*int64{&s.P50Ns, &s.P90Ns, &s.P99Ns}
	var seen uint64
	ti := 0
	for i, n := range merged {
		if n == 0 {
			continue
		}
		seen += n
		for ti < len(targets) && seen >= targets[ti] {
			*out[ti] = bucketLow(i)
			ti++
		}
		s.MaxNs = bucketLow(i)
		if withBuckets {
			s.Buckets = append(s.Buckets, HistogramBucket{LowNs: bucketLow(i), Count: n})
		}
	}
	return s
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"paccel/internal/vclock"
)

// --- histogram bucketing ---

func TestBucketOfExactBelowSubNum(t *testing.T) {
	for v := int64(0); v < subNum; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, got, v)
		}
	}
}

func TestBucketOfMonotonicAndInverse(t *testing.T) {
	// Walk a dense range plus exponentially spaced probes: buckets must be
	// non-decreasing in the value, and bucketLow must be the smallest
	// value in its bucket.
	var values []int64
	for v := int64(0); v < 4096; v++ {
		values = append(values, v)
	}
	for shift := uint(12); shift < 63; shift++ {
		base := int64(1) << shift
		values = append(values, base-1, base, base+1, base+base/2)
	}
	prevBucket := -1
	for _, v := range values {
		b := bucketOf(v)
		if b < 0 || b >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", v, b, numBuckets)
		}
		if b < prevBucket {
			t.Fatalf("bucketOf not monotonic: bucketOf(%d) = %d < previous %d", v, b, prevBucket)
		}
		prevBucket = b
		low := bucketLow(b)
		if low > v {
			t.Fatalf("bucketLow(%d) = %d > member value %d", b, low, v)
		}
		if bucketOf(low) != b {
			t.Fatalf("bucketLow(%d) = %d maps back to bucket %d", b, low, bucketOf(low))
		}
		if low > 0 && bucketOf(low-1) != b-1 {
			t.Fatalf("bucketLow(%d)-1 = %d maps to bucket %d, want %d", b, low-1, bucketOf(low-1), b-1)
		}
	}
}

func TestBucketQuantizationError(t *testing.T) {
	// The bucketing contract: the lower bound underestimates the value by
	// at most a factor of 1/subNum (12.5%).
	for shift := uint(subBits); shift < 62; shift++ {
		for _, v := range []int64{1<<shift + 1, 1<<shift + 1<<(shift-1), 1<<(shift+1) - 1} {
			low := bucketLow(bucketOf(v))
			if err := float64(v-low) / float64(v); err > 1.0/subNum {
				t.Fatalf("value %d: bucket low %d, relative error %.4f > %.4f", v, low, err, 1.0/subNum)
			}
		}
	}
}

func TestRecordNegativeClampsToZero(t *testing.T) {
	r := New(Options{})
	r.Record(OpSendPre, 0, -5*time.Nanosecond)
	s := r.Snapshot(false)
	if s.Ops[OpSendPre].Count != 1 || s.Ops[OpSendPre].MaxNs != 0 {
		t.Fatalf("negative record: got %+v", s.Ops[OpSendPre])
	}
}

// --- snapshot / percentiles ---

func TestSnapshotPercentiles(t *testing.T) {
	r := New(Options{})
	// 100 observations: 1..100 microseconds, spread over all shards.
	for i := 1; i <= 100; i++ {
		r.Record(OpDeliver, uint32(i), time.Duration(i)*time.Microsecond)
	}
	s := r.Snapshot(true)
	h := s.Ops[OpDeliver]
	if h.Op != "deliver" {
		t.Fatalf("op name = %q", h.Op)
	}
	if h.Count != 100 {
		t.Fatalf("count = %d, want 100", h.Count)
	}
	wantMean := 50.5 * 1000
	if h.MeanNs != wantMean {
		t.Fatalf("mean = %v, want %v", h.MeanNs, wantMean)
	}
	// Percentile lower bounds: within the 12.5% bucketing error of the
	// true values.
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"p50", h.P50Ns, 50_000},
		{"p90", h.P90Ns, 90_000},
		{"p99", h.P99Ns, 99_000},
		{"max", h.MaxNs, 100_000},
	}
	for _, c := range checks {
		if c.got > c.want || float64(c.want-c.got)/float64(c.want) > 1.0/subNum {
			t.Errorf("%s = %d, want within 12.5%% below %d", c.name, c.got, c.want)
		}
	}
	if len(h.Buckets) == 0 {
		t.Fatal("withBuckets snapshot has no buckets")
	}
	var total uint64
	for i, b := range h.Buckets {
		if b.Count == 0 {
			t.Fatalf("bucket %d has zero count", i)
		}
		if i > 0 && b.LowNs <= h.Buckets[i-1].LowNs {
			t.Fatalf("buckets not ascending at %d", i)
		}
		total += b.Count
	}
	if total != 100 {
		t.Fatalf("bucket counts sum to %d, want 100", total)
	}
	// Ops with no observations summarize as empty, and the plain snapshot
	// carries no bucket arrays.
	if s.Ops[OpProbe].Count != 0 {
		t.Fatalf("probe count = %d, want 0", s.Ops[OpProbe].Count)
	}
	if plain := r.Snapshot(false); plain.Ops[OpDeliver].Buckets != nil {
		t.Fatal("plain snapshot includes buckets")
	}
}

func TestSnapshotSingleObservation(t *testing.T) {
	r := New(Options{})
	r.Record(OpFlush, 3, 777*time.Nanosecond)
	h := r.Snapshot(false).Ops[OpFlush]
	if h.Count != 1 || h.MeanNs != 777 {
		t.Fatalf("got %+v", h)
	}
	if h.P50Ns != h.P99Ns || h.P50Ns != h.MaxNs {
		t.Fatalf("single observation percentiles disagree: %+v", h)
	}
}

// --- nil-safety ---

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(OpSendPre, 1, time.Microsecond)
	r.Event(EventFault, 7, "drop")
	if s := r.Snapshot(true); len(s.Ops) != 0 || len(s.Events) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	if ev := r.ConnEvents(7); ev != nil {
		t.Fatalf("nil ConnEvents = %v", ev)
	}
}

// --- zero allocations on the record paths ---

func TestRecordZeroAllocs(t *testing.T) {
	r := New(Options{})
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(OpDeliver, 5, 123*time.Nanosecond)
	}); n != 0 {
		t.Fatalf("Record allocates %v allocs/op", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.Record(OpDeliver, 5, 123*time.Nanosecond)
	}); n != 0 {
		t.Fatalf("nil Record allocates %v allocs/op", n)
	}
}

func TestEventZeroAllocs(t *testing.T) {
	r := New(Options{Clock: vclock.NewManual(time.Unix(0, 0))})
	if n := testing.AllocsPerRun(1000, func() {
		r.Event(EventState, 1, "active")
	}); n != 0 {
		t.Fatalf("Event allocates %v allocs/op", n)
	}
}

// --- event ring ---

func TestRingWraparound(t *testing.T) {
	r := New(Options{Clock: vclock.NewManual(time.Unix(0, 0)), EventCapacity: 4})
	for i := 0; i < 10; i++ {
		r.Event(EventState, uint64(i), "s")
	}
	events, total := r.ring.snapshot()
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.Conn != wantSeq {
			t.Fatalf("event %d = {Seq:%d Conn:%d}, want seq/conn %d", i, e.Seq, e.Conn, wantSeq)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := New(Options{EventCapacity: 8})
	r.Event(EventFault, 1, "a")
	r.Event(EventFault, 2, "b")
	events, total := r.ring.snapshot()
	if total != 2 || len(events) != 2 {
		t.Fatalf("total=%d len=%d, want 2/2", total, len(events))
	}
	if events[0].Seq != 0 || events[1].Seq != 1 {
		t.Fatalf("seqs = %d,%d", events[0].Seq, events[1].Seq)
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	// Hammer the ring from many goroutines (run under -race in CI). The
	// retained window must be gapless and ascending, and the total exact.
	const writers, perWriter = 8, 500
	r := New(Options{EventCapacity: 64})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Event(EventResume, uint64(w), "probe")
			}
		}(w)
	}
	wg.Wait()
	events, total := r.ring.snapshot()
	if total != writers*perWriter {
		t.Fatalf("total = %d, want %d", total, writers*perWriter)
	}
	if len(events) != 64 {
		t.Fatalf("retained %d, want 64", len(events))
	}
	for i, e := range events {
		if want := total - 64 + uint64(i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (window must be gapless)", i, e.Seq, want)
		}
	}
}

func TestRingSameTickOrderingDeterministic(t *testing.T) {
	// Under a manual clock every event in one tick shares a timestamp;
	// Seq must still give a total order matching append order.
	clk := vclock.NewManual(time.Unix(100, 0))
	r := New(Options{Clock: clk, EventCapacity: 16})
	causes := []string{"enter-recovery", "probe-1", "probe-2", "resumed"}
	for _, c := range causes {
		r.Event(EventResume, 42, c)
	}
	events := r.ConnEvents(42)
	if len(events) != len(causes) {
		t.Fatalf("got %d events, want %d", len(events), len(causes))
	}
	for i, e := range events {
		if e.Cause != causes[i] {
			t.Fatalf("event %d cause = %q, want %q (same-tick order must be append order)", i, e.Cause, causes[i])
		}
		if !e.Time.Equal(time.Unix(100, 0)) {
			t.Fatalf("event %d time = %v, want the manual clock's tick", i, e.Time)
		}
		if i > 0 && e.Seq != events[i-1].Seq+1 {
			t.Fatalf("seqs not consecutive at %d", i)
		}
	}
}

func TestConnEventsFilters(t *testing.T) {
	r := New(Options{EventCapacity: 16})
	r.Event(EventState, 1, "a")
	r.Event(EventState, 2, "b")
	r.Event(EventFault, 1, "c")
	got := r.ConnEvents(1)
	if len(got) != 2 || got[0].Cause != "a" || got[1].Cause != "c" {
		t.Fatalf("ConnEvents(1) = %+v", got)
	}
}

// --- JSON ---

func TestEventJSON(t *testing.T) {
	e := Event{Seq: 3, Time: time.Unix(1, 500), Conn: 9, Kind: EventMigration, Cause: "rebind"}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "migration" || m["cause"] != "rebind" || m["conn"] != float64(9) {
		t.Fatalf("marshaled event = %s", b)
	}
	if m["time_unix_ns"] != float64(time.Unix(1, 500).UnixNano()) {
		t.Fatalf("time_unix_ns = %v", m["time_unix_ns"])
	}
}

// --- debug endpoint ---

func TestServe(t *testing.T) {
	r := New(Options{Clock: vclock.NewManual(time.Unix(7, 0))})
	r.Record(OpSendPre, 0, 2*time.Microsecond)
	r.Event(EventState, 5, "active")
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/telemetry?buckets=1"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Ops[OpSendPre].Count != 1 || snap.EventsTotal != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Ops[OpSendPre].Buckets) != 1 {
		t.Fatalf("buckets = %+v", snap.Ops[OpSendPre].Buckets)
	}

	var ev struct {
		Events      []json.RawMessage `json:"events"`
		EventsTotal uint64            `json:"events_total"`
	}
	if err := json.Unmarshal(get("/telemetry/events"), &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Events) != 1 || ev.EventsTotal != 1 {
		t.Fatalf("events = %+v", ev)
	}

	if b := get("/debug/vars"); len(b) == 0 {
		t.Fatal("/debug/vars empty")
	}
	if b := get("/debug/pprof/cmdline"); len(b) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestServeNilRecorder(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Ops) != 0 {
		t.Fatalf("nil recorder snapshot = %+v", snap)
	}
}

// --- named gauges and the rebind event kind ---

func TestNamedGauges(t *testing.T) {
	r := New(Options{})
	depth := r.NamedGauge("r1/queue_depth")
	drops := r.NamedGauge("r1/queue_drops")
	depth.Add(3)
	depth.Add(-1)
	drops.Set(7)
	if got := depth.Value(); got != 2 {
		t.Fatalf("depth = %d, want 2", got)
	}
	// Resolving the same name returns the same handle.
	if r.NamedGauge("r1/queue_drops").Value() != 7 {
		t.Fatal("re-resolved handle lost the value")
	}
	snap := r.Snapshot(false)
	if snap.Gauges["r1/queue_depth"] != 2 || snap.Gauges["r1/queue_drops"] != 7 {
		t.Fatalf("snapshot gauges = %+v", snap.Gauges)
	}
	// The fixed engine gauges still appear alongside.
	if _, ok := snap.Gauges[GaugeConns.String()]; !ok {
		t.Fatalf("fixed gauges missing from %+v", snap.Gauges)
	}
	names := r.NamedGaugeNames()
	if len(names) != 2 || names[0] != "r1/queue_depth" || names[1] != "r1/queue_drops" {
		t.Fatalf("names = %v", names)
	}
}

func TestNamedGaugeNilSafe(t *testing.T) {
	var r *Recorder
	g := r.NamedGauge("x")
	if g != nil {
		t.Fatal("nil recorder must resolve a nil handle")
	}
	g.Set(1) // must not panic
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil handle must read 0")
	}
	if r.NamedGaugeNames() != nil {
		t.Fatal("nil recorder must list no names")
	}
}

func TestNamedGaugeConcurrent(t *testing.T) {
	r := New(Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := r.NamedGauge(fmt.Sprintf("r%d/queue_depth", i%2))
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot(false)
	if snap.Gauges["r0/queue_depth"] != 0 || snap.Gauges["r1/queue_depth"] != 0 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
}

func TestEventRebindRoundTrip(t *testing.T) {
	if EventRebind.String() != "rebind" {
		t.Fatalf("EventRebind = %q", EventRebind)
	}
	e := Event{Seq: 9, Time: time.Unix(0, 12345), Conn: 4, Kind: EventRebind, Cause: "nat: mapping rebound"}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != EventRebind || back.Cause != e.Cause || back.Seq != 9 {
		t.Fatalf("round trip = %+v", back)
	}
}

// Package header implements the Protocol Accelerator's header-information
// classes and layout compiler (paper §2).
//
// Each protocol layer registers the fields it needs with
//
//	handle = schema.AddField(class, layer, name, sizeBits, offsetBits)
//
// exactly mirroring the paper's add_field(class, name, size, offset) call.
// After every layer has initialized, the schema is compiled into four
// compact headers, one per class. Compilation observes field size and — if
// requested — offset, but not layer boundaries: fields from different
// layers are mixed arbitrarily, minimizing padding while optimizing
// alignment (§2.1).
//
// The same schema can instead be compiled the traditional way
// (CompileLayered): one header block per layer, C-struct style natural
// alignment inside each block, every block padded to a 4-byte boundary,
// and all classes — including the large connection identification — sent
// inline on every message. That layout is the "original Horus" baseline the
// paper compares against.
package header

import (
	"fmt"
	"sort"
	"strings"

	"paccel/internal/bits"
)

// Class is a header-information class (§2.1).
type Class uint8

// The four header information classes of the paper, in wire order.
const (
	// ConnID identifies the connection and never changes during its
	// lifetime: addresses, ports, byte-ordering of the peers' machines.
	// Sent only on first/unusual messages (§2.2).
	ConnID Class = iota
	// ProtoSpec is needed for correct delivery of the particular frame
	// and depends only on protocol state — never on message contents or
	// send time. Predictable (§3.2).
	ProtoSpec
	// MsgSpec depends on the message itself: length, checksum,
	// timestamp. Filled in and checked by packet filters (§3.3).
	MsgSpec
	// Gossip need not accompany the message but is piggybacked for
	// efficiency (acknowledgements); may be stale without affecting
	// correctness.
	Gossip
	// NumClasses is the number of header classes.
	NumClasses = 4
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case ConnID:
		return "connection-identification"
	case ProtoSpec:
		return "protocol-specific"
	case MsgSpec:
		return "message-specific"
	case Gossip:
		return "gossip"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// DontCare is passed as the offset argument of AddField when the caller
// has no layout requirement (the paper's offset = -1).
const DontCare = -1

// Field describes one registered header field after compilation.
type Field struct {
	Class    Class
	Layer    string // registering layer, for reports and baseline layout
	Name     string // need not be unique (paper §2.1)
	SizeBits int
	// WantOffset is the requested bit offset, or DontCare.
	WantOffset int
	// Blob marks byte-string fields (addresses); they are always
	// byte-aligned and accessed with Handle.Bytes.
	Blob bool

	seq    int // registration order
	offset int // assigned bit offset, valid after compilation
}

// Handle refers to a registered field; it is returned by AddField and used
// for all later access, including by packet filter programs.
type Handle struct{ f *Field }

// Valid reports whether the handle refers to a field.
func (h Handle) Valid() bool { return h.f != nil }

// Class returns the field's header class.
func (h Handle) Class() Class { return h.f.Class }

// Name returns the field's registered name.
func (h Handle) Name() string { return h.f.Name }

// Layer returns the name of the layer that registered the field.
func (h Handle) Layer() string { return h.f.Layer }

// IsBlob reports whether the field is a byte-string field.
func (h Handle) IsBlob() bool { return h.f.Blob }

// SizeBits returns the field's size in bits.
func (h Handle) SizeBits() int { return h.f.SizeBits }

// Offset returns the field's assigned bit offset within its compiled
// header (compact mode) or within the single combined header (layered
// mode).
func (h Handle) Offset() int { return h.f.offset }

// Read returns the field value from the class header region hdr, honouring
// the byte order for aligned power-of-two fields. It must not be called on
// blob fields.
func (h Handle) Read(hdr []byte, order bits.ByteOrder) uint64 {
	if h.f.Blob {
		panic("header: Read on blob field " + h.f.Name)
	}
	return bits.ReadUint(hdr, h.f.offset, h.f.SizeBits, order)
}

// Write stores v into the field in the class header region hdr.
// It must not be called on blob fields.
func (h Handle) Write(hdr []byte, order bits.ByteOrder, v uint64) {
	if h.f.Blob {
		panic("header: Write on blob field " + h.f.Name)
	}
	bits.WriteUint(hdr, h.f.offset, h.f.SizeBits, order, v)
}

// Bytes returns the byte region of a blob field within hdr.
func (h Handle) Bytes(hdr []byte) []byte {
	if !h.f.Blob {
		panic("header: Bytes on numeric field " + h.f.Name)
	}
	off := h.f.offset / 8
	return hdr[off : off+h.f.SizeBits/8]
}

// Mode records how a schema was compiled.
type Mode uint8

// Compilation modes.
const (
	// Uncompiled schemas accept AddField but no access.
	Uncompiled Mode = iota
	// Compact is the PA layout: four per-class headers, cross-layer
	// field packing (§2.1).
	Compact
	// Layered is the traditional layout: one block per layer, each
	// padded to 4 bytes, all classes inline.
	Layered
)

// Schema collects the header fields registered by a protocol stack's
// layers and compiles them into a header layout.
type Schema struct {
	fields  []*Field
	mode    Mode
	size    [NumClasses]int // compact: bytes per class header
	total   int             // layered: bytes of the single header
	layers  []string        // registration order of layers (layered mode blocks)
	blkSize map[string]int  // layered: bytes per layer block
}

// New returns an empty schema.
func New() *Schema { return &Schema{blkSize: make(map[string]int)} }

// AddField registers a numeric field of sizeBits (1..64) for the named
// layer. offsetBits fixes the field's bit offset in its compiled class
// header, or DontCare. It returns a handle for later access.
func (s *Schema) AddField(class Class, layer, name string, sizeBits, offsetBits int) (Handle, error) {
	if s.mode != Uncompiled {
		return Handle{}, fmt.Errorf("header: AddField(%s/%s) after compilation", layer, name)
	}
	if class >= NumClasses {
		return Handle{}, fmt.Errorf("header: field %s/%s: invalid class %d", layer, name, class)
	}
	if sizeBits < 1 || sizeBits > 64 {
		return Handle{}, fmt.Errorf("header: field %s/%s: size %d bits out of range [1,64]", layer, name, sizeBits)
	}
	if offsetBits < 0 && offsetBits != DontCare {
		return Handle{}, fmt.Errorf("header: field %s/%s: invalid offset %d", layer, name, offsetBits)
	}
	f := &Field{
		Class: class, Layer: layer, Name: name,
		SizeBits: sizeBits, WantOffset: offsetBits,
		seq: len(s.fields),
	}
	s.fields = append(s.fields, f)
	s.noteLayer(layer)
	return Handle{f}, nil
}

// AddBytes registers a byte-string field of sizeBytes bytes (an address,
// a key). Blob fields are always byte-aligned and accessed via
// Handle.Bytes.
func (s *Schema) AddBytes(class Class, layer, name string, sizeBytes int) (Handle, error) {
	if s.mode != Uncompiled {
		return Handle{}, fmt.Errorf("header: AddBytes(%s/%s) after compilation", layer, name)
	}
	if class >= NumClasses {
		return Handle{}, fmt.Errorf("header: field %s/%s: invalid class %d", layer, name, class)
	}
	if sizeBytes < 1 {
		return Handle{}, fmt.Errorf("header: field %s/%s: size %d bytes out of range", layer, name, sizeBytes)
	}
	f := &Field{
		Class: class, Layer: layer, Name: name,
		SizeBits: sizeBytes * 8, WantOffset: DontCare, Blob: true,
		seq: len(s.fields),
	}
	s.fields = append(s.fields, f)
	s.noteLayer(layer)
	return Handle{f}, nil
}

func (s *Schema) noteLayer(layer string) {
	for _, l := range s.layers {
		if l == layer {
			return
		}
	}
	s.layers = append(s.layers, layer)
}

// Mode returns how the schema has been compiled.
func (s *Schema) Mode() Mode { return s.mode }

// Size returns the compiled byte size of the class header (Compact mode).
func (s *Schema) Size(class Class) int {
	if s.mode != Compact {
		panic("header: Size on non-compact schema")
	}
	return s.size[class]
}

// TotalSize returns the combined size of all headers a normal message
// carries. In Compact mode that excludes ConnID (sent only occasionally);
// in Layered mode it is the full per-layer header including ConnID.
func (s *Schema) TotalSize() int {
	switch s.mode {
	case Compact:
		return s.size[ProtoSpec] + s.size[MsgSpec] + s.size[Gossip]
	case Layered:
		return s.total
	}
	panic("header: TotalSize on uncompiled schema")
}

// Fields returns the registered fields in registration order. The returned
// slice must not be modified.
func (s *Schema) Fields() []Handle {
	hs := make([]Handle, len(s.fields))
	for i, f := range s.fields {
		hs[i] = Handle{f}
	}
	return hs
}

// alignment returns the required bit alignment for a field: natural
// alignment for power-of-two word sizes, byte alignment for blobs and
// byte-multiple sizes, none otherwise.
func alignment(f *Field) int {
	if f.Blob {
		return 8
	}
	switch f.SizeBits {
	case 8, 16, 32, 64:
		return f.SizeBits
	}
	if f.SizeBits%8 == 0 {
		return 8
	}
	return 1
}

// Compile lays out the four compact class headers (paper §2.1). Fields
// with a requested offset are placed first; the rest are placed
// first-fit-decreasing into the remaining gaps, honouring each field's
// natural alignment but ignoring layer boundaries. Each class header is
// rounded up to a whole byte.
func (s *Schema) Compile() error {
	if s.mode != Uncompiled {
		return fmt.Errorf("header: Compile called twice")
	}
	for c := Class(0); c < NumClasses; c++ {
		var fs []*Field
		for _, f := range s.fields {
			if f.Class == c {
				fs = append(fs, f)
			}
		}
		n, err := layoutCompact(fs)
		if err != nil {
			return fmt.Errorf("header: class %s: %w", c, err)
		}
		s.size[c] = n
	}
	s.mode = Compact
	return nil
}

// layoutCompact assigns offsets to fs and returns the header size in bytes.
func layoutCompact(fs []*Field) (int, error) {
	g := newGaps()
	// Fixed-offset fields first, in registration order.
	for _, f := range fs {
		if f.WantOffset == DontCare {
			continue
		}
		if !g.take(f.WantOffset, f.SizeBits) {
			return 0, fmt.Errorf("field %s/%s: requested offset %d overlaps another fixed field",
				f.Layer, f.Name, f.WantOffset)
		}
		f.offset = f.WantOffset
	}
	// Remaining fields: first-fit-decreasing by size, registration order
	// as tiebreak for determinism.
	var free []*Field
	for _, f := range fs {
		if f.WantOffset == DontCare {
			free = append(free, f)
		}
	}
	sort.SliceStable(free, func(i, j int) bool {
		if free[i].SizeBits != free[j].SizeBits {
			return free[i].SizeBits > free[j].SizeBits
		}
		return free[i].seq < free[j].seq
	})
	for _, f := range free {
		off := g.place(f.SizeBits, alignment(f))
		f.offset = off
	}
	end := 0
	for _, f := range fs {
		if e := f.offset + f.SizeBits; e > end {
			end = e
		}
	}
	return (end + 7) / 8, nil
}

// layerAlign is the per-layer header alignment of the original Horus
// system: "each layer's header was aligned to 4 bytes" (§2.1).
const layerAlign = 32 // bits

// CompileLayered lays out the traditional baseline format: one block per
// layer in registration order, fields inside a block placed sequentially
// at their natural (C struct) alignment, each block padded to a 4-byte
// boundary, and all classes inline. Requested offsets are ignored — the
// baseline has no cross-layer coordination.
func (s *Schema) CompileLayered() error {
	if s.mode != Uncompiled {
		return fmt.Errorf("header: CompileLayered called twice")
	}
	off := 0
	for _, layer := range s.layers {
		start := off
		for _, f := range s.fields {
			if f.Layer != layer {
				continue
			}
			a := alignment(f)
			if a < 8 {
				a = 8 // baseline never bit-packs
			}
			if r := off % a; r != 0 {
				off += a - r
			}
			f.offset = off
			off += f.SizeBits
		}
		if r := off % layerAlign; r != 0 {
			off += layerAlign - r
		}
		s.blkSize[layer] = (off - start) / 8
	}
	s.total = off / 8
	s.mode = Layered
	return nil
}

// LayerBlockSize returns the padded byte size of the named layer's block
// (Layered mode).
func (s *Schema) LayerBlockSize(layer string) int { return s.blkSize[layer] }

// Layers returns the layer names in registration order.
func (s *Schema) Layers() []string { return append([]string(nil), s.layers...) }

// PaddingBits returns, for Compact mode, the number of unused bits in the
// class header; for Layered mode (class ignored) the unused bits across
// the whole header.
func (s *Schema) PaddingBits(class Class) int {
	used := 0
	switch s.mode {
	case Compact:
		for _, f := range s.fields {
			if f.Class == class {
				used += f.SizeBits
			}
		}
		return s.size[class]*8 - used
	case Layered:
		for _, f := range s.fields {
			used += f.SizeBits
		}
		return s.total*8 - used
	}
	panic("header: PaddingBits on uncompiled schema")
}

// Report renders a human-readable layout summary, used by the header
// overhead experiment (§2) and cmd/pabench.
func (s *Schema) Report() string {
	var b strings.Builder
	switch s.mode {
	case Compact:
		fmt.Fprintf(&b, "compact layout (PA):\n")
		for c := Class(0); c < NumClasses; c++ {
			fmt.Fprintf(&b, "  %-28s %3d bytes (%d padding bits)\n",
				c.String(), s.size[c], s.PaddingBits(c))
			fs := s.sortedClassFields(c)
			for _, f := range fs {
				fmt.Fprintf(&b, "    bit %4d  %-12s %-10s %d bits\n",
					f.offset, f.Layer, f.Name, f.SizeBits)
			}
		}
		fmt.Fprintf(&b, "  normal message headers: %d bytes (+8-byte preamble)\n", s.TotalSize())
	case Layered:
		fmt.Fprintf(&b, "layered layout (baseline): %d bytes total, %d padding bits\n",
			s.total, s.PaddingBits(0))
		for _, l := range s.layers {
			fmt.Fprintf(&b, "  layer %-12s %3d bytes\n", l, s.blkSize[l])
		}
	default:
		return "uncompiled schema"
	}
	return b.String()
}

func (s *Schema) sortedClassFields(c Class) []*Field {
	var fs []*Field
	for _, f := range s.fields {
		if f.Class == c {
			fs = append(fs, f)
		}
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].offset < fs[j].offset })
	return fs
}

// gaps tracks free bit intervals during compact layout.
type gaps struct {
	// sorted, disjoint [start, end) intervals; the last extends to +inf
	// (end == -1).
	iv []interval
}

type interval struct{ start, end int }

func newGaps() *gaps { return &gaps{iv: []interval{{0, -1}}} }

// take reserves [off, off+size) exactly; it reports false on overlap with
// an existing reservation.
func (g *gaps) take(off, size int) bool {
	for i, v := range g.iv {
		if off < v.start {
			return false // starts inside a reservation
		}
		if v.end != -1 && off >= v.end {
			continue
		}
		// off is inside gap i; the whole field must fit in this gap.
		end := off + size
		if v.end != -1 && end > v.end {
			return false
		}
		g.split(i, off, end)
		return true
	}
	return false
}

// place finds the first gap that can hold size bits at the given alignment,
// reserves it, and returns the chosen offset.
func (g *gaps) place(size, align int) int {
	for i, v := range g.iv {
		off := v.start
		if r := off % align; r != 0 {
			off += align - r
		}
		end := off + size
		if v.end != -1 && end > v.end {
			continue
		}
		g.split(i, off, end)
		return off
	}
	panic("header: unbounded gap list exhausted") // unreachable: last gap is infinite
}

// split carves [off, end) out of gap i.
func (g *gaps) split(i, off, end int) {
	v := g.iv[i]
	var repl []interval
	if off > v.start {
		repl = append(repl, interval{v.start, off})
	}
	if v.end == -1 || end < v.end {
		repl = append(repl, interval{end, v.end})
	}
	g.iv = append(g.iv[:i], append(repl, g.iv[i+1:]...)...)
}

package header

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"paccel/internal/bits"
)

func mustField(t *testing.T, s *Schema, c Class, layer, name string, size, off int) Handle {
	t.Helper()
	h, err := s.AddField(c, layer, name, size, off)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAddFieldValidation(t *testing.T) {
	s := New()
	if _, err := s.AddField(ProtoSpec, "l", "f", 0, DontCare); err == nil {
		t.Fatal("accepted 0-bit field")
	}
	if _, err := s.AddField(ProtoSpec, "l", "f", 65, DontCare); err == nil {
		t.Fatal("accepted 65-bit field")
	}
	if _, err := s.AddField(Class(9), "l", "f", 8, DontCare); err == nil {
		t.Fatal("accepted bad class")
	}
	if _, err := s.AddField(ProtoSpec, "l", "f", 8, -5); err == nil {
		t.Fatal("accepted negative non-DontCare offset")
	}
	if _, err := s.AddBytes(ConnID, "l", "b", 0); err == nil {
		t.Fatal("accepted 0-byte blob")
	}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddField(ProtoSpec, "l", "late", 8, DontCare); err == nil {
		t.Fatal("accepted AddField after Compile")
	}
	if err := s.Compile(); err == nil {
		t.Fatal("accepted double Compile")
	}
}

func TestCompactPacksAcrossLayers(t *testing.T) {
	s := New()
	// Two layers each register small fields; the paper's point is that
	// they share bytes rather than each burning a padded header.
	a := mustField(t, s, ProtoSpec, "seqno", "seq", 32, DontCare)
	b := mustField(t, s, ProtoSpec, "retrans", "type", 2, DontCare)
	c := mustField(t, s, ProtoSpec, "frag", "isfrag", 1, DontCare)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if got := s.Size(ProtoSpec); got != 5 {
		t.Fatalf("proto-specific header = %d bytes, want 5 (32+2+1 bits)", got)
	}
	hdr := make([]byte, s.Size(ProtoSpec))
	a.Write(hdr, bits.BigEndian, 0xCAFEBABE)
	b.Write(hdr, bits.BigEndian, 2)
	c.Write(hdr, bits.BigEndian, 1)
	if a.Read(hdr, bits.BigEndian) != 0xCAFEBABE || b.Read(hdr, bits.BigEndian) != 2 || c.Read(hdr, bits.BigEndian) != 1 {
		t.Fatal("read-back mismatch")
	}
}

func TestCompactAlignment(t *testing.T) {
	s := New()
	f32 := mustField(t, s, MsgSpec, "l", "len", 32, DontCare)
	f1 := mustField(t, s, MsgSpec, "l", "flag", 1, DontCare)
	f16 := mustField(t, s, MsgSpec, "l", "cksum", 16, DontCare)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if f32.Offset()%32 != 0 {
		t.Errorf("32-bit field at %d, want 32-bit aligned", f32.Offset())
	}
	if f16.Offset()%16 != 0 {
		t.Errorf("16-bit field at %d, want 16-bit aligned", f16.Offset())
	}
	_ = f1
	if s.Size(MsgSpec) != 7 { // 32+16+1 bits = 49 -> 7 bytes
		t.Errorf("size = %d, want 7", s.Size(MsgSpec))
	}
}

func TestSmallFieldsFillGaps(t *testing.T) {
	s := New()
	// A 4-bit field plus a 32-bit field plus another 4-bit field: the
	// two nibbles should pack around the word, total 5 bytes.
	mustField(t, s, Gossip, "a", "n1", 4, DontCare)
	mustField(t, s, Gossip, "b", "word", 32, DontCare)
	mustField(t, s, Gossip, "c", "n2", 4, DontCare)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if s.Size(Gossip) != 5 {
		t.Fatalf("size = %d, want 5", s.Size(Gossip))
	}
}

func TestFixedOffsets(t *testing.T) {
	s := New()
	f := mustField(t, s, ProtoSpec, "l", "fixed", 8, 16)
	g := mustField(t, s, ProtoSpec, "l", "free", 16, DontCare)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if f.Offset() != 16 {
		t.Fatalf("fixed field at %d, want 16", f.Offset())
	}
	if g.Offset() == 16 || (g.Offset() < 24 && g.Offset()+16 > 16) {
		t.Fatalf("free field overlaps fixed: offset %d", g.Offset())
	}
}

func TestFixedOffsetOverlapRejected(t *testing.T) {
	s := New()
	mustField(t, s, ProtoSpec, "l", "a", 16, 0)
	mustField(t, s, ProtoSpec, "l", "b", 16, 8)
	if err := s.Compile(); err == nil {
		t.Fatal("overlapping fixed offsets accepted")
	}
}

func TestBlobFields(t *testing.T) {
	s := New()
	addr, err := s.AddBytes(ConnID, "bottom", "src", 32)
	if err != nil {
		t.Fatal(err)
	}
	small := mustField(t, s, ConnID, "bottom", "port", 16, DontCare)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if addr.Offset()%8 != 0 {
		t.Fatalf("blob at bit %d, not byte aligned", addr.Offset())
	}
	hdr := make([]byte, s.Size(ConnID))
	copy(addr.Bytes(hdr), "this-is-a-32-byte-address-value!")
	small.Write(hdr, bits.BigEndian, 4242)
	if string(addr.Bytes(hdr)) != "this-is-a-32-byte-address-value!" {
		t.Fatal("blob round-trip failed")
	}
	if small.Read(hdr, bits.BigEndian) != 4242 {
		t.Fatal("numeric field corrupted by blob")
	}
}

func TestBlobAccessorPanics(t *testing.T) {
	s := New()
	blob, _ := s.AddBytes(ConnID, "l", "b", 4)
	num := mustField(t, s, ConnID, "l", "n", 8, DontCare)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, s.Size(ConnID))
	for _, f := range []func(){
		func() { blob.Read(hdr, bits.BigEndian) },
		func() { blob.Write(hdr, bits.BigEndian, 1) },
		func() { num.Bytes(hdr) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTotalSizeExcludesConnID(t *testing.T) {
	s := New()
	if _, err := s.AddBytes(ConnID, "bottom", "addr", 76); err != nil {
		t.Fatal(err)
	}
	mustField(t, s, ProtoSpec, "seqno", "seq", 32, DontCare)
	mustField(t, s, MsgSpec, "chksum", "ck", 16, DontCare)
	mustField(t, s, Gossip, "retrans", "ack", 32, DontCare)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	// ConnID is sent only occasionally; the normal message carries
	// proto+msg+gossip = 4+2+4 = 10 bytes.
	if got := s.TotalSize(); got != 10 {
		t.Fatalf("TotalSize = %d, want 10", got)
	}
	if s.Size(ConnID) != 76 {
		t.Fatalf("ConnID size = %d, want 76", s.Size(ConnID))
	}
}

// The paper's headline comparison: a small stack whose per-layer aligned
// headers waste at least 12 bytes of padding, against compact headers that
// eliminate it (§2.1).
func TestLayeredVsCompactPadding(t *testing.T) {
	build := func() *Schema {
		s := New()
		mustField(t, s, ProtoSpec, "seqno", "seq", 32, DontCare)
		mustField(t, s, ProtoSpec, "retrans", "type", 2, DontCare)
		mustField(t, s, Gossip, "retrans", "ack", 32, DontCare)
		mustField(t, s, Gossip, "window", "credit", 16, DontCare)
		mustField(t, s, MsgSpec, "chksum", "len", 16, DontCare)
		mustField(t, s, MsgSpec, "chksum", "ck", 16, DontCare)
		mustField(t, s, ProtoSpec, "frag", "isfrag", 1, DontCare)
		return s
	}
	pa := build()
	if err := pa.Compile(); err != nil {
		t.Fatal(err)
	}
	base := build()
	if err := base.CompileLayered(); err != nil {
		t.Fatal(err)
	}
	if pa.TotalSize() >= base.TotalSize() {
		t.Fatalf("compact %d >= layered %d bytes", pa.TotalSize(), base.TotalSize())
	}
	// Baseline blocks are 4-byte padded: frag's single bit costs 4 bytes.
	if got := base.LayerBlockSize("frag"); got != 4 {
		t.Fatalf("frag block = %d, want 4", got)
	}
	if base.PaddingBits(0) < 12*8-64 { // generous lower bound on waste
		t.Logf("layered padding = %d bits", base.PaddingBits(0))
	}
}

func TestLayeredLayout(t *testing.T) {
	s := New()
	a := mustField(t, s, ProtoSpec, "l1", "a", 8, DontCare)
	b := mustField(t, s, ProtoSpec, "l1", "b", 32, DontCare)
	c := mustField(t, s, ProtoSpec, "l2", "c", 16, DontCare)
	if err := s.CompileLayered(); err != nil {
		t.Fatal(err)
	}
	// l1: a at 0, b naturally aligned at 32, block = 8 bytes.
	if a.Offset() != 0 || b.Offset() != 32 {
		t.Fatalf("a=%d b=%d", a.Offset(), b.Offset())
	}
	if s.LayerBlockSize("l1") != 8 {
		t.Fatalf("l1 block = %d", s.LayerBlockSize("l1"))
	}
	// l2 starts on the next 4-byte boundary.
	if c.Offset() != 64 {
		t.Fatalf("c=%d", c.Offset())
	}
	if s.TotalSize() != 12 {
		t.Fatalf("total = %d", s.TotalSize())
	}
	hdr := make([]byte, s.TotalSize())
	b.Write(hdr, bits.LittleEndian, 0x01020304)
	if b.Read(hdr, bits.LittleEndian) != 0x01020304 {
		t.Fatal("layered read-back failed")
	}
}

func TestReport(t *testing.T) {
	s := New()
	mustField(t, s, ProtoSpec, "seqno", "seq", 32, DontCare)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	r := s.Report()
	if !strings.Contains(r, "seq") || !strings.Contains(r, "protocol-specific") {
		t.Fatalf("report missing fields:\n%s", r)
	}
	s2 := New()
	mustField(t, s2, ProtoSpec, "seqno", "seq", 32, DontCare)
	if err := s2.CompileLayered(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s2.Report(), "layered") {
		t.Fatal("layered report missing")
	}
	if New().Report() != "uncompiled schema" {
		t.Fatal("uncompiled report")
	}
}

func TestLayersAccessor(t *testing.T) {
	s := New()
	mustField(t, s, ProtoSpec, "x", "a", 8, DontCare)
	mustField(t, s, ProtoSpec, "y", "b", 8, DontCare)
	mustField(t, s, Gossip, "x", "c", 8, DontCare)
	ls := s.Layers()
	if len(ls) != 2 || ls[0] != "x" || ls[1] != "y" {
		t.Fatalf("layers = %v", ls)
	}
}

func TestHandleValid(t *testing.T) {
	var h Handle
	if h.Valid() {
		t.Fatal("zero handle valid")
	}
	s := New()
	h = mustField(t, s, ProtoSpec, "l", "f", 8, DontCare)
	if !h.Valid() {
		t.Fatal("real handle invalid")
	}
	if h.Class() != ProtoSpec || h.Name() != "f" || h.SizeBits() != 8 {
		t.Fatal("handle metadata wrong")
	}
}

// Property: however fields are registered, compilation never overlaps two
// fields and every field round-trips any value, in both byte orders.
func TestQuickCompactNoOverlap(t *testing.T) {
	type spec struct {
		Class uint8
		Size  uint8
	}
	f := func(specs []spec, seed int64) bool {
		if len(specs) > 24 {
			specs = specs[:24]
		}
		s := New()
		var hs []Handle
		for i, sp := range specs {
			size := int(sp.Size%64) + 1
			h, err := s.AddField(Class(sp.Class%NumClasses), "l", "f", size, DontCare)
			if err != nil {
				return false
			}
			hs = append(hs, h)
			_ = i
		}
		if err := s.Compile(); err != nil {
			return false
		}
		// Overlap check per class.
		for i := range hs {
			for j := i + 1; j < len(hs); j++ {
				if hs[i].Class() != hs[j].Class() {
					continue
				}
				a0, a1 := hs[i].Offset(), hs[i].Offset()+hs[i].SizeBits()
				b0, b1 := hs[j].Offset(), hs[j].Offset()+hs[j].SizeBits()
				if a0 < b1 && b0 < a1 {
					return false
				}
			}
		}
		// Round-trip all fields simultaneously.
		rng := rand.New(rand.NewSource(seed))
		hdrs := [NumClasses][]byte{}
		for c := Class(0); c < NumClasses; c++ {
			hdrs[c] = make([]byte, s.Size(c))
		}
		order := bits.BigEndian
		if seed%2 == 0 {
			order = bits.LittleEndian
		}
		want := make([]uint64, len(hs))
		for i, h := range hs {
			want[i] = rng.Uint64() & bits.Mask(h.SizeBits())
			h.Write(hdrs[h.Class()], order, want[i])
		}
		for i, h := range hs {
			if h.Read(hdrs[h.Class()], order) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: compact layout never uses more bytes than the layered baseline.
func TestQuickCompactNeverLarger(t *testing.T) {
	type spec struct {
		Class, Size, Layer uint8
	}
	f := func(specs []spec) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 20 {
			specs = specs[:20]
		}
		build := func() *Schema {
			s := New()
			for _, sp := range specs {
				layer := string(rune('a' + sp.Layer%6))
				if _, err := s.AddField(Class(sp.Class%NumClasses), layer, "f", int(sp.Size%64)+1, DontCare); err != nil {
					return nil
				}
			}
			return s
		}
		pa, base := build(), build()
		if pa == nil || base == nil {
			return false
		}
		if err := pa.Compile(); err != nil {
			return false
		}
		if err := base.CompileLayered(); err != nil {
			return false
		}
		paTotal := pa.TotalSize() + pa.Size(ConnID)
		return paTotal <= base.TotalSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		s.AddField(ProtoSpec, "seqno", "seq", 32, DontCare)
		s.AddField(ProtoSpec, "retrans", "type", 2, DontCare)
		s.AddField(ProtoSpec, "frag", "isfrag", 1, DontCare)
		s.AddField(MsgSpec, "chksum", "len", 16, DontCare)
		s.AddField(MsgSpec, "chksum", "ck", 16, DontCare)
		s.AddField(Gossip, "retrans", "ack", 32, DontCare)
		s.AddField(Gossip, "window", "credit", 16, DontCare)
		s.AddBytes(ConnID, "bottom", "addr", 76)
		if err := s.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFieldReadWrite(b *testing.B) {
	s := New()
	h, _ := s.AddField(ProtoSpec, "seqno", "seq", 32, DontCare)
	if err := s.Compile(); err != nil {
		b.Fatal(err)
	}
	hdr := make([]byte, s.Size(ProtoSpec))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Write(hdr, bits.BigEndian, uint64(i))
		if h.Read(hdr, bits.BigEndian) != uint64(i)&0xFFFFFFFF {
			b.Fatal("mismatch")
		}
	}
}

// Property: layered (baseline) compilation never overlaps two fields
// either, and blocks appear in registration order with 4-byte padding.
func TestQuickLayeredNoOverlap(t *testing.T) {
	type spec struct {
		Class, Size, Layer uint8
	}
	f := func(specs []spec) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 20 {
			specs = specs[:20]
		}
		s := New()
		var hs []Handle
		for _, sp := range specs {
			layer := string(rune('a' + sp.Layer%5))
			h, err := s.AddField(Class(sp.Class%NumClasses), layer, "f", int(sp.Size%64)+1, DontCare)
			if err != nil {
				return false
			}
			hs = append(hs, h)
		}
		if err := s.CompileLayered(); err != nil {
			return false
		}
		for i := range hs {
			for j := i + 1; j < len(hs); j++ {
				a0, a1 := hs[i].Offset(), hs[i].Offset()+hs[i].SizeBits()
				b0, b1 := hs[j].Offset(), hs[j].Offset()+hs[j].SizeBits()
				if a0 < b1 && b0 < a1 {
					return false
				}
			}
		}
		// Every layer block is a whole multiple of 4 bytes.
		for _, l := range s.Layers() {
			if s.LayerBlockSize(l)%4 != 0 {
				return false
			}
		}
		return s.TotalSize()%4 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

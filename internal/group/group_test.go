package group

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

var t0 = time.Date(1996, 8, 28, 0, 0, 0, 0, time.UTC)

// recorder captures deliveries at one member.
type recorder struct {
	mu   sync.Mutex
	msgs []string // "origin:payload"
}

func (r *recorder) hook(g *Group) {
	g.OnDeliver(func(origin string, p []byte) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.msgs = append(r.msgs, origin+":"+string(p))
	})
}

func (r *recorder) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.msgs...)
}

func meshWithRecorders(t *testing.T, names []string, clk *vclock.Manual, cfg netsim.Config, order Order, seq string) (*Mesh, map[string]*recorder) {
	t.Helper()
	m, err := NewMesh(names, clk, cfg, order, seq)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	recs := make(map[string]*recorder)
	for _, n := range names {
		recs[n] = &recorder{}
		recs[n].hook(m.Groups[n])
	}
	return m, recs
}

func TestFrameCodec(t *testing.T) {
	for _, c := range []struct {
		kind, ctl byte
		origin    string
		seq       uint32
		payload   string
	}{
		{kindFIFO, ctlApp, "alice", 0, "hello"},
		{kindToSeq, ctlApp, "bob", 0, ""},
		{kindSequenced, ctlApp, "carol", 42, "ordered"},
		{kindSequenced, ctlView, "seq", 7, "view-bytes"},
	} {
		f := encodeFrame(c.kind, c.ctl, c.origin, c.seq, []byte(c.payload))
		kind, ctl, origin, seq, payload, err := decodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if kind != c.kind || ctl != c.ctl || origin != c.origin || string(payload) != c.payload {
			t.Fatalf("round trip: %v", c)
		}
		if c.kind == kindSequenced && seq != c.seq {
			t.Fatalf("seq = %d", seq)
		}
	}
	for _, bad := range [][]byte{nil, {0}, {0, 0}, {0, 0, 5, 'a'}, {2, 0, 1, 'x', 0, 0}, {9, 0, 0}, {0, 7, 0}} {
		if _, _, _, _, _, err := decodeFrame(bad); err == nil {
			t.Fatalf("decodeFrame(%v) accepted", bad)
		}
	}
}

func TestFIFOMulticast(t *testing.T) {
	clk := vclock.NewManual(t0)
	names := []string{"a", "b", "c"}
	m, recs := meshWithRecorders(t, names, clk, netsim.Config{}, FIFO, "")
	for i := 0; i < 5; i++ {
		if err := m.Groups["a"].Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	for _, n := range names {
		got := recs[n].list()
		if len(got) != 5 {
			t.Fatalf("%s delivered %d", n, len(got))
		}
		for i, msg := range got {
			if msg != fmt.Sprintf("a:m%d", i) {
				t.Fatalf("%s out of order: %v", n, got)
			}
		}
	}
}

func TestFIFOSelfDelivery(t *testing.T) {
	clk := vclock.NewManual(t0)
	m, recs := meshWithRecorders(t, []string{"a", "b"}, clk, netsim.Config{}, FIFO, "")
	if err := m.Groups["a"].Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := recs["a"].list(); len(got) != 1 || got[0] != "a:x" {
		t.Fatalf("self delivery = %v", got)
	}
}

func TestTotalOrderIdenticalEverywhere(t *testing.T) {
	clk := vclock.NewManual(t0)
	names := []string{"a", "b", "c", "d"}
	m, recs := meshWithRecorders(t, names, clk, netsim.Config{Latency: 40 * time.Microsecond}, Total, "a")
	// Everyone sends concurrently (interleaved in virtual time).
	for i := 0; i < 6; i++ {
		for _, n := range names {
			if err := m.Groups[n].Send([]byte(fmt.Sprintf("%s-%d", n, i))); err != nil {
				t.Fatal(err)
			}
		}
		clk.Advance(10 * time.Microsecond)
	}
	clk.Advance(time.Second)
	want := recs["a"].list()
	if len(want) != 24 {
		t.Fatalf("sequencer delivered %d/24", len(want))
	}
	for _, n := range names[1:] {
		got := recs[n].list()
		if len(got) != len(want) {
			t.Fatalf("%s delivered %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order differs at %d: %s saw %q, sequencer %q", i, n, got[i], want[i])
			}
		}
	}
	if m.Groups["a"].Stats().Sequenced != 24 {
		t.Fatalf("sequenced = %d", m.Groups["a"].Stats().Sequenced)
	}
}

func TestTotalOrderUnderLossAndReorder(t *testing.T) {
	clk := vclock.NewManual(t0)
	names := []string{"a", "b", "c"}
	m, recs := meshWithRecorders(t, names, clk, netsim.Config{
		Latency: 60 * time.Microsecond, LossRate: 0.2, ReorderRate: 0.2, Seed: 17,
	}, Total, "b")
	rng := rand.New(rand.NewSource(9))
	const per = 10
	for i := 0; i < per; i++ {
		for _, n := range names {
			if err := m.Groups[n].Send([]byte(fmt.Sprintf("%s%d", n, i))); err != nil {
				t.Fatal(err)
			}
			clk.Advance(time.Duration(rng.Intn(100)) * time.Microsecond)
		}
	}
	total := per * len(names)
	allDone := func() bool {
		for _, n := range names {
			if len(recs[n].list()) < total {
				return false
			}
		}
		return true
	}
	for i := 0; i < 400 && !allDone(); i++ {
		clk.Advance(200 * time.Millisecond)
	}
	want := recs["a"].list()
	if len(want) != total {
		t.Fatalf("a delivered %d/%d", len(want), total)
	}
	for _, n := range names[1:] {
		got := recs[n].list()
		if len(got) != total {
			t.Fatalf("%s delivered %d/%d", n, len(got), total)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("total order violated at %d: %q vs %q", i, got[i], want[i])
			}
		}
	}
}

func TestFIFOPerSenderUnderLoss(t *testing.T) {
	clk := vclock.NewManual(t0)
	names := []string{"a", "b", "c"}
	m, recs := meshWithRecorders(t, names, clk, netsim.Config{
		Latency: 50 * time.Microsecond, LossRate: 0.25, Seed: 4,
	}, FIFO, "")
	const per = 15
	for i := 0; i < per; i++ {
		for _, n := range names {
			if err := m.Groups[n].Send([]byte(fmt.Sprintf("%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		clk.Advance(time.Millisecond)
	}
	allDone := func() bool {
		for _, n := range names {
			if len(recs[n].list()) < per*len(names) {
				return false
			}
		}
		return true
	}
	for i := 0; i < 400 && !allDone(); i++ {
		clk.Advance(200 * time.Millisecond)
	}
	// Every member sees every sender's stream gap-free and in order.
	for _, n := range names {
		got := recs[n].list()
		if len(got) != per*len(names) {
			t.Fatalf("%s delivered %d", n, len(got))
		}
		next := map[string]int{}
		for _, msg := range got {
			var origin string
			var k int
			if _, err := fmt.Sscanf(msg, "%1s:%d", &origin, &k); err != nil {
				t.Fatalf("parse %q: %v", msg, err)
			}
			if k != next[origin] {
				t.Fatalf("%s: sender %s out of order: got %d want %d", n, origin, k, next[origin])
			}
			next[origin]++
		}
	}
}

func TestSequencedFramesOnlyFromSequencer(t *testing.T) {
	g := New("me", Total, "seq")
	var got []string
	g.OnDeliver(func(origin string, p []byte) { got = append(got, origin) })
	// A forged sequenced frame from a non-sequencer peer is ignored.
	g.onWire("mallory", encodeFrame(kindSequenced, ctlApp, "mallory", 0, []byte("x")))
	if len(got) != 0 {
		t.Fatal("accepted sequenced frame from non-sequencer")
	}
	g.onWire("seq", encodeFrame(kindSequenced, ctlApp, "alice", 0, []byte("x")))
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("got %v", got)
	}
}

func TestSendWithoutSequencerErrors(t *testing.T) {
	g := New("me", Total, "seq")
	if err := g.Send([]byte("x")); err != ErrNoSequencer {
		t.Fatalf("err = %v", err)
	}
}

func TestMeshValidation(t *testing.T) {
	clk := vclock.NewManual(t0)
	if _, err := NewMesh([]string{"a", "b"}, clk, netsim.Config{}, Total, "nobody"); err == nil {
		t.Fatal("bogus sequencer accepted")
	}
}

func TestMembers(t *testing.T) {
	clk := vclock.NewManual(t0)
	m, _ := meshWithRecorders(t, []string{"a", "b", "c"}, clk, netsim.Config{}, FIFO, "")
	got := m.Groups["a"].Members()
	if len(got) != 2 {
		t.Fatalf("members = %v", got)
	}
	if m.Groups["a"].Self() != "a" {
		t.Fatal("self")
	}
}

func TestMalformedFramesDropped(t *testing.T) {
	g := New("me", FIFO, "")
	delivered := 0
	g.OnDeliver(func(string, []byte) { delivered++ })
	g.onWire("peer", []byte{})
	g.onWire("peer", []byte{0})
	g.onWire("peer", []byte{0, 0, 200, 'x'})
	g.onWire("peer", []byte{77, 0, 0})
	g.onWire("peer", []byte{0, 9, 0})
	if delivered != 0 {
		t.Fatal("malformed frame delivered")
	}
}

// Property: under arbitrary interleavings of senders over a clean
// network, FIFO multicast preserves every sender's order at every member.
func TestQuickFIFOOrderProperty(t *testing.T) {
	f := func(schedule []uint8, seed int64) bool {
		if len(schedule) == 0 {
			return true
		}
		if len(schedule) > 60 {
			schedule = schedule[:60]
		}
		clk := vclock.NewManual(t0)
		names := []string{"a", "b", "c"}
		m, err := NewMesh(names, clk, netsim.Config{
			Latency: 20 * time.Microsecond, Seed: seed,
		}, FIFO, "")
		if err != nil {
			return false
		}
		defer m.Close()
		recs := make(map[string]*recorder)
		for _, n := range names {
			recs[n] = &recorder{}
			recs[n].hook(m.Groups[n])
		}
		counts := map[string]int{}
		for _, pick := range schedule {
			sender := names[int(pick)%len(names)]
			msg := fmt.Sprintf("%d", counts[sender])
			counts[sender]++
			if err := m.Groups[sender].Send([]byte(msg)); err != nil {
				return false
			}
			clk.Advance(time.Duration(pick) * time.Microsecond)
		}
		clk.Advance(time.Second)
		for _, n := range names {
			next := map[string]int{}
			seen := 0
			for _, entry := range recs[n].list() {
				var origin string
				var k int
				if _, err := fmt.Sscanf(entry, "%1s:%d", &origin, &k); err != nil {
					return false
				}
				if k != next[origin] {
					return false
				}
				next[origin]++
				seen++
			}
			if seen != len(schedule) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package group

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

type viewRecorder struct {
	mu    sync.Mutex
	views []View
	// pos[i] is how many messages had been delivered when view i
	// installed — the virtual-synchrony cut.
	pos []int
	rec *recorder
}

func (vr *viewRecorder) hook(g *Group, rec *recorder) {
	vr.rec = rec
	g.OnView(func(v View) {
		vr.mu.Lock()
		defer vr.mu.Unlock()
		vr.views = append(vr.views, v)
		vr.pos = append(vr.pos, len(rec.list()))
	})
}

func (vr *viewRecorder) snapshot() ([]View, []int) {
	vr.mu.Lock()
	defer vr.mu.Unlock()
	return append([]View(nil), vr.views...), append([]int(nil), vr.pos...)
}

func TestViewCodec(t *testing.T) {
	v := View{ID: 3, Members: []string{"a", "bb", "ccc"}}
	got, err := decodeView(encodeView(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 3 || len(got.Members) != 3 || got.Members[2] != "ccc" {
		t.Fatalf("round trip: %+v", got)
	}
	for _, bad := range [][]byte{nil, {1}, {0, 0, 0, 1, 0, 2, 1}, {0, 0, 0, 1, 0, 1, 5, 'a'}} {
		if _, err := decodeView(bad); err == nil {
			t.Fatalf("decodeView(%v) accepted", bad)
		}
	}
	if v.String() == "" || !v.Includes("bb") || v.Includes("zz") {
		t.Fatal("view helpers")
	}
}

func TestViewRequiresTotalOrder(t *testing.T) {
	g := New("a", FIFO, "")
	if err := g.ProposeView([]string{"a"}); err != ErrNeedTotalOrder {
		t.Fatalf("err = %v", err)
	}
}

func TestViewInstallsEverywhere(t *testing.T) {
	clk := vclock.NewManual(t0)
	names := []string{"a", "b", "c"}
	m, recs := meshWithRecorders(t, names, clk, netsim.Config{Latency: 30 * time.Microsecond}, Total, "a")
	vrs := make(map[string]*viewRecorder)
	for _, n := range names {
		vrs[n] = &viewRecorder{}
		vrs[n].hook(m.Groups[n], recs[n])
	}
	if err := m.Groups["b"].ProposeView([]string{"c", "a", "b", "a"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	for _, n := range names {
		views, _ := vrs[n].snapshot()
		if len(views) != 1 {
			t.Fatalf("%s installed %d views", n, len(views))
		}
		v := views[0]
		if v.ID != 1 {
			t.Fatalf("%s: view id = %d", n, v.ID)
		}
		// Normalized: sorted, deduplicated.
		if len(v.Members) != 3 || v.Members[0] != "a" || v.Members[2] != "c" {
			t.Fatalf("%s: members = %v", n, v.Members)
		}
		if got := m.Groups[n].CurrentView(); got.ID != 1 {
			t.Fatalf("%s: current view = %v", n, got)
		}
	}
}

// TestVirtualSynchronyCut is the property that makes views useful: every
// member installs the view at the same position in the message stream —
// the set of messages delivered before the view is identical everywhere.
func TestVirtualSynchronyCut(t *testing.T) {
	clk := vclock.NewManual(t0)
	names := []string{"a", "b", "c"}
	m, recs := meshWithRecorders(t, names, clk, netsim.Config{Latency: 45 * time.Microsecond}, Total, "a")
	vrs := make(map[string]*viewRecorder)
	for _, n := range names {
		vrs[n] = &viewRecorder{}
		vrs[n].hook(m.Groups[n], recs[n])
	}
	// Interleave data and a view change racing from different members.
	for i := 0; i < 4; i++ {
		for _, n := range names {
			if err := m.Groups[n].Send([]byte(fmt.Sprintf("%s-%d", n, i))); err != nil {
				t.Fatal(err)
			}
		}
		if i == 1 {
			if err := m.Groups["c"].ProposeView(names); err != nil {
				t.Fatal(err)
			}
		}
		clk.Advance(20 * time.Microsecond)
	}
	clk.Advance(time.Second)

	_, posA := vrs["a"].snapshot()
	if len(posA) != 1 {
		t.Fatalf("a installed %d views", len(posA))
	}
	cut := posA[0]
	prefixA := recs["a"].list()[:cut]
	for _, n := range names[1:] {
		_, pos := vrs[n].snapshot()
		if len(pos) != 1 {
			t.Fatalf("%s installed %d views", n, len(pos))
		}
		if pos[0] != cut {
			t.Fatalf("%s installed the view after %d messages, a after %d", n, pos[0], cut)
		}
		prefix := recs[n].list()[:cut]
		for i := range prefixA {
			if prefix[i] != prefixA[i] {
				t.Fatalf("pre-view prefix differs at %d", i)
			}
		}
	}
}

func TestStaleViewIgnored(t *testing.T) {
	g := New("me", Total, "seq")
	installed := 0
	g.OnView(func(View) { installed++ })
	inject := func(v View) {
		g.onWire("seq", encodeFrame(kindSequenced, ctlView, "seq", 0, encodeView(v)))
	}
	inject(View{ID: 2, Members: []string{"a"}})
	inject(View{ID: 1, Members: []string{"b"}}) // stale
	inject(View{ID: 2, Members: []string{"c"}}) // duplicate
	if installed != 1 {
		t.Fatalf("installed = %d", installed)
	}
	if got := g.CurrentView(); got.ID != 2 || got.Members[0] != "a" {
		t.Fatalf("current = %v", got)
	}
	inject(View{ID: 3, Members: []string{"a", "b"}})
	if installed != 2 {
		t.Fatalf("installed = %d", installed)
	}
}

func TestViewPayloadsNeverCollideWithData(t *testing.T) {
	// Application payloads that look like view announcements must be
	// delivered as data, never installed (the ctl byte keeps the
	// namespaces separate).
	clk := vclock.NewManual(t0)
	names := []string{"a", "b"}
	m, recs := meshWithRecorders(t, names, clk, netsim.Config{}, Total, "a")
	installed := 0
	m.Groups["b"].OnView(func(View) { installed++ })
	poison := encodeView(View{ID: 99, Members: []string{"mallory"}})
	if err := m.Groups["a"].Send(poison); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if installed != 0 {
		t.Fatal("application payload installed as a view")
	}
	if got := recs["b"].list(); len(got) != 1 {
		t.Fatalf("payload not delivered as data: %v", got)
	}
}

// Package group extends the Protocol Accelerator to group communication —
// the paper presents point-to-point "for clarity, but the techniques
// extend to multicast protocols" (§1), and Horus itself is a group
// communication system.
//
// A group is built from ordinary accelerated point-to-point connections,
// one per peer, so every member-to-member channel enjoys the PA fast
// path, compact headers, and reliability. On top of those FIFO
// exactly-once channels the group offers two delivery orders:
//
//   - FIFO: sends fan out directly; receivers observe each sender's
//     messages in that sender's order (per-channel FIFO gives per-sender
//     FIFO).
//   - Total: a fixed sequencer member orders all messages. Because every
//     sequenced message reaches a member over the single FIFO channel
//     from the sequencer, total order needs no holdback queue — the
//     channel is the order.
package group

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Order selects the group's delivery ordering guarantee.
type Order int

// Delivery orders.
const (
	// FIFO delivers each sender's messages in the order it sent them.
	FIFO Order = iota
	// Total delivers all messages in one global order, identical at
	// every member, via a sequencer.
	Total
)

// Conn is the point-to-point surface the group needs; *core.Conn
// satisfies it.
type Conn interface {
	Send(payload []byte) error
	OnDeliver(fn func(payload []byte))
}

// ErrNoSequencer is returned by Send in Total order when the sequencer is
// neither the local member nor joined.
var ErrNoSequencer = errors.New("group: sequencer not reachable")

// Frame kinds on the wire (first byte of every group frame).
const (
	kindFIFO      = 0 // direct fan-out data
	kindToSeq     = 1 // unsequenced data on its way to the sequencer
	kindSequenced = 2 // sequencer-ordered broadcast
)

// Frame control classes (second byte): application data or a membership
// view announcement (see views.go).
const (
	ctlApp  = 0
	ctlView = 1
)

// Group is one member's view of a process group.
type Group struct {
	self      string
	order     Order
	sequencer string

	mu      sync.Mutex
	members map[string]Conn
	deliver func(origin string, payload []byte)

	nextSeq  uint32 // sequencer only: next global sequence number
	lastSeen uint32 // diagnostic: last sequenced number delivered

	view   View
	onView func(v View)

	stats Stats
}

// Stats counts group events at this member.
type Stats struct {
	Sent, Delivered   uint64
	Sequenced         uint64 // messages this member ordered (sequencer only)
	Forwarded         uint64 // messages sent to the sequencer
	FanoutUnicast     uint64 // point-to-point sends performed
	DeliveredInOrder  uint64
	DeliveredFIFOOnly uint64
}

// New creates this member's group view. For Total order, sequencer names
// the ordering member (which may be self).
func New(self string, order Order, sequencer string) *Group {
	return &Group{
		self:      self,
		order:     order,
		sequencer: sequencer,
		members:   make(map[string]Conn),
	}
}

// Self returns this member's name.
func (g *Group) Self() string { return g.self }

// OnDeliver installs the application delivery callback. origin names the
// member whose Send produced the payload.
func (g *Group) OnDeliver(fn func(origin string, payload []byte)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.deliver = fn
}

// Join attaches the point-to-point connection to peer and starts
// consuming its deliveries. Join every peer before sending.
func (g *Group) Join(peer string, conn Conn) {
	g.mu.Lock()
	g.members[peer] = conn
	g.mu.Unlock()
	conn.OnDeliver(func(p []byte) { g.onWire(peer, p) })
}

// Members returns the joined peer names.
func (g *Group) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.members))
	for n := range g.members {
		names = append(names, n)
	}
	return names
}

// Stats returns a snapshot of the counters.
func (g *Group) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// LastSequenced returns the last global sequence number delivered (Total
// order).
func (g *Group) LastSequenced() uint32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lastSeen
}

// Send multicasts payload to the group, including local delivery to this
// member, under the configured ordering.
func (g *Group) Send(payload []byte) error {
	g.mu.Lock()
	g.stats.Sent++
	g.mu.Unlock()
	switch g.order {
	case Total:
		return g.sendTotal(payload)
	default:
		return g.sendFIFO(payload)
	}
}

// sendFIFO fans out directly and delivers locally.
func (g *Group) sendFIFO(payload []byte) error {
	frame := encodeFrame(kindFIFO, ctlApp, g.self, 0, payload)
	if err := g.fanout(frame, ""); err != nil {
		return err
	}
	g.deliverUp(g.self, payload, false)
	return nil
}

// sendTotal routes through the sequencer.
func (g *Group) sendTotal(payload []byte) error {
	return g.sendTotalCtl(ctlApp, payload)
}

func (g *Group) sendTotalCtl(ctl byte, payload []byte) error {
	if g.self == g.sequencer {
		// The sequencer orders its own messages directly.
		g.sequenceAndBroadcast(ctl, g.self, payload)
		return nil
	}
	g.mu.Lock()
	seqConn := g.members[g.sequencer]
	g.stats.Forwarded++
	g.mu.Unlock()
	if seqConn == nil {
		return ErrNoSequencer
	}
	return seqConn.Send(encodeFrame(kindToSeq, ctl, g.self, 0, payload))
}

// sequenceAndBroadcast assigns the next global number and fans the
// sequenced frame out to every member (origin included — it delivers at
// the sequenced position like everyone else).
func (g *Group) sequenceAndBroadcast(ctl byte, origin string, payload []byte) {
	g.mu.Lock()
	seq := g.nextSeq
	g.nextSeq++
	g.stats.Sequenced++
	g.mu.Unlock()
	frame := encodeFrame(kindSequenced, ctl, origin, seq, payload)
	_ = g.fanout(frame, "")
	g.deliverSequenced(ctl, origin, seq, payload) // sequencer's own delivery
}

// fanout unicasts frame to every member except skip.
func (g *Group) fanout(frame []byte, skip string) error {
	g.mu.Lock()
	conns := make(map[string]Conn, len(g.members))
	for n, c := range g.members {
		if n != skip {
			conns[n] = c
		}
	}
	g.stats.FanoutUnicast += uint64(len(conns))
	g.mu.Unlock()
	var firstErr error
	for _, c := range conns {
		if err := c.Send(frame); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// onWire handles a frame arriving from peer.
func (g *Group) onWire(peer string, frame []byte) {
	kind, ctl, origin, seq, payload, err := decodeFrame(frame)
	if err != nil {
		return // malformed frames are dropped, like the PA router
	}
	switch kind {
	case kindFIFO:
		// Direct fan-out frames are only meaningful in FIFO order; in
		// Total order they would bypass the sequencer.
		if g.order == FIFO && ctl == ctlApp {
			g.deliverUp(origin, payload, false)
		}
	case kindToSeq:
		if g.self == g.sequencer {
			g.sequenceAndBroadcast(ctl, origin, payload)
		}
	case kindSequenced:
		if peer != g.sequencer {
			return // sequenced frames are only valid from the sequencer
		}
		g.deliverSequenced(ctl, origin, seq, payload)
	}
}

func (g *Group) deliverSequenced(ctl byte, origin string, seq uint32, payload []byte) {
	g.mu.Lock()
	g.lastSeen = seq
	g.mu.Unlock()
	if ctl == ctlView {
		if v, err := decodeView(payload); err == nil {
			g.installView(v)
		}
		return
	}
	g.deliverUp(origin, payload, true)
}

func (g *Group) deliverUp(origin string, payload []byte, ordered bool) {
	g.mu.Lock()
	g.stats.Delivered++
	if ordered {
		g.stats.DeliveredInOrder++
	} else {
		g.stats.DeliveredFIFOOnly++
	}
	fn := g.deliver
	g.mu.Unlock()
	if fn != nil {
		fn(origin, payload)
	}
}

// Frame layout: kind(1) | ctl(1) | originLen(1) | origin | gseq(4,
// kindSequenced only) | payload.
func encodeFrame(kind, ctl byte, origin string, seq uint32, payload []byte) []byte {
	if len(origin) > 255 {
		origin = origin[:255]
	}
	n := 3 + len(origin) + len(payload)
	if kind == kindSequenced {
		n += 4
	}
	f := make([]byte, 0, n)
	f = append(f, kind, ctl, byte(len(origin)))
	f = append(f, origin...)
	if kind == kindSequenced {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], seq)
		f = append(f, b[:]...)
	}
	return append(f, payload...)
}

func decodeFrame(f []byte) (kind, ctl byte, origin string, seq uint32, payload []byte, err error) {
	if len(f) < 3 {
		return 0, 0, "", 0, nil, fmt.Errorf("group: short frame")
	}
	kind, ctl = f[0], f[1]
	if kind > kindSequenced {
		return 0, 0, "", 0, nil, fmt.Errorf("group: unknown kind %d", kind)
	}
	if ctl > ctlView {
		return 0, 0, "", 0, nil, fmt.Errorf("group: unknown control class %d", ctl)
	}
	ol := int(f[2])
	rest := f[3:]
	if len(rest) < ol {
		return 0, 0, "", 0, nil, fmt.Errorf("group: truncated origin")
	}
	origin = string(rest[:ol])
	rest = rest[ol:]
	if kind == kindSequenced {
		if len(rest) < 4 {
			return 0, 0, "", 0, nil, fmt.Errorf("group: truncated sequence")
		}
		seq = binary.BigEndian.Uint32(rest)
		rest = rest[4:]
	}
	return kind, ctl, origin, seq, rest, nil
}

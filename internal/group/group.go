// Package group extends the Protocol Accelerator to group communication —
// the paper presents point-to-point "for clarity, but the techniques
// extend to multicast protocols" (§1), and Horus itself is a group
// communication system.
//
// A group is built from ordinary accelerated point-to-point connections,
// one per peer, so every member-to-member channel enjoys the PA fast
// path, compact headers, and reliability. On top of those FIFO
// exactly-once channels the group offers two delivery orders:
//
//   - FIFO: sends fan out directly; receivers observe each sender's
//     messages in that sender's order (per-channel FIFO gives per-sender
//     FIFO).
//   - Total: a fixed sequencer member orders all messages. Because every
//     sequenced message reaches a member over the single FIFO channel
//     from the sequencer, total order needs no holdback queue — the
//     channel is the order.
package group

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Order selects the group's delivery ordering guarantee.
type Order int

// Delivery orders.
const (
	// FIFO delivers each sender's messages in the order it sent them.
	FIFO Order = iota
	// Total delivers all messages in one global order, identical at
	// every member, via a sequencer.
	Total
)

// Conn is the point-to-point surface the group needs; *core.Conn
// satisfies it.
type Conn interface {
	Send(payload []byte) error
	OnDeliver(fn func(payload []byte))
}

// FanoutSender multicasts one payload to every group member in a single
// operation; *core.Fanout satisfies it. When installed via UseFanout,
// the group hands whole-group fanouts to it — one template build, one
// stamp per member, one batched transmit — instead of running the full
// point-to-point send pipeline once per member.
type FanoutSender interface {
	Send(payload []byte) error
}

// ErrNoSequencer is returned by Send in Total order when the sequencer is
// neither the local member nor joined.
var ErrNoSequencer = errors.New("group: sequencer not reachable")

// Frame kinds on the wire (first byte of every group frame).
const (
	kindFIFO      = 0 // direct fan-out data
	kindToSeq     = 1 // unsequenced data on its way to the sequencer
	kindSequenced = 2 // sequencer-ordered broadcast
)

// Frame control classes (second byte): application data or a membership
// view announcement (see views.go).
const (
	ctlApp  = 0
	ctlView = 1
)

// memberEntry is one joined peer; the group keeps entries sorted by
// name so every fanout iterates the membership in the same order on
// every member and every run.
type memberEntry struct {
	name string
	conn Conn
}

// Group is one member's view of a process group.
type Group struct {
	self      string
	order     Order
	sequencer string

	mu      sync.Mutex
	members []memberEntry // sorted by name
	fan     FanoutSender  // optional whole-group batch path
	deliver func(origin string, payload []byte)

	// interned maps origin names to their canonical string, so decoding
	// a received frame does not allocate a fresh origin per delivery.
	// Seeded from the member table; bounded against hostile frames.
	interned map[string]string

	nextSeq  uint32 // sequencer only: next global sequence number
	lastSeen uint32 // diagnostic: last sequenced number delivered

	view   View
	onView func(v View)

	stats Stats
}

// Stats counts group events at this member.
type Stats struct {
	Sent, Delivered   uint64
	Sequenced         uint64 // messages this member ordered (sequencer only)
	Forwarded         uint64 // messages sent to the sequencer
	FanoutUnicast     uint64 // point-to-point sends covered (batched or not)
	FanoutBatches     uint64 // whole-group fanouts handed to the batch engine
	DeliveredInOrder  uint64
	DeliveredFIFOOnly uint64
}

// maxInterned bounds the origin intern table; names past the bound are
// still delivered, just without interning (a correct group's origins all
// come from the member table anyway).
const maxInterned = 1024

// New creates this member's group view. For Total order, sequencer names
// the ordering member (which may be self).
func New(self string, order Order, sequencer string) *Group {
	g := &Group{
		self:      self,
		order:     order,
		sequencer: sequencer,
		interned:  make(map[string]string),
	}
	g.interned[self] = self
	g.interned[sequencer] = sequencer
	return g
}

// Self returns this member's name.
func (g *Group) Self() string { return g.self }

// OnDeliver installs the application delivery callback. origin names the
// member whose Send produced the payload.
func (g *Group) OnDeliver(fn func(origin string, payload []byte)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.deliver = fn
}

// Join attaches the point-to-point connection to peer and starts
// consuming its deliveries. Join every peer before sending.
func (g *Group) Join(peer string, conn Conn) {
	g.mu.Lock()
	i := sort.Search(len(g.members), func(i int) bool { return g.members[i].name >= peer })
	if i < len(g.members) && g.members[i].name == peer {
		g.members[i].conn = conn
	} else {
		g.members = append(g.members, memberEntry{})
		copy(g.members[i+1:], g.members[i:])
		g.members[i] = memberEntry{name: peer, conn: conn}
	}
	g.interned[peer] = peer
	g.mu.Unlock()
	conn.OnDeliver(func(p []byte) { g.onWire(peer, p) })
}

// Leave detaches peer (member churn). The connection itself is not
// closed; its deliveries are simply no longer part of this group.
func (g *Group) Leave(peer string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	i := sort.Search(len(g.members), func(i int) bool { return g.members[i].name >= peer })
	if i < len(g.members) && g.members[i].name == peer {
		g.members = append(g.members[:i], g.members[i+1:]...)
	}
}

// UseFanout installs the whole-group batch sender (core.Fanout over this
// member's connections). The caller keeps the sender's member set in
// step with Join and Leave; a nil sender restores per-member sends.
func (g *Group) UseFanout(fs FanoutSender) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fan = fs
}

// Members returns the joined peer names, sorted.
func (g *Group) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.members))
	for _, m := range g.members {
		names = append(names, m.name)
	}
	return names
}

// Stats returns a snapshot of the counters.
func (g *Group) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// LastSequenced returns the last global sequence number delivered (Total
// order).
func (g *Group) LastSequenced() uint32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lastSeen
}

// Send multicasts payload to the group, including local delivery to this
// member, under the configured ordering.
func (g *Group) Send(payload []byte) error {
	g.mu.Lock()
	g.stats.Sent++
	g.mu.Unlock()
	switch g.order {
	case Total:
		return g.sendTotal(payload)
	default:
		return g.sendFIFO(payload)
	}
}

// sendFIFO fans out directly and delivers locally.
func (g *Group) sendFIFO(payload []byte) error {
	frame := getFrame(kindFIFO, ctlApp, g.self, 0, payload)
	err := g.fanout(frame.b, "")
	putFrame(frame)
	if err != nil {
		return err
	}
	g.deliverUp(g.self, payload, false)
	return nil
}

// sendTotal routes through the sequencer.
func (g *Group) sendTotal(payload []byte) error {
	return g.sendTotalCtl(ctlApp, payload)
}

func (g *Group) sendTotalCtl(ctl byte, payload []byte) error {
	if g.self == g.sequencer {
		// The sequencer orders its own messages directly.
		g.sequenceAndBroadcast(ctl, g.self, payload)
		return nil
	}
	g.mu.Lock()
	seqConn := g.lookupLocked(g.sequencer)
	g.stats.Forwarded++
	g.mu.Unlock()
	if seqConn == nil {
		return ErrNoSequencer
	}
	frame := getFrame(kindToSeq, ctl, g.self, 0, payload)
	err := seqConn.Send(frame.b)
	putFrame(frame)
	return err
}

// sequenceAndBroadcast assigns the next global number and fans the
// sequenced frame out to every member (origin included — it delivers at
// the sequenced position like everyone else).
func (g *Group) sequenceAndBroadcast(ctl byte, origin string, payload []byte) {
	g.mu.Lock()
	seq := g.nextSeq
	g.nextSeq++
	g.stats.Sequenced++
	g.mu.Unlock()
	frame := getFrame(kindSequenced, ctl, origin, seq, payload)
	_ = g.fanout(frame.b, "")
	putFrame(frame)
	g.deliverSequenced(ctl, origin, seq, payload) // sequencer's own delivery
}

// lookupLocked finds a member's connection. Caller holds g.mu.
func (g *Group) lookupLocked(name string) Conn {
	i := sort.Search(len(g.members), func(i int) bool { return g.members[i].name >= name })
	if i < len(g.members) && g.members[i].name == name {
		return g.members[i].conn
	}
	return nil
}

// fanSnap is a pooled membership snapshot, so concurrent fanouts each
// iterate a stable, deterministic (sorted) member list without holding
// g.mu across sends — a member's delivery callback may re-enter the
// group — and without allocating the snapshot per send.
type fanSnap struct {
	names []string
	conns []Conn
}

var snapPool = sync.Pool{New: func() any { return new(fanSnap) }}

// fanout multicasts frame to every member except skip, in sorted member
// order, collecting every per-member failure (a partial fanout reports
// all of its losers, not just the first). A whole-group fanout (skip
// empty) is handed to the batch engine when one is installed.
func (g *Group) fanout(frame []byte, skip string) error {
	g.mu.Lock()
	if fs := g.fan; fs != nil && skip == "" {
		g.stats.FanoutUnicast += uint64(len(g.members))
		g.stats.FanoutBatches++
		g.mu.Unlock()
		return fs.Send(frame)
	}
	s := snapPool.Get().(*fanSnap)
	s.names, s.conns = s.names[:0], s.conns[:0]
	for _, m := range g.members {
		if m.name != skip {
			s.names = append(s.names, m.name)
			s.conns = append(s.conns, m.conn)
		}
	}
	g.stats.FanoutUnicast += uint64(len(s.conns))
	g.mu.Unlock()
	var errs []error
	for i, c := range s.conns {
		if err := c.Send(frame); err != nil {
			errs = append(errs, fmt.Errorf("group: fanout to %s: %w", s.names[i], err))
		}
	}
	snapPool.Put(s)
	return errors.Join(errs...)
}

// internOrigin resolves decoded origin bytes to a canonical string,
// allocating only the first time a name is seen (never for members).
func (g *Group) internOrigin(b []byte) string {
	g.mu.Lock()
	if s, ok := g.interned[string(b)]; ok { // no-alloc map probe
		g.mu.Unlock()
		return s
	}
	s := string(b)
	if len(g.interned) < maxInterned {
		g.interned[s] = s
	}
	g.mu.Unlock()
	return s
}

// onWire handles a frame arriving from peer.
func (g *Group) onWire(peer string, frame []byte) {
	kind, ctl, rawOrigin, seq, payload, err := decodeFrameBytes(frame)
	if err != nil {
		return // malformed frames are dropped, like the PA router
	}
	origin := g.internOrigin(rawOrigin)
	switch kind {
	case kindFIFO:
		// Direct fan-out frames are only meaningful in FIFO order; in
		// Total order they would bypass the sequencer.
		if g.order == FIFO && ctl == ctlApp {
			g.deliverUp(origin, payload, false)
		}
	case kindToSeq:
		if g.self == g.sequencer {
			g.sequenceAndBroadcast(ctl, origin, payload)
		}
	case kindSequenced:
		if peer != g.sequencer {
			return // sequenced frames are only valid from the sequencer
		}
		g.deliverSequenced(ctl, origin, seq, payload)
	}
}

func (g *Group) deliverSequenced(ctl byte, origin string, seq uint32, payload []byte) {
	g.mu.Lock()
	g.lastSeen = seq
	g.mu.Unlock()
	if ctl == ctlView {
		if v, err := decodeView(payload); err == nil {
			g.installView(v)
		}
		return
	}
	g.deliverUp(origin, payload, true)
}

func (g *Group) deliverUp(origin string, payload []byte, ordered bool) {
	g.mu.Lock()
	g.stats.Delivered++
	if ordered {
		g.stats.DeliveredInOrder++
	} else {
		g.stats.DeliveredFIFOOnly++
	}
	fn := g.deliver
	g.mu.Unlock()
	if fn != nil {
		fn(origin, payload)
	}
}

// Frame layout: kind(1) | ctl(1) | originLen(1) | origin | gseq(4,
// kindSequenced only) | payload.
func encodeFrame(kind, ctl byte, origin string, seq uint32, payload []byte) []byte {
	return appendFrame(nil, kind, ctl, origin, seq, payload)
}

func appendFrame(f []byte, kind, ctl byte, origin string, seq uint32, payload []byte) []byte {
	if len(origin) > 255 {
		origin = origin[:255]
	}
	f = append(f, kind, ctl, byte(len(origin)))
	f = append(f, origin...)
	if kind == kindSequenced {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], seq)
		f = append(f, b[:]...)
	}
	return append(f, payload...)
}

// framePool recycles outgoing frame buffers. Every send surface below a
// frame (core.Conn.Send, core.Fanout.Send, netsim) copies the datagram
// before returning, so a frame can go back to the pool as soon as the
// send call does.
type frameBuf struct{ b []byte }

var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 256)} }}

func getFrame(kind, ctl byte, origin string, seq uint32, payload []byte) *frameBuf {
	fb := framePool.Get().(*frameBuf)
	fb.b = appendFrame(fb.b[:0], kind, ctl, origin, seq, payload)
	return fb
}

func putFrame(fb *frameBuf) {
	framePool.Put(fb)
}

// decodeFrame is decodeFrameBytes with the origin copied out to a
// string, for callers that keep it.
func decodeFrame(f []byte) (kind, ctl byte, origin string, seq uint32, payload []byte, err error) {
	kind, ctl, rawOrigin, seq, payload, err := decodeFrameBytes(f)
	return kind, ctl, string(rawOrigin), seq, payload, err
}

// decodeFrameBytes parses a group frame. origin and payload alias f —
// the receive path interns origin against the member table instead of
// allocating a string per delivery.
func decodeFrameBytes(f []byte) (kind, ctl byte, origin []byte, seq uint32, payload []byte, err error) {
	if len(f) < 3 {
		return 0, 0, nil, 0, nil, fmt.Errorf("group: short frame")
	}
	kind, ctl = f[0], f[1]
	if kind > kindSequenced {
		return 0, 0, nil, 0, nil, fmt.Errorf("group: unknown kind %d", kind)
	}
	if ctl > ctlView {
		return 0, 0, nil, 0, nil, fmt.Errorf("group: unknown control class %d", ctl)
	}
	ol := int(f[2])
	rest := f[3:]
	if len(rest) < ol {
		return 0, 0, nil, 0, nil, fmt.Errorf("group: truncated origin")
	}
	origin = rest[:ol]
	rest = rest[ol:]
	if kind == kindSequenced {
		if len(rest) < 4 {
			return 0, 0, nil, 0, nil, fmt.Errorf("group: truncated sequence")
		}
		seq = binary.BigEndian.Uint32(rest)
		rest = rest[4:]
	}
	return kind, ctl, origin, seq, rest, nil
}

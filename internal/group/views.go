package group

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Views give the totally-ordered group a simplified form of virtual
// synchrony — the property Horus is built around. A view is a numbered
// membership snapshot. View changes are announced as ordinary sequenced
// messages, so every member installs view v at exactly the same position
// in the global message stream: any two members that install v have
// delivered the identical set of messages before it. That is the
// virtually-synchronous delivery guarantee, obtained here entirely from
// total order.
//
// Views require Total order; ProposeView on a FIFO group returns
// ErrNeedTotalOrder.

// ErrNeedTotalOrder is returned by ProposeView on a FIFO-ordered group.
var ErrNeedTotalOrder = errors.New("group: views require Total order")

// View is one membership snapshot.
type View struct {
	// ID increases by one per installed view.
	ID uint32
	// Members is the sorted member list.
	Members []string
}

// String renders the view compactly.
func (v View) String() string {
	return fmt.Sprintf("view %d {%s}", v.ID, strings.Join(v.Members, " "))
}

// Includes reports whether name is in the view.
func (v View) Includes(name string) bool {
	for _, m := range v.Members {
		if m == name {
			return true
		}
	}
	return false
}

// OnView installs the view-change callback; it runs at the view's
// position in the total order.
func (g *Group) OnView(fn func(v View)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.onView = fn
}

// CurrentView returns the last installed view (zero View before any).
func (g *Group) CurrentView() View {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view.clone()
}

func (v View) clone() View {
	return View{ID: v.ID, Members: append([]string(nil), v.Members...)}
}

// ProposeView multicasts a new membership through the sequencer. Every
// member — including the proposer — installs it at the same point in the
// global order. The members list is normalized (sorted, deduplicated).
func (g *Group) ProposeView(members []string) error {
	if g.order != Total {
		return ErrNeedTotalOrder
	}
	norm := normalizeMembers(members)
	g.mu.Lock()
	nextID := g.view.ID + 1
	g.stats.Sent++
	g.mu.Unlock()
	return g.sendTotalCtl(ctlView, encodeView(View{ID: nextID, Members: norm}))
}

// normalizeMembers sorts and deduplicates.
func normalizeMembers(members []string) []string {
	seen := make(map[string]bool, len(members))
	var out []string
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

func (g *Group) installView(v View) {
	g.mu.Lock()
	if v.ID <= g.view.ID && g.view.ID != 0 {
		g.mu.Unlock()
		return // stale or duplicate proposal
	}
	g.view = v.clone()
	fn := g.onView
	g.mu.Unlock()
	if fn != nil {
		fn(v.clone())
	}
}

// View wire form: id(4) | count(2) | { len(1) | name }...
func encodeView(v View) []byte {
	out := make([]byte, 6, 6+len(v.Members)*8)
	binary.BigEndian.PutUint32(out, v.ID)
	binary.BigEndian.PutUint16(out[4:], uint16(len(v.Members)))
	for _, m := range v.Members {
		if len(m) > 255 {
			m = m[:255]
		}
		out = append(out, byte(len(m)))
		out = append(out, m...)
	}
	return out
}

func decodeView(b []byte) (View, error) {
	if len(b) < 6 {
		return View{}, fmt.Errorf("group: short view")
	}
	v := View{ID: binary.BigEndian.Uint32(b)}
	count := int(binary.BigEndian.Uint16(b[4:]))
	rest := b[6:]
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return View{}, fmt.Errorf("group: truncated view members")
		}
		n := int(rest[0])
		rest = rest[1:]
		if len(rest) < n {
			return View{}, fmt.Errorf("group: truncated member name")
		}
		v.Members = append(v.Members, string(rest[:n]))
		rest = rest[n:]
	}
	return v, nil
}

package group

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/core"
	"paccel/internal/layers"
	"paccel/internal/netsim/topo"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

// topoGroupStack is the full reliability stack the group needs across a
// real internet: window with retransmission and naks, heartbeats for
// liveness, identification for routing and migration.
func topoGroupStack(spec core.PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
	w := layers.NewWindow()
	w.RetransTimeout = 20 * time.Millisecond
	w.Naks = true
	return []stack.Layer{
		layers.NewChksum(),
		layers.NewFrag(),
		w,
		&layers.Heartbeat{
			Interval: 100 * time.Millisecond,
			Jitter:   25 * time.Millisecond,
			Seed:     int64(spec.LocalPort)<<8 | int64(spec.RemotePort),
		},
		&layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		},
	}, nil
}

// deliveryLog records one member's sequenced application deliveries.
type deliveryLog struct {
	mu   sync.Mutex
	msgs []string
}

func (l *deliveryLog) add(origin string, payload []byte) {
	l.mu.Lock()
	l.msgs = append(l.msgs, origin+":"+string(payload))
	l.mu.Unlock()
}

func (l *deliveryLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.msgs)
}

func (l *deliveryLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.msgs...)
}

// TestTotalOrderGroupOverTopoNATRebind runs a total-order group across
// the virtual internet: the sequencer and one member sit on the far
// router, the third member lives behind a NAT whose traffic crosses a
// bufferbloat interior link (slow bit rate, deep queue). Mid-stream the
// NAT'd member's access edge goes dark long enough for the NAT mapping
// to idle out; the group keeps multicasting while the member is
// unreachable, so its channel from the sequencer recovers mid-fanout —
// retransmission, recovery probes, NAT rebind, route migration — and the
// final phase sends from three members concurrently. Every member must
// end with the identical sequenced delivery log, each message exactly
// once. CI runs this under -race: the concurrent phase exercises the
// fanout engine, the group frame pool, and the per-connection stamping
// from racing goroutines.
func TestTotalOrderGroupOverTopoNATRebind(t *testing.T) {
	clk := vclock.NewManual(t0)
	n := topo.New(clk, topo.Config{Seed: 1996})
	n.AddRouter("r1")
	n.AddRouter("r2")
	n.AddNAT("n1", "198.51.100.1", 2*time.Second, "10.0.0.3")
	n.Link("n1", "r1", topo.LinkConfig{Latency: time.Millisecond})
	// The interior edge is the bufferbloat link: 2 Mbit/s serialization
	// with a deep queue, so bursts pile up as latency, not loss.
	n.Link("r1", "r2", topo.LinkConfig{
		Latency:  2 * time.Millisecond,
		Jitter:   250 * time.Microsecond,
		BitRate:  2e6,
		QueueLen: 256,
	})
	hosts := map[string]*topo.Host{
		"s": n.Host("10.0.1.1:1", "r2", topo.LinkConfig{Latency: time.Millisecond}),
		"b": n.Host("10.0.1.2:1", "r2", topo.LinkConfig{Latency: time.Millisecond}),
		"c": n.Host("10.0.0.3:1", "n1", topo.LinkConfig{}),
	}

	names := []string{"b", "c", "s"}
	idx := map[string]uint16{"b": 1, "c": 2, "s": 3}
	eps := make(map[string]*core.Endpoint)
	for _, name := range names {
		ep, err := core.NewEndpoint(core.Config{
			Transport: hosts[name], Clock: clk, Build: topoGroupStack,
			PeerTimeout:  500 * time.Millisecond,
			MaxPackBytes: 1200,
			Recovery: core.RecoveryConfig{
				MaxAttempts: 60,
				BaseDelay:   100 * time.Millisecond,
				MaxDelay:    time.Second,
				Seed:        1996,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[name] = ep
	}

	// Until the NAT'd member transmits there is no mapping, so its peers
	// dial a placeholder external address and let route migration learn
	// the real one from identified traffic — the position any real
	// server is in behind a client's NAT.
	addrOf := func(member string) string {
		if member == "c" {
			return "198.51.100.1:60000"
		}
		return hosts[member].LocalAddr()
	}
	groups := make(map[string]*Group)
	logs := make(map[string]*deliveryLog)
	var conns []*core.Conn
	for _, a := range names {
		groups[a] = New(a, Total, "s")
		logs[a] = &deliveryLog{}
		groups[a].OnDeliver(logs[a].add)
	}
	for _, a := range names {
		var mine []*core.Conn
		for _, b := range names {
			if a == b {
				continue
			}
			conn, err := eps[a].Dial(core.PeerSpec{
				Addr:    addrOf(b),
				LocalID: []byte(a), RemoteID: []byte(b),
				LocalPort: idx[a], RemotePort: idx[b],
				Epoch: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			groups[a].Join(b, conn)
			mine = append(mine, conn)
			conns = append(conns, conn)
		}
		fan, err := core.NewFanout(eps[a], mine...)
		if err != nil {
			t.Fatal(err)
		}
		groups[a].UseFanout(fan)
	}

	maxQueueDepth := 0
	drive := func(d time.Duration) {
		t.Helper()
		deadline := clk.Now().Add(d)
		for clk.Now().Before(deadline) {
			for _, c := range conns {
				if c.State() == core.StateFailed {
					t.Fatalf("connection failed: %v", c.Err())
				}
			}
			clk.Advance(5 * time.Millisecond)
			for _, router := range []string{"r1", "r2"} {
				if depth, _ := n.QueueStats(router); depth > maxQueueDepth {
					maxQueueDepth = depth
				}
			}
		}
	}
	send := func(member string, lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if err := groups[member].Send([]byte(fmt.Sprintf("%s-%02d", member, i))); err != nil {
				t.Fatalf("%s send %d: %v", member, i, err)
			}
		}
	}

	// Phase 1: establish the mesh over the original NAT mapping.
	send("b", 0, 10)
	send("c", 0, 10)
	drive(3 * time.Second)
	for _, name := range names {
		if got := logs[name].len(); got != 20 {
			t.Fatalf("phase 1: %s delivered %d of 20", name, got)
		}
	}
	extBefore, ok := n.ExternalAddr("n1", hosts["c"].LocalAddr())
	if !ok {
		t.Fatal("no NAT mapping after phase 1 traffic")
	}

	// Phase 2: the NAT'd member's access edge goes dark past the NAT
	// idle. The group keeps multicasting — the sequencer's channel to the
	// dark member holds the sequenced stream in its window and recovery
	// machinery while every other member delivers on time.
	n.SetLinkDown("10.0.0.3", "n1", true)
	n.SetLinkDown("n1", "10.0.0.3", true)
	drive(time.Second)
	send("b", 10, 20)
	drive(4 * time.Second)
	for _, name := range []string{"s", "b"} {
		if got := logs[name].len(); got != 30 {
			t.Fatalf("phase 2: %s delivered %d of 30 with c dark", name, got)
		}
	}
	if got := logs["c"].len(); got != 20 {
		t.Fatalf("phase 2: dark member delivered %d, want still 20", got)
	}

	// Phase 3: heal. The member's first outbound packets rebind the NAT
	// on a new external port; its peers migrate, retransmission replays
	// the missed sequenced messages, and the group converges.
	n.SetLinkDown("10.0.0.3", "n1", false)
	n.SetLinkDown("n1", "10.0.0.3", false)
	deadline := clk.Now().Add(2 * time.Minute)
	for logs["c"].len() < 30 && clk.Now().Before(deadline) {
		drive(50 * time.Millisecond)
	}
	if got := logs["c"].len(); got != 30 {
		t.Fatalf("phase 3: recovered member delivered %d of 30", got)
	}

	// Phase 4: three members send concurrently — the racing surface for
	// the fanout engine and the group frame pool under -race.
	var wg sync.WaitGroup
	for _, member := range names {
		member := member
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 20; i < 30; i++ {
				if err := groups[member].Send([]byte(fmt.Sprintf("%s-%02d", member, i))); err != nil {
					t.Errorf("%s send %d: %v", member, i, err)
				}
			}
		}()
	}
	wg.Wait()
	const total = 60 // 20 + 10 + 30 concurrent
	deadline = clk.Now().Add(time.Minute)
	for clk.Now().Before(deadline) {
		done := true
		for _, name := range names {
			if logs[name].len() < total {
				done = false
			}
		}
		if done {
			break
		}
		drive(50 * time.Millisecond)
	}

	// Exactly-once, identical total order at every member.
	ref := logs["s"].snapshot()
	if len(ref) != total {
		t.Fatalf("sequencer delivered %d of %d", len(ref), total)
	}
	seen := make(map[string]int, total)
	for _, m := range ref {
		seen[m]++
	}
	for m, c := range seen {
		if c != 1 {
			t.Fatalf("message %q delivered %d times at the sequencer", m, c)
		}
	}
	for _, name := range []string{"b", "c"} {
		got := logs[name].snapshot()
		if len(got) != total {
			t.Fatalf("%s delivered %d of %d", name, len(got), total)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s order diverges at %d: %q vs sequencer's %q", name, i, got[i], ref[i])
			}
		}
	}
	for _, name := range names {
		st := groups[name].Stats()
		if st.DeliveredInOrder != total {
			t.Fatalf("%s DeliveredInOrder=%d, want %d", name, st.DeliveredInOrder, total)
		}
		if name != "s" && st.FanoutBatches != 0 {
			// Non-sequencer members forward to the sequencer point-to-
			// point; only the sequencer fans out.
			t.Fatalf("%s ran %d fanout batches, want 0", name, st.FanoutBatches)
		}
	}
	if st := groups["s"].Stats(); st.Sequenced != total || st.FanoutBatches != total {
		t.Fatalf("sequencer Sequenced=%d FanoutBatches=%d, want %d each", st.Sequenced, st.FanoutBatches, total)
	}

	// The scenario must actually have exercised its hazards: a NAT
	// rebind onto a new external mapping, and queue occupancy on the
	// bufferbloat edge.
	extAfter, _ := n.ExternalAddr("n1", hosts["c"].LocalAddr())
	if extAfter == extBefore {
		t.Fatalf("NAT never rebound (still %s)", extBefore)
	}
	if st := n.NATStats("n1"); st.Rebinds == 0 {
		t.Fatalf("NAT stats = %+v, want a rebind", st)
	}
	if maxQueueDepth < 2 {
		t.Fatalf("bufferbloat link never queued (max depth %d)", maxQueueDepth)
	}
}

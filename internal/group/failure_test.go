package group

import (
	"sync"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/core"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

// TestFailureDetectionDrivesViewChange composes the pieces the way Horus
// does: heartbeat layers inside every member-pair connection detect
// silence, and the sequencer responds by proposing a membership view
// without the silent member — installed by the survivors at the same cut
// in the total order.
func TestFailureDetectionDrivesViewChange(t *testing.T) {
	clk := vclock.NewManual(t0)
	names := []string{"a", "b", "c"}

	// Collect the heartbeat layers per (owner, peer) so the test can
	// wire the sequencer's silence reactions after the mesh is up.
	var mu sync.Mutex
	hbs := make(map[[2]string]*layers.Heartbeat)
	build := func(spec core.PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
		hb := layers.NewHeartbeat()
		hb.Interval = 5 * time.Millisecond
		hb.Misses = 3
		mu.Lock()
		hbs[[2]string{string(spec.LocalID), string(spec.RemoteID)}] = hb
		mu.Unlock()
		return []stack.Layer{
			layers.NewChksum(),
			layers.NewFrag(),
			layers.NewWindow(),
			hb,
			&layers.Ident{
				Local: spec.LocalID, Remote: spec.RemoteID,
				LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
				Epoch: spec.Epoch, Order: order,
			},
		}, nil
	}
	m, err := NewMeshBuild(names, clk, netsim.Config{Latency: 30 * time.Microsecond}, Total, "a", build)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Install the initial view and wire the sequencer's reaction:
	// silence on a→X proposes the view without X.
	if err := m.Groups["a"].ProposeView(names); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	// OnSilence runs under the connection lock, so it only reports; the
	// test loop performs the proposal outside the lock (a real system
	// would use its own executor here).
	silent := make(chan string, 8)
	for _, peer := range []string{"b", "c"} {
		peer := peer
		mu.Lock()
		hb := hbs[[2]string{"a", peer}]
		mu.Unlock()
		hb.OnSilence = func(time.Duration) {
			select {
			case silent <- peer:
			default:
			}
		}
	}
	for _, n := range names {
		if got := m.Groups[n].CurrentView(); got.ID != 1 || len(got.Members) != 3 {
			t.Fatalf("%s initial view = %v", n, got)
		}
	}

	// Partition c in both directions: its heartbeats stop reaching a.
	m.Net().SetLinkDown("c", "a", true)
	m.Net().SetLinkDown("a", "c", true)

	// Advance well past Misses×Interval; when silence is reported the
	// sequencer proposes the shrunken view, and a and b install it.
	deadline := 0
	for deadline < 400 && m.Groups["b"].CurrentView().ID < 2 {
		clk.Advance(5 * time.Millisecond)
		select {
		case peer := <-silent:
			cur := m.Groups["a"].CurrentView()
			var next []string
			for _, n := range cur.Members {
				if n != peer {
					next = append(next, n)
				}
			}
			if err := m.Groups["a"].ProposeView(next); err != nil {
				t.Fatal(err)
			}
		default:
		}
		deadline++
	}
	for _, n := range []string{"a", "b"} {
		v := m.Groups[n].CurrentView()
		if v.ID < 2 {
			t.Fatalf("%s never installed the failure view", n)
		}
		if v.Includes("c") {
			t.Fatalf("%s still lists the failed member: %v", n, v)
		}
		if !v.Includes("a") || !v.Includes("b") {
			t.Fatalf("%s lost a live member: %v", n, v)
		}
	}
	// The survivors still communicate.
	got := make(chan string, 1)
	m.Groups["b"].OnDeliver(func(origin string, p []byte) {
		select {
		case got <- origin + ":" + string(p):
		default:
		}
	})
	if err := m.Groups["a"].Send([]byte("post-failure")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Millisecond)
	select {
	case msg := <-got:
		if msg != "a:post-failure" {
			t.Fatalf("got %q", msg)
		}
	default:
		t.Fatal("survivors cannot communicate after the view change")
	}
}

package group

import (
	"strings"
	"testing"
)

// stampedSeeds are frames shaped exactly like the ones the fanout engine
// transmits: built by the pooled appendFrame path the template build
// uses, covering every kind the stamping pass can emit — direct fan-out
// data, data on its way to the sequencer, and sequenced broadcasts
// (application and view control) — plus the encoder's edge cases (empty
// payload, an origin at the 255-byte truncation bound).
func stampedSeeds() [][]byte {
	fb := getFrame(kindFIFO, ctlApp, "alice", 0, []byte("template-stamped"))
	pooled := append([]byte(nil), fb.b...)
	putFrame(fb)
	return [][]byte{
		pooled,
		encodeFrame(kindToSeq, ctlApp, "bob", 0, []byte("to-sequencer")),
		encodeFrame(kindSequenced, ctlApp, "alice", 42, []byte("ordered")),
		encodeFrame(kindSequenced, ctlApp, "seq", 0, nil),
		encodeFrame(kindFIFO, ctlApp, strings.Repeat("o", 255), 0, []byte("long-origin")),
	}
}

func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeFrame(kindFIFO, ctlApp, "alice", 0, []byte("x")))
	f.Add(encodeFrame(kindSequenced, ctlView, "seq", 7, encodeView(View{ID: 1, Members: []string{"a"}})))
	for _, s := range stampedSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, ctl, origin, seq, payload, err := decodeFrame(data)
		if err != nil {
			return
		}
		// Decoded frames re-encode to the identical bytes.
		re := encodeFrame(kind, ctl, origin, seq, payload)
		if len(re) != len(data) {
			t.Fatalf("re-encode length %d vs %d", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encode mismatch at %d", i)
			}
		}
	})
}

func FuzzDecodeView(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeView(View{ID: 3, Members: []string{"a", "bb"}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := decodeView(data)
		if err != nil {
			return
		}
		re := encodeView(v)
		v2, err := decodeView(re)
		if err != nil {
			t.Fatalf("re-encoded view undecodable: %v", err)
		}
		if v2.ID != v.ID || len(v2.Members) != len(v.Members) {
			t.Fatalf("round trip: %v vs %v", v, v2)
		}
	})
}

// FuzzGroupOnWire throws arbitrary frames at a member; nothing may panic
// and no frame may be delivered as coming from the sequencer unless the
// peer is the sequencer.
func FuzzGroupOnWire(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add(encodeFrame(kindSequenced, ctlApp, "x", 0, []byte("y")), true)
	f.Add(encodeFrame(kindFIFO, ctlApp, "x", 0, []byte("y")), false)
	for _, s := range stampedSeeds() {
		f.Add(s, true)
		f.Add(s, false)
	}
	f.Fuzz(func(t *testing.T, data []byte, fromSequencer bool) {
		g := New("me", Total, "seq")
		delivered := 0
		g.OnDeliver(func(string, []byte) { delivered++ })
		peer := "mallory"
		if fromSequencer {
			peer = "seq"
		}
		g.onWire(peer, data)
		if !fromSequencer && delivered != 0 {
			t.Fatal("non-sequencer peer delivered in Total order")
		}
	})
}

package group

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

// §6's third remedy for server load is replication: "synchronization of
// the server's processing and data may be required, leading to
// additional, complex protocols. However, this is exactly the intention
// of this work — to encourage distribution." This test closes that loop:
// a key-value store replicated over the totally-ordered group. Commands
// are multicast; because every replica applies the identical global
// order, all replicas converge to the identical state — even when the
// network loses and reorders messages and the writers race.

type replica struct {
	mu   sync.Mutex
	data map[string]string
	log  []string
}

func (r *replica) apply(cmd string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	parts := strings.SplitN(cmd, "=", 2)
	if len(parts) == 2 {
		r.data[parts[0]] = parts[1]
	}
	r.log = append(r.log, cmd)
}

func (r *replica) fingerprint() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("%v|%d", r.data, len(r.log))
}

func TestReplicatedStateMachine(t *testing.T) {
	clk := vclock.NewManual(t0)
	names := []string{"r1", "r2", "r3"}
	m, err := NewMesh(names, clk, netsim.Config{
		Latency: 50 * time.Microsecond, LossRate: 0.15, ReorderRate: 0.15, Seed: 23,
	}, Total, "r1")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	replicas := make(map[string]*replica)
	for _, n := range names {
		rep := &replica{data: make(map[string]string)}
		replicas[n] = rep
		m.Groups[n].OnDeliver(func(origin string, cmd []byte) {
			rep.apply(string(cmd))
		})
	}

	// Conflicting writers: every replica writes the same keys with its
	// own values, racing.
	const rounds = 8
	for i := 0; i < rounds; i++ {
		for _, n := range names {
			cmd := fmt.Sprintf("key%d=%s-round%d", i%3, n, i)
			if err := m.Groups[n].Send([]byte(cmd)); err != nil {
				t.Fatal(err)
			}
			clk.Advance(30 * time.Microsecond)
		}
	}
	total := rounds * len(names)
	converged := func() bool {
		for _, n := range names {
			replicas[n].mu.Lock()
			l := len(replicas[n].log)
			replicas[n].mu.Unlock()
			if l < total {
				return false
			}
		}
		return true
	}
	for i := 0; i < 400 && !converged(); i++ {
		clk.Advance(200 * time.Millisecond)
	}
	if !converged() {
		for _, n := range names {
			t.Logf("%s applied %d/%d", n, len(replicas[n].log), total)
		}
		t.Fatal("replicas did not converge")
	}

	// The whole point: identical state everywhere, despite racing
	// writers over a faulty network.
	want := replicas["r1"].fingerprint()
	for _, n := range names[1:] {
		if got := replicas[n].fingerprint(); got != want {
			t.Fatalf("replica %s diverged:\n%s\nvs\n%s", n, got, want)
		}
	}
	// And the logs are identical element-wise.
	for i := range replicas["r1"].log {
		for _, n := range names[1:] {
			if replicas[n].log[i] != replicas["r1"].log[i] {
				t.Fatalf("log divergence at %d", i)
			}
		}
	}
}

package group

import (
	"fmt"

	"paccel/internal/core"
	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

// Mesh is a fully connected set of group members over one simulated
// network: each member has an accelerated point-to-point connection to
// every other member.
type Mesh struct {
	Groups map[string]*Group
	net    *netsim.Network
	eps    []*core.Endpoint
}

// NewMesh builds endpoints and the full mesh of PA connections for the
// given member names, then wires a Group per member with the requested
// ordering. In Total order, sequencer must be one of the names.
func NewMesh(names []string, clk vclock.Clock, netCfg netsim.Config, order Order, sequencer string) (*Mesh, error) {
	return NewMeshBuild(names, clk, netCfg, order, sequencer, nil)
}

// NewMeshBuild is NewMesh with a custom per-connection stack builder
// (e.g. to add heartbeat layers for failure detection).
func NewMeshBuild(names []string, clk vclock.Clock, netCfg netsim.Config, order Order, sequencer string, build core.StackBuilder) (*Mesh, error) {
	if order == Total {
		found := false
		for _, n := range names {
			if n == sequencer {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("group: sequencer %q not a member", sequencer)
		}
	}
	net := netsim.New(clk, netCfg)
	m := &Mesh{Groups: make(map[string]*Group), net: net}
	eps := make(map[string]*core.Endpoint)
	for _, n := range names {
		ep, err := core.NewEndpoint(core.Config{
			Transport: net.Endpoint(n),
			Clock:     clk,
			Build:     build,
		})
		if err != nil {
			m.Close()
			return nil, err
		}
		eps[n] = ep
		m.eps = append(m.eps, ep)
		m.Groups[n] = New(n, order, sequencer)
	}
	// Dial every ordered pair; ports derive from the member indices so
	// both directions agree on the identification.
	idx := make(map[string]uint16, len(names))
	for i, n := range names {
		idx[n] = uint16(i + 1)
	}
	for _, a := range names {
		conns := make([]*core.Conn, 0, len(names)-1)
		for _, b := range names {
			if a == b {
				continue
			}
			conn, err := eps[a].Dial(core.PeerSpec{
				Addr:    b,
				LocalID: []byte(a), RemoteID: []byte(b),
				LocalPort: idx[a], RemotePort: idx[b],
				Epoch: 1,
			})
			if err != nil {
				m.Close()
				return nil, err
			}
			m.Groups[a].Join(b, conn)
			conns = append(conns, conn)
		}
		// Whole-group sends ride the template+stamp fanout engine: one
		// pre-processing pass and one batched transmit per multicast.
		fan, err := core.NewFanout(eps[a], conns...)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.Groups[a].UseFanout(fan)
	}
	return m, nil
}

// Net exposes the underlying simulated network (partitions, stats).
func (m *Mesh) Net() *netsim.Network { return m.net }

// Close shuts every endpoint down.
func (m *Mesh) Close() {
	for _, ep := range m.eps {
		ep.Close()
	}
}

// NewRealMesh is NewMesh on the wall clock, for examples and benchmarks.
func NewRealMesh(names []string, netCfg netsim.Config, order Order, sequencer string) (*Mesh, error) {
	return NewMesh(names, vclock.Real{}, netCfg, order, sequencer)
}

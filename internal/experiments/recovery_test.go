package experiments

import (
	"strings"
	"testing"
)

func TestRecoveryDeterministicUnderSeed(t *testing.T) {
	run := func() string {
		r, err := Recovery(true, 7)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RecoveryJSON(r)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestRecoverySchedule(t *testing.T) {
	r, err := Recovery(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RecoveryReport(r))
	for _, p := range r.Points {
		switch p.Scenario {
		case "retry-exhausted":
			if !p.FailedCleanly {
				t.Fatalf("%s: expected a clean typed failure, got %+v", p.Scenario, p)
			}
			if !strings.Contains(p.FailureCause, "recovery attempts exhausted") {
				t.Fatalf("%s: cause %q does not name exhaustion", p.Scenario, p.FailureCause)
			}
		default:
			if p.Delivered != p.Messages || !p.ExactlyOnce {
				t.Fatalf("%s: %d/%d delivered, exactlyOnce=%v",
					p.Scenario, p.Delivered, p.Messages, p.ExactlyOnce)
			}
		}
		switch p.Scenario {
		case "addr-flip":
			// The silent side moved: only its identified recovery probes
			// can re-route the peer, so recovery must have engaged.
			if p.RemoteAddrAfter != "B2" || p.Migrations == 0 {
				t.Fatalf("addr-flip: route=%q migrations=%d", p.RemoteAddrAfter, p.Migrations)
			}
			if p.Recovered == 0 || p.Probes == 0 {
				t.Fatalf("addr-flip: recovered=%d probes=%d", p.Recovered, p.Probes)
			}
		case "endpoint-restart":
			// The sender moved: its identified retransmissions migrate the
			// peer within one RTO, faster than supervision can trip.
			if p.RemoteAddrAfter != "A2" || p.Migrations == 0 {
				t.Fatalf("endpoint-restart: route=%q migrations=%d", p.RemoteAddrAfter, p.Migrations)
			}
		case "kill-and-heal":
			if p.Recovered == 0 || p.Probes == 0 {
				t.Fatalf("kill-and-heal: recovered=%d probes=%d", p.Recovered, p.Probes)
			}
			if p.RemoteAddrAfter != "B" {
				t.Fatalf("kill-and-heal: route moved to %q", p.RemoteAddrAfter)
			}
			if p.UnackedAtFailover == 0 || p.Replays == 0 {
				t.Fatalf("kill-and-heal: unacked=%d replays=%d — the failover cut nothing",
					p.UnackedAtFailover, p.Replays)
			}
		}
	}
}

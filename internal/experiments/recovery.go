// Recovery chaos experiment: deterministic failover schedules against
// the self-healing machinery (recovery.go in internal/core). Each
// scenario kills the path mid-stream — a partition that heals, a NAT
// rebind that moves the peer's address, an endpoint restart, a
// permanent outage — and checks the connection's contract: exactly-once
// in-order delivery across the failover, route migration without a new
// Dial, and a typed ErrRecoveryExhausted failure when the retry budget
// runs out.
package experiments

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"paccel/internal/bits"
	"paccel/internal/core"
	"paccel/internal/faultinject"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

// RecoveryStack is the chaos stack plus a jittered heartbeat: dead-peer
// detection with automatic recovery needs a liveness source, or an idle
// healed connection would legitimately trip ErrPeerSilent again.
func RecoveryStack(rto time.Duration) core.StackBuilder {
	return func(spec core.PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
		w := layers.NewWindow()
		w.RetransTimeout = rto
		w.Naks = true
		return []stack.Layer{
			layers.NewChksum(),
			layers.NewFrag(),
			w,
			&layers.Heartbeat{
				Interval: 100 * time.Millisecond,
				Jitter:   25 * time.Millisecond,
				Seed:     int64(spec.LocalPort), // deterministic, distinct per side
			},
			&layers.Ident{
				Local: spec.LocalID, Remote: spec.RemoteID,
				LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
				Epoch: spec.Epoch, Order: order,
			},
		}, nil
	}
}

// RecoveryPoint is one scenario's outcome, one JSON row of the BENCH_3
// baseline.
type RecoveryPoint struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	Messages    int  `json:"messages"`
	Delivered   int  `json:"delivered"`
	ExactlyOnce bool `json:"exactly_once_in_order"`

	Recoveries        uint64 `json:"recoveries"`      // times either side entered Recovering
	Recovered         uint64 `json:"recovered"`       // recoveries completed
	Probes            uint64 `json:"recovery_probes"` // resume probes sent
	Migrations        uint64 `json:"peer_migrations"` // route rewrites (both sides)
	Resumes           uint64 `json:"window_resumes"`  // window resumption rounds
	Replays           uint64 `json:"resume_replays"`  // unacked frames replayed
	UnackedAtFailover int    `json:"unacked_at_failover"`

	VirtualMillis  float64 `json:"virtual_ms"`
	RecoveryMillis float64 `json:"recovery_ms"` // failover → fully delivered

	RemoteAddrAfter string `json:"remote_addr_after"` // observer's route post-failover
	FailedCleanly   bool   `json:"failed_cleanly"`    // exhausted budget: typed failure
	FailureCause    string `json:"failure_cause,omitempty"`
}

// RecoveryResult is the recovery experiment's machine-readable output.
type RecoveryResult struct {
	Seed   int64           `json:"seed"`
	Quick  bool            `json:"quick"`
	Points []RecoveryPoint `json:"points"`
}

// recoveryScenario describes one deterministic failover schedule.
type recoveryScenario struct {
	name    string
	flip    string // endpoint whose socket moves to <name>2 at failover ("" = none)
	heal    bool   // heal the partition after healAfter
	exhaust bool   // permanent outage + small budget: expect typed failure

	// expectRecovery: the redial engine is the expected heal path. False
	// for a sender-side flip, where the first identified retransmission
	// from the new address migrates the peer's route within one RTO —
	// before dead-peer detection can trip. Recovery probes are only
	// needed when the silent side is the one that moved.
	expectRecovery bool
}

const (
	recoveryRTO       = 20 * time.Millisecond
	recoveryTimeout   = 500 * time.Millisecond
	recoveryHealAfter = 8 * time.Second
)

func recoveryConfig(exhaust bool, seed int64) core.RecoveryConfig {
	cfg := core.RecoveryConfig{
		MaxAttempts: 60,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		Seed:        seed,
	}
	if exhaust {
		cfg.MaxAttempts = 5
	}
	return cfg
}

func findWindow(c *core.Conn) *layers.Window {
	for _, l := range c.Layers() {
		if w, ok := l.(*layers.Window); ok {
			return w
		}
	}
	return nil
}

// runRecoveryScenario streams n sequence-stamped messages A→B, forces
// the scenario's failover halfway through, and measures what the
// self-healing machinery does about it.
func runRecoveryScenario(sc recoveryScenario, n int, seed int64) (RecoveryPoint, error) {
	pt := RecoveryPoint{Scenario: sc.name, Seed: seed, Messages: n}
	clk := vclock.NewManual(time.Date(1996, 8, 28, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, netsim.Config{Latency: time.Millisecond, Seed: seed})

	var trA core.Transport = net.Endpoint("A")
	var trB core.Transport = net.Endpoint("B")
	var fi *faultinject.Transport
	switch sc.flip {
	case "A":
		fi = faultinject.New(trA, clk, seed)
		trA = fi
	case "B":
		fi = faultinject.New(trB, clk, seed)
		trB = fi
	}

	var failCause error
	cfgA := core.Config{
		Transport: trA, Clock: clk, Build: RecoveryStack(recoveryRTO),
		PeerTimeout: recoveryTimeout,
		Recovery:    recoveryConfig(sc.exhaust, seed),
		OnConnFail:  func(_ *core.Conn, err error) { failCause = err },
	}
	cfgB := core.Config{
		Transport: trB, Clock: clk, Build: RecoveryStack(recoveryRTO),
		PeerTimeout: recoveryTimeout,
		Recovery:    recoveryConfig(sc.exhaust, seed),
	}
	epA, err := core.NewEndpoint(cfgA)
	if err != nil {
		return pt, err
	}
	defer epA.Close()
	epB, err := core.NewEndpoint(cfgB)
	if err != nil {
		return pt, err
	}
	defer epB.Close()
	a, err := epA.Dial(core.PeerSpec{
		Addr: "B", LocalID: []byte("heal-a"), RemoteID: []byte("heal-b"),
		LocalPort: 1, RemotePort: 2, Epoch: 1,
	})
	if err != nil {
		return pt, err
	}
	b, err := epB.Dial(core.PeerSpec{
		Addr: "A", LocalID: []byte("heal-b"), RemoteID: []byte("heal-a"),
		LocalPort: 2, RemotePort: 1, Epoch: 1,
	})
	if err != nil {
		return pt, err
	}

	pt.ExactlyOnce = true
	next := uint32(0)
	b.OnDeliver(func(p []byte) {
		if len(p) < 4 || binary.BigEndian.Uint32(p) != next {
			pt.ExactlyOnce = false
			return
		}
		next++
	})

	const step = 5 * time.Millisecond
	budget := 4 * time.Minute
	start := clk.Now()
	payload := make([]byte, 32)
	sent := 0
	send := func(limit int) error {
		for sent < limit {
			binary.BigEndian.PutUint32(payload, uint32(sent))
			err := a.Send(payload)
			if errors.Is(err, core.ErrBackpressure) || errors.Is(err, core.ErrConnFailed) {
				return nil
			}
			if err != nil {
				return err
			}
			sent++
		}
		return nil
	}

	// Phase 1 — establish: deliver the first quarter and idle past the
	// identification handshake, so steady-state traffic is cookie-only.
	// (An unconfirmed identification would still ride on every message
	// and hand the flip scenarios a free migration before supervision
	// ever trips — the failover must hit an established session.)
	if err := send(n / 4); err != nil {
		return pt, err
	}
	for int(next) < n/4 || clk.Now().Sub(start) < 2*time.Second {
		if a.State() == core.StateFailed {
			return pt, fmt.Errorf("recovery %s: failed during warmup: %w", sc.name, a.Err())
		}
		clk.Advance(step)
	}

	// Phase 2 — the failover: fill the pipe, then kill the established
	// path under it. For the flip scenarios the affected socket
	// simultaneously reappears on a new address, the NAT-rebind /
	// restart shape.
	if err := send(n); err != nil {
		return pt, err
	}
	net.SetLinkDown("A", "B", true)
	net.SetLinkDown("B", "A", true)
	if fi != nil {
		fi.SwapInner(net.Endpoint(sc.flip + "2"))
	}
	if w := findWindow(a); w != nil {
		pt.UnackedAtFailover = w.Outstanding()
	}
	failoverAt := clk.Now()

	// Phase 3 — drive to completion (or to the typed failure).
	healed := false
	for clk.Now().Sub(start) < budget {
		if a.State() == core.StateFailed {
			if sc.exhaust {
				break // expected; recorded below
			}
			return pt, fmt.Errorf("recovery %s: connection failed: %w", sc.name, a.Err())
		}
		if err := send(n); err != nil {
			return pt, err
		}
		if sc.heal && !healed && clk.Now().Sub(failoverAt) > recoveryHealAfter {
			net.SetLinkDown("A", "B", false)
			net.SetLinkDown("B", "A", false)
			healed = true
		}
		if sent == n && int(next) == n &&
			a.State() == core.StateActive && b.State() == core.StateActive {
			break
		}
		clk.Advance(step)
	}

	elapsed := clk.Now().Sub(start)
	pt.Delivered = int(next)
	pt.VirtualMillis = float64(elapsed) / float64(time.Millisecond)
	if !sc.exhaust {
		pt.RecoveryMillis = float64(clk.Now().Sub(failoverAt)) / float64(time.Millisecond)
	}
	stA, stB := a.Stats(), b.Stats()
	pt.Recoveries = stA.Recoveries + stB.Recoveries
	pt.Recovered = stA.Recovered + stB.Recovered
	pt.Probes = stA.RecoveryProbes + stB.RecoveryProbes
	pt.Migrations = stA.PeerMigrations + stB.PeerMigrations
	if w := findWindow(a); w != nil {
		pt.Resumes = w.Stats.Resumes
		pt.Replays = w.Stats.ResumeReplays
	}
	// The observer is the side that watched its peer move: A for a B
	// flip, B for an A flip, A otherwise.
	switch sc.flip {
	case "A":
		pt.RemoteAddrAfter = b.RemoteAddr()
	default:
		pt.RemoteAddrAfter = a.RemoteAddr()
	}

	if sc.exhaust {
		// The outage never ends: success is a clean, typed failure after
		// exactly the configured budget, with every sentinel matchable.
		pt.FailedCleanly = a.State() == core.StateFailed &&
			errors.Is(failCause, core.ErrRecoveryExhausted) &&
			errors.Is(failCause, core.ErrConnFailed) &&
			errors.Is(failCause, core.ErrPeerSilent) &&
			errors.Is(a.Send(payload), core.ErrRecoveryExhausted)
		if failCause != nil {
			pt.FailureCause = failCause.Error()
		}
		return pt, nil
	}
	if pt.Delivered != n {
		return pt, fmt.Errorf("recovery %s: delivered %d/%d in %v virtual",
			sc.name, pt.Delivered, n, elapsed)
	}
	if !pt.ExactlyOnce {
		return pt, fmt.Errorf("recovery %s: delivery violated exactly-once in-order", sc.name)
	}
	if sc.expectRecovery && pt.Recovered == 0 {
		return pt, fmt.Errorf("recovery %s: no recovery ever completed", sc.name)
	}
	if sc.flip != "" && pt.Migrations == 0 {
		return pt, fmt.Errorf("recovery %s: the route never migrated", sc.name)
	}
	return pt, nil
}

// RecoveryScenarios is the fixed failover schedule, in run order.
func RecoveryScenarios() []recoveryScenario {
	return []recoveryScenario{
		{name: "kill-and-heal", heal: true, expectRecovery: true},
		{name: "addr-flip", flip: "B", expectRecovery: true},
		{name: "endpoint-restart", flip: "A"},
		{name: "retry-exhausted", exhaust: true},
	}
}

// Recovery runs the failover schedule with the given seed (0 means 1996).
func Recovery(quick bool, seed int64) (*RecoveryResult, error) {
	if seed == 0 {
		seed = 1996
	}
	n := 400
	if quick {
		n = 120
	}
	res := &RecoveryResult{Seed: seed, Quick: quick}
	for _, sc := range RecoveryScenarios() {
		pt, err := runRecoveryScenario(sc, n, seed)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RecoveryReport formats the result for the pabench console output.
func RecoveryReport(r *RecoveryResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Failover schedule (seed %d): %d scenarios, heartbeat stack, virtual clock\n", r.Seed, len(r.Points))
	fmt.Fprintf(&sb, "  %-17s %7s %6s %7s %8s %8s %9s %-10s\n",
		"scenario", "msgs", "recov", "probes", "migrate", "replays", "recov ms", "route")
	for _, p := range r.Points {
		status := ""
		if p.FailedCleanly {
			status = "  [failed cleanly: " + p.FailureCause + "]"
		}
		fmt.Fprintf(&sb, "  %-17s %3d/%-3d %3d/%-2d %7d %8d %8d %9.1f %-10s%s\n",
			p.Scenario, p.Delivered, p.Messages, p.Recovered, p.Recoveries,
			p.Probes, p.Migrations, p.Replays, p.RecoveryMillis, p.RemoteAddrAfter, status)
	}
	return sb.String()
}

// RecoveryJSON renders the result as the BENCH_3.json baseline.
func RecoveryJSON(r *RecoveryResult) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// Chaos experiment: randomized fault schedules against the full 4-layer
// stack. The paper's evaluation ran on a lossless ATM testbed ("in our
// experiments no message loss was observed"); this experiment measures
// what the reproduction's reliability machinery actually does when the
// network misbehaves — throughput vs loss/corruption rate, recovery
// latency after partitions and stalled bursts, and that failure is always
// clean and typed, never a deadlock or a silently corrupted delivery.
package experiments

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"paccel/internal/bits"
	"paccel/internal/core"
	"paccel/internal/faultinject"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

// The fault injector composes over any transport the engine accepts; the
// local Inner interface it declares must stay structurally identical to
// core.Transport.
var _ core.Transport = (*faultinject.Transport)(nil)

// FaultStack is the default 4-layer stack with a retransmission timeout
// tuned for chaos runs: short enough that a lossy schedule converges in
// bounded (virtual or real) time, with NAKs so single gaps heal in one
// round trip.
func FaultStack(rto time.Duration) core.StackBuilder {
	return func(spec core.PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
		w := layers.NewWindow()
		w.RetransTimeout = rto
		w.Naks = true
		return []stack.Layer{
			layers.NewChksum(),
			layers.NewFrag(),
			w,
			&layers.Ident{
				Local: spec.LocalID, Remote: spec.RemoteID,
				LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
				Epoch: spec.Epoch, Order: order,
			},
		}, nil
	}
}

// FaultsPoint is one scenario's outcome, one JSON row of the BENCH_2
// baseline.
type FaultsPoint struct {
	Scenario    string  `json:"scenario"`
	Seed        int64   `json:"seed"`
	LossRate    float64 `json:"loss_rate"`
	DupRate     float64 `json:"dup_rate"`
	ReorderRate float64 `json:"reorder_rate"`
	CorruptRate float64 `json:"corrupt_rate"`

	Messages  int  `json:"messages"`
	Delivered int  `json:"delivered"`
	Ordered   bool `json:"exactly_once_in_order"`

	Retransmits  uint64 `json:"retransmits"`
	NaksSent     uint64 `json:"naks_sent"`
	NetCorrupted uint64 `json:"net_corrupted"`
	RecvDrops    uint64 `json:"recv_drops"` // checksum + duplicate refusals

	VirtualMillis  float64 `json:"virtual_ms"`         // virtual time to completion
	MsgsPerVirtSec float64 `json:"msgs_per_virtual_s"` // throughput under the schedule
	RecoveryMillis float64 `json:"recovery_ms"`        // heal/release → fully delivered
	FailedCleanly  bool    `json:"failed_cleanly"`     // typed failure (dead-peer scenario)
	FailureCause   string  `json:"failure_cause,omitempty"`
}

// FaultsResult is the chaos experiment's machine-readable output.
type FaultsResult struct {
	Seed   int64         `json:"seed"`
	Quick  bool          `json:"quick"`
	Points []FaultsPoint `json:"points"`
}

// faultScenario describes one deterministic schedule.
type faultScenario struct {
	name      string
	net       netsim.Config
	stall     bool // faultinject: stall a burst of A's datagrams, release late
	partition bool // black-hole both directions mid-run, then heal
	deadPeer  bool // permanent partition + supervision: expect typed failure
}

const faultRTO = 20 * time.Millisecond

// runFaultScenario drives n sequence-stamped messages A→B through the
// scenario on a virtual clock and checks exactly-once in-order delivery
// (or, for the dead-peer schedule, a clean typed failure).
func runFaultScenario(sc faultScenario, n int, seed int64) (FaultsPoint, error) {
	pt := FaultsPoint{
		Scenario: sc.name, Seed: seed, Messages: n,
		LossRate: sc.net.LossRate, DupRate: sc.net.DupRate,
		ReorderRate: sc.net.ReorderRate, CorruptRate: sc.net.CorruptRate,
	}
	clk := vclock.NewManual(time.Date(1996, 8, 28, 0, 0, 0, 0, time.UTC))
	sc.net.Seed = seed
	net := netsim.New(clk, sc.net)

	var trA core.Transport = net.Endpoint("A")
	var fi *faultinject.Transport
	if sc.stall {
		// Hold every 5th datagram of the first 40 hostage; released long
		// after the window has retransmitted them, they arrive as stale
		// duplicates the receiver must refuse.
		fi = faultinject.New(trA, clk, seed,
			faultinject.Rule{Kind: faultinject.Stall, Direction: faultinject.Send, Every: 5, Count: 8})
		trA = fi
	}
	cfgA := core.Config{Transport: trA, Clock: clk, Build: FaultStack(faultRTO)}
	var failCause error
	if sc.deadPeer {
		cfgA.PeerTimeout = time.Second
		cfgA.OnConnFail = func(_ *core.Conn, err error) { failCause = err }
	}
	epA, err := core.NewEndpoint(cfgA)
	if err != nil {
		return pt, err
	}
	defer epA.Close()
	epB, err := core.NewEndpoint(core.Config{
		Transport: net.Endpoint("B"), Clock: clk, Build: FaultStack(faultRTO),
	})
	if err != nil {
		return pt, err
	}
	defer epB.Close()
	a, err := epA.Dial(core.PeerSpec{
		Addr: "B", LocalID: []byte("chaos-a"), RemoteID: []byte("chaos-b"),
		LocalPort: 1, RemotePort: 2, Epoch: 1,
	})
	if err != nil {
		return pt, err
	}
	b, err := epB.Dial(core.PeerSpec{
		Addr: "A", LocalID: []byte("chaos-b"), RemoteID: []byte("chaos-a"),
		LocalPort: 2, RemotePort: 1, Epoch: 1,
	})
	if err != nil {
		return pt, err
	}

	// Exactly-once in-order: each payload carries its sequence number;
	// the receiver demands exactly 0,1,2,... with no repeats or gaps.
	pt.Ordered = true
	next := uint32(0)
	b.OnDeliver(func(p []byte) {
		if len(p) < 4 || binary.BigEndian.Uint32(p) != next {
			pt.Ordered = false
			return
		}
		next++
	})

	const step = 5 * time.Millisecond
	budget := 4 * time.Minute // virtual; costs nothing but Advance calls
	start := clk.Now()
	payload := make([]byte, 32)
	sent := 0
	partitioned, healed := false, false
	var healedAt time.Time
	fail := func() error {
		if sc.deadPeer {
			return nil // expected; recorded below
		}
		return fmt.Errorf("faults %s: connection failed: %w", sc.name, a.Err())
	}
	for clk.Now().Sub(start) < budget {
		if a.State() == core.StateFailed {
			if err := fail(); err != nil {
				return pt, err
			}
			break
		}
		// Fill the pipe until backpressure, then let virtual time run.
		for sent < n {
			binary.BigEndian.PutUint32(payload, uint32(sent))
			err := a.Send(payload)
			if errors.Is(err, core.ErrBackpressure) {
				break
			}
			if errors.Is(err, core.ErrConnFailed) {
				break
			}
			if err != nil {
				return pt, err
			}
			sent++
		}
		if (sc.partition || sc.deadPeer) && !partitioned && sent >= n/2 {
			net.SetLinkDown("A", "B", true)
			net.SetLinkDown("B", "A", true)
			partitioned = true
		}
		if sc.partition && partitioned && !healed &&
			clk.Now().Sub(start) > 30*time.Second {
			net.SetLinkDown("A", "B", false)
			net.SetLinkDown("B", "A", false)
			healed = true
			healedAt = clk.Now()
		}
		if sc.stall && fi != nil && sent == n && fi.StalledCount() > 0 &&
			clk.Now().Sub(start) > 10*time.Second {
			fi.ReleaseStalled()
		}
		if int(next) == n {
			break
		}
		clk.Advance(step)
	}

	elapsed := clk.Now().Sub(start)
	pt.Delivered = int(next)
	pt.VirtualMillis = float64(elapsed) / float64(time.Millisecond)
	if elapsed > 0 {
		pt.MsgsPerVirtSec = float64(pt.Delivered) / elapsed.Seconds()
	}
	if healed {
		pt.RecoveryMillis = float64(clk.Now().Sub(healedAt)) / float64(time.Millisecond)
	}
	stA, stB := a.Stats(), b.Stats()
	_ = stA
	wstats := func(c *core.Conn) (retrans, naks uint64) {
		for _, l := range c.Layers() {
			if w, ok := l.(*layers.Window); ok {
				return w.Stats.Retransmits, w.Stats.NaksSent
			}
		}
		return 0, 0
	}
	pt.Retransmits, _ = wstats(a)
	_, pt.NaksSent = wstats(b)
	pt.NetCorrupted = net.Stats().Corrupted
	pt.RecvDrops = stB.Dropped

	if sc.deadPeer {
		// The schedule never heals: success here is a clean, typed
		// failure — supervision tripped, the cause wraps the sentinel
		// errors, and subsequent sends refuse with the same cause.
		pt.FailedCleanly = a.State() == core.StateFailed &&
			errors.Is(failCause, core.ErrPeerSilent) &&
			errors.Is(failCause, core.ErrConnFailed) &&
			errors.Is(a.Send(payload), core.ErrConnFailed)
		if failCause != nil {
			pt.FailureCause = failCause.Error()
		}
		pt.RecoveryMillis = 0
		return pt, nil
	}
	if pt.Delivered != n {
		return pt, fmt.Errorf("faults %s: delivered %d/%d in %v virtual",
			sc.name, pt.Delivered, n, elapsed)
	}
	if !pt.Ordered {
		return pt, fmt.Errorf("faults %s: delivery violated exactly-once in-order", sc.name)
	}
	return pt, nil
}

// FaultScenarios is the fixed chaos schedule, in run order.
func FaultScenarios() []faultScenario {
	return []faultScenario{
		{name: "clean", net: netsim.Config{Latency: time.Millisecond}},
		{name: "loss-10", net: netsim.Config{Latency: time.Millisecond, LossRate: 0.10}},
		{name: "loss-30", net: netsim.Config{Latency: time.Millisecond, LossRate: 0.30}},
		{name: "dup-reorder", net: netsim.Config{
			Latency: time.Millisecond, Jitter: 2 * time.Millisecond,
			DupRate: 0.20, ReorderRate: 0.30,
		}},
		{name: "corrupt-10", net: netsim.Config{Latency: time.Millisecond, CorruptRate: 0.10}},
		{name: "mixed", net: netsim.Config{
			Latency: time.Millisecond, Jitter: time.Millisecond,
			LossRate: 0.10, DupRate: 0.10, ReorderRate: 0.20, CorruptRate: 0.05,
		}},
		{name: "stall-replay", net: netsim.Config{Latency: time.Millisecond}, stall: true},
		{name: "partition-heal", net: netsim.Config{Latency: time.Millisecond}, partition: true},
		{name: "dead-peer", net: netsim.Config{Latency: time.Millisecond}, deadPeer: true},
	}
}

// Faults runs the chaos schedule with the given seed (0 means 1996).
func Faults(quick bool, seed int64) (*FaultsResult, error) {
	if seed == 0 {
		seed = 1996
	}
	n := 400
	if quick {
		n = 120
	}
	res := &FaultsResult{Seed: seed, Quick: quick}
	for _, sc := range FaultScenarios() {
		pt, err := runFaultScenario(sc, n, seed)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// FaultsReport formats the result for the pabench console output.
func FaultsReport(r *FaultsResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos schedule (seed %d): %d scenarios, 4-layer stack, virtual clock\n", r.Seed, len(r.Points))
	fmt.Fprintf(&sb, "  %-15s %6s %6s %7s %8s %9s %10s %9s\n",
		"scenario", "loss", "corr", "msgs", "retrans", "drops", "virt ms", "recov ms")
	for _, p := range r.Points {
		status := ""
		if p.FailedCleanly {
			status = "  [failed cleanly: " + p.FailureCause + "]"
		}
		fmt.Fprintf(&sb, "  %-15s %6.2f %6.2f %4d/%-3d %8d %9d %10.1f %9.1f%s\n",
			p.Scenario, p.LossRate, p.CorruptRate, p.Delivered, p.Messages,
			p.Retransmits, p.RecvDrops, p.VirtualMillis, p.RecoveryMillis, status)
	}
	return sb.String()
}

// FaultsJSON renders the result as the BENCH_2.json baseline.
func FaultsJSON(r *FaultsResult) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment has two modes where that makes sense:
//
//   - sim: the calibrated discrete-event model of the paper's 1996
//     testbed (internal/evsim), which reproduces the published numbers'
//     shape and scale;
//   - real: the actual Go Protocol Accelerator (internal/core) measured
//     end-to-end over the in-memory network on today's hardware — the
//     same experiments, four orders of magnitude faster.
//
// cmd/pabench prints them; bench_test.go wraps them as Go benchmarks.
package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"paccel/internal/baseline"
	"paccel/internal/bits"
	"paccel/internal/core"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/telemetry"
	"paccel/internal/vclock"
)

// Pair is a connected PA client/server over an instantaneous in-memory
// network, used by the real-mode measurements.
type Pair struct {
	Net      *netsim.Network
	EpA, EpB *core.Endpoint
	A, B     *Conn
}

// Conn aliases the engine connection for the experiment surface.
type Conn = core.Conn

// PairOptions tweak the real-measurement fixture.
type PairOptions struct {
	NetConfig       netsim.Config
	Build           core.StackBuilder
	CompiledFilters bool
	LazyPost        bool

	// Telemetry, when non-nil, is installed on both endpoints (and on the
	// network, for fault events). TelemetrySampleEvery is forwarded to
	// core.Config; zero keeps the engine default.
	Telemetry            *telemetry.Recorder
	TelemetrySampleEvery int
}

// NewPair dials two endpoints A↔B over an in-memory network on the real
// clock.
func NewPair(opt PairOptions) (*Pair, error) {
	net := netsim.New(vclock.Real{}, opt.NetConfig)
	if opt.Telemetry != nil {
		net.SetTelemetry(opt.Telemetry)
	}
	cfg := func(addr string) core.Config {
		return core.Config{
			Transport:            net.Endpoint(addr),
			Build:                opt.Build,
			CompiledFilters:      opt.CompiledFilters,
			LazyPost:             opt.LazyPost,
			Telemetry:            opt.Telemetry,
			TelemetrySampleEvery: opt.TelemetrySampleEvery,
		}
	}
	epA, err := core.NewEndpoint(cfg("A"))
	if err != nil {
		return nil, err
	}
	epB, err := core.NewEndpoint(cfg("B"))
	if err != nil {
		return nil, err
	}
	a, err := epA.Dial(core.PeerSpec{
		Addr: "B", LocalID: []byte("client"), RemoteID: []byte("server"),
		LocalPort: 1, RemotePort: 2, Epoch: 1,
	})
	if err != nil {
		return nil, err
	}
	b, err := epB.Dial(core.PeerSpec{
		Addr: "A", LocalID: []byte("server"), RemoteID: []byte("client"),
		LocalPort: 2, RemotePort: 1, Epoch: 1,
	})
	if err != nil {
		return nil, err
	}
	return &Pair{Net: net, EpA: epA, EpB: epB, A: a, B: b}, nil
}

// Close releases the fixture.
func (p *Pair) Close() {
	p.EpA.Close()
	p.EpB.Close()
}

// PingPong echoes n round trips of payload bytes and returns the mean
// round-trip time.
func (p *Pair) PingPong(n int, payload []byte) (time.Duration, error) {
	p.B.OnDeliver(func(data []byte) {
		if err := p.B.Send(data); err != nil {
			panic(err)
		}
	})
	done := make(chan struct{}, 1)
	p.A.OnDeliver(func([]byte) { done <- struct{}{} })
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := p.A.Send(payload); err != nil {
			return 0, err
		}
		<-done
	}
	return time.Since(start) / time.Duration(n), nil
}

// StreamOneWay sends n messages A→B as fast as possible and returns the
// achieved messages/second and bytes/second.
func (p *Pair) StreamOneWay(n int, payload []byte) (msgsPerSec, bytesPerSec float64, err error) {
	var got atomic.Int64
	doneCh := make(chan struct{})
	p.B.OnDeliver(func([]byte) {
		if got.Add(1) == int64(n) {
			close(doneCh)
		}
	})
	start := time.Now()
	for i := 0; i < n; i++ {
		for {
			err := p.A.Send(payload)
			if err == nil {
				break
			}
			if errors.Is(err, core.ErrBacklogFull) {
				// Backpressure: the window is closed and the
				// backlog is at capacity; wait for acks.
				time.Sleep(20 * time.Microsecond)
				continue
			}
			return 0, 0, err
		}
	}
	p.A.Flush()
	deadline := time.Now().Add(60 * time.Second)
	for {
		select {
		case <-doneCh:
		case <-time.After(50 * time.Millisecond):
			// Nudge: under heavy load (race detector, parallel
			// suites) delayed-ack timers can lag; Flush drains
			// pending post-processing and kicks the backlog.
			p.A.Flush()
			p.B.Flush()
			if time.Now().After(deadline) {
				return 0, 0, fmt.Errorf("stream stalled at %d/%d", got.Load(), n)
			}
			continue
		}
		break
	}
	el := time.Since(start).Seconds()
	return float64(n) / el, float64(n*len(payload)) / el, nil
}

// BaselinePair is the traditional-path fixture.
type BaselinePair struct {
	EpA, EpB *baseline.Endpoint
	A, B     *baseline.Conn
}

// NewBaselinePair dials two baseline endpoints.
func NewBaselinePair(netCfg netsim.Config) (*BaselinePair, error) {
	net := netsim.New(vclock.Real{}, netCfg)
	epA, err := baseline.NewEndpoint(baseline.Config{Transport: net.Endpoint("A")})
	if err != nil {
		return nil, err
	}
	epB, err := baseline.NewEndpoint(baseline.Config{Transport: net.Endpoint("B")})
	if err != nil {
		return nil, err
	}
	a, err := epA.Dial(core.PeerSpec{Addr: "B", LocalID: []byte("client"), RemoteID: []byte("server"), LocalPort: 1, RemotePort: 2, Epoch: 1})
	if err != nil {
		return nil, err
	}
	b, err := epB.Dial(core.PeerSpec{Addr: "A", LocalID: []byte("server"), RemoteID: []byte("client"), LocalPort: 2, RemotePort: 1, Epoch: 1})
	if err != nil {
		return nil, err
	}
	return &BaselinePair{EpA: epA, EpB: epB, A: a, B: b}, nil
}

// Close releases the fixture.
func (p *BaselinePair) Close() {
	p.EpA.Close()
	p.EpB.Close()
}

// PingPong mirrors Pair.PingPong for the baseline path.
func (p *BaselinePair) PingPong(n int, payload []byte) (time.Duration, error) {
	p.B.OnDeliver(func(data []byte) {
		if err := p.B.Send(data); err != nil {
			panic(err)
		}
	})
	done := make(chan struct{}, 1)
	p.A.OnDeliver(func([]byte) { done <- struct{}{} })
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := p.A.Send(payload); err != nil {
			return 0, err
		}
		<-done
	}
	return time.Since(start) / time.Duration(n), nil
}

// DoubledWindowStack is the §5 layer-doubling configuration: the window
// layer stacked twice.
func DoubledWindowStack(spec core.PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
	return []stack.Layer{
		layers.NewChksum(),
		layers.NewFrag(),
		layers.NewWindow(),
		layers.NewWindow(),
		&layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		},
	}, nil
}

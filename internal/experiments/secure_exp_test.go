package experiments

import (
	"strings"
	"testing"
)

// TestSecureFixture pins what the benchmarks stand on: the encrypted
// pair delivers synchronously, and the bare-layer rekey fixture works.
func TestSecureFixture(t *testing.T) {
	p, err := newSecurePair(SecureLeanStack)
	if err != nil {
		t.Fatal(err)
	}
	defer p.cleanup()
	got := 0
	p.b.OnDeliver(func([]byte) { got++ })
	payload := make([]byte, 64)
	for i := 0; i < 50; i++ {
		if err := p.a.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	if got != 50 {
		t.Fatalf("delivered %d of 50 — the sealed path is not synchronous", got)
	}
}

// TestSecureReportShape checks the report and JSON render without
// running the (slow) measured experiment.
func TestSecureReportShape(t *testing.T) {
	r := &SecureResult{
		GOOS: "linux", GOARCH: "amd64", RekeyNs: 1234,
		Payloads: []SecurePayloadResult{{
			PayloadBytes: 32, PlainNsOp: 500, SecureNsOp: 600,
			OverheadPct: 20, SecureMsgsPerSec: 1.6e6, SecureMBPerSec: 53,
		}},
	}
	rep := SecureReport(r)
	if !strings.Contains(rep, "AES-GCM") || !strings.Contains(rep, "20.0%") {
		t.Fatalf("report:\n%s", rep)
	}
	out, err := SecureJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"overhead_pct": 20`) || !strings.Contains(out, `"rekey_ns": 1234`) {
		t.Fatalf("json:\n%s", out)
	}
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"paccel/internal/core"
	"paccel/internal/evsim"
	"paccel/internal/header"
	"paccel/internal/netsim"
	"paccel/internal/stats"
)

// Table4Sim regenerates the paper's Table 4 from the calibrated testbed
// model, alongside the published values.
func Table4Sim() string {
	t4 := evsim.ComputeTable4(evsim.PaperCosts())
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — basic performance (simulated 1996 testbed)\n")
	fmt.Fprintf(&b, "%-28s %15s %15s\n", "what", "paper", "reproduced")
	fmt.Fprintf(&b, "%-28s %15s %15s\n", "one-way latency", "85 µs",
		stats.Micros(t4.OneWayLatency)+" µs")
	fmt.Fprintf(&b, "%-28s %15s %15s\n", "message throughput", "80,000 msgs/s",
		fmt.Sprintf("%.0f msgs/s", t4.MsgsPerSec))
	fmt.Fprintf(&b, "%-28s %15s %15s\n", "#roundtrips/sec", "6000 rt/s",
		fmt.Sprintf("%.0f rt/s", t4.RoundTripsSec))
	fmt.Fprintf(&b, "%-28s %15s %15s\n", "bandwidth (1 Kbyte msgs)", "15 Mbytes/s",
		fmt.Sprintf("%.1f Mbytes/s", t4.BandwidthMBs))
	return b.String()
}

// Table4Real measures the same four rows on the Go implementation over
// the in-memory network (absolute numbers reflect today's hardware; the
// point is the methodology and the relative behaviour).
func Table4Real(quick bool) (string, error) {
	n := 20000
	if quick {
		n = 2000
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — basic performance (Go implementation, in-memory network)\n")

	p, err := NewPair(PairOptions{})
	if err != nil {
		return "", err
	}
	rtt, err := p.PingPong(n, make([]byte, 8))
	p.Close()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%-28s %15v\n", "one-way latency (rtt/2)", rtt/2)
	fmt.Fprintf(&b, "%-28s %15s\n", "#roundtrips/sec",
		fmt.Sprintf("%.0f rt/s", stats.Rate(rtt)))

	p, err = NewPair(PairOptions{})
	if err != nil {
		return "", err
	}
	msgs, _, err := p.StreamOneWay(n, make([]byte, 8))
	p.Close()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%-28s %15s\n", "message throughput",
		fmt.Sprintf("%.0f msgs/s", msgs))

	p, err = NewPair(PairOptions{})
	if err != nil {
		return "", err
	}
	_, bytesPs, err := p.StreamOneWay(n, make([]byte, 1024))
	p.Close()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%-28s %15s\n", "bandwidth (1 Kbyte msgs)",
		fmt.Sprintf("%.1f Mbytes/s", bytesPs/1e6))
	return b.String(), nil
}

// Fig4 renders the round-trip breakdown timeline (paper Figure 4).
func Fig4() string {
	tl, res := evsim.FirstRoundTripTimeline(evsim.PaperCosts())
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — breakdown of the round-trip execution (simulated)\n")
	fmt.Fprintf(&b, "paper: send 25 µs, net 35 µs, deliver 25 µs per direction;\n")
	fmt.Fprintf(&b, "       post-send ~80 µs, post-deliver ~50 µs, GC 150–450 µs\n\n")
	b.WriteString(tl.Render("server", "client"))
	fmt.Fprintf(&b, "\nround trip: %s µs (paper: ~170); all post-processing and GC done by %s µs\n",
		stats.Micros(res.FirstRTT), stats.Micros(res.PostDone))

	// The dashed (back-to-back) case: the earliest next round trip and
	// its latency at saturation.
	rate, lat := evsim.MaxRoundTripRate(evsim.PaperCosts(), 2000)
	fmt.Fprintf(&b, "pushed to its limits (dashed): %.0f rt/s, average latency %s µs (paper: ~1900 rt/s, ~400 µs)\n",
		rate, stats.Micros(lat))
	return b.String()
}

// Fig5Point is one point of the latency-vs-rate curve.
type Fig5Point struct {
	Rate    float64
	Latency time.Duration
}

// Fig5Curve sweeps offered round-trip rates for one GC policy. The sweep
// paces a closed loop with decreasing idle gaps, then pushes back-to-back,
// tracing the curve up to its saturation point — exactly how the paper's
// Figure 5 lines terminate at their caps.
func Fig5Curve(gcEvery bool, n int) []Fig5Point {
	cm := evsim.PaperCosts()
	cm.GCEveryReceive = gcEvery
	gaps := []time.Duration{
		1800, 1300, 800, 600, 500, 400, 300, 250, 200, 150, 100, 50, 20, 0,
	}
	var pts []Fig5Point
	for _, gap := range gaps {
		res := evsim.RoundTrips(evsim.RTConfig{Model: cm, N: n, Gap: gap * time.Microsecond})
		pts = append(pts, Fig5Point{Rate: res.Achieved, Latency: res.Latency.Mean()})
	}
	return pts
}

// Fig5 renders both curves of Figure 5: round-trip latency as a function
// of round-trips per second, with GC after every round trip (solid) and
// only occasionally (dashed).
func Fig5(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — round-trip latency vs round-trips/second (simulated)\n")
	fmt.Fprintf(&b, "paper: solid (GC each time) flat at 170 µs until ~1650 rt/s,\n")
	fmt.Fprintf(&b, "       capping near 1900 rt/s around 400 µs; dashed (occasional GC)\n")
	fmt.Fprintf(&b, "       reaches ~6000 rt/s\n\n")
	fmt.Fprintf(&b, "%12s %16s %12s %16s\n", "rt/s (GC)", "latency µs (GC)", "rt/s (occ)", "latency µs (occ)")
	solid := Fig5Curve(true, n)
	dashed := Fig5Curve(false, n)
	for i := range solid {
		fmt.Fprintf(&b, "%12.0f %16s %12.0f %16s\n",
			solid[i].Rate, stats.Micros(solid[i].Latency),
			dashed[i].Rate, stats.Micros(dashed[i].Latency))
	}
	return b.String()
}

// LayersSim reports the §5 layer-doubling experiment on the model:
// post-processing grows ~15 µs per direction per extra layer while the
// critical path is unchanged.
func LayersSim() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Layer scaling (§5, simulated): window layer stacked k extra times\n")
	fmt.Fprintf(&b, "%8s %12s %14s %14s %12s\n", "extra", "rtt µs", "post-send µs", "post-dlvr µs", "max rt/s")
	for extra := 0; extra <= 4; extra++ {
		cm := evsim.PaperCosts()
		cm.ExtraLayers = extra
		_, res := evsim.FirstRoundTripTimeline(cm)
		rate, _ := evsim.MaxRoundTripRate(cm, 1500)
		fmt.Fprintf(&b, "%8d %12s %14d %14d %12.0f\n",
			extra, stats.Micros(res.FirstRTT),
			80+15*extra, 50+15*extra, rate)
	}
	fmt.Fprintf(&b, "paper: +15 µs post-send and +15 µs post-delivery per doubling; no RTT change\n")
	return b.String()
}

// LayersReal measures the doubled-window stack on the Go implementation.
func LayersReal(quick bool) (string, error) {
	n := 20000
	if quick {
		n = 2000
	}
	p4, err := NewPair(PairOptions{})
	if err != nil {
		return "", err
	}
	rtt4, err := p4.PingPong(n, make([]byte, 8))
	p4.Close()
	if err != nil {
		return "", err
	}
	p5, err := NewPair(PairOptions{Build: DoubledWindowStack})
	if err != nil {
		return "", err
	}
	rtt5, err := p5.PingPong(n, make([]byte, 8))
	p5.Close()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("Layer scaling (Go implementation): 4-layer rtt %v, 5-layer (window ×2) rtt %v (+%v)\n",
		rtt4, rtt5, rtt5-rtt4), nil
}

// Headers reports the §2 header-overhead comparison: the compact PA
// layout against the per-layer padded baseline, for the default stack.
func Headers() (string, error) {
	p, err := NewPair(PairOptions{})
	if err != nil {
		return "", err
	}
	defer p.Close()
	paSchema := p.A.Schema()

	bp, err := NewBaselinePair(netsim.Config{})
	if err != nil {
		return "", err
	}
	defer bp.Close()
	blSchema := bp.A.Schema()

	var b strings.Builder
	fmt.Fprintf(&b, "Header overhead (§2) — identical four-layer stack, two layouts\n\n")
	b.WriteString(paSchema.Report())
	fmt.Fprintf(&b, "\n")
	b.WriteString(blSchema.Report())
	paNormal := core.PreambleSize + paSchema.TotalSize() + 1
	fmt.Fprintf(&b, "\nnormal PA message overhead: %d bytes (preamble %d + headers %d + packing 1)\n",
		paNormal, core.PreambleSize, paSchema.TotalSize())
	fmt.Fprintf(&b, "first/unusual PA message adds the %d-byte identification (paper: ~76)\n",
		paSchema.Size(header.ConnID))
	fmt.Fprintf(&b, "baseline overhead on EVERY message: %d bytes\n", blSchema.TotalSize())
	fmt.Fprintf(&b, "PA saving per normal message: %d bytes (%.1fx smaller; fits the 40-byte U-Net fast frame: %v)\n",
		blSchema.TotalSize()-paNormal,
		float64(blSchema.TotalSize())/float64(paNormal), paNormal <= 40)
	return b.String(), nil
}

// BaselineSim reports the PA-vs-original-Horus comparison on the
// calibrated models.
func BaselineSim() string {
	um := evsim.PaperUnaccelerated()
	_, acc := evsim.FirstRoundTripTimeline(evsim.PaperCosts())
	rtt := um.RoundTrip(8)
	return fmt.Sprintf(
		"PA vs traditional layering (simulated): accelerated rtt %s µs, traditional rtt %s µs (%.1fx; paper: 170 µs vs ~1.5 ms ≈ 8.8x)\n",
		stats.Micros(acc.FirstRTT), stats.Micros(rtt),
		float64(rtt)/float64(acc.FirstRTT))
}

// BaselineReal measures the same comparison on the Go implementation.
func BaselineReal(quick bool) (string, error) {
	n := 20000
	if quick {
		n = 2000
	}
	p, err := NewPair(PairOptions{})
	if err != nil {
		return "", err
	}
	paRTT, err := p.PingPong(n, make([]byte, 8))
	p.Close()
	if err != nil {
		return "", err
	}
	bp, err := NewBaselinePair(netsim.Config{})
	if err != nil {
		return "", err
	}
	blRTT, err := bp.PingPong(n, make([]byte, 8))
	bp.Close()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"PA vs traditional layering (Go): accelerated rtt %v, traditional rtt %v (%.2fx)\n",
		paRTT, blRTT, float64(blRTT)/float64(paRTT)), nil
}

// ServerLoad reports the §6 "Maximum Load" analysis: the server-wide RPC
// ceiling as clients and processors vary, with the paper's remedies.
func ServerLoad() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Maximum load (§6, simulated): server-wide RPCs/second\n")
	fmt.Fprintf(&b, "paper: one client caps at ~6000 RPC/s; more clients cannot exceed it on\n")
	fmt.Fprintf(&b, "       one CPU (post-processing consumes all cycles); N processors multiply it\n\n")
	cm := evsim.PaperCosts()
	cm.GCEveryReceive = false
	fmt.Fprintf(&b, "%8s %11s %14s %14s %12s\n", "clients", "processors", "per-client", "server cap", "bottleneck")
	for _, c := range []struct{ clients, procs int }{
		{1, 1}, {2, 1}, {8, 1}, {64, 1}, {64, 2}, {64, 4}, {64, 8},
	} {
		r := evsim.ServerLoad(evsim.ServerLoadConfig{Model: cm, Clients: c.clients, Processors: c.procs})
		fmt.Fprintf(&b, "%8d %11d %14.0f %14.0f %12s\n",
			c.clients, c.procs, r.PerClientCap, r.ServerCap, r.Bottleneck)
	}
	r2 := evsim.ServerLoad(evsim.ServerLoadConfig{Model: cm, Clients: 64, Processors: 1, PostSpeedup: 3})
	fmt.Fprintf(&b, "\nwith 3x faster post-processing (the \"faster ML\" remedy): %.0f RPC/s on one CPU\n", r2.ServerCap)
	return b.String()
}

// Hiccups reports the occasional-GC tail: §5's "hiccups which last about
// a millisecond" that the Figure 5 dashed line trades for its higher
// rates.
func Hiccups() string {
	cm := evsim.PaperCosts()
	cm.GCEveryReceive = false
	cm.GCHiccupEvery = 100
	cm.GCHiccup = time.Millisecond
	res := evsim.RoundTrips(evsim.RTConfig{Model: cm, N: 3000})
	var b strings.Builder
	fmt.Fprintf(&b, "GC hiccups (§5, simulated): occasional collection, one ~1 ms pause per 100 receives\n")
	fmt.Fprintf(&b, "  p50 %s µs   p90 %s µs   p99 %s µs   max %s µs   (paper: typical 170 µs, hiccups ~1 ms)\n",
		stats.Micros(res.Latency.Percentile(50)),
		stats.Micros(res.Latency.Percentile(90)),
		stats.Micros(res.Latency.Percentile(99)),
		stats.Micros(res.Latency.Max()))
	fmt.Fprintf(&b, "  achieved %.0f rt/s back-to-back\n", res.Achieved)
	return b.String()
}

// Fig5CSV emits the Figure 5 curves as CSV (curve,rate_per_sec,latency_us)
// for external plotting.
func Fig5CSV(n int) string {
	var b strings.Builder
	b.WriteString("curve,rate_per_sec,latency_us\n")
	for _, c := range []struct {
		name    string
		gcEvery bool
	}{{"gc-every-receive", true}, {"occasional-gc", false}} {
		for _, pt := range Fig5Curve(c.gcEvery, n) {
			fmt.Fprintf(&b, "%s,%.0f,%s\n", c.name, pt.Rate, stats.Micros(pt.Latency))
		}
	}
	return b.String()
}

// The telemetry experiment: what always-on observability costs
// (DESIGN.md §12). It measures the engine's round-trip fast path with
// telemetry disabled (the nil-recorder branch), enabled at the default
// 1-in-8 duration sampling, and enabled with every operation timed —
// quantifying both the shipping configuration's overhead and the
// worst-case cost sampling protects against. The enabled run's histogram
// snapshot and alloc counts ride along, so the BENCH_5.json baseline
// also proves the instrumented fast paths stay allocation-free.
package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"paccel/internal/telemetry"
)

// telemetryPingPong measures the round-trip fast path of a fresh Pair
// built with opt, min of reps runs (shared machines are noisy upward,
// never downward). One op is a full A→B→A round trip.
func telemetryPingPong(opt PairOptions, reps int) (float64, error) {
	best := 0.0
	for r := 0; r < reps; r++ {
		p, err := NewPair(opt)
		if err != nil {
			return 0, err
		}
		p.B.OnDeliver(func(data []byte) {
			if err := p.B.Send(data); err != nil {
				panic(err)
			}
		})
		done := make(chan struct{}, 1)
		p.A.OnDeliver(func([]byte) { done <- struct{}{} })
		payload := make([]byte, 8)
		var sendErr error
		out := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < 64; i++ { // warm pools, prime prediction
				if err := p.A.Send(payload); err != nil {
					sendErr = err
					return
				}
				<-done
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.A.Send(payload); err != nil {
					sendErr = err
					return
				}
				<-done
			}
		})
		p.Close()
		if sendErr != nil {
			return 0, sendErr
		}
		ns := float64(out.NsPerOp())
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// telemetrySendAllocs is SendAllocsPerOp with a recorder installed:
// the lean-stack send fast path, sampled every operation so the
// instrumentation itself — counter bump, clock reads, histogram record —
// is inside the measured window.
func telemetrySendAllocs(runs int, rec *telemetry.Recorder) (float64, error) {
	p, err := NewPair(PairOptions{
		Build: LeanStack, Telemetry: rec, TelemetrySampleEvery: 1,
	})
	if err != nil {
		return 0, err
	}
	defer p.Close()
	p.B.OnDeliver(func([]byte) {})
	payload := make([]byte, 32)
	for i := 0; i < 256; i++ {
		if err := p.A.Send(payload); err != nil {
			return 0, err
		}
	}
	var sendErr error
	allocs := testing.AllocsPerRun(runs, func() {
		if err := p.A.Send(payload); err != nil {
			sendErr = err
		}
	})
	return allocs, sendErr
}

// TelemetryHist is one operation's histogram summary in the baseline
// (HistogramSnapshot minus the bucket array).
type TelemetryHist struct {
	Op     string  `json:"op"`
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// TelemetryResult is the machine-readable output of the telemetry
// experiment — the BENCH_5.json baseline future PRs gate against.
type TelemetryResult struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`

	// SampleEvery is the duration-sampling period of the "enabled" arm
	// (the engine default).
	SampleEvery int `json:"sample_every"`

	DisabledNsOp float64 `json:"disabled_ns_op"`
	EnabledNsOp  float64 `json:"enabled_ns_op"`
	// OverheadPct is the acceptance number: enabled vs disabled round
	// trip, default sampling. Negative means within noise.
	OverheadPct float64 `json:"overhead_pct"`

	// Unsampled arm: every duration span timed (TelemetrySampleEvery=1),
	// the worst case sampling exists to avoid.
	UnsampledNsOp        float64 `json:"unsampled_ns_op"`
	UnsampledOverheadPct float64 `json:"unsampled_overhead_pct"`

	// Send fast-path allocations, telemetry off and on (sampled every
	// op): both must stay 0.
	DisabledAllocsOp float64 `json:"disabled_allocs_op"`
	EnabledAllocsOp  float64 `json:"enabled_allocs_op"`

	// Hists summarizes what the enabled benchmark run recorded.
	Hists []TelemetryHist `json:"hists"`
	// EventsTotal counts events appended during the enabled run
	// (state transitions; a clean run has no faults).
	EventsTotal uint64 `json:"events_total"`
}

// Telemetry runs the observability-overhead experiment.
func Telemetry(quick bool) (*TelemetryResult, error) {
	reps := 3
	allocRuns := 2000
	if quick {
		reps = 2
		allocRuns = 200
	}
	res := &TelemetryResult{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		SampleEvery: 8,
	}

	var err error
	if res.DisabledNsOp, err = telemetryPingPong(PairOptions{}, reps); err != nil {
		return nil, err
	}

	rec := telemetry.New(telemetry.Options{})
	if res.EnabledNsOp, err = telemetryPingPong(PairOptions{
		Telemetry: rec, TelemetrySampleEvery: res.SampleEvery,
	}, reps); err != nil {
		return nil, err
	}
	snap := rec.Snapshot(false)
	for _, h := range snap.Ops {
		if h.Count == 0 {
			continue
		}
		res.Hists = append(res.Hists, TelemetryHist{
			Op: h.Op, Count: h.Count, MeanNs: h.MeanNs,
			P50Ns: h.P50Ns, P90Ns: h.P90Ns, P99Ns: h.P99Ns, MaxNs: h.MaxNs,
		})
	}
	res.EventsTotal = snap.EventsTotal

	if res.UnsampledNsOp, err = telemetryPingPong(PairOptions{
		Telemetry: telemetry.New(telemetry.Options{}), TelemetrySampleEvery: 1,
	}, reps); err != nil {
		return nil, err
	}

	if res.DisabledNsOp > 0 {
		res.OverheadPct = 100 * (res.EnabledNsOp - res.DisabledNsOp) / res.DisabledNsOp
		res.UnsampledOverheadPct = 100 * (res.UnsampledNsOp - res.DisabledNsOp) / res.DisabledNsOp
	}

	if res.DisabledAllocsOp, err = SendAllocsPerOp(allocRuns); err != nil {
		return nil, err
	}
	if res.EnabledAllocsOp, err = telemetrySendAllocs(allocRuns, telemetry.New(telemetry.Options{})); err != nil {
		return nil, err
	}
	return res, nil
}

// TelemetryReport formats the result for the pabench console output.
func TelemetryReport(r *TelemetryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Telemetry overhead (%s/%s, round trip over the instantaneous network)\n", r.GOOS, r.GOARCH)
	fmt.Fprintf(&b, "  disabled:              %8.0f ns/rt\n", r.DisabledNsOp)
	fmt.Fprintf(&b, "  enabled (1-in-%d):      %8.0f ns/rt  (%+.1f%%)\n", r.SampleEvery, r.EnabledNsOp, r.OverheadPct)
	fmt.Fprintf(&b, "  enabled (unsampled):   %8.0f ns/rt  (%+.1f%%)\n", r.UnsampledNsOp, r.UnsampledOverheadPct)
	fmt.Fprintf(&b, "  send fast path: %.3f allocs/op off, %.3f allocs/op on\n",
		r.DisabledAllocsOp, r.EnabledAllocsOp)
	if len(r.Hists) > 0 {
		fmt.Fprintf(&b, "  %-9s %10s %10s %10s %10s %10s\n", "op", "count", "mean-ns", "p50-ns", "p99-ns", "max-ns")
		for _, h := range r.Hists {
			fmt.Fprintf(&b, "  %-9s %10d %10.0f %10d %10d %10d\n",
				h.Op, h.Count, h.MeanNs, h.P50Ns, h.P99Ns, h.MaxNs)
		}
	}
	fmt.Fprintf(&b, "  events recorded: %d\n", r.EventsTotal)
	return b.String()
}

// TelemetryJSON renders the result as the BENCH_5.json baseline.
func TelemetryJSON(r *TelemetryResult) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

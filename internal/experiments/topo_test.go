package experiments

import (
	"bytes"
	"io"
	"os"
	"strconv"
	"testing"
	"time"

	"paccel/internal/core"
	"paccel/internal/netsim/topo"
)

func TestTopoDeterministicUnderSeed(t *testing.T) {
	run := func() (string, []byte) {
		var trace bytes.Buffer
		r, err := Topo(true, 7, func(sc string) io.Writer {
			if sc == "nat-rebind" {
				return &trace
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := TopoJSON(r)
		if err != nil {
			t.Fatal(err)
		}
		return out, trace.Bytes()
	}
	aJSON, aTrace := run()
	bJSON, bTrace := run()
	if aJSON != bJSON {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", aJSON, bJSON)
	}
	if !bytes.Equal(aTrace, bTrace) {
		t.Fatal("same seed produced different pcap traces")
	}
}

func TestTopoSchedule(t *testing.T) {
	var trace bytes.Buffer
	r, err := Topo(true, 0, func(sc string) io.Writer {
		if sc == "nat-rebind" {
			return &trace
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", TopoReport(r))
	if len(r.Points) != 3 {
		t.Fatalf("%d points", len(r.Points))
	}
	for _, p := range r.Points {
		if !p.ExactlyOnce || p.Delivered != p.Messages {
			t.Fatalf("%s: %d/%d exactlyOnce=%v", p.Scenario, p.Delivered, p.Messages, p.ExactlyOnce)
		}
		// Zero silent loss: the network's ledger balances — everything
		// sent was delivered or accounted to a named loss class.
		lost := p.QueueDrops + p.LossDrops + p.LinkDrops + p.NATDrops
		if p.NetSent < p.NetDelivered+lost {
			t.Fatalf("%s: ledger unbalanced: sent=%d delivered=%d lost=%d",
				p.Scenario, p.NetSent, p.NetDelivered, lost)
		}
		switch p.Scenario {
		case "nat-rebind":
			if p.NATRebinds == 0 || p.Migrations == 0 {
				t.Fatalf("nat-rebind: rebinds=%d migrations=%d", p.NATRebinds, p.Migrations)
			}
			if p.ExtBefore == "" || p.ExtBefore == p.ExtAfter {
				t.Fatalf("nat-rebind: ext %q -> %q", p.ExtBefore, p.ExtAfter)
			}
		case "partition-heal":
			if p.Recovered == 0 || p.LinkDrops == 0 {
				t.Fatalf("partition-heal: recovered=%d linkDrops=%d", p.Recovered, p.LinkDrops)
			}
		case "bufferbloat":
			if p.QueueDrops == 0 && p.MaxQueueDepth < 8 {
				t.Fatalf("bufferbloat: no queue pressure (depth %d, drops %d)",
					p.MaxQueueDepth, p.QueueDrops)
			}
			if p.Backpressured == 0 {
				t.Fatalf("bufferbloat: overload never surfaced as typed backpressure")
			}
		}
	}

	// The nat-rebind trace round-trips through the in-repo reader.
	tf, err := topo.ReadPCAP(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(tf.Frames)) != r.Points[0].PCAPFrames {
		t.Fatalf("trace has %d frames, point recorded %d", len(tf.Frames), r.Points[0].PCAPFrames)
	}
	prev := time.Time{}
	for i, f := range tf.Frames {
		if f.Time.Before(prev) {
			t.Fatalf("frame %d: timestamps not monotone", i)
		}
		prev = f.Time
	}
}

// TestTopoNATRebindChaos is the -race chaos entry for the topo layer:
// the full engine across a NAT'd lossy multi-hop path with a mid-stream
// rebind, on the wall clock's schedule for goroutine interleaving but
// the virtual clock for network time. The seed comes from
// PACCEL_CHAOS_SEED so CI runs are reproducible.
func TestTopoNATRebindChaos(t *testing.T) {
	seed := int64(1996)
	if s := os.Getenv("PACCEL_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PACCEL_CHAOS_SEED: %v", err)
		}
		seed = v
	}
	pt, err := runTopoScenario(topoScenario{name: "nat-rebind", run: natRebindSchedule}, 200, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.ExactlyOnce || pt.NATRebinds == 0 || pt.Migrations == 0 {
		t.Fatalf("chaos point: %+v", pt)
	}
}

// A topo.Host behind the harness must still satisfy the engine's
// transport contracts when driven through experiments code.
var _ core.BatchTransport = (*topo.Host)(nil)

package experiments

import "testing"

// TestChurnLoadSmall runs the load scenario at a size that still forces
// multiple incremental-GC sweeps, checking the in-harness assertions
// (budget bound, clean drain) hold under the race detector.
func TestChurnLoadSmall(t *testing.T) {
	pt, err := churnLoad(8000)
	if err != nil {
		t.Fatal(err)
	}
	if pt.BytesPerEntry <= 0 || pt.BytesPerEntry > 512 {
		t.Fatalf("implausible bytes/entry %.1f", pt.BytesPerEntry)
	}
	if !pt.DrainedClean {
		t.Fatal("GC did not drain the table")
	}
}

// TestChurnStormSmall runs a small seeded redial storm end-to-end: the
// harness itself fails the run on silent shed accounting, victim
// message loss, or a detector that never trips.
func TestChurnStormSmall(t *testing.T) {
	res, err := churnStorm(1200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AccountedLossless || !res.StormExited {
		t.Fatalf("storm result: %+v", res)
	}
	// (Shed allocs are asserted by TestAllocBudget and the perf gate;
	// under the race detector AllocsPerRun reports instrumentation.)
}

// TestChurnUDPSmall replays a small storm over real loopback sockets.
func TestChurnUDPSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	res, err := churnUDP(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accounted {
		t.Fatalf("udp storm result: %+v", res)
	}
}

// TestShedHarness pins the fixture the benchmarks stand on: Deliver
// routes to the admitted connection, Shed is refused every time.
func TestShedHarness(t *testing.T) {
	sh, err := NewShedHarness(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	before := sh.Server.Snapshot()
	for i := 0; i < 100; i++ {
		sh.Deliver()
		sh.Shed()
	}
	after := sh.Server.Snapshot()
	if after.Conns != 1 {
		t.Fatalf("Conns = %d, want 1", after.Conns)
	}
	if got := after.ShedTotal - before.ShedTotal; got != 100 {
		t.Fatalf("ShedTotal grew %d, want 100", got)
	}
	if after.StormsDetected != 0 {
		t.Fatalf("quiet harness tripped the storm detector")
	}
}

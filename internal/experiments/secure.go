// The secure experiment: the cost of an AES-GCM encryption layer riding
// the accelerator's fast path (DESIGN.md §17). The paper's claim is that
// layering overhead can be masked by prediction, filters and piggyback
// fields; the secure layer is the strongest test of that claim — a layer
// that must touch every payload byte. The experiment measures what the
// machinery leaves: one send+synchronous-deliver through the encrypted
// stack vs the same stack with a checksum in the AEAD's place, across
// payload sizes, plus the steady-state allocation count (acceptance: 0)
// and the cost of a rekey (one epoch bump + key derivation).
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/core"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

// SecurePayloads are the measured payload sizes: a tiny control-style
// message, the small-message steady state, a typical RPC body, and a
// page-sized payload still under the fragmentation threshold.
var SecurePayloads = []int{32, 256, 1024, 4096}

// secureExpKey is the experiment's pre-shared master key.
var secureExpKey = []byte("pabench secure experiment key")

// SecureLeanStack is LeanStack with the AEAD in the checksum's place: frag +
// secure + ident, windowless so the fast path has no timer machinery
// behind the measurement and the nonce prediction never sees a gap.
func SecureLeanStack(spec core.PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
	return []stack.Layer{
		layers.NewFrag(),
		layers.NewSecure(secureExpKey, spec.LocalID, spec.RemoteID, spec.LocalPort, spec.RemotePort),
		&layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		},
	}, nil
}

// securePair is one connected A→B pair over the instantaneous in-memory
// network; a Send on a delivers synchronously at b inside the same call.
type securePair struct {
	a, b    *core.Conn
	cleanup func()
}

func newSecurePair(build core.StackBuilder) (*securePair, error) {
	net := netsim.New(vclock.Real{}, netsim.Config{})
	epA, err := core.NewEndpoint(core.Config{Transport: net.Endpoint("A"), Build: build})
	if err != nil {
		return nil, err
	}
	epB, err := core.NewEndpoint(core.Config{Transport: net.Endpoint("B"), Build: build})
	if err != nil {
		epA.Close()
		return nil, err
	}
	p := &securePair{cleanup: func() { epA.Close(); epB.Close() }}
	if p.a, err = epA.Dial(core.PeerSpec{
		Addr: "B", LocalID: []byte("alice"), RemoteID: []byte("bob"),
		LocalPort: 1, RemotePort: 2, Epoch: 1,
	}); err != nil {
		p.cleanup()
		return nil, err
	}
	if p.b, err = epB.Dial(core.PeerSpec{
		Addr: "A", LocalID: []byte("bob"), RemoteID: []byte("alice"),
		LocalPort: 2, RemotePort: 1, Epoch: 1,
	}); err != nil {
		p.cleanup()
		return nil, err
	}
	p.b.OnDeliver(func([]byte) {})
	return p, nil
}

// secureMeasure times op with the benchmark harness, best of reps.
func secureMeasure(op func() error, reps int) (float64, error) {
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		var opErr error
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					opErr = err
					b.FailNow()
				}
			}
		})
		if opErr != nil {
			return 0, opErr
		}
		if v := float64(br.NsPerOp()); v < best {
			best = v
		}
	}
	return best, nil
}

// SecurePayloadResult is one payload size's measurements. One op is one
// send through the full engine plus the far side's synchronous
// authenticated decrypt and delivery.
type SecurePayloadResult struct {
	PayloadBytes int `json:"payload_bytes"`

	PlainNsOp  float64 `json:"plain_ns_op"`
	SecureNsOp float64 `json:"secure_ns_op"`
	// OverheadPct is the headline number: what AES-GCM costs on top of
	// the checksum stack, end to end, as a percentage.
	OverheadPct float64 `json:"overhead_pct"`

	SecureMsgsPerSec float64 `json:"secure_msgs_per_sec"`
	SecureMBPerSec   float64 `json:"secure_mb_per_sec"`

	// SecureAllocsOp is the steady state — the zero-allocation
	// acceptance number with encryption on.
	SecureAllocsOp float64 `json:"secure_allocs_op"`
}

// SecureResult is the machine-readable output of the secure experiment —
// the BENCH_10.json acceptance artifact.
type SecureResult struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`

	// RekeyNs is the cost of one Resume on the secure layer: epoch bump,
	// SHA-256 key derivation, AES-GCM instance construction.
	RekeyNs float64 `json:"rekey_ns"`

	Payloads []SecurePayloadResult `json:"payloads"`
}

// Secure runs the encryption-overhead experiment: the AEAD stack vs the
// checksum stack across payload sizes.
func Secure(quick bool) (*SecureResult, error) {
	reps := 3
	allocRuns := 2000
	sizes := SecurePayloads
	if quick {
		reps = 2
		allocRuns = 200
		sizes = sizes[:len(sizes)-1]
	}
	res := &SecureResult{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	for _, n := range sizes {
		r := SecurePayloadResult{PayloadBytes: n}
		payload := make([]byte, n)

		p, err := newSecurePair(LeanStack)
		if err != nil {
			return nil, err
		}
		if r.PlainNsOp, err = secureMeasure(func() error { return p.a.Send(payload) }, reps); err != nil {
			p.cleanup()
			return nil, err
		}
		p.cleanup()

		s, err := newSecurePair(SecureLeanStack)
		if err != nil {
			return nil, err
		}
		if r.SecureNsOp, err = secureMeasure(func() error { return s.a.Send(payload) }, reps); err != nil {
			s.cleanup()
			return nil, err
		}
		for i := 0; i < 64; i++ { // warm scratches and pools
			if err := s.a.Send(payload); err != nil {
				s.cleanup()
				return nil, err
			}
		}
		r.SecureAllocsOp = testing.AllocsPerRun(allocRuns, func() {
			if err := s.a.Send(payload); err != nil {
				panic(err)
			}
		})
		s.cleanup()

		if r.PlainNsOp > 0 {
			r.OverheadPct = (r.SecureNsOp - r.PlainNsOp) / r.PlainNsOp * 100
		}
		if r.SecureNsOp > 0 {
			r.SecureMsgsPerSec = 1e9 / r.SecureNsOp
			r.SecureMBPerSec = float64(n) / r.SecureNsOp * 1e9 / 1e6
		}
		res.Payloads = append(res.Payloads, r)
	}

	// Rekey cost: one epoch bump + key derivation on a bare layer. The
	// layer is primed through a throwaway stack so handles are live.
	sec := layers.NewSecure(secureExpKey, []byte("alice"), []byte("bob"), 1, 2)
	if err := primeSecureLayer(sec); err != nil {
		return nil, err
	}
	start := time.Now()
	const rekeys = 4096
	for i := 0; i < rekeys; i++ {
		sec.Resume()
	}
	res.RekeyNs = float64(time.Since(start).Nanoseconds()) / rekeys
	return res, nil
}

// primeSecureLayer runs a bare secure layer through Init/Prime the way
// the engine would, so Resume has live handles and predictions.
func primeSecureLayer(sec *layers.Secure) error {
	st, err := stack.NewStack(sec)
	if err != nil {
		return err
	}
	schema := header.New()
	ic := &stack.InitContext{
		Schema:     schema,
		SendFilter: filter.NewBuilder(),
		RecvFilter: filter.NewBuilder(),
	}
	if err := st.Init(ic); err != nil {
		return err
	}
	if err := schema.Compile(); err != nil {
		return err
	}
	ctx := &stack.Context{Order: bits.BigEndian}
	for c := header.Class(0); c < header.NumClasses; c++ {
		ctx.PredictSend[c] = make([]byte, schema.Size(c))
		ctx.PredictRecv[c] = make([]byte, schema.Size(c))
	}
	st.Prime(ctx)
	return nil
}

// SecureReport formats the result for the pabench console output.
func SecureReport(r *SecureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Secure channel: AES-GCM on the fast path vs checksum stack (%s/%s)\n", r.GOOS, r.GOARCH)
	fmt.Fprintf(&b, "  one op = one send + synchronous authenticated deliver; rekey = %.0f ns\n", r.RekeyNs)
	fmt.Fprintf(&b, "  %7s  %20s  %9s  %10s  %9s  %9s\n",
		"payload", "plain/secure ns", "overhead", "msgs/s", "MB/s", "allocs/op")
	for _, row := range r.Payloads {
		fmt.Fprintf(&b, "  %6dB  %8.0f / %9.0f  %8.1f%%  %10.0f  %9.1f  %9.3f\n",
			row.PayloadBytes, row.PlainNsOp, row.SecureNsOp, row.OverheadPct,
			row.SecureMsgsPerSec, row.SecureMBPerSec, row.SecureAllocsOp)
	}
	return b.String()
}

// SecureJSON renders the result as the BENCH_10.json artifact.
func SecureJSON(r *SecureResult) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// The gso experiment: kernel-offload transport I/O (DESIGN.md §13). It
// measures what UDP_SEGMENT send coalescing and UDP_GRO receive
// coalescing buy on top of the PR 4 sendmmsg tier — the same engine, the
// same burst-generating stack, with the offloads enabled (default
// Listen) versus explicitly disabled (the plain sendmmsg control arm).
//
// The headline metric is **syscalls/datagram**: every send and receive
// system call the two transports actually issue, divided by the
// datagrams delivered. sendmmsg already amortizes syscall entry over 64
// datagrams; composing UDP_SEGMENT into it makes each sendmmsg header a
// super-datagram of up to 64 segments, so a 256-datagram burst drops
// from 4 sendmmsg calls to 1 call carrying 4 super-datagrams — and on
// the receive side UDP_GRO hands the loop coalesced payloads that split
// in userspace without extra syscalls.
package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"paccel/internal/udp"
)

// GSOBursts are the measured burst sizes. 64 fills one sendmmsg chunk
// (the PR 4 regime: both arms pay one syscall, the offload pays it with
// one header); 256 is where composition shows — 4 sendmmsg calls plain
// versus 1 call of 4 super-datagrams.
var GSOBursts = []int{4, 16, 64, 256}

// gsoSyscallOps is how many bursts the syscall-accounting pass sends per
// configuration.
const gsoSyscallOps = 200

// newGSOFixture is newUDPBurstFixture with explicit offload control,
// returning the raw transports so the caller can read their syscall and
// offload counters.
func newGSOFixture(burst int, offload bool) (*burstFixture, *udp.Transport, *udp.Transport, error) {
	opts := udp.Options{DisableGSO: !offload, DisableGRO: !offload}
	server, err := udp.ListenWithOptions("127.0.0.1:0", opts)
	if err != nil {
		return nil, nil, nil, err
	}
	client, err := udp.ListenWithOptions("127.0.0.1:0", opts)
	if err != nil {
		server.Close()
		return nil, nil, nil, err
	}
	f, err := newBurstFixture(burst, client, server, server.LocalAddr(), client.LocalAddr())
	if err != nil {
		return nil, nil, nil, err
	}
	return f, client, server, nil
}

// drainDatagrams waits until the receiving transport's datagram counter
// stops moving (everything in flight on loopback has been delivered).
func drainDatagrams(tr *udp.Transport) uint64 {
	prev := tr.Stats().RecvDatagrams
	for i := 0; i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
		cur := tr.Stats().RecvDatagrams
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// gsoSyscallPass sends gsoSyscallOps bursts through one fixture and
// returns per-datagram syscall rates plus the client's offload counters.
func gsoSyscallPass(burst int, offload bool) (tx, rx, total float64, st udp.Stats, err error) {
	f, client, server, err := newGSOFixture(burst, offload)
	if err != nil {
		return 0, 0, 0, st, err
	}
	defer f.cleanup()
	// Warm: prime prediction, pools, and the peer-address cache.
	for i := 0; i < 16; i++ {
		if err := f.send(); err != nil {
			return 0, 0, 0, st, err
		}
	}
	drainDatagrams(server)
	c0, s0, d0 := client.Stats(), server.Stats(), server.Stats().RecvDatagrams
	for i := 0; i < gsoSyscallOps; i++ {
		if err := f.send(); err != nil {
			return 0, 0, 0, st, err
		}
	}
	delivered := drainDatagrams(server) - d0
	c1, s1 := client.Stats(), server.Stats()
	st = c1
	if delivered == 0 {
		return 0, 0, 0, st, fmt.Errorf("gso: no datagrams delivered (burst %d)", burst)
	}
	tx = float64(c1.TxSyscalls-c0.TxSyscalls) / float64(delivered)
	rx = float64(s1.RxSyscalls-s0.RxSyscalls) / float64(delivered)
	return tx, rx, tx + rx, st, nil
}

// GSOBurstResult is one burst size's measurements. NsOp values are per
// burst operation (one engine Send fragmenting into ~Burst datagrams);
// the syscall rates are per delivered datagram, both transport
// directions included.
type GSOBurstResult struct {
	Burst int `json:"burst"`

	OffloadNsOp    float64 `json:"offload_ns_op"`
	MmsgNsOp       float64 `json:"mmsg_ns_op"`
	ImprovementPct float64 `json:"improvement_pct"`

	OffloadTxSyscallsPerDatagram float64 `json:"offload_tx_syscalls_per_datagram"`
	MmsgTxSyscallsPerDatagram    float64 `json:"mmsg_tx_syscalls_per_datagram"`
	OffloadRxSyscallsPerDatagram float64 `json:"offload_rx_syscalls_per_datagram"`
	MmsgRxSyscallsPerDatagram    float64 `json:"mmsg_rx_syscalls_per_datagram"`
	OffloadSyscallsPerDatagram   float64 `json:"offload_syscalls_per_datagram"`
	MmsgSyscallsPerDatagram      float64 `json:"mmsg_syscalls_per_datagram"`

	// TxReductionFactor is the headline acceptance number: plain-sendmmsg
	// tx syscalls per datagram over offload tx syscalls per datagram.
	TxReductionFactor    float64 `json:"tx_reduction_factor"`
	TotalReductionFactor float64 `json:"total_reduction_factor"`

	// Offload-arm engagement counters (client transport).
	GsoSends    uint64 `json:"gso_sends"`
	GsoSegments uint64 `json:"gso_segments"`
}

// GSOResult is the machine-readable output of the gso experiment — the
// BENCH_6.json acceptance artifact.
type GSOResult struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Vectorized bool   `json:"vectorized"`

	// Listen-time probe verdicts on this kernel. When GSOSupported is
	// false the offload arm degrades to plain sendmmsg and the reduction
	// factors hover around 1 — expected, not a failure.
	GSOSupported bool `json:"gso_supported"`
	GROSupported bool `json:"gro_supported"`

	Bursts []GSOBurstResult `json:"bursts"`

	// SendBatchAllocsOp is the transport-level steady state: one
	// SendBatch of a 64×512B equal-size burst with the offload engaged
	// must not allocate (pooled headers, lazily-built coalesce scratch).
	SendBatchAllocsOp float64 `json:"send_batch_allocs_op"`
}

// GSO runs the kernel-offload experiment: offload-enabled vs
// offload-disabled bursts over real UDP loopback.
func GSO(quick bool) (*GSOResult, error) {
	reps := 3
	allocRuns := 2000
	if quick {
		reps = 2
		allocRuns = 200
	}
	res := &GSOResult{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Vectorized: runtime.GOOS == "linux" &&
			(runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64"),
	}
	probe, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	res.GSOSupported, res.GROSupported = probe.Offload()
	probe.Close()

	for _, burst := range GSOBursts {
		burst := burst
		r := GSOBurstResult{Burst: burst}
		var err error
		if r.OffloadNsOp, _, err = measureBurst(func() (*burstFixture, error) {
			f, _, _, err := newGSOFixture(burst, true)
			return f, err
		}, reps); err != nil {
			return nil, err
		}
		if r.MmsgNsOp, _, err = measureBurst(func() (*burstFixture, error) {
			f, _, _, err := newGSOFixture(burst, false)
			return f, err
		}, reps); err != nil {
			return nil, err
		}
		if r.MmsgNsOp > 0 {
			r.ImprovementPct = 100 * (r.MmsgNsOp - r.OffloadNsOp) / r.MmsgNsOp
		}

		var st udp.Stats
		if r.OffloadTxSyscallsPerDatagram, r.OffloadRxSyscallsPerDatagram,
			r.OffloadSyscallsPerDatagram, st, err = gsoSyscallPass(burst, true); err != nil {
			return nil, err
		}
		r.GsoSends, r.GsoSegments = st.GsoSends, st.GsoSegments
		if r.MmsgTxSyscallsPerDatagram, r.MmsgRxSyscallsPerDatagram,
			r.MmsgSyscallsPerDatagram, _, err = gsoSyscallPass(burst, false); err != nil {
			return nil, err
		}
		if r.OffloadTxSyscallsPerDatagram > 0 {
			r.TxReductionFactor = r.MmsgTxSyscallsPerDatagram / r.OffloadTxSyscallsPerDatagram
		}
		if r.OffloadSyscallsPerDatagram > 0 {
			r.TotalReductionFactor = r.MmsgSyscallsPerDatagram / r.OffloadSyscallsPerDatagram
		}
		res.Bursts = append(res.Bursts, r)
	}

	if res.SendBatchAllocsOp, err = gsoSendBatchAllocs(allocRuns); err != nil {
		return nil, err
	}
	return res, nil
}

// gsoSendBatchAllocs measures the transport-level steady state of one
// offloaded SendBatch: a 64×512B equal-size burst (one super-datagram's
// worth) after the pools and coalesce scratch are warm.
func gsoSendBatchAllocs(runs int) (float64, error) {
	a, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer a.Close()
	b, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer b.Close()
	ds := make([][]byte, 64)
	for i := range ds {
		ds[i] = make([]byte, 512)
	}
	dst := b.LocalAddr()
	for i := 0; i < 32; i++ {
		if _, err := a.SendBatch(dst, ds); err != nil {
			return 0, err
		}
	}
	var sendErr error
	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := a.SendBatch(dst, ds); err != nil {
			sendErr = err
		}
	})
	return allocs, sendErr
}

// GSOReport formats the result for the pabench console output.
func GSOReport(r *GSOResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel-offload transport I/O (%s/%s, UDP_SEGMENT: %v, UDP_GRO: %v)\n",
		r.GOOS, r.GOARCH, r.GSOSupported, r.GROSupported)
	fmt.Fprintf(&b, "  one op = one engine Send fragmenting into <burst> datagrams of ~%d B\n", batchFragSize)
	fmt.Fprintf(&b, "  syscalls/datagram counts both transports' send+receive system calls\n")
	fmt.Fprintf(&b, "  %5s  %22s  %26s  %26s  %8s\n",
		"burst", "offload/mmsg ns", "tx sc/dgram (off/mmsg)", "total sc/dgram (off/mmsg)", "tx gain")
	for _, row := range r.Bursts {
		fmt.Fprintf(&b, "  %5d  %9.0f / %8.0f  %11.4f / %12.4f  %11.4f / %12.4f  %7.1fx\n",
			row.Burst, row.OffloadNsOp, row.MmsgNsOp,
			row.OffloadTxSyscallsPerDatagram, row.MmsgTxSyscallsPerDatagram,
			row.OffloadSyscallsPerDatagram, row.MmsgSyscallsPerDatagram,
			row.TxReductionFactor)
	}
	fmt.Fprintf(&b, "  steady-state offloaded SendBatch: %.3f allocs/op\n", r.SendBatchAllocsOp)
	return b.String()
}

// GSOJSON renders the result as the BENCH_6.json artifact.
func GSOJSON(r *GSOResult) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

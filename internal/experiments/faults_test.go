package experiments

import (
	"encoding/binary"
	"errors"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"paccel/internal/core"
	"paccel/internal/faultinject"
	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

func TestFaultsDeterministicUnderSeed(t *testing.T) {
	run := func() string {
		r, err := Faults(true, 7)
		if err != nil {
			t.Fatal(err)
		}
		out, err := FaultsJSON(r)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestFaultsSchedule(t *testing.T) {
	r, err := Faults(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FaultsReport(r))
	for _, p := range r.Points {
		switch p.Scenario {
		case "dead-peer":
			if !p.FailedCleanly {
				t.Fatalf("%s: expected a clean typed failure, got %+v", p.Scenario, p)
			}
		default:
			if p.Delivered != p.Messages || !p.Ordered {
				t.Fatalf("%s: %d/%d delivered, ordered=%v",
					p.Scenario, p.Delivered, p.Messages, p.Ordered)
			}
		}
		switch p.Scenario {
		case "clean":
			if p.Retransmits != 0 {
				t.Fatalf("clean schedule retransmitted %d times", p.Retransmits)
			}
		case "loss-30":
			if p.Retransmits == 0 {
				t.Fatal("lossy schedule never retransmitted")
			}
		case "corrupt-10":
			if p.NetCorrupted == 0 || p.RecvDrops == 0 {
				t.Fatalf("corruption schedule: corrupted=%d drops=%d",
					p.NetCorrupted, p.RecvDrops)
			}
		case "partition-heal":
			if p.RecoveryMillis <= 0 {
				t.Fatal("partition schedule recorded no recovery latency")
			}
		}
	}
}

// TestChaosStress is the -race chaos harness: concurrent bidirectional
// senders over a real-clock lossy/corrupting network, plus a stalled-burst
// replay from the fault injector. It must end with exactly-once in-order
// delivery in both directions — never a deadlock, a leak, or silent
// corruption. The seed comes from PACCEL_CHAOS_SEED so CI runs are
// reproducible.
func TestChaosStress(t *testing.T) {
	seed := int64(1996)
	if s := os.Getenv("PACCEL_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PACCEL_CHAOS_SEED: %v", err)
		}
		seed = v
	}
	const n = 250
	net := netsim.New(vclock.Real{}, netsim.Config{
		Latency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond,
		LossRate: 0.05, DupRate: 0.05, ReorderRate: 0.10, CorruptRate: 0.02,
		Seed: seed,
	})
	fiA := faultinject.New(net.Endpoint("A"), nil, seed,
		faultinject.Rule{Kind: faultinject.Stall, Direction: faultinject.Send, Every: 50, Count: 4})
	mkCfg := func(tr core.Transport) core.Config {
		return core.Config{
			Transport:           tr,
			Build:               FaultStack(5 * time.Millisecond),
			MaxBacklog:          32,
			BlockOnBackpressure: true, // exercises the cond path under -race
		}
	}
	epA, err := core.NewEndpoint(mkCfg(fiA))
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := core.NewEndpoint(mkCfg(net.Endpoint("B")))
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	a, err := epA.Dial(core.PeerSpec{
		Addr: "B", LocalID: []byte("stress-a"), RemoteID: []byte("stress-b"),
		LocalPort: 1, RemotePort: 2, Epoch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(core.PeerSpec{
		Addr: "A", LocalID: []byte("stress-b"), RemoteID: []byte("stress-a"),
		LocalPort: 2, RemotePort: 1, Epoch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	type inbox struct {
		mu   sync.Mutex
		seqs []uint32
		done chan struct{}
	}
	watch := func(c *core.Conn) *inbox {
		in := &inbox{done: make(chan struct{})}
		c.OnDeliver(func(p []byte) {
			in.mu.Lock()
			in.seqs = append(in.seqs, binary.BigEndian.Uint32(p))
			if len(in.seqs) == n {
				close(in.done)
			}
			in.mu.Unlock()
		})
		return in
	}
	fromA, fromB := watch(b), watch(a)

	sender := func(c *core.Conn, errCh chan<- error) {
		payload := make([]byte, 48)
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint32(payload, uint32(i))
			if err := c.Send(payload); err != nil &&
				!errors.Is(err, core.ErrBackpressure) {
				errCh <- err
				return
			} else if errors.Is(err, core.ErrBackpressure) {
				i-- // blocking mode shouldn't surface this, but be safe
				time.Sleep(time.Millisecond)
			}
		}
		errCh <- nil
	}
	errCh := make(chan error, 2)
	go sender(a, errCh)
	go sender(b, errCh)

	// Mid-run, release the stalled burst: stale datagrams the window has
	// since retransmitted replay into the live stream.
	time.Sleep(50 * time.Millisecond)
	fiA.ReleaseStalled()

	deadline := time.After(60 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("sender failed: %v", err)
			}
		case <-deadline:
			t.Fatal("chaos run deadlocked: senders never finished")
		}
	}
	fiA.ReleaseStalled() // anything stalled after the senders finished
	for name, in := range map[string]*inbox{"A->B": fromA, "B->A": fromB} {
		select {
		case <-in.done:
		case <-deadline:
			t.Fatalf("chaos run stalled: %s incomplete", name)
		}
		in.mu.Lock()
		seqs := in.seqs
		in.mu.Unlock()
		if len(seqs) != n {
			t.Fatalf("%s delivered %d/%d", name, len(seqs), n)
		}
		for i, s := range seqs {
			if s != uint32(i) {
				t.Fatalf("%s: position %d got seq %d (exactly-once in-order violated)", name, i, s)
			}
		}
	}
}

// Topo experiment: the full engine driven across the virtual internet
// (internal/netsim/topo) — routed multi-hop paths, finite router
// queues, and NAT middleboxes — under three seeded schedules. Each
// schedule attacks the stack with an emergent network behavior rather
// than an injected fault: a NAT mapping that expires and rebinds
// mid-session, a partition-and-heal along an interior edge the
// endpoints cannot see, and a bufferbloat ramp that overflows a
// slow link's queue. The contract checked is the same everywhere:
// exactly-once in-order delivery once the network allows it, typed
// ErrBackpressure (never silent loss) when the sender outruns it, and
// a pcap trace of the interior edge for every run.
package experiments

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"paccel/internal/core"
	"paccel/internal/netsim/topo"
	"paccel/internal/vclock"
)

// TopoPoint is one scenario's outcome, one JSON row of the BENCH_8
// baseline.
type TopoPoint struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	Messages    int  `json:"messages"`
	Delivered   int  `json:"delivered"`
	ExactlyOnce bool `json:"exactly_once_in_order"`

	// The network's own ledger: every datagram either delivered or
	// accounted to a loss class.
	NetSent       uint64 `json:"net_sent"`
	NetDelivered  uint64 `json:"net_delivered"`
	QueueDrops    uint64 `json:"queue_drops"`
	LossDrops     uint64 `json:"loss_drops"`
	LinkDrops     uint64 `json:"link_drops"`
	NATDrops      uint64 `json:"nat_drops"`
	NATRebinds    uint64 `json:"nat_rebinds"`
	MaxQueueDepth int    `json:"max_queue_depth"`

	// The engine's response.
	Recoveries    uint64 `json:"recoveries"`
	Recovered     uint64 `json:"recovered"`
	Probes        uint64 `json:"recovery_probes"`
	Migrations    uint64 `json:"peer_migrations"`
	Retransmits   uint64 `json:"retransmits"`
	Backpressured uint64 `json:"backpressured_sends"`

	// NAT-rebind schedule: what the world called the client before and
	// after.
	ExtBefore string `json:"ext_before,omitempty"`
	ExtAfter  string `json:"ext_after,omitempty"`

	VirtualMillis float64 `json:"virtual_ms"`
	PCAPFrames    uint64  `json:"pcap_frames"`
}

// TopoResult is the topo experiment's machine-readable output.
type TopoResult struct {
	Seed   int64       `json:"seed"`
	Quick  bool        `json:"quick"`
	Points []TopoPoint `json:"points"`
}

// topoScenario describes one seeded schedule over the virtual internet.
type topoScenario struct {
	name string
	run  func(sc *topoRun) error
}

// topoRun is the per-scenario rig: a client and server endpoint joined
// across 10.0.0.2 — [n1] — r1 — r2 — 10.0.1.2, with the interior edge
// tapped.
type topoRun struct {
	clk    *vclock.Manual
	inet   *topo.Internet
	client *topo.Host
	server *topo.Host
	c, s   *core.Conn
	tap    *topo.Tap
	pt     *TopoPoint

	msgs    int
	sent    int
	next    uint32
	ordered bool
	payload []byte
}

const (
	topoRTO         = 20 * time.Millisecond
	topoPeerTimeout = 500 * time.Millisecond
	topoNATIdle     = 5 * time.Second
	topoBudget      = 4 * time.Minute
)

// send offers messages up to limit, counting typed backpressure
// refusals instead of treating them as failures — the caller retries on
// the next drive tick, which is the whole point of the typed error.
func (r *topoRun) send(limit int) error {
	for r.sent < limit {
		binary.BigEndian.PutUint32(r.payload, uint32(r.sent))
		err := r.c.Send(r.payload)
		if errors.Is(err, core.ErrBackpressure) {
			r.pt.Backpressured++
			return nil
		}
		if err != nil {
			return err
		}
		r.sent++
	}
	return nil
}

// drive advances the virtual clock in 5ms ticks for d, sampling the
// routers' queue depth and failing fast if either endpoint dies.
func (r *topoRun) drive(d time.Duration) error {
	deadline := r.clk.Now().Add(d)
	for r.clk.Now().Before(deadline) {
		if r.c.State() == core.StateFailed {
			return fmt.Errorf("client failed: %w", r.c.Err())
		}
		if r.s.State() == core.StateFailed {
			return fmt.Errorf("server failed: %w", r.s.Err())
		}
		for _, router := range []string{"r1", "r2"} {
			if depth, _ := r.inet.QueueStats(router); depth > r.pt.MaxQueueDepth {
				r.pt.MaxQueueDepth = depth
			}
		}
		r.clk.Advance(5 * time.Millisecond)
	}
	return nil
}

// finish keeps offering and driving until every message is delivered or
// the budget runs out.
func (r *topoRun) finish() error {
	deadline := r.clk.Now().Add(topoBudget)
	for int(r.next) < r.msgs && r.clk.Now().Before(deadline) {
		if err := r.send(r.msgs); err != nil {
			return err
		}
		if err := r.drive(5 * time.Millisecond); err != nil {
			return err
		}
	}
	if int(r.next) != r.msgs {
		return fmt.Errorf("delivered %d of %d within the budget", r.next, r.msgs)
	}
	return nil
}

// natRebindSchedule streams half the messages, forces the NAT mapping
// to idle out by cutting the access edge longer than the idle timeout,
// then streams the rest. The heal is emergent: the rebound mapping
// blackholes the server's traffic until dead-peer detection and an
// identified probe teach it the new address.
func natRebindSchedule(r *topoRun) error {
	if err := r.send(r.msgs / 2); err != nil {
		return err
	}
	if err := r.drive(3 * time.Second); err != nil {
		return err
	}
	if int(r.next) != r.msgs/2 {
		return fmt.Errorf("pre-rebind: delivered %d of %d", r.next, r.msgs/2)
	}
	ext, ok := r.inet.ExternalAddr("n1", r.client.LocalAddr())
	if !ok {
		return errors.New("no NAT mapping after traffic")
	}
	r.pt.ExtBefore = ext

	// Silence past the NAT idle: the access edge goes dark, outbound
	// refreshes stop, the mapping expires behind everyone's back.
	r.inet.SetLinkDown("10.0.0.2", "n1", true)
	r.inet.SetLinkDown("n1", "10.0.0.2", true)
	if err := r.drive(topoNATIdle + time.Second); err != nil {
		return err
	}
	r.inet.SetLinkDown("10.0.0.2", "n1", false)
	r.inet.SetLinkDown("n1", "10.0.0.2", false)

	if err := r.finish(); err != nil {
		return err
	}
	r.pt.ExtAfter, _ = r.inet.ExternalAddr("n1", r.client.LocalAddr())
	if r.pt.ExtAfter == r.pt.ExtBefore {
		return fmt.Errorf("NAT never rebound (still %s)", r.pt.ExtBefore)
	}
	return nil
}

// partitionHealSchedule cuts the interior r1-r2 edge — an outage no
// endpoint is adjacent to — for long enough that both sides enter
// recovery, then heals it and requires bounded convergence.
func partitionHealSchedule(r *topoRun) error {
	if err := r.send(r.msgs / 2); err != nil {
		return err
	}
	if err := r.drive(3 * time.Second); err != nil {
		return err
	}
	r.inet.Partition("r1", "r2")
	if err := r.drive(8 * time.Second); err != nil {
		return err
	}
	r.inet.Heal("r1", "r2")
	return r.finish()
}

// bufferbloatSchedule rams the full stream into a 1.5Mbit/s interior
// link with an 8-packet queue: the queue fills, serialization delay
// mounts, overflow drops arrive, and the sender sees typed
// backpressure. The contract is graceful degradation — every refusal
// typed, every congestive loss retransmitted, the stream still
// exactly-once.
func bufferbloatSchedule(r *topoRun) error {
	if err := r.finish(); err != nil {
		return err
	}
	if r.pt.QueueDrops == 0 && r.pt.MaxQueueDepth < 8 {
		return fmt.Errorf("queue never under pressure (max depth %d, %d drops) — the ramp tested nothing",
			r.pt.MaxQueueDepth, r.pt.QueueDrops)
	}
	return nil
}

// topoScenarios is the fixed schedule, in run order.
func topoScenarios() []topoScenario {
	return []topoScenario{
		{name: "nat-rebind", run: natRebindSchedule},
		{name: "partition-heal", run: partitionHealSchedule},
		{name: "bufferbloat", run: bufferbloatSchedule},
	}
}

// runTopoScenario builds the topology for one schedule, runs it, and
// collects both ledgers.
func runTopoScenario(sc topoScenario, n int, seed int64, pcap io.Writer) (TopoPoint, error) {
	if pcap == nil {
		pcap = io.Discard
	}
	pt := TopoPoint{Scenario: sc.name, Seed: seed, Messages: n, ExactlyOnce: true}
	clk := vclock.NewManual(time.Date(1996, 8, 28, 0, 0, 0, 0, time.UTC))
	inet := topo.New(clk, topo.Config{Seed: seed})
	inet.AddRouter("r1")
	inet.AddRouter("r2")

	interior := topo.LinkConfig{
		Latency:  2 * time.Millisecond,
		Jitter:   250 * time.Microsecond,
		LossRate: 0.02,
	}
	serverAccess := topo.LinkConfig{Latency: time.Millisecond}
	clientVia := "r1"
	backlog := 0 // engine default
	switch sc.name {
	case "nat-rebind":
		inet.AddNAT("n1", "198.51.100.1", topoNATIdle, "10.0.0.2")
		inet.Link("n1", "r1", topo.LinkConfig{Latency: time.Millisecond})
		clientVia = "n1"
	case "bufferbloat":
		// The slow edge: ~1.6ms serialization per 300-byte frame, an
		// 8-packet queue, no random loss — every drop is congestive.
		interior = topo.LinkConfig{
			Latency:  time.Millisecond,
			BitRate:  1_500_000,
			QueueLen: 8,
		}
		backlog = 64 // small backlog so overload surfaces as typed refusals
	}
	inet.Link("r1", "r2", interior)
	client := inet.Host("10.0.0.2:1", clientVia, topo.LinkConfig{})
	server := inet.Host("10.0.1.2:1", "r2", serverAccess)

	tap, err := inet.Tap("r1", "r2", pcap, 0)
	if err != nil {
		return pt, err
	}

	mk := func(tr core.Transport) core.Config {
		return core.Config{
			Transport: tr, Clock: clk, Build: RecoveryStack(topoRTO),
			PeerTimeout: topoPeerTimeout,
			Recovery: core.RecoveryConfig{
				MaxAttempts: 60,
				BaseDelay:   100 * time.Millisecond,
				MaxDelay:    time.Second,
				Seed:        seed,
			},
			// The topology enforces a real MTU; cap packed datagrams
			// under it the way a path-MTU-aware deployment does.
			MaxPackBytes: 1200,
			MaxBacklog:   backlog,
		}
	}
	epC, err := core.NewEndpoint(mk(client))
	if err != nil {
		return pt, err
	}
	defer epC.Close()
	epS, err := core.NewEndpoint(mk(server))
	if err != nil {
		return pt, err
	}
	defer epS.Close()

	// Cookies are pinned (not drawn): the trace must be byte-identical
	// across runs of the same seed for the determinism contract — and
	// the committed pcap artifact — to hold.
	c, err := epC.Dial(core.PeerSpec{
		Addr: server.LocalAddr(), LocalID: []byte("topo-c"), RemoteID: []byte("topo-s"),
		LocalPort: 1, RemotePort: 2, Epoch: 1,
		OutCookie: uint64(seed)<<1 | 1,
	})
	if err != nil {
		return pt, err
	}
	// The server's first route: through a NAT it can only aim at where
	// the mapping will appear; elsewhere, at the client directly.
	serverView := client.LocalAddr()
	if sc.name == "nat-rebind" {
		serverView = "198.51.100.1:60000"
	}
	s, err := epS.Dial(core.PeerSpec{
		Addr: serverView, LocalID: []byte("topo-s"), RemoteID: []byte("topo-c"),
		LocalPort: 2, RemotePort: 1, Epoch: 1,
		OutCookie: uint64(seed)<<1 | 2,
	})
	if err != nil {
		return pt, err
	}

	r := &topoRun{
		clk: clk, inet: inet, client: client, server: server,
		c: c, s: s, tap: tap, pt: &pt,
		msgs: n, ordered: true, payload: make([]byte, 32),
	}
	s.OnDeliver(func(p []byte) {
		if len(p) < 4 || binary.BigEndian.Uint32(p) != r.next {
			r.ordered = false
			return
		}
		r.next++
	})

	start := clk.Now()
	if err := sc.run(r); err != nil {
		return pt, fmt.Errorf("topo %s: %w", sc.name, err)
	}

	pt.Delivered = int(r.next)
	pt.ExactlyOnce = r.ordered && pt.Delivered == n
	pt.VirtualMillis = float64(clk.Now().Sub(start)) / float64(time.Millisecond)

	st := inet.Stats()
	pt.NetSent, pt.NetDelivered = st.Sent, st.Delivered
	pt.QueueDrops, pt.LossDrops, pt.LinkDrops = st.QueueDrops, st.LossDrops, st.LinkDrops
	pt.NATDrops, pt.NATRebinds = st.NATDrops, st.NATRebinds
	stC, stS := c.Stats(), s.Stats()
	pt.Recoveries = stC.Recoveries + stS.Recoveries
	pt.Recovered = stC.Recovered + stS.Recovered
	pt.Probes = stC.RecoveryProbes + stS.RecoveryProbes
	pt.Migrations = stC.PeerMigrations + stS.PeerMigrations
	pt.Retransmits = stC.Retransmits + stS.Retransmits
	if err := tap.Close(); err != nil {
		return pt, fmt.Errorf("topo %s: pcap: %w", sc.name, err)
	}
	pt.PCAPFrames = tap.Frames()

	if !pt.ExactlyOnce {
		return pt, fmt.Errorf("topo %s: delivery violated exactly-once in-order (%d/%d)",
			sc.name, pt.Delivered, n)
	}
	if pt.PCAPFrames == 0 {
		return pt, fmt.Errorf("topo %s: the tap captured nothing", sc.name)
	}
	switch sc.name {
	case "nat-rebind":
		if pt.NATRebinds == 0 || pt.Migrations == 0 {
			return pt, fmt.Errorf("topo %s: rebinds=%d migrations=%d — the heal path never ran",
				sc.name, pt.NATRebinds, pt.Migrations)
		}
	case "partition-heal":
		if pt.Recovered == 0 {
			return pt, fmt.Errorf("topo %s: no recovery completed across the partition", sc.name)
		}
	case "bufferbloat":
		if pt.QueueDrops > 0 && pt.Retransmits == 0 {
			return pt, fmt.Errorf("topo %s: %d congestive drops but no retransmissions",
				sc.name, pt.QueueDrops)
		}
	}
	return pt, nil
}

// Topo runs the virtual-internet schedule with the given seed (0 means
// 1996). pcapFor, when non-nil, supplies a writer for each scenario's
// interior-edge trace; a nil writer (or nil pcapFor) discards it.
func Topo(quick bool, seed int64, pcapFor func(scenario string) io.Writer) (*TopoResult, error) {
	if seed == 0 {
		seed = 1996
	}
	n := 400
	if quick {
		n = 120
	}
	res := &TopoResult{Seed: seed, Quick: quick}
	for _, sc := range topoScenarios() {
		var w io.Writer
		if pcapFor != nil {
			w = pcapFor(sc.name)
		}
		if w == nil {
			w = io.Discard
		}
		pt, err := runTopoScenario(sc, n, seed, w)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// TopoReport formats the result for the pabench console output.
func TopoReport(r *TopoResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Virtual internet (seed %d): %d schedules, routed multi-hop topology, virtual clock\n",
		r.Seed, len(r.Points))
	fmt.Fprintf(&sb, "  %-15s %7s %7s %6s %7s %8s %7s %6s %7s %7s\n",
		"schedule", "msgs", "qdrop", "loss", "rebind", "migrate", "retx", "bkpr", "recov", "frames")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %-15s %3d/%-3d %7d %6d %7d %8d %7d %6d %3d/%-3d %7d\n",
			p.Scenario, p.Delivered, p.Messages, p.QueueDrops, p.LossDrops,
			p.NATRebinds, p.Migrations, p.Retransmits, p.Backpressured,
			p.Recovered, p.Recoveries, p.PCAPFrames)
		if p.ExtBefore != "" {
			fmt.Fprintf(&sb, "  %-15s   the world saw the client at %s, then %s\n",
				"", p.ExtBefore, p.ExtAfter)
		}
	}
	return sb.String()
}

// TopoJSON renders the result as the BENCH_8.json baseline.
func TopoJSON(r *TopoResult) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

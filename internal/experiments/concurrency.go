// Concurrency experiments: the multi-core scaling companions to the
// paper's single-connection numbers. The paper's PA ran one connection
// per (single-CPU) endpoint; this file measures what the reproduction
// adds for production scale — a sharded cookie router whose receive path
// never serializes across connections, and send/delivery fast paths that
// allocate nothing per message.
package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"paccel/internal/bits"
	"paccel/internal/core"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

// LeanStack is a checksum + fragmentation + identification stack — the
// default stack minus the sliding window. The windowless stack is fully
// stateless on the fast path (no sequence numbers, no ack timers), which
// makes it the right fixture for allocation and router-contention
// benchmarks: every replayed datagram stays on the predicted path, and
// no timer machinery allocates behind the measurement.
func LeanStack(spec core.PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
	return []stack.Layer{
		layers.NewChksum(),
		layers.NewFrag(),
		&layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		},
	}, nil
}

// tapTransport wraps a transport and keeps a copy of the last datagram
// that reached the handler, so a harness can capture wire images for
// replay.
type tapTransport struct {
	inner core.Transport
	mu    sync.Mutex
	last  []byte
}

func (t *tapTransport) Send(dst string, datagram []byte) error { return t.inner.Send(dst, datagram) }
func (t *tapTransport) LocalAddr() string                      { return t.inner.LocalAddr() }
func (t *tapTransport) Close() error                           { return t.inner.Close() }

func (t *tapTransport) SetHandler(h func(src string, datagram []byte)) {
	t.inner.SetHandler(func(src string, datagram []byte) {
		t.mu.Lock()
		t.last = append(t.last[:0], datagram...)
		t.mu.Unlock()
		h(src, datagram)
	})
}

func (t *tapTransport) takeLast() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]byte(nil), t.last...)
	t.last = t.last[:0]
	return out
}

// paddedCounter is a cache-line-padded delivery counter, one per
// connection, so counting deliveries does not itself create the cross-core
// contention the benchmark is trying to detect.
type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// RecvHarness drives an Endpoint's receive path directly: it captures one
// valid cookie-only wire frame per connection and replays them straight
// into the transport handler, bypassing the network, so benchmarks
// measure the router + delivery path alone.
type RecvHarness struct {
	Server  *core.Endpoint
	Conns   []*core.Conn
	client  *core.Endpoint
	handler func(src string, datagram []byte)
	frames  [][]byte
	counts  []paddedCounter
}

// handlerTap interposes on SetHandler to steal a reference to the
// endpoint's receive callback.
type handlerTap struct {
	core.Transport
	h *RecvHarness
}

func (t handlerTap) SetHandler(fn func(src string, datagram []byte)) {
	t.h.handler = fn
	t.Transport.SetHandler(fn)
}

// NewRecvHarness builds a server endpoint with nConns pre-agreed-cookie
// connections over an instantaneous network, captures one fast-path frame
// per connection, and returns the harness ready for Deliver calls.
// singleLock selects the pre-sharding router ablation.
func NewRecvHarness(nConns int, singleLock bool) (*RecvHarness, error) {
	net := netsim.New(vclock.Real{}, netsim.Config{})
	h := &RecvHarness{counts: make([]paddedCounter, nConns)}
	tap := &tapTransport{inner: net.Endpoint("S")}
	server, err := core.NewEndpoint(core.Config{
		Transport:        handlerTap{tap, h},
		Build:            LeanStack,
		SingleLockRouter: singleLock,
	})
	if err != nil {
		return nil, err
	}
	h.Server = server
	client, err := core.NewEndpoint(core.Config{
		Transport: net.Endpoint("C"),
		Build:     LeanStack,
	})
	if err != nil {
		server.Close()
		return nil, err
	}
	h.client = client

	for i := 0; i < nConns; i++ {
		// Pre-agreed cookies on both sides (§2.2's "agree on a cookie
		// before starting to use it") keep every frame cookie-only.
		srvCookie := uint64(i+1)<<20 | 0x5eed
		cliCookie := uint64(i+1)<<20 | 0xc11e
		sc, err := server.Dial(core.PeerSpec{
			Addr: "C", LocalID: []byte("server"), RemoteID: []byte("client"),
			LocalPort: uint16(2000 + i), RemotePort: uint16(1000 + i), Epoch: 1,
			OutCookie: cliCookie, ExpectInCookie: srvCookie, SkipFirstConnID: true,
		})
		if err != nil {
			h.Close()
			return nil, err
		}
		slot := &h.counts[i]
		sc.OnDeliver(func([]byte) { slot.n.Add(1) })
		h.Conns = append(h.Conns, sc)

		cc, err := client.Dial(core.PeerSpec{
			Addr: "S", LocalID: []byte("client"), RemoteID: []byte("server"),
			LocalPort: uint16(1000 + i), RemotePort: uint16(2000 + i), Epoch: 1,
			OutCookie: srvCookie, ExpectInCookie: cliCookie, SkipFirstConnID: true,
		})
		if err != nil {
			h.Close()
			return nil, err
		}
		// One real send captures this connection's wire image; the
		// instantaneous network delivers synchronously, so the tap has
		// the frame when Send returns.
		payload := []byte(fmt.Sprintf("cn-%04d!", i))
		if err := cc.Send(payload); err != nil {
			h.Close()
			return nil, err
		}
		frame := tap.takeLast()
		if len(frame) == 0 {
			h.Close()
			return nil, fmt.Errorf("experiments: no frame captured for conn %d", i)
		}
		if got := slot.n.Load(); got != 1 {
			h.Close()
			return nil, fmt.Errorf("experiments: capture send delivered %d times", got)
		}
		h.frames = append(h.frames, frame)
	}
	if h.handler == nil {
		h.Close()
		return nil, fmt.Errorf("experiments: endpoint installed no handler")
	}
	return h, nil
}

// Deliver replays connection i's captured frame into the server's receive
// path, as if it had just arrived from the network.
func (h *RecvHarness) Deliver(i int) {
	h.handler("C", h.frames[i])
}

// Delivered returns connection i's delivery count.
func (h *RecvHarness) Delivered(i int) uint64 { return h.counts[i].n.Load() }

// Close tears the harness down.
func (h *RecvHarness) Close() {
	if h.client != nil {
		h.client.Close()
	}
	if h.Server != nil {
		h.Server.Close()
	}
}

// ParallelRecvConns is the connection count the concurrency experiment
// and BenchmarkEndpointParallelRecv use: enough connections that a
// single-lock router is visibly contended on any multicore machine.
const ParallelRecvConns = 8

// BenchParallelRecv hammers one endpoint with concurrent receives across
// nConns connections, each parallel worker replaying a different
// connection's frame. It is the body of BenchmarkEndpointParallelRecv and
// of the pabench concurrency experiment.
func BenchParallelRecv(b *testing.B, nConns int, singleLock bool) {
	h, err := NewRecvHarness(nConns, singleLock)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	// At least one worker per connection, even below nConns GOMAXPROCS —
	// the contention being measured is across connections.
	if p := runtime.GOMAXPROCS(0); p < nConns {
		b.SetParallelism((nConns + p - 1) / p)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)-1) % nConns
		for pb.Next() {
			h.Deliver(i)
		}
	})
}

// ConcurrencyResult is the machine-readable output of the concurrency
// experiment — the BENCH_1.json baseline future PRs gate against.
type ConcurrencyResult struct {
	// GOMAXPROCS records the parallelism the numbers were taken at.
	GOMAXPROCS int `json:"gomaxprocs"`
	Conns      int `json:"conns"`

	// Parallel receive routing, sharded router vs the single-lock
	// ablation (Config.SingleLockRouter).
	ShardedRecvNsOp    float64 `json:"sharded_recv_ns_op"`
	SingleLockRecvNsOp float64 `json:"single_lock_recv_ns_op"`
	RecvImprovementPct float64 `json:"recv_improvement_pct"`

	// Fast-path allocation counts (lean stack, perfect network). Send
	// includes the synchronous delivery on the other side.
	SendAllocsPerOp    float64 `json:"send_allocs_per_op"`
	DeliverAllocsPerOp float64 `json:"deliver_allocs_per_op"`

	// Single-threaded fast-path latencies for context.
	SendNsOp    float64 `json:"send_ns_op"`
	DeliverNsOp float64 `json:"deliver_ns_op"`
}

// SendAllocsPerOp measures allocations per accelerated Send over an
// instantaneous network with the lean stack — the delivery on the far
// side runs inside the same call, so 0 here means the whole send+deliver
// chain is allocation-free.
func SendAllocsPerOp(runs int) (float64, error) {
	p, err := NewPair(PairOptions{Build: LeanStack})
	if err != nil {
		return 0, err
	}
	defer p.Close()
	p.B.OnDeliver(func([]byte) {})
	payload := make([]byte, 32)
	// Warm the pools: the first operations grow queues and buffer pools.
	for i := 0; i < 256; i++ {
		if err := p.A.Send(payload); err != nil {
			return 0, err
		}
	}
	var sendErr error
	allocs := testing.AllocsPerRun(runs, func() {
		if err := p.A.Send(payload); err != nil {
			sendErr = err
		}
	})
	return allocs, sendErr
}

// DeliverAllocsPerOp measures allocations per routed delivery using the
// replay harness (router lookup + filter + fast-path delivery +
// application callback).
func DeliverAllocsPerOp(runs int) (float64, error) {
	h, err := NewRecvHarness(1, false)
	if err != nil {
		return 0, err
	}
	defer h.Close()
	for i := 0; i < 256; i++ {
		h.Deliver(0)
	}
	allocs := testing.AllocsPerRun(runs, func() { h.Deliver(0) })
	return allocs, nil
}

// Concurrency runs the scaling experiment: parallel receive throughput
// with the sharded router vs the single-lock ablation, plus fast-path
// allocation counts.
func Concurrency(quick bool) (*ConcurrencyResult, error) {
	runs := 2000
	if quick {
		runs = 200
	}
	// The routing benchmark needs actual concurrency: lift GOMAXPROCS to
	// the connection count for its duration (the harness machine may be a
	// single-core CI runner).
	prev := runtime.GOMAXPROCS(0)
	procs := prev
	if procs < ParallelRecvConns {
		procs = ParallelRecvConns
	}
	runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	res := &ConcurrencyResult{GOMAXPROCS: procs, Conns: ParallelRecvConns}

	// Min of three runs: parallel benchmarks on shared machines are
	// noisy upward, never downward.
	reps := 3
	if quick {
		reps = 2
	}
	minNs := func(singleLock bool) float64 {
		best := 0.0
		for r := 0; r < reps; r++ {
			out := testing.Benchmark(func(b *testing.B) {
				BenchParallelRecv(b, ParallelRecvConns, singleLock)
			})
			ns := float64(out.NsPerOp())
			if r == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	res.ShardedRecvNsOp = minNs(false)
	res.SingleLockRecvNsOp = minNs(true)
	if res.SingleLockRecvNsOp > 0 {
		res.RecvImprovementPct = 100 * (res.SingleLockRecvNsOp - res.ShardedRecvNsOp) / res.SingleLockRecvNsOp
	}

	var err error
	if res.SendAllocsPerOp, err = SendAllocsPerOp(runs); err != nil {
		return nil, err
	}
	if res.DeliverAllocsPerOp, err = DeliverAllocsPerOp(runs); err != nil {
		return nil, err
	}

	sendBench := testing.Benchmark(func(b *testing.B) {
		p, err := NewPair(PairOptions{Build: LeanStack})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		p.B.OnDeliver(func([]byte) {})
		payload := make([]byte, 32)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.A.Send(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.SendNsOp = float64(sendBench.NsPerOp())
	delivBench := testing.Benchmark(func(b *testing.B) {
		h, err := NewRecvHarness(1, false)
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Deliver(0)
		}
	})
	res.DeliverNsOp = float64(delivBench.NsPerOp())
	return res, nil
}

// ConcurrencyReport formats the result for the pabench console output.
func ConcurrencyReport(r *ConcurrencyResult) string {
	return fmt.Sprintf(`Concurrency scaling (GOMAXPROCS=%d, %d connections)
  parallel recv, sharded router:      %8.1f ns/op
  parallel recv, single-lock router:  %8.1f ns/op   (improvement %.1f%%)
  fast send  (lean stack):            %8.1f ns/op, %.3f allocs/op
  fast deliver (replay harness):      %8.1f ns/op, %.3f allocs/op
`, r.GOMAXPROCS, r.Conns,
		r.ShardedRecvNsOp, r.SingleLockRecvNsOp, r.RecvImprovementPct,
		r.SendNsOp, r.SendAllocsPerOp,
		r.DeliverNsOp, r.DeliverAllocsPerOp)
}

// ConcurrencyJSON renders the result as the BENCH_1.json baseline.
func ConcurrencyJSON(r *ConcurrencyResult) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

package experiments

import (
	"strings"
	"testing"
)

func TestTable4Sim(t *testing.T) {
	out := Table4Sim()
	for _, want := range []string{"one-way latency", "85 µs", "80,000 msgs/s", "6000 rt/s", "15 Mbytes/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Real(t *testing.T) {
	out, err := Table4Real(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "message throughput") {
		t.Fatalf("output:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestFig4(t *testing.T) {
	out := Fig4()
	for _, want := range []string{"SEND()", "DELIVER()", "GARBAGE COLLECTED", "round trip"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

func TestFig5(t *testing.T) {
	out := Fig5(400)
	if !strings.Contains(out, "rt/s (GC)") {
		t.Fatalf("output:\n%s", out)
	}
	pts := Fig5Curve(true, 400)
	if len(pts) < 5 {
		t.Fatal("too few points")
	}
	// Monotone non-decreasing achieved rate as the gap shrinks.
	for i := 1; i < len(pts); i++ {
		if pts[i].Rate < pts[i-1].Rate-1 {
			t.Fatalf("rate regressed: %v", pts)
		}
	}
	t.Logf("\n%s", out)
}

func TestLayersSimAndReal(t *testing.T) {
	out := LayersSim()
	if !strings.Contains(out, "max rt/s") {
		t.Fatalf("sim output:\n%s", out)
	}
	real, err := LayersReal(true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s%s", out, real)
}

func TestHeaders(t *testing.T) {
	out, err := Headers()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"compact layout", "layered layout", "76", "fits the 40-byte"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

func TestBaselineSimAndReal(t *testing.T) {
	out := BaselineSim()
	if !strings.Contains(out, "8.8x") {
		t.Fatalf("sim output:\n%s", out)
	}
	real, err := BaselineReal(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(real, "accelerated rtt") {
		t.Fatalf("real output:\n%s", real)
	}
	t.Logf("\n%s%s", out, real)
}

func TestServerLoadDriver(t *testing.T) {
	out := ServerLoad()
	for _, want := range []string{"server cap", "bottleneck", "server-cpu", "client-cap", "faster ML"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

func TestHiccupsDriver(t *testing.T) {
	out := Hiccups()
	for _, want := range []string{"p50", "p99", "max", "hiccups"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

func TestFig5CSV(t *testing.T) {
	out := Fig5CSV(200)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "curve,rate_per_sec,latency_us" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 20 {
		t.Fatalf("only %d rows", len(lines))
	}
	if !strings.Contains(out, "gc-every-receive") || !strings.Contains(out, "occasional-gc") {
		t.Fatal("curves missing")
	}
}

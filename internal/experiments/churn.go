// The churn experiment: surviving the fleet reboot (DESIGN.md §14). A
// correlated restart turns a quiet server into the landing zone for a
// connect/disconnect storm — every peer redials at once, the cookie
// table churns through orders of magnitude more identities than it can
// hold live, and the endpoint must keep serving the connections it has
// admitted while refusing the rest *cheaply* and *loudly* (typed
// errors and counters, never silence).
//
// Three scenarios:
//
//   - load: fill the cache-packed routing table to 100k–1M learned
//     entries, report the measured bytes/connection and the routed
//     fast-path ns/op at that occupancy, then let the incremental GC
//     drain it all, recording the worst sweep size and pause — the
//     pause bound must hold no matter how big the table got.
//   - storm: a seeded mass redial against a small-capacity endpoint on
//     the virtual clock. Admission fills to MaxConns, the storm
//     detector trips and tightens, the rest is shed; one admitted
//     "victim" connection keeps sending throughout and must lose
//     nothing. Every attempt is accounted: admitted + shed == offered.
//   - udp: the same storm shape over real loopback sockets, proving
//     the admission path holds outside the simulator.
//
// -json writes the machine-readable baseline (BENCH_7.json); -seed
// pins the storm schedule and the early-drop coin.
package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"paccel/internal/core"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/udp"
	"paccel/internal/vclock"
)

// churnAccept is the storm server's accept hook: every identified
// connection taken at face value, exactly as a fleet frontend would
// before authentication happens at a higher layer.
func churnAccept(remote layers.IdentInfo, netSrc string) (core.PeerSpec, bool) {
	return core.PeerSpec{
		Addr:      netSrc,
		LocalID:   bytes.TrimRight(remote.Dst, "\x00"),
		RemoteID:  bytes.TrimRight(remote.Src, "\x00"),
		LocalPort: remote.DstPort, RemotePort: remote.SrcPort,
		Epoch: remote.Epoch,
	}, true
}

// ChurnLoadPoint is one table-occupancy measurement of the load
// scenario.
type ChurnLoadPoint struct {
	Entries int `json:"entries"`
	Anchors int `json:"anchors"`

	// Table geometry at peak occupancy. BytesPerEntry is the headline
	// memory number: routing-table bytes per live learned route.
	TableSlots    int64   `json:"table_slots"`
	TableBytes    int64   `json:"table_bytes"`
	BytesPerEntry float64 `json:"bytes_per_entry"`

	FillNsPerBind   float64 `json:"fill_ns_per_bind"`
	DeliverNsLoaded float64 `json:"deliver_ns_loaded"`

	// Incremental-GC drain: the whole table is evicted over bounded
	// sweeps. GCMaxSweepSlots must never exceed the budget, and
	// GCMaxPauseUs is the longest wall-clock time any single sweep held
	// the router lock.
	GCSweepBudget   int     `json:"gc_sweep_budget"`
	GCSweeps        uint64  `json:"gc_sweeps"`
	GCMaxSweepSlots uint64  `json:"gc_max_sweep_slots"`
	GCMaxPauseUs    float64 `json:"gc_max_pause_us"`
	Evicted         uint64  `json:"evicted"`
	DrainedClean    bool    `json:"drained_clean"`
}

// ChurnStormResult is the netsim mass-redial scenario.
type ChurnStormResult struct {
	MaxConns int   `json:"max_conns"`
	Attempts int   `json:"attempts"`
	Seed     int64 `json:"seed"`

	Admitted       uint64 `json:"admitted"`
	Shed           uint64 `json:"shed"`
	ShedFull       uint64 `json:"shed_full"`
	ShedStorm      uint64 `json:"shed_storm"`
	StormsDetected uint64 `json:"storms_detected"`
	StormExited    bool   `json:"storm_exited"`

	// AccountedLossless is the "never silent" acceptance bit: every
	// offered attempt is either an admitted connection or a counted shed.
	AccountedLossless bool `json:"accounted_lossless"`

	// The admitted victim's end-to-end delivery through the storm.
	VictimSent      int `json:"victim_sent"`
	VictimDelivered int `json:"victim_delivered"`

	// Identified fast-path latency for an admitted connection while the
	// endpoint is quiescent versus while it is actively shedding with
	// the storm detector engaged — the number that must not move.
	DeliverNsQuiescent float64 `json:"deliver_ns_quiescent"`
	DeliverNsStorm     float64 `json:"deliver_ns_storm"`
	ShedNsOp           float64 `json:"shed_ns_op"`
	ShedAllocsOp       float64 `json:"shed_allocs_op"`
}

// ChurnUDPResult is the real-socket storm scenario.
type ChurnUDPResult struct {
	Clients  int    `json:"clients"`
	Arrived  uint64 `json:"arrived"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	// Accounted: every first message that reached the server socket was
	// either admitted or counted as shed.
	Accounted bool `json:"accounted"`
}

// ChurnResult is the machine-readable output of the churn experiment —
// the BENCH_7.json acceptance artifact.
type ChurnResult struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	Quick  bool   `json:"quick"`

	Load  []ChurnLoadPoint  `json:"load"`
	Storm *ChurnStormResult `json:"storm"`
	UDP   *ChurnUDPResult   `json:"udp"`
}

// Churn runs the full experiment.
func Churn(quick bool, seed int64) (*ChurnResult, error) {
	if seed == 0 {
		seed = 0x7e57ab1e
	}
	res := &ChurnResult{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Quick: quick}
	sizes := []int{100_000, 1_000_000}
	attempts := 20000
	udpClients := 1000
	if quick {
		sizes = []int{20_000, 100_000}
		attempts = 2000
		udpClients = 200
	}
	for _, n := range sizes {
		pt, err := churnLoad(n)
		if err != nil {
			return nil, err
		}
		res.Load = append(res.Load, *pt)
	}
	storm, err := churnStorm(attempts, seed)
	if err != nil {
		return nil, err
	}
	res.Storm = storm
	udpRes, err := churnUDP(udpClients, seed)
	if err != nil {
		return nil, err
	}
	res.UDP = udpRes
	return res, nil
}

// churnLoad fills one endpoint's routing table to n learned entries,
// measures its geometry and loaded fast path, then drains it through
// the incremental GC on the virtual clock.
func churnLoad(n int) (*ChurnLoadPoint, error) {
	const ttl = time.Minute
	// Enough anchor connections that each holds only a few hundred
	// synthetic routes — like a fleet, and it keeps per-eviction
	// bookkeeping (a scan of the anchor's cookie list) cheap.
	anchors := n / 256
	if anchors < 16 {
		anchors = 16
	}
	clk := vclock.NewManual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.Config{})
	tap := &tapTransport{inner: net.Endpoint("S")}
	var h handlerGrab
	server, err := core.NewEndpoint(core.Config{
		Transport: handlerGrabTap{tap, &h},
		Clock:     clk,
		Build:     LeanStack,
		CookieTTL: ttl,
		MaxConns:  n + anchors + 1,
	})
	if err != nil {
		return nil, err
	}
	defer server.Close()

	pt := &ChurnLoadPoint{Entries: n, Anchors: anchors, GCSweepBudget: 4096}
	per := n / anchors
	start := time.Now()
	for i := 0; i < anchors; i++ {
		anchor, err := server.Dial(core.PeerSpec{
			Addr: "X", LocalID: []byte("s"), RemoteID: []byte("x"),
			LocalPort: uint16(i%65000 + 1), RemotePort: 9, Epoch: uint32(i / 65000),
		})
		if err != nil {
			return nil, err
		}
		if got := server.BindBenchCookies(anchor, uint64(1+i*per)<<16, per, true); got != per {
			return nil, fmt.Errorf("churn: anchor %d bound %d of %d routes", i, got, per)
		}
	}
	bound := anchors * per
	pt.FillNsPerBind = float64(time.Since(start).Nanoseconds()) / float64(bound)
	pt.Entries = bound

	// One pre-agreed-cookie connection on top of the load gives us a
	// genuine fast-path frame to replay against the loaded table.
	client, err := core.NewEndpoint(core.Config{
		Transport: net.Endpoint("C"), Clock: clk, Build: LeanStack,
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()
	sc, err := server.Dial(core.PeerSpec{
		Addr: "C", LocalID: []byte("server"), RemoteID: []byte("client"),
		LocalPort: 2000, RemotePort: 1000, Epoch: 1,
		OutCookie: 0xc11e, ExpectInCookie: 0x5eed, SkipFirstConnID: true,
	})
	if err != nil {
		return nil, err
	}
	sc.OnDeliver(func([]byte) {})
	cc, err := client.Dial(core.PeerSpec{
		Addr: "S", LocalID: []byte("client"), RemoteID: []byte("server"),
		LocalPort: 1000, RemotePort: 2000, Epoch: 1,
		OutCookie: 0x5eed, ExpectInCookie: 0xc11e, SkipFirstConnID: true,
	})
	if err != nil {
		return nil, err
	}
	if err := cc.Send([]byte("capture!")); err != nil {
		return nil, err
	}
	frame := tap.takeLast()
	if len(frame) == 0 || h.fn == nil {
		return nil, fmt.Errorf("churn: no fast-path frame captured")
	}

	snap := server.Snapshot()
	pt.TableSlots = snap.TableSlots
	pt.TableBytes = snap.TableBytes
	if snap.TableEntries > 0 {
		pt.BytesPerEntry = float64(snap.TableBytes) / float64(snap.TableEntries)
	}

	const replays = 200_000
	for i := 0; i < 256; i++ {
		h.fn("C", frame)
	}
	start = time.Now()
	for i := 0; i < replays; i++ {
		h.fn("C", frame)
	}
	pt.DeliverNsLoaded = float64(time.Since(start).Nanoseconds()) / replays

	// Drain: three TTLs of virtual time fire every paced incremental
	// sweep; the synthetic routes are never refreshed, so all of them
	// must be gone, in bounded bites.
	clk.Advance(3 * ttl)
	snap = server.Snapshot()
	pt.GCSweeps = snap.GCSweeps
	pt.GCMaxSweepSlots = snap.GCMaxSweepSlots
	pt.GCMaxPauseUs = float64(snap.GCMaxPause.Nanoseconds()) / 1e3
	pt.Evicted = snap.CookiesEvicted
	// The pre-agreed capture binding is not learned, so it survives; all
	// synthetic learned routes must be gone.
	pt.DrainedClean = snap.CookiesEvicted == uint64(bound) && snap.TableEntries <= 2
	if pt.GCMaxSweepSlots > uint64(pt.GCSweepBudget) {
		return nil, fmt.Errorf("churn: GC sweep examined %d slots, budget %d",
			pt.GCMaxSweepSlots, pt.GCSweepBudget)
	}
	if !pt.DrainedClean {
		return nil, fmt.Errorf("churn: table not drained (evicted %d of %d, %d entries left)",
			snap.CookiesEvicted, bound, snap.TableEntries)
	}
	return pt, nil
}

// handlerGrab steals a reference to the endpoint's receive callback so
// frames can be replayed without the network.
type handlerGrab struct{ fn func(src string, datagram []byte) }

type handlerGrabTap struct {
	core.Transport
	h *handlerGrab
}

func (t handlerGrabTap) SetHandler(fn func(src string, datagram []byte)) {
	t.h.fn = fn
	t.Transport.SetHandler(fn)
}

// churnStorm is the seeded mass-redial scenario on the virtual clock.
func churnStorm(attempts int, seed int64) (*ChurnStormResult, error) {
	const maxConns = 256
	const stormRate = 500
	res := &ChurnStormResult{MaxConns: maxConns, Attempts: attempts, Seed: seed}
	clk := vclock.NewManual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.Config{})

	var victimDelivered int
	var victimConn *core.Conn
	server, err := core.NewEndpoint(core.Config{
		Transport: net.Endpoint("S"),
		Clock:     clk,
		MaxConns:  maxConns,
		Admission: core.AdmissionConfig{StormRate: stormRate, Seed: uint64(seed)},
		Accept:    churnAccept,
		OnConn: func(c *core.Conn) {
			if victimConn == nil {
				victimConn = c
				c.OnDeliver(func([]byte) { victimDelivered++ })
				return
			}
			c.OnDeliver(func([]byte) {})
		},
	})
	if err != nil {
		return nil, err
	}
	defer server.Close()

	// The victim redials first — the connection that made it back in —
	// and keeps talking through the whole storm.
	victimEp, err := core.NewEndpoint(core.Config{Transport: net.Endpoint("V"), Clock: clk})
	if err != nil {
		return nil, err
	}
	defer victimEp.Close()
	victim, err := victimEp.Dial(core.PeerSpec{
		Addr: "S", LocalID: []byte("victim"), RemoteID: []byte("srv"),
		LocalPort: 7, RemotePort: 9, Epoch: 1,
	})
	if err != nil {
		return nil, err
	}
	victimSent := 0
	victimSend := func() error {
		for {
			err := victim.Send([]byte("still here"))
			if err == nil {
				victimSent++
				return nil
			}
			if errors.Is(err, core.ErrBackpressure) {
				clk.Advance(20 * time.Millisecond)
				continue
			}
			return err
		}
	}
	if err := victimSend(); err != nil {
		return nil, err
	}

	before := server.Snapshot()
	redial := func(i int) error {
		ep, err := core.NewEndpoint(core.Config{
			Transport: net.Endpoint(fmt.Sprintf("C%d", i)), Clock: clk,
		})
		if err != nil {
			return err
		}
		conn, err := ep.Dial(core.PeerSpec{
			Addr: "S", LocalID: []byte(fmt.Sprintf("c%d", i)), RemoteID: []byte("srv"),
			LocalPort: uint16(i%65000 + 1), RemotePort: 9, Epoch: uint32(i / 65000),
		})
		if err == nil {
			conn.Send([]byte("redial"))
		}
		ep.Close()
		return nil
	}
	// The storm: every peer in the fleet redials inside a few virtual
	// seconds. ~500 attempts land per virtual second — over stormRate,
	// so the detector must trip.
	offered := 0
	for i := 0; i < attempts; i++ {
		if err := redial(i); err != nil {
			return nil, err
		}
		offered++
		if i%16 == 15 {
			if err := victimSend(); err != nil {
				return nil, err
			}
		}
		if i%500 == 499 {
			clk.Advance(time.Second)
		}
	}
	// Drain: calm virtual seconds carrying only a trickle of redials
	// (far under the calm threshold); the detector must relax.
	for s := 0; s < 5; s++ {
		clk.Advance(time.Second)
		if err := redial(attempts + s); err != nil {
			return nil, err
		}
		offered++
		if err := victimSend(); err != nil {
			return nil, err
		}
	}
	clk.Advance(time.Second)
	if err := redial(attempts + 5); err != nil {
		return nil, err
	}
	offered++

	after := server.Snapshot()
	res.Admitted = after.Accepted - before.Accepted
	res.Shed = after.ShedTotal - before.ShedTotal
	res.ShedFull = after.ShedFull - before.ShedFull
	res.ShedStorm = after.ShedStorm - before.ShedStorm
	res.StormsDetected = after.StormsDetected
	res.StormExited = after.StormsDetected > 0 && !after.StormActive
	res.AccountedLossless = res.Admitted+res.Shed == uint64(offered)
	res.VictimSent = victimSent
	res.VictimDelivered = victimDelivered
	if !res.AccountedLossless {
		return nil, fmt.Errorf("churn: %d attempts but admitted %d + shed %d (silent loss)",
			offered, res.Admitted, res.Shed)
	}
	if res.VictimDelivered != res.VictimSent {
		return nil, fmt.Errorf("churn: victim sent %d, delivered %d — admitted traffic lost",
			res.VictimSent, res.VictimDelivered)
	}
	if res.StormsDetected == 0 {
		return nil, fmt.Errorf("churn: storm of %d attempts/s never tripped the %d/s detector",
			attempts, stormRate)
	}

	// Fast-path latency, quiescent vs actively shedding, on the replay
	// harness (real clock: these are wall-time measurements).
	sh, err := NewShedHarness(1 << 20)
	if err != nil {
		return nil, err
	}
	res.DeliverNsQuiescent = timeOps(200_000, sh.Deliver)
	sh.Close()
	sh, err = NewShedHarness(64) // low storm threshold: shedding trips it
	if err != nil {
		return nil, err
	}
	defer sh.Close()
	res.ShedNsOp = timeOps(200_000, sh.Shed) // also drives the detector past 64/s
	if !sh.Server.Snapshot().StormActive {
		return nil, fmt.Errorf("churn: shed replay did not engage the storm detector")
	}
	// Interleave 1:1 with shed traffic, timing only the delivery blocks.
	var acc time.Duration
	const blocks, per = 1000, 64
	for b := 0; b < blocks; b++ {
		for i := 0; i < per; i++ {
			sh.Shed()
		}
		t0 := time.Now()
		for i := 0; i < per; i++ {
			sh.Deliver()
		}
		acc += time.Since(t0)
	}
	res.DeliverNsStorm = float64(acc.Nanoseconds()) / float64(blocks*per)
	res.ShedAllocsOp = testing.AllocsPerRun(2000, sh.Shed)
	return res, nil
}

func timeOps(n int, op func()) float64 {
	for i := 0; i < 256; i++ {
		op()
	}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		op()
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(n)
}

// ShedHarness drives one endpoint's admission reject path and one
// admitted connection's delivery path directly, bypassing the network:
// the fixture behind the storm latency numbers, the shed benchmarks,
// and the root-package perfgate benches.
type ShedHarness struct {
	Server *core.Endpoint

	h           handlerGrab
	client      *core.Endpoint
	client2     *core.Endpoint
	cookieFrame []byte
	shedFrame   []byte
}

// NewShedHarness builds a MaxConns=1 endpoint holding one pre-agreed
// fast-path connection, plus one captured stranger first-message whose
// replay is refused by admission every time. stormRate configures the
// detector (use a huge rate to keep it quiet, a small one to trip it).
func NewShedHarness(stormRate int) (*ShedHarness, error) {
	net := netsim.New(vclock.Real{}, netsim.Config{})
	sh := &ShedHarness{}
	tap := &tapTransport{inner: net.Endpoint("S")}
	server, err := core.NewEndpoint(core.Config{
		Transport: handlerGrabTap{tap, &sh.h},
		Build:     LeanStack,
		MaxConns:  1,
		Admission: core.AdmissionConfig{StormRate: stormRate, Seed: 7},
		Accept:    churnAccept,
		OnConn:    func(c *core.Conn) { c.OnDeliver(func([]byte) {}) },
	})
	if err != nil {
		return nil, err
	}
	sh.Server = server
	client, err := core.NewEndpoint(core.Config{Transport: net.Endpoint("C"), Build: LeanStack})
	if err != nil {
		sh.Close()
		return nil, err
	}
	sh.client = client
	// The admitted connection: pre-agreed cookies, so its frames are
	// cookie-only and its dial occupies the single slot.
	scServer, err := server.Dial(core.PeerSpec{
		Addr: "C", LocalID: []byte("server"), RemoteID: []byte("client"),
		LocalPort: 2000, RemotePort: 1000, Epoch: 1,
		OutCookie: 0xc11e, ExpectInCookie: 0x5eed, SkipFirstConnID: true,
	})
	if err != nil {
		sh.Close()
		return nil, err
	}
	scServer.OnDeliver(func([]byte) {})
	cc, err := client.Dial(core.PeerSpec{
		Addr: "S", LocalID: []byte("client"), RemoteID: []byte("server"),
		LocalPort: 1000, RemotePort: 2000, Epoch: 1,
		OutCookie: 0x5eed, ExpectInCookie: 0xc11e, SkipFirstConnID: true,
	})
	if err != nil {
		sh.Close()
		return nil, err
	}
	if err := cc.Send([]byte("fastpath")); err != nil {
		sh.Close()
		return nil, err
	}
	sh.cookieFrame = tap.takeLast()

	// The stranger: a genuine identified first message from a peer the
	// server has never admitted. Its live arrival was already refused
	// (the slot is taken), and every replay re-runs the same refusal.
	client2, err := core.NewEndpoint(core.Config{Transport: net.Endpoint("Z"), Build: LeanStack})
	if err != nil {
		sh.Close()
		return nil, err
	}
	sh.client2 = client2
	zc, err := client2.Dial(core.PeerSpec{
		Addr: "S", LocalID: []byte("stranger"), RemoteID: []byte("server"),
		LocalPort: 3000, RemotePort: 2000, Epoch: 1,
	})
	if err != nil {
		sh.Close()
		return nil, err
	}
	if err := zc.Send([]byte("let me in")); err != nil {
		sh.Close()
		return nil, err
	}
	sh.shedFrame = tap.takeLast()
	if len(sh.cookieFrame) == 0 || len(sh.shedFrame) == 0 || sh.h.fn == nil {
		sh.Close()
		return nil, fmt.Errorf("experiments: shed harness captured no frames")
	}
	if n := server.Snapshot().Conns; n != 1 {
		sh.Close()
		return nil, fmt.Errorf("experiments: shed harness holds %d conns, want 1", n)
	}
	return sh, nil
}

// Deliver replays the admitted connection's cookie-only frame.
func (sh *ShedHarness) Deliver() { sh.h.fn("C", sh.cookieFrame) }

// Shed replays the stranger's first message into the admission path;
// the endpoint is at capacity, so every call is a counted refusal.
func (sh *ShedHarness) Shed() { sh.h.fn("Z", sh.shedFrame) }

// Close tears the harness down.
func (sh *ShedHarness) Close() {
	if sh.client2 != nil {
		sh.client2.Close()
	}
	if sh.client != nil {
		sh.client.Close()
	}
	if sh.Server != nil {
		sh.Server.Close()
	}
}

// churnUDP replays the storm shape over real loopback sockets.
func churnUDP(clients int, seed int64) (*ChurnUDPResult, error) {
	const maxConns = 32
	res := &ChurnUDPResult{Clients: clients}
	tr, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	server, err := core.NewEndpoint(core.Config{
		Transport: tr,
		MaxConns:  maxConns,
		Admission: core.AdmissionConfig{StormRate: 1 << 20, Seed: uint64(seed)},
		Accept:    churnAccept,
		OnConn:    func(c *core.Conn) { c.OnDeliver(func([]byte) {}) },
	})
	if err != nil {
		return nil, err
	}
	defer server.Close()
	addr := tr.LocalAddr()

	before := server.Snapshot()
	for i := 0; i < clients; i++ {
		ct, err := udp.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ep, err := core.NewEndpoint(core.Config{Transport: ct, Build: LeanStack})
		if err != nil {
			ct.Close()
			return nil, err
		}
		conn, err := ep.Dial(core.PeerSpec{
			Addr: addr, LocalID: []byte(fmt.Sprintf("u%d", i)), RemoteID: []byte("srv"),
			LocalPort: uint16(i%65000 + 1), RemotePort: 9, Epoch: uint32(i / 65000),
		})
		if err == nil {
			conn.Send([]byte("redial"))
		}
		ep.Close()
	}
	// UDP delivery is asynchronous; wait for the arrivals to settle.
	deadline := time.Now().Add(5 * time.Second)
	var after core.EndpointStats
	for {
		after = server.Snapshot()
		arrived := (after.Accepted - before.Accepted) + (after.ShedTotal - before.ShedTotal)
		if arrived >= uint64(clients) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.Admitted = after.Accepted - before.Accepted
	res.Shed = after.ShedTotal - before.ShedTotal
	res.Arrived = res.Admitted + res.Shed
	// Loopback can drop under pressure, so arrived ≤ offered; the
	// accounting claim is server-side: nothing that arrived vanished.
	res.Accounted = res.Arrived > 0 && res.Admitted <= maxConns
	if !res.Accounted {
		return nil, fmt.Errorf("churn/udp: admitted %d (cap %d), arrived %d",
			res.Admitted, maxConns, res.Arrived)
	}
	return res, nil
}

// ChurnReport formats the result for the pabench console output.
func ChurnReport(r *ChurnResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet-reboot churn (%s/%s%s)\n", r.GOOS, r.GOARCH,
		map[bool]string{true: ", quick", false: ""}[r.Quick])
	fmt.Fprintf(&b, "  routing-table load + incremental GC drain:\n")
	fmt.Fprintf(&b, "  %9s %8s %8s %10s %10s %9s %10s %8s\n",
		"entries", "B/entry", "fill ns", "deliver ns", "gc sweeps", "max slots", "max pause", "drained")
	for _, pt := range r.Load {
		fmt.Fprintf(&b, "  %9d %8.1f %8.0f %10.1f %10d %9d %8.0fµs %8v\n",
			pt.Entries, pt.BytesPerEntry, pt.FillNsPerBind, pt.DeliverNsLoaded,
			pt.GCSweeps, pt.GCMaxSweepSlots, pt.GCMaxPauseUs, pt.DrainedClean)
	}
	if s := r.Storm; s != nil {
		fmt.Fprintf(&b, "  redial storm (netsim, seed %d): %d attempts at cap %d\n",
			s.Seed, s.Attempts, s.MaxConns)
		fmt.Fprintf(&b, "    admitted %d + shed %d (full %d, storm %d) = offered: %v; storms %d, exited %v\n",
			s.Admitted, s.Shed, s.ShedFull, s.ShedStorm, s.AccountedLossless,
			s.StormsDetected, s.StormExited)
		fmt.Fprintf(&b, "    victim through the storm: sent %d, delivered %d (zero loss: %v)\n",
			s.VictimSent, s.VictimDelivered, s.VictimSent == s.VictimDelivered)
		fmt.Fprintf(&b, "    identified fast path: %.1f ns quiescent, %.1f ns mid-shed; shed %.1f ns, %.3f allocs\n",
			s.DeliverNsQuiescent, s.DeliverNsStorm, s.ShedNsOp, s.ShedAllocsOp)
	}
	if u := r.UDP; u != nil {
		fmt.Fprintf(&b, "  redial storm (real UDP loopback): %d clients, %d arrived, admitted %d + shed %d, accounted %v\n",
			u.Clients, u.Arrived, u.Admitted, u.Shed, u.Accounted)
	}
	return b.String()
}

// ChurnJSON renders the result as the BENCH_7.json artifact.
func ChurnJSON(r *ChurnResult) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

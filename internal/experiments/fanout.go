// The fanout experiment: shared pre-processing group multicast
// (DESIGN.md §16). One multicast through core.Fanout performs the
// paper's send-side work — header build, send packet filter — exactly
// once, stamps each member's predicted header fields over a shared
// template, and transmits the whole group as one scattered-destination
// batch. The control arm is the same member set sent to with one full
// per-member Send pipeline each.
//
// Two fixtures measure it:
//
//   - sim: the in-memory network, for the msgs/s × members throughput
//     curve (up to 4096 members) and the steady-state allocation count;
//   - udp: real loopback sockets, for **tx syscalls/message** — the
//     acceptance metric. Per-member sends pay one sendmmsg per member;
//     the fanout batch pays one per 64 members.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"paccel/internal/core"
	"paccel/internal/netsim"
	"paccel/internal/udp"
	"paccel/internal/vclock"
)

// FanoutMembers are the measured group sizes (quick mode drops the
// last). 8 is small-group overhead; 64 fills exactly one sendmmsg chunk;
// 512 and 4096 show the flat per-member cost once the template build is
// fully amortized.
var FanoutMembers = []int{8, 64, 512, 4096}

// fanoutUDPMaxMembers caps the loopback-socket arm; the syscall ratio is
// member-count-linear and fully established by 512.
const fanoutUDPMaxMembers = 512

// fanoutSyscallOps is how many multicasts the syscall-accounting pass
// performs per group size.
const fanoutSyscallOps = 200

// fanoutPayload is the multicast payload size: a typical small group
// message, well under the fragmentation threshold so the template stays
// on the fast path.
const fanoutPayload = 128

// fanoutFixture is one sender endpoint with members connections dialed
// over tr, plus the fanout engine spanning them.
type fanoutFixture struct {
	ep      *core.Endpoint
	conns   []*core.Conn
	fan     *core.Fanout
	payload []byte
	cleanup func()
}

func newFanoutFixture(members int, tr core.Transport, dst string, cleanup func()) (*fanoutFixture, error) {
	ep, err := core.NewEndpoint(core.Config{Transport: tr, Build: LeanStack})
	if err != nil {
		cleanup()
		return nil, err
	}
	f := &fanoutFixture{ep: ep, payload: make([]byte, fanoutPayload), cleanup: func() {
		ep.Close()
		cleanup()
	}}
	for i := 0; i < members; i++ {
		conn, err := ep.Dial(core.PeerSpec{
			Addr:    dst,
			LocalID: []byte("fan"), RemoteID: []byte(fmt.Sprintf("m%04d", i)),
			LocalPort: uint16(i + 1), RemotePort: uint16(i + 1),
			Epoch: 1,
		})
		if err != nil {
			f.cleanup()
			return nil, err
		}
		f.conns = append(f.conns, conn)
	}
	if f.fan, err = core.NewFanout(ep, f.conns...); err != nil {
		f.cleanup()
		return nil, err
	}
	return f, nil
}

// newFanoutSimFixture dials members connections to a sink endpoint on an
// instantaneous in-memory network.
func newFanoutSimFixture(members int) (*fanoutFixture, error) {
	net := netsim.New(vclock.Real{}, netsim.Config{})
	sink := net.Endpoint("sink")
	sink.SetHandler(func(string, []byte) {})
	return newFanoutFixture(members, net.Endpoint("sender"), "sink", func() {})
}

// newFanoutUDPFixture dials members connections across real loopback
// sockets, returning the sender transport for syscall accounting.
func newFanoutUDPFixture(members int) (*fanoutFixture, *udp.Transport, error) {
	sender, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	sink, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		sender.Close()
		return nil, nil, err
	}
	sink.SetHandler(func(string, []byte) {})
	f, err := newFanoutFixture(members, sender, sink.LocalAddr(), func() {
		sink.Close()
	})
	if err != nil {
		return nil, nil, err
	}
	return f, sender, nil
}

// sendPerMember is the control arm: one full send pipeline per member.
func (f *fanoutFixture) sendPerMember() error {
	for _, c := range f.conns {
		if err := c.Send(f.payload); err != nil {
			return err
		}
	}
	return nil
}

// fanoutMeasure times op with the benchmark harness, best of reps.
func fanoutMeasure(op func() error, reps int) (float64, error) {
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		var opErr error
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					opErr = err
					b.FailNow()
				}
			}
		})
		if opErr != nil {
			return 0, opErr
		}
		if v := float64(br.NsPerOp()); v < best {
			best = v
		}
	}
	return best, nil
}

// FanoutMemberResult is one group size's measurements. One op is one
// whole-group multicast; syscall rates count the sender transport's
// transmit system calls per multicast.
type FanoutMemberResult struct {
	Members int `json:"members"`

	FanoutNsOp    float64 `json:"fanout_ns_op"`
	PerMemberNsOp float64 `json:"per_member_ns_op"`
	SpeedupX      float64 `json:"speedup_x"`

	FanoutMsgsPerSec    float64 `json:"fanout_msgs_per_sec"`
	PerMemberMsgsPerSec float64 `json:"per_member_msgs_per_sec"`

	// FanoutAllocsOp is the engine's steady state on the sim fixture —
	// the zero-allocation acceptance number.
	FanoutAllocsOp float64 `json:"fanout_allocs_op"`

	// UDP reports whether the loopback-socket arm ran for this size.
	UDP                       bool    `json:"udp"`
	FanoutTxSyscallsPerMsg    float64 `json:"fanout_tx_syscalls_per_msg,omitempty"`
	PerMemberTxSyscallsPerMsg float64 `json:"per_member_tx_syscalls_per_msg,omitempty"`
	// SyscallReductionFactor is the headline acceptance number:
	// per-member tx syscalls per multicast over fanout tx syscalls per
	// multicast (≈ members / ceil(members/64)).
	SyscallReductionFactor float64 `json:"syscall_reduction_factor,omitempty"`
}

// FanoutResult is the machine-readable output of the fanout experiment —
// the BENCH_9.json acceptance artifact.
type FanoutResult struct {
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	Vectorized   bool   `json:"vectorized"`
	PayloadBytes int    `json:"payload_bytes"`

	Members []FanoutMemberResult `json:"members"`
}

// Fanout runs the group-fanout experiment: template+stamp batched
// multicast vs per-member sends, across group sizes.
func Fanout(quick bool) (*FanoutResult, error) {
	reps := 3
	allocRuns := 2000
	sizes := FanoutMembers
	if quick {
		reps = 2
		allocRuns = 200
		sizes = sizes[:len(sizes)-1]
	}
	res := &FanoutResult{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Vectorized: runtime.GOOS == "linux" &&
			(runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64"),
		PayloadBytes: fanoutPayload,
	}
	for _, members := range sizes {
		r := FanoutMemberResult{Members: members}

		f, err := newFanoutSimFixture(members)
		if err != nil {
			return nil, err
		}
		if r.FanoutNsOp, err = fanoutMeasure(func() error { return f.fan.Send(f.payload) }, reps); err != nil {
			f.cleanup()
			return nil, err
		}
		for i := 0; i < 64; i++ {
			if err := f.fan.Send(f.payload); err != nil {
				f.cleanup()
				return nil, err
			}
		}
		r.FanoutAllocsOp = testing.AllocsPerRun(allocRuns, func() {
			if err := f.fan.Send(f.payload); err != nil {
				panic(err)
			}
		})
		f.cleanup()

		g, err := newFanoutSimFixture(members)
		if err != nil {
			return nil, err
		}
		if r.PerMemberNsOp, err = fanoutMeasure(g.sendPerMember, reps); err != nil {
			g.cleanup()
			return nil, err
		}
		g.cleanup()

		if r.FanoutNsOp > 0 {
			r.SpeedupX = r.PerMemberNsOp / r.FanoutNsOp
			r.FanoutMsgsPerSec = 1e9 / r.FanoutNsOp
		}
		if r.PerMemberNsOp > 0 {
			r.PerMemberMsgsPerSec = 1e9 / r.PerMemberNsOp
		}

		if members <= fanoutUDPMaxMembers {
			r.UDP = true
			if r.FanoutTxSyscallsPerMsg, err = fanoutSyscallPass(members, true); err != nil {
				return nil, err
			}
			if r.PerMemberTxSyscallsPerMsg, err = fanoutSyscallPass(members, false); err != nil {
				return nil, err
			}
			if r.FanoutTxSyscallsPerMsg > 0 {
				r.SyscallReductionFactor = r.PerMemberTxSyscallsPerMsg / r.FanoutTxSyscallsPerMsg
			}
		}
		res.Members = append(res.Members, r)
	}
	return res, nil
}

// fanoutSyscallPass counts the sender's transmit syscalls per multicast
// over real loopback sockets, for either arm.
func fanoutSyscallPass(members int, batched bool) (float64, error) {
	f, sender, err := newFanoutUDPFixture(members)
	if err != nil {
		return 0, err
	}
	defer f.cleanup()
	op := f.sendPerMember
	if batched {
		op = func() error { return f.fan.Send(f.payload) }
	}
	// Warm: prediction, pools, the transport's peer-address cache.
	for i := 0; i < 16; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	before := sender.Stats().TxSyscalls
	for i := 0; i < fanoutSyscallOps; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	delta := sender.Stats().TxSyscalls - before
	return float64(delta) / float64(fanoutSyscallOps), nil
}

// FanoutReport formats the result for the pabench console output.
func FanoutReport(r *FanoutResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Group fanout: build once, stamp per member, one batch (%s/%s, %d B payload)\n",
		r.GOOS, r.GOARCH, r.PayloadBytes)
	fmt.Fprintf(&b, "  one op = one whole-group multicast; control arm = one full Send per member\n")
	fmt.Fprintf(&b, "  %7s  %24s  %22s  %8s  %9s  %22s  %8s\n",
		"members", "fanout/per-member ns", "msgs/s (fan/per)", "speedup", "allocs/op", "tx sc/msg (fan/per)", "sc gain")
	for _, row := range r.Members {
		sys := fmt.Sprintf("%10s / %9s", "-", "-")
		gain := "-"
		if row.UDP {
			sys = fmt.Sprintf("%10.2f / %9.1f", row.FanoutTxSyscallsPerMsg, row.PerMemberTxSyscallsPerMsg)
			gain = fmt.Sprintf("%.1fx", row.SyscallReductionFactor)
		}
		fmt.Fprintf(&b, "  %7d  %10.0f / %11.0f  %9.0f / %10.0f  %7.1fx  %9.3f  %22s  %8s\n",
			row.Members, row.FanoutNsOp, row.PerMemberNsOp,
			row.FanoutMsgsPerSec, row.PerMemberMsgsPerSec,
			row.SpeedupX, row.FanoutAllocsOp, sys, gain)
	}
	return b.String()
}

// FanoutJSON renders the result as the BENCH_9.json artifact.
func FanoutJSON(r *FanoutResult) (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

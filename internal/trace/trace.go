// Package trace records timestamped event timelines, used to regenerate
// the paper's Figure 4 (the round-trip execution breakdown).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Event is one point on a timeline.
type Event struct {
	At    time.Duration // offset from the timeline origin
	Host  string        // which host the event happened on
	Label string        // e.g. "SEND()", "POSTSEND DONE"
}

// Timeline is an append-only list of events.
type Timeline struct {
	events []Event
}

// Add records an event.
func (tl *Timeline) Add(at time.Duration, host, label string) {
	tl.events = append(tl.events, Event{At: at, Host: host, Label: label})
}

// Events returns the events sorted by time (stable for equal times).
func (tl *Timeline) Events() []Event {
	out := append([]Event(nil), tl.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of recorded events.
func (tl *Timeline) Len() int { return len(tl.events) }

// Render draws the timeline as two labelled columns (the paper's Figure 4
// layout: receiver left, sender right), one row per event.
func (tl *Timeline) Render(leftHost, rightHost string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s  %-28s %-28s\n", "µs", leftHost, rightHost)
	for _, e := range tl.Events() {
		l, r := "", ""
		switch e.Host {
		case leftHost:
			l = e.Label
		case rightHost:
			r = e.Label
		default:
			l = e.Host + ": " + e.Label
		}
		fmt.Fprintf(&b, "%10.0f  %-28s %-28s\n",
			float64(e.At)/float64(time.Microsecond), l, r)
	}
	return b.String()
}

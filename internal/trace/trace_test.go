package trace

import (
	"strings"
	"testing"
	"time"
)

func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

func TestEventsSorted(t *testing.T) {
	var tl Timeline
	tl.Add(us(30), "a", "third")
	tl.Add(us(10), "b", "first")
	tl.Add(us(20), "a", "second")
	ev := tl.Events()
	if len(ev) != 3 || ev[0].Label != "first" || ev[1].Label != "second" || ev[2].Label != "third" {
		t.Fatalf("events = %v", ev)
	}
	if tl.Len() != 3 {
		t.Fatalf("len = %d", tl.Len())
	}
}

func TestStableForEqualTimes(t *testing.T) {
	var tl Timeline
	tl.Add(us(5), "h", "A")
	tl.Add(us(5), "h", "B")
	ev := tl.Events()
	if ev[0].Label != "A" || ev[1].Label != "B" {
		t.Fatal("equal-time events reordered")
	}
}

func TestRenderColumns(t *testing.T) {
	var tl Timeline
	tl.Add(0, "client", "SEND()")
	tl.Add(us(88), "server", "DELIVER()")
	tl.Add(us(100), "other", "X")
	out := tl.Render("server", "client")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "SEND()") || strings.Index(lines[1], "SEND()") < 12 {
		t.Fatalf("client column: %q", lines[1])
	}
	if !strings.Contains(lines[2], "DELIVER()") {
		t.Fatalf("server column: %q", lines[2])
	}
	if !strings.Contains(lines[3], "other: X") {
		t.Fatalf("unknown host row: %q", lines[3])
	}
	if !strings.Contains(lines[2], "88") {
		t.Fatalf("missing µs column: %q", lines[2])
	}
}

package stack

import (
	"testing"

	"paccel/internal/message"
)

// probe is a test layer recording phase invocations into a shared log.
type probe struct {
	name    string
	log     *[]string
	preSend Verdict
	preDel  Verdict
}

func (p *probe) Name() string            { return p.name }
func (p *probe) Init(*InitContext) error { return nil }
func (p *probe) Prime(*Context)          { *p.log = append(*p.log, p.name+".prime") }
func (p *probe) PreSend(*Context, *message.Msg) Verdict {
	*p.log = append(*p.log, p.name+".preS")
	return p.preSend
}
func (p *probe) PostSend(*Context, *message.Msg) {
	*p.log = append(*p.log, p.name+".postS")
}
func (p *probe) PreDeliver(*Context, *message.Msg) Verdict {
	*p.log = append(*p.log, p.name+".preD")
	return p.preDel
}
func (p *probe) PostDeliver(*Context, *message.Msg) {
	*p.log = append(*p.log, p.name+".postD")
}

func probes(log *[]string, names ...string) []*probe {
	ps := make([]*probe, len(names))
	for i, n := range names {
		ps[i] = &probe{name: n, log: log}
	}
	return ps
}

func mkStack(t *testing.T, ps []*probe) *Stack {
	t.Helper()
	ls := make([]Layer, len(ps))
	for i, p := range ps {
		ls[i] = p
	}
	s, err := NewStack(ls...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func eq(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("log = %v, want %v", got, want)
		}
	}
}

func TestPhaseOrdering(t *testing.T) {
	var log []string
	ps := probes(&log, "a", "b", "c")
	s := mkStack(t, ps)
	m := message.New(nil)
	defer m.Free()

	s.Prime(&Context{})
	eq(t, log, "a.prime", "b.prime", "c.prime")

	log = nil
	if v, i := s.PreSend(&Context{}, m); v != Continue || i != -1 {
		t.Fatalf("PreSend = %v, %d", v, i)
	}
	eq(t, log, "a.preS", "b.preS", "c.preS") // top to bottom

	log = nil
	s.PostSend(&Context{}, m)
	eq(t, log, "a.postS", "b.postS", "c.postS")

	log = nil
	if v, i := s.PreDeliver(&Context{}, m); v != Continue || i != -1 {
		t.Fatalf("PreDeliver = %v, %d", v, i)
	}
	eq(t, log, "c.preD", "b.preD", "a.preD") // bottom to top

	log = nil
	s.PostDeliver(&Context{}, m)
	eq(t, log, "c.postD", "b.postD", "a.postD")
}

func TestPreSendStopsAtVerdict(t *testing.T) {
	var log []string
	ps := probes(&log, "a", "b", "c")
	ps[1].preSend = Consume
	s := mkStack(t, ps)
	m := message.New(nil)
	defer m.Free()
	v, i := s.PreSend(&Context{}, m)
	if v != Consume || i != 1 {
		t.Fatalf("got %v, %d", v, i)
	}
	eq(t, log, "a.preS", "b.preS") // c never ran
}

func TestPreDeliverStopsAtVerdict(t *testing.T) {
	var log []string
	ps := probes(&log, "a", "b", "c")
	ps[1].preDel = Drop
	s := mkStack(t, ps)
	m := message.New(nil)
	defer m.Free()
	v, i := s.PreDeliver(&Context{}, m)
	if v != Drop || i != 1 {
		t.Fatalf("got %v, %d", v, i)
	}
	eq(t, log, "c.preD", "b.preD") // a never ran
}

func TestControlSendOnlyBelow(t *testing.T) {
	var log []string
	ps := probes(&log, "a", "b", "c")
	s := mkStack(t, ps)
	m := message.New(nil)
	defer m.Free()
	if v, _ := s.ControlSend(&Context{}, m, ps[1]); v != Continue {
		t.Fatal("control send failed")
	}
	eq(t, log, "c.preS") // only below b

	log = nil
	s.ControlPostSend(&Context{}, m, ps[1])
	eq(t, log, "c.postS")
}

func TestDeliverAboveOnly(t *testing.T) {
	var log []string
	ps := probes(&log, "a", "b", "c")
	s := mkStack(t, ps)
	m := message.New(nil)
	defer m.Free()
	if v, _ := s.DeliverAbove(&Context{}, m, ps[1]); v != Continue {
		t.Fatal("deliver above failed")
	}
	eq(t, log, "a.preD") // only above b

	log = nil
	s.PostDeliverAbove(&Context{}, m, ps[1])
	eq(t, log, "a.postD")
}

func TestDuplicateLayerRejected(t *testing.T) {
	var log []string
	p := probes(&log, "a")[0]
	if _, err := NewStack(p, p); err == nil {
		t.Fatal("duplicate instance accepted")
	}
}

func TestIndex(t *testing.T) {
	var log []string
	ps := probes(&log, "a", "b")
	s := mkStack(t, ps)
	if s.Index(ps[0]) != 0 || s.Index(ps[1]) != 1 {
		t.Fatal("index wrong")
	}
	other := probes(&log, "x")[0]
	if s.Index(other) != -1 {
		t.Fatal("foreign layer indexed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mustIndex on foreign layer did not panic")
		}
	}()
	m := message.New(nil)
	defer m.Free()
	s.ControlSend(&Context{}, m, other)
}

func TestVerdictString(t *testing.T) {
	if Continue.String() != "continue" || Consume.String() != "consume" || Drop.String() != "drop" {
		t.Fatal("verdict names")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict")
	}
}

func TestLenAndLayers(t *testing.T) {
	var log []string
	ps := probes(&log, "a", "b")
	s := mkStack(t, ps)
	if s.Len() != 2 || len(s.Layers()) != 2 {
		t.Fatal("len mismatch")
	}
}

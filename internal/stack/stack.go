// Package stack is the layered protocol framework the Protocol
// Accelerator accelerates — the Horus substrate of the paper.
//
// Layers follow canonical protocol processing (paper §3.1): every send and
// delivery is split into a pre-processing phase that builds or checks
// header fields without touching protocol state, and a post-processing
// phase that updates state and predicts the next message's
// protocol-specific header (§3.2). Because pre phases are pure, the engine
// may run all pre phases before any post phase, transmit or deliver in
// between, and defer the post phases off the critical path entirely.
//
// A layer that must act from a pre phase (send a nak, release a buffered
// message) does not mutate anything directly; it registers the action with
// Services.Defer, and the engine runs it at post-processing time. This
// keeps the canonical-form property testable: a pre phase that returns
// Continue leaves its layer bit-for-bit unchanged.
package stack

import (
	"fmt"
	"time"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/vclock"
)

// Verdict is the outcome of a pre-processing phase.
type Verdict int

// Pre-phase verdicts.
const (
	// Continue passes the message to the next layer (and ultimately to
	// the network or the application).
	Continue Verdict = iota
	// Consume stops processing: the layer has taken responsibility for
	// the message (buffered a future fragment, absorbed an ack).
	Consume
	// Drop discards the message (duplicate, stale, corrupt).
	Drop
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Continue:
		return "continue"
	case Consume:
		return "consume"
	case Drop:
		return "drop"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Layer is one protocol micro-layer in canonical form.
//
// Init registers header fields and packet-filter instructions. Prime runs
// once, after the schema is compiled, to fill in the initial predicted
// headers (and, for the bottom layer, the connection identification).
// The four phase methods implement canonical protocol processing; the Pre*
// methods must not modify layer state (use ctx.S.Defer for actions), the
// Post* methods update state and rewrite this layer's fields in the
// predicted headers.
type Layer interface {
	// Name identifies the layer in schema reports and errors.
	Name() string
	// Init registers the layer's header fields and filter code.
	Init(ctx *InitContext) error
	// Prime writes the layer's initial predicted header fields.
	Prime(ctx *Context)
	// PreSend fills the layer's header fields for an outgoing message.
	PreSend(ctx *Context, m *message.Msg) Verdict
	// PostSend updates protocol state after a send and predicts the
	// layer's fields for the next outgoing message.
	PostSend(ctx *Context, m *message.Msg)
	// PreDeliver checks the layer's header fields of an incoming
	// message.
	PreDeliver(ctx *Context, m *message.Msg) Verdict
	// PostDeliver updates protocol state after a delivery and predicts
	// the layer's fields for the next incoming message.
	PostDeliver(ctx *Context, m *message.Msg)
}

// InitContext carries the registration surfaces a layer uses during Init.
type InitContext struct {
	// Schema receives the layer's header fields.
	Schema *header.Schema
	// SendFilter and RecvFilter receive the layer's packet-filter
	// instructions for message-specific information (§3.3).
	SendFilter, RecvFilter *filter.Builder
}

// Context is passed to Prime and the four phase methods.
type Context struct {
	// Env exposes the current message's header regions, payload and
	// byte order. It is nil during Prime.
	Env *filter.Env
	// Order is the connection's native byte order, used for the
	// predicted header regions (whose writer is always the local side).
	Order bits.ByteOrder
	// PredictSend and PredictRecv expose the predicted header regions
	// for the next send and the next delivery. PredictSend[ConnID] is
	// the connection identification written during Prime. Valid in
	// Prime and the Post* phases; pre phases must not write to them.
	PredictSend [header.NumClasses][]byte
	PredictRecv [header.NumClasses][]byte
	// S is the engine's service surface.
	S Services
}

// ControlOpts parameterizes a layer-generated message (§3.2: acks,
// retransmissions, fragments).
type ControlOpts struct {
	// Build writes the generating layer's own header fields; it runs
	// after the header regions have been pushed onto the message.
	Build func(env *filter.Env)
	// IncludeConnID marks the message "unusual": the connection
	// identification travels with it (§2.2 — retransmissions).
	IncludeConnID bool
}

// Services is the engine surface available to layers. The engine
// serializes all calls on a connection, so layer code never needs its own
// locking.
type Services interface {
	// Clock returns the connection's time source.
	Clock() vclock.Clock
	// AfterFunc schedules f on the connection's clock; f runs holding
	// the connection lock.
	AfterFunc(d time.Duration, f func()) vclock.Timer
	// DisableSend increments the send-prediction disable counter
	// (§3.2: e.g. the send window is full); EnableSend decrements it.
	// While non-zero, application sends go to the backlog.
	DisableSend()
	EnableSend()
	// DisableRecv and EnableRecv are the delivery-side counterpart.
	DisableRecv()
	EnableRecv()
	// SendControl emits a layer-generated message from the given layer.
	// It traverses only the layers below from (§3.2), then the send
	// packet filter, and is transmitted immediately (control messages
	// bypass the backlog).
	SendControl(from Layer, m *message.Msg, opts ControlOpts) error
	// SendRaw retransmits a message whose header regions are already
	// complete (a clone saved at PostSend time). No layer code or
	// filter runs.
	SendRaw(m *message.Msg, includeConnID bool) error
	// EnqueueDeliver re-enters the delivery path above from with a
	// message the layer had buffered (reassembled data, in-order
	// release).
	EnqueueDeliver(from Layer, m *message.Msg)
	// Defer queues f to run during post-processing of the current
	// critical path. It is the only way a pre phase may cause effects.
	Defer(f func())
}

// Resumer is implemented by layers that take part in session
// resumption. When the engine probes a disrupted connection it calls
// Resume on every implementing layer (top to bottom, under the
// connection lock): the layer re-transmits whatever the peer needs to
// reconcile state — the window layer sends an identified probe carrying
// its cumulative ack and replays its unacked frames. Layers without
// resumable state simply don't implement the interface.
type Resumer interface {
	Resume()
}

// Stack is an ordered list of layers, index 0 on top (nearest the
// application).
type Stack struct {
	layers []Layer
	index  map[Layer]int
}

// NewStack builds a stack from top to bottom. Layer instances must be
// distinct.
func NewStack(layers ...Layer) (*Stack, error) {
	s := &Stack{layers: layers, index: make(map[Layer]int, len(layers))}
	for i, l := range layers {
		if _, dup := s.index[l]; dup {
			return nil, fmt.Errorf("stack: layer instance %q appears twice", l.Name())
		}
		s.index[l] = i
	}
	return s, nil
}

// Len returns the number of layers.
func (s *Stack) Len() int { return len(s.layers) }

// Layers returns the layers, top first. The slice must not be modified.
func (s *Stack) Layers() []Layer { return s.layers }

// Init runs every layer's Init, top to bottom, against the given
// registration surfaces.
func (s *Stack) Init(ic *InitContext) error {
	for _, l := range s.layers {
		if err := l.Init(ic); err != nil {
			return fmt.Errorf("stack: init %s: %w", l.Name(), err)
		}
	}
	return nil
}

// Prime runs every layer's Prime, top to bottom.
func (s *Stack) Prime(ctx *Context) {
	for _, l := range s.layers {
		l.Prime(ctx)
	}
}

// PreSend runs the send pre-phases top to bottom, stopping at the first
// non-Continue verdict, which it returns along with the index of the layer
// that issued it (-1 when all layers continued).
func (s *Stack) PreSend(ctx *Context, m *message.Msg) (Verdict, int) {
	return s.preSendBelow(ctx, m, -1)
}

// preSendBelow runs send pre-phases for layers strictly below index from.
func (s *Stack) preSendBelow(ctx *Context, m *message.Msg, from int) (Verdict, int) {
	for i := from + 1; i < len(s.layers); i++ {
		if v := s.layers[i].PreSend(ctx, m); v != Continue {
			return v, i
		}
	}
	return Continue, -1
}

// PostSend runs the send post-phases top to bottom.
func (s *Stack) PostSend(ctx *Context, m *message.Msg) {
	s.postSendBelow(ctx, m, -1)
}

func (s *Stack) postSendBelow(ctx *Context, m *message.Msg, from int) {
	for i := from + 1; i < len(s.layers); i++ {
		s.layers[i].PostSend(ctx, m)
	}
}

// PreDeliver runs the delivery pre-phases bottom to top, stopping at the
// first non-Continue verdict.
func (s *Stack) PreDeliver(ctx *Context, m *message.Msg) (Verdict, int) {
	return s.preDeliverAbove(ctx, m, len(s.layers))
}

// preDeliverAbove runs delivery pre-phases for layers strictly above index
// from (bottom to top).
func (s *Stack) preDeliverAbove(ctx *Context, m *message.Msg, from int) (Verdict, int) {
	for i := from - 1; i >= 0; i-- {
		if v := s.layers[i].PreDeliver(ctx, m); v != Continue {
			return v, i
		}
	}
	return Continue, -1
}

// PostDeliver runs the delivery post-phases bottom to top.
func (s *Stack) PostDeliver(ctx *Context, m *message.Msg) {
	for i := len(s.layers) - 1; i >= 0; i-- {
		s.layers[i].PostDeliver(ctx, m)
	}
}

// PostDeliverBelow runs the delivery post-phases of the layers strictly
// below index i, bottom to top. When a layer buffers or drops a message in
// pre-processing, the layers underneath it had accepted the message and
// still get their post-processing ("the message is handed to the stack
// again for post-processing", §4).
func (s *Stack) PostDeliverBelow(ctx *Context, m *message.Msg, i int) {
	for j := len(s.layers) - 1; j > i; j-- {
		s.layers[j].PostDeliver(ctx, m)
	}
}

// Index returns the position of l in the stack, or -1.
func (s *Stack) Index(l Layer) int {
	if i, ok := s.index[l]; ok {
		return i
	}
	return -1
}

// ControlSend runs the send path for a control message generated by layer
// from: pre phases of the layers below it only (§3.2).
func (s *Stack) ControlSend(ctx *Context, m *message.Msg, from Layer) (Verdict, int) {
	return s.preSendBelow(ctx, m, s.mustIndex(from))
}

// ControlPostSend runs the send post-phases of the layers below from.
func (s *Stack) ControlPostSend(ctx *Context, m *message.Msg, from Layer) {
	s.postSendBelow(ctx, m, s.mustIndex(from))
}

// DeliverAbove runs the delivery pre-phases of the layers above from, used
// when a layer releases a buffered message.
func (s *Stack) DeliverAbove(ctx *Context, m *message.Msg, from Layer) (Verdict, int) {
	return s.preDeliverAbove(ctx, m, s.mustIndex(from))
}

// PostDeliverAbove runs the delivery post-phases of the layers above from.
func (s *Stack) PostDeliverAbove(ctx *Context, m *message.Msg, from Layer) {
	i := s.mustIndex(from)
	for j := i - 1; j >= 0; j-- {
		s.layers[j].PostDeliver(ctx, m)
	}
}

func (s *Stack) mustIndex(l Layer) int {
	i, ok := s.index[l]
	if !ok {
		panic(fmt.Sprintf("stack: layer %q not in stack", l.Name()))
	}
	return i
}

// Package vclock abstracts time for the protocol stack.
//
// Protocol layers (retransmission timeouts, heartbeats) and the simulated
// network (propagation latency) never read the wall clock directly; they go
// through a Clock. Two implementations are provided: Real, backed by the
// time package, and Manual, a deterministic clock advanced explicitly by
// tests and by the discrete-event simulator.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time and one-shot timers.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc arranges for f to be called once, d after Now. It
	// returns a Timer that can cancel the call. f runs on an unspecified
	// goroutine (Real) or synchronously inside Advance (Manual); it must
	// not block.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellable pending call created by AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was stopped
	// before it ran.
	Stop() bool
}

// Real is a Clock backed by the time package.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Manual is a deterministic Clock whose time only moves when Advance or
// AdvanceTo is called. Timers fire synchronously, in deadline order, on the
// goroutine that advances the clock. Manual is safe for concurrent use.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	pending timerHeap
	seq     uint64
}

// NewManual returns a Manual clock whose current time is start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// AfterFunc implements Clock. A non-positive d fires on the next Advance
// call (even Advance(0)).
func (m *Manual) AfterFunc(d time.Duration, f func()) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	t := &manualTimer{
		clock:    m,
		deadline: m.now.Add(d),
		seq:      m.seq,
		f:        f,
	}
	heap.Push(&m.pending, t)
	return t
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls within the window, in deadline order (FIFO among equal deadlines).
// Timers scheduled by the fired callbacks also fire if they fall within the
// window. Advance(0) fires timers due exactly now.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.AdvanceToLocked(m.now.Add(d))
}

// AdvanceTo moves the clock forward to t (no-op if t is in the past),
// firing timers as for Advance.
func (m *Manual) AdvanceTo(t time.Time) {
	m.mu.Lock()
	if t.Before(m.now) {
		m.mu.Unlock()
		return
	}
	m.AdvanceToLocked(t)
}

// AdvanceToLocked completes an advance with m.mu held; it releases the lock
// around each callback and before returning.
func (m *Manual) AdvanceToLocked(target time.Time) {
	for {
		if len(m.pending) == 0 || m.pending[0].deadline.After(target) {
			break
		}
		t := heap.Pop(&m.pending).(*manualTimer)
		if t.stopped {
			continue
		}
		t.fired = true
		if t.deadline.After(m.now) {
			m.now = t.deadline
		}
		f := t.f
		m.mu.Unlock()
		f()
		m.mu.Lock()
	}
	if target.After(m.now) {
		m.now = target
	}
	m.mu.Unlock()
}

// NextDeadline returns the deadline of the earliest pending timer, and
// whether one exists. The simulator uses this to hop between events.
func (m *Manual) NextDeadline() (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) > 0 && m.pending[0].stopped {
		heap.Pop(&m.pending)
	}
	if len(m.pending) == 0 {
		return time.Time{}, false
	}
	return m.pending[0].deadline, true
}

// PendingCount returns the number of live (unstopped, unfired) timers.
func (m *Manual) PendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.pending {
		if !t.stopped {
			n++
		}
	}
	return n
}

type manualTimer struct {
	clock    *Manual
	deadline time.Time
	seq      uint64 // FIFO tiebreak among equal deadlines
	index    int
	f        func()
	stopped  bool
	fired    bool
}

// Stop implements Timer.
func (t *manualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// timerHeap is a min-heap of timers ordered by (deadline, seq).
type timerHeap []*manualTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*manualTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

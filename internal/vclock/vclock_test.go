package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(1996, 8, 28, 0, 0, 0, 0, time.UTC) // SIGCOMM '96

func TestManualNow(t *testing.T) {
	m := NewManual(t0)
	if !m.Now().Equal(t0) {
		t.Fatal("initial Now mismatch")
	}
	m.Advance(5 * time.Millisecond)
	if !m.Now().Equal(t0.Add(5 * time.Millisecond)) {
		t.Fatal("Advance did not move clock")
	}
}

func TestManualTimerOrder(t *testing.T) {
	m := NewManual(t0)
	var order []int
	m.AfterFunc(3*time.Millisecond, func() { order = append(order, 3) })
	m.AfterFunc(1*time.Millisecond, func() { order = append(order, 1) })
	m.AfterFunc(2*time.Millisecond, func() { order = append(order, 2) })
	m.Advance(10 * time.Millisecond)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestManualFIFOAmongEqualDeadlines(t *testing.T) {
	m := NewManual(t0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		m.AfterFunc(time.Millisecond, func() { order = append(order, i) })
	}
	m.Advance(time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestManualPartialAdvance(t *testing.T) {
	m := NewManual(t0)
	fired := 0
	m.AfterFunc(1*time.Millisecond, func() { fired++ })
	m.AfterFunc(5*time.Millisecond, func() { fired++ })
	m.Advance(2 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	m.Advance(3 * time.Millisecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestManualStop(t *testing.T) {
	m := NewManual(t0)
	fired := false
	tm := m.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on live timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	m.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestManualStopAfterFire(t *testing.T) {
	m := NewManual(t0)
	tm := m.AfterFunc(time.Millisecond, func() {})
	m.Advance(time.Millisecond)
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestManualCallbackSeesDeadlineTime(t *testing.T) {
	m := NewManual(t0)
	var at time.Time
	m.AfterFunc(3*time.Millisecond, func() { at = m.Now() })
	m.Advance(time.Minute)
	if !at.Equal(t0.Add(3 * time.Millisecond)) {
		t.Fatalf("callback saw %v", at)
	}
}

func TestManualCascade(t *testing.T) {
	m := NewManual(t0)
	var hits []time.Duration
	m.AfterFunc(time.Millisecond, func() {
		hits = append(hits, m.Now().Sub(t0))
		m.AfterFunc(time.Millisecond, func() {
			hits = append(hits, m.Now().Sub(t0))
		})
	})
	m.Advance(5 * time.Millisecond)
	if len(hits) != 2 || hits[0] != time.Millisecond || hits[1] != 2*time.Millisecond {
		t.Fatalf("hits = %v", hits)
	}
}

func TestManualCascadeBeyondWindowDefers(t *testing.T) {
	m := NewManual(t0)
	outer, inner := false, false
	m.AfterFunc(time.Millisecond, func() {
		outer = true
		m.AfterFunc(time.Hour, func() { inner = true })
	})
	m.Advance(2 * time.Millisecond)
	if !outer || inner {
		t.Fatalf("outer=%v inner=%v", outer, inner)
	}
	m.Advance(time.Hour)
	if !inner {
		t.Fatal("inner never fired")
	}
}

func TestManualZeroAdvanceFiresDue(t *testing.T) {
	m := NewManual(t0)
	fired := false
	m.AfterFunc(0, func() { fired = true })
	m.Advance(0)
	if !fired {
		t.Fatal("due timer did not fire on Advance(0)")
	}
}

func TestAdvanceToPastIsNoop(t *testing.T) {
	m := NewManual(t0)
	m.Advance(time.Second)
	m.AdvanceTo(t0)
	if !m.Now().Equal(t0.Add(time.Second)) {
		t.Fatal("AdvanceTo moved clock backwards")
	}
}

func TestNextDeadline(t *testing.T) {
	m := NewManual(t0)
	if _, ok := m.NextDeadline(); ok {
		t.Fatal("empty clock reported a deadline")
	}
	tm := m.AfterFunc(2*time.Millisecond, func() {})
	m.AfterFunc(5*time.Millisecond, func() {})
	if d, ok := m.NextDeadline(); !ok || !d.Equal(t0.Add(2*time.Millisecond)) {
		t.Fatalf("NextDeadline = %v, %v", d, ok)
	}
	tm.Stop()
	if d, ok := m.NextDeadline(); !ok || !d.Equal(t0.Add(5*time.Millisecond)) {
		t.Fatalf("after stop: NextDeadline = %v, %v", d, ok)
	}
}

func TestPendingCount(t *testing.T) {
	m := NewManual(t0)
	a := m.AfterFunc(time.Millisecond, func() {})
	m.AfterFunc(time.Millisecond, func() {})
	if m.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d", m.PendingCount())
	}
	a.Stop()
	if m.PendingCount() != 1 {
		t.Fatalf("after stop: PendingCount = %d", m.PendingCount())
	}
	m.Advance(time.Millisecond)
	if m.PendingCount() != 0 {
		t.Fatalf("after fire: PendingCount = %d", m.PendingCount())
	}
}

func TestManualConcurrentSchedule(t *testing.T) {
	m := NewManual(t0)
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.AfterFunc(time.Millisecond, func() {
				mu.Lock()
				fired++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	m.Advance(time.Millisecond)
	if fired != 50 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	done := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported true")
	}
	if c.Now().IsZero() {
		t.Fatal("Real.Now is zero")
	}
}

// Property: advancing in arbitrary increments fires the same timers at
// the same deadlines as a single big advance.
func TestQuickAdvanceSplitEquivalence(t *testing.T) {
	f := func(deadlines []uint16, steps []uint8) bool {
		if len(deadlines) > 20 {
			deadlines = deadlines[:20]
		}
		run := func(split bool) []time.Duration {
			m := NewManual(t0)
			var fired []time.Duration
			for _, d := range deadlines {
				m.AfterFunc(time.Duration(d)*time.Microsecond, func() {
					fired = append(fired, m.Now().Sub(t0))
				})
			}
			total := 70000 * time.Microsecond
			if split {
				var acc time.Duration
				for _, s := range steps {
					step := time.Duration(s) * time.Microsecond
					if acc+step > total {
						break
					}
					m.Advance(step)
					acc += step
				}
				m.Advance(total - acc)
			} else {
				m.Advance(total)
			}
			return fired
		}
		one, many := run(false), run(true)
		if len(one) != len(many) {
			return false
		}
		for i := range one {
			if one[i] != many[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

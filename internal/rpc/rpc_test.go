package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"paccel/internal/core"
	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

// pair dials two accelerated endpoints on an instantaneous network.
func pair(t *testing.T) (client, server *core.Conn) {
	t.Helper()
	net := netsim.New(vclock.Real{}, netsim.Config{})
	epA, err := core.NewEndpoint(core.Config{Transport: net.Endpoint("A")})
	if err != nil {
		t.Fatal(err)
	}
	epB, err := core.NewEndpoint(core.Config{Transport: net.Endpoint("B")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { epA.Close(); epB.Close() })
	a, err := epA.Dial(core.PeerSpec{Addr: "B", LocalID: []byte("cli"), RemoteID: []byte("srv"), LocalPort: 1, RemotePort: 2, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(core.PeerSpec{Addr: "A", LocalID: []byte("srv"), RemoteID: []byte("cli"), LocalPort: 2, RemotePort: 1, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestCallResponse(t *testing.T) {
	a, b := pair(t)
	Serve(b, func(req []byte) []byte { return append([]byte("pong:"), req...) })
	c := NewClient(a)
	defer c.Close()
	resp, err := c.Call([]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("pong:ping")) {
		t.Fatalf("resp = %q", resp)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestSequentialCalls(t *testing.T) {
	a, b := pair(t)
	Serve(b, func(req []byte) []byte { return req })
	c := NewClient(a)
	defer c.Close()
	for i := 0; i < 200; i++ {
		req := []byte(fmt.Sprintf("r%d", i))
		resp, err := c.Call(req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, req) {
			t.Fatalf("call %d: %q", i, resp)
		}
	}
	// The fast path carried nearly everything.
	// (First message each way bears the identification.)
}

func TestConcurrentCalls(t *testing.T) {
	a, b := pair(t)
	Serve(b, func(req []byte) []byte { return req })
	c := NewClient(a)
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				req := []byte(fmt.Sprintf("g%d-i%d", g, i))
				resp, err := c.CallTimeout(req, 5*time.Second)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, req) {
					errs <- fmt.Errorf("correlation broke: sent %q got %q", req, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCallTimeout(t *testing.T) {
	a, _ := pair(t) // no Serve: requests vanish into the void
	c := NewClient(a)
	defer c.Close()
	start := time.Now()
	_, err := c.CallTimeout([]byte("x"), 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took too long")
	}
	if c.Pending() != 0 {
		t.Fatal("timed-out call leaked")
	}
}

func TestClientClose(t *testing.T) {
	a, b := pair(t)
	Serve(b, func(req []byte) []byte { return req })
	c := NewClient(a)
	c.Close()
	if _, err := c.Call([]byte("x")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameCodec(t *testing.T) {
	f := encodeFrame(42, true, []byte("body"))
	id, resp, body, err := decodeFrame(f)
	if err != nil || id != 42 || !resp || !bytes.Equal(body, []byte("body")) {
		t.Fatalf("round trip: %d %v %q %v", id, resp, body, err)
	}
	if _, _, _, err := decodeFrame([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestStrayFramesIgnored(t *testing.T) {
	a, b := pair(t)
	Serve(b, func(req []byte) []byte { return req })
	c := NewClient(a)
	defer c.Close()
	// A response with an unknown id and a short frame must both be
	// ignored without panic; then a real call still works.
	if err := b.Send(encodeFrame(9999, true, []byte("stray"))); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.CallTimeout([]byte("after-noise"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("after-noise")) {
		t.Fatalf("resp = %q", resp)
	}
}

func TestOverLossyNetwork(t *testing.T) {
	// RPCs over a lossy link: the stack's retransmission makes calls
	// reliable; only the deadline bounds them.
	clkNet := netsim.New(vclock.Real{}, netsim.Config{LossRate: 0.2, Seed: 3})
	epA, err := core.NewEndpoint(core.Config{Transport: clkNet.Endpoint("A")})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := core.NewEndpoint(core.Config{Transport: clkNet.Endpoint("B")})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	mk := func(ep *core.Endpoint, addr string, lp, rp uint16, l, r string) *core.Conn {
		c, err := ep.Dial(core.PeerSpec{Addr: addr, LocalID: []byte(l), RemoteID: []byte(r), LocalPort: lp, RemotePort: rp, Epoch: 1})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := mk(epA, "B", 1, 2, "cli", "srv")
	b := mk(epB, "A", 2, 1, "srv", "cli")
	Serve(b, func(req []byte) []byte { return req })
	c := NewClient(a)
	defer c.Close()
	for i := 0; i < 30; i++ {
		req := []byte(fmt.Sprintf("lossy-%d", i))
		resp, err := c.CallTimeout(req, 10*time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(resp, req) {
			t.Fatalf("call %d: %q", i, resp)
		}
	}
}

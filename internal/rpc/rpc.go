// Package rpc provides request/response calls over accelerated
// connections — the workload of the paper's §6 "Maximum Load" discussion
// ("a server that uses a PA for each client", RPCs bounded by
// post-processing). It correlates concurrent in-flight calls, applies
// deadlines, and keeps the PA's fast path hot: a call is two small
// messages, each predicted after the first exchange.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Conn is the connection surface rpc needs; *core.Conn satisfies it.
type Conn interface {
	Send(payload []byte) error
	OnDeliver(fn func(payload []byte))
}

// Errors returned by Call.
var (
	// ErrTimeout reports a call that exceeded its deadline.
	ErrTimeout = errors.New("rpc: call timed out")
	// ErrClientClosed reports calls on a closed client.
	ErrClientClosed = errors.New("rpc: client closed")
)

// Frame layout: id(8) | flags(1) | body. Flag bit 0 distinguishes
// responses from requests.
const (
	headerLen    = 9
	flagResponse = 1
)

func encodeFrame(id uint64, response bool, body []byte) []byte {
	f := make([]byte, headerLen+len(body))
	binary.BigEndian.PutUint64(f, id)
	if response {
		f[8] = flagResponse
	}
	copy(f[headerLen:], body)
	return f
}

func decodeFrame(f []byte) (id uint64, response bool, body []byte, err error) {
	if len(f) < headerLen {
		return 0, false, nil, fmt.Errorf("rpc: short frame (%d bytes)", len(f))
	}
	return binary.BigEndian.Uint64(f), f[8]&flagResponse != 0, f[headerLen:], nil
}

// Client issues calls over one connection. It is safe for concurrent use;
// calls may be in flight simultaneously (the window permits 16).
type Client struct {
	conn Conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan []byte
	closed  bool

	// DefaultTimeout bounds Call when no deadline is set; zero means
	// wait forever.
	DefaultTimeout time.Duration
}

// NewClient wraps an accelerated connection. It takes over the
// connection's delivery callback.
func NewClient(conn Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan []byte)}
	conn.OnDeliver(c.onDeliver)
	return c
}

func (c *Client) onDeliver(payload []byte) {
	id, response, body, err := decodeFrame(payload)
	if err != nil || !response {
		return // not ours: a stray request or noise
	}
	c.mu.Lock()
	ch := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ch != nil {
		ch <- append([]byte(nil), body...)
	}
}

// Call sends a request and waits for its response.
func (c *Client) Call(req []byte) ([]byte, error) {
	return c.CallTimeout(req, c.DefaultTimeout)
}

// CallTimeout is Call with an explicit deadline (zero: wait forever).
func (c *Client) CallTimeout(req []byte, timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan []byte, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.conn.Send(encodeFrame(id, false, req)); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-timeoutCh:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w after %v", ErrTimeout, timeout)
	}
}

// Pending returns the number of in-flight calls.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Close fails all in-flight and future calls.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

// Handler computes a response body from a request body. It runs on the
// delivery path; long handlers should hand off to their own goroutines
// and respond via the returned payload only when ready (or use Serve on a
// worker pool above this layer).
type Handler func(req []byte) (resp []byte)

// Serve attaches a handler to a server-side connection: every incoming
// request frame is answered on the same connection. It returns the
// detach function.
func Serve(conn Conn, h Handler) {
	conn.OnDeliver(func(payload []byte) {
		id, response, body, err := decodeFrame(payload)
		if err != nil || response {
			return
		}
		resp := h(body)
		_ = conn.Send(encodeFrame(id, true, resp))
	})
}

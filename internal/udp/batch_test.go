package udp

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSendBatchLoopback sends one burst through SendBatch and checks
// every datagram arrives intact, in order, with the right source — on
// Linux this exercises the raw sendmmsg path into the recvmmsg ring.
func TestSendBatchLoopback(t *testing.T) {
	a, b := pair(t)
	const burst = 16
	datagrams := make([][]byte, burst)
	for i := range datagrams {
		datagrams[i] = []byte(fmt.Sprintf("batch-datagram-%02d", i))
	}

	type rx struct {
		src  string
		data []byte
	}
	got := make(chan rx, burst)
	b.SetHandler(func(src string, data []byte) {
		got <- rx{src, append([]byte(nil), data...)}
	})

	sent, err := a.SendBatch(b.LocalAddr(), datagrams)
	if err != nil || sent != burst {
		t.Fatalf("SendBatch = (%d, %v), want (%d, nil)", sent, err, burst)
	}
	for i := 0; i < burst; i++ {
		select {
		case r := <-got:
			if !bytes.Equal(r.data, datagrams[i]) {
				t.Fatalf("datagram %d = %q, want %q", i, r.data, datagrams[i])
			}
			if r.src != a.LocalAddr() {
				t.Fatalf("datagram %d src = %q, want %q", i, r.src, a.LocalAddr())
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout after %d/%d datagrams", i, burst)
		}
	}
	st := a.Stats()
	if st.BatchSends != 1 || st.BatchDatagrams != burst {
		t.Fatalf("sender stats = %+v, want BatchSends=1 BatchDatagrams=%d", st, burst)
	}
	if vectorized() {
		if rb := b.Stats(); rb.RecvDatagrams != burst || rb.BatchRecvs == 0 {
			t.Fatalf("receiver stats = %+v, want RecvDatagrams=%d BatchRecvs>0", rb, burst)
		}
		batches, dgs := b.RecvBatchStats()
		if batches == 0 || dgs != burst {
			t.Fatalf("RecvBatchStats = (%d, %d), want (>0, %d)", batches, dgs, burst)
		}
	}
}

// vectorized reports whether this build runs the raw sendmmsg/recvmmsg
// path (the build-tag matrix of mmsg_linux.go).
func vectorized() bool {
	return runtime.GOOS == "linux" &&
		(runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64")
}

// TestSendBatchSingleFlightResolve checks the batch path resolves its
// destination once, not once per datagram — and shares that resolution
// with concurrent batches to the same new peer.
func TestSendBatchSingleFlightResolve(t *testing.T) {
	var resolves atomic.Int64
	release := make(chan struct{})
	orig := resolveUDPAddr
	resolveUDPAddr = func(network, addr string) (*net.UDPAddr, error) {
		resolves.Add(1)
		<-release
		return net.ResolveUDPAddr(network, addr)
	}
	defer func() { resolveUDPAddr = orig }()

	a, b := pair(t)
	datagrams := make([][]byte, 16)
	for i := range datagrams {
		datagrams[i] = []byte("single-flight")
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if sent, err := a.SendBatch(b.LocalAddr(), datagrams); err != nil || sent != 16 {
				t.Errorf("SendBatch = (%d, %v), want (16, nil)", sent, err)
			}
		}()
	}
	// Let every goroutine reach the resolver before releasing it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := resolves.Load(); got != 1 {
		t.Fatalf("resolver called %d times for 4 concurrent 16-datagram batches, want 1", got)
	}
}

// TestSendBatchOversizedMidBatch checks the prefix contract around an
// oversized datagram: everything before it is transmitted, sent names its
// index, and the error is the same ErrDatagramTooLarge Send reports.
func TestSendBatchOversizedMidBatch(t *testing.T) {
	a, b := pair(t)
	var count atomic.Int64
	b.SetHandler(func(string, []byte) { count.Add(1) })
	datagrams := [][]byte{
		[]byte("ok-0"),
		[]byte("ok-1"),
		make([]byte, MaxDatagram+1),
		[]byte("never-sent"),
	}
	sent, err := a.SendBatch(b.LocalAddr(), datagrams)
	if sent != 2 {
		t.Fatalf("sent = %d, want 2", sent)
	}
	if !errors.Is(err, ErrDatagramTooLarge) {
		t.Fatalf("err = %v, want ErrDatagramTooLarge", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for count.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := count.Load(); got != 2 {
		t.Fatalf("receiver saw %d datagrams, want 2", got)
	}
	if st := a.Stats(); st.BatchDatagrams != 2 {
		t.Fatalf("BatchDatagrams = %d, want 2 (only the transmitted prefix)", st.BatchDatagrams)
	}
}

// TestSendBatchEmptyAndZeroLength covers the edges: an empty batch is a
// no-op success, and a zero-length datagram inside a batch is delivered.
func TestSendBatchEmptyAndZeroLength(t *testing.T) {
	a, b := pair(t)
	if sent, err := a.SendBatch(b.LocalAddr(), nil); sent != 0 || err != nil {
		t.Fatalf("empty SendBatch = (%d, %v), want (0, nil)", sent, err)
	}
	lens := make(chan int, 3)
	b.SetHandler(func(_ string, d []byte) { lens <- len(d) })
	sent, err := a.SendBatch(b.LocalAddr(), [][]byte{[]byte("x"), {}, []byte("yz")})
	if sent != 3 || err != nil {
		t.Fatalf("SendBatch = (%d, %v), want (3, nil)", sent, err)
	}
	for _, want := range []int{1, 0, 2} {
		select {
		case got := <-lens:
			if got != want {
				t.Fatalf("datagram length = %d, want %d", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("timeout")
		}
	}
}

// TestSendBatchClosed checks SendBatch fails cleanly after Close.
func TestSendBatchClosed(t *testing.T) {
	a, b := pair(t)
	a.Close()
	sent, err := a.SendBatch(b.LocalAddr(), [][]byte{[]byte("late")})
	if sent != 0 || !errors.Is(err, ErrClosed) {
		t.Fatalf("SendBatch after Close = (%d, %v), want (0, ErrClosed)", sent, err)
	}
}

// TestSendBatchLargeBurstChunks pushes a burst past the sendmmsg chunk
// size so the chunking/continuation loop is exercised (and the portable
// loop on other platforms).
func TestSendBatchLargeBurstChunks(t *testing.T) {
	a, b := pair(t)
	const burst = 150 // > 2 chunks of 64
	var count atomic.Int64
	b.SetHandler(func(string, []byte) { count.Add(1) })
	datagrams := make([][]byte, burst)
	for i := range datagrams {
		datagrams[i] = []byte(fmt.Sprintf("chunk-%03d", i))
	}
	sent, err := a.SendBatch(b.LocalAddr(), datagrams)
	if err != nil || sent != burst {
		t.Fatalf("SendBatch = (%d, %v), want (%d, nil)", sent, err, burst)
	}
	// Loopback UDP can in principle drop under pressure; in practice the
	// full burst arrives. Wait for it rather than assert immediately.
	deadline := time.Now().Add(2 * time.Second)
	for count.Load() < burst && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := count.Load(); got != burst {
		t.Fatalf("receiver saw %d datagrams, want %d", got, burst)
	}
}

package udp

// Receive-side sharding (DESIGN.md §13): ListenSharded stacks N
// SO_REUSEPORT sockets on one UDP port, each with its own pinned
// vectorized read loop and offload probe, so receive processing scales
// across cores without a central dispatch hop — the kernel's REUSEPORT
// flow hash plays the role of the NIC's receive-side dispatcher, and
// each queue's handler delivers straight into the engine's sharded
// cookie router (which is safe for concurrent receives by contract).

import (
	"errors"
	"fmt"

	"paccel/internal/telemetry"
)

// errShardingUnsupported is the sentinel the per-platform listenReusePort
// returns where SO_REUSEPORT stacking is unavailable; ListenSharded then
// degrades to a single plain socket.
var errShardingUnsupported = errors.New("udp: SO_REUSEPORT sharding unsupported on this platform")

// Sharded is a multi-queue datagram endpoint: N transports bound to the
// same local port. Receives fan in from every queue's read loop
// concurrently; sends hash the destination to a fixed queue, so one
// peer's traffic keeps a single source socket and in-order submission.
// It satisfies the same engine contracts as Transport (core.Transport,
// BatchTransport, RecvBatcher, Coalescer) plus core.MultiQueueTransport.
type Sharded struct {
	queues []*Transport
}

// ListenSharded opens n SO_REUSEPORT sockets on addr, each with its own
// pinned read loop and kernel-offload probe. n < 1 is treated as 1. On
// platforms without SO_REUSEPORT support it degrades to one plain
// socket (NumQueues reports 1) rather than failing — the offload tier is
// an accelerator, never a requirement.
func ListenSharded(addr string, n int) (*Sharded, error) {
	return ListenShardedWithOptions(addr, n, Options{})
}

// ListenShardedWithOptions is ListenSharded with explicit offload
// control for every queue.
func ListenShardedWithOptions(addr string, n int, opts Options) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	first, err := listenReusePort(addr)
	if err != nil {
		if !errors.Is(err, errShardingUnsupported) {
			return nil, err
		}
		t, err := ListenWithOptions(addr, opts)
		if err != nil {
			return nil, err
		}
		return &Sharded{queues: []*Transport{t}}, nil
	}
	s := &Sharded{queues: make([]*Transport, 0, n)}
	s.queues = append(s.queues, newTransport(first, opts, true))
	// addr may have been ":0"; later queues must bind the concrete
	// address the first socket drew.
	bound := first.LocalAddr().String()
	for len(s.queues) < n {
		conn, err := listenReusePort(bound)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("udp: sharded listen queue %d: %w", len(s.queues), err)
		}
		s.queues = append(s.queues, newTransport(conn, opts, true))
	}
	return s, nil
}

// NumQueues implements core.MultiQueueTransport.
func (s *Sharded) NumQueues() int { return len(s.queues) }

// QueueRecvStats implements core.MultiQueueTransport: the receive-side
// counters of queue i, exposing how evenly the kernel's REUSEPORT flow
// hash spreads the load.
func (s *Sharded) QueueRecvStats(i int) (batches, datagrams uint64) {
	return s.queues[i].RecvBatchStats()
}

// Queue returns the i'th underlying transport (tests and diagnostics).
func (s *Sharded) Queue(i int) *Transport { return s.queues[i] }

// LocalAddr returns the shared bound address in host:port form.
func (s *Sharded) LocalAddr() string { return s.queues[0].LocalAddr() }

// SetHandler installs the receive callback on every queue. Handlers run
// concurrently, one goroutine per queue; the borrow-only buffer contract
// is per call, as with Transport.
func (s *Sharded) SetHandler(h func(src string, datagram []byte)) {
	for _, q := range s.queues {
		q.SetHandler(h)
	}
}

// queue hashes dst to its sending queue (FNV-1a). A stable mapping keeps
// each peer on one source socket, preserving per-peer send ordering and
// letting every queue's peer cache stay small.
func (s *Sharded) queue(dst string) *Transport {
	if len(s.queues) == 1 {
		return s.queues[0]
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(dst); i++ {
		h ^= uint64(dst[i])
		h *= 1099511628211
	}
	return s.queues[h%uint64(len(s.queues))]
}

// Send transmits one datagram to dst via its hashed queue.
func (s *Sharded) Send(dst string, datagram []byte) error {
	return s.queue(dst).Send(dst, datagram)
}

// SendBatch drains the burst via dst's hashed queue; the BatchTransport
// prefix contract is the queue's.
func (s *Sharded) SendBatch(dst string, datagrams [][]byte) (sent int, err error) {
	return s.queue(dst).SendBatch(dst, datagrams)
}

// SendBatchTo transmits a scattered-destination burst, the engine's
// BatchToTransport contract. Destinations are hashed to their queues
// exactly as Send would, and consecutive same-queue runs ride one
// vectorized call each, so a sorted fanout over few queues keeps most of
// the syscall amortization.
func (s *Sharded) SendBatchTo(dsts []string, datagrams [][]byte) (sent int, err error) {
	if len(dsts) != len(datagrams) {
		return 0, fmt.Errorf("udp: SendBatchTo: %d dsts for %d datagrams", len(dsts), len(datagrams))
	}
	for sent < len(dsts) {
		q := s.queue(dsts[sent])
		j := sent + 1
		for j < len(dsts) && s.queue(dsts[j]) == q {
			j++
		}
		n, err := q.SendBatchTo(dsts[sent:j], datagrams[sent:j])
		sent += n
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}

// Offload reports queue 0's offload state (every queue probes the same
// kernel, so the verdicts agree; a per-queue sticky GSO fallback can
// diverge, which per-queue Stats expose).
func (s *Sharded) Offload() (gso, gro bool) { return s.queues[0].Offload() }

// Coalescible implements core.Coalescer; see Transport.Coalescible.
func (s *Sharded) Coalescible() bool { return s.queues[0].Coalescible() }

// Stats returns the aggregate counters summed across queues.
func (s *Sharded) Stats() Stats {
	var agg Stats
	for _, q := range s.queues {
		st := q.Stats()
		agg.BatchSends += st.BatchSends
		agg.BatchDatagrams += st.BatchDatagrams
		agg.BatchRecvs += st.BatchRecvs
		agg.RecvDatagrams += st.RecvDatagrams
		agg.TxSyscalls += st.TxSyscalls
		agg.RxSyscalls += st.RxSyscalls
		agg.GsoSends += st.GsoSends
		agg.GsoSegments += st.GsoSegments
		agg.GsoFallbacks += st.GsoFallbacks
		agg.GroRecvs += st.GroRecvs
		agg.GroSegments += st.GroSegments
		agg.RecvErrors += st.RecvErrors
		agg.PeerEvictions += st.PeerEvictions
	}
	return agg
}

// RecvBatchStats implements core.RecvBatcher with the sum across queues.
func (s *Sharded) RecvBatchStats() (batches, datagrams uint64) {
	for _, q := range s.queues {
		b, d := q.RecvBatchStats()
		batches += b
		datagrams += d
	}
	return batches, datagrams
}

// SetTelemetry installs one recorder on every queue (events carry the
// same transport scope; per-queue attribution is in QueueRecvStats).
func (s *Sharded) SetTelemetry(rec *telemetry.Recorder) {
	for _, q := range s.queues {
		q.SetTelemetry(rec)
	}
}

// Close shuts every queue down, returning the first error.
func (s *Sharded) Close() error {
	var first error
	for _, q := range s.queues {
		if err := q.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Package udp adapts real UDP sockets to the same unreliable datagram
// contract as package netsim, so the Protocol Accelerator can run between
// OS processes (cmd/paping). UDP is the closest commodity stand-in for the
// paper's U-Net interface: message-oriented, unreliable, unordered.
//
// On Linux (amd64/arm64) the transport is vectorized: SendBatch drains a
// burst of datagrams with one sendmmsg system call, and the receive loop
// reads with recvmmsg into a pooled buffer ring, so the per-datagram
// syscall cost is amortized over the bursts the engine's flush paths
// produce. Every other platform keeps the portable per-datagram loop
// behind the same interface (see DESIGN.md §11 for the build-tag matrix).
//
// On kernels that support it, a further offload tier rides on top
// (DESIGN.md §13): equal-size runs inside a SendBatch burst are coalesced
// into UDP_SEGMENT super-datagrams the kernel segments (one header
// traversal for the whole run), the receive loop enables UDP_GRO and
// splits coalesced payloads back into datagrams, and ListenSharded opens
// N SO_REUSEPORT sockets on one port with independent pinned read loops.
// Both offloads are probed at Listen and degrade to the vectorized (then
// portable) tier when the kernel or path refuses.
package udp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"

	"paccel/internal/telemetry"
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("udp: transport closed")

// ErrDatagramTooLarge is returned (wrapped, with the sizes) by Send for
// datagrams over MaxDatagram.
var ErrDatagramTooLarge = errors.New("udp: datagram too large")

// MaxDatagram is the largest datagram Send accepts: the real UDP payload
// ceiling, 65535 minus the 8-byte UDP header and 20-byte IPv4 header.
// The protocol stack's fragmentation layer must split anything larger.
const MaxDatagram = 65507

// defaultPeerCacheLimit bounds the resolved-peer cache: under peer churn
// (a million distinct short-lived sources) an unbounded cache is a slow
// OOM. peerCacheLimit is a var so tests can shrink it.
const defaultPeerCacheLimit = 4096

var peerCacheLimit = defaultPeerCacheLimit

// resolveUDPAddr is swappable in tests to observe and stall resolution.
var resolveUDPAddr = net.ResolveUDPAddr

// debugGenericRead forces the portable per-datagram receive loop on the
// vectorized platforms; tests use it to drive both loops on one
// platform (with the offloads disabled — the generic loop cannot split
// GRO payloads). Set before Listen. No-op on the fallback build, which
// only has the generic loop.
var debugGenericRead = false

// Options tunes Listen beyond its defaults. The zero value enables every
// offload the kernel supports.
type Options struct {
	// DisableGSO skips the UDP_SEGMENT probe, pinning the transport to
	// plain sendmmsg batching (the benchmark control arm).
	DisableGSO bool
	// DisableGRO skips enabling UDP_GRO on the socket, so the kernel
	// never delivers coalesced payloads.
	DisableGRO bool
}

// Transport is an unreliable datagram endpoint over a UDP socket. Its
// Send/SetHandler/LocalAddr/Close surface mirrors netsim.Endpoint, keyed
// by string addresses in host:port form. It additionally implements the
// engine's batched-send contract (core.BatchTransport) via SendBatch.
type Transport struct {
	conn *net.UDPConn
	opts Options

	// rc is the conn's raw-access handle, fetched once at Listen:
	// net.UDPConn.SyscallConn allocates a fresh one per call, and the
	// zero-alloc batch send path runs per engine flush.
	rc syscall.RawConn

	// family is the socket's address family (AF_INET/AF_INET6), learned
	// once at Listen on the vectorized platforms so sendmmsg builds the
	// right raw sockaddr (a dual-stack socket needs v4-mapped targets).
	// Zero means unknown; the batch path then falls back to the loop.
	family uint16

	// Kernel-offload state (DESIGN.md §13), probed at Listen. gsoOn is
	// atomic because a kernel or path-MTU refusal mid-send clears it
	// (sticky fallback) while other sends are in flight; gsoProbed keeps
	// the original probe verdict. groOn is written before the read loop
	// starts and never again.
	gsoProbed bool
	groOn     bool
	gsoOn     atomic.Bool

	// pinned makes the receive goroutine lock its OS thread; set for
	// ListenSharded's per-queue read loops.
	pinned bool

	stats transportStats

	// tel receives transport-fault events (socket send errors, oversized
	// datagrams); nil disables. Atomic so SetTelemetry is safe while
	// sends are in flight.
	tel atomic.Pointer[telemetry.Recorder]

	mu        sync.Mutex
	handler   func(src string, datagram []byte)
	peers     map[string]*net.UDPAddr
	resolving map[string]*resolveOp
	closed    bool
	done      chan struct{}
}

// transportStats are the vectorized-I/O counters, atomics because sends
// and the receive loop touch them concurrently.
type transportStats struct {
	batchSends     atomic.Uint64
	batchDatagrams atomic.Uint64
	batchRecvs     atomic.Uint64
	recvDatagrams  atomic.Uint64

	// Syscall accounting for the syscalls/datagram metric (pabench -exp
	// gso): every send/recv system call actually issued, including ones
	// that returned EAGAIN.
	txSyscalls atomic.Uint64
	rxSyscalls atomic.Uint64

	// Offload counters (DESIGN.md §13).
	gsoSends     atomic.Uint64
	gsoSegments  atomic.Uint64
	gsoFallbacks atomic.Uint64
	groRecvs     atomic.Uint64
	groSegments  atomic.Uint64

	// recvErrors counts transient receive-syscall errnos the read loop
	// survived (ENOBUFS under memory pressure and the like).
	recvErrors atomic.Uint64

	// peerEvictions counts resolved-peer cache entries dropped at the
	// cache cap.
	peerEvictions atomic.Uint64
}

// Stats is a snapshot of the transport's vectorized-I/O and offload
// counters.
type Stats struct {
	BatchSends     uint64 // SendBatch calls issued
	BatchDatagrams uint64 // datagrams those calls transmitted
	BatchRecvs     uint64 // batched reads completed (recvmmsg returns)
	RecvDatagrams  uint64 // datagrams those reads carried (GRO segments included)

	TxSyscalls uint64 // send system calls issued (sendmmsg/sendmsg/sendto)
	RxSyscalls uint64 // receive system calls issued (recvmmsg/recvfrom)

	GsoSends     uint64 // UDP_SEGMENT super-datagrams transmitted
	GsoSegments  uint64 // datagrams coalesced into them
	GsoFallbacks uint64 // sticky GSO fallbacks (kernel or path refused)
	GroRecvs     uint64 // coalesced payloads the receive loop split
	GroSegments  uint64 // datagrams recovered from them

	RecvErrors    uint64 // transient receive errnos survived by the read loop
	PeerEvictions uint64 // resolved-peer cache evictions at the cap
}

// Stats returns a snapshot of the transport's counters. On platforms
// without sendmmsg/recvmmsg, BatchSends/BatchDatagrams still count the
// (looped) SendBatch calls and RecvDatagrams counts the per-datagram
// reads, while the batch-recv and offload counters stay zero.
func (t *Transport) Stats() Stats {
	return Stats{
		BatchSends:     t.stats.batchSends.Load(),
		BatchDatagrams: t.stats.batchDatagrams.Load(),
		BatchRecvs:     t.stats.batchRecvs.Load(),
		RecvDatagrams:  t.stats.recvDatagrams.Load(),
		TxSyscalls:     t.stats.txSyscalls.Load(),
		RxSyscalls:     t.stats.rxSyscalls.Load(),
		GsoSends:       t.stats.gsoSends.Load(),
		GsoSegments:    t.stats.gsoSegments.Load(),
		GsoFallbacks:   t.stats.gsoFallbacks.Load(),
		GroRecvs:       t.stats.groRecvs.Load(),
		GroSegments:    t.stats.groSegments.Load(),
		RecvErrors:     t.stats.recvErrors.Load(),
		PeerEvictions:  t.stats.peerEvictions.Load(),
	}
}

// Offload reports the kernel-offload state: gso is true while
// UDP_SEGMENT coalescing is active (probed at Listen; a kernel or
// path-MTU refusal clears it for the life of the transport), gro while
// the socket delivers UDP_GRO-coalesced payloads the receive loop splits.
func (t *Transport) Offload() (gso, gro bool) {
	return t.gsoOn.Load(), t.groOn
}

// Coalescible implements core.Coalescer: the engine's flush path keeps
// equal-size runs contiguous when the send offload can coalesce them.
func (t *Transport) Coalescible() bool { return t.gsoOn.Load() }

// SetTelemetry installs a recorder: socket send failures, oversized
// datagrams, offload fallbacks and transient receive errors append
// EventFault entries to its event ring (transport-scoped, connection 0),
// and installation itself records the Listen-time offload-probe verdict
// as an EventState. Nil uninstalls.
func (t *Transport) SetTelemetry(rec *telemetry.Recorder) {
	t.tel.Store(rec)
	if rec != nil {
		rec.Event(telemetry.EventState, 0, t.offloadCause())
	}
}

// Constant fault causes; the error paths may run per datagram under load.
const (
	causeSendError   = "udp: socket send error"
	causeTooLarge    = "udp: datagram exceeds UDP payload ceiling"
	causeRecvError   = "udp: transient receive error"
	causeGsoFallback = "udp: kernel refused UDP_SEGMENT; sendmmsg fallback"

	causeOffloadBoth = "udp: offload probe: gso+gro"
	causeOffloadGSO  = "udp: offload probe: gso only"
	causeOffloadGRO  = "udp: offload probe: gro only"
	causeOffloadNone = "udp: offload probe: unsupported"
)

// offloadCause maps the probe verdict to its constant event cause.
func (t *Transport) offloadCause() string {
	gso, gro := t.Offload()
	switch {
	case gso && gro:
		return causeOffloadBoth
	case gso:
		return causeOffloadGSO
	case gro:
		return causeOffloadGRO
	}
	return causeOffloadNone
}

// RecvBatchStats implements the engine's optional RecvBatcher interface.
func (t *Transport) RecvBatchStats() (batches, datagrams uint64) {
	return t.stats.batchRecvs.Load(), t.stats.recvDatagrams.Load()
}

// resolveOp is the single-flight state for one in-progress resolution:
// concurrent Sends to the same unresolved peer wait on done instead of
// issuing duplicate resolver queries.
type resolveOp struct {
	done chan struct{}
	addr *net.UDPAddr
	err  error
}

// Listen opens a UDP socket on addr ("127.0.0.1:0" for an ephemeral port)
// and starts the receive loop, with every kernel offload the probe finds.
func Listen(addr string) (*Transport, error) {
	return ListenWithOptions(addr, Options{})
}

// ListenWithOptions is Listen with explicit offload control.
func ListenWithOptions(addr string, opts Options) (*Transport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	return newTransport(conn, opts, false), nil
}

// newTransport wraps an already-bound socket: the common body of Listen
// and ListenSharded. pinned read loops lock their OS thread.
func newTransport(conn *net.UDPConn, opts Options, pinned bool) *Transport {
	t := &Transport{
		conn:      conn,
		opts:      opts,
		pinned:    pinned,
		peers:     make(map[string]*net.UDPAddr),
		resolving: make(map[string]*resolveOp),
		done:      make(chan struct{}),
	}
	t.initOS()
	go t.readLoop()
	return t
}

// LocalAddr returns the bound address in host:port form.
func (t *Transport) LocalAddr() string { return t.conn.LocalAddr().String() }

// SetHandler installs the receive callback. It runs on the transport's
// receive goroutine; the datagram slice is the transport's receive buffer
// and is only valid for the duration of the call — the handler must copy
// anything it retains.
func (t *Transport) SetHandler(h func(src string, datagram []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// resolve returns the cached address for dst, resolving it once if
// needed. Destination addresses are resolved once and cached; concurrent
// callers for the same new peer share a single resolution, and a batch
// resolves its destination once for the whole burst. The cache is capped
// at peerCacheLimit: past it, one arbitrary entry is evicted per insert
// (counted in Stats.PeerEvictions), so a churn storm of distinct peers
// cannot grow the transport without bound — an evicted live peer just
// pays one re-resolution on its next send.
func (t *Transport) resolve(dst string) (*net.UDPAddr, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	ua := t.peers[dst]
	if ua != nil {
		t.mu.Unlock()
		return ua, nil
	}
	op := t.resolving[dst]
	if op == nil {
		// First caller resolves; later ones wait on op.done.
		op = &resolveOp{done: make(chan struct{})}
		t.resolving[dst] = op
		t.mu.Unlock()
		op.addr, op.err = resolveUDPAddr("udp", dst)
		close(op.done)
		t.mu.Lock()
		delete(t.resolving, dst)
		// Skip the cache insert if Close won the race: a write
		// after Close would resurrect state the shutdown already
		// swept.
		if op.err == nil && !t.closed {
			if len(t.peers) >= peerCacheLimit {
				for k := range t.peers {
					delete(t.peers, k)
					t.stats.peerEvictions.Add(1)
					break
				}
			}
			t.peers[dst] = op.addr
		}
		t.mu.Unlock()
	} else {
		t.mu.Unlock()
		<-op.done
	}
	if op.err != nil {
		return nil, op.err
	}
	return op.addr, nil
}

// Send transmits one datagram to dst (host:port). Destination addresses
// are resolved once and cached; concurrent Sends to the same new peer
// share a single resolution.
func (t *Transport) Send(dst string, datagram []byte) error {
	if len(datagram) > MaxDatagram {
		t.tel.Load().Event(telemetry.EventFault, 0, causeTooLarge)
		return fmt.Errorf("%w: %d > %d", ErrDatagramTooLarge, len(datagram), MaxDatagram)
	}
	ua, err := t.resolve(dst)
	if err != nil {
		return err
	}
	t.stats.txSyscalls.Add(1)
	_, err = t.conn.WriteToUDP(datagram, ua)
	if err != nil {
		t.tel.Load().Event(telemetry.EventFault, 0, causeSendError)
	}
	return err
}

// SendBatch transmits the datagrams to dst in order — one sendmmsg
// system call per chunk on Linux (with equal-size runs coalesced into
// UDP_SEGMENT super-datagrams when the kernel offload is on), a
// WriteToUDP loop elsewhere. It implements the engine's BatchTransport
// contract: sent is the prefix of datagrams transmitted, and a non-nil
// error describes the datagram at index sent (the rest were not
// attempted). The destination is resolved once for the whole batch.
func (t *Transport) SendBatch(dst string, datagrams [][]byte) (sent int, err error) {
	if len(datagrams) == 0 {
		return 0, nil
	}
	ua, err := t.resolve(dst)
	if err != nil {
		return 0, err
	}
	t.stats.batchSends.Add(1)
	sent, err = t.sendBatchWire(ua, datagrams)
	t.stats.batchDatagrams.Add(uint64(sent))
	if err != nil {
		t.tel.Load().Event(telemetry.EventFault, 0, causeSendError)
	}
	return sent, err
}

// SendBatchTo transmits the datagrams to their per-index destinations in
// order — the engine's BatchToTransport contract (the group-fanout
// shape: one burst, every datagram bound for a different member). On
// Linux one sendmmsg system call carries up to 64 datagrams, each header
// with its own sockaddr; elsewhere it degrades to a WriteToUDP loop.
// sent is the prefix transmitted and a non-nil error describes the
// datagram at index sent. Destinations are resolved through the cached
// peer table, one lookup per datagram.
func (t *Transport) SendBatchTo(dsts []string, datagrams [][]byte) (sent int, err error) {
	if len(dsts) != len(datagrams) {
		return 0, fmt.Errorf("udp: SendBatchTo: %d dsts for %d datagrams", len(dsts), len(datagrams))
	}
	if len(datagrams) == 0 {
		return 0, nil
	}
	t.stats.batchSends.Add(1)
	sent, err = t.sendBatchToWire(dsts, datagrams)
	t.stats.batchDatagrams.Add(uint64(sent))
	if err != nil {
		t.tel.Load().Event(telemetry.EventFault, 0, causeSendError)
	}
	return sent, err
}

// sendBatchToLoop is the portable scattered-destination batch body: one
// resolve + WriteToUDP per datagram. The vectorized platform also falls
// back to it when the raw socket is unreachable.
func (t *Transport) sendBatchToLoop(dsts []string, datagrams [][]byte) (int, error) {
	for i, d := range datagrams {
		if len(d) > MaxDatagram {
			return i, fmt.Errorf("%w: %d > %d", ErrDatagramTooLarge, len(d), MaxDatagram)
		}
		ua, err := t.resolve(dsts[i])
		if err != nil {
			return i, err
		}
		t.stats.txSyscalls.Add(1)
		if _, err := t.conn.WriteToUDP(d, ua); err != nil {
			return i, err
		}
	}
	return len(datagrams), nil
}

// sendBatchLoop is the portable batch body: one WriteToUDP per datagram.
// The vectorized platforms also fall back to it for address shapes the
// raw path cannot encode (zoned IPv6).
func (t *Transport) sendBatchLoop(ua *net.UDPAddr, datagrams [][]byte) (int, error) {
	for i, d := range datagrams {
		if len(d) > MaxDatagram {
			return i, fmt.Errorf("%w: %d > %d", ErrDatagramTooLarge, len(d), MaxDatagram)
		}
		t.stats.txSyscalls.Add(1)
		if _, err := t.conn.WriteToUDP(d, ua); err != nil {
			return i, err
		}
	}
	return len(datagrams), nil
}

// Close shuts the socket down and stops the receive loop.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.done
	return err
}

// srcKeyCache caches the rendered host:port form of the receive loop's
// source address across a run of datagrams from one peer (traffic is
// typically such runs, and UDPAddr.String allocates). The key is only
// reused when IP, port AND zone all match: two link-local IPv6 peers
// with the same address on different interfaces are distinct peers, and
// conflating them would mis-attribute cookies (the vectorized loop's
// rawAddrEqual compares Scope_id for the same reason).
type srcKeyCache struct {
	addr net.UDPAddr
	key  string
}

// lookup returns the cached key when src matches the cached peer, else
// re-renders and re-caches it.
func (c *srcKeyCache) lookup(src *net.UDPAddr) string {
	if src.Port != c.addr.Port || src.Zone != c.addr.Zone || !src.IP.Equal(c.addr.IP) {
		c.addr = net.UDPAddr{IP: append(c.addr.IP[:0], src.IP...), Port: src.Port, Zone: src.Zone}
		c.key = src.String()
	}
	return c.key
}

// readLoopGeneric is the portable per-datagram receive loop; the
// vectorized platforms fall back to it when the raw socket is not
// reachable (SyscallConn failure).
func (t *Transport) readLoopGeneric() {
	buf := make([]byte, 65536)
	var cache srcKeyCache
	for {
		t.stats.rxSyscalls.Add(1)
		n, src, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		t.stats.recvDatagrams.Add(1)
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			continue
		}
		// The handler borrows the receive buffer; per the Transport
		// contract it must copy anything it retains past the call.
		h(cache.lookup(src), buf[:n])
	}
}

// splitSegments invokes emit once per segSize-long segment of payload
// (the final segment may be shorter) and reports the segment count. This
// is the GRO receive split: a kernel-coalesced payload becomes the
// original wire datagrams again, each a subslice of the receive ring —
// no copies, no allocations, same borrow-only handler contract.
func splitSegments(payload []byte, segSize int, emit func([]byte)) int {
	n := 0
	for off := 0; off < len(payload); off += segSize {
		end := off + segSize
		if end > len(payload) {
			end = len(payload)
		}
		emit(payload[off:end])
		n++
	}
	return n
}

// Package udp adapts real UDP sockets to the same unreliable datagram
// contract as package netsim, so the Protocol Accelerator can run between
// OS processes (cmd/paping). UDP is the closest commodity stand-in for the
// paper's U-Net interface: message-oriented, unreliable, unordered.
package udp

import (
	"errors"
	"net"
	"sync"
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("udp: transport closed")

// MaxDatagram is the largest datagram Send accepts; beyond this, the
// protocol stack's fragmentation layer must have split the message.
const MaxDatagram = 60000

// Transport is an unreliable datagram endpoint over a UDP socket. Its
// Send/SetHandler/LocalAddr/Close surface mirrors netsim.Endpoint, keyed
// by string addresses in host:port form.
type Transport struct {
	conn *net.UDPConn

	mu      sync.Mutex
	handler func(src string, datagram []byte)
	peers   map[string]*net.UDPAddr
	closed  bool
	done    chan struct{}
}

// Listen opens a UDP socket on addr ("127.0.0.1:0" for an ephemeral port)
// and starts the receive loop.
func Listen(addr string) (*Transport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	t := &Transport{
		conn:  conn,
		peers: make(map[string]*net.UDPAddr),
		done:  make(chan struct{}),
	}
	go t.readLoop()
	return t, nil
}

// LocalAddr returns the bound address in host:port form.
func (t *Transport) LocalAddr() string { return t.conn.LocalAddr().String() }

// SetHandler installs the receive callback. It runs on the transport's
// receive goroutine and owns the datagram slice.
func (t *Transport) SetHandler(h func(src string, datagram []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Send transmits one datagram to dst (host:port). Destination addresses
// are resolved once and cached.
func (t *Transport) Send(dst string, datagram []byte) error {
	if len(datagram) > MaxDatagram {
		return errors.New("udp: datagram too large")
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	ua := t.peers[dst]
	t.mu.Unlock()
	if ua == nil {
		resolved, err := net.ResolveUDPAddr("udp", dst)
		if err != nil {
			return err
		}
		t.mu.Lock()
		t.peers[dst] = resolved
		t.mu.Unlock()
		ua = resolved
	}
	_, err := t.conn.WriteToUDP(datagram, ua)
	return err
}

// Close shuts the socket down and stops the receive loop.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.done
	return err
}

func (t *Transport) readLoop() {
	defer close(t.done)
	buf := make([]byte, 65536)
	for {
		n, src, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			data := make([]byte, n)
			copy(data, buf[:n])
			h(src.String(), data)
		}
	}
}

// Package udp adapts real UDP sockets to the same unreliable datagram
// contract as package netsim, so the Protocol Accelerator can run between
// OS processes (cmd/paping). UDP is the closest commodity stand-in for the
// paper's U-Net interface: message-oriented, unreliable, unordered.
package udp

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("udp: transport closed")

// ErrDatagramTooLarge is returned (wrapped, with the sizes) by Send for
// datagrams over MaxDatagram.
var ErrDatagramTooLarge = errors.New("udp: datagram too large")

// MaxDatagram is the largest datagram Send accepts: the real UDP payload
// ceiling, 65535 minus the 8-byte UDP header and 20-byte IPv4 header.
// The protocol stack's fragmentation layer must split anything larger.
const MaxDatagram = 65507

// resolveUDPAddr is swappable in tests to observe and stall resolution.
var resolveUDPAddr = net.ResolveUDPAddr

// Transport is an unreliable datagram endpoint over a UDP socket. Its
// Send/SetHandler/LocalAddr/Close surface mirrors netsim.Endpoint, keyed
// by string addresses in host:port form.
type Transport struct {
	conn *net.UDPConn

	mu        sync.Mutex
	handler   func(src string, datagram []byte)
	peers     map[string]*net.UDPAddr
	resolving map[string]*resolveOp
	closed    bool
	done      chan struct{}
}

// resolveOp is the single-flight state for one in-progress resolution:
// concurrent Sends to the same unresolved peer wait on done instead of
// issuing duplicate resolver queries.
type resolveOp struct {
	done chan struct{}
	addr *net.UDPAddr
	err  error
}

// Listen opens a UDP socket on addr ("127.0.0.1:0" for an ephemeral port)
// and starts the receive loop.
func Listen(addr string) (*Transport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	t := &Transport{
		conn:      conn,
		peers:     make(map[string]*net.UDPAddr),
		resolving: make(map[string]*resolveOp),
		done:      make(chan struct{}),
	}
	go t.readLoop()
	return t, nil
}

// LocalAddr returns the bound address in host:port form.
func (t *Transport) LocalAddr() string { return t.conn.LocalAddr().String() }

// SetHandler installs the receive callback. It runs on the transport's
// receive goroutine; the datagram slice is the transport's receive buffer
// and is only valid for the duration of the call — the handler must copy
// anything it retains.
func (t *Transport) SetHandler(h func(src string, datagram []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Send transmits one datagram to dst (host:port). Destination addresses
// are resolved once and cached; concurrent Sends to the same new peer
// share a single resolution.
func (t *Transport) Send(dst string, datagram []byte) error {
	if len(datagram) > MaxDatagram {
		return fmt.Errorf("%w: %d > %d", ErrDatagramTooLarge, len(datagram), MaxDatagram)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	ua := t.peers[dst]
	var op *resolveOp
	if ua == nil {
		if op = t.resolving[dst]; op == nil {
			// First sender resolves; later ones wait on op.done.
			op = &resolveOp{done: make(chan struct{})}
			t.resolving[dst] = op
			t.mu.Unlock()
			op.addr, op.err = resolveUDPAddr("udp", dst)
			close(op.done)
			t.mu.Lock()
			delete(t.resolving, dst)
			// Skip the cache insert if Close won the race: a write
			// after Close would resurrect state the shutdown already
			// swept.
			if op.err == nil && !t.closed {
				t.peers[dst] = op.addr
			}
			t.mu.Unlock()
		} else {
			t.mu.Unlock()
			<-op.done
		}
		if op.err != nil {
			return op.err
		}
		ua = op.addr
	} else {
		t.mu.Unlock()
	}
	_, err := t.conn.WriteToUDP(datagram, ua)
	return err
}

// Close shuts the socket down and stops the receive loop.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.done
	return err
}

func (t *Transport) readLoop() {
	defer close(t.done)
	buf := make([]byte, 65536)
	var lastAddr net.UDPAddr
	var lastSrc string
	for {
		n, src, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			continue
		}
		// Cache the stringified source: traffic is typically runs of
		// datagrams from the same peer, and src.String() allocates.
		if src.Port != lastAddr.Port || !src.IP.Equal(lastAddr.IP) {
			lastAddr = net.UDPAddr{IP: append(lastAddr.IP[:0], src.IP...), Port: src.Port, Zone: src.Zone}
			lastSrc = src.String()
		}
		// The handler borrows the receive buffer; per the Transport
		// contract it must copy anything it retains past the call.
		h(lastSrc, buf[:n])
	}
}

// Package udp adapts real UDP sockets to the same unreliable datagram
// contract as package netsim, so the Protocol Accelerator can run between
// OS processes (cmd/paping). UDP is the closest commodity stand-in for the
// paper's U-Net interface: message-oriented, unreliable, unordered.
//
// On Linux (amd64/arm64) the transport is vectorized: SendBatch drains a
// burst of datagrams with one sendmmsg system call, and the receive loop
// reads with recvmmsg into a pooled buffer ring, so the per-datagram
// syscall cost is amortized over the bursts the engine's flush paths
// produce. Every other platform keeps the portable per-datagram loop
// behind the same interface (see DESIGN.md §11 for the build-tag matrix).
package udp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"paccel/internal/telemetry"
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("udp: transport closed")

// ErrDatagramTooLarge is returned (wrapped, with the sizes) by Send for
// datagrams over MaxDatagram.
var ErrDatagramTooLarge = errors.New("udp: datagram too large")

// MaxDatagram is the largest datagram Send accepts: the real UDP payload
// ceiling, 65535 minus the 8-byte UDP header and 20-byte IPv4 header.
// The protocol stack's fragmentation layer must split anything larger.
const MaxDatagram = 65507

// resolveUDPAddr is swappable in tests to observe and stall resolution.
var resolveUDPAddr = net.ResolveUDPAddr

// Transport is an unreliable datagram endpoint over a UDP socket. Its
// Send/SetHandler/LocalAddr/Close surface mirrors netsim.Endpoint, keyed
// by string addresses in host:port form. It additionally implements the
// engine's batched-send contract (core.BatchTransport) via SendBatch.
type Transport struct {
	conn *net.UDPConn

	// family is the socket's address family (AF_INET/AF_INET6), learned
	// once at Listen on the vectorized platforms so sendmmsg builds the
	// right raw sockaddr (a dual-stack socket needs v4-mapped targets).
	// Zero means unknown; the batch path then falls back to the loop.
	family uint16

	stats transportStats

	// tel receives transport-fault events (socket send errors, oversized
	// datagrams); nil disables. Atomic so SetTelemetry is safe while
	// sends are in flight.
	tel atomic.Pointer[telemetry.Recorder]

	mu        sync.Mutex
	handler   func(src string, datagram []byte)
	peers     map[string]*net.UDPAddr
	resolving map[string]*resolveOp
	closed    bool
	done      chan struct{}
}

// transportStats are the vectorized-I/O counters, atomics because sends
// and the receive loop touch them concurrently.
type transportStats struct {
	batchSends     atomic.Uint64
	batchDatagrams atomic.Uint64
	batchRecvs     atomic.Uint64
	recvDatagrams  atomic.Uint64
}

// Stats is a snapshot of the transport's vectorized-I/O counters.
type Stats struct {
	BatchSends     uint64 // SendBatch calls issued
	BatchDatagrams uint64 // datagrams those calls transmitted
	BatchRecvs     uint64 // batched reads completed (recvmmsg returns)
	RecvDatagrams  uint64 // datagrams those reads carried
}

// Stats returns a snapshot of the vectorized-I/O counters. On platforms
// without sendmmsg/recvmmsg, BatchSends/BatchDatagrams still count the
// (looped) SendBatch calls while the recv counters stay zero.
func (t *Transport) Stats() Stats {
	return Stats{
		BatchSends:     t.stats.batchSends.Load(),
		BatchDatagrams: t.stats.batchDatagrams.Load(),
		BatchRecvs:     t.stats.batchRecvs.Load(),
		RecvDatagrams:  t.stats.recvDatagrams.Load(),
	}
}

// SetTelemetry installs a recorder: socket send failures and oversized
// datagrams append EventFault entries to its event ring (transport-
// scoped, connection 0). Nil uninstalls.
func (t *Transport) SetTelemetry(rec *telemetry.Recorder) {
	t.tel.Store(rec)
}

// Constant fault causes; the error paths may run per datagram under load.
const (
	causeSendError = "udp: socket send error"
	causeTooLarge  = "udp: datagram exceeds UDP payload ceiling"
)

// RecvBatchStats implements the engine's optional RecvBatcher interface.
func (t *Transport) RecvBatchStats() (batches, datagrams uint64) {
	return t.stats.batchRecvs.Load(), t.stats.recvDatagrams.Load()
}

// resolveOp is the single-flight state for one in-progress resolution:
// concurrent Sends to the same unresolved peer wait on done instead of
// issuing duplicate resolver queries.
type resolveOp struct {
	done chan struct{}
	addr *net.UDPAddr
	err  error
}

// Listen opens a UDP socket on addr ("127.0.0.1:0" for an ephemeral port)
// and starts the receive loop.
func Listen(addr string) (*Transport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	t := &Transport{
		conn:      conn,
		peers:     make(map[string]*net.UDPAddr),
		resolving: make(map[string]*resolveOp),
		done:      make(chan struct{}),
	}
	t.initOS()
	go t.readLoop()
	return t, nil
}

// LocalAddr returns the bound address in host:port form.
func (t *Transport) LocalAddr() string { return t.conn.LocalAddr().String() }

// SetHandler installs the receive callback. It runs on the transport's
// receive goroutine; the datagram slice is the transport's receive buffer
// and is only valid for the duration of the call — the handler must copy
// anything it retains.
func (t *Transport) SetHandler(h func(src string, datagram []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// resolve returns the cached address for dst, resolving it once if
// needed. Destination addresses are resolved once and cached; concurrent
// callers for the same new peer share a single resolution, and a batch
// resolves its destination once for the whole burst.
func (t *Transport) resolve(dst string) (*net.UDPAddr, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	ua := t.peers[dst]
	if ua != nil {
		t.mu.Unlock()
		return ua, nil
	}
	op := t.resolving[dst]
	if op == nil {
		// First caller resolves; later ones wait on op.done.
		op = &resolveOp{done: make(chan struct{})}
		t.resolving[dst] = op
		t.mu.Unlock()
		op.addr, op.err = resolveUDPAddr("udp", dst)
		close(op.done)
		t.mu.Lock()
		delete(t.resolving, dst)
		// Skip the cache insert if Close won the race: a write
		// after Close would resurrect state the shutdown already
		// swept.
		if op.err == nil && !t.closed {
			t.peers[dst] = op.addr
		}
		t.mu.Unlock()
	} else {
		t.mu.Unlock()
		<-op.done
	}
	if op.err != nil {
		return nil, op.err
	}
	return op.addr, nil
}

// Send transmits one datagram to dst (host:port). Destination addresses
// are resolved once and cached; concurrent Sends to the same new peer
// share a single resolution.
func (t *Transport) Send(dst string, datagram []byte) error {
	if len(datagram) > MaxDatagram {
		t.tel.Load().Event(telemetry.EventFault, 0, causeTooLarge)
		return fmt.Errorf("%w: %d > %d", ErrDatagramTooLarge, len(datagram), MaxDatagram)
	}
	ua, err := t.resolve(dst)
	if err != nil {
		return err
	}
	_, err = t.conn.WriteToUDP(datagram, ua)
	if err != nil {
		t.tel.Load().Event(telemetry.EventFault, 0, causeSendError)
	}
	return err
}

// SendBatch transmits the datagrams to dst in order — one sendmmsg
// system call per chunk on Linux, a WriteToUDP loop elsewhere. It
// implements the engine's BatchTransport contract: sent is the prefix of
// datagrams transmitted, and a non-nil error describes the datagram at
// index sent (the rest were not attempted). The destination is resolved
// once for the whole batch.
func (t *Transport) SendBatch(dst string, datagrams [][]byte) (sent int, err error) {
	if len(datagrams) == 0 {
		return 0, nil
	}
	ua, err := t.resolve(dst)
	if err != nil {
		return 0, err
	}
	t.stats.batchSends.Add(1)
	sent, err = t.sendBatchWire(ua, datagrams)
	t.stats.batchDatagrams.Add(uint64(sent))
	if err != nil {
		t.tel.Load().Event(telemetry.EventFault, 0, causeSendError)
	}
	return sent, err
}

// sendBatchLoop is the portable batch body: one WriteToUDP per datagram.
// The vectorized platforms also fall back to it for address shapes the
// raw path cannot encode (zoned IPv6).
func (t *Transport) sendBatchLoop(ua *net.UDPAddr, datagrams [][]byte) (int, error) {
	for i, d := range datagrams {
		if len(d) > MaxDatagram {
			return i, fmt.Errorf("%w: %d > %d", ErrDatagramTooLarge, len(d), MaxDatagram)
		}
		if _, err := t.conn.WriteToUDP(d, ua); err != nil {
			return i, err
		}
	}
	return len(datagrams), nil
}

// Close shuts the socket down and stops the receive loop.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.done
	return err
}

// readLoopGeneric is the portable per-datagram receive loop; the
// vectorized platforms fall back to it when the raw socket is not
// reachable (SyscallConn failure).
func (t *Transport) readLoopGeneric() {
	buf := make([]byte, 65536)
	var lastAddr net.UDPAddr
	var lastSrc string
	for {
		n, src, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			continue
		}
		// Cache the stringified source: traffic is typically runs of
		// datagrams from the same peer, and src.String() allocates.
		if src.Port != lastAddr.Port || !src.IP.Equal(lastAddr.IP) {
			lastAddr = net.UDPAddr{IP: append(lastAddr.IP[:0], src.IP...), Port: src.Port, Zone: src.Zone}
			lastSrc = src.String()
		}
		// The handler borrows the receive buffer; per the Transport
		// contract it must copy anything it retains past the call.
		h(lastSrc, buf[:n])
	}
}

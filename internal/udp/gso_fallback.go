//go:build !linux || (!amd64 && !arm64)

package udp

import "net"

// Offload stubs for platforms without the Linux kernel-offload tier
// (gso_linux.go): no UDP_SEGMENT/UDP_GRO probe ever runs (Offload
// reports false/false and SendBatch stays on the portable loop), and
// SO_REUSEPORT sharding degrades to a single socket.

// listenReusePort has no portable implementation; ListenSharded detects
// the errShardingUnsupported sentinel and degrades to one plain socket.
func listenReusePort(addr string) (*net.UDPConn, error) {
	return nil, errShardingUnsupported
}

//go:build linux && (amd64 || arm64)

package udp

// Kernel offload tier (DESIGN.md §13): UDP_SEGMENT send coalescing,
// UDP_GRO receive coalescing, and SO_REUSEPORT socket sharding. This
// file holds everything offload-specific — the setsockopt probe, the
// cmsg encode/decode, equal-size run detection, and the sendmmsg header
// fill that mixes plain and super-datagram headers in one system call —
// while mmsg_linux.go keeps the raw sendmmsg/recvmmsg plumbing both
// tiers share. gso_fallback.go stubs the same hooks for every other
// GOOS/GOARCH.
//
// Why coalesce on top of sendmmsg: sendmmsg already amortizes syscall
// *entry* over 64 datagrams, but the kernel still walks the UDP stack
// once per datagram. A UDP_SEGMENT super-datagram is one stack traversal
// for up to 64 equal-size segments, and one sendmmsg can carry 64 such
// super-datagrams — 4096 datagrams behind a single trap. The
// fragmentation layer's bursts (equal-size fragments, shorter tail) are
// exactly the shape the cmsg permits: every segment gso_size long except
// a final short one.

import (
	"context"
	"net"
	"syscall"
	"unsafe"

	"paccel/internal/telemetry"
)

// Linux UAPI constants the frozen syscall tables predate.
const (
	solUDP      = 17  // SOL_UDP
	udpSegment  = 103 // UDP_SEGMENT (kernel 4.18+)
	udpGRO      = 104 // UDP_GRO (kernel 5.0+)
	soReusePort = 15  // SO_REUSEPORT (absent from frozen zerrors tables)
)

// maxGSOSegments is the kernel's UDP_MAX_SEGMENTS: the most datagrams
// one super-datagram may carry.
const maxGSOSegments = 64

// gsoMinSegments is the smallest run worth coalescing: below it a plain
// sendmmsg header costs the same.
const gsoMinSegments = 2

// gsoBufSize is the per-sendState coalesce scratch: room for a full
// sendmmsg chunk of small-segment super-datagrams (the common case) or
// four maximum-size ones.
const gsoBufSize = 1 << 18

// gsoOOB is one header's control-buffer capacity; CmsgSpace(2) is 24 on
// the 64-bit ABIs, rounded up to a power of two.
const gsoOOB = 32

// groOOB is one receive slot's control-buffer capacity: the UDP_GRO
// cmsg (CmsgSpace(4) = 24) plus slack for unrelated cmsgs.
const groOOB = 64

// Runtime-computed cmsg geometry (constant per ABI).
var (
	gsoCmsgSpace = syscall.CmsgSpace(2)
	cmsgDataOff  = syscall.CmsgLen(0)
)

// probeOffload runs at Listen, before the receive loop starts:
// setsockopt(UDP_SEGMENT, 0) is a no-op on supporting kernels and ENOPROTOOPT
// elsewhere, so its verdict gates the send coalescer; UDP_GRO is enabled
// for real (the receive loop must then split coalesced payloads).
func (t *Transport) probeOffload(fd int) {
	if !t.opts.DisableGSO {
		if err := syscall.SetsockoptInt(fd, solUDP, udpSegment, 0); err == nil {
			t.gsoProbed = true
			t.gsoOn.Store(true)
		}
	}
	if !t.opts.DisableGRO {
		if err := syscall.SetsockoptInt(fd, solUDP, udpGRO, 1); err == nil {
			t.groOn = true
		}
	}
}

// disableGSO is the sticky fallback: the kernel (or the path MTU behind
// it) refused a UDP_SEGMENT send, so every later batch goes down the
// plain sendmmsg tier. One counter bump and one fault event; the refusal
// path may run under load.
func (t *Transport) disableGSO() {
	if t.gsoOn.Swap(false) {
		t.stats.gsoFallbacks.Add(1)
		t.tel.Load().Event(telemetry.EventFault, 0, causeGsoFallback)
	}
}

// gsoRefused reports whether a sendmmsg errno means the kernel or path
// rejected the segmentation request itself (fall back to plain headers)
// rather than a transient send failure.
func gsoRefused(e syscall.Errno) bool {
	switch e {
	case syscall.EINVAL, syscall.EMSGSIZE, syscall.EOPNOTSUPP, syscall.EIO:
		return true
	}
	return false
}

// gsoRun measures the prefix of ds that one UDP_SEGMENT super-datagram
// can carry: a run of equal-size datagrams, optionally closed by one
// shorter datagram (the kernel permits only the final segment to be
// short), capped at maxGSOSegments segments and MaxDatagram total bytes.
func gsoRun(ds [][]byte) (run, total int) {
	seg := len(ds[0])
	if seg == 0 {
		return 0, 0
	}
	run, total = 1, seg
	for run < len(ds) && run < maxGSOSegments {
		l := len(ds[run])
		if l == 0 || l > seg || total+l > MaxDatagram {
			break
		}
		total += l
		run++
		if l < seg {
			break // a short segment closes the super-datagram
		}
	}
	return run, total
}

// putGSOCmsg writes the UDP_SEGMENT cmsg (a uint16 segment size) into a
// header's control buffer.
func putGSOCmsg(oob *[gsoOOB]byte, seg uint16) {
	h := (*syscall.Cmsghdr)(unsafe.Pointer(&oob[0]))
	h.Level = solUDP
	h.Type = udpSegment
	h.SetLen(syscall.CmsgLen(2))
	*(*uint16)(unsafe.Pointer(&oob[cmsgDataOff])) = seg
}

// groSegSize walks a received control buffer for the UDP_GRO cmsg and
// returns the kernel-reported segment size, or 0 when the payload is a
// single datagram. The kernel writes the size as a C int; a defensive
// walk tolerates unrelated cmsgs before it.
func groSegSize(ctrl []byte) int {
	for len(ctrl) >= cmsgDataOff {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[0]))
		l := int(h.Len)
		if l < cmsgDataOff || l > len(ctrl) {
			return 0
		}
		if h.Level == solUDP && h.Type == udpGRO {
			if l >= cmsgDataOff+4 {
				return int(*(*int32)(unsafe.Pointer(&ctrl[cmsgDataOff])))
			}
			if l >= cmsgDataOff+2 {
				return int(*(*uint16)(unsafe.Pointer(&ctrl[cmsgDataOff])))
			}
			return 0
		}
		// Advance to the next 8-byte-aligned cmsg.
		adv := (l + 7) &^ 7
		if adv <= 0 || adv >= len(ctrl) {
			return 0
		}
		ctrl = ctrl[adv:]
	}
	return 0
}

// fill builds up to mmsgBatch sendmmsg headers from ds. With the GSO
// offload on, each maximal equal-size run of at least gsoMinSegments
// datagrams is copied into the coalesce scratch and becomes one
// super-datagram header carrying a UDP_SEGMENT cmsg; everything else
// gets a plain zero-copy header. st.segs[i] records how many datagrams
// header i carries, so the caller can translate the kernel's
// headers-sent count back into the SendBatch prefix contract. A non-nil
// error reports an oversized datagram just past the built headers (the
// caller transmits the prefix, then surfaces the error at its index);
// k == 0 with a non-nil error means the head datagram itself is
// oversized.
func (st *sendState) fill(t *Transport, name *byte, namelen uint32, ds [][]byte) (k int, err error) {
	gso := t.gsoOn.Load()
	if gso && st.buf == nil {
		// Lazy: transports whose probe failed never pay for the scratch.
		st.buf = make([]byte, gsoBufSize)
	}
	used := 0 // coalesce scratch consumed
	i := 0    // datagrams consumed
	for i < len(ds) && k < mmsgBatch {
		d := ds[i]
		if len(d) > MaxDatagram {
			return k, oversizedErr(len(d))
		}
		h := &st.hdrs[k]
		iov := &st.iovs[k]
		if gso {
			if run, total := gsoRun(ds[i:]); run >= gsoMinSegments && total <= gsoBufSize-used {
				off := used
				for _, s := range ds[i : i+run] {
					off += copy(st.buf[off:], s)
				}
				iov.Base = &st.buf[used]
				iov.Len = uint64(total)
				used = off
				h.hdr = syscall.Msghdr{Name: name, Namelen: namelen, Iov: iov, Iovlen: 1}
				h.hdr.Control = &st.oobs[k][0]
				h.hdr.Controllen = uint64(gsoCmsgSpace)
				putGSOCmsg(&st.oobs[k], uint16(len(d)))
				h.len = 0
				st.segs[k] = run
				k++
				i += run
				continue
			}
		}
		if len(d) > 0 {
			iov.Base = &d[0]
		} else {
			iov.Base = &zeroByte
		}
		iov.Len = uint64(len(d))
		h.hdr = syscall.Msghdr{Name: name, Namelen: namelen, Iov: iov, Iovlen: 1}
		h.len = 0
		st.segs[k] = 1
		k++
		i++
	}
	return k, nil
}

// hasGSO reports whether any header in [from, to) is a super-datagram —
// the precondition for treating a refusal errno as a GSO fallback.
func (st *sendState) hasGSO(from, to int) bool {
	for i := from; i < to; i++ {
		if st.segs[i] > 1 {
			return true
		}
	}
	return false
}

// listenReusePort opens one UDP socket with SO_REUSEPORT set before
// bind, so ListenSharded can stack N sockets on one port and the kernel
// hashes incoming flows across them.
func listenReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}

//go:build linux && arm64

package udp

// arm64 syscall numbers for the vectorized datagram calls (pinned here
// alongside the amd64 ones so both ABIs read from one place).
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)

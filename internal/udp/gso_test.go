//go:build linux && (amd64 || arm64)

package udp

// Tests for the kernel-offload tier (gso_linux.go): probe reporting,
// UDP_SEGMENT send coalescing, UDP_GRO receive splitting, the sticky
// fallback, and the receive loop's transient-errno recovery. Tests that
// need a specific errno interpose the sendmmsgCall/recvmmsgCall hooks
// instead of depending on a cooperating kernel; tests that need the real
// offload skip with an explicit notice where the kernel lacks it.

import (
	"bytes"
	"errors"
	"sync"
	"syscall"
	"testing"
	"unsafe"
)

// requireGSO skips (loudly) on kernels without UDP_SEGMENT.
func requireGSO(t *testing.T, tr *Transport) {
	t.Helper()
	if gso, _ := tr.Offload(); !gso {
		t.Skip("SKIP: kernel lacks UDP_SEGMENT (need 4.18+); offload send path not exercised")
	}
}

func TestOffloadProbeReport(t *testing.T) {
	a, b := pair(t)
	gso, gro := a.Offload()
	t.Logf("offload probe: gso=%v gro=%v", gso, gro)
	if gso2, gro2 := b.Offload(); gso2 != gso || gro2 != gro {
		t.Fatalf("probe verdicts differ between sockets: %v/%v vs %v/%v", gso, gro, gso2, gro2)
	}
	// Disabled options must win over the kernel.
	c, err := ListenWithOptions("127.0.0.1:0", Options{DisableGSO: true, DisableGRO: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if gso, gro := c.Offload(); gso || gro {
		t.Fatalf("offloads on despite DisableGSO/DisableGRO: %v/%v", gso, gro)
	}
}

func TestGSOLoopbackEqualSizeBurst(t *testing.T) {
	a, b := pair(t)
	requireGSO(t, a)
	var got collector
	got.install(b)
	const n, size = 64, 512
	ds := burst(n, size)
	sent, err := a.SendBatch(b.LocalAddr(), ds)
	if err != nil || sent != n {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	got.waitN(t, n)
	got.mu.Lock()
	defer got.mu.Unlock()
	for i, d := range got.data {
		if !bytes.Equal(d, ds[i]) {
			t.Fatalf("datagram %d: got tag %d/%d len %d", i, d[0], d[1], len(d))
		}
	}
	st := a.Stats()
	if st.GsoSends == 0 || st.GsoSegments != n {
		t.Fatalf("GSO not engaged: %+v", st)
	}
	if st.TxSyscalls != 1 {
		t.Fatalf("equal-size 64-burst should be one syscall, got %d", st.TxSyscalls)
	}
}

func TestGSOMixedSizesPrefixOrder(t *testing.T) {
	a, b := pair(t)
	requireGSO(t, a)
	var got collector
	got.install(b)
	// Runs of equal sizes with breaks: [8×300][1×100][8×300][5×40]
	var ds [][]byte
	sizes := []int{300, 300, 300, 300, 300, 300, 300, 300, 100, 300, 300, 300, 300, 300, 300, 300, 300, 40, 40, 40, 40, 40}
	for i, s := range sizes {
		d := make([]byte, s)
		d[0] = byte(i)
		ds = append(ds, d)
	}
	sent, err := a.SendBatch(b.LocalAddr(), ds)
	if err != nil || sent != len(ds) {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	got.waitN(t, len(ds))
	got.mu.Lock()
	defer got.mu.Unlock()
	for i, d := range got.data {
		if len(d) != sizes[i] || d[0] != byte(i) {
			t.Fatalf("datagram %d: len=%d tag=%d, want len=%d tag=%d", i, len(d), d[0], sizes[i], i)
		}
	}
}

func TestGSOOversizedMidBatch(t *testing.T) {
	a, b := pair(t)
	ds := burst(10, 256)
	ds[6] = make([]byte, MaxDatagram+1)
	sent, err := a.SendBatch(b.LocalAddr(), ds)
	if sent != 6 {
		t.Fatalf("sent = %d, want 6 (prefix before the oversized datagram)", sent)
	}
	if !errors.Is(err, ErrDatagramTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestGSOFallbackOnRefusal(t *testing.T) {
	a, b := pair(t)
	requireGSO(t, a)
	var got collector
	got.install(b)

	real := sendmmsgCall
	defer func() { sendmmsgCall = real }()
	var refused int
	sendmmsgCall = func(fd uintptr, hdrs *mmsghdr, vlen, flags int) (int, syscall.Errno) {
		if hdrs.hdr.Controllen > 0 {
			// Refuse any chunk whose first header carries the UDP_SEGMENT
			// cmsg, as a path with a hostile MTU would.
			refused++
			return 0, syscall.EIO
		}
		return real(fd, hdrs, vlen, flags)
	}

	const n = 32
	ds := burst(n, 512)
	sent, err := a.SendBatch(b.LocalAddr(), ds)
	if err != nil || sent != n {
		t.Fatalf("SendBatch after refusal = %d, %v", sent, err)
	}
	if refused == 0 {
		t.Fatal("hook never saw a GSO chunk; offload did not engage")
	}
	if gso, _ := a.Offload(); gso {
		t.Fatal("GSO still on after kernel refusal; fallback is not sticky")
	}
	st := a.Stats()
	if st.GsoFallbacks != 1 {
		t.Fatalf("GsoFallbacks = %d, want 1", st.GsoFallbacks)
	}
	got.waitN(t, n)
	got.mu.Lock()
	defer got.mu.Unlock()
	for i, d := range got.data {
		if d[0] != byte(i) {
			t.Fatalf("datagram %d has tag %d; fallback lost ordering", i, d[0])
		}
	}

	// Later batches go straight down the plain tier.
	sent, err = a.SendBatch(b.LocalAddr(), burst(8, 128))
	if err != nil || sent != 8 {
		t.Fatalf("post-fallback SendBatch = %d, %v", sent, err)
	}
}

// TestRecvTransientErrno is the regression test for the receive-loop
// hardening: before the fix, any non-EAGAIN/EINTR recvmmsg errno made
// readLoop return, leaving the transport permanently deaf while Send
// kept working. Now transient errnos (ENOBUFS, ENOMEM) are counted and
// retried; only closed-socket errnos exit the loop.
func TestRecvTransientErrno(t *testing.T) {
	real := recvmmsgCall
	// Registered before pair(t): cleanups run LIFO, so the transports are
	// closed (Close waits for the read loops to exit) before the hook is
	// restored — restoring under a live loop is a data race.
	t.Cleanup(func() { recvmmsgCall = real })
	var mu sync.Mutex
	injected := 0
	recvmmsgCall = func(fd uintptr, hdrs *mmsghdr, vlen, flags int) (int, syscall.Errno) {
		mu.Lock()
		if injected < 3 {
			injected++
			mu.Unlock()
			return 0, syscall.ENOBUFS
		}
		mu.Unlock()
		return real(fd, hdrs, vlen, flags)
	}

	a, b := pair(t)
	var got collector
	got.install(b)
	if err := a.Send(b.LocalAddr(), []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	got.waitN(t, 1)
	got.mu.Lock()
	d := got.data[0]
	got.mu.Unlock()
	if !bytes.Equal(d, []byte("still alive")) {
		t.Fatalf("got %q", d)
	}
	if b.Stats().RecvErrors == 0 && a.Stats().RecvErrors == 0 {
		t.Fatal("transient errno not counted in RecvErrors")
	}
}

func TestGsoRun(t *testing.T) {
	mk := func(sizes ...int) [][]byte {
		ds := make([][]byte, len(sizes))
		for i, s := range sizes {
			ds[i] = make([]byte, s)
		}
		return ds
	}
	cases := []struct {
		sizes    []int
		run, tot int
	}{
		{[]int{100, 100, 100}, 3, 300},
		{[]int{100, 100, 40}, 3, 240}, // short tail closes the run
		{[]int{100, 40, 100}, 2, 140}, // run ends at the short datagram
		{[]int{100, 200}, 1, 100},     // larger datagram breaks the run
		{[]int{100, 0, 100}, 1, 100},  // empty datagram breaks the run
		{[]int{0, 100}, 0, 0},         // empty head: no run at all
	}
	for _, c := range cases {
		run, tot := gsoRun(mk(c.sizes...))
		if run != c.run || tot != c.tot {
			t.Errorf("gsoRun(%v) = %d,%d want %d,%d", c.sizes, run, tot, c.run, c.tot)
		}
	}
	// Segment cap.
	big := make([]int, 100)
	for i := range big {
		big[i] = 10
	}
	if run, _ := gsoRun(mk(big...)); run != maxGSOSegments {
		t.Errorf("run = %d, want cap %d", run, maxGSOSegments)
	}
}

func TestGroSegSizeWalk(t *testing.T) {
	// A synthetic control buffer: one unrelated cmsg, then the UDP_GRO
	// one carrying 1400.
	buf := make([]byte, 64)
	h := (*syscall.Cmsghdr)(unsafe.Pointer(&buf[0]))
	h.Level = syscall.SOL_SOCKET
	h.Type = 1
	h.SetLen(syscall.CmsgLen(4))
	off := (syscall.CmsgLen(4) + 7) &^ 7
	h2 := (*syscall.Cmsghdr)(unsafe.Pointer(&buf[off]))
	h2.Level = solUDP
	h2.Type = udpGRO
	h2.SetLen(syscall.CmsgLen(4))
	*(*int32)(unsafe.Pointer(&buf[off+cmsgDataOff])) = 1400
	if got := groSegSize(buf); got != 1400 {
		t.Fatalf("groSegSize = %d, want 1400", got)
	}
	if got := groSegSize(buf[:8]); got != 0 {
		t.Fatalf("truncated buffer: groSegSize = %d, want 0", got)
	}
}

// TestRawAddrEqualScopeID pins the vectorized loop's source comparison:
// identical link-local addresses on different interfaces (Scope_id) are
// different peers.
func TestRawAddrEqualScopeID(t *testing.T) {
	mk := func(scope uint32) *syscall.RawSockaddrAny {
		raw := new(syscall.RawSockaddrAny)
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(raw))
		sa6.Family = syscall.AF_INET6
		sa6.Addr = [16]byte{0xfe, 0x80, 15: 1}
		sa6.Port = 0x1234
		sa6.Scope_id = scope
		return raw
	}
	if !rawAddrEqual(mk(2), mk(2)) {
		t.Fatal("identical zoned peers compare unequal")
	}
	if rawAddrEqual(mk(2), mk(3)) {
		t.Fatal("peers differing only in Scope_id compare equal (zone conflation)")
	}
	if rawAddrString(mk(2)) == rawAddrString(mk(3)) {
		t.Fatal("rawAddrString conflates zones")
	}
}

func TestSendBatchHookSeesComposedChunks(t *testing.T) {
	// Verify syscall composition: with GSO on, a 256-datagram equal-size
	// burst goes down in one sendmmsg of 4 super-datagram headers.
	a, b := pair(t)
	requireGSO(t, a)
	var calls, hdrsTotal int
	real := sendmmsgCall
	defer func() { sendmmsgCall = real }()
	sendmmsgCall = func(fd uintptr, hdrs *mmsghdr, vlen, flags int) (int, syscall.Errno) {
		calls++
		hdrsTotal += vlen
		return real(fd, hdrs, vlen, flags)
	}
	ds := burst(256, 512)
	sent, err := a.SendBatch(b.LocalAddr(), ds)
	if err != nil || sent != 256 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	if calls != 1 || hdrsTotal != 4 {
		t.Fatalf("256×512B burst: %d sendmmsg calls with %d headers, want 1 call / 4 super-datagrams", calls, hdrsTotal)
	}
}

func TestSendBatchSteadyStateAllocFree(t *testing.T) {
	// The batch send path must not allocate once warm: the raw conn is
	// cached at Listen, the header scratch is pooled, and the write step
	// is a pre-bound method value rather than a per-call closure. Holds
	// with and without the GSO tier (fill copies into pooled scratch).
	a, b := pair(t)
	ds := burst(64, 512)
	dst := b.LocalAddr()
	for i := 0; i < 32; i++ {
		if _, err := a.SendBatch(dst, ds); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := a.SendBatch(dst, ds); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SendBatch allocates %.1f/op, want 0", allocs)
	}
}

//go:build !linux || (!amd64 && !arm64)

package udp

import "net"

// Portable stand-ins for the vectorized hooks in mmsg_linux.go: platforms
// without sendmmsg/recvmmsg (or whose syscall.Msghdr layout the raw path
// does not hardcode) keep the per-datagram loop behind the same SendBatch
// interface, so the engine's batching logic is identical everywhere and
// only the syscall amortization differs.

// initOS has no per-OS setup to do on the portable path.
func (t *Transport) initOS() {}

// sendBatchWire degrades to one WriteToUDP per datagram.
func (t *Transport) sendBatchWire(ua *net.UDPAddr, datagrams [][]byte) (int, error) {
	return t.sendBatchLoop(ua, datagrams)
}

// sendBatchToWire degrades to one resolve + WriteToUDP per datagram.
func (t *Transport) sendBatchToWire(dsts []string, datagrams [][]byte) (int, error) {
	return t.sendBatchToLoop(dsts, datagrams)
}

// readLoop is the plain per-datagram receive loop.
func (t *Transport) readLoop() {
	defer close(t.done)
	t.readLoopGeneric()
}

package udp

// Portable tests for the offload tier's platform-independent pieces and
// the receive-path satellite fixes: the zone-aware source-key cache, the
// peer-cache cap, the GRO split helper's allocation budget, multi-peer
// source stability through both receive loops, and the sharded listener.

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// collector gathers delivered datagrams, copying each (the handler
// borrows the receive ring).
type collector struct {
	mu   sync.Mutex
	srcs []string
	data [][]byte
}

func (c *collector) install(tr interface {
	SetHandler(func(string, []byte))
}) {
	tr.SetHandler(func(src string, d []byte) {
		c.mu.Lock()
		c.srcs = append(c.srcs, src)
		c.data = append(c.data, append([]byte(nil), d...))
		c.mu.Unlock()
	})
}

func (c *collector) waitN(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		got := len(c.data)
		c.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d datagrams", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// burst builds n datagrams of size bytes, each tagged with its index.
func burst(n, size int) [][]byte {
	ds := make([][]byte, n)
	for i := range ds {
		d := make([]byte, size)
		d[0] = byte(i)
		if size > 1 {
			d[1] = byte(i >> 8)
		}
		ds[i] = d
	}
	return ds
}

// TestSrcKeyCacheZone is the regression test for the generic read loop's
// source-string cache: before the fix it compared only IP and Port, so
// two link-local IPv6 peers with the same address on different
// interfaces (distinct Zone) were conflated into one src key.
func TestSrcKeyCacheZone(t *testing.T) {
	var c srcKeyCache
	ll := net.ParseIP("fe80::1")
	eth0 := &net.UDPAddr{IP: ll, Port: 9000, Zone: "eth0"}
	eth1 := &net.UDPAddr{IP: ll, Port: 9000, Zone: "eth1"}
	k0 := c.lookup(eth0)
	k1 := c.lookup(eth1)
	if k0 == k1 {
		t.Fatalf("zone conflation: %q == %q", k0, k1)
	}
	if k0 != eth0.String() || k1 != eth1.String() {
		t.Fatalf("keys %q/%q do not match addresses %q/%q", k0, k1, eth0, eth1)
	}
	// Re-lookup must hit the cache and stay correct.
	if again := c.lookup(eth1); again != k1 {
		t.Fatalf("cached key changed: %q -> %q", k1, again)
	}
	// And the plain v4/v6 cases still alternate correctly.
	v4 := &net.UDPAddr{IP: net.ParseIP("127.0.0.1"), Port: 1}
	v6 := &net.UDPAddr{IP: net.ParseIP("::1"), Port: 1}
	if c.lookup(v4) == c.lookup(v6) {
		t.Fatal("v4/v6 conflation")
	}
}

// TestPeerCacheEviction pins the resolve cache's cap: past the limit an
// insert evicts one entry and counts it, so peer churn cannot grow the
// transport without bound.
func TestPeerCacheEviction(t *testing.T) {
	old := peerCacheLimit
	peerCacheLimit = 8
	defer func() { peerCacheLimit = old }()

	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 50; i++ {
		if _, err := a.resolve(fmt.Sprintf("127.0.0.1:%d", 10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	a.mu.Lock()
	n := len(a.peers)
	a.mu.Unlock()
	if n > 8 {
		t.Fatalf("peer cache grew to %d entries past the cap of 8", n)
	}
	if ev := a.Stats().PeerEvictions; ev != 50-8 {
		t.Fatalf("PeerEvictions = %d, want %d", ev, 50-8)
	}
	// An evicted peer still resolves (one re-resolution, not an error).
	if _, err := a.resolve("127.0.0.1:10000"); err != nil {
		t.Fatal(err)
	}
}

// TestAllocBudgetGROSplit extends the transport's allocation budget to
// the GRO receive split: carving a coalesced payload back into datagrams
// must not allocate — the segments are subslices of the receive ring.
func TestAllocBudgetGROSplit(t *testing.T) {
	payload := make([]byte, 12*1024)
	sink := 0
	emit := func(d []byte) { sink += len(d) }
	allocs := testing.AllocsPerRun(200, func() {
		splitSegments(payload, 1000, emit)
	})
	if allocs != 0 {
		t.Fatalf("GRO split allocates %.1f/op, want 0", allocs)
	}
	// Geometry: 12 full segments + a short tail.
	if n := splitSegments(payload, 1000, func([]byte) {}); n != 13 {
		t.Fatalf("splitSegments = %d segments, want 13", n)
	}
}

// multiPeerRun drives interleaved runs from several peers at one
// dual-stack receiver and asserts every datagram is attributed to its
// sender's address — no cross-peer conflation from the src caches.
func multiPeerRun(t *testing.T, listen func(addr string) (*Transport, error)) {
	t.Helper()
	// A dual-stack wildcard socket hears both v4 and v6 loopback peers.
	recv, err := listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	_, port, err := net.SplitHostPort(recv.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	var got collector
	got.install(recv)

	type peer struct {
		tr     *Transport
		target string // the receiver's address in this peer's family
	}
	var peers []peer
	for _, bind := range []struct{ local, targetHost string }{
		{"127.0.0.1:0", "127.0.0.1"},
		{"[::1]:0", "::1"},
	} {
		tr, err := ListenWithOptions(bind.local, Options{})
		if err != nil {
			t.Logf("skip peer %s: %v", bind.local, err)
			continue
		}
		defer tr.Close()
		peers = append(peers, peer{tr, net.JoinHostPort(bind.targetHost, port)})
	}
	if len(peers) < 2 {
		t.Skip("SKIP: need both v4 and v6 loopback")
	}

	// Interleave runs: peer 0 sends 3, peer 1 sends 3, ... so the src
	// caches see alternating peers with runs in between.
	total := 0
	for round := 0; round < 10; round++ {
		for pi, p := range peers {
			for k := 0; k < 3; k++ {
				msg := []byte(fmt.Sprintf("p%d-r%d-%d", pi, round, k))
				if err := p.tr.Send(p.target, msg); err != nil {
					t.Fatal(err)
				}
				total++
			}
		}
	}
	got.waitN(t, total)
	got.mu.Lock()
	defer got.mu.Unlock()
	for i, d := range got.data {
		var pi int
		if _, err := fmt.Sscanf(string(d), "p%d-", &pi); err != nil {
			t.Fatalf("unparseable payload %q", d)
		}
		want := peers[pi].tr.LocalAddr()
		if got.srcs[i] != want {
			t.Fatalf("datagram %q attributed to %q, want %q (cross-peer conflation)", d, got.srcs[i], want)
		}
	}
}

// TestMultiPeerSrcStability runs the interleaved multi-peer check
// through the platform's default receive loop (vectorized on Linux).
func TestMultiPeerSrcStability(t *testing.T) {
	multiPeerRun(t, Listen)
}

// TestMultiPeerSrcStabilityGenericLoop forces the portable per-datagram
// loop (the one the srcKeyCache fix targets) on every platform. GRO is
// disabled because the generic loop cannot split coalesced payloads.
func TestMultiPeerSrcStabilityGenericLoop(t *testing.T) {
	debugGenericRead = true
	defer func() { debugGenericRead = false }()
	multiPeerRun(t, func(addr string) (*Transport, error) {
		return ListenWithOptions(addr, Options{DisableGSO: true, DisableGRO: true})
	})
}

// TestOffloadAndLoopPathsIdentical is the contract test: the same burst
// through an offload-enabled transport and an offload-disabled one must
// be observably identical at the receiver — same datagrams, same order,
// same source attribution shape.
func TestOffloadAndLoopPathsIdentical(t *testing.T) {
	run := func(opts Options) [][]byte {
		a, err := ListenWithOptions("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := ListenWithOptions("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		var got collector
		got.install(b)
		// Mixed shape: equal-size runs (coalescible), breaks, a tail.
		var ds [][]byte
		for i, s := range []int{256, 256, 256, 256, 100, 256, 256, 64, 64, 64, 8} {
			d := make([]byte, s)
			d[0] = byte(i)
			ds = append(ds, d)
		}
		sent, err := a.SendBatch(b.LocalAddr(), ds)
		if err != nil || sent != len(ds) {
			t.Fatalf("SendBatch = %d, %v", sent, err)
		}
		got.waitN(t, len(ds))
		got.mu.Lock()
		defer got.mu.Unlock()
		return got.data
	}
	off := run(Options{})
	loop := run(Options{DisableGSO: true, DisableGRO: true})
	if len(off) != len(loop) {
		t.Fatalf("offload delivered %d datagrams, loop %d", len(off), len(loop))
	}
	for i := range off {
		if len(off[i]) != len(loop[i]) || off[i][0] != loop[i][0] {
			t.Fatalf("datagram %d differs: offload len=%d tag=%d, loop len=%d tag=%d",
				i, len(off[i]), off[i][0], len(loop[i]), loop[i][0])
		}
	}
}

func TestShardedLoopback(t *testing.T) {
	s, err := ListenSharded("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n := s.NumQueues(); n != 2 && n != 1 {
		t.Fatalf("NumQueues = %d", n)
	}
	if s.NumQueues() == 1 {
		t.Log("platform degraded to a single queue (no SO_REUSEPORT)")
	}
	var got collector
	got.install(s)

	// Many source sockets so the kernel's flow hash has flows to spread.
	const peers, each = 8, 25
	var senders []*Transport
	for i := 0; i < peers; i++ {
		tr, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		senders = append(senders, tr)
	}
	for k := 0; k < each; k++ {
		for i, tr := range senders {
			if err := tr.Send(s.LocalAddr(), []byte(fmt.Sprintf("s%d-%d", i, k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	got.waitN(t, peers*each)

	// Aggregate accounting must cover every datagram...
	st := s.Stats()
	if st.RecvDatagrams < peers*each {
		t.Fatalf("aggregate RecvDatagrams = %d, want >= %d", st.RecvDatagrams, peers*each)
	}
	// ...and the per-queue counters must sum to the aggregate.
	var sum uint64
	for i := 0; i < s.NumQueues(); i++ {
		_, d := s.QueueRecvStats(i)
		sum += d
	}
	if sum != st.RecvDatagrams {
		t.Fatalf("per-queue sum %d != aggregate %d", sum, st.RecvDatagrams)
	}
	// Source attribution must survive the fan-in.
	got.mu.Lock()
	defer got.mu.Unlock()
	for i, d := range got.data {
		var si, k int
		if _, err := fmt.Sscanf(string(d), "s%d-%d", &si, &k); err != nil {
			t.Fatalf("unparseable payload %q", d)
		}
		if got.srcs[i] != senders[si].LocalAddr() {
			t.Fatalf("payload %q attributed to %q, want %q", d, got.srcs[i], senders[si].LocalAddr())
		}
	}
}

func TestShardedSendAndBatch(t *testing.T) {
	s, err := ListenSharded("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var got collector
	got.install(b)
	if err := s.Send(b.LocalAddr(), []byte("one")); err != nil {
		t.Fatal(err)
	}
	sent, err := s.SendBatch(b.LocalAddr(), burst(16, 128))
	if err != nil || sent != 16 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	got.waitN(t, 17)
}

func TestShardedQueueCountClamp(t *testing.T) {
	s, err := ListenSharded("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumQueues() != 1 {
		t.Fatalf("NumQueues = %d, want 1 for n=0", s.NumQueues())
	}
}

package udp

import (
	"bytes"
	"testing"
	"time"
)

func pair(t *testing.T) (*Transport, *Transport) {
	t.Helper()
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestSendReceive(t *testing.T) {
	a, b := pair(t)
	got := make(chan []byte, 1)
	b.SetHandler(func(src string, data []byte) { got <- data })
	if err := a.Send(b.LocalAddr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if !bytes.Equal(d, []byte("hello")) {
			t.Fatalf("got %q", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestRoundTrip(t *testing.T) {
	a, b := pair(t)
	b.SetHandler(func(src string, data []byte) {
		if err := b.Send(src, append(data, '!')); err != nil {
			t.Error(err)
		}
	})
	got := make(chan []byte, 1)
	a.SetHandler(func(src string, data []byte) { got <- data })
	if err := a.Send(b.LocalAddr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if !bytes.Equal(d, []byte("ping!")) {
			t.Fatalf("got %q", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestSrcAddrIsSendable(t *testing.T) {
	a, b := pair(t)
	srcCh := make(chan string, 1)
	b.SetHandler(func(src string, data []byte) { srcCh <- src })
	if err := a.Send(b.LocalAddr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case src := <-srcCh:
		if src != a.LocalAddr() {
			t.Fatalf("src = %q, want %q", src, a.LocalAddr())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestClose(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close errored:", err)
	}
	if err := a.Send("127.0.0.1:9", []byte("x")); err != ErrClosed {
		t.Fatalf("Send after close = %v", err)
	}
}

func TestOversizedRejected(t *testing.T) {
	a, b := pair(t)
	if err := a.Send(b.LocalAddr(), make([]byte, MaxDatagram+1)); err == nil {
		t.Fatal("oversized accepted")
	}
}

func TestBadAddress(t *testing.T) {
	a, _ := pair(t)
	if err := a.Send("not-an-address::::", []byte("x")); err == nil {
		t.Fatal("bad address accepted")
	}
}

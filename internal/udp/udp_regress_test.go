package udp

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestResolveSingleFlight: concurrent Sends to the same new peer must
// share one resolver query (the resolve-and-cache race let every sender
// resolve independently).
func TestResolveSingleFlight(t *testing.T) {
	a, b := pair(t)
	var calls atomic.Int32
	release := make(chan struct{})
	orig := resolveUDPAddr
	resolveUDPAddr = func(network, addr string) (*net.UDPAddr, error) {
		calls.Add(1)
		<-release
		return net.ResolveUDPAddr(network, addr)
	}
	defer func() { resolveUDPAddr = orig }()

	const senders = 8
	var wg sync.WaitGroup
	errs := make([]error, senders)
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = a.Send(b.LocalAddr(), []byte("x"))
		}(i)
	}
	// Let every sender reach the resolve path before releasing it.
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("resolver called %d times, want 1", got)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
	}
	a.mu.Lock()
	cached := a.peers[b.LocalAddr()] != nil
	a.mu.Unlock()
	if !cached {
		t.Fatal("resolved address not cached")
	}
}

// TestNoCacheInsertAfterClose: a resolution that completes after Close
// must not write into the peer cache (the write used to land after the
// shutdown had already swept the transport's state).
func TestNoCacheInsertAfterClose(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	orig := resolveUDPAddr
	resolveUDPAddr = func(network, addr string) (*net.UDPAddr, error) {
		close(started)
		<-release
		return net.ResolveUDPAddr(network, addr)
	}
	defer func() { resolveUDPAddr = orig }()

	done := make(chan error, 1)
	go func() { done <- a.Send("127.0.0.1:40404", []byte("x")) }()
	<-started
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	close(release)
	<-done // the send fails (socket closed); the cache must stay clean

	a.mu.Lock()
	n := len(a.peers)
	a.mu.Unlock()
	if n != 0 {
		t.Fatalf("peer cache has %d entries after Close, want 0", n)
	}
}

// TestMaxDatagramCeiling: the limit is the real UDP payload ceiling and
// oversized sends fail with the typed error.
func TestMaxDatagramCeiling(t *testing.T) {
	if MaxDatagram != 65507 {
		t.Fatalf("MaxDatagram = %d, want 65507 (65535 - 8 UDP - 20 IPv4)", MaxDatagram)
	}
	a, b := pair(t)
	err := a.Send(b.LocalAddr(), make([]byte, MaxDatagram+1))
	if !errors.Is(err, ErrDatagramTooLarge) {
		t.Fatalf("oversized send error = %v, want ErrDatagramTooLarge", err)
	}
}

//go:build linux && amd64

package udp

// The frozen stdlib syscall tables on amd64 predate sendmmsg (kernel
// 3.0), so the numbers are pinned here per architecture.
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)

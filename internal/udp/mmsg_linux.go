//go:build linux && (amd64 || arm64)

package udp

// Vectorized I/O: raw sendmmsg/recvmmsg through the stdlib syscall
// package (no new module dependencies). The build tag pins the two
// 64-bit Linux ABIs whose syscall.Msghdr layout this file hardcodes
// (Iovlen/Controllen are uint64 there); every other GOOS/GOARCH builds
// the portable loop in mmsg_fallback.go instead.
//
// The batch send path chunks the burst into mmsgBatch headers per
// sendmmsg call; header/iovec/sockaddr scratch comes from a sync.Pool so
// the steady-state path allocates nothing. The receive loop reads up to
// mmsgBatch datagrams per recvmmsg into a buffer ring allocated once per
// transport; the ring slots are only reused after every handler of the
// previous batch has returned, which preserves the documented
// borrow-only buffer contract.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"syscall"
	"unsafe"
)

// mmsgBatch is the most datagrams one sendmmsg/recvmmsg call carries.
// Bursts from the engine's flush paths are typically far smaller (a
// window of retransmits, a kicked backlog); 64 covers them all in one
// syscall without an oversized ring.
const mmsgBatch = 64

// recvBufSize is one receive-ring slot: any legal UDP payload fits.
const recvBufSize = 65536

// mmsghdr mirrors the kernel's struct mmsghdr on the 64-bit ABIs the
// build tag selects (msghdr is 56 bytes there, so the struct pads to 64).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// sendState is the pooled per-call scratch for one sendmmsg batch.
type sendState struct {
	hdrs [mmsgBatch]mmsghdr
	iovs [mmsgBatch]syscall.Iovec
	sa4  syscall.RawSockaddrInet4
	sa6  syscall.RawSockaddrInet6
}

var sendPool = sync.Pool{New: func() any { return new(sendState) }}

// zeroByte anchors the iovec of an empty datagram (the kernel rejects a
// nil base only in some paths; never hand it one).
var zeroByte byte

// initOS learns the socket's address family so the raw send path builds
// sockaddrs the kernel accepts (an AF_INET6 dual-stack socket needs
// v4-mapped targets). Any failure leaves family 0 and the batch path
// falls back to the portable loop.
func (t *Transport) initOS() {
	rc, err := t.conn.SyscallConn()
	if err != nil {
		return
	}
	_ = rc.Control(func(fd uintptr) {
		sa, err := syscall.Getsockname(int(fd))
		if err != nil {
			return
		}
		switch sa.(type) {
		case *syscall.SockaddrInet4:
			t.family = syscall.AF_INET
		case *syscall.SockaddrInet6:
			t.family = syscall.AF_INET6
		}
	})
}

// sockaddr encodes ua into the state's raw sockaddr for this socket's
// family. ok is false for shapes the raw path cannot encode (unknown
// family, zoned IPv6, a v6 target on a v4 socket); the caller then uses
// the portable loop, which lets the stdlib handle them.
func (st *sendState) sockaddr(t *Transport, ua *net.UDPAddr) (name *byte, namelen uint32, ok bool) {
	if ua.Zone != "" {
		return nil, 0, false
	}
	ip4 := ua.IP.To4()
	switch t.family {
	case syscall.AF_INET:
		if ip4 == nil {
			return nil, 0, false
		}
		st.sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&st.sa4.Port))
		p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
		copy(st.sa4.Addr[:], ip4)
		return (*byte)(unsafe.Pointer(&st.sa4)), syscall.SizeofSockaddrInet4, true
	case syscall.AF_INET6:
		ip16 := ua.IP.To16() // maps v4 targets to ::ffff:a.b.c.d
		if ip16 == nil {
			return nil, 0, false
		}
		st.sa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		p := (*[2]byte)(unsafe.Pointer(&st.sa6.Port))
		p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
		copy(st.sa6.Addr[:], ip16)
		return (*byte)(unsafe.Pointer(&st.sa6)), syscall.SizeofSockaddrInet6, true
	}
	return nil, 0, false
}

// sendBatchWire drains the burst with sendmmsg, chunking at mmsgBatch
// headers per call. The kernel may transmit a prefix of a chunk; the
// loop resumes at the first unsent datagram, so sent is always an exact
// prefix count and an error names the datagram at index sent.
func (t *Transport) sendBatchWire(ua *net.UDPAddr, datagrams [][]byte) (int, error) {
	rc, err := t.conn.SyscallConn()
	if err != nil {
		return t.sendBatchLoop(ua, datagrams)
	}
	st := sendPool.Get().(*sendState)
	defer sendPool.Put(st)
	name, namelen, ok := st.sockaddr(t, ua)
	if !ok {
		return t.sendBatchLoop(ua, datagrams)
	}

	sent := 0
	for sent < len(datagrams) {
		// Fill up to mmsgBatch headers, stopping short of an oversized
		// datagram so everything before it still goes down in one call.
		k := 0
		for sent+k < len(datagrams) && k < mmsgBatch {
			d := datagrams[sent+k]
			if len(d) > MaxDatagram {
				if k == 0 {
					return sent, fmt.Errorf("%w: %d > %d", ErrDatagramTooLarge, len(d), MaxDatagram)
				}
				break
			}
			iov := &st.iovs[k]
			if len(d) > 0 {
				iov.Base = &d[0]
			} else {
				iov.Base = &zeroByte
			}
			iov.Len = uint64(len(d))
			h := &st.hdrs[k]
			h.hdr = syscall.Msghdr{Name: name, Namelen: namelen, Iov: iov, Iovlen: 1}
			h.len = 0
			k++
		}

		var n int
		var errno syscall.Errno
		werr := rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&st.hdrs[0])), uintptr(k),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN || e == syscall.EINTR {
				return false // wait for writability, then retry
			}
			n, errno = int(r1), e
			return true
		})
		if werr != nil {
			return sent, werr
		}
		if errno != 0 {
			return sent, fmt.Errorf("udp: sendmmsg: %w", errno)
		}
		if n <= 0 {
			return sent, errors.New("udp: sendmmsg made no progress")
		}
		sent += n
	}
	return sent, nil
}

// readLoop is the vectorized receive loop: one recvmmsg call drains up
// to mmsgBatch queued datagrams into the ring, then the handler runs
// once per datagram in arrival order. Ring slots are reused only on the
// next recvmmsg, after every handler of this batch has returned.
func (t *Transport) readLoop() {
	defer close(t.done)
	rc, err := t.conn.SyscallConn()
	if err != nil {
		t.readLoopGeneric()
		return
	}

	ring := make([]byte, mmsgBatch*recvBufSize)
	var (
		hdrs  [mmsgBatch]mmsghdr
		iovs  [mmsgBatch]syscall.Iovec
		names [mmsgBatch]syscall.RawSockaddrAny
	)
	for i := range hdrs {
		iovs[i].Base = &ring[i*recvBufSize]
		iovs[i].Len = recvBufSize
		hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&names[i]))
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
	}

	var lastRaw syscall.RawSockaddrAny
	var lastSrc string
	for {
		for i := range hdrs {
			hdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
			hdrs[i].len = 0
		}
		var n int
		var errno syscall.Errno
		rerr := rc.Read(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), mmsgBatch,
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN || e == syscall.EINTR {
				return false // wait for readability
			}
			n, errno = int(r1), e
			return true
		})
		if rerr != nil {
			return // closed
		}
		if errno != 0 || n <= 0 {
			return
		}
		t.stats.batchRecvs.Add(1)
		t.stats.recvDatagrams.Add(uint64(n))

		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			continue
		}
		for i := 0; i < n; i++ {
			// Cache the stringified source: traffic is typically runs
			// of datagrams from the same peer, and building the string
			// allocates.
			if !rawAddrEqual(&names[i], &lastRaw) {
				lastRaw = names[i]
				lastSrc = rawAddrString(&names[i])
			}
			h(lastSrc, ring[i*recvBufSize:i*recvBufSize+int(hdrs[i].len)])
		}
	}
}

// rawAddrEqual compares the family-meaningful prefix of two raw
// sockaddrs. Slots keep stale bytes from earlier peers past the written
// length, so a whole-struct compare would mis-report runs.
func rawAddrEqual(a, b *syscall.RawSockaddrAny) bool {
	if a.Addr.Family != b.Addr.Family {
		return false
	}
	var n uintptr
	switch a.Addr.Family {
	case syscall.AF_INET:
		n = syscall.SizeofSockaddrInet4
	case syscall.AF_INET6:
		n = syscall.SizeofSockaddrInet6
	default:
		return false
	}
	ab := (*[syscall.SizeofSockaddrAny]byte)(unsafe.Pointer(a))[:n]
	bb := (*[syscall.SizeofSockaddrAny]byte)(unsafe.Pointer(b))[:n]
	return bytes.Equal(ab, bb)
}

// rawAddrString renders a raw sockaddr as the host:port form the rest of
// the system keys peers by, matching what net.UDPAddr.String would have
// produced for the same datagram (v4-mapped v6 prints as plain v4).
func rawAddrString(sa *syscall.RawSockaddrAny) string {
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		ua := net.UDPAddr{IP: net.IP(sa4.Addr[:]), Port: int(p[0])<<8 | int(p[1])}
		return ua.String()
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa6.Port))
		ua := net.UDPAddr{IP: net.IP(sa6.Addr[:]), Port: int(p[0])<<8 | int(p[1])}
		if sa6.Scope_id != 0 {
			// Numeric zone: the rare link-local case; good enough for a
			// routing key, and it avoids an interface-table lookup here.
			ua.Zone = strconv.FormatUint(uint64(sa6.Scope_id), 10)
		}
		return ua.String()
	}
	return "?"
}

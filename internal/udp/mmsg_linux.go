//go:build linux && (amd64 || arm64)

package udp

// Vectorized I/O: raw sendmmsg/recvmmsg through the stdlib syscall
// package (no new module dependencies). The build tag pins the two
// 64-bit Linux ABIs whose syscall.Msghdr layout this file hardcodes
// (Iovlen/Controllen are uint64 there); every other GOOS/GOARCH builds
// the portable loop in mmsg_fallback.go instead.
//
// The batch send path chunks the burst into mmsgBatch headers per
// sendmmsg call; header/iovec/sockaddr scratch comes from a sync.Pool so
// the steady-state path allocates nothing. When the UDP_SEGMENT offload
// is on (gso_linux.go), equal-size runs become super-datagram headers
// inside the same sendmmsg call. The receive loop reads up to mmsgBatch
// datagrams per recvmmsg into a buffer ring allocated once per
// transport, splitting UDP_GRO-coalesced payloads back into datagrams;
// the ring slots are only reused after every handler of the previous
// batch has returned, which preserves the documented borrow-only buffer
// contract.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"unsafe"

	"paccel/internal/telemetry"
)

// mmsgBatch is the most datagrams one sendmmsg/recvmmsg call carries.
// Bursts from the engine's flush paths are typically far smaller (a
// window of retransmits, a kicked backlog); 64 covers them all in one
// syscall without an oversized ring.
const mmsgBatch = 64

// recvBufSize is one receive-ring slot: any legal UDP payload fits (and
// with GRO, any coalesced payload — the kernel caps coalescing at the
// 64 KB UDP ceiling).
const recvBufSize = 65536

// mmsghdr mirrors the kernel's struct mmsghdr on the 64-bit ABIs the
// build tag selects (msghdr is 56 bytes there, so the struct pads to 64).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// sendState is the pooled per-call scratch for one sendmmsg batch: the
// header/iovec arrays, per-header segment counts and control buffers for
// the GSO tier, the coalesce scratch (lazily allocated — transports
// without the offload never pay for it), and the sockaddr. The write
// step's parameters and results live here too, with writeStep bound once
// per state: a fresh closure per rc.Write call would put an allocation
// on the steady-state send path.
type sendState struct {
	hdrs [mmsgBatch]mmsghdr
	iovs [mmsgBatch]syscall.Iovec
	segs [mmsgBatch]int
	oobs [mmsgBatch][gsoOOB]byte
	buf  []byte
	sa4  syscall.RawSockaddrInet4
	sa6  syscall.RawSockaddrInet6

	// Per-slot sockaddrs for the scattered-destination path
	// (SendBatchTo): a fanout burst points every header at a different
	// member, so each slot needs its own target (sa4/sa6 above serve
	// the single-destination path, where one sockaddr is shared by the
	// whole chunk).
	sa4s [mmsgBatch]syscall.RawSockaddrInet4
	sa6s [mmsgBatch]syscall.RawSockaddrInet6

	t        *Transport
	off, cnt int // header window the next write step transmits
	n        int // headers the kernel accepted
	errno    syscall.Errno
	writeFn  func(fd uintptr) bool
}

// writeStep issues one sendmmsg over the state's current header window.
// It runs under rc.Write, so returning false parks the goroutine in the
// poller until the socket is writable again.
func (st *sendState) writeStep(fd uintptr) bool {
	st.t.stats.txSyscalls.Add(1)
	r1, e := sendmmsgCall(fd, &st.hdrs[st.off], st.cnt, syscall.MSG_DONTWAIT)
	if e == syscall.EAGAIN || e == syscall.EINTR {
		return false // wait for writability, then retry
	}
	st.n, st.errno = r1, e
	return true
}

var sendPool = sync.Pool{New: func() any {
	st := new(sendState)
	st.writeFn = st.writeStep
	return st
}}

// putSendState drops the transport reference (a pooled state must not
// pin a closed transport) and returns the state to the pool.
func putSendState(st *sendState) {
	st.t = nil
	sendPool.Put(st)
}

// zeroByte anchors the iovec of an empty datagram (the kernel rejects a
// nil base only in some paths; never hand it one).
var zeroByte byte

// sendmmsgCall and recvmmsgCall issue the raw system calls. They are
// package vars so tests can interpose errnos — the transient-receive
// and GSO-refusal fallback paths need a regression test that does not
// depend on a cooperating kernel.
var sendmmsgCall = func(fd uintptr, hdrs *mmsghdr, vlen, flags int) (int, syscall.Errno) {
	r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(hdrs)), uintptr(vlen), uintptr(flags), 0, 0)
	return int(r1), e
}

var recvmmsgCall = func(fd uintptr, hdrs *mmsghdr, vlen, flags int) (int, syscall.Errno) {
	r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(hdrs)), uintptr(vlen), uintptr(flags), 0, 0)
	return int(r1), e
}

// initOS learns the socket's address family so the raw send path builds
// sockaddrs the kernel accepts (an AF_INET6 dual-stack socket needs
// v4-mapped targets), then probes the kernel offloads (gso_linux.go).
// Any failure leaves family 0 and the batch path falls back to the
// portable loop.
func (t *Transport) initOS() {
	rc, err := t.conn.SyscallConn()
	if err != nil {
		return
	}
	t.rc = rc
	_ = rc.Control(func(fd uintptr) {
		sa, err := syscall.Getsockname(int(fd))
		if err != nil {
			return
		}
		switch sa.(type) {
		case *syscall.SockaddrInet4:
			t.family = syscall.AF_INET
		case *syscall.SockaddrInet6:
			t.family = syscall.AF_INET6
		}
		t.probeOffload(int(fd))
	})
}

// sockaddr encodes ua into the state's raw sockaddr for this socket's
// family. ok is false for shapes the raw path cannot encode (unknown
// family, zoned IPv6, a v6 target on a v4 socket); the caller then uses
// the portable loop, which lets the stdlib handle them.
func (st *sendState) sockaddr(t *Transport, ua *net.UDPAddr) (name *byte, namelen uint32, ok bool) {
	if ua.Zone != "" {
		return nil, 0, false
	}
	ip4 := ua.IP.To4()
	switch t.family {
	case syscall.AF_INET:
		if ip4 == nil {
			return nil, 0, false
		}
		st.sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&st.sa4.Port))
		p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
		copy(st.sa4.Addr[:], ip4)
		return (*byte)(unsafe.Pointer(&st.sa4)), syscall.SizeofSockaddrInet4, true
	case syscall.AF_INET6:
		ip16 := ua.IP.To16() // maps v4 targets to ::ffff:a.b.c.d
		if ip16 == nil {
			return nil, 0, false
		}
		st.sa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		p := (*[2]byte)(unsafe.Pointer(&st.sa6.Port))
		p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
		copy(st.sa6.Addr[:], ip16)
		return (*byte)(unsafe.Pointer(&st.sa6)), syscall.SizeofSockaddrInet6, true
	}
	return nil, 0, false
}

// sockaddrAt encodes ua into slot i's raw sockaddr, the per-header
// variant of sockaddr for the scattered-destination path. ok is false
// for shapes the raw path cannot encode; the caller then sends that
// datagram through the portable loop.
func (st *sendState) sockaddrAt(t *Transport, ua *net.UDPAddr, i int) (name *byte, namelen uint32, ok bool) {
	if ua.Zone != "" {
		return nil, 0, false
	}
	ip4 := ua.IP.To4()
	switch t.family {
	case syscall.AF_INET:
		if ip4 == nil {
			return nil, 0, false
		}
		st.sa4s[i] = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&st.sa4s[i].Port))
		p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
		copy(st.sa4s[i].Addr[:], ip4)
		return (*byte)(unsafe.Pointer(&st.sa4s[i])), syscall.SizeofSockaddrInet4, true
	case syscall.AF_INET6:
		ip16 := ua.IP.To16()
		if ip16 == nil {
			return nil, 0, false
		}
		st.sa6s[i] = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		p := (*[2]byte)(unsafe.Pointer(&st.sa6s[i].Port))
		p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
		copy(st.sa6s[i].Addr[:], ip16)
		return (*byte)(unsafe.Pointer(&st.sa6s[i])), syscall.SizeofSockaddrInet6, true
	}
	return nil, 0, false
}

// sendBatchToWire drains a scattered-destination burst with sendmmsg,
// chunking at mmsgBatch headers per call, each header carrying its own
// sockaddr. No UDP_SEGMENT coalescing: a super-datagram has one
// destination, and a fanout's datagrams each have their own. The kernel
// may transmit a prefix of a chunk; the loop resumes at the first unsent
// datagram, so sent is always an exact prefix count. Datagrams whose
// resolved address the raw path cannot encode (zoned IPv6, a v6 target
// on a v4 socket) are sent through WriteToUDP at their position in the
// burst, preserving slice order.
func (t *Transport) sendBatchToWire(dsts []string, datagrams [][]byte) (int, error) {
	rc := t.rc
	if rc == nil {
		return t.sendBatchToLoop(dsts, datagrams)
	}
	st := sendPool.Get().(*sendState)
	defer putSendState(st)
	st.t = t

	sent := 0
	for sent < len(datagrams) {
		// Build one chunk of plain headers, one sockaddr per slot.
		k := 0
		var stopErr error
		loopFallback := false
		for k < mmsgBatch && sent+k < len(datagrams) {
			d := datagrams[sent+k]
			if len(d) > MaxDatagram {
				stopErr = oversizedErr(len(d))
				break
			}
			ua, err := t.resolve(dsts[sent+k])
			if err != nil {
				stopErr = err
				break
			}
			name, namelen, ok := st.sockaddrAt(t, ua, k)
			if !ok {
				loopFallback = true
				break
			}
			iov := &st.iovs[k]
			if len(d) > 0 {
				iov.Base = &d[0]
			} else {
				iov.Base = &zeroByte
			}
			iov.Len = uint64(len(d))
			hdr := &st.hdrs[k].hdr
			hdr.Name = name
			hdr.Namelen = namelen
			hdr.Iov = iov
			hdr.Iovlen = 1
			hdr.Control = nil
			hdr.Controllen = 0
			st.segs[k] = 1
			k++
		}
		// Transmit the chunk built so far.
		done := 0
		for done < k {
			st.off, st.cnt = done, k-done
			if werr := rc.Write(st.writeFn); werr != nil {
				return sent, werr
			}
			n, errno := st.n, st.errno
			if errno != 0 {
				return sent, fmt.Errorf("udp: sendmmsg: %w", errno)
			}
			if n <= 0 {
				return sent, errors.New("udp: sendmmsg made no progress")
			}
			sent += n
			done += n
		}
		if stopErr != nil {
			return sent, stopErr
		}
		if loopFallback {
			// The datagram at index sent has an address shape only the
			// stdlib can encode; send it alone, in order, and resume the
			// vectorized path after it.
			ua, err := t.resolve(dsts[sent])
			if err != nil {
				return sent, err
			}
			t.stats.txSyscalls.Add(1)
			if _, err := t.conn.WriteToUDP(datagrams[sent], ua); err != nil {
				return sent, err
			}
			sent++
		}
	}
	return sent, nil
}

// oversizedErr builds the wrapped ErrDatagramTooLarge every send path
// reports.
func oversizedErr(n int) error {
	return fmt.Errorf("%w: %d > %d", ErrDatagramTooLarge, n, MaxDatagram)
}

// sendBatchWire drains the burst with sendmmsg, chunking at mmsgBatch
// headers per call; fill (gso_linux.go) coalesces equal-size runs into
// UDP_SEGMENT super-datagram headers when the offload is on, so one
// chunk can carry up to mmsgBatch×maxGSOSegments datagrams. The kernel
// may transmit a prefix of a chunk; the loop resumes at the first unsent
// datagram, so sent is always an exact prefix count and an error names
// the datagram at index sent. A refusal errno on a chunk that carried a
// super-datagram triggers the sticky GSO fallback and the chunk is
// rebuilt from plain headers — nothing from it had been transmitted, so
// the prefix contract holds.
func (t *Transport) sendBatchWire(ua *net.UDPAddr, datagrams [][]byte) (int, error) {
	rc := t.rc
	if rc == nil {
		return t.sendBatchLoop(ua, datagrams)
	}
	st := sendPool.Get().(*sendState)
	defer putSendState(st)
	st.t = t
	name, namelen, ok := st.sockaddr(t, ua)
	if !ok {
		return t.sendBatchLoop(ua, datagrams)
	}

	sent := 0
	for sent < len(datagrams) {
		k, fillErr := st.fill(t, name, namelen, datagrams[sent:])
		if k == 0 {
			return sent, fillErr // head datagram oversized
		}
		refused := false
		done := 0 // headers transmitted so far in this chunk
		for done < k {
			st.off, st.cnt = done, k-done
			werr := rc.Write(st.writeFn)
			if werr != nil {
				return sent, werr
			}
			n, errno := st.n, st.errno
			if errno != 0 {
				if gsoRefused(errno) && st.hasGSO(done, k) {
					// The kernel (or path MTU) rejected the segmentation
					// cmsg. Disable the offload and rebuild this chunk's
					// remainder with plain headers.
					t.disableGSO()
					refused = true
					break
				}
				return sent, fmt.Errorf("udp: sendmmsg: %w", errno)
			}
			if n <= 0 {
				return sent, errors.New("udp: sendmmsg made no progress")
			}
			for i := done; i < done+n; i++ {
				sent += st.segs[i]
				if st.segs[i] > 1 {
					t.stats.gsoSends.Add(1)
					t.stats.gsoSegments.Add(uint64(st.segs[i]))
				}
			}
			done += n
		}
		if refused {
			continue // refill from datagrams[sent:] without the offload
		}
		if fillErr != nil {
			return sent, fillErr // oversized datagram at index sent
		}
	}
	return sent, nil
}

// closedRecvErrno reports whether a recvmmsg errno means the socket is
// gone (shut down under the loop) rather than a transient kernel
// condition. Everything else — ENOBUFS and ENOMEM under memory
// pressure, unexpected one-offs — is survivable: returning would leave
// the transport permanently deaf while Send still works.
func closedRecvErrno(e syscall.Errno) bool {
	switch e {
	case syscall.EBADF, syscall.EINVAL, syscall.ENOTSOCK, syscall.ENOTCONN:
		return true
	}
	return false
}

// readLoop is the vectorized receive loop: one recvmmsg call drains up
// to mmsgBatch queued datagrams into the ring, then the handler runs
// once per datagram in arrival order, with UDP_GRO-coalesced payloads
// split back into their original datagrams first. Ring slots are reused
// only on the next recvmmsg, after every handler of this batch has
// returned.
func (t *Transport) readLoop() {
	defer close(t.done)
	if t.pinned {
		// ListenSharded's per-queue loops: one OS thread per queue, the
		// userspace analogue of a pinned NIC receive queue.
		runtime.LockOSThread()
	}
	rc := t.rc
	if rc == nil || debugGenericRead {
		t.readLoopGeneric()
		return
	}

	ring := make([]byte, mmsgBatch*recvBufSize)
	var (
		hdrs  [mmsgBatch]mmsghdr
		iovs  [mmsgBatch]syscall.Iovec
		names [mmsgBatch]syscall.RawSockaddrAny
	)
	var ctrls []byte
	if t.groOn {
		ctrls = make([]byte, mmsgBatch*groOOB)
	}
	for i := range hdrs {
		iovs[i].Base = &ring[i*recvBufSize]
		iovs[i].Len = recvBufSize
		hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&names[i]))
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
		if ctrls != nil {
			hdrs[i].hdr.Control = &ctrls[i*groOOB]
		}
	}

	var lastRaw syscall.RawSockaddrAny
	var lastSrc string
	for {
		for i := range hdrs {
			hdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
			hdrs[i].len = 0
			if ctrls != nil {
				hdrs[i].hdr.Controllen = groOOB
			}
		}
		var n int
		var errno syscall.Errno
		rerr := rc.Read(func(fd uintptr) bool {
			t.stats.rxSyscalls.Add(1)
			r1, e := recvmmsgCall(fd, &hdrs[0], mmsgBatch, syscall.MSG_DONTWAIT)
			if e == syscall.EAGAIN || e == syscall.EINTR {
				return false // wait for readability
			}
			n, errno = r1, e
			return true
		})
		if rerr != nil {
			return // closed (poller torn down)
		}
		if errno != 0 {
			if closedRecvErrno(errno) {
				return
			}
			// Transient failure (ENOBUFS, ENOMEM, ...): count it, tell
			// telemetry, and keep listening — exiting here would leave
			// the transport deaf forever while sends still succeed.
			t.stats.recvErrors.Add(1)
			t.tel.Load().Event(telemetry.EventFault, 0, causeRecvError)
			runtime.Gosched()
			continue
		}
		if n <= 0 {
			return
		}
		t.stats.batchRecvs.Add(1)

		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		delivered := 0
		for i := 0; i < n; i++ {
			payload := ring[i*recvBufSize : i*recvBufSize+int(hdrs[i].len)]
			// Cache the stringified source: traffic is typically runs
			// of datagrams from the same peer, and building the string
			// allocates.
			if !rawAddrEqual(&names[i], &lastRaw) {
				lastRaw = names[i]
				lastSrc = rawAddrString(&names[i])
			}
			seg := 0
			if ctrls != nil && hdrs[i].hdr.Controllen > 0 {
				seg = groSegSize(ctrls[i*groOOB : i*groOOB+int(hdrs[i].hdr.Controllen)])
			}
			if seg > 0 && seg < len(payload) {
				// A kernel-coalesced payload: split it back into the
				// original wire datagrams (borrow-only subslices).
				src := lastSrc
				segs := splitSegments(payload, seg, func(d []byte) {
					if h != nil {
						h(src, d)
					}
				})
				t.stats.groRecvs.Add(1)
				t.stats.groSegments.Add(uint64(segs))
				delivered += segs
				continue
			}
			if h != nil {
				h(lastSrc, payload)
			}
			delivered++
		}
		t.stats.recvDatagrams.Add(uint64(delivered))
	}
}

// rawAddrEqual compares the family-meaningful prefix of two raw
// sockaddrs — for IPv6 that includes Scope_id, so link-local peers with
// the same address on different interfaces never conflate. Slots keep
// stale bytes from earlier peers past the written length, so a
// whole-struct compare would mis-report runs.
func rawAddrEqual(a, b *syscall.RawSockaddrAny) bool {
	if a.Addr.Family != b.Addr.Family {
		return false
	}
	var n uintptr
	switch a.Addr.Family {
	case syscall.AF_INET:
		n = syscall.SizeofSockaddrInet4
	case syscall.AF_INET6:
		n = syscall.SizeofSockaddrInet6
	default:
		return false
	}
	ab := (*[syscall.SizeofSockaddrAny]byte)(unsafe.Pointer(a))[:n]
	bb := (*[syscall.SizeofSockaddrAny]byte)(unsafe.Pointer(b))[:n]
	return bytes.Equal(ab, bb)
}

// rawAddrString renders a raw sockaddr as the host:port form the rest of
// the system keys peers by, matching what net.UDPAddr.String would have
// produced for the same datagram (v4-mapped v6 prints as plain v4).
func rawAddrString(sa *syscall.RawSockaddrAny) string {
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		ua := net.UDPAddr{IP: net.IP(sa4.Addr[:]), Port: int(p[0])<<8 | int(p[1])}
		return ua.String()
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa6.Port))
		ua := net.UDPAddr{IP: net.IP(sa6.Addr[:]), Port: int(p[0])<<8 | int(p[1])}
		if sa6.Scope_id != 0 {
			// Numeric zone: the rare link-local case; good enough for a
			// routing key, and it avoids an interface-table lookup here.
			ua.Zone = strconv.FormatUint(uint64(sa6.Scope_id), 10)
		}
		return ua.String()
	}
	return "?"
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
	"paccel/internal/telemetry"
	"paccel/internal/vclock"
)

// Errors returned by Conn operations.
var (
	ErrConnClosed = errors.New("core: connection closed")
	// ErrBackpressure is the typed graceful-degradation error: the
	// engine refuses work rather than grow a queue without bound.
	// Overload errors wrap it, so callers match with
	// errors.Is(err, ErrBackpressure).
	ErrBackpressure = errors.New("core: backpressure")
	// ErrBacklogFull reports a send refused because prediction is
	// disabled (window closed) and the backlog is at MaxBacklog. It
	// wraps ErrBackpressure.
	ErrBacklogFull = fmt.Errorf("%w: send backlog full", ErrBackpressure)
	ErrSendFailed  = errors.New("core: send rejected by packet filter")
)

// postKind discriminates the deferred post-processing operations. The
// queue used to hold closures; a typed queue keeps the fast paths free of
// per-message closure allocations.
type postKind uint8

const (
	postSend         postKind = iota // stack.PostSend, then free m
	postDeliver                      // stack.PostDeliver[Above], then free m
	postDeliverBelow                 // stack.PostDeliverBelow at index `at`
	postFn                           // a layer-deferred action (Services.Defer)
)

// postOp is one queued post-processing step (§3.1). m and env are owned
// by the op until it runs; env returns to the connection's pool after.
type postOp struct {
	kind postKind
	m    *message.Msg
	env  *filter.Env
	from stack.Layer // postDeliver: re-enter above this layer (nil: full stack)
	at   int         // postDeliverBelow: layer index
	free bool        // postDeliverBelow: free m afterwards (dropped messages)
	fn   func()      // postFn
}

// sideState is the per-direction PA state of Table 3: operation mode, the
// predicted headers, the prediction disable counter, the packet filter,
// and (send side) the backlog of messages awaiting processing.
type sideState struct {
	mode    Mode
	predict [header.NumClasses][]byte
	disable int
	prog    *filter.Program
	comp    *filter.Compiled
	backlog []*message.Msg

	// pending is the FIFO of deferred post-processing; head indexes the
	// next op so the slice's capacity is reused instead of re-sliced
	// away (the queue is on the per-message path).
	pending []postOp
	head    int
}

func (s *sideState) pendingLen() int { return len(s.pending) - s.head }

func (s *sideState) pushPost(op postOp) { s.pending = append(s.pending, op) }

func (s *sideState) popPost() postOp {
	op := s.pending[s.head]
	s.pending[s.head] = postOp{} // drop references for the pool/GC
	s.head++
	if s.head == len(s.pending) {
		s.pending = s.pending[:0]
		s.head = 0
	}
	return op
}

// runFilter executes the side's packet filter, compiled if available.
func (s *sideState) runFilter(env *filter.Env) int {
	if s.comp != nil {
		return s.comp.Run(env)
	}
	return s.prog.Run(env)
}

// appOut is one application delivery waiting for its callback. Payloads
// are copied into the connection's scratch buffer (appBuf) so that
// post-processing may free the wire message independently; entries store
// offsets because appBuf may be reallocated by later appends.
type appOut struct {
	off, n int
}

// Conn is one Protocol Accelerator: the engine of the paper's Figure 3,
// instantiated per connection.
//
// Buffer ownership on the critical paths (see DESIGN.md "Zero-allocation
// fast paths"): wire images queued for transmission live in pooled tx
// buffers (txFree) that return to the pool once the transport's Send
// call returns; filter environments and stack contexts are pooled per
// connection and recycled when the post-processing op that owns them has
// run; application payloads are copied into appBuf, whose capacity is
// retained across deliveries.
type Conn struct {
	ep   *Endpoint
	spec PeerSpec

	mu sync.Mutex

	// addr is the peer's current transport address. It starts as
	// spec.Addr and is rewritten by peer address migration when an
	// ident-validated datagram arrives from elsewhere (NAT rebind);
	// guarded by mu (spec.Addr keeps the original for reference).
	addr string

	st     *stack.Stack
	schema *header.Schema
	ident  Identifier
	// Secure-layer hooks, discovered structurally in newConn (nil without
	// an encryption layer): aead backs the Seal/Open filter ops, resealer
	// re-seals SendRaw replays sealed under a pre-rekey epoch, terminal
	// turns nonce exhaustion into a hard (non-recoverable) failure.
	aead     filter.AEAD
	resealer resealerLayer
	terminal terminalLayer
	// identIdx is the identification layer's stack index; delivery
	// verdicts issued above it (at < identIdx) passed identification,
	// the safety gate for address migration.
	identIdx int

	order                    bits.ByteOrder
	protoN, msgN, gosN, cidN int

	outCookie  uint64
	needConnID bool // next outgoing message carries the identification

	// inCookies are the incoming cookies routed to this connection in
	// the endpoint's sharded router; guarded by ep.routeMu, not c.mu.
	inCookies []uint64

	send sideState
	recv sideState

	deliverQ  []releaseItem
	appQ      []appOut
	appQSpare []appOut // recycled appQ capacity
	appBuf    []byte   // scratch backing the queued payload copies

	txq       [][]byte // wire images awaiting flushTx, pooled buffers
	txqSpare  [][]byte // recycled txq capacity
	txFree    [][]byte // transmit buffer pool
	txBusy    atomic.Bool
	txPending atomic.Int64 // queued wire images; flushTx's lock-free fast exit

	envFree     []*filter.Env    // filter environment pool
	ctxFree     []*stack.Context // phase context pool
	packScratch []byte           // packing header encode scratch
	sizeScratch []int            // packed sub-size scratch

	// usesTime caches whether any filter program consumes Env.Time, so
	// the fast paths skip the per-message clock read otherwise.
	usesTime bool

	onDeliver func(payload []byte)
	closed    bool
	settling  bool
	stats     ConnStats

	// Telemetry (DESIGN.md §12). tel is nil when disabled, making every
	// instrumentation site one predictable branch. telShard spreads this
	// connection's histogram records over the recorder's shards (dial
	// order); telCount/telMask sample 1 in 2^k operation durations
	// (guarded by c.mu); telFlushCount does the same for transmit
	// flushes, which run outside c.mu but serialized under txBusy.
	tel           *telemetry.Recorder
	telShard      uint32
	telMask       uint32
	telCount      uint32
	telFlushCount uint32

	// failCause is non-nil once the connection entered the Failed state
	// (see supervise.go); it is set exactly once, under mu.
	failCause error
	// Recovery engine state (recovery.go), all guarded by mu.
	// failCause stays nil while recovering: Recovering is not Failed,
	// and datagrams must keep flowing in (one completes the recovery).
	recovering     bool
	recoverCause   error        // what started the recovery
	recoverAttempt int          // probe rounds used
	recoverHold    bool         // holds send.disable while recovering
	recoverTimer   vclock.Timer // next probe
	recoverRng     *rand.Rand   // full-jitter backoff source
	// recvActivity counts accepted incoming datagrams — dead-peer
	// detection's liveness signal, one increment per delivery, no clock
	// read on the critical path.
	recvActivity uint64
	superSeen    uint64       // recvActivity at the last supervision tick
	superTimer   vclock.Timer // dead-peer detection timer
	// backlogCond, created on first use, blocks Send when
	// Config.BlockOnBackpressure is set and the backlog is full.
	backlogCond *sync.Cond

	// idleCh wakes the optional background drainer (LazyPost+IdleDrain).
	idleCh chan struct{}
}

type releaseItem struct {
	from stack.Layer
	m    *message.Msg
}

// The engine discovers an encryption layer structurally, the same way it
// hands out telemetry recorders: a layer that implements filter.AEAD is
// installed into every pooled filter environment (backing the Seal/Open
// filter ops); one that implements resealerLayer is given each frame
// SendRaw retransmits, so replays of frames sealed before a rekey are
// re-sealed under the current key; one that implements terminalLayer can
// declare an unrecoverable error (nonce exhaustion) that hard-fails the
// connection instead of riding the recovery engine.
type resealerLayer interface {
	Reseal(m *message.Msg) error
}

type terminalLayer interface {
	TerminalErr() error
}

// newConn wires up a connection: builds the stack, compiles the schema and
// filters, allocates prediction buffers, and primes the layers.
func newConn(ep *Endpoint, spec PeerSpec) (*Conn, error) {
	ls, err := ep.cfg.build()(spec, ep.cfg.Order)
	if err != nil {
		return nil, err
	}
	st, err := stack.NewStack(ls...)
	if err != nil {
		return nil, err
	}
	c := &Conn{ep: ep, spec: spec, addr: spec.Addr, st: st, order: ep.cfg.Order}
	seq := ep.connSeq.Add(1)
	c.tel = ep.cfg.Telemetry
	c.telShard = uint32(seq)
	c.telMask = ep.cfg.telemetrySampleMask()
	for _, l := range ls {
		if id, ok := l.(Identifier); ok {
			c.ident = id
		}
		if a, ok := l.(filter.AEAD); ok {
			c.aead = a
		}
		if r, ok := l.(resealerLayer); ok {
			c.resealer = r
		}
		if t, ok := l.(terminalLayer); ok {
			c.terminal = t
		}
	}
	if c.ident == nil {
		return nil, fmt.Errorf("core: stack has no identification layer")
	}
	c.identIdx = st.Index(c.ident)
	if c.recoveryOn() {
		c.recoverRng = newRecoveryRng(ep, seq)
	}

	c.schema = header.New()
	sb, rb := filter.NewBuilder(), filter.NewBuilder()
	if err := st.Init(&stack.InitContext{Schema: c.schema, SendFilter: sb, RecvFilter: rb}); err != nil {
		return nil, err
	}
	if err := c.schema.Compile(); err != nil {
		return nil, err
	}
	if c.send.prog, err = sb.Build(); err != nil {
		return nil, fmt.Errorf("core: send filter: %w", err)
	}
	if c.recv.prog, err = rb.Build(); err != nil {
		return nil, fmt.Errorf("core: recv filter: %w", err)
	}
	if ep.cfg.CompiledFilters {
		c.send.comp = c.send.prog.Compile()
		c.recv.comp = c.recv.prog.Compile()
	}
	c.usesTime = c.send.prog.UsesTime() || c.recv.prog.UsesTime()
	c.protoN = c.schema.Size(header.ProtoSpec)
	c.msgN = c.schema.Size(header.MsgSpec)
	c.gosN = c.schema.Size(header.Gossip)
	c.cidN = c.schema.Size(header.ConnID)

	for cl := header.Class(0); cl < header.NumClasses; cl++ {
		c.send.predict[cl] = make([]byte, c.schema.Size(cl))
		c.recv.predict[cl] = make([]byte, c.schema.Size(cl))
	}

	c.outCookie = spec.OutCookie
	if c.outCookie == 0 {
		if c.outCookie, err = NewCookie(); err != nil {
			return nil, err
		}
	}
	c.needConnID = !spec.SkipFirstConnID

	// Hand the recorder to layers that report into it (window resume
	// events, stamp one-way samples). The structural assertion keeps the
	// stack contract unchanged: layers that do not know telemetry exists
	// are untouched.
	if c.tel != nil {
		for _, l := range ls {
			if ts, ok := l.(interface {
				SetTelemetry(*telemetry.Recorder, uint64, uint32)
			}); ok {
				ts.SetTelemetry(c.tel, c.outCookie, c.telShard)
			}
		}
	}

	ctx := c.ctx(nil)
	st.Prime(ctx)
	c.putCtx(ctx)

	if ep.cfg.LazyPost && ep.cfg.IdleDrain {
		c.idleCh = make(chan struct{}, 1)
		go c.idleDrainer()
	}
	c.startSupervision()
	return c, nil
}

// idleDrainer runs pending post-processing in the background — the
// paper's "when the application is idle or blocked" (§1). It is woken
// after operations that leave lazy work queued.
func (c *Conn) idleDrainer() {
	for range c.idleCh {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.drain(&c.recv)
		c.drain(&c.send)
		c.settle()
		c.mu.Unlock()
		c.flushTx()
	}
}

// wakeIdle nudges the background drainer if one exists and work is
// pending. Caller holds c.mu.
func (c *Conn) wakeIdle() {
	if c.idleCh == nil || (c.recv.pendingLen() == 0 && c.send.pendingLen() == 0) {
		return
	}
	select {
	case c.idleCh <- struct{}{}:
	default:
	}
}

// ctx builds a phase context around the (possibly nil) message env.
// Contexts are pooled: callers putCtx them back when the phase call
// returns. A layer must not retain a Context past the phase call (the
// stable fields — Order, the prediction buffers, S — may be copied out,
// as Prime already does).
func (c *Conn) ctx(env *filter.Env) *stack.Context {
	var x *stack.Context
	if n := len(c.ctxFree); n > 0 {
		x = c.ctxFree[n-1]
		c.ctxFree = c.ctxFree[:n-1]
	} else {
		x = &stack.Context{
			Order:       c.order,
			PredictSend: c.send.predict,
			PredictRecv: c.recv.predict,
			S:           c,
		}
	}
	x.Env = env
	return x
}

func (c *Conn) putCtx(x *stack.Context) {
	x.Env = nil
	if len(c.ctxFree) < 16 {
		c.ctxFree = append(c.ctxFree, x)
	}
}

// getEnv returns a cleared filter environment from the connection pool.
func (c *Conn) getEnv() *filter.Env {
	if n := len(c.envFree); n > 0 {
		e := c.envFree[n-1]
		c.envFree = c.envFree[:n-1]
		e.AEAD = c.aead
		return e
	}
	return &filter.Env{AEAD: c.aead}
}

// putEnv recycles an environment once no queued op references it.
func (c *Conn) putEnv(e *filter.Env) {
	if e == nil {
		return
	}
	*e = filter.Env{}
	if len(c.envFree) < 64 {
		c.envFree = append(c.envFree, e)
	}
}

// takeTxBuf returns a transmit buffer of length n from the pool.
func (c *Conn) takeTxBuf(n int) []byte {
	for k := len(c.txFree); k > 0; k = len(c.txFree) {
		b := c.txFree[k-1]
		c.txFree = c.txFree[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
		// Undersized leftover from before a larger message size; drop
		// it and keep looking.
	}
	return make([]byte, n)
}

// putTxBuf returns a transmit buffer to the pool, bounding both the pool
// size and the largest buffer kept.
func (c *Conn) putTxBuf(b []byte) {
	if cap(b) > 64<<10 || len(c.txFree) >= 64 {
		return
	}
	c.txFree = append(c.txFree, b[:0])
}

// Spec returns the connection's peer specification.
func (c *Conn) Spec() PeerSpec { return c.spec }

// RemoteAddr returns the peer's current transport address: Spec().Addr
// unless peer address migration has followed the peer elsewhere.
func (c *Conn) RemoteAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// Schema exposes the compiled header schema (for reports).
func (c *Conn) Schema() *header.Schema { return c.schema }

// Stack exposes the protocol stack (for tests and introspection).
func (c *Conn) Stack() *stack.Stack { return c.st }

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Layers returns the connection's stack layers, in stack order. Callers
// may read layer statistics; mutating a live layer is not supported.
func (c *Conn) Layers() []stack.Layer {
	return c.st.Layers()
}

// Modes returns the Table 3 operation modes of the two sides.
func (c *Conn) Modes() (send, recv Mode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.send.mode, c.recv.mode
}

// OnDeliver installs the application delivery callback. The payload slice
// is only valid during the callback. The callback runs without the
// connection lock, so it may call Send.
func (c *Conn) OnDeliver(fn func(payload []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onDeliver = fn
}

// Send transmits an application message — the paper's send() (Fig. 3).
// If prediction is disabled (window full), the message joins the backlog
// and is packed with its neighbours once the window reopens (§3.4). A
// full backlog surfaces backpressure: ErrBacklogFull by default, or a
// blocking wait with Config.BlockOnBackpressure.
func (c *Conn) Send(payload []byte) error {
	c.mu.Lock()
	if err := c.sendOpen(); err != nil {
		c.mu.Unlock()
		return err
	}
	c.drain(&c.send) // §3.1: post-sending completes before the next send
	for c.send.disable > 0 && len(c.send.backlog) >= c.ep.cfg.maxBacklog() {
		if !c.ep.cfg.BlockOnBackpressure {
			c.mu.Unlock()
			return ErrBacklogFull
		}
		c.blockCond().Wait()
		if err := c.sendOpen(); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	if c.send.disable > 0 {
		c.stats.Sent++
		c.send.backlog = append(c.send.backlog, message.New(payload))
		c.stats.Backlogged++
		c.mu.Unlock()
		return nil
	}
	c.stats.Sent++
	err := c.sendMsg(message.New(payload), nil)
	c.boundPending(&c.send)
	c.settle()
	c.wakeIdle()
	c.mu.Unlock()
	if err != nil && c.terminal != nil {
		if terr := c.terminal.TerminalErr(); terr != nil {
			// The layer declared the failure unrecoverable (nonce space
			// exhausted): recovery would rekey and mask the guard.
			c.hardFail(terr)
			return terr
		}
	}
	c.flushTx()
	return err
}

// sendOpen reports whether the connection accepts new sends: not closed,
// not failed, and the endpoint not draining for Shutdown. Caller holds
// c.mu.
func (c *Conn) sendOpen() error {
	if c.closed || c.ep.draining.Load() {
		return ErrConnClosed
	}
	if c.failCause != nil {
		return c.failCause
	}
	return nil
}

// blockCond lazily creates the backpressure wait condition. Caller holds
// c.mu.
func (c *Conn) blockCond() *sync.Cond {
	if c.backlogCond == nil {
		c.backlogCond = sync.NewCond(&c.mu)
	}
	return c.backlogCond
}

// wakeBlocked releases senders blocked on backpressure (the backlog
// shrank, or the connection closed or failed). Caller holds c.mu.
func (c *Conn) wakeBlocked() {
	if c.backlogCond != nil {
		c.backlogCond.Broadcast()
	}
}

// boundPending enforces Config.MaxPendingPost: when the lazy queue
// outgrows its bound the engine degrades to draining inline instead of
// deferring without limit. Caller holds c.mu.
func (c *Conn) boundPending(s *sideState) {
	if c.ep.cfg.LazyPost && s.pendingLen() > c.ep.cfg.maxPendingPost() {
		c.stats.PostOverflows++
		c.drain(s)
	}
}

// sendMsg runs the send path for a message whose payload is final. sizes
// is nil for a plain message or the packed sub-sizes. Caller holds c.mu.
func (c *Conn) sendMsg(m *message.Msg, sizes []int) error {
	t0 := c.telStart()
	c.send.mode = Pre
	defer func() { c.send.mode = Idle }()

	// Push the packing header and the class header regions (wire order:
	// proto, msg, gossip, packing — push reversed).
	if len(sizes) <= 1 {
		m.Push(1)[0] = packSingle
	} else {
		c.packScratch = encodePacking(c.packScratch[:0], sizes)
		m.PushBytes(c.packScratch)
	}
	gos := m.Push(c.gosN)
	msgRegion := m.Push(c.msgN)
	proto := m.Push(c.protoN)

	// Fast path: copy the predicted headers over the regions, then let
	// the send packet filter fill in the message-specific information.
	copy(proto, c.send.predict[header.ProtoSpec])
	copy(msgRegion, c.send.predict[header.MsgSpec])
	copy(gos, c.send.predict[header.Gossip])

	env := c.getEnv()
	env.Payload = m.Payload()
	env.Order = c.order
	env.Time = c.envTime()
	env.Hdr[header.ProtoSpec] = proto
	env.Hdr[header.MsgSpec] = msgRegion
	env.Hdr[header.Gossip] = gos

	switch status := c.send.runFilter(env); {
	case status == filter.StatusOK:
		c.transmit(m)
		c.stats.FastSends++
		c.queuePostSend(m, env)
		c.telEnd(telemetry.OpSendPre, t0)
		return nil
	case status == filter.StatusDrop || status == filter.StatusFault:
		m.Free()
		c.putEnv(env)
		c.stats.SendErrors++
		c.telEnd(telemetry.OpSendPre, t0)
		return fmt.Errorf("%w (status %d)", ErrSendFailed, status)
	default:
		err := c.sendSlow(m, env)
		c.telEnd(telemetry.OpSendPre, t0)
		return err
	}
}

// sendSlow is the layered path: zero the header regions and let every
// layer's pre-send build them.
func (c *Conn) sendSlow(m *message.Msg, env *filter.Env) error {
	clear(env.Hdr[header.ProtoSpec])
	clear(env.Hdr[header.MsgSpec])
	clear(env.Hdr[header.Gossip])
	ctx := c.ctx(env)
	v, _ := c.st.PreSend(ctx, m)
	c.putCtx(ctx)
	switch v {
	case stack.Continue:
		c.transmit(m)
		c.stats.SlowSends++
		c.queuePostSend(m, env)
		return nil
	case stack.Consume:
		// A layer took over (fragmentation); the original is done.
		c.stats.SlowSends++
		m.Free()
		c.putEnv(env)
		return nil
	default:
		m.Free()
		c.putEnv(env)
		c.stats.SendErrors++
		return ErrSendFailed
	}
}

// queuePostSend schedules the send post-processing (§3.1, lazily). The op
// owns m and env until it runs.
func (c *Conn) queuePostSend(m *message.Msg, env *filter.Env) {
	c.send.pushPost(postOp{kind: postSend, m: m, env: env})
}

// transmit prepends the preamble (and connection identification when due)
// and queues the wire image; flushTx sends it outside the lock. The
// message's regions are restored afterwards.
func (c *Conn) transmit(m *message.Msg) {
	withCID := c.needConnID
	c.transmitAs(m, withCID)
	if withCID {
		c.needConnID = false
	}
}

func (c *Conn) transmitAs(m *message.Msg, withCID bool) {
	if withCID {
		m.PushBytes(c.send.predict[header.ConnID])
		c.stats.ConnIDSent++
	}
	pre := Preamble{ConnIDPresent: withCID, Order: c.order, Cookie: c.outCookie}
	pre.EncodeTo(m.Push(PreambleSize))
	wire := m.Bytes()
	buf := c.takeTxBuf(len(wire))
	copy(buf, wire)
	c.txq = append(c.txq, buf)
	c.txPending.Add(1)
	if _, err := m.Pop(PreambleSize); err != nil {
		panic("core: preamble pop: " + err.Error())
	}
	if withCID {
		if _, err := m.Pop(c.cidN); err != nil {
			panic("core: conn-ident pop: " + err.Error())
		}
	}
}

// flushTx drains the transmit queue outside the connection lock. It is
// reentrancy-safe: a nested call (synchronous transport delivering a
// reply) just leaves its datagrams for the active flusher. Sent buffers
// return to the connection's transmit pool.
func (c *Conn) flushTx() {
	for {
		// Lock-free exit for the common delivery that transmitted
		// nothing: the counter is only incremented under c.mu before the
		// enqueuer itself calls flushTx, so a zero read here means this
		// caller has no datagrams of its own waiting.
		if c.txPending.Load() == 0 {
			return
		}
		if !c.txBusy.CompareAndSwap(false, true) {
			return
		}
		for {
			c.mu.Lock()
			if len(c.txq) == 0 {
				c.mu.Unlock()
				break
			}
			q := c.txq
			// Swap in the recycled queue slice so nested transmits
			// (a synchronous transport delivering a reply that sends)
			// append without reallocating.
			c.txq = c.txqSpare
			c.txqSpare = nil
			c.txPending.Add(int64(-len(q)))
			// The peer's current address is read under the lock:
			// address migration may rewrite it concurrently.
			dst := c.addr
			c.mu.Unlock()
			sendErrs := c.sendQueued(dst, q)
			c.mu.Lock()
			if sendErrs > 0 {
				c.stats.SendErrors += uint64(sendErrs)
			}
			for i := range q {
				c.putTxBuf(q[i])
				q[i] = nil
			}
			if c.txq == nil {
				c.txq = q[:0]
			} else {
				c.txqSpare = q[:0]
			}
			c.mu.Unlock()
		}
		c.txBusy.Store(false)
		c.mu.Lock()
		again := len(c.txq) > 0
		c.mu.Unlock()
		if !again {
			return
		}
	}
}

// sendQueued transmits one drained tx queue to dst and returns how many
// datagrams the transport refused. With a BatchTransport the whole queue
// goes down in one SendBatch call (one sendmmsg on the Linux UDP path) —
// the same amortization the PA applies to layer overhead, one level
// lower. A failed datagram is skipped and the rest of the queue is
// re-batched, so one refused wire image never blocks the burst behind
// it. Runs without c.mu (transport sends may deliver synchronously).
func (c *Conn) sendQueued(dst string, q [][]byte) (sendErrs int) {
	// Flush spans sample through their own counter: sendQueued runs
	// outside c.mu, but the txBusy flag serializes flushers, so the
	// plain counter is race-free.
	var t0 time.Time
	if c.tel != nil {
		c.telFlushCount++
		if c.telFlushCount&c.telMask == 0 {
			t0 = time.Now()
		}
	}
	ep := c.ep
	st := ep.stats.stripe(uint64(c.telShard))
	if bt := ep.batch; bt != nil && len(q) > 1 {
		if co := ep.coalescer; co != nil && len(q) <= shapeMaxQueue && co.Coalescible() {
			shapeCoalescible(q)
		}
		for rest := q; len(rest) > 0; {
			n, err := bt.SendBatch(dst, rest)
			if n < 0 {
				n = 0
			}
			if n > len(rest) {
				n = len(rest)
			}
			st.batchSends.Add(1)
			st.batchDatagrams.Add(uint64(n))
			if err == nil {
				break
			}
			// The datagram at index n failed; skip it, batch the rest.
			sendErrs++
			if n+1 >= len(rest) {
				break
			}
			rest = rest[n+1:]
		}
	} else {
		for _, d := range q {
			if err := ep.cfg.Transport.Send(dst, d); err != nil {
				sendErrs++
			}
		}
	}
	if sendErrs > 0 {
		st.txErrors.Add(uint64(sendErrs))
	}
	if !t0.IsZero() {
		c.tel.Record(telemetry.OpFlush, c.telShard, time.Since(t0))
	}
	return sendErrs
}

// shapeMaxQueue bounds the drains shapeCoalescible touches: past a few
// hundred wire images the O(n²) worst case of the in-place grouping
// would cost more than the super-datagrams save.
const shapeMaxQueue = 256

// shapeCoalescible groups the drained tx queue's equal-size wire images
// into contiguous runs, in place and without allocating, so the
// transport's UDP_SEGMENT coalescer (core.Coalescer) sees the maximal
// runs it can merge into super-datagrams. Grouping is stable per size
// class — datagrams of one size keep their relative order, which keeps
// each message's fragments in sequence — but datagrams of different
// sizes may reorder across the drain, which the unreliable-datagram
// contract already permits (the window layer reorders worse). It runs
// only while the transport reports Coalescible, so loop-path and netsim
// transmissions keep their exact queue order.
func shapeCoalescible(q [][]byte) {
	for i := 0; i < len(q); {
		size := len(q[i])
		j := i + 1 // end of the contiguous run being grown
		for k := j; k < len(q); k++ {
			if len(q[k]) != size {
				continue
			}
			if k != j {
				// Rotate q[j:k+1] right one slot, moving q[k] to the run's
				// end without disturbing the relative order of the rest.
				d := q[k]
				copy(q[j+1:k+1], q[j:k])
				q[j] = d
			}
			j++
		}
		i = j
	}
}

// deliverIncoming is the paper's from_network() (Fig. 3) past the router:
// the preamble is already popped; cid is the identification region or
// nil; src is the transport source address, consulted for peer address
// migration.
func (c *Conn) deliverIncoming(m *message.Msg, cid []byte, order bits.ByteOrder, src string) {
	c.mu.Lock()
	if c.closed || c.failCause != nil {
		// A failed connection keeps its routes until Close so late
		// datagrams are accounted here rather than as router noise.
		if c.failCause != nil {
			c.stats.Dropped++
		}
		c.mu.Unlock()
		m.Free()
		return
	}
	t0 := c.telStart()
	c.recvActivity++
	c.drain(&c.recv) // §3.1: post-delivery completes before the next delivery
	c.settle()       // finish releases unblocked by that post-processing

	env, sizes, err := c.parseWire(m, cid, order)
	if err != nil {
		c.stats.Dropped++
		c.mu.Unlock()
		m.Free()
		return
	}

	if st := c.recv.runFilter(env); st != filter.StatusOK {
		// The delivery filter checks message-specific correctness;
		// failures drop the message (checksum mismatch).
		c.stats.Dropped++
		c.putEnv(env)
		c.mu.Unlock()
		m.Free()
		return
	}

	// A datagram that passes the delivery filter while the connection
	// is recovering completes the recovery: the peer is reachable
	// again. The callback runs after the lock is released.
	var onRecovered func()
	if c.recovering {
		onRecovered = c.finishRecoveryLocked()
	}

	fast := c.recv.disable == 0 &&
		cid == nil &&
		order == c.order &&
		bytes.Equal(env.Hdr[header.ProtoSpec], c.recv.predict[header.ProtoSpec])

	if fast {
		c.stats.FastDelivers++
		c.acceptDelivery(m, env, sizes, nil)
	} else {
		c.stats.SlowDelivers++
		c.recv.mode = Pre
		ctx := c.ctx(env)
		v, at := c.st.PreDeliver(ctx, m)
		c.putCtx(ctx)
		c.recv.mode = Idle
		// Peer address migration: the route follows a peer whose
		// source address changed (NAT rebind, endpoint restart) only
		// when the datagram carried the connection identification AND
		// the identification layer vetted it. Delivery runs bottom to
		// top, so any verdict issued above the identification layer
		// (at < identIdx; Continue reports -1) means identification
		// passed — replayed duplicates the window drops still migrate.
		if cid != nil && src != "" && src != c.addr && at < c.identIdx {
			c.addr = src
			c.stats.PeerMigrations++
			c.tel.Event(telemetry.EventMigration, c.outCookie, "peer address migrated to "+src)
		}
		switch v {
		case stack.Continue:
			c.acceptDelivery(m, env, sizes, nil)
		case stack.Consume:
			// The consuming layer owns m; layers below it accepted
			// the message and still post-process it (§4).
			c.stats.Consumed++
			c.queuePostDeliverBelow(m, env, at, false)
		default:
			c.stats.Dropped++
			c.queuePostDeliverBelow(m, env, at, true)
		}
	}
	c.boundPending(&c.recv)
	c.settle()
	c.wakeIdle()
	c.telEnd(telemetry.OpDeliver, t0)
	c.mu.Unlock()
	if onRecovered != nil {
		onRecovered()
	}
	c.flushTx()
}

// acceptDelivery queues the message's application payload(s) — unpacking
// if packed (§3.4) — and schedules the delivery post-processing. from is
// non-nil when re-entering above a releasing layer. The queued op owns m
// and env.
func (c *Conn) acceptDelivery(m *message.Msg, env *filter.Env, sizes []int, from stack.Layer) {
	if sizes == nil {
		c.queueApp(env.Payload)
	} else {
		off := 0
		for _, sz := range sizes {
			c.queueApp(env.Payload[off : off+sz])
			off += sz
		}
		c.stats.PackedMsgs += uint64(len(sizes))
	}
	c.recv.pushPost(postOp{kind: postDeliver, m: m, env: env, from: from})
}

// queuePostDeliverBelow schedules post-processing of the layers below the
// layer that issued a Consume or Drop verdict. For dropped messages the
// engine still owns m and frees it afterwards.
func (c *Conn) queuePostDeliverBelow(m *message.Msg, env *filter.Env, at int, freeAfter bool) {
	c.recv.pushPost(postOp{kind: postDeliverBelow, m: m, env: env, at: at, free: freeAfter})
}

// queueApp copies one application payload into the scratch buffer and
// queues its callback.
func (c *Conn) queueApp(payload []byte) {
	off := len(c.appBuf)
	c.appBuf = append(c.appBuf, payload...)
	c.appQ = append(c.appQ, appOut{off: off, n: len(payload)})
	c.stats.Delivered++
}

// parseWire computes the header region views of a received message without
// consuming it (buffered messages are re-parsed at release time). The
// returned env comes from the connection pool; on error it has already
// been recycled.
func (c *Conn) parseWire(m *message.Msg, cid []byte, order bits.ByteOrder) (*filter.Env, []int, error) {
	b := m.Bytes()
	fixed := c.protoN + c.msgN + c.gosN
	if len(b) < fixed+1 {
		return nil, nil, fmt.Errorf("core: short message: %d bytes", len(b))
	}
	sizes, pkLen, err := decodePacking(b[fixed:])
	if err != nil {
		return nil, nil, err
	}
	payload := b[fixed+pkLen:]
	if err := checkPackedSizes(sizes, len(payload)); err != nil {
		return nil, nil, err
	}
	env := c.getEnv()
	env.Order = order
	env.Time = c.envTime()
	env.Hdr[header.ConnID] = cid
	env.Hdr[header.ProtoSpec] = b[:c.protoN]
	env.Hdr[header.MsgSpec] = b[c.protoN : c.protoN+c.msgN]
	env.Hdr[header.Gossip] = b[c.protoN+c.msgN : fixed]
	env.Payload = payload
	return env, sizes, nil
}

// settle processes everything the operation made runnable: application
// callbacks (without the lock), releases from buffering layers, post-
// processing (unless LazyPost), and the packed backlog. Caller holds c.mu;
// settle returns with it held.
func (c *Conn) settle() {
	if c.settling {
		return // re-entered via a callback calling Send; outer loop continues
	}
	c.settling = true
	defer func() { c.settling = false }()
	for {
		switch {
		case len(c.appQ) > 0:
			q := c.appQ
			c.appQ = c.appQSpare
			c.appQSpare = nil
			buf := c.appBuf // views stay valid even if appBuf reallocates
			cb := c.onDeliver
			c.mu.Unlock()
			if cb != nil {
				for _, out := range q {
					cb(buf[out.off : out.off+out.n])
				}
			}
			c.mu.Lock()
			if c.appQ == nil {
				c.appQ = q[:0]
			} else if c.appQSpare == nil {
				c.appQSpare = q[:0]
			}
		case len(c.deliverQ) > 0:
			item := c.deliverQ[0]
			c.deliverQ = c.deliverQ[1:]
			if item.m.Synthetic {
				c.releaseSynthetic(item)
			} else {
				c.release(item)
			}
		case !c.ep.cfg.LazyPost && c.recv.pendingLen() > 0:
			c.runOnePost(&c.recv)
		case !c.ep.cfg.LazyPost && c.send.pendingLen() > 0:
			c.runOnePost(&c.send)
		case c.send.disable == 0 && len(c.send.backlog) > 0:
			c.kickBacklog()
		default:
			// Quiescent: no callback is active (nested settles
			// never process appQ), so the scratch can be reused.
			if cap(c.appBuf) > 64<<10 {
				c.appBuf = nil
			} else {
				c.appBuf = c.appBuf[:0]
			}
			return
		}
	}
}

// release re-enters the delivery path above a layer that had buffered m.
func (c *Conn) release(item releaseItem) {
	env, sizes, err := c.parseWire(item.m, nil, item.m.Order)
	if err != nil {
		c.stats.Dropped++
		item.m.Free()
		return
	}
	c.recv.mode = Pre
	ctx := c.ctx(env)
	v, _ := c.st.DeliverAbove(ctx, item.m, item.from)
	c.putCtx(ctx)
	c.recv.mode = Idle
	switch v {
	case stack.Continue:
		c.acceptDelivery(item.m, env, sizes, item.from)
		// A buffering layer can release a long run at once (an
		// out-of-order gap closing); each release queues a post op, so
		// this is where the lazy queue can actually grow without bound.
		c.boundPending(&c.recv)
	case stack.Consume:
		c.stats.Consumed++
		c.putEnv(env)
	default:
		c.stats.Dropped++
		c.putEnv(env)
		item.m.Free()
	}
}

// releaseSynthetic delivers a layer-synthesized message (reassembled
// fragments) that has no wire headers.
func (c *Conn) releaseSynthetic(item releaseItem) {
	c.queueApp(item.m.Payload())
	item.m.Free()
}

// drain runs a side's pending post-processing to completion (§3.1: "but
// before the next send or delivery operation"). Caller holds c.mu.
func (c *Conn) drain(s *sideState) {
	if s.pendingLen() == 0 {
		return
	}
	t0 := c.telStart()
	for s.pendingLen() > 0 {
		c.runOnePost(s)
	}
	c.telEnd(telemetry.OpPost, t0)
}

func (c *Conn) runOnePost(s *sideState) {
	op := s.popPost()
	c.stats.PostRuns++
	switch op.kind {
	case postSend:
		c.send.mode = Post
		ctx := c.ctx(op.env)
		c.st.PostSend(ctx, op.m)
		c.putCtx(ctx)
		c.send.mode = Idle
		op.m.Free()
		c.putEnv(op.env)
	case postDeliver:
		c.recv.mode = Post
		ctx := c.ctx(op.env)
		if op.from == nil {
			c.st.PostDeliver(ctx, op.m)
		} else {
			c.st.PostDeliverAbove(ctx, op.m, op.from)
		}
		c.putCtx(ctx)
		c.recv.mode = Idle
		op.m.Free()
		c.putEnv(op.env)
	case postDeliverBelow:
		c.recv.mode = Post
		ctx := c.ctx(op.env)
		c.st.PostDeliverBelow(ctx, op.m, op.at)
		c.putCtx(ctx)
		c.recv.mode = Idle
		if op.free {
			op.m.Free()
		}
		c.putEnv(op.env)
	case postFn:
		op.fn()
	}
}

// Flush runs all outstanding post-processing and transmissions. With
// LazyPost it is the application's "idle" hook.
func (c *Conn) Flush() {
	c.mu.Lock()
	c.drain(&c.recv)
	c.drain(&c.send)
	c.settle()
	c.mu.Unlock()
	c.flushTx()
}

// kickBacklog packs and sends backlogged messages (§3.4). Caller holds
// c.mu; prediction must be enabled. Batches are bounded by count and by
// total payload bytes: a packed message must stay under the
// fragmentation threshold, or splitting it would destroy the packing
// structure.
func (c *Conn) kickBacklog() {
	// §3.1: a pending post op from the previous send must run before the
	// next PreSend, or the window layer stamps a stale sequence number
	// (its nextSeq only advances in PostSend) and the peer silently
	// drops the batch as duplicates. Draining may also fill the window,
	// so re-check the gate.
	c.drain(&c.send)
	if c.send.disable > 0 || len(c.send.backlog) == 0 {
		return
	}
	n := len(c.send.backlog)
	if n > c.ep.cfg.maxPack() {
		n = c.ep.cfg.maxPack()
	}
	maxBytes := c.ep.cfg.maxPackBytes()
	total := 0
	fit := 0
	for fit < n {
		sz := c.send.backlog[fit].PayloadLen()
		if fit > 0 && total+sz > maxBytes {
			break
		}
		total += sz
		fit++
	}
	n = fit
	if c.ep.cfg.PackSameSizeOnly {
		// The paper's PA "only packs together messages of the same
		// size": take the maximal same-size run.
		run := 1
		first := c.send.backlog[0].PayloadLen()
		for run < n && c.send.backlog[run].PayloadLen() == first {
			run++
		}
		n = run
	}
	batch := c.send.backlog[:n]
	c.send.backlog = c.send.backlog[n:]
	c.wakeBlocked()

	if n == 1 {
		m := batch[0]
		_ = c.sendMsg(m, nil)
		c.boundPending(&c.send)
		return
	}
	c.sizeScratch = c.sizeScratch[:0]
	for _, m := range batch {
		c.sizeScratch = append(c.sizeScratch, m.PayloadLen())
	}
	packed := message.NewWithHeadroom(nil, message.DefaultHeadroom)
	for _, m := range batch {
		packed.AppendPayload(m.Payload())
		m.Free()
	}
	c.stats.PackedBatches++
	c.stats.PackedMsgs += uint64(n)
	_ = c.sendMsg(packed, c.sizeScratch)
	c.boundPending(&c.send)
}

// Close tears the connection down: timers stopped, routes removed,
// blocked senders released.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.stopSupervision()
	c.cancelRecoveryLocked()
	if c.idleCh != nil {
		close(c.idleCh)
	}
	for _, l := range c.st.Layers() {
		if cl, ok := l.(io.Closer); ok {
			cl.Close()
		}
	}
	for _, m := range c.send.backlog {
		m.Free()
	}
	c.send.backlog = nil
	for _, it := range c.deliverQ {
		it.m.Free()
	}
	c.deliverQ = nil
	c.send.pending, c.send.head = nil, 0
	c.recv.pending, c.recv.head = nil, 0
	c.wakeBlocked()
	c.tel.Event(telemetry.EventState, c.outCookie, "closed")
	c.mu.Unlock()
	c.ep.removeConn(c)
	return nil
}

func (c *Conn) nowMicros() uint64 {
	return uint64(c.ep.cfg.clock().Now().UnixNano() / int64(time.Microsecond))
}

// envTime supplies Env.Time: the clock is only read when some filter
// program consumes the timestamp (Program.UsesTime) — a clock read per
// message is measurable on the fast paths.
func (c *Conn) envTime() uint64 {
	if !c.usesTime {
		return 0
	}
	return c.nowMicros()
}

// telStart opens a sampled telemetry span: with telemetry enabled it
// counts the operation and, for one in every 2^k of them
// (Config.TelemetrySampleEvery), reads the wall clock and returns a
// non-zero start time for telEnd. Disabled, it costs one predictable
// branch and never touches the clock — histogram durations are real
// execution times, so the virtual clock cannot supply them. Caller
// holds c.mu.
func (c *Conn) telStart() (t0 time.Time) {
	if c.tel != nil {
		c.telCount++
		if c.telCount&c.telMask == 0 {
			t0 = time.Now()
		}
	}
	return
}

// telStartAlways opens an unsampled span, for rare operations (recovery
// probes) where every observation matters.
func (c *Conn) telStartAlways() (t0 time.Time) {
	if c.tel != nil {
		t0 = time.Now()
	}
	return
}

// telEnd closes a span opened by telStart/telStartAlways, recording the
// elapsed wall time when the operation was sampled.
func (c *Conn) telEnd(op telemetry.Op, t0 time.Time) {
	if !t0.IsZero() {
		c.tel.Record(op, c.telShard, time.Since(t0))
	}
}

// ---- stack.Services implementation (caller always holds c.mu) ----

// Clock implements stack.Services.
func (c *Conn) Clock() vclock.Clock { return c.ep.cfg.clock() }

// AfterFunc implements stack.Services: the callback runs holding the
// connection lock, followed by a settle pass and a transmit flush.
func (c *Conn) AfterFunc(d time.Duration, f func()) vclock.Timer {
	return c.ep.cfg.clock().AfterFunc(d, func() {
		c.mu.Lock()
		if c.closed || c.failCause != nil {
			c.mu.Unlock()
			return
		}
		f()
		c.settle()
		c.mu.Unlock()
		c.flushTx()
	})
}

// DisableSend implements stack.Services (§3.2).
func (c *Conn) DisableSend() { c.send.disable++ }

// EnableSend implements stack.Services; the backlog is kicked by the
// enclosing settle pass.
func (c *Conn) EnableSend() {
	if c.send.disable > 0 {
		c.send.disable--
	}
}

// DisableRecv implements stack.Services.
func (c *Conn) DisableRecv() { c.recv.disable++ }

// EnableRecv implements stack.Services.
func (c *Conn) EnableRecv() {
	if c.recv.disable > 0 {
		c.recv.disable--
	}
}

// SendControl implements stack.Services: a layer-generated message (§3.2)
// traverses only the layers below the originator, then the send filter.
func (c *Conn) SendControl(from stack.Layer, m *message.Msg, opts stack.ControlOpts) error {
	if c.closed {
		return ErrConnClosed
	}
	if c.failCause != nil {
		return c.failCause
	}
	m.Push(1)[0] = packSingle
	gos := m.Push(c.gosN)
	msgRegion := m.Push(c.msgN)
	proto := m.Push(c.protoN)
	env := c.getEnv()
	env.Payload = m.Payload()
	env.Order = c.order
	env.Time = c.envTime()
	env.Hdr[header.ProtoSpec] = proto
	env.Hdr[header.MsgSpec] = msgRegion
	env.Hdr[header.Gossip] = gos
	if opts.Build != nil {
		opts.Build(env)
	}
	ctx := c.ctx(env)
	if v, _ := c.st.ControlSend(ctx, m, from); v != stack.Continue {
		c.putCtx(ctx)
		c.putEnv(env)
		m.Free()
		return fmt.Errorf("core: control message rejected below %s", from.Name())
	}
	if st := c.send.runFilter(env); st != filter.StatusOK {
		c.putCtx(ctx)
		c.putEnv(env)
		m.Free()
		return fmt.Errorf("%w: control message (status %d)", ErrSendFailed, st)
	}
	c.transmitAs(m, opts.IncludeConnID || c.needConnID)
	c.needConnID = false
	c.stats.ControlMsgs++
	c.st.ControlPostSend(ctx, m, from)
	c.putCtx(ctx)
	c.putEnv(env)
	m.Free()
	return nil
}

// SendRaw implements stack.Services: retransmit a fully built frame. With
// an encryption layer in the stack the frame may have been sealed under an
// epoch that a session resumption has since retired; the layer's Reseal
// re-seals it under the current key (a fresh nonce — GCM forbids reuse)
// before it hits the wire.
func (c *Conn) SendRaw(m *message.Msg, includeConnID bool) error {
	if c.closed {
		return ErrConnClosed
	}
	if c.failCause != nil {
		return c.failCause
	}
	if c.resealer != nil {
		if err := c.resealer.Reseal(m); err != nil {
			if c.terminal != nil {
				if terr := c.terminal.TerminalErr(); terr != nil {
					// Cannot hardFail here: SendRaw is called with c.mu
					// held (window resend path). The next Send surfaces
					// the terminal error and fails the connection.
					return terr
				}
			}
			return err
		}
	}
	c.transmitAs(m, includeConnID)
	c.stats.Retransmits++
	return nil
}

// EnqueueDeliver implements stack.Services.
func (c *Conn) EnqueueDeliver(from stack.Layer, m *message.Msg) {
	c.deliverQ = append(c.deliverQ, releaseItem{from: from, m: m})
}

// Defer implements stack.Services: the action joins the receive-side
// post-processing queue.
func (c *Conn) Defer(f func()) {
	c.recv.pushPost(postOp{kind: postFn, fn: f})
}

// DebugString renders the per-connection PA state of the paper's Table 3:
// operation modes, the predicted headers, disable counters, pending
// post-processing, backlog, and the packet filter geometries.
func (c *Conn) DebugString() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "protocol accelerator for %s (cookie %#x, conn-ident due: %v)\n",
		c.spec.Addr, c.outCookie, c.needConnID)
	side := func(name string, s *sideState, filterLen int) {
		fmt.Fprintf(&b, "  %-8s mode=%-4s disable=%d pending-post=%d",
			name, s.mode, s.disable, s.pendingLen())
		if name == "send" {
			fmt.Fprintf(&b, " backlog=%d", len(s.backlog))
		}
		fmt.Fprintf(&b, " filter=%d instrs\n", filterLen)
		fmt.Fprintf(&b, "           predicted proto-spec %x  gossip %x\n",
			s.predict[header.ProtoSpec], s.predict[header.Gossip])
	}
	side("send", &c.send, c.send.prog.Len())
	side("recv", &c.recv, c.recv.prog.Len())
	return b.String()
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

// Errors returned by Conn operations.
var (
	ErrConnClosed  = errors.New("core: connection closed")
	ErrBacklogFull = errors.New("core: send backlog full")
	ErrSendFailed  = errors.New("core: send rejected by packet filter")
)

// sideState is the per-direction PA state of Table 3: operation mode, the
// predicted headers, the prediction disable counter, the packet filter,
// and (send side) the backlog of messages awaiting processing.
type sideState struct {
	mode    Mode
	predict [header.NumClasses][]byte
	disable int
	prog    *filter.Program
	comp    *filter.Compiled
	backlog []*message.Msg
	pending []func() // deferred post-processing, FIFO
}

// runFilter executes the side's packet filter, compiled if available.
func (s *sideState) runFilter(env *filter.Env) int {
	if s.comp != nil {
		return s.comp.Run(env)
	}
	return s.prog.Run(env)
}

// appOut is one application delivery waiting for its callback. Payloads
// are copied into the connection's scratch buffer (appBuf) so that
// post-processing may free the wire message independently; entries store
// offsets because appBuf may be reallocated by later appends.
type appOut struct {
	off, n int
}

// Conn is one Protocol Accelerator: the engine of the paper's Figure 3,
// instantiated per connection.
type Conn struct {
	ep   *Endpoint
	spec PeerSpec

	mu sync.Mutex

	st     *stack.Stack
	schema *header.Schema
	ident  Identifier

	order                    bits.ByteOrder
	protoN, msgN, gosN, cidN int

	outCookie  uint64
	needConnID bool // next outgoing message carries the identification

	send sideState
	recv sideState

	deliverQ []releaseItem
	appQ     []appOut
	appBuf   []byte // scratch backing the queued payload copies

	txq    [][]byte
	txBusy atomic.Bool

	onDeliver func(payload []byte)
	closed    bool
	settling  bool
	stats     ConnStats

	// idleCh wakes the optional background drainer (LazyPost+IdleDrain).
	idleCh chan struct{}
}

type releaseItem struct {
	from stack.Layer
	m    *message.Msg
}

// newConn wires up a connection: builds the stack, compiles the schema and
// filters, allocates prediction buffers, and primes the layers.
func newConn(ep *Endpoint, spec PeerSpec) (*Conn, error) {
	ls, err := ep.cfg.build()(spec, ep.cfg.Order)
	if err != nil {
		return nil, err
	}
	st, err := stack.NewStack(ls...)
	if err != nil {
		return nil, err
	}
	c := &Conn{ep: ep, spec: spec, st: st, order: ep.cfg.Order}
	for _, l := range ls {
		if id, ok := l.(Identifier); ok {
			c.ident = id
		}
	}
	if c.ident == nil {
		return nil, fmt.Errorf("core: stack has no identification layer")
	}

	c.schema = header.New()
	sb, rb := filter.NewBuilder(), filter.NewBuilder()
	if err := st.Init(&stack.InitContext{Schema: c.schema, SendFilter: sb, RecvFilter: rb}); err != nil {
		return nil, err
	}
	if err := c.schema.Compile(); err != nil {
		return nil, err
	}
	if c.send.prog, err = sb.Build(); err != nil {
		return nil, fmt.Errorf("core: send filter: %w", err)
	}
	if c.recv.prog, err = rb.Build(); err != nil {
		return nil, fmt.Errorf("core: recv filter: %w", err)
	}
	if ep.cfg.CompiledFilters {
		c.send.comp = c.send.prog.Compile()
		c.recv.comp = c.recv.prog.Compile()
	}
	c.protoN = c.schema.Size(header.ProtoSpec)
	c.msgN = c.schema.Size(header.MsgSpec)
	c.gosN = c.schema.Size(header.Gossip)
	c.cidN = c.schema.Size(header.ConnID)

	for cl := header.Class(0); cl < header.NumClasses; cl++ {
		c.send.predict[cl] = make([]byte, c.schema.Size(cl))
		c.recv.predict[cl] = make([]byte, c.schema.Size(cl))
	}

	c.outCookie = spec.OutCookie
	if c.outCookie == 0 {
		if c.outCookie, err = NewCookie(); err != nil {
			return nil, err
		}
	}
	c.needConnID = !spec.SkipFirstConnID

	ctx := c.ctx(nil)
	st.Prime(ctx)

	if ep.cfg.LazyPost && ep.cfg.IdleDrain {
		c.idleCh = make(chan struct{}, 1)
		go c.idleDrainer()
	}
	return c, nil
}

// idleDrainer runs pending post-processing in the background — the
// paper's "when the application is idle or blocked" (§1). It is woken
// after operations that leave lazy work queued.
func (c *Conn) idleDrainer() {
	for range c.idleCh {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.drain(&c.recv)
		c.drain(&c.send)
		c.settle()
		c.mu.Unlock()
		c.flushTx()
	}
}

// wakeIdle nudges the background drainer if one exists and work is
// pending. Caller holds c.mu.
func (c *Conn) wakeIdle() {
	if c.idleCh == nil || (len(c.recv.pending) == 0 && len(c.send.pending) == 0) {
		return
	}
	select {
	case c.idleCh <- struct{}{}:
	default:
	}
}

// ctx builds a phase context around the (possibly nil) message env.
func (c *Conn) ctx(env *filter.Env) *stack.Context {
	return &stack.Context{
		Env:         env,
		Order:       c.order,
		PredictSend: c.send.predict,
		PredictRecv: c.recv.predict,
		S:           c,
	}
}

// Spec returns the connection's peer specification.
func (c *Conn) Spec() PeerSpec { return c.spec }

// Schema exposes the compiled header schema (for reports).
func (c *Conn) Schema() *header.Schema { return c.schema }

// Stack exposes the protocol stack (for tests and introspection).
func (c *Conn) Stack() *stack.Stack { return c.st }

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Modes returns the Table 3 operation modes of the two sides.
func (c *Conn) Modes() (send, recv Mode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.send.mode, c.recv.mode
}

// OnDeliver installs the application delivery callback. The payload slice
// is only valid during the callback. The callback runs without the
// connection lock, so it may call Send.
func (c *Conn) OnDeliver(fn func(payload []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onDeliver = fn
}

// Send transmits an application message — the paper's send() (Fig. 3).
// If prediction is disabled (window full), the message joins the backlog
// and is packed with its neighbours once the window reopens (§3.4).
func (c *Conn) Send(payload []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrConnClosed
	}
	c.drain(&c.send) // §3.1: post-sending completes before the next send
	if c.send.disable > 0 {
		if len(c.send.backlog) >= c.ep.cfg.maxBacklog() {
			c.mu.Unlock()
			return ErrBacklogFull
		}
		c.stats.Sent++
		c.send.backlog = append(c.send.backlog, message.New(payload))
		c.stats.Backlogged++
		c.mu.Unlock()
		return nil
	}
	c.stats.Sent++
	err := c.sendMsg(message.New(payload), nil)
	c.settle()
	c.wakeIdle()
	c.mu.Unlock()
	c.flushTx()
	return err
}

// sendMsg runs the send path for a message whose payload is final. sizes
// is nil for a plain message or the packed sub-sizes. Caller holds c.mu.
func (c *Conn) sendMsg(m *message.Msg, sizes []int) error {
	c.send.mode = Pre
	defer func() { c.send.mode = Idle }()

	// Push the packing header and the class header regions (wire order:
	// proto, msg, gossip, packing — push reversed).
	m.PushBytes(encodePacking(nil, sizes))
	gos := m.Push(c.gosN)
	msgRegion := m.Push(c.msgN)
	proto := m.Push(c.protoN)

	// Fast path: copy the predicted headers over the regions, then let
	// the send packet filter fill in the message-specific information.
	copy(proto, c.send.predict[header.ProtoSpec])
	copy(msgRegion, c.send.predict[header.MsgSpec])
	copy(gos, c.send.predict[header.Gossip])

	env := &filter.Env{Payload: m.Payload(), Order: c.order, Time: c.nowMicros()}
	env.Hdr[header.ProtoSpec] = proto
	env.Hdr[header.MsgSpec] = msgRegion
	env.Hdr[header.Gossip] = gos

	switch status := c.send.runFilter(env); {
	case status == filter.StatusOK:
		c.transmit(m)
		c.stats.FastSends++
		c.queuePostSend(m, env)
		return nil
	case status == filter.StatusDrop || status == filter.StatusFault:
		m.Free()
		c.stats.SendErrors++
		return fmt.Errorf("%w (status %d)", ErrSendFailed, status)
	default:
		return c.sendSlow(m, env)
	}
}

// sendSlow is the layered path: zero the header regions and let every
// layer's pre-send build them.
func (c *Conn) sendSlow(m *message.Msg, env *filter.Env) error {
	clear(env.Hdr[header.ProtoSpec])
	clear(env.Hdr[header.MsgSpec])
	clear(env.Hdr[header.Gossip])
	ctx := c.ctx(env)
	v, _ := c.st.PreSend(ctx, m)
	switch v {
	case stack.Continue:
		c.transmit(m)
		c.stats.SlowSends++
		c.queuePostSend(m, env)
		return nil
	case stack.Consume:
		// A layer took over (fragmentation); the original is done.
		c.stats.SlowSends++
		m.Free()
		return nil
	default:
		m.Free()
		c.stats.SendErrors++
		return ErrSendFailed
	}
}

// queuePostSend schedules the send post-processing (§3.1, lazily).
func (c *Conn) queuePostSend(m *message.Msg, env *filter.Env) {
	c.send.pending = append(c.send.pending, func() {
		c.send.mode = Post
		c.st.PostSend(c.ctx(env), m)
		c.send.mode = Idle
		m.Free()
	})
}

// transmit prepends the preamble (and connection identification when due)
// and queues the wire image; flushTx sends it outside the lock. The
// message's regions are restored afterwards.
func (c *Conn) transmit(m *message.Msg) {
	withCID := c.needConnID
	c.transmitAs(m, withCID)
	if withCID {
		c.needConnID = false
	}
}

func (c *Conn) transmitAs(m *message.Msg, withCID bool) {
	if withCID {
		m.PushBytes(c.send.predict[header.ConnID])
		c.stats.ConnIDSent++
	}
	pre := Preamble{ConnIDPresent: withCID, Order: c.order, Cookie: c.outCookie}
	pre.EncodeTo(m.Push(PreambleSize))
	c.txq = append(c.txq, append([]byte(nil), m.Bytes()...))
	if _, err := m.Pop(PreambleSize); err != nil {
		panic("core: preamble pop: " + err.Error())
	}
	if withCID {
		if _, err := m.Pop(c.cidN); err != nil {
			panic("core: conn-ident pop: " + err.Error())
		}
	}
}

// flushTx drains the transmit queue outside the connection lock. It is
// reentrancy-safe: a nested call (synchronous transport delivering a
// reply) just leaves its datagrams for the active flusher.
func (c *Conn) flushTx() {
	for {
		if !c.txBusy.CompareAndSwap(false, true) {
			return
		}
		for {
			c.mu.Lock()
			q := c.txq
			c.txq = nil
			c.mu.Unlock()
			if len(q) == 0 {
				break
			}
			for _, d := range q {
				if err := c.ep.cfg.Transport.Send(c.spec.Addr, d); err != nil {
					c.mu.Lock()
					c.stats.SendErrors++
					c.mu.Unlock()
				}
			}
		}
		c.txBusy.Store(false)
		c.mu.Lock()
		again := len(c.txq) > 0
		c.mu.Unlock()
		if !again {
			return
		}
	}
}

// deliverIncoming is the paper's from_network() (Fig. 3) past the router:
// the preamble is already popped; cid is the identification region or nil.
func (c *Conn) deliverIncoming(m *message.Msg, cid []byte, order bits.ByteOrder) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		m.Free()
		return
	}
	c.drain(&c.recv) // §3.1: post-delivery completes before the next delivery
	c.settle()       // finish releases unblocked by that post-processing

	env, sizes, err := c.parseWire(m, cid, order)
	if err != nil {
		c.stats.Dropped++
		c.mu.Unlock()
		m.Free()
		return
	}

	if st := c.recv.runFilter(env); st != filter.StatusOK {
		// The delivery filter checks message-specific correctness;
		// failures drop the message (checksum mismatch).
		c.stats.Dropped++
		c.mu.Unlock()
		m.Free()
		return
	}

	fast := c.recv.disable == 0 &&
		cid == nil &&
		order == c.order &&
		bytes.Equal(env.Hdr[header.ProtoSpec], c.recv.predict[header.ProtoSpec])

	if fast {
		c.stats.FastDelivers++
		c.acceptDelivery(m, env, sizes, nil)
	} else {
		c.stats.SlowDelivers++
		c.recv.mode = Pre
		ctx := c.ctx(env)
		v, at := c.st.PreDeliver(ctx, m)
		c.recv.mode = Idle
		switch v {
		case stack.Continue:
			c.acceptDelivery(m, env, sizes, nil)
		case stack.Consume:
			// The consuming layer owns m; layers below it accepted
			// the message and still post-process it (§4).
			c.stats.Consumed++
			c.queuePostDeliverBelow(m, env, at, false)
		default:
			c.stats.Dropped++
			c.queuePostDeliverBelow(m, env, at, true)
		}
	}
	c.settle()
	c.wakeIdle()
	c.mu.Unlock()
	c.flushTx()
}

// acceptDelivery queues the message's application payload(s) — unpacking
// if packed (§3.4) — and schedules the delivery post-processing. from is
// non-nil when re-entering above a releasing layer.
func (c *Conn) acceptDelivery(m *message.Msg, env *filter.Env, sizes []int, from stack.Layer) {
	if sizes == nil {
		c.queueApp(env.Payload)
	} else {
		off := 0
		for _, sz := range sizes {
			c.queueApp(env.Payload[off : off+sz])
			off += sz
		}
		c.stats.PackedMsgs += uint64(len(sizes))
	}
	c.recv.pending = append(c.recv.pending, func() {
		c.recv.mode = Post
		if from == nil {
			c.st.PostDeliver(c.ctx(env), m)
		} else {
			c.st.PostDeliverAbove(c.ctx(env), m, from)
		}
		c.recv.mode = Idle
		m.Free()
	})
}

// queuePostDeliverBelow schedules post-processing of the layers below the
// layer that issued a Consume or Drop verdict. For dropped messages the
// engine still owns m and frees it afterwards.
func (c *Conn) queuePostDeliverBelow(m *message.Msg, env *filter.Env, at int, freeAfter bool) {
	c.recv.pending = append(c.recv.pending, func() {
		c.recv.mode = Post
		c.st.PostDeliverBelow(c.ctx(env), m, at)
		c.recv.mode = Idle
		if freeAfter {
			m.Free()
		}
	})
}

// queueApp copies one application payload into the scratch buffer and
// queues its callback.
func (c *Conn) queueApp(payload []byte) {
	off := len(c.appBuf)
	c.appBuf = append(c.appBuf, payload...)
	c.appQ = append(c.appQ, appOut{off: off, n: len(payload)})
	c.stats.Delivered++
}

// parseWire computes the header region views of a received message without
// consuming it (buffered messages are re-parsed at release time).
func (c *Conn) parseWire(m *message.Msg, cid []byte, order bits.ByteOrder) (*filter.Env, []int, error) {
	b := m.Bytes()
	fixed := c.protoN + c.msgN + c.gosN
	if len(b) < fixed+1 {
		return nil, nil, fmt.Errorf("core: short message: %d bytes", len(b))
	}
	env := &filter.Env{Order: order, Time: c.nowMicros()}
	env.Hdr[header.ConnID] = cid
	env.Hdr[header.ProtoSpec] = b[:c.protoN]
	env.Hdr[header.MsgSpec] = b[c.protoN : c.protoN+c.msgN]
	env.Hdr[header.Gossip] = b[c.protoN+c.msgN : fixed]
	sizes, pkLen, err := decodePacking(b[fixed:])
	if err != nil {
		return nil, nil, err
	}
	env.Payload = b[fixed+pkLen:]
	if err := checkPackedSizes(sizes, len(env.Payload)); err != nil {
		return nil, nil, err
	}
	return env, sizes, nil
}

// settle processes everything the operation made runnable: application
// callbacks (without the lock), releases from buffering layers, post-
// processing (unless LazyPost), and the packed backlog. Caller holds c.mu;
// settle returns with it held.
func (c *Conn) settle() {
	if c.settling {
		return // re-entered via a callback calling Send; outer loop continues
	}
	c.settling = true
	defer func() { c.settling = false }()
	for {
		switch {
		case len(c.appQ) > 0:
			q := c.appQ
			c.appQ = nil
			buf := c.appBuf // views stay valid even if appBuf reallocates
			cb := c.onDeliver
			c.mu.Unlock()
			if cb != nil {
				for _, out := range q {
					cb(buf[out.off : out.off+out.n])
				}
			}
			c.mu.Lock()
		case len(c.deliverQ) > 0:
			item := c.deliverQ[0]
			c.deliverQ = c.deliverQ[1:]
			if item.m.Synthetic {
				c.releaseSynthetic(item)
			} else {
				c.release(item)
			}
		case !c.ep.cfg.LazyPost && len(c.recv.pending) > 0:
			c.runOnePost(&c.recv)
		case !c.ep.cfg.LazyPost && len(c.send.pending) > 0:
			c.runOnePost(&c.send)
		case c.send.disable == 0 && len(c.send.backlog) > 0:
			c.kickBacklog()
		default:
			// Quiescent: no callback is active (nested settles
			// never process appQ), so the scratch can be reused.
			if cap(c.appBuf) > 64<<10 {
				c.appBuf = nil
			} else {
				c.appBuf = c.appBuf[:0]
			}
			return
		}
	}
}

// release re-enters the delivery path above a layer that had buffered m.
func (c *Conn) release(item releaseItem) {
	env, sizes, err := c.parseWire(item.m, nil, item.m.Order)
	if err != nil {
		c.stats.Dropped++
		item.m.Free()
		return
	}
	c.recv.mode = Pre
	ctx := c.ctx(env)
	v, _ := c.st.DeliverAbove(ctx, item.m, item.from)
	c.recv.mode = Idle
	switch v {
	case stack.Continue:
		c.acceptDelivery(item.m, env, sizes, item.from)
	case stack.Consume:
		c.stats.Consumed++
	default:
		c.stats.Dropped++
		item.m.Free()
	}
}

// releaseSynthetic delivers a layer-synthesized message (reassembled
// fragments) that has no wire headers.
func (c *Conn) releaseSynthetic(item releaseItem) {
	c.queueApp(item.m.Payload())
	item.m.Free()
}

// drain runs a side's pending post-processing to completion (§3.1: "but
// before the next send or delivery operation"). Caller holds c.mu.
func (c *Conn) drain(s *sideState) {
	for len(s.pending) > 0 {
		c.runOnePost(s)
	}
}

func (c *Conn) runOnePost(s *sideState) {
	f := s.pending[0]
	s.pending = s.pending[1:]
	c.stats.PostRuns++
	f()
}

// Flush runs all outstanding post-processing and transmissions. With
// LazyPost it is the application's "idle" hook.
func (c *Conn) Flush() {
	c.mu.Lock()
	c.drain(&c.recv)
	c.drain(&c.send)
	c.settle()
	c.mu.Unlock()
	c.flushTx()
}

// kickBacklog packs and sends backlogged messages (§3.4). Caller holds
// c.mu; prediction must be enabled. Batches are bounded by count and by
// total payload bytes: a packed message must stay under the
// fragmentation threshold, or splitting it would destroy the packing
// structure.
func (c *Conn) kickBacklog() {
	n := len(c.send.backlog)
	if n > c.ep.cfg.maxPack() {
		n = c.ep.cfg.maxPack()
	}
	maxBytes := c.ep.cfg.maxPackBytes()
	total := 0
	fit := 0
	for fit < n {
		sz := c.send.backlog[fit].PayloadLen()
		if fit > 0 && total+sz > maxBytes {
			break
		}
		total += sz
		fit++
	}
	n = fit
	if c.ep.cfg.PackSameSizeOnly {
		// The paper's PA "only packs together messages of the same
		// size": take the maximal same-size run.
		run := 1
		first := c.send.backlog[0].PayloadLen()
		for run < n && c.send.backlog[run].PayloadLen() == first {
			run++
		}
		n = run
	}
	batch := c.send.backlog[:n]
	c.send.backlog = c.send.backlog[n:]

	if n == 1 {
		m := batch[0]
		_ = c.sendMsg(m, nil)
		return
	}
	sizes := make([]int, n)
	for i, m := range batch {
		sizes[i] = m.PayloadLen()
	}
	packed := message.NewWithHeadroom(nil, message.DefaultHeadroom)
	for _, m := range batch {
		packed.AppendPayload(m.Payload())
		m.Free()
	}
	c.stats.PackedBatches++
	c.stats.PackedMsgs += uint64(n)
	_ = c.sendMsg(packed, sizes)
}

// Close tears the connection down: timers stopped, routes removed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.idleCh != nil {
		close(c.idleCh)
	}
	for _, l := range c.st.Layers() {
		if cl, ok := l.(io.Closer); ok {
			cl.Close()
		}
	}
	for _, m := range c.send.backlog {
		m.Free()
	}
	c.send.backlog = nil
	c.send.pending = nil
	c.recv.pending = nil
	c.mu.Unlock()
	c.ep.removeConn(c)
	return nil
}

func (c *Conn) nowMicros() uint64 {
	return uint64(c.ep.cfg.clock().Now().UnixNano() / int64(time.Microsecond))
}

// ---- stack.Services implementation (caller always holds c.mu) ----

// Clock implements stack.Services.
func (c *Conn) Clock() vclock.Clock { return c.ep.cfg.clock() }

// AfterFunc implements stack.Services: the callback runs holding the
// connection lock, followed by a settle pass and a transmit flush.
func (c *Conn) AfterFunc(d time.Duration, f func()) vclock.Timer {
	return c.ep.cfg.clock().AfterFunc(d, func() {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		f()
		c.settle()
		c.mu.Unlock()
		c.flushTx()
	})
}

// DisableSend implements stack.Services (§3.2).
func (c *Conn) DisableSend() { c.send.disable++ }

// EnableSend implements stack.Services; the backlog is kicked by the
// enclosing settle pass.
func (c *Conn) EnableSend() {
	if c.send.disable > 0 {
		c.send.disable--
	}
}

// DisableRecv implements stack.Services.
func (c *Conn) DisableRecv() { c.recv.disable++ }

// EnableRecv implements stack.Services.
func (c *Conn) EnableRecv() {
	if c.recv.disable > 0 {
		c.recv.disable--
	}
}

// SendControl implements stack.Services: a layer-generated message (§3.2)
// traverses only the layers below the originator, then the send filter.
func (c *Conn) SendControl(from stack.Layer, m *message.Msg, opts stack.ControlOpts) error {
	if c.closed {
		return ErrConnClosed
	}
	m.PushBytes(encodePacking(nil, nil))
	gos := m.Push(c.gosN)
	msgRegion := m.Push(c.msgN)
	proto := m.Push(c.protoN)
	env := &filter.Env{Payload: m.Payload(), Order: c.order, Time: c.nowMicros()}
	env.Hdr[header.ProtoSpec] = proto
	env.Hdr[header.MsgSpec] = msgRegion
	env.Hdr[header.Gossip] = gos
	if opts.Build != nil {
		opts.Build(env)
	}
	ctx := c.ctx(env)
	if v, _ := c.st.ControlSend(ctx, m, from); v != stack.Continue {
		m.Free()
		return fmt.Errorf("core: control message rejected below %s", from.Name())
	}
	if st := c.send.runFilter(env); st != filter.StatusOK {
		m.Free()
		return fmt.Errorf("%w: control message (status %d)", ErrSendFailed, st)
	}
	c.transmitAs(m, opts.IncludeConnID || c.needConnID)
	c.needConnID = false
	c.stats.ControlMsgs++
	c.st.ControlPostSend(ctx, m, from)
	m.Free()
	return nil
}

// SendRaw implements stack.Services: retransmit a fully built frame.
func (c *Conn) SendRaw(m *message.Msg, includeConnID bool) error {
	if c.closed {
		return ErrConnClosed
	}
	c.transmitAs(m, includeConnID)
	c.stats.Retransmits++
	return nil
}

// EnqueueDeliver implements stack.Services.
func (c *Conn) EnqueueDeliver(from stack.Layer, m *message.Msg) {
	c.deliverQ = append(c.deliverQ, releaseItem{from: from, m: m})
}

// Defer implements stack.Services: the action joins the receive-side
// post-processing queue.
func (c *Conn) Defer(f func()) {
	c.recv.pending = append(c.recv.pending, f)
}

// DebugString renders the per-connection PA state of the paper's Table 3:
// operation modes, the predicted headers, disable counters, pending
// post-processing, backlog, and the packet filter geometries.
func (c *Conn) DebugString() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "protocol accelerator for %s (cookie %#x, conn-ident due: %v)\n",
		c.spec.Addr, c.outCookie, c.needConnID)
	side := func(name string, s *sideState, filterLen int) {
		fmt.Fprintf(&b, "  %-8s mode=%-4s disable=%d pending-post=%d",
			name, s.mode, s.disable, len(s.pending))
		if name == "send" {
			fmt.Fprintf(&b, " backlog=%d", len(s.backlog))
		}
		fmt.Fprintf(&b, " filter=%d instrs\n", filterLen)
		fmt.Fprintf(&b, "           predicted proto-spec %x  gossip %x\n",
			s.predict[header.ProtoSpec], s.predict[header.Gossip])
	}
	side("send", &c.send, c.send.prog.Len())
	side("recv", &c.recv, c.recv.prog.Len())
	return b.String()
}

package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"paccel/internal/telemetry"
)

// Connection supervision: the paper leaves connection lifecycle
// unspecified ("in our experiments no message loss was observed"), so
// this file adds the minimum a production endpoint needs — a terminal
// Failed state with a typed cause, dead-peer detection driven by traffic
// silence, and an endpoint Shutdown that drains the deferred work the
// lazy post-processing optimisation (§3.1) leaves behind.

// Supervision errors. ErrConnFailed wraps every failure cause, so
// errors.Is(err, ErrConnFailed) matches any failed connection and the
// specific cause (ErrPeerSilent, a heartbeat report, an application
// error) stays matchable through the wrap.
var (
	// ErrConnFailed reports operations on a connection in the Failed
	// state.
	ErrConnFailed = errors.New("core: connection failed")
	// ErrPeerSilent is the failure cause assigned by dead-peer
	// detection (Config.PeerTimeout).
	ErrPeerSilent = errors.New("core: peer silent")
)

// ConnState is a connection's lifecycle state.
type ConnState uint8

// Connection lifecycle. Active → Failed is driven by supervision or an
// explicit Fail; with Config.Recovery enabled the connection passes
// through Recovering first and only reaches Failed when the retry
// budget is exhausted (see recovery.go). All states reach Closed via
// Close. Failed is terminal short of Close: sends and deliveries are
// refused with the stored cause, but the connection keeps its routes
// and counters for inspection until the application closes it.
const (
	StateActive ConnState = iota
	StateFailed
	StateClosed
	StateRecovering
)

// String names the state.
func (s ConnState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateFailed:
		return "failed"
	case StateClosed:
		return "closed"
	case StateRecovering:
		return "recovering"
	}
	return "?"
}

// State returns the connection's lifecycle state.
func (c *Conn) State() ConnState {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.closed:
		return StateClosed
	case c.failCause != nil:
		return StateFailed
	case c.recovering:
		return StateRecovering
	}
	return StateActive
}

// Err returns the failure cause once the connection is Failed, nil
// otherwise. The cause wraps ErrConnFailed.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failCause
}

// Fail reports the connection dead with the given cause. With recovery
// configured (Config.Recovery.MaxAttempts > 0) the connection enters
// the Recovering state and the redial engine takes over (recovery.go);
// a Fail on an already-recovering connection escalates straight to the
// terminal Failed state. Without recovery — or while the endpoint is
// shutting down — the connection moves to Failed directly: pending
// post-processing is run (layer state must settle before the layers
// shut down), layer timers are stopped, the backlog and queued
// deliveries are freed, and blocked senders are released with the
// stored error. Subsequent sends return the cause; late datagrams are
// dropped and counted. The connection keeps its routes until Close.
// Fail is idempotent and a no-op on a closed connection.
func (c *Conn) Fail(cause error) {
	c.mu.Lock()
	if c.closed || c.failCause != nil {
		c.mu.Unlock()
		return
	}
	if c.recovering {
		// An explicit Fail during recovery is an escalation, not a
		// second trigger: give up now.
		c.cancelRecoveryLocked()
		c.failLocked(cause)
		return
	}
	if c.recoveryOn() && !c.ep.draining.Load() {
		c.enterRecoveryLocked(cause)
		return
	}
	c.failLocked(cause)
}

// hardFail moves the connection straight to the terminal Failed state,
// bypassing the recovery engine — for causes recovery must not mask. A
// secure layer whose nonce space is exhausted is the canonical case: a
// resume would rekey and reset the counter, hiding a guard that exists
// precisely to refuse further traffic. Idempotent; no-op when already
// closed or failed.
func (c *Conn) hardFail(cause error) {
	c.mu.Lock()
	if c.closed || c.failCause != nil {
		c.mu.Unlock()
		return
	}
	if c.recovering {
		c.cancelRecoveryLocked()
	}
	c.failLocked(cause)
}

// failLocked is the terminal half of Fail. Caller holds c.mu;
// failLocked releases it, flushes queued transmissions, invokes the
// OnConnFail callback (never under the lock — it may call back into
// the Conn), and returns the stored error.
func (c *Conn) failLocked(cause error) error {
	c.drain(&c.recv)
	c.drain(&c.send)
	if cause == nil {
		c.failCause = ErrConnFailed
	} else {
		c.failCause = fmt.Errorf("%w: %w", ErrConnFailed, cause)
	}
	c.tel.Event(telemetry.EventState, c.outCookie, c.failCause.Error())
	c.stopSupervision()
	for _, l := range c.st.Layers() {
		if cl, ok := l.(io.Closer); ok {
			cl.Close()
		}
	}
	for _, m := range c.send.backlog {
		m.Free()
	}
	c.send.backlog = nil
	for _, it := range c.deliverQ {
		it.m.Free()
	}
	c.deliverQ = nil
	c.wakeBlocked()
	cb := c.ep.cfg.OnConnFail
	err := c.failCause
	c.mu.Unlock()
	// The drained post-processing may have queued transmissions (acks,
	// retransmits); push them out before reporting the failure.
	c.flushTx()
	if cb != nil {
		cb(c, err)
	}
	return err
}

// startSupervision arms dead-peer detection when Config.PeerTimeout is
// set. The timer fires every PeerTimeout and compares the delivery
// activity counter against the previous tick: a full interval with no
// incoming traffic fails the connection with ErrPeerSilent, so detection
// latency is between one and two intervals.
func (c *Conn) startSupervision() {
	if c.ep.cfg.PeerTimeout <= 0 {
		return
	}
	c.mu.Lock()
	c.startSupervisionLocked()
	c.mu.Unlock()
}

// startSupervisionLocked arms the dead-peer timer; caller holds c.mu.
// Recovery completion restarts supervision through this path.
func (c *Conn) startSupervisionLocked() {
	if c.ep.cfg.PeerTimeout <= 0 {
		return
	}
	c.superSeen = c.recvActivity
	c.superTimer = c.ep.cfg.clock().AfterFunc(c.ep.cfg.PeerTimeout, c.superviseTick)
}

func (c *Conn) superviseTick() {
	c.mu.Lock()
	if c.closed || c.failCause != nil {
		c.mu.Unlock()
		return
	}
	if c.recvActivity == c.superSeen {
		quiet := c.ep.cfg.PeerTimeout
		c.superTimer = nil
		c.mu.Unlock()
		c.Fail(fmt.Errorf("%w: no traffic for at least %v", ErrPeerSilent, quiet))
		return
	}
	c.superSeen = c.recvActivity
	c.superTimer = c.ep.cfg.clock().AfterFunc(c.ep.cfg.PeerTimeout, c.superviseTick)
	c.mu.Unlock()
}

// stopSupervision cancels the dead-peer timer. Caller holds c.mu.
func (c *Conn) stopSupervision() {
	if c.superTimer != nil {
		c.superTimer.Stop()
		c.superTimer = nil
	}
}

// drained reports whether the connection holds no deferred work: no
// pending post-processing on either side, no packed backlog, no queued
// deliveries or application callbacks, and no un-flushed transmissions.
func (c *Conn) drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.send.pendingLen() == 0 && c.recv.pendingLen() == 0 &&
		len(c.send.backlog) == 0 && len(c.deliverQ) == 0 &&
		len(c.appQ) == 0 && c.txPending.Load() == 0
}

// Shutdown drains the endpoint before closing it. New sends are refused
// (ErrConnClosed) from the moment Shutdown is called; receives continue,
// so peers' acknowledgements can still open the window for backlogged
// messages. Every connection's deferred post-processing, packed backlog,
// and transmit queue are run to completion, and only then are the
// connections and the transport closed — the lazy post-processing
// guarantee (§3.1) holds through termination. If ctx expires first the
// endpoint is closed anyway (without the drain guarantee) and ctx.Err()
// is returned.
func (ep *Endpoint) Shutdown(ctx context.Context) error {
	if ep.closed.Load() {
		return nil
	}
	ep.draining.Store(true)
	for {
		ep.routeMu.Lock()
		conns := make([]*Conn, 0, len(ep.conns))
		for c := range ep.conns {
			conns = append(conns, c)
		}
		ep.routeMu.Unlock()
		dirty := false
		for _, c := range conns {
			c.Flush()
			if !c.drained() {
				dirty = true
			}
		}
		if !dirty {
			break
		}
		select {
		case <-ctx.Done():
			ep.Close()
			return ctx.Err()
		default:
		}
		// Deferred work that Flush cannot finish needs the peer (window
		// acknowledgements for the backlog); poll briefly.
		time.Sleep(50 * time.Microsecond)
	}
	return ep.Close()
}

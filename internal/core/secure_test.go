package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

// secureStack mirrors the facade's encrypted composition: the GCM tag
// subsumes the checksum, frag sits above so fragments are sealed
// individually, and the window below so replays are re-sealed after a
// rekey. limit caps the nonce counter (0 = default).
func secureStack(key []byte, limit uint64) StackBuilder {
	return func(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
		sec := layers.NewSecure(key, spec.LocalID, spec.RemoteID, spec.LocalPort, spec.RemotePort)
		sec.NonceLimit = limit
		return []stack.Layer{
			layers.NewFrag(),
			sec,
			layers.NewWindow(),
			&layers.Heartbeat{Interval: 30 * time.Millisecond},
			&layers.Ident{
				Local: spec.LocalID, Remote: spec.RemoteID,
				LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
				Epoch: spec.Epoch, Order: order,
			},
		}, nil
	}
}

// connSecureStats finds the secure layer in a connection's stack.
func connSecureStats(t *testing.T, c *Conn) layers.SecureStats {
	t.Helper()
	for _, l := range c.Layers() {
		if s, ok := l.(*layers.Secure); ok {
			return s.Stats()
		}
	}
	t.Fatal("no secure layer in stack")
	return layers.SecureStats{}
}

// TestSecurePingPong runs encrypted traffic both ways through the full
// engine — fast path, acks, delivery — and checks the secure layer saw
// every frame.
func TestSecurePingPong(t *testing.T) {
	key := []byte("rig master key")
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.Build = secureStack(key, 0)
		cfgB.Build = secureStack(key, 0)
	})
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if err := r.a.Send([]byte(fmt.Sprintf("a-%02d", i))); err != nil {
			t.Fatal(err)
		}
		if err := r.b.Send([]byte(fmt.Sprintf("b-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r.settleNet(2 * time.Second)
	if r.fromA.count() != rounds || r.fromB.count() != rounds {
		t.Fatalf("delivered %d/%d, want %d each", r.fromA.count(), r.fromB.count(), rounds)
	}
	for i := 0; i < rounds; i++ {
		if want := fmt.Sprintf("a-%02d", i); string(r.fromA.get(i)) != want {
			t.Fatalf("B message %d = %q, want %q", i, r.fromA.get(i), want)
		}
	}
	st := connSecureStats(t, r.a)
	if st.Sealed < rounds || st.Opened < rounds {
		t.Fatalf("A secure stats = %+v, want >= %d sealed and opened", st, rounds)
	}
	if st.AuthFails != 0 {
		t.Fatalf("AuthFails = %d on a clean network", st.AuthFails)
	}
	// The encrypted stack still rides the predicted fast path.
	if cs := r.a.Stats(); cs.FastSends == 0 {
		t.Fatalf("conn stats = %+v, want fast sends", cs)
	}
}

// TestSecureFragmentedPayload sends a payload past the frag threshold:
// each fragment is sealed individually (frag sits above secure) and the
// reassembly equals the original.
func TestSecureFragmentedPayload(t *testing.T) {
	key := []byte("rig master key")
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.Build = secureStack(key, 0)
		cfgB.Build = secureStack(key, 0)
	})
	big := bytes.Repeat([]byte("fragment-me-"), 512) // ~6 KB, over the default threshold
	if err := r.a.Send(big); err != nil {
		t.Fatal(err)
	}
	r.settleNet(2 * time.Second)
	if r.fromA.count() != 1 || !bytes.Equal(r.fromA.get(0), big) {
		t.Fatalf("fragmented payload corrupted (%d messages)", r.fromA.count())
	}
	if st := connSecureStats(t, r.a); st.Sealed < 2 {
		t.Fatalf("Sealed = %d, want one per fragment", st.Sealed)
	}
}

// TestSecureRecoveryRekeys is the tentpole integration scenario: a
// partition trips recovery, resumption bumps the send epoch, the window
// layer's replays are re-sealed under the new key, the peer adopts the
// new epoch, and everything submitted before or during the outage
// arrives exactly once, in order, decrypted.
func TestSecureRecoveryRekeys(t *testing.T) {
	key := []byte("rig master key")
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		for _, cfg := range []*Config{cfgA, cfgB} {
			cfg.Build = secureStack(key, 0)
			cfg.PeerTimeout = 100 * time.Millisecond
			cfg.Recovery = testRecovery(50)
		}
	})

	var want [][]byte
	send := func(p string) {
		if err := r.a.Send([]byte(p)); err != nil {
			t.Fatalf("Send(%q) = %v", p, err)
		}
		want = append(want, []byte(p))
	}
	for i := 0; i < 5; i++ {
		send(fmt.Sprintf("pre-%d", i))
	}

	partitionAB(r, true)
	// Submitted into the void: sealed under epoch 1, unacked in A's
	// window, replayed (and re-sealed) after the rekey.
	for i := 0; i < 3; i++ {
		send(fmt.Sprintf("cut-%d", i))
	}
	advanceBy(r, 300*time.Millisecond)
	if got := r.a.State(); got != StateRecovering {
		t.Fatalf("state during partition = %v, want recovering", got)
	}
	send("during-recovery")

	partitionAB(r, false)
	advanceBy(r, 2*time.Second)

	if got := r.a.State(); got != StateActive {
		t.Fatalf("state after heal = %v, want active", got)
	}
	if r.fromA.count() != len(want) {
		t.Fatalf("B delivered %d messages, want %d", r.fromA.count(), len(want))
	}
	for i, w := range want {
		if !bytes.Equal(r.fromA.get(i), w) {
			t.Fatalf("message %d = %q, want %q", i, r.fromA.get(i), w)
		}
	}

	stA := connSecureStats(t, r.a)
	if stA.Rekeys == 0 || stA.SendEpoch < 2 {
		t.Fatalf("A never rekeyed: %+v", stA)
	}
	if stA.Reseals == 0 {
		t.Fatalf("no replays were re-sealed: %+v", stA)
	}
	stB := connSecureStats(t, r.b)
	if stB.Adoptions == 0 || stB.RecvEpoch < 2 {
		t.Fatalf("B never adopted the new epoch: %+v", stB)
	}
	if stB.AuthFails != 0 {
		t.Fatalf("B dropped frames during rekey: %+v", stB)
	}

	// The rekeyed session keeps working both ways.
	if err := r.b.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	r.settleNet(time.Second)
	if r.fromB.count() != 1 || !bytes.Equal(r.fromB.get(0), []byte("back")) {
		t.Fatalf("A got %d reverse messages", r.fromB.count())
	}
}

// TestSecureNonceExhaustionHardFails drives the counter into a tiny
// limit: the failing send surfaces ErrNonceExhausted and the connection
// lands in Failed immediately — no recovery attempt, because a resume
// would rekey and mask the guard.
func TestSecureNonceExhaustionHardFails(t *testing.T) {
	key := []byte("rig master key")
	const limit = 8
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.Build = secureStack(key, limit)
		cfgB.Build = secureStack(key, 0)
		cfgA.Recovery = testRecovery(50)
	})
	var got error
	for i := 0; i < limit+4; i++ {
		if err := r.a.Send([]byte("spend a nonce")); err != nil {
			got = err
			break
		}
		// Let acks flow so the window never blocks the sends; note the
		// heartbeat and ack machinery never burn A's counters here —
		// control frames below the secure layer are not sealed.
		r.settleNet(50 * time.Millisecond)
	}
	if !errors.Is(got, layers.ErrNonceExhausted) {
		t.Fatalf("send error = %v, want ErrNonceExhausted", got)
	}
	if st := r.a.State(); st != StateFailed {
		t.Fatalf("state = %v, want failed (hard-fail, no recovery)", st)
	}
	if !errors.Is(r.a.Err(), layers.ErrNonceExhausted) {
		t.Fatalf("Err() = %v, want ErrNonceExhausted cause", r.a.Err())
	}
	if st := r.a.Stats(); st.Recoveries != 0 {
		t.Fatalf("Recoveries = %d, want 0 (terminal failure bypasses recovery)", st.Recoveries)
	}
	if err := r.a.Send([]byte("after")); !errors.Is(err, ErrConnFailed) {
		t.Fatalf("send after hard fail = %v, want ErrConnFailed", err)
	}
}

// TestSecureFanoutFallsBackPerMember: the secure layer's predicted
// sealed flag marks the stack stateful, so group sends skip the shared
// template and seal per member — every member still gets every payload.
func TestSecureFanoutFallsBackPerMember(t *testing.T) {
	key := []byte("star master key")
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	hub, err := NewEndpoint(Config{Transport: net.Endpoint("hub"), Clock: clk, Build: secureStack(key, 0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })
	const members, rounds = 3, 10
	var conns []*Conn
	var sinks []*sink
	for i := 0; i < members; i++ {
		name := memberName(i)
		ep, err := NewEndpoint(Config{Transport: net.Endpoint(name), Clock: clk, Build: secureStack(key, 0)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		hc, err := hub.Dial(PeerSpec{
			Addr: name, LocalID: []byte("hub"), RemoteID: []byte(name),
			LocalPort: 1, RemotePort: uint16(i + 2), Epoch: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		mc, err := ep.Dial(PeerSpec{
			Addr: "hub", LocalID: []byte(name), RemoteID: []byte("hub"),
			LocalPort: uint16(i + 2), RemotePort: 1, Epoch: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		sk := &sink{}
		mc.OnDeliver(sk.add)
		conns, sinks = append(conns, hc), append(sinks, sk)
	}
	fan, err := NewFanout(hub, conns...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if err := fan.Send([]byte(fmt.Sprintf("enc-%02d", i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(200 * time.Millisecond)
	}
	clk.Advance(2 * time.Second)
	for m, sk := range sinks {
		if sk.count() != rounds {
			t.Fatalf("member %d delivered %d of %d", m, sk.count(), rounds)
		}
		for i := 0; i < rounds; i++ {
			if want := fmt.Sprintf("enc-%02d", i); string(sk.get(i)) != want {
				t.Fatalf("member %d message %d = %q, want %q", m, i, sk.get(i), want)
			}
		}
	}
	for m, c := range conns {
		if st := connSecureStats(t, c); st.Sealed < rounds {
			t.Fatalf("member %d sealed %d, want >= %d (per-member seal)", m, st.Sealed, rounds)
		}
	}
}

package core

// Tests for the kernel-offload support in the engine: the flush path's
// equal-size run shaping (shapeCoalescible) and the multi-queue
// transport capability surfaced through Snapshot.

import (
	"testing"
	"time"

	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

// mkQueue builds wire images with the given sizes, tagging each with its
// original index so stability is checkable after shaping.
func mkQueue(sizes ...int) [][]byte {
	q := make([][]byte, len(sizes))
	for i, s := range sizes {
		d := make([]byte, s)
		if s > 0 {
			d[0] = byte(i)
		}
		q[i] = d
	}
	return q
}

func TestShapeCoalescibleGroupsRuns(t *testing.T) {
	q := mkQueue(3, 5, 3, 5, 3, 7, 5)
	shapeCoalescible(q)
	wantSizes := []int{3, 3, 3, 5, 5, 5, 7}
	wantTags := []byte{0, 2, 4, 1, 3, 6, 5}
	for i := range q {
		if len(q[i]) != wantSizes[i] || q[i][0] != wantTags[i] {
			t.Fatalf("slot %d: size=%d tag=%d, want size=%d tag=%d",
				i, len(q[i]), q[i][0], wantSizes[i], wantTags[i])
		}
	}
}

func TestShapeCoalescibleStableWithinSize(t *testing.T) {
	// Ten interleaved datagrams of two sizes: each size class must keep
	// its original relative order (fragment sequences stay in sequence).
	q := mkQueue(100, 200, 100, 200, 100, 200, 100, 200, 100, 200)
	shapeCoalescible(q)
	var tags100, tags200 []byte
	for _, d := range q {
		if len(d) == 100 {
			tags100 = append(tags100, d[0])
		} else {
			tags200 = append(tags200, d[0])
		}
	}
	for i := 1; i < len(tags100); i++ {
		if tags100[i] < tags100[i-1] {
			t.Fatalf("size-100 class reordered: %v", tags100)
		}
	}
	for i := 1; i < len(tags200); i++ {
		if tags200[i] < tags200[i-1] {
			t.Fatalf("size-200 class reordered: %v", tags200)
		}
	}
	if len(tags100) != 5 || len(tags200) != 5 {
		t.Fatalf("lost datagrams: %d+%d", len(tags100), len(tags200))
	}
}

func TestShapeCoalescibleNoOpOnGrouped(t *testing.T) {
	q := mkQueue(4, 4, 4, 9, 9, 2)
	shapeCoalescible(q)
	for i, want := range []byte{0, 1, 2, 3, 4, 5} {
		if q[i][0] != want {
			t.Fatalf("already-grouped queue disturbed at %d: tag %d", i, q[i][0])
		}
	}
}

func TestShapeCoalescibleAllocFree(t *testing.T) {
	q := mkQueue(3, 5, 3, 5, 3, 5, 3, 5)
	orig := make([][]byte, len(q))
	allocs := testing.AllocsPerRun(100, func() {
		copy(orig, q)
		shapeCoalescible(orig)
	})
	if allocs != 0 {
		t.Fatalf("shapeCoalescible allocates %.1f/op, want 0", allocs)
	}
}

// fakeMQTransport is a minimal Transport with the multi-queue
// capability, for exercising the Snapshot fold without sockets.
type fakeMQTransport struct {
	h func(string, []byte)
}

func (f *fakeMQTransport) Send(dst string, d []byte) error    { return nil }
func (f *fakeMQTransport) SetHandler(h func(string, []byte))  { f.h = h }
func (f *fakeMQTransport) LocalAddr() string                  { return "fake:0" }
func (f *fakeMQTransport) Close() error                       { return nil }
func (f *fakeMQTransport) NumQueues() int                     { return 3 }
func (f *fakeMQTransport) QueueRecvStats(i int) (b, d uint64) { return uint64(i), uint64(10 * (i + 1)) }
func (f *fakeMQTransport) RecvBatchStats() (b, d uint64)      { return 3, 60 }

func TestSnapshotMultiQueue(t *testing.T) {
	ep, err := NewEndpoint(Config{Transport: &fakeMQTransport{}})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	s := ep.Snapshot()
	if s.RecvQueues != 3 {
		t.Fatalf("RecvQueues = %d, want 3", s.RecvQueues)
	}
	want := []uint64{10, 20, 30}
	if len(s.QueueRecvDatagrams) != 3 {
		t.Fatalf("QueueRecvDatagrams = %v", s.QueueRecvDatagrams)
	}
	for i, w := range want {
		if s.QueueRecvDatagrams[i] != w {
			t.Fatalf("queue %d datagrams = %d, want %d", i, s.QueueRecvDatagrams[i], w)
		}
	}
	if s.BatchRecvs != 3 || s.RecvDatagrams != 60 {
		t.Fatalf("RecvBatcher fold: %d/%d", s.BatchRecvs, s.RecvDatagrams)
	}
}

func TestSnapshotSingleQueueDefault(t *testing.T) {
	net := netsim.New(vclock.NewManual(time.Unix(0, 0)), netsim.Config{})
	ep, err := NewEndpoint(Config{Transport: net.Endpoint("A")})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	s := ep.Snapshot()
	if s.RecvQueues != 1 || s.QueueRecvDatagrams != nil {
		t.Fatalf("single-queue transport: RecvQueues=%d QueueRecvDatagrams=%v", s.RecvQueues, s.QueueRecvDatagrams)
	}
}

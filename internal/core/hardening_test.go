package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"paccel/internal/bits"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/udp"
	"paccel/internal/vclock"
)

// TestMalformedDatagramsNeverPanic floods an endpoint with random and
// truncated datagrams; the router must drop them all without panicking or
// delivering anything.
func TestMalformedDatagramsNeverPanic(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	raw := r.net.Endpoint("attacker")
	delivered := r.fromA.count()

	rng := rand.New(rand.NewSource(99))
	// Pure noise of every length.
	for n := 0; n < 200; n++ {
		buf := make([]byte, rng.Intn(120))
		rng.Read(buf)
		if err := raw.Send("B", buf); err != nil {
			t.Fatal(err)
		}
	}
	// Valid preambles with garbage bodies: random cookies, CIP with
	// truncated identifications.
	for n := 0; n < 200; n++ {
		pre := Preamble{
			ConnIDPresent: n%2 == 0,
			Cookie:        rng.Uint64() & CookieMask,
		}
		body := make([]byte, rng.Intn(100))
		rng.Read(body)
		if err := raw.Send("B", pre.Encode(nil)); err != nil {
			t.Fatal(err)
		}
		if err := raw.Send("B", append(pre.Encode(nil), body...)); err != nil {
			t.Fatal(err)
		}
	}
	r.settleNet(time.Second)
	if r.fromA.count() != delivered {
		t.Fatal("noise was delivered to the application")
	}
	// And the legitimate connection still works afterwards.
	if err := r.a.Send([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
	if r.fromA.count() != delivered+1 {
		t.Fatal("connection broken by noise")
	}
}

// TestQuickRandomDatagrams is the property form: arbitrary bytes into the
// router never panic and never reach the application.
func TestQuickRandomDatagrams(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	raw := r.net.Endpoint("fuzzer")
	f := func(data []byte) bool {
		before := r.fromA.count()
		if err := raw.Send("B", data); err != nil {
			return len(data) > netsim.DefaultMTU // only oversize may error
		}
		return r.fromA.count() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedLegitimateDatagrams replays every prefix of a real
// datagram; all must be dropped cleanly (checksum or length checks).
func TestTruncatedLegitimateDatagrams(t *testing.T) {
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	var captured []byte
	epA, err := NewEndpoint(Config{
		Transport: &capturingTransport{Transport: net.Endpoint("A"), out: &captured},
		Clock:     clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	var got sink
	b.OnDeliver(got.add)
	if err := a.Send([]byte("template message")); err != nil {
		t.Fatal(err)
	}
	if got.count() != 1 {
		t.Fatal("template not delivered")
	}
	raw := net.Endpoint("A")
	for cut := 0; cut < len(captured); cut++ {
		if err := raw.Send("B", captured[:cut]); err != nil {
			t.Fatal(err)
		}
	}
	if got.count() != 1 {
		t.Fatalf("truncated datagram delivered (count %d)", got.count())
	}
}

// TestMultiClientServer is the §6 "Maximum Load" scenario: one server
// endpoint, a PA per client, all clients doing RPCs concurrently.
func TestMultiClientServer(t *testing.T) {
	net := netsim.New(vclock.Real{}, netsim.Config{})
	server, err := NewEndpoint(Config{
		Transport: net.Endpoint("server"),
		Accept: func(remote layers.IdentInfo, netSrc string) (PeerSpec, bool) {
			return PeerSpec{
				Addr:      netSrc,
				LocalID:   bytes.TrimRight(remote.Dst, "\x00"),
				RemoteID:  bytes.TrimRight(remote.Src, "\x00"),
				LocalPort: remote.DstPort, RemotePort: remote.SrcPort,
				Epoch: remote.Epoch,
			}, true
		},
		OnConn: func(c *Conn) {
			c.OnDeliver(func(req []byte) {
				if err := c.Send(req); err != nil {
					t.Error(err)
				}
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	const clients = 8
	const rpcs = 200
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			host := fmt.Sprintf("client%d", id)
			ep, err := NewEndpoint(Config{Transport: net.Endpoint(host)})
			if err != nil {
				errs <- err
				return
			}
			defer ep.Close()
			conn, err := ep.Dial(PeerSpec{
				Addr:    "server",
				LocalID: []byte(host), RemoteID: []byte("server"),
				LocalPort: uint16(10 + id), RemotePort: 1, Epoch: 1,
			})
			if err != nil {
				errs <- err
				return
			}
			done := make(chan []byte, 1)
			conn.OnDeliver(func(p []byte) { done <- append([]byte(nil), p...) })
			want := []byte(fmt.Sprintf("req-from-%d", id))
			for r := 0; r < rpcs; r++ {
				if err := conn.Send(want); err != nil {
					errs <- err
					return
				}
				select {
				case got := <-done:
					if !bytes.Equal(got, want) {
						errs <- fmt.Errorf("client %d: cross-talk: got %q", id, got)
						return
					}
				case <-time.After(5 * time.Second):
					errs <- fmt.Errorf("client %d: rpc %d timeout", id, r)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := server.Snapshot(); st.Accepted != clients {
		t.Fatalf("accepted = %d", st.Accepted)
	}
}

// TestOverUDP runs the PA between two real UDP sockets on loopback —
// the cross-process transport, in-process.
func TestOverUDP(t *testing.T) {
	ta, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	epA, err := NewEndpoint(Config{Transport: ta})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(Config{Transport: tb})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	a, err := epA.Dial(PeerSpec{
		Addr: tb.LocalAddr(), LocalID: []byte("alice"), RemoteID: []byte("bob"),
		LocalPort: 1, RemotePort: 2, Epoch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(PeerSpec{
		Addr: ta.LocalAddr(), LocalID: []byte("bob"), RemoteID: []byte("alice"),
		LocalPort: 2, RemotePort: 1, Epoch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.OnDeliver(func(p []byte) {
		if err := b.Send(append([]byte("echo:"), p...)); err != nil {
			t.Error(err)
		}
	})
	got := make(chan []byte, 1)
	a.OnDeliver(func(p []byte) { got <- append([]byte(nil), p...) })
	for i := 0; i < 50; i++ {
		if err := a.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		select {
		case d := <-got:
			if string(d) != fmt.Sprintf("echo:m%d", i) {
				t.Fatalf("got %q", d)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout at %d", i)
		}
	}
	if st := a.Stats(); st.ConnIDSent != 1 {
		t.Fatalf("ConnIDSent = %d", st.ConnIDSent)
	}
}

// TestHeartbeatAndStampInStack runs a six-layer stack (stamp + heartbeat
// added) through the engine under the manual clock: keepalives flow while
// idle, the silence callback fires on partition, and the latency meter
// samples deliveries.
func TestHeartbeatAndStampInStack(t *testing.T) {
	var hbA *layers.Heartbeat
	var stampB *layers.Stamp
	silence := make(chan time.Duration, 4)
	build := func(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
		hb := layers.NewHeartbeat()
		hb.Interval = 10 * time.Millisecond
		hb.Misses = 3
		st := layers.NewStamp()
		ident := &layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		}
		if string(spec.LocalID) == "alice" {
			hbA = hb
			hb.OnSilence = func(d time.Duration) { silence <- d }
		} else {
			stampB = st
		}
		return []stack.Layer{st, layers.NewChksum(), layers.NewFrag(), layers.NewWindow(), hb, ident}, nil
	}
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.Build = build
		cfgB.Build = build
	})
	// Data flows; the stamp layer on B samples one-way latency.
	if err := r.a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if r.fromA.count() != 1 {
		t.Fatal("delivery failed with 6-layer stack")
	}
	if _, n := stampB.Mean(); n != 1 {
		t.Fatalf("stamp samples = %d", n)
	}
	// Idle time: keepalives flow, keeping both sides alive.
	r.settleNet(100 * time.Millisecond)
	if hbA.Beats == 0 {
		t.Fatal("no keepalives sent")
	}
	if hbA.Heard == 0 {
		t.Fatal("no keepalives heard")
	}
	select {
	case d := <-silence:
		t.Fatalf("false silence: %v", d)
	default:
	}
	// Partition B→A: A stops hearing and reports silence.
	r.net.SetLinkDown("B", "A", true)
	r.settleNet(200 * time.Millisecond)
	select {
	case <-silence:
	default:
		t.Fatal("silence not detected after partition")
	}
}

// TestWireDeterminism runs the identical message sequence twice with
// pinned cookies; the captured wire streams must be byte-identical —
// a regression pin for the whole send path.
func TestWireDeterminism(t *testing.T) {
	run := func() [][]byte {
		clk := vclock.NewManual(t0)
		net := netsim.New(clk, netsim.Config{})
		var wires [][]byte
		cap := &captureAll{Transport: net.Endpoint("A"), out: &wires}
		epA, err := NewEndpoint(Config{Transport: cap, Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		defer epA.Close()
		epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		defer epB.Close()
		sa, sb := specAB()
		sa.OutCookie, sb.OutCookie = 1111, 2222
		a, err := epA.Dial(sa)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := epB.Dial(sb); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := a.Send([]byte{byte(i), 0x55}); err != nil {
				t.Fatal(err)
			}
			clk.Advance(time.Millisecond)
		}
		return wires
	}
	w1, w2 := run(), run()
	if len(w1) != len(w2) {
		t.Fatalf("stream lengths differ: %d vs %d", len(w1), len(w2))
	}
	for i := range w1 {
		if !bytes.Equal(w1[i], w2[i]) {
			t.Fatalf("datagram %d differs:\n%x\n%x", i, w1[i], w2[i])
		}
	}
}

type captureAll struct {
	Transport
	out *[][]byte
}

func (c *captureAll) Send(dst string, d []byte) error {
	*c.out = append(*c.out, append([]byte(nil), d...))
	return c.Transport.Send(dst, d)
}

// TestQuickExactlyOnceUnderAdversity is the system-level property: any
// sequence of payloads over a lossy, reordering, duplicating network is
// delivered exactly once, in order, intact.
func TestQuickExactlyOnceUnderAdversity(t *testing.T) {
	f := func(payloads [][]byte, seed int64) bool {
		if len(payloads) > 40 {
			payloads = payloads[:40]
		}
		for i, p := range payloads {
			if len(p) > 256 {
				payloads[i] = p[:256]
			}
		}
		r := newRig(t, netsim.Config{
			Latency:     30 * time.Microsecond,
			LossRate:    0.2,
			DupRate:     0.2,
			ReorderRate: 0.2,
			Seed:        seed,
		}, nil)
		for _, p := range payloads {
			if err := r.a.Send(p); err != nil {
				return false
			}
			r.settleNet(500 * time.Microsecond)
		}
		for i := 0; i < 200 && r.fromA.count() < len(payloads); i++ {
			r.settleNet(300 * time.Millisecond)
		}
		if r.fromA.count() != len(payloads) {
			return false
		}
		for i, p := range payloads {
			if !bytes.Equal(r.fromA.get(i), p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestOutOfOrderBufferingAblation compares the window layer's two gap
// strategies under a reordering network: buffering future frames needs
// far fewer retransmissions than dropping them (go-back-N).
func TestOutOfOrderBufferingAblation(t *testing.T) {
	run := func(buffer bool) (retransmits uint64) {
		build := func(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
			w := layers.NewWindow()
			w.BufferOutOfOrder = buffer
			w.Naks = buffer
			return []stack.Layer{
				layers.NewChksum(), layers.NewFrag(), w,
				&layers.Ident{
					Local: spec.LocalID, Remote: spec.RemoteID,
					LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
					Epoch: spec.Epoch, Order: order,
				},
			}, nil
		}
		r := newRig(t, netsim.Config{
			Latency: 200 * time.Microsecond, ReorderRate: 0.4, Seed: 31,
		}, func(cfgA, cfgB *Config) {
			cfgA.Build = build
			cfgB.Build = build
		})
		const n = 60
		for i := 0; i < n; i++ {
			if err := r.a.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			r.settleNet(100 * time.Microsecond)
		}
		for i := 0; i < 200 && r.fromA.count() < n; i++ {
			r.settleNet(300 * time.Millisecond)
		}
		if r.fromA.count() != n {
			t.Fatalf("buffer=%v: delivered %d/%d", buffer, r.fromA.count(), n)
		}
		for i := 0; i < n; i++ {
			if r.fromA.get(i)[0] != byte(i) {
				t.Fatalf("buffer=%v: out of order at %d", buffer, i)
			}
		}
		return r.a.Stats().Retransmits
	}
	withBuf := run(true)
	withoutBuf := run(false)
	if withBuf >= withoutBuf {
		t.Fatalf("buffering should reduce retransmissions: %d (buffered) vs %d (go-back-N)",
			withBuf, withoutBuf)
	}
	t.Logf("retransmits: buffered=%d go-back-N=%d", withBuf, withoutBuf)
}

// TestEndpointConstructionErrors covers the configuration error paths.
func TestEndpointConstructionErrors(t *testing.T) {
	if _, err := NewEndpoint(Config{}); err == nil {
		t.Fatal("nil transport accepted")
	}
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	// A stack without an identification layer is rejected.
	noIdent := func(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
		return []stack.Layer{layers.NewChksum(), layers.NewWindow()}, nil
	}
	if _, err := NewEndpoint(Config{Transport: net.Endpoint("A"), Clock: clk, Build: noIdent}); err == nil {
		t.Fatal("identification-free stack accepted")
	}
	// A builder error propagates.
	failing := func(PeerSpec, bits.ByteOrder) ([]stack.Layer, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk, Build: failing}); err == nil {
		t.Fatal("failing builder accepted")
	}
	// Dial after endpoint close fails.
	ep, err := NewEndpoint(Config{Transport: net.Endpoint("C"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	ep.Close()
	if _, err := ep.Dial(PeerSpec{Addr: "D", LocalID: []byte("x"), RemoteID: []byte("y")}); err == nil {
		t.Fatal("Dial after Close accepted")
	}
}

// TestEndpointCloseShutsConnections verifies Close cascades.
func TestEndpointCloseShutsConnections(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	if err := r.epA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.a.Send([]byte("x")); err != ErrConnClosed {
		t.Fatalf("err = %v", err)
	}
	if err := r.epA.Close(); err != nil {
		t.Fatal("double endpoint close")
	}
	if r.epA.IdentSize() != 76 {
		t.Fatalf("IdentSize = %d", r.epA.IdentSize())
	}
}

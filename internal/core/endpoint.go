package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
	"paccel/internal/telemetry"
	"paccel/internal/vclock"
)

// ErrCookieCollision is returned by Dial when PeerSpec.ExpectInCookie is
// already routed to a live connection. Cookies are 62-bit random values,
// so a collision between honestly drawn cookies is vanishingly unlikely —
// but pre-agreed cookies are chosen by the application, and silently
// rebinding one would hijack the existing connection's traffic.
var ErrCookieCollision = errors.New("core: cookie already bound to another connection")

// cookieShardCount is the number of router shards for the cookie table.
// 64 shards keep receive-path lookups for different connections on
// different locks (and mostly different cache lines) on any realistic
// core count.
const cookieShardCount = 64

// cookieShard is one slice of the cookie→conn table: an open-addressed,
// cache-line-packed cookieTable (table.go) behind a read-write lock.
// Shards are padded to two cache lines so two cores routing through
// neighbouring shards do not false-share.
type cookieShard struct {
	mu  sync.RWMutex
	tab cookieTable
	_   [32]byte // pad to 128 bytes
}

// shardIndex spreads cookies over the shards. Cookies are uniform random
// 62-bit values already, but pre-agreed cookies may be small integers, so
// mix with the 64-bit golden ratio before taking the top bits.
func shardIndex(cookie uint64) uint64 {
	return (cookie * 0x9E3779B97F4A7C15) >> 58
}

// Endpoint is one host attachment: it owns the transport, the router that
// demultiplexes incoming datagrams to Protocol Accelerators (by cookie in
// the normal case, by connection identification otherwise — §2.2), and
// the connections themselves.
//
// Concurrency model: the receive path is lock-light so that concurrent
// receives for different connections never serialize on the endpoint.
// Cookie lookups take one shard read-lock, identification lookups one
// table read-lock, and the router counters are atomics. All routing-table
// *writes* (Dial, connection teardown, cookie learning) additionally
// serialize on routeMu, which keeps the per-connection cookie
// bookkeeping consistent without ever blocking readers of other shards.
type Endpoint struct {
	cfg Config

	// batch is the transport's vectorized send interface, asserted once
	// at construction; nil when the transport only sends one datagram at
	// a time and the flush paths must loop.
	batch BatchTransport

	// batchTo is the transport's scattered-destination send interface
	// (one sendmmsg with per-header sockaddrs), asserted once at
	// construction; nil when fanout bursts must loop per destination.
	batchTo BatchToTransport

	// mq is the transport's multi-queue receive interface (SO_REUSEPORT
	// sharding), asserted once at construction; nil for single-queue
	// transports.
	mq MultiQueueTransport

	// coalescer is the transport's send-offload interface (UDP_SEGMENT
	// super-datagrams), asserted once at construction. The flush path
	// shapes the tx queue into equal-size runs only while it reports
	// Coalescible.
	coalescer Coalescer

	closed atomic.Bool
	// draining refuses new sends while Shutdown runs down the deferred
	// work (see supervise.go).
	draining atomic.Bool

	// routeMu serializes routing-table writers; it is never taken on
	// the pure lookup path.
	routeMu sync.Mutex
	conns   map[*Conn]struct{}

	// Cookie-TTL garbage collection (Config.CookieTTL): gcEpoch advances
	// on every sweep; lookups stamp it into the entry they route through.
	// gcTimer is guarded by routeMu.
	gcOn    bool
	gcEpoch atomic.Uint64
	gcTimer vclock.Timer

	identMu sync.RWMutex
	byIdent map[string]*Conn

	shards [cookieShardCount]cookieShard

	// singleLock emulates the pre-sharding router (one exclusive lock
	// around every lookup) for benchmarks; see Config.SingleLockRouter.
	singleLock bool
	slMu       sync.Mutex

	// template parses identifications of unknown connections; identSize
	// is the uniform ConnID header size of this endpoint's stack shape.
	template  Identifier
	identSize int

	// connSeq numbers connections in dial order; it assigns each
	// connection's telemetry shard and seeds the recovery engine's
	// jitter (recovery.go).
	connSeq atomic.Uint64

	// tel records router-level telemetry events; nil disables.
	tel *telemetry.Recorder

	stats endpointCounters

	// Overload protection (DESIGN.md §14). maxConns is the resolved hard
	// capacity; connCount the live connections against it (atomic so the
	// admission decision never takes a lock). adm is the admission
	// machinery: shed policy, storm detector, early-drop randomness.
	maxConns  int
	connCount atomic.Int64
	adm       admissionState

	// Table memory accounting: tableEntries counts routed cookies,
	// tableSlots the slots allocated across the shard tables (never
	// shrinks), tableOverflows binds refused because a shard table hit
	// its growth ceiling. shedTotal paces the shed telemetry events;
	// admEvictions counts ShedEvictIdle victims.
	tableEntries   atomic.Int64
	tableSlots     atomic.Int64
	tableOverflows atomic.Uint64
	shedTotal      atomic.Uint64
	admEvictions   atomic.Uint64

	// Incremental GC state (all but the atomics guarded by routeMu):
	// (gcShard, gcSlot) is the sweep cursor, gcBudget the per-sweep slot
	// budget. gcMaxPause is the worst observed sweep wall time in
	// nanoseconds — the pause bound made visible.
	gcShard    int
	gcSlot     int
	gcBudget   int
	gcSweeps   atomic.Uint64
	gcScanned  atomic.Uint64
	gcMaxSweep atomic.Uint64
	gcMaxPause atomic.Int64
}

// counterStripeCount is the number of counter stripes (power of two).
const counterStripeCount = 8

// counterStripe is one stripe of the router counters. Each field is an
// atomic so the receive path never takes a lock to account for a
// datagram; the stripe is padded to two full cache lines so cores
// counting through neighbouring stripes do not false-share.
type counterStripe struct {
	received         atomic.Uint64
	unknownCookie    atomic.Uint64
	unknownIdent     atomic.Uint64
	rejected         atomic.Uint64
	accepted         atomic.Uint64
	malformed        atomic.Uint64
	cookiesLearned   atomic.Uint64
	cookieCollisions atomic.Uint64
	cookiesEvicted   atomic.Uint64
	txErrors         atomic.Uint64
	batchSends       atomic.Uint64
	batchDatagrams   atomic.Uint64
	shedFull         atomic.Uint64
	shedStorm        atomic.Uint64
	shedEarlyDrop    atomic.Uint64
	_                [1]uint64 // pad to 128 bytes
}

// endpointCounters are the router-level counters, striped so concurrent
// receive goroutines (and transmit flushers) increment different cache
// lines. Snapshot sums the stripes in one pass.
type endpointCounters struct {
	stripes [counterStripeCount]counterStripe
}

// stripe selects the counter stripe for a key (a cookie shard index, a
// source-address hash, or a connection's telemetry shard).
func (s *endpointCounters) stripe(key uint64) *counterStripe {
	return &s.stripes[key&(counterStripeCount-1)]
}

// stripeKey hashes a transport source address to a counter stripe; the
// length and last byte are enough to spread distinct peers.
func stripeKey(src string) uint64 {
	if len(src) == 0 {
		return 0
	}
	return uint64(src[len(src)-1]) ^ uint64(len(src))
}

// EndpointStats is a snapshot of the router counters.
type EndpointStats struct {
	Received         uint64
	UnknownCookie    uint64 // dropped: cookie unknown, identification absent (§2.2)
	UnknownIdent     uint64 // dropped: identification matched no connection
	Rejected         uint64 // accept hook declined
	Accepted         uint64 // connections created by the accept hook
	Malformed        uint64
	CookiesLearned   uint64
	CookieCollisions uint64 // learned or pre-agreed cookie already bound elsewhere
	CookiesEvicted   uint64 // learned cookies idle past CookieTTL, removed by GC

	// Vectorized transport I/O (DESIGN.md §11). TxErrors counts
	// per-datagram transport send failures on the flush paths (batched or
	// not); the tx queue keeps draining past a failed datagram. The
	// Batch* counters measure syscall amortization: BatchSends is how
	// many SendBatch calls the flush paths issued, BatchDatagrams how
	// many datagrams those calls carried, and DatagramsPerBatch their
	// ratio. BatchRecvs/RecvDatagrams are folded in from the transport
	// when its receive path is vectorized (RecvBatcher).
	TxErrors          uint64
	BatchSends        uint64
	BatchDatagrams    uint64
	DatagramsPerBatch float64
	BatchRecvs        uint64
	RecvDatagrams     uint64

	// Multi-queue receive sharding (DESIGN.md §13). RecvQueues is the
	// transport's receive-queue count (1 for single-queue transports);
	// QueueRecvDatagrams, present only for MultiQueueTransports, is the
	// per-queue datagram count — the kernel's REUSEPORT flow-hash balance
	// made visible.
	RecvQueues         int
	QueueRecvDatagrams []uint64

	// Overload protection (DESIGN.md §14). Conns/MaxConns is the live
	// occupancy against the hard capacity. The Shed* counters break
	// refused connections down by admission decision — a shed connect is
	// never silent, it is a typed error to the caller and a count here.
	Conns              int64
	MaxConns           int
	ShedFull           uint64 // refused: table at capacity (ErrAdmissionFull)
	ShedStorm          uint64 // refused: storm rate cap (ErrAdmissionStorm)
	ShedEarlyDrop      uint64 // refused: probabilistic early drop (ErrAdmissionEarlyDrop)
	ShedTotal          uint64
	AdmissionEvictions uint64 // idle connections closed by ShedEvictIdle
	StormsDetected     uint64
	StormActive        bool

	// Routing-table memory accounting. TableEntries is the number of
	// routed cookies, TableSlots the open-addressed slots allocated
	// across the shards, TableBytes their memory (TableSlots ×
	// tableSlotBytes), TableBytesPerEntry the amortized per-connection
	// routing cost. TableOverflows counts binds refused at a shard
	// table's growth ceiling.
	TableEntries       int64
	TableSlots         int64
	TableBytes         int64
	TableBytesPerEntry float64
	TableOverflows     uint64

	// Incremental CookieTTL GC. GCSlotsScanned/GCSweeps is the average
	// sweep size; GCMaxSweepSlots the largest sweep (bounded by
	// Config.GCSweepBudget), GCMaxPause the worst sweep wall time.
	GCSweeps        uint64
	GCSlotsScanned  uint64
	GCMaxSweepSlots uint64
	GCMaxPause      time.Duration
}

// NewEndpoint attaches a Protocol Accelerator endpoint to the transport.
func NewEndpoint(cfg Config) (*Endpoint, error) {
	if cfg.Transport == nil {
		return nil, errors.New("core: Config.Transport is required")
	}
	ep := &Endpoint{
		cfg:        cfg,
		conns:      make(map[*Conn]struct{}),
		byIdent:    make(map[string]*Conn),
		singleLock: cfg.SingleLockRouter,
		tel:        cfg.Telemetry,
	}
	ep.batch, _ = cfg.Transport.(BatchTransport)
	ep.batchTo, _ = cfg.Transport.(BatchToTransport)
	ep.mq, _ = cfg.Transport.(MultiQueueTransport)
	ep.coalescer, _ = cfg.Transport.(Coalescer)
	ep.maxConns = cfg.maxConns()
	ep.gcBudget = cfg.gcSweepBudget()
	ep.adm.init(cfg.Admission)
	// Each shard's table may grow to hold twice its uniform share of
	// MaxConns cookies — headroom for hash skew and the open-addressed
	// load factor — and no further; the hard capacity is connCount.
	perShard := nextPow2((ep.maxConns*2 + cookieShardCount - 1) / cookieShardCount)
	if perShard < minTableSlots {
		perShard = minTableSlots
	}
	for i := range ep.shards {
		ep.shards[i].tab.maxSlots = perShard
	}
	if err := ep.initTemplate(); err != nil {
		return nil, err
	}
	if cfg.CookieTTL > 0 {
		ep.gcOn = true
		ep.armCookieGC()
	}
	cfg.Transport.SetHandler(ep.onRecv)
	return ep, nil
}

// armCookieGC schedules the next GC sweep. The full table is covered
// twice per TTL (eviction bound: idle between TTL and 1.5×TTL), but one
// *sweep* examines at most Config.GCSweepBudget slots — when the table
// outgrows the budget, the pass is split over proportionally more,
// proportionally closer sweeps, so the receive path never stalls behind
// a full-table scan. Caller holds routeMu (or is the constructor).
func (ep *Endpoint) armCookieGC() {
	half := ep.cfg.CookieTTL / 2
	if half <= 0 {
		half = ep.cfg.CookieTTL
	}
	iv := half
	if slots := ep.tableSlots.Load(); slots > int64(ep.gcBudget) {
		sweeps := (slots + int64(ep.gcBudget) - 1) / int64(ep.gcBudget)
		iv = half / time.Duration(sweeps)
		if iv < time.Millisecond {
			iv = time.Millisecond
		}
	}
	ep.gcTimer = ep.cfg.clock().AfterFunc(iv, ep.cookieGC)
}

// cookieGC is one incremental TTL sweep: learned-cookie bindings that no
// datagram has routed through for more than CookieTTL are evicted,
// bounding router memory under peer churn. A live peer whose binding was
// evicted recovers on its next identified message, which re-learns the
// cookie — the paper's §2.2 rule that "unusual" messages carry the
// identification makes eviction safe.
//
// The sweep resumes at the (gcShard, gcSlot) cursor and examines at most
// gcBudget slots before re-arming, so its pause is bounded regardless of
// table size. The GC epoch advances once per *pass* (cursor at origin),
// which keeps the eviction age identical to the old full-table sweep:
// an entry stamped at epoch e was last used before pass e+1; age 3
// guarantees at least two full pass intervals (one TTL) of idleness.
func (ep *Endpoint) cookieGC() {
	if ep.closed.Load() {
		return
	}
	t0 := time.Now()
	ep.routeMu.Lock()
	defer ep.routeMu.Unlock()
	if ep.closed.Load() {
		return
	}
	if ep.gcShard == 0 && ep.gcSlot == 0 {
		ep.gcEpoch.Add(1)
	}
	cur := ep.gcEpoch.Load()
	scanned := 0
	if cur >= 3 {
		for scanned < ep.gcBudget {
			sh := &ep.shards[ep.gcShard]
			sh.mu.Lock()
			n := len(sh.tab.keys)
			for ep.gcSlot < n && scanned < ep.gcBudget {
				scanned++
				k := sh.tab.keys[ep.gcSlot]
				if k != 0 {
					m := atomic.LoadUint64(&sh.tab.vals[ep.gcSlot].meta)
					if metaLearned(m) && cur-metaEpoch(m) >= 3 {
						c := sh.tab.vals[ep.gcSlot].conn
						sh.tab.delete(k)
						ep.tableEntries.Add(-1)
						dropConnCookie(c, k)
						ep.stats.stripe(shardIndex(k)).cookiesEvicted.Add(1)
						// Backward-shift deletion may have pulled a
						// later entry into this slot: re-examine it
						// (counted against the budget) before moving on.
						continue
					}
				}
				ep.gcSlot++
			}
			done := ep.gcSlot >= n
			sh.mu.Unlock()
			if !done {
				break // budget exhausted mid-shard; resume here next sweep
			}
			ep.gcSlot = 0
			ep.gcShard++
			if ep.gcShard == cookieShardCount {
				ep.gcShard = 0
				break // pass complete
			}
		}
	}
	ep.gcSweeps.Add(1)
	ep.gcScanned.Add(uint64(scanned))
	if max := ep.gcMaxSweep.Load(); uint64(scanned) > max {
		ep.gcMaxSweep.Store(uint64(scanned))
	}
	if pause := int64(time.Since(t0)); pause > ep.gcMaxPause.Load() {
		ep.gcMaxPause.Store(pause)
	}
	ep.updateLoadGauges()
	ep.armCookieGC()
}

// dropConnCookie removes one evicted cookie from its connection's
// bookkeeping (swap-remove; order is irrelevant). Caller holds routeMu.
func dropConnCookie(c *Conn, cookie uint64) {
	for i, k := range c.inCookies {
		if k == cookie {
			last := len(c.inCookies) - 1
			c.inCookies[i] = c.inCookies[last]
			c.inCookies = c.inCookies[:last]
			return
		}
	}
}

// initTemplate builds a throwaway stack to learn the endpoint's uniform
// ConnID layout, needed to slice identifications off incoming datagrams
// before any connection is known.
func (ep *Endpoint) initTemplate() error {
	ls, err := ep.cfg.build()(PeerSpec{}, ep.cfg.Order)
	if err != nil {
		return err
	}
	st, err := stack.NewStack(ls...)
	if err != nil {
		return err
	}
	schema := header.New()
	// Init also programs filters; give it builders that are thrown away.
	ic := &stack.InitContext{
		Schema:     schema,
		SendFilter: filter.NewBuilder(),
		RecvFilter: filter.NewBuilder(),
	}
	if err := st.Init(ic); err != nil {
		return err
	}
	if err := schema.Compile(); err != nil {
		return err
	}
	for _, l := range ls {
		if id, ok := l.(Identifier); ok {
			ep.template = id
		}
	}
	if ep.template == nil {
		return errors.New("core: stack has no identification layer")
	}
	ep.identSize = schema.Size(header.ConnID)
	return nil
}

// Snapshot returns a consistent snapshot of the router counters: every
// stripe's atomics are summed in one pass, so each reported field is the
// complete count across stripes as of the pass — the old per-field
// Stats() accessors read each stripe independently and could return
// totals torn across them (a receive accounted in one field but not yet
// in a related one read from a different stripe a moment earlier).
func (ep *Endpoint) Snapshot() EndpointStats {
	var s EndpointStats
	for i := range ep.stats.stripes {
		st := &ep.stats.stripes[i]
		s.Received += st.received.Load()
		s.UnknownCookie += st.unknownCookie.Load()
		s.UnknownIdent += st.unknownIdent.Load()
		s.Rejected += st.rejected.Load()
		s.Accepted += st.accepted.Load()
		s.Malformed += st.malformed.Load()
		s.CookiesLearned += st.cookiesLearned.Load()
		s.CookieCollisions += st.cookieCollisions.Load()
		s.CookiesEvicted += st.cookiesEvicted.Load()
		s.TxErrors += st.txErrors.Load()
		s.BatchSends += st.batchSends.Load()
		s.BatchDatagrams += st.batchDatagrams.Load()
		s.ShedFull += st.shedFull.Load()
		s.ShedStorm += st.shedStorm.Load()
		s.ShedEarlyDrop += st.shedEarlyDrop.Load()
	}
	s.ShedTotal = s.ShedFull + s.ShedStorm + s.ShedEarlyDrop
	s.Conns = ep.connCount.Load()
	s.MaxConns = ep.maxConns
	s.AdmissionEvictions = ep.admEvictions.Load()
	s.StormsDetected = ep.adm.stormsDetected.Load()
	s.StormActive = ep.adm.stormOn.Load()
	s.TableEntries = ep.tableEntries.Load()
	s.TableSlots = ep.tableSlots.Load()
	s.TableBytes = s.TableSlots * tableSlotBytes
	if s.TableEntries > 0 {
		s.TableBytesPerEntry = float64(s.TableBytes) / float64(s.TableEntries)
	}
	s.TableOverflows = ep.tableOverflows.Load()
	s.GCSweeps = ep.gcSweeps.Load()
	s.GCSlotsScanned = ep.gcScanned.Load()
	s.GCMaxSweepSlots = ep.gcMaxSweep.Load()
	s.GCMaxPause = time.Duration(ep.gcMaxPause.Load())
	if s.BatchSends > 0 {
		s.DatagramsPerBatch = float64(s.BatchDatagrams) / float64(s.BatchSends)
	}
	if rb, ok := ep.cfg.Transport.(RecvBatcher); ok {
		s.BatchRecvs, s.RecvDatagrams = rb.RecvBatchStats()
	}
	s.RecvQueues = 1
	if mq := ep.mq; mq != nil {
		s.RecvQueues = mq.NumQueues()
		s.QueueRecvDatagrams = make([]uint64, s.RecvQueues)
		for i := range s.QueueRecvDatagrams {
			_, s.QueueRecvDatagrams[i] = mq.QueueRecvStats(i)
		}
	}
	return s
}

// Stats returns a snapshot of the router counters.
//
// Deprecated: use Snapshot, which sums the counter stripes in a single
// pass. Stats is kept as an alias for existing callers.
func (ep *Endpoint) Stats() EndpointStats { return ep.Snapshot() }

// Telemetry returns the endpoint's telemetry recorder (nil when
// Config.Telemetry was not set).
func (ep *Endpoint) Telemetry() *telemetry.Recorder { return ep.tel }

// IdentSize returns the endpoint's connection identification size (the
// paper's ~76 bytes).
func (ep *Endpoint) IdentSize() int { return ep.identSize }

// lookupCookie routes a cookie to its connection, or nil. With GC on,
// the hit refreshes the slot's epoch — one atomic store under the shard
// read-lock (slots move only under the write lock, so the pointer is
// stable while we hold it), still no exclusive lock and no clock read on
// the receive path.
func (ep *Endpoint) lookupCookie(cookie uint64) *Conn {
	if ep.singleLock {
		ep.slMu.Lock()
		defer ep.slMu.Unlock()
	}
	sh := &ep.shards[shardIndex(cookie)]
	sh.mu.RLock()
	v := sh.tab.lookup(cookie)
	if v == nil {
		sh.mu.RUnlock()
		return nil
	}
	c := v.conn
	if ep.gcOn {
		m := atomic.LoadUint64(&v.meta)
		atomic.StoreUint64(&v.meta, metaStamp(m, ep.gcEpoch.Load()))
	}
	sh.mu.RUnlock()
	return c
}

// bindCookie records cookie→c, refusing to steal a binding from a live
// connection. learned marks a binding taken from an identified datagram,
// subject to TTL eviction; pre-agreed bindings are not. Caller holds
// routeMu. Returns nil, ErrCookieCollision (already bound elsewhere, or
// the unroutable zero cookie), or ErrAdmissionFull (shard table at its
// growth ceiling).
func (ep *Endpoint) bindCookie(cookie uint64, c *Conn, learned bool) error {
	idx := shardIndex(cookie)
	if cookie == 0 {
		// Cookie 0 is the table's empty-slot sentinel; it can never
		// route, so binding it would silently blackhole the peer.
		ep.stats.stripe(idx).cookieCollisions.Add(1)
		return ErrCookieCollision
	}
	sh := &ep.shards[idx]
	sh.mu.Lock()
	if v := sh.tab.lookup(cookie); v != nil {
		same := v.conn == c
		sh.mu.Unlock()
		if same {
			return nil
		}
		ep.stats.stripe(idx).cookieCollisions.Add(1)
		return ErrCookieCollision
	}
	before := len(sh.tab.keys)
	ok := sh.tab.insert(cookie, c, packMeta(ep.gcEpoch.Load(), learned))
	grown := len(sh.tab.keys) - before
	sh.mu.Unlock()
	if grown != 0 {
		ep.tableSlots.Add(int64(grown))
	}
	if !ok {
		ep.tableOverflows.Add(1)
		return ErrAdmissionFull
	}
	ep.tableEntries.Add(1)
	c.inCookies = append(c.inCookies, cookie)
	return nil
}

// unbindCookies removes all of c's cookie routes. Caller holds routeMu.
func (ep *Endpoint) unbindCookies(c *Conn) {
	for _, cookie := range c.inCookies {
		sh := &ep.shards[shardIndex(cookie)]
		sh.mu.Lock()
		if v := sh.tab.lookup(cookie); v != nil && v.conn == c {
			sh.tab.delete(cookie)
			ep.tableEntries.Add(-1)
		}
		sh.mu.Unlock()
	}
	c.inCookies = c.inCookies[:0]
}

// Dial creates a connection to the peer described by spec and registers
// its routes. The first outgoing message will carry the connection
// identification (unless the spec pre-agreed cookies). At
// Config.MaxConns live connections Dial refuses with ErrAdmissionFull —
// before allocating anything for the new connection — unless the
// ShedEvictIdle policy can free a slot.
func (ep *Endpoint) Dial(spec PeerSpec) (*Conn, error) {
	if ep.closed.Load() || ep.draining.Load() {
		return nil, ErrConnClosed
	}
	if ep.connCount.Load() >= int64(ep.maxConns) {
		if ep.adm.policy != ShedEvictIdle || !ep.evictIdlest() {
			return nil, ep.shed(spec.Addr, ErrAdmissionFull)
		}
	}
	c, err := newConn(ep, spec)
	if err != nil {
		return nil, err
	}
	ep.routeMu.Lock()
	if ep.closed.Load() {
		ep.routeMu.Unlock()
		c.Close()
		return nil, ErrConnClosed
	}
	// Authoritative capacity check under routeMu: concurrent dials may
	// all have passed the atomic pre-check, but only MaxConns of them
	// get a slot.
	if ep.connCount.Load() >= int64(ep.maxConns) {
		ep.routeMu.Unlock()
		c.Close()
		return nil, ep.shed(spec.Addr, ErrAdmissionFull)
	}
	if spec.ExpectInCookie != 0 {
		// Register the pre-agreed cookie first: if it is already bound
		// to a live connection, rebinding would hijack that
		// connection's traffic — refuse instead (last-writer-wins was
		// a silent correctness hole).
		if err := ep.bindCookie(spec.ExpectInCookie&CookieMask, c, false); err != nil {
			ep.routeMu.Unlock()
			c.Close()
			return nil, err
		}
	}
	ep.conns[c] = struct{}{}
	ep.connCount.Add(1)
	// Route by the identification the peer will send, in either byte
	// order — the preamble's order bit is not known in advance.
	ep.identMu.Lock()
	for _, o := range []bits.ByteOrder{bits.BigEndian, bits.LittleEndian} {
		key := string(c.ident.ExpectedIncoming(ep.identSize, o))
		ep.byIdent[key] = c
	}
	ep.identMu.Unlock()
	ep.routeMu.Unlock()
	ep.updateLoadGauges()
	ep.tel.Event(telemetry.EventState, c.outCookie, "active")
	return c, nil
}

// removeConn unregisters a closed connection.
func (ep *Endpoint) removeConn(c *Conn) {
	ep.routeMu.Lock()
	defer ep.routeMu.Unlock()
	if _, ok := ep.conns[c]; ok {
		delete(ep.conns, c)
		ep.connCount.Add(-1)
	}
	ep.identMu.Lock()
	for k, v := range ep.byIdent {
		if v == c {
			delete(ep.byIdent, k)
		}
	}
	ep.identMu.Unlock()
	ep.unbindCookies(c)
	ep.updateLoadGauges()
}

// updateLoadGauges refreshes the occupancy gauges (three atomic stores;
// nil-safe when telemetry is off). Called where connection or table
// population changes — never on the pure receive path.
func (ep *Endpoint) updateLoadGauges() {
	if ep.tel == nil {
		return
	}
	n := ep.connCount.Load()
	ep.tel.SetGauge(telemetry.GaugeConns, n)
	ep.tel.SetGauge(telemetry.GaugeTableEntries, ep.tableEntries.Load())
	ep.tel.SetGauge(telemetry.GaugeOccupancyPct, n*100/int64(ep.maxConns))
}

// BindBenchCookies bulk-binds n synthetic cookie routes [base, base+n) to
// c, all marked learned (TTL-evictable) or not. It exists for load tests
// and the churn benchmarks, which need routing tables of realistic size
// (100k–1M entries) without holding that many live connections; traffic
// routed through a synthetic cookie is delivered to c like any other.
// It returns how many cookies were actually bound (zero or colliding
// cookies in the range are skipped, and a shard table at its ceiling
// stops that shard's binds).
func (ep *Endpoint) BindBenchCookies(c *Conn, base uint64, n int, learned bool) int {
	ep.routeMu.Lock()
	defer ep.routeMu.Unlock()
	bound := 0
	for i := 0; i < n; i++ {
		if ep.bindCookie((base+uint64(i))&CookieMask, c, learned) == nil {
			bound++
		}
	}
	ep.updateLoadGauges()
	return bound
}

// Close closes every connection and the transport.
func (ep *Endpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	ep.routeMu.Lock()
	if ep.gcTimer != nil {
		// The sweep re-arms under routeMu after re-checking closed, so
		// stopping here is race-free.
		ep.gcTimer.Stop()
		ep.gcTimer = nil
	}
	conns := make([]*Conn, 0, len(ep.conns))
	for c := range ep.conns {
		conns = append(conns, c)
	}
	ep.routeMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return ep.cfg.Transport.Close()
}

// onRecv is the router: the paper's from_network() up to connection
// lookup (Fig. 3). It runs on the transport's receive goroutine(s); the
// only locks it takes are one shard (or ident-table) read-lock, so
// receives for different connections proceed in parallel.
func (ep *Endpoint) onRecv(src string, datagram []byte) {
	if ep.closed.Load() {
		return
	}
	st := ep.stats.stripe(stripeKey(src))
	if ep.singleLock {
		// Faithful pre-sharding behaviour: even the receive counter was
		// a critical section of the one endpoint mutex, so every
		// datagram paid two exclusive acquisitions (count, then route).
		ep.slMu.Lock()
		st.received.Add(1)
		ep.slMu.Unlock()
	} else {
		st.received.Add(1)
	}

	pre, err := DecodePreamble(datagram)
	if err != nil {
		st.malformed.Add(1)
		return
	}
	m := message.FromWire(datagram)
	m.Order = pre.Order
	if _, err := m.Pop(PreambleSize); err != nil {
		st.malformed.Add(1)
		m.Free()
		return
	}

	var cid []byte
	var c *Conn
	if pre.ConnIDPresent {
		if cid, err = m.Pop(ep.identSize); err != nil {
			st.malformed.Add(1)
			m.Free()
			return
		}
		c = ep.lookupIdent(cid, pre, src)
		if c == nil {
			m.Free()
			return
		}
		ep.learnCookie(c, pre.Cookie)
	} else {
		c = ep.lookupCookie(pre.Cookie)
		if c == nil {
			// "When a message is received with an unknown cookie,
			// and the Connection Identification Present Bit
			// cleared, it is dropped" (§2.2).
			st.unknownCookie.Add(1)
			m.Free()
			return
		}
	}
	m.MarkPayload()
	c.deliverIncoming(m, cid, pre.Order, src)
}

// lookupIdent routes an identified message, consulting the accept hook for
// unknown identifications.
func (ep *Endpoint) lookupIdent(cid []byte, pre Preamble, src string) *Conn {
	if ep.singleLock {
		ep.slMu.Lock()
		c := ep.byIdent[string(cid)]
		ep.slMu.Unlock()
		if c != nil {
			return c
		}
	} else {
		ep.identMu.RLock()
		c := ep.byIdent[string(cid)]
		ep.identMu.RUnlock()
		if c != nil {
			return c
		}
	}
	st := ep.stats.stripe(stripeKey(src))
	accept := ep.cfg.Accept
	if accept == nil {
		st.unknownIdent.Add(1)
		return nil
	}
	// Admission control runs before the identification is parsed, the
	// accept hook consulted, or the connection allocated: shedding a
	// connect storm costs a few atomic reads per refused datagram and
	// nothing else. The refusal is counted (Shed* stats, shed events);
	// the datagram is dropped like any unroutable one.
	if ep.admitNew(src) != nil {
		return nil
	}
	info := ep.template.ParseIncoming(cid, pre.Order)
	spec, ok := accept(info, src)
	if !ok {
		st.rejected.Add(1)
		return nil
	}
	nc, err := ep.Dial(spec)
	if err != nil {
		st.rejected.Add(1)
		return nil
	}
	st.accepted.Add(1)
	if onConn := ep.cfg.OnConn; onConn != nil {
		onConn(nc)
	}
	// The accepted spec must route the identification that created it.
	ep.identMu.RLock()
	c := ep.byIdent[string(cid)]
	ep.identMu.RUnlock()
	if c == nil {
		// Accept hook returned a mismatched spec; route explicitly so
		// the message is not lost, but flag it.
		ep.identMu.Lock()
		ep.byIdent[string(cid)] = nc
		ep.identMu.Unlock()
		c = nc
	}
	return c
}

// learnCookie records the peer's (incoming) cookie for cookie-only
// routing. If the cookie is already bound to a different live connection
// the existing binding wins: rebinding on the say-so of one identified
// datagram would let a latecomer hijack an established route, so the
// event is only counted (EndpointStats.CookieCollisions).
func (ep *Endpoint) learnCookie(c *Conn, cookie uint64) {
	if cookie == 0 {
		// The empty-slot sentinel can't be routed; the peer's traffic
		// stays on the identified path.
		return
	}
	// Fast path: the common re-identification (every "unusual" message
	// carries the identification) re-learns the same cookie.
	if ep.lookupCookie(cookie) == c {
		return
	}
	ep.routeMu.Lock()
	defer ep.routeMu.Unlock()
	// Re-check under the write lock; another receive may have won.
	sh := &ep.shards[shardIndex(cookie)]
	sh.mu.RLock()
	var prev *Conn
	if v := sh.tab.lookup(cookie); v != nil {
		prev = v.conn
	}
	sh.mu.RUnlock()
	if prev == c {
		return
	}
	if prev != nil {
		ep.stats.stripe(shardIndex(cookie)).cookieCollisions.Add(1)
		return
	}
	// Forget this connection's previous cookie, if any (the peer may
	// have restarted with a fresh cookie).
	ep.unbindCookies(c)
	if ep.bindCookie(cookie, c, true) == nil {
		ep.stats.stripe(shardIndex(cookie)).cookiesLearned.Add(1)
	}
	ep.updateLoadGauges()
}

package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
	"paccel/internal/telemetry"
	"paccel/internal/vclock"
)

// ErrCookieCollision is returned by Dial when PeerSpec.ExpectInCookie is
// already routed to a live connection. Cookies are 62-bit random values,
// so a collision between honestly drawn cookies is vanishingly unlikely —
// but pre-agreed cookies are chosen by the application, and silently
// rebinding one would hijack the existing connection's traffic.
var ErrCookieCollision = errors.New("core: cookie already bound to another connection")

// cookieShardCount is the number of router shards for the cookie table.
// 64 shards keep receive-path lookups for different connections on
// different locks (and mostly different cache lines) on any realistic
// core count.
const cookieShardCount = 64

// cookieShard is one slice of the cookie→conn table. Shards are padded to
// a cache line so two cores routing through neighbouring shards do not
// false-share.
type cookieShard struct {
	mu sync.RWMutex
	m  map[uint64]*cookieEntry
	_  [24]byte // pad to 64 bytes
}

// cookieEntry is one routed cookie. epoch records the GC epoch at last
// use; the lookup path refreshes it with one atomic store (no lock, no
// clock read), and the TTL sweep evicts learned entries whose epoch has
// fallen behind. Pre-agreed cookies (Dial with ExpectInCookie) are
// learned=false and never evicted.
type cookieEntry struct {
	c       *Conn
	learned bool
	epoch   atomic.Uint64
}

// shardIndex spreads cookies over the shards. Cookies are uniform random
// 62-bit values already, but pre-agreed cookies may be small integers, so
// mix with the 64-bit golden ratio before taking the top bits.
func shardIndex(cookie uint64) uint64 {
	return (cookie * 0x9E3779B97F4A7C15) >> 58
}

// Endpoint is one host attachment: it owns the transport, the router that
// demultiplexes incoming datagrams to Protocol Accelerators (by cookie in
// the normal case, by connection identification otherwise — §2.2), and
// the connections themselves.
//
// Concurrency model: the receive path is lock-light so that concurrent
// receives for different connections never serialize on the endpoint.
// Cookie lookups take one shard read-lock, identification lookups one
// table read-lock, and the router counters are atomics. All routing-table
// *writes* (Dial, connection teardown, cookie learning) additionally
// serialize on routeMu, which keeps the per-connection cookie
// bookkeeping consistent without ever blocking readers of other shards.
type Endpoint struct {
	cfg Config

	// batch is the transport's vectorized send interface, asserted once
	// at construction; nil when the transport only sends one datagram at
	// a time and the flush paths must loop.
	batch BatchTransport

	// mq is the transport's multi-queue receive interface (SO_REUSEPORT
	// sharding), asserted once at construction; nil for single-queue
	// transports.
	mq MultiQueueTransport

	// coalescer is the transport's send-offload interface (UDP_SEGMENT
	// super-datagrams), asserted once at construction. The flush path
	// shapes the tx queue into equal-size runs only while it reports
	// Coalescible.
	coalescer Coalescer

	closed atomic.Bool
	// draining refuses new sends while Shutdown runs down the deferred
	// work (see supervise.go).
	draining atomic.Bool

	// routeMu serializes routing-table writers; it is never taken on
	// the pure lookup path.
	routeMu sync.Mutex
	conns   map[*Conn]struct{}

	// Cookie-TTL garbage collection (Config.CookieTTL): gcEpoch advances
	// on every sweep; lookups stamp it into the entry they route through.
	// gcTimer is guarded by routeMu.
	gcOn    bool
	gcEpoch atomic.Uint64
	gcTimer vclock.Timer

	identMu sync.RWMutex
	byIdent map[string]*Conn

	shards [cookieShardCount]cookieShard

	// singleLock emulates the pre-sharding router (one exclusive lock
	// around every lookup) for benchmarks; see Config.SingleLockRouter.
	singleLock bool
	slMu       sync.Mutex

	// template parses identifications of unknown connections; identSize
	// is the uniform ConnID header size of this endpoint's stack shape.
	template  Identifier
	identSize int

	// connSeq numbers connections in dial order; it assigns each
	// connection's telemetry shard and seeds the recovery engine's
	// jitter (recovery.go).
	connSeq atomic.Uint64

	// tel records router-level telemetry events; nil disables.
	tel *telemetry.Recorder

	stats endpointCounters
}

// counterStripeCount is the number of counter stripes (power of two).
const counterStripeCount = 8

// counterStripe is one stripe of the router counters. Each field is an
// atomic so the receive path never takes a lock to account for a
// datagram; the stripe is padded to two full cache lines so cores
// counting through neighbouring stripes do not false-share.
type counterStripe struct {
	received         atomic.Uint64
	unknownCookie    atomic.Uint64
	unknownIdent     atomic.Uint64
	rejected         atomic.Uint64
	accepted         atomic.Uint64
	malformed        atomic.Uint64
	cookiesLearned   atomic.Uint64
	cookieCollisions atomic.Uint64
	cookiesEvicted   atomic.Uint64
	txErrors         atomic.Uint64
	batchSends       atomic.Uint64
	batchDatagrams   atomic.Uint64
	_                [4]uint64 // pad to 128 bytes
}

// endpointCounters are the router-level counters, striped so concurrent
// receive goroutines (and transmit flushers) increment different cache
// lines. Snapshot sums the stripes in one pass.
type endpointCounters struct {
	stripes [counterStripeCount]counterStripe
}

// stripe selects the counter stripe for a key (a cookie shard index, a
// source-address hash, or a connection's telemetry shard).
func (s *endpointCounters) stripe(key uint64) *counterStripe {
	return &s.stripes[key&(counterStripeCount-1)]
}

// stripeKey hashes a transport source address to a counter stripe; the
// length and last byte are enough to spread distinct peers.
func stripeKey(src string) uint64 {
	if len(src) == 0 {
		return 0
	}
	return uint64(src[len(src)-1]) ^ uint64(len(src))
}

// EndpointStats is a snapshot of the router counters.
type EndpointStats struct {
	Received         uint64
	UnknownCookie    uint64 // dropped: cookie unknown, identification absent (§2.2)
	UnknownIdent     uint64 // dropped: identification matched no connection
	Rejected         uint64 // accept hook declined
	Accepted         uint64 // connections created by the accept hook
	Malformed        uint64
	CookiesLearned   uint64
	CookieCollisions uint64 // learned or pre-agreed cookie already bound elsewhere
	CookiesEvicted   uint64 // learned cookies idle past CookieTTL, removed by GC

	// Vectorized transport I/O (DESIGN.md §11). TxErrors counts
	// per-datagram transport send failures on the flush paths (batched or
	// not); the tx queue keeps draining past a failed datagram. The
	// Batch* counters measure syscall amortization: BatchSends is how
	// many SendBatch calls the flush paths issued, BatchDatagrams how
	// many datagrams those calls carried, and DatagramsPerBatch their
	// ratio. BatchRecvs/RecvDatagrams are folded in from the transport
	// when its receive path is vectorized (RecvBatcher).
	TxErrors          uint64
	BatchSends        uint64
	BatchDatagrams    uint64
	DatagramsPerBatch float64
	BatchRecvs        uint64
	RecvDatagrams     uint64

	// Multi-queue receive sharding (DESIGN.md §13). RecvQueues is the
	// transport's receive-queue count (1 for single-queue transports);
	// QueueRecvDatagrams, present only for MultiQueueTransports, is the
	// per-queue datagram count — the kernel's REUSEPORT flow-hash balance
	// made visible.
	RecvQueues         int
	QueueRecvDatagrams []uint64
}

// NewEndpoint attaches a Protocol Accelerator endpoint to the transport.
func NewEndpoint(cfg Config) (*Endpoint, error) {
	if cfg.Transport == nil {
		return nil, errors.New("core: Config.Transport is required")
	}
	ep := &Endpoint{
		cfg:        cfg,
		conns:      make(map[*Conn]struct{}),
		byIdent:    make(map[string]*Conn),
		singleLock: cfg.SingleLockRouter,
		tel:        cfg.Telemetry,
	}
	ep.batch, _ = cfg.Transport.(BatchTransport)
	ep.mq, _ = cfg.Transport.(MultiQueueTransport)
	ep.coalescer, _ = cfg.Transport.(Coalescer)
	for i := range ep.shards {
		ep.shards[i].m = make(map[uint64]*cookieEntry)
	}
	if err := ep.initTemplate(); err != nil {
		return nil, err
	}
	if cfg.CookieTTL > 0 {
		ep.gcOn = true
		ep.armCookieGC()
	}
	cfg.Transport.SetHandler(ep.onRecv)
	return ep, nil
}

// armCookieGC schedules the next TTL sweep. Two sweeps per TTL keep the
// eviction bound tight (idle between TTL and 1.5×TTL) without scanning
// the table often.
func (ep *Endpoint) armCookieGC() {
	iv := ep.cfg.CookieTTL / 2
	if iv <= 0 {
		iv = ep.cfg.CookieTTL
	}
	ep.gcTimer = ep.cfg.clock().AfterFunc(iv, ep.cookieGC)
}

// cookieGC is the TTL sweep: learned-cookie bindings that no datagram
// has routed through for more than CookieTTL are evicted, bounding
// router memory under peer churn. A live peer whose binding was evicted
// recovers on its next identified message, which re-learns the cookie —
// the paper's §2.2 rule that "unusual" messages carry the identification
// makes eviction safe.
func (ep *Endpoint) cookieGC() {
	if ep.closed.Load() {
		return
	}
	cur := ep.gcEpoch.Add(1)
	ep.routeMu.Lock()
	defer ep.routeMu.Unlock()
	if ep.closed.Load() {
		return
	}
	// An entry stamped at epoch e was last used before sweep e+1; age 3
	// guarantees at least two full intervals (one TTL) of idleness.
	if cur >= 3 {
		for i := range ep.shards {
			sh := &ep.shards[i]
			sh.mu.Lock()
			for cookie, e := range sh.m {
				if e.learned && cur-e.epoch.Load() >= 3 {
					delete(sh.m, cookie)
					dropConnCookie(e.c, cookie)
					ep.stats.stripe(shardIndex(cookie)).cookiesEvicted.Add(1)
				}
			}
			sh.mu.Unlock()
		}
	}
	ep.armCookieGC()
}

// dropConnCookie removes one evicted cookie from its connection's
// bookkeeping. Caller holds routeMu.
func dropConnCookie(c *Conn, cookie uint64) {
	for i, k := range c.inCookies {
		if k == cookie {
			c.inCookies = append(c.inCookies[:i], c.inCookies[i+1:]...)
			return
		}
	}
}

// initTemplate builds a throwaway stack to learn the endpoint's uniform
// ConnID layout, needed to slice identifications off incoming datagrams
// before any connection is known.
func (ep *Endpoint) initTemplate() error {
	ls, err := ep.cfg.build()(PeerSpec{}, ep.cfg.Order)
	if err != nil {
		return err
	}
	st, err := stack.NewStack(ls...)
	if err != nil {
		return err
	}
	schema := header.New()
	// Init also programs filters; give it builders that are thrown away.
	ic := &stack.InitContext{
		Schema:     schema,
		SendFilter: filter.NewBuilder(),
		RecvFilter: filter.NewBuilder(),
	}
	if err := st.Init(ic); err != nil {
		return err
	}
	if err := schema.Compile(); err != nil {
		return err
	}
	for _, l := range ls {
		if id, ok := l.(Identifier); ok {
			ep.template = id
		}
	}
	if ep.template == nil {
		return errors.New("core: stack has no identification layer")
	}
	ep.identSize = schema.Size(header.ConnID)
	return nil
}

// Snapshot returns a consistent snapshot of the router counters: every
// stripe's atomics are summed in one pass, so each reported field is the
// complete count across stripes as of the pass — the old per-field
// Stats() accessors read each stripe independently and could return
// totals torn across them (a receive accounted in one field but not yet
// in a related one read from a different stripe a moment earlier).
func (ep *Endpoint) Snapshot() EndpointStats {
	var s EndpointStats
	for i := range ep.stats.stripes {
		st := &ep.stats.stripes[i]
		s.Received += st.received.Load()
		s.UnknownCookie += st.unknownCookie.Load()
		s.UnknownIdent += st.unknownIdent.Load()
		s.Rejected += st.rejected.Load()
		s.Accepted += st.accepted.Load()
		s.Malformed += st.malformed.Load()
		s.CookiesLearned += st.cookiesLearned.Load()
		s.CookieCollisions += st.cookieCollisions.Load()
		s.CookiesEvicted += st.cookiesEvicted.Load()
		s.TxErrors += st.txErrors.Load()
		s.BatchSends += st.batchSends.Load()
		s.BatchDatagrams += st.batchDatagrams.Load()
	}
	if s.BatchSends > 0 {
		s.DatagramsPerBatch = float64(s.BatchDatagrams) / float64(s.BatchSends)
	}
	if rb, ok := ep.cfg.Transport.(RecvBatcher); ok {
		s.BatchRecvs, s.RecvDatagrams = rb.RecvBatchStats()
	}
	s.RecvQueues = 1
	if mq := ep.mq; mq != nil {
		s.RecvQueues = mq.NumQueues()
		s.QueueRecvDatagrams = make([]uint64, s.RecvQueues)
		for i := range s.QueueRecvDatagrams {
			_, s.QueueRecvDatagrams[i] = mq.QueueRecvStats(i)
		}
	}
	return s
}

// Stats returns a snapshot of the router counters.
//
// Deprecated: use Snapshot, which sums the counter stripes in a single
// pass. Stats is kept as an alias for existing callers.
func (ep *Endpoint) Stats() EndpointStats { return ep.Snapshot() }

// Telemetry returns the endpoint's telemetry recorder (nil when
// Config.Telemetry was not set).
func (ep *Endpoint) Telemetry() *telemetry.Recorder { return ep.tel }

// IdentSize returns the endpoint's connection identification size (the
// paper's ~76 bytes).
func (ep *Endpoint) IdentSize() int { return ep.identSize }

// lookupCookie routes a cookie to its connection, or nil. With GC on,
// the hit refreshes the entry's epoch — one relaxed atomic store, still
// no lock and no clock read on the receive path.
func (ep *Endpoint) lookupCookie(cookie uint64) *Conn {
	if ep.singleLock {
		ep.slMu.Lock()
		defer ep.slMu.Unlock()
	}
	sh := &ep.shards[shardIndex(cookie)]
	sh.mu.RLock()
	e := sh.m[cookie]
	sh.mu.RUnlock()
	if e == nil {
		return nil
	}
	if ep.gcOn {
		e.epoch.Store(ep.gcEpoch.Load())
	}
	return e.c
}

// bindCookie records cookie→c, refusing to steal a binding from a live
// connection. learned marks a binding taken from an identified datagram,
// subject to TTL eviction; pre-agreed bindings are not. Caller holds
// routeMu. Reports whether the binding was made.
func (ep *Endpoint) bindCookie(cookie uint64, c *Conn, learned bool) bool {
	sh := &ep.shards[shardIndex(cookie)]
	sh.mu.Lock()
	if prev, ok := sh.m[cookie]; ok && prev.c != c {
		sh.mu.Unlock()
		ep.stats.stripe(shardIndex(cookie)).cookieCollisions.Add(1)
		return false
	}
	e := &cookieEntry{c: c, learned: learned}
	e.epoch.Store(ep.gcEpoch.Load())
	sh.m[cookie] = e
	sh.mu.Unlock()
	c.inCookies = append(c.inCookies, cookie)
	return true
}

// unbindCookies removes all of c's cookie routes. Caller holds routeMu.
func (ep *Endpoint) unbindCookies(c *Conn) {
	for _, cookie := range c.inCookies {
		sh := &ep.shards[shardIndex(cookie)]
		sh.mu.Lock()
		if e, ok := sh.m[cookie]; ok && e.c == c {
			delete(sh.m, cookie)
		}
		sh.mu.Unlock()
	}
	c.inCookies = c.inCookies[:0]
}

// Dial creates a connection to the peer described by spec and registers
// its routes. The first outgoing message will carry the connection
// identification (unless the spec pre-agreed cookies).
func (ep *Endpoint) Dial(spec PeerSpec) (*Conn, error) {
	if ep.closed.Load() || ep.draining.Load() {
		return nil, ErrConnClosed
	}
	c, err := newConn(ep, spec)
	if err != nil {
		return nil, err
	}
	ep.routeMu.Lock()
	if ep.closed.Load() {
		ep.routeMu.Unlock()
		c.Close()
		return nil, ErrConnClosed
	}
	if spec.ExpectInCookie != 0 {
		// Register the pre-agreed cookie first: if it is already bound
		// to a live connection, rebinding would hijack that
		// connection's traffic — refuse instead (last-writer-wins was
		// a silent correctness hole).
		if !ep.bindCookie(spec.ExpectInCookie&CookieMask, c, false) {
			ep.routeMu.Unlock()
			c.Close()
			return nil, ErrCookieCollision
		}
	}
	ep.conns[c] = struct{}{}
	// Route by the identification the peer will send, in either byte
	// order — the preamble's order bit is not known in advance.
	ep.identMu.Lock()
	for _, o := range []bits.ByteOrder{bits.BigEndian, bits.LittleEndian} {
		key := string(c.ident.ExpectedIncoming(ep.identSize, o))
		ep.byIdent[key] = c
	}
	ep.identMu.Unlock()
	ep.routeMu.Unlock()
	ep.tel.Event(telemetry.EventState, c.outCookie, "active")
	return c, nil
}

// removeConn unregisters a closed connection.
func (ep *Endpoint) removeConn(c *Conn) {
	ep.routeMu.Lock()
	defer ep.routeMu.Unlock()
	delete(ep.conns, c)
	ep.identMu.Lock()
	for k, v := range ep.byIdent {
		if v == c {
			delete(ep.byIdent, k)
		}
	}
	ep.identMu.Unlock()
	ep.unbindCookies(c)
}

// Close closes every connection and the transport.
func (ep *Endpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	ep.routeMu.Lock()
	if ep.gcTimer != nil {
		// The sweep re-arms under routeMu after re-checking closed, so
		// stopping here is race-free.
		ep.gcTimer.Stop()
		ep.gcTimer = nil
	}
	conns := make([]*Conn, 0, len(ep.conns))
	for c := range ep.conns {
		conns = append(conns, c)
	}
	ep.routeMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return ep.cfg.Transport.Close()
}

// onRecv is the router: the paper's from_network() up to connection
// lookup (Fig. 3). It runs on the transport's receive goroutine(s); the
// only locks it takes are one shard (or ident-table) read-lock, so
// receives for different connections proceed in parallel.
func (ep *Endpoint) onRecv(src string, datagram []byte) {
	if ep.closed.Load() {
		return
	}
	st := ep.stats.stripe(stripeKey(src))
	if ep.singleLock {
		// Faithful pre-sharding behaviour: even the receive counter was
		// a critical section of the one endpoint mutex, so every
		// datagram paid two exclusive acquisitions (count, then route).
		ep.slMu.Lock()
		st.received.Add(1)
		ep.slMu.Unlock()
	} else {
		st.received.Add(1)
	}

	pre, err := DecodePreamble(datagram)
	if err != nil {
		st.malformed.Add(1)
		return
	}
	m := message.FromWire(datagram)
	m.Order = pre.Order
	if _, err := m.Pop(PreambleSize); err != nil {
		st.malformed.Add(1)
		m.Free()
		return
	}

	var cid []byte
	var c *Conn
	if pre.ConnIDPresent {
		if cid, err = m.Pop(ep.identSize); err != nil {
			st.malformed.Add(1)
			m.Free()
			return
		}
		c = ep.lookupIdent(cid, pre, src)
		if c == nil {
			m.Free()
			return
		}
		ep.learnCookie(c, pre.Cookie)
	} else {
		c = ep.lookupCookie(pre.Cookie)
		if c == nil {
			// "When a message is received with an unknown cookie,
			// and the Connection Identification Present Bit
			// cleared, it is dropped" (§2.2).
			st.unknownCookie.Add(1)
			m.Free()
			return
		}
	}
	m.MarkPayload()
	c.deliverIncoming(m, cid, pre.Order, src)
}

// lookupIdent routes an identified message, consulting the accept hook for
// unknown identifications.
func (ep *Endpoint) lookupIdent(cid []byte, pre Preamble, src string) *Conn {
	if ep.singleLock {
		ep.slMu.Lock()
		c := ep.byIdent[string(cid)]
		ep.slMu.Unlock()
		if c != nil {
			return c
		}
	} else {
		ep.identMu.RLock()
		c := ep.byIdent[string(cid)]
		ep.identMu.RUnlock()
		if c != nil {
			return c
		}
	}
	st := ep.stats.stripe(stripeKey(src))
	accept := ep.cfg.Accept
	if accept == nil {
		st.unknownIdent.Add(1)
		return nil
	}
	info := ep.template.ParseIncoming(cid, pre.Order)
	spec, ok := accept(info, src)
	if !ok {
		st.rejected.Add(1)
		return nil
	}
	nc, err := ep.Dial(spec)
	if err != nil {
		st.rejected.Add(1)
		return nil
	}
	st.accepted.Add(1)
	if onConn := ep.cfg.OnConn; onConn != nil {
		onConn(nc)
	}
	// The accepted spec must route the identification that created it.
	ep.identMu.RLock()
	c := ep.byIdent[string(cid)]
	ep.identMu.RUnlock()
	if c == nil {
		// Accept hook returned a mismatched spec; route explicitly so
		// the message is not lost, but flag it.
		ep.identMu.Lock()
		ep.byIdent[string(cid)] = nc
		ep.identMu.Unlock()
		c = nc
	}
	return c
}

// learnCookie records the peer's (incoming) cookie for cookie-only
// routing. If the cookie is already bound to a different live connection
// the existing binding wins: rebinding on the say-so of one identified
// datagram would let a latecomer hijack an established route, so the
// event is only counted (EndpointStats.CookieCollisions).
func (ep *Endpoint) learnCookie(c *Conn, cookie uint64) {
	// Fast path: the common re-identification (every "unusual" message
	// carries the identification) re-learns the same cookie.
	if ep.lookupCookie(cookie) == c {
		return
	}
	ep.routeMu.Lock()
	defer ep.routeMu.Unlock()
	// Re-check under the write lock; another receive may have won.
	sh := &ep.shards[shardIndex(cookie)]
	sh.mu.RLock()
	prev := sh.m[cookie]
	sh.mu.RUnlock()
	if prev != nil && prev.c == c {
		return
	}
	if prev != nil {
		ep.stats.stripe(shardIndex(cookie)).cookieCollisions.Add(1)
		return
	}
	// Forget this connection's previous cookie, if any (the peer may
	// have restarted with a fresh cookie).
	ep.unbindCookies(c)
	if ep.bindCookie(cookie, c, true) {
		ep.stats.stripe(shardIndex(cookie)).cookiesLearned.Add(1)
	}
}

package core

import (
	"errors"
	"sync"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
)

// Endpoint is one host attachment: it owns the transport, the router that
// demultiplexes incoming datagrams to Protocol Accelerators (by cookie in
// the normal case, by connection identification otherwise — §2.2), and
// the connections themselves.
type Endpoint struct {
	cfg Config

	mu       sync.Mutex
	conns    map[*Conn]struct{}
	byCookie map[uint64]*Conn
	byIdent  map[string]*Conn
	closed   bool

	// template parses identifications of unknown connections; identSize
	// is the uniform ConnID header size of this endpoint's stack shape.
	template  Identifier
	identSize int

	stats EndpointStats
}

// EndpointStats counts router-level events.
type EndpointStats struct {
	Received       uint64
	UnknownCookie  uint64 // dropped: cookie unknown, identification absent (§2.2)
	UnknownIdent   uint64 // dropped: identification matched no connection
	Rejected       uint64 // accept hook declined
	Accepted       uint64 // connections created by the accept hook
	Malformed      uint64
	CookiesLearned uint64
}

// NewEndpoint attaches a Protocol Accelerator endpoint to the transport.
func NewEndpoint(cfg Config) (*Endpoint, error) {
	if cfg.Transport == nil {
		return nil, errors.New("core: Config.Transport is required")
	}
	ep := &Endpoint{
		cfg:      cfg,
		conns:    make(map[*Conn]struct{}),
		byCookie: make(map[uint64]*Conn),
		byIdent:  make(map[string]*Conn),
	}
	if err := ep.initTemplate(); err != nil {
		return nil, err
	}
	cfg.Transport.SetHandler(ep.onRecv)
	return ep, nil
}

// initTemplate builds a throwaway stack to learn the endpoint's uniform
// ConnID layout, needed to slice identifications off incoming datagrams
// before any connection is known.
func (ep *Endpoint) initTemplate() error {
	ls, err := ep.cfg.build()(PeerSpec{}, ep.cfg.Order)
	if err != nil {
		return err
	}
	st, err := stack.NewStack(ls...)
	if err != nil {
		return err
	}
	schema := header.New()
	// Init also programs filters; give it builders that are thrown away.
	ic := &stack.InitContext{
		Schema:     schema,
		SendFilter: filter.NewBuilder(),
		RecvFilter: filter.NewBuilder(),
	}
	if err := st.Init(ic); err != nil {
		return err
	}
	if err := schema.Compile(); err != nil {
		return err
	}
	for _, l := range ls {
		if id, ok := l.(Identifier); ok {
			ep.template = id
		}
	}
	if ep.template == nil {
		return errors.New("core: stack has no identification layer")
	}
	ep.identSize = schema.Size(header.ConnID)
	return nil
}

// Stats returns a snapshot of the router counters.
func (ep *Endpoint) Stats() EndpointStats {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.stats
}

// IdentSize returns the endpoint's connection identification size (the
// paper's ~76 bytes).
func (ep *Endpoint) IdentSize() int { return ep.identSize }

// Dial creates a connection to the peer described by spec and registers
// its routes. The first outgoing message will carry the connection
// identification (unless the spec pre-agreed cookies).
func (ep *Endpoint) Dial(spec PeerSpec) (*Conn, error) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, ErrConnClosed
	}
	ep.mu.Unlock()
	c, err := newConn(ep, spec)
	if err != nil {
		return nil, err
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil, ErrConnClosed
	}
	ep.conns[c] = struct{}{}
	// Route by the identification the peer will send, in either byte
	// order — the preamble's order bit is not known in advance.
	for _, o := range []bits.ByteOrder{bits.BigEndian, bits.LittleEndian} {
		key := string(c.ident.ExpectedIncoming(ep.identSize, o))
		ep.byIdent[key] = c
	}
	if spec.ExpectInCookie != 0 {
		ep.byCookie[spec.ExpectInCookie&CookieMask] = c
	}
	return c, nil
}

// removeConn unregisters a closed connection.
func (ep *Endpoint) removeConn(c *Conn) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	delete(ep.conns, c)
	for k, v := range ep.byIdent {
		if v == c {
			delete(ep.byIdent, k)
		}
	}
	for k, v := range ep.byCookie {
		if v == c {
			delete(ep.byCookie, k)
		}
	}
}

// Close closes every connection and the transport.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	conns := make([]*Conn, 0, len(ep.conns))
	for c := range ep.conns {
		conns = append(conns, c)
	}
	ep.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return ep.cfg.Transport.Close()
}

// onRecv is the router: the paper's from_network() up to connection
// lookup (Fig. 3).
func (ep *Endpoint) onRecv(src string, datagram []byte) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.stats.Received++
	ep.mu.Unlock()

	pre, err := DecodePreamble(datagram)
	if err != nil {
		ep.note(func(s *EndpointStats) { s.Malformed++ })
		return
	}
	m := message.FromWire(datagram)
	m.Order = pre.Order
	if _, err := m.Pop(PreambleSize); err != nil {
		ep.note(func(s *EndpointStats) { s.Malformed++ })
		m.Free()
		return
	}

	var cid []byte
	var c *Conn
	if pre.ConnIDPresent {
		if cid, err = m.Pop(ep.identSize); err != nil {
			ep.note(func(s *EndpointStats) { s.Malformed++ })
			m.Free()
			return
		}
		c = ep.lookupIdent(cid, pre, src)
		if c == nil {
			m.Free()
			return
		}
		ep.learnCookie(c, pre.Cookie)
	} else {
		ep.mu.Lock()
		c = ep.byCookie[pre.Cookie]
		if c == nil {
			ep.stats.UnknownCookie++
		}
		ep.mu.Unlock()
		if c == nil {
			// "When a message is received with an unknown cookie,
			// and the Connection Identification Present Bit
			// cleared, it is dropped" (§2.2).
			m.Free()
			return
		}
	}
	m.MarkPayload()
	c.deliverIncoming(m, cid, pre.Order)
}

// lookupIdent routes an identified message, consulting the accept hook for
// unknown identifications.
func (ep *Endpoint) lookupIdent(cid []byte, pre Preamble, src string) *Conn {
	ep.mu.Lock()
	c := ep.byIdent[string(cid)]
	accept := ep.cfg.Accept
	onConn := ep.cfg.OnConn
	ep.mu.Unlock()
	if c != nil {
		return c
	}
	if accept == nil {
		ep.note(func(s *EndpointStats) { s.UnknownIdent++ })
		return nil
	}
	info := ep.template.ParseIncoming(cid, pre.Order)
	spec, ok := accept(info, src)
	if !ok {
		ep.note(func(s *EndpointStats) { s.Rejected++ })
		return nil
	}
	nc, err := ep.Dial(spec)
	if err != nil {
		ep.note(func(s *EndpointStats) { s.Rejected++ })
		return nil
	}
	ep.note(func(s *EndpointStats) { s.Accepted++ })
	if onConn != nil {
		onConn(nc)
	}
	// The accepted spec must route the identification that created it.
	ep.mu.Lock()
	c = ep.byIdent[string(cid)]
	ep.mu.Unlock()
	if c == nil {
		// Accept hook returned a mismatched spec; route explicitly so
		// the message is not lost, but flag it.
		ep.mu.Lock()
		ep.byIdent[string(cid)] = nc
		ep.mu.Unlock()
		c = nc
	}
	return c
}

// learnCookie records the peer's (incoming) cookie for cookie-only routing.
func (ep *Endpoint) learnCookie(c *Conn, cookie uint64) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if prev, ok := ep.byCookie[cookie]; ok && prev == c {
		return
	}
	// Forget this connection's previous cookie, if any.
	for k, v := range ep.byCookie {
		if v == c {
			delete(ep.byCookie, k)
		}
	}
	ep.byCookie[cookie] = c
	ep.stats.CookiesLearned++
}

func (ep *Endpoint) note(f func(*EndpointStats)) {
	ep.mu.Lock()
	f(&ep.stats)
	ep.mu.Unlock()
}

// Package core implements the Protocol Accelerator (PA) itself: the
// per-connection engine of the paper that masks layering overhead with
// compact class headers, connection cookies, header prediction, packet
// filters in both critical paths, lazy post-processing, and message
// packing. The send and delivery paths follow the paper's Figure 3
// pseudocode; the per-connection state follows Table 3.
package core

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"paccel/internal/bits"
)

// PreambleSize is the size of the preamble every PA message starts with:
// "an 8-byte header, called the Preamble" (§2.2).
const PreambleSize = 8

// CookieBits is the width of the connection cookie: "a 62-bit magic
// number ... chosen at random" (§2.2).
const CookieBits = 62

// CookieMask isolates the cookie from the two flag bits.
const CookieMask = (uint64(1) << CookieBits) - 1

// Preamble flag bits, stored in the two high bits of the 64-bit word.
const (
	flagConnIDPresent = uint64(1) << 63
	flagLittleEndian  = uint64(1) << 62
)

// Preamble is the fixed 8-byte header of every PA message (§2.2, Fig. 1):
// the connection-identification-present bit, the byte-order bit, and the
// 62-bit connection cookie.
type Preamble struct {
	// ConnIDPresent is set iff the Connection Identification follows
	// the preamble.
	ConnIDPresent bool
	// Order is the byte order of the message's aligned header fields:
	// set bit = little endian (§2.2).
	Order bits.ByteOrder
	// Cookie identifies the connection; only the low 62 bits are used.
	Cookie uint64
}

// Encode appends the 8-byte wire form to dst and returns the extended
// slice. The preamble itself is always big-endian: it is the bootstrap
// that carries the byte-order bit.
func (p Preamble) Encode(dst []byte) []byte {
	w := p.Cookie & CookieMask
	if p.ConnIDPresent {
		w |= flagConnIDPresent
	}
	if p.Order == bits.LittleEndian {
		w |= flagLittleEndian
	}
	var buf [PreambleSize]byte
	binary.BigEndian.PutUint64(buf[:], w)
	return append(dst, buf[:]...)
}

// EncodeTo writes the 8-byte wire form into dst, which must be at least
// PreambleSize long.
func (p Preamble) EncodeTo(dst []byte) {
	w := p.Cookie & CookieMask
	if p.ConnIDPresent {
		w |= flagConnIDPresent
	}
	if p.Order == bits.LittleEndian {
		w |= flagLittleEndian
	}
	binary.BigEndian.PutUint64(dst, w)
}

// DecodePreamble parses the preamble at the start of a datagram.
func DecodePreamble(b []byte) (Preamble, error) {
	if len(b) < PreambleSize {
		return Preamble{}, fmt.Errorf("core: datagram too short for preamble: %d bytes", len(b))
	}
	w := binary.BigEndian.Uint64(b)
	p := Preamble{
		ConnIDPresent: w&flagConnIDPresent != 0,
		Cookie:        w & CookieMask,
	}
	if w&flagLittleEndian != 0 {
		p.Order = bits.LittleEndian
	}
	return p, nil
}

// NewCookie draws a random, non-zero 62-bit connection cookie.
func NewCookie() (uint64, error) {
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("core: cookie: %w", err)
		}
		c := binary.BigEndian.Uint64(buf[:]) & CookieMask
		if c != 0 {
			return c, nil
		}
	}
}

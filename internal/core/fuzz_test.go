package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

// Fuzz targets for the wire decoders. Run with
// `go test -fuzz FuzzDecodePreamble ./internal/core`; without -fuzz the
// seed corpus runs as regression tests.

func FuzzDecodePreamble(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(Preamble{ConnIDPresent: true, Order: bits.LittleEndian, Cookie: 42}.Encode(nil))
	f.Add(Preamble{Cookie: CookieMask}.Encode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePreamble(data)
		if err != nil {
			return
		}
		// Any successfully decoded preamble re-encodes to the same 8
		// bytes.
		enc := p.Encode(nil)
		for i := 0; i < PreambleSize; i++ {
			if enc[i] != data[i] {
				t.Fatalf("re-encode mismatch at %d: %x vs %x", i, enc, data[:PreambleSize])
			}
		}
		if p.Cookie > CookieMask {
			t.Fatalf("cookie %#x exceeds 62 bits", p.Cookie)
		}
	})
}

func FuzzDecodePacking(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(encodePacking(nil, []int{8, 8, 8}))
	f.Add(encodePacking(nil, []int{1, 2, 3}))
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{2, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		sizes, n, err := decodePacking(data)
		if err != nil {
			return
		}
		if n < 1 || n > len(data) {
			t.Fatalf("header length %d of %d", n, len(data))
		}
		if len(sizes) > maxPacked {
			t.Fatalf("%d sizes exceed the bound", len(sizes))
		}
		for _, s := range sizes {
			if s < 0 {
				t.Fatal("negative size decoded")
			}
		}
	})
}

// FuzzRouter feeds arbitrary datagrams through a live endpoint's receive
// path: nothing may panic, and nothing may reach the application.
func FuzzRouter(f *testing.F) {
	r := newFuzzRig(f)
	f.Add([]byte{})
	f.Add(Preamble{Cookie: 7}.Encode(nil))
	f.Add(append(Preamble{ConnIDPresent: true, Cookie: 9}.Encode(nil), make([]byte, 80)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		before := r.delivered.count()
		r.raw.Send("B", data)
		if r.delivered.count() != before {
			t.Fatalf("fuzz datagram %x delivered", data)
		}
	})
}

type fuzzRig struct {
	raw interface {
		Send(dst string, d []byte) error
	}
	delivered *sink
}

func newFuzzRig(f *testing.F) *fuzzRig {
	f.Helper()
	// Reuse the test rig machinery via a plain netsim network.
	r := &fuzzRig{delivered: &sink{}}
	rig := buildFuzzEndpoints(f)
	rig.b.OnDeliver(r.delivered.add)
	r.raw = rig.raw
	return r
}

type fuzzEndpoints struct {
	b   *Conn
	raw interface {
		Send(dst string, d []byte) error
	}
}

func buildFuzzEndpoints(f *testing.F) *fuzzEndpoints {
	f.Helper()
	clk := newTestClock()
	net := newTestNet(clk)
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { epB.Close() })
	_, sb := specAB()
	b, err := epB.Dial(sb)
	if err != nil {
		f.Fatal(err)
	}
	return &fuzzEndpoints{b: b, raw: net.Endpoint("fuzzer")}
}

// recordingTransport wraps a Transport and keeps a copy of every
// datagram sent through it, so fuzz targets can seed their corpus with
// real wire traffic (identified first messages, resume probes, acks).
type recordingTransport struct {
	inner Transport
	mu    sync.Mutex
	sent  [][]byte
}

func (r *recordingTransport) Send(dst string, d []byte) error {
	r.mu.Lock()
	r.sent = append(r.sent, append([]byte(nil), d...))
	r.mu.Unlock()
	return r.inner.Send(dst, d)
}

func (r *recordingTransport) SetHandler(h func(string, []byte)) { r.inner.SetHandler(h) }
func (r *recordingTransport) LocalAddr() string                 { return r.inner.LocalAddr() }
func (r *recordingTransport) Close() error                      { return r.inner.Close() }

// FuzzOnRecv feeds arbitrary whole datagrams — seeded with genuine
// data, identification, and resume-probe traffic plus truncated and
// cookie-flipped variants — straight into Endpoint.onRecv from an
// unexpected source address. Nothing may panic, and the cookie table
// must stay bounded (learned routes replace, never accumulate).
func FuzzOnRecv(f *testing.F) {
	clk := newTestClock()
	net := newTestNet(clk)
	rec := &recordingTransport{inner: net.Endpoint("A")}
	epA, err := NewEndpoint(Config{
		Transport: rec,
		Clock:     clk,
		Recovery: RecoveryConfig{
			MaxAttempts: 4,
			BaseDelay:   10 * time.Millisecond,
			Seed:        3,
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { epA.Close(); epB.Close() })
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := epB.Dial(sb); err != nil {
		f.Fatal(err)
	}
	// Generate real traffic: an identified first message, then a forced
	// failover whose resume probes also carry the identification.
	if err := a.Send([]byte("fuzz-seed-payload")); err != nil {
		f.Fatal(err)
	}
	a.Fail(errors.New("fuzz: forced failover"))
	for i := 0; i < 20; i++ {
		clk.Advance(10 * time.Millisecond)
	}

	rec.mu.Lock()
	for _, d := range rec.sent {
		f.Add(append([]byte(nil), d...))
		if len(d) > 9 { // truncated mid-identification
			f.Add(append([]byte(nil), d[:9]...))
		}
		if len(d) > 3 { // truncated mid-payload
			f.Add(append([]byte(nil), d[:len(d)-3]...))
		}
		if len(d) > 2 { // cookie collision: flip a cookie bit
			fl := append([]byte(nil), d...)
			fl[2] ^= 0x40
			f.Add(fl)
		}
	}
	rec.mu.Unlock()
	f.Add([]byte{})
	f.Add(make([]byte, PreambleSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		epB.onRecv("Z", data)
		if got := cookieCount(epB); got > 3 {
			t.Fatalf("cookie table grew to %d routes on one connection", got)
		}
	})
}

// FuzzAdmission throws first-message traffic — genuine identified
// frames from several peers plus truncated, cookie-flipped and
// ident-flipped variants — at an endpoint whose connection table is
// already full. Nothing may panic, the hard capacity must hold no
// matter what arrives (including under the evict-idle policy, which
// closes connections from inside the receive path), and the cookie
// table must stay bounded.
func FuzzAdmission(f *testing.F) {
	clk := newTestClock()
	net := newTestNet(clk)
	const capacity = 4
	epS, err := NewEndpoint(Config{
		Transport: net.Endpoint("S"),
		Clock:     clk,
		MaxConns:  capacity,
		Admission: AdmissionConfig{Policy: ShedEvictIdle, StormRate: 8, Seed: 11},
		Accept:    acceptAll,
		OnConn:    func(c *Conn) { c.OnDeliver(func([]byte) {}) },
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { epS.Close() })

	// Fill the table with real peers, recording their wire traffic for
	// the seed corpus.
	for i := 0; i < capacity; i++ {
		rec := &recordingTransport{inner: net.Endpoint(fmt.Sprintf("C%d", i))}
		ep, err := NewEndpoint(Config{Transport: rec, Clock: clk})
		if err != nil {
			f.Fatal(err)
		}
		conn, err := ep.Dial(PeerSpec{
			Addr: "S", LocalID: []byte(fmt.Sprintf("c%d", i)), RemoteID: []byte("srv"),
			LocalPort: uint16(i + 1), RemotePort: 9,
		})
		if err != nil {
			f.Fatal(err)
		}
		if err := conn.Send([]byte("seed")); err != nil {
			f.Fatal(err)
		}
		rec.mu.Lock()
		for _, d := range rec.sent {
			f.Add(append([]byte(nil), d...))
			if len(d) > 9 { // truncated mid-identification
				f.Add(append([]byte(nil), d[:9]...))
			}
			if len(d) > 2 { // cookie flip
				fl := append([]byte(nil), d...)
				fl[2] ^= 0x40
				f.Add(fl)
			}
			if len(d) > PreambleSize { // ident flip: a "new" peer
				fl := append([]byte(nil), d...)
				fl[PreambleSize] ^= 0xFF
				f.Add(fl)
			}
		}
		rec.mu.Unlock()
		ep.Close()
	}
	f.Add([]byte{})
	f.Add(make([]byte, PreambleSize))
	f.Add(append(Preamble{ConnIDPresent: true, Cookie: 9}.Encode(nil), make([]byte, 80)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		epS.onRecv("Z", data)
		if n := epS.connCount.Load(); n > capacity {
			t.Fatalf("connection count %d exceeds MaxConns=%d", n, capacity)
		}
		if got := cookieCount(epS); got > 2*capacity {
			t.Fatalf("cookie table grew to %d routes at capacity %d", got, capacity)
		}
		if epS.tableEntries.Load() < 0 {
			t.Fatal("table entry accounting went negative")
		}
	})
}

func newTestClock() *vclock.Manual { return vclock.NewManual(t0) }

func newTestNet(clk *vclock.Manual) *netsim.Network {
	return netsim.New(clk, netsim.Config{})
}

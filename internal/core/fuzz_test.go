package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

// Fuzz targets for the wire decoders. Run with
// `go test -fuzz FuzzDecodePreamble ./internal/core`; without -fuzz the
// seed corpus runs as regression tests.

func FuzzDecodePreamble(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(Preamble{ConnIDPresent: true, Order: bits.LittleEndian, Cookie: 42}.Encode(nil))
	f.Add(Preamble{Cookie: CookieMask}.Encode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePreamble(data)
		if err != nil {
			return
		}
		// Any successfully decoded preamble re-encodes to the same 8
		// bytes.
		enc := p.Encode(nil)
		for i := 0; i < PreambleSize; i++ {
			if enc[i] != data[i] {
				t.Fatalf("re-encode mismatch at %d: %x vs %x", i, enc, data[:PreambleSize])
			}
		}
		if p.Cookie > CookieMask {
			t.Fatalf("cookie %#x exceeds 62 bits", p.Cookie)
		}
	})
}

func FuzzDecodePacking(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(encodePacking(nil, []int{8, 8, 8}))
	f.Add(encodePacking(nil, []int{1, 2, 3}))
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{2, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		sizes, n, err := decodePacking(data)
		if err != nil {
			return
		}
		if n < 1 || n > len(data) {
			t.Fatalf("header length %d of %d", n, len(data))
		}
		if len(sizes) > maxPacked {
			t.Fatalf("%d sizes exceed the bound", len(sizes))
		}
		for _, s := range sizes {
			if s < 0 {
				t.Fatal("negative size decoded")
			}
		}
	})
}

// FuzzRouter feeds arbitrary datagrams through a live endpoint's receive
// path: nothing may panic, and nothing may reach the application.
func FuzzRouter(f *testing.F) {
	r := newFuzzRig(f)
	f.Add([]byte{})
	f.Add(Preamble{Cookie: 7}.Encode(nil))
	f.Add(append(Preamble{ConnIDPresent: true, Cookie: 9}.Encode(nil), make([]byte, 80)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		before := r.delivered.count()
		r.raw.Send("B", data)
		if r.delivered.count() != before {
			t.Fatalf("fuzz datagram %x delivered", data)
		}
	})
}

type fuzzRig struct {
	raw interface {
		Send(dst string, d []byte) error
	}
	delivered *sink
}

func newFuzzRig(f *testing.F) *fuzzRig {
	f.Helper()
	// Reuse the test rig machinery via a plain netsim network.
	r := &fuzzRig{delivered: &sink{}}
	rig := buildFuzzEndpoints(f)
	rig.b.OnDeliver(r.delivered.add)
	r.raw = rig.raw
	return r
}

type fuzzEndpoints struct {
	b   *Conn
	raw interface {
		Send(dst string, d []byte) error
	}
}

func buildFuzzEndpoints(f *testing.F) *fuzzEndpoints {
	f.Helper()
	clk := newTestClock()
	net := newTestNet(clk)
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { epB.Close() })
	_, sb := specAB()
	b, err := epB.Dial(sb)
	if err != nil {
		f.Fatal(err)
	}
	return &fuzzEndpoints{b: b, raw: net.Endpoint("fuzzer")}
}

// recordingTransport wraps a Transport and keeps a copy of every
// datagram sent through it, so fuzz targets can seed their corpus with
// real wire traffic (identified first messages, resume probes, acks).
type recordingTransport struct {
	inner Transport
	mu    sync.Mutex
	sent  [][]byte
}

func (r *recordingTransport) Send(dst string, d []byte) error {
	r.mu.Lock()
	r.sent = append(r.sent, append([]byte(nil), d...))
	r.mu.Unlock()
	return r.inner.Send(dst, d)
}

func (r *recordingTransport) SetHandler(h func(string, []byte)) { r.inner.SetHandler(h) }
func (r *recordingTransport) LocalAddr() string                 { return r.inner.LocalAddr() }
func (r *recordingTransport) Close() error                      { return r.inner.Close() }

// fuzzSources is the pool of source addresses fuzz datagrams claim to
// arrive from: the plain unknown source plus NAT-rewritten shapes — the
// same external IP on shifting ports, the mid-stream rebind — and a
// second middlebox entirely. Each input picks its source from its own
// bytes, so the corpus exercises identical frames arriving from
// never-seen addresses.
var fuzzSources = []string{
	"Z",
	"198.51.100.1:60000",
	"198.51.100.1:60001", // same NAT, rebound port
	"203.0.113.9:60000",  // different middlebox
}

func fuzzSource(data []byte) string {
	var h uint32 = 2166136261
	for _, b := range data {
		h = (h ^ uint32(b)) * 16777619
	}
	return fuzzSources[h%uint32(len(fuzzSources))]
}

// FuzzOnRecv feeds arbitrary whole datagrams — seeded with genuine
// data, identification, and resume-probe traffic plus truncated,
// cookie-flipped, and rebind-shaped variants — straight into
// Endpoint.onRecv from NAT-rewritten source addresses. Nothing may
// panic, the cookie table must stay bounded (learned routes replace,
// never accumulate), and the route may migrate to a never-seen source
// only when the datagram carried the connection identification — a
// cookie-only datagram from a rewritten address must not move the
// peer.
func FuzzOnRecv(f *testing.F) {
	clk := newTestClock()
	net := newTestNet(clk)
	rec := &recordingTransport{inner: net.Endpoint("A")}
	epA, err := NewEndpoint(Config{
		Transport: rec,
		Clock:     clk,
		Recovery: RecoveryConfig{
			MaxAttempts: 4,
			BaseDelay:   10 * time.Millisecond,
			Seed:        3,
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { epA.Close(); epB.Close() })
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		f.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		f.Fatal(err)
	}
	// Generate real traffic: an identified first message, then a forced
	// failover whose resume probes also carry the identification.
	if err := a.Send([]byte("fuzz-seed-payload")); err != nil {
		f.Fatal(err)
	}
	a.Fail(errors.New("fuzz: forced failover"))
	for i := 0; i < 20; i++ {
		clk.Advance(10 * time.Millisecond)
	}

	rec.mu.Lock()
	for _, d := range rec.sent {
		f.Add(append([]byte(nil), d...))
		if len(d) > 9 { // truncated mid-identification
			f.Add(append([]byte(nil), d[:9]...))
		}
		if len(d) > 3 { // truncated mid-payload
			f.Add(append([]byte(nil), d[:len(d)-3]...))
		}
		if len(d) > 2 { // cookie collision: flip a cookie bit
			fl := append([]byte(nil), d...)
			fl[2] ^= 0x40
			f.Add(fl)
		}
		// Mid-stream rebind: the same genuine frame, padded so it
		// hashes to a different (NAT-rewritten) source address. Pads of
		// 1..3 walk the frame across the source pool.
		for pad := 1; pad <= 3; pad++ {
			f.Add(append(append([]byte(nil), d...), make([]byte, pad)...))
		}
	}
	rec.mu.Unlock()
	f.Add([]byte{})
	f.Add(make([]byte, PreambleSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzSource(data)
		before := b.RemoteAddr()
		epB.onRecv(src, data)
		if after := b.RemoteAddr(); after != before && after == src {
			// The route moved to the fuzz source: only an identified
			// datagram is allowed to do that.
			p, err := DecodePreamble(data)
			if err != nil || !p.ConnIDPresent {
				t.Fatalf("cookie-only datagram %x from %s migrated the route", data, src)
			}
		}
		if got := cookieCount(epB); got > 3 {
			t.Fatalf("cookie table grew to %d routes on one connection", got)
		}
	})
}

// FuzzAdmission throws first-message traffic — genuine identified
// frames from several peers plus truncated, cookie-flipped,
// ident-flipped and rebind-shaped variants — at an endpoint whose
// connection table is already full, from NAT-rewritten source
// addresses. Nothing may panic, the hard capacity must hold no matter
// what arrives (including under the evict-idle policy, which closes
// connections from inside the receive path), and the cookie table must
// stay bounded even when known frames keep reappearing from never-seen
// sources.
func FuzzAdmission(f *testing.F) {
	clk := newTestClock()
	net := newTestNet(clk)
	const capacity = 4
	epS, err := NewEndpoint(Config{
		Transport: net.Endpoint("S"),
		Clock:     clk,
		MaxConns:  capacity,
		Admission: AdmissionConfig{Policy: ShedEvictIdle, StormRate: 8, Seed: 11},
		Accept:    acceptAll,
		OnConn:    func(c *Conn) { c.OnDeliver(func([]byte) {}) },
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { epS.Close() })

	// Fill the table with real peers, recording their wire traffic for
	// the seed corpus.
	for i := 0; i < capacity; i++ {
		rec := &recordingTransport{inner: net.Endpoint(fmt.Sprintf("C%d", i))}
		ep, err := NewEndpoint(Config{Transport: rec, Clock: clk})
		if err != nil {
			f.Fatal(err)
		}
		conn, err := ep.Dial(PeerSpec{
			Addr: "S", LocalID: []byte(fmt.Sprintf("c%d", i)), RemoteID: []byte("srv"),
			LocalPort: uint16(i + 1), RemotePort: 9,
		})
		if err != nil {
			f.Fatal(err)
		}
		if err := conn.Send([]byte("seed")); err != nil {
			f.Fatal(err)
		}
		rec.mu.Lock()
		for _, d := range rec.sent {
			f.Add(append([]byte(nil), d...))
			if len(d) > 9 { // truncated mid-identification
				f.Add(append([]byte(nil), d[:9]...))
			}
			if len(d) > 2 { // cookie flip
				fl := append([]byte(nil), d...)
				fl[2] ^= 0x40
				f.Add(fl)
			}
			if len(d) > PreambleSize { // ident flip: a "new" peer
				fl := append([]byte(nil), d...)
				fl[PreambleSize] ^= 0xFF
				f.Add(fl)
			}
			// Mid-stream rebind: the same admitted peer's frame, padded
			// onto different NAT-rewritten source addresses.
			f.Add(append(append([]byte(nil), d...), 0))
			f.Add(append(append([]byte(nil), d...), 0, 0))
		}
		rec.mu.Unlock()
		ep.Close()
	}
	f.Add([]byte{})
	f.Add(make([]byte, PreambleSize))
	f.Add(append(Preamble{ConnIDPresent: true, Cookie: 9}.Encode(nil), make([]byte, 80)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		epS.onRecv(fuzzSource(data), data)
		if n := epS.connCount.Load(); n > capacity {
			t.Fatalf("connection count %d exceeds MaxConns=%d", n, capacity)
		}
		if got := cookieCount(epS); got > 2*capacity {
			t.Fatalf("cookie table grew to %d routes at capacity %d", got, capacity)
		}
		if epS.tableEntries.Load() < 0 {
			t.Fatal("table entry accounting went negative")
		}
	})
}

func newTestClock() *vclock.Manual { return vclock.NewManual(t0) }

func newTestNet(clk *vclock.Manual) *netsim.Network {
	return netsim.New(clk, netsim.Config{})
}

// TestMigrationGateUnderRewrittenSources pins the NAT-rebind contract
// the fuzz targets probe statistically: replaying genuine wire frames
// from a never-seen (NAT-rewritten) source address migrates the peer's
// route only when the frame carries the connection identification. The
// cookie-only steady-state frame — exactly what flows right after a
// real rebind — must leave the route alone.
func TestMigrationGateUnderRewrittenSources(t *testing.T) {
	clk := newTestClock()
	net := newTestNet(clk)
	rec := &recordingTransport{inner: net.Endpoint("A")}
	epA, err := NewEndpoint(Config{Transport: rec, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	b.OnDeliver(func([]byte) {})

	// Drive an identified first message, let the ack confirm it, then a
	// cookie-only steady-state message.
	for _, msg := range []string{"first", "steady"} {
		if err := a.Send([]byte(msg)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			clk.Advance(10 * time.Millisecond)
		}
	}
	var identified, cookieOnly []byte
	rec.mu.Lock()
	for _, d := range rec.sent {
		p, err := DecodePreamble(d)
		if err != nil {
			continue
		}
		if p.ConnIDPresent && identified == nil {
			identified = append([]byte(nil), d...)
		}
		if !p.ConnIDPresent && cookieOnly == nil {
			cookieOnly = append([]byte(nil), d...)
		}
	}
	rec.mu.Unlock()
	if identified == nil || cookieOnly == nil {
		t.Fatal("traffic did not produce both frame classes")
	}
	home := b.RemoteAddr()

	// A cookie-only frame from a rewritten source: routed to the
	// connection by its cookie, but the route must not follow it.
	epB.onRecv("198.51.100.1:60001", cookieOnly)
	if got := b.RemoteAddr(); got != home {
		t.Fatalf("cookie-only frame migrated the route %s -> %s", home, got)
	}
	if st := b.Stats(); st.PeerMigrations != 0 {
		t.Fatalf("PeerMigrations = %d after a cookie-only frame", st.PeerMigrations)
	}

	// The identified frame from another rewritten source: the window
	// drops the duplicate, but identification vets the source and the
	// route follows — the post-rebind heal path.
	epB.onRecv("198.51.100.1:60002", identified)
	if got := b.RemoteAddr(); got != "198.51.100.1:60002" {
		t.Fatalf("identified frame did not migrate the route: still %s", got)
	}
	if st := b.Stats(); st.PeerMigrations != 1 {
		t.Fatalf("PeerMigrations = %d after the identified frame", st.PeerMigrations)
	}
}

package core

import (
	"testing"

	"paccel/internal/bits"
	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

// Fuzz targets for the wire decoders. Run with
// `go test -fuzz FuzzDecodePreamble ./internal/core`; without -fuzz the
// seed corpus runs as regression tests.

func FuzzDecodePreamble(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(Preamble{ConnIDPresent: true, Order: bits.LittleEndian, Cookie: 42}.Encode(nil))
	f.Add(Preamble{Cookie: CookieMask}.Encode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePreamble(data)
		if err != nil {
			return
		}
		// Any successfully decoded preamble re-encodes to the same 8
		// bytes.
		enc := p.Encode(nil)
		for i := 0; i < PreambleSize; i++ {
			if enc[i] != data[i] {
				t.Fatalf("re-encode mismatch at %d: %x vs %x", i, enc, data[:PreambleSize])
			}
		}
		if p.Cookie > CookieMask {
			t.Fatalf("cookie %#x exceeds 62 bits", p.Cookie)
		}
	})
}

func FuzzDecodePacking(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(encodePacking(nil, []int{8, 8, 8}))
	f.Add(encodePacking(nil, []int{1, 2, 3}))
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{2, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		sizes, n, err := decodePacking(data)
		if err != nil {
			return
		}
		if n < 1 || n > len(data) {
			t.Fatalf("header length %d of %d", n, len(data))
		}
		if len(sizes) > maxPacked {
			t.Fatalf("%d sizes exceed the bound", len(sizes))
		}
		for _, s := range sizes {
			if s < 0 {
				t.Fatal("negative size decoded")
			}
		}
	})
}

// FuzzRouter feeds arbitrary datagrams through a live endpoint's receive
// path: nothing may panic, and nothing may reach the application.
func FuzzRouter(f *testing.F) {
	r := newFuzzRig(f)
	f.Add([]byte{})
	f.Add(Preamble{Cookie: 7}.Encode(nil))
	f.Add(append(Preamble{ConnIDPresent: true, Cookie: 9}.Encode(nil), make([]byte, 80)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		before := r.delivered.count()
		r.raw.Send("B", data)
		if r.delivered.count() != before {
			t.Fatalf("fuzz datagram %x delivered", data)
		}
	})
}

type fuzzRig struct {
	raw interface {
		Send(dst string, d []byte) error
	}
	delivered *sink
}

func newFuzzRig(f *testing.F) *fuzzRig {
	f.Helper()
	// Reuse the test rig machinery via a plain netsim network.
	r := &fuzzRig{delivered: &sink{}}
	rig := buildFuzzEndpoints(f)
	rig.b.OnDeliver(r.delivered.add)
	r.raw = rig.raw
	return r
}

type fuzzEndpoints struct {
	b   *Conn
	raw interface {
		Send(dst string, d []byte) error
	}
}

func buildFuzzEndpoints(f *testing.F) *fuzzEndpoints {
	f.Helper()
	clk := newTestClock()
	net := newTestNet(clk)
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { epB.Close() })
	_, sb := specAB()
	b, err := epB.Dial(sb)
	if err != nil {
		f.Fatal(err)
	}
	return &fuzzEndpoints{b: b, raw: net.Endpoint("fuzzer")}
}

func newTestClock() *vclock.Manual { return vclock.NewManual(t0) }

func newTestNet(clk *vclock.Manual) *netsim.Network {
	return netsim.New(clk, netsim.Config{})
}

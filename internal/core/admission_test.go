package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/telemetry"
	"paccel/internal/vclock"
)

// acceptAll is the accept hook used throughout the admission tests: it
// takes every identified connection at face value.
func acceptAll(remote layers.IdentInfo, netSrc string) (PeerSpec, bool) {
	return PeerSpec{
		Addr:      netSrc,
		LocalID:   bytes.TrimRight(remote.Dst, "\x00"),
		RemoteID:  bytes.TrimRight(remote.Src, "\x00"),
		LocalPort: remote.DstPort, RemotePort: remote.SrcPort,
		Epoch: remote.Epoch,
	}, true
}

// dialIn creates a throwaway client endpoint on net, sends one
// identified message to S (driving the server's first-message admission
// path — netsim delivery is synchronous, so the server has decided by
// the time Send returns), then closes the client so its retransmission
// timers cannot muddy later virtual-clock advances.
func dialIn(t *testing.T, clk vclock.Clock, net *netsim.Network, i int) {
	t.Helper()
	ep, err := NewEndpoint(Config{Transport: net.Endpoint(fmt.Sprintf("C%d", i)), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ep.Dial(PeerSpec{
		Addr: "S", LocalID: []byte(fmt.Sprintf("c%d", i)), RemoteID: []byte("srv"),
		LocalPort: uint16(i%65535 + 1), RemotePort: 9, Epoch: uint32(i / 65535),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	ep.Close()
}

// TestAdmissionErrorChain pins the typed error taxonomy: every admission
// refusal is an ErrAdmission, and every ErrAdmission is backpressure, so
// one errors.Is(err, ErrBackpressure) catches overload of any flavour.
func TestAdmissionErrorChain(t *testing.T) {
	for _, err := range []error{ErrAdmissionFull, ErrAdmissionStorm, ErrAdmissionEarlyDrop} {
		if !errors.Is(err, ErrAdmission) {
			t.Fatalf("%v does not wrap ErrAdmission", err)
		}
		if !errors.Is(err, ErrBackpressure) {
			t.Fatalf("%v does not wrap ErrBackpressure", err)
		}
	}
	if errors.Is(ErrAdmission, ErrAdmissionFull) {
		t.Fatal("error chain inverted")
	}
}

// TestDialRefusedAtCapacity: local dials beyond Config.MaxConns fail with
// ErrAdmissionFull before any connection state is allocated, and the
// refusals are counted — shed is never silent.
func TestDialRefusedAtCapacity(t *testing.T) {
	clk := newTestClock()
	net := newTestNet(clk)
	ep, err := NewEndpoint(Config{Transport: net.Endpoint("A"), Clock: clk, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	for i := 0; i < 2; i++ {
		if _, err := ep.Dial(PeerSpec{
			Addr: "B", LocalID: []byte("a"), RemoteID: []byte("b"),
			LocalPort: uint16(i + 1), RemotePort: 9,
		}); err != nil {
			t.Fatalf("dial %d within capacity: %v", i, err)
		}
	}
	third, err := ep.Dial(PeerSpec{
		Addr: "B", LocalID: []byte("a"), RemoteID: []byte("b"),
		LocalPort: 3, RemotePort: 9,
	})
	if !errors.Is(err, ErrAdmissionFull) {
		t.Fatalf("dial past capacity: conn=%v err=%v, want ErrAdmissionFull", third, err)
	}
	s := ep.Snapshot()
	if s.Conns != 2 || s.MaxConns != 2 {
		t.Fatalf("Conns=%d MaxConns=%d, want 2/2", s.Conns, s.MaxConns)
	}
	if s.ShedFull != 1 || s.ShedTotal != 1 {
		t.Fatalf("ShedFull=%d ShedTotal=%d, want 1/1", s.ShedFull, s.ShedTotal)
	}
}

// TestInboundShedRejectNew: a full server sheds identified first messages
// on the unidentified path — no new connections, counted refusals, no
// loss for the connections that were admitted.
func TestInboundShedRejectNew(t *testing.T) {
	clk := newTestClock()
	net := newTestNet(clk)
	served := &sink{}
	epS, err := NewEndpoint(Config{
		Transport: net.Endpoint("S"), Clock: clk, MaxConns: 3,
		Accept: acceptAll,
		OnConn: func(c *Conn) { c.OnDeliver(served.add) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epS.Close()
	for i := 0; i < 10; i++ {
		dialIn(t, clk, net, i)
	}
	s := epS.Snapshot()
	if s.Accepted != 3 {
		t.Fatalf("Accepted=%d, want 3 (MaxConns)", s.Accepted)
	}
	if s.Conns != 3 {
		t.Fatalf("Conns=%d, want 3", s.Conns)
	}
	if s.ShedFull != 7 {
		t.Fatalf("ShedFull=%d, want 7", s.ShedFull)
	}
	if served.count() != 3 {
		t.Fatalf("served %d messages, want 3 (admitted connections lose nothing)", served.count())
	}
}

// TestInboundShedEvictIdle: at capacity the evict-idle policy closes the
// least-recently-routed learned connection to admit the newcomer.
func TestInboundShedEvictIdle(t *testing.T) {
	clk := newTestClock()
	net := newTestNet(clk)
	epS, err := NewEndpoint(Config{
		Transport: net.Endpoint("S"), Clock: clk, MaxConns: 2,
		Admission: AdmissionConfig{Policy: ShedEvictIdle},
		Accept:    acceptAll,
		OnConn:    func(c *Conn) { c.OnDeliver(func([]byte) {}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epS.Close()
	for i := 0; i < 5; i++ {
		dialIn(t, clk, net, i)
	}
	s := epS.Snapshot()
	if s.Accepted != 5 {
		t.Fatalf("Accepted=%d, want 5 (evict-idle admits everyone)", s.Accepted)
	}
	if s.Conns != 2 {
		t.Fatalf("Conns=%d, want 2 (capacity held)", s.Conns)
	}
	if s.AdmissionEvictions != 3 {
		t.Fatalf("AdmissionEvictions=%d, want 3", s.AdmissionEvictions)
	}
	if s.ShedFull != 0 {
		t.Fatalf("ShedFull=%d, want 0", s.ShedFull)
	}
}

// TestInboundShedEarlyDrop: with the probabilistic policy the server
// starts refusing before the cliff, deterministically under a fixed seed.
func TestInboundShedEarlyDrop(t *testing.T) {
	clk := newTestClock()
	net := newTestNet(clk)
	epS, err := NewEndpoint(Config{
		Transport: net.Endpoint("S"), Clock: clk, MaxConns: 10,
		Admission: AdmissionConfig{Policy: ShedEarlyDrop, EarlyDropStart: 0.5, Seed: 42},
		Accept:    acceptAll,
		OnConn:    func(c *Conn) { c.OnDeliver(func([]byte) {}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epS.Close()
	for i := 0; i < 40; i++ {
		dialIn(t, clk, net, i)
	}
	s := epS.Snapshot()
	if s.Conns > 10 {
		t.Fatalf("Conns=%d exceeds MaxConns=10", s.Conns)
	}
	if s.ShedEarlyDrop == 0 {
		t.Fatal("no probabilistic early drops below capacity")
	}
	if s.Accepted < 5 {
		t.Fatalf("Accepted=%d — the ramp must admit everything below EarlyDropStart", s.Accepted)
	}
	// Accounting is complete: every inbound first message was either
	// accepted or counted as shed.
	if s.Accepted+s.ShedTotal != 40 {
		t.Fatalf("Accepted=%d + ShedTotal=%d ≠ 40 attempts (silent shed)", s.Accepted, s.ShedTotal)
	}
}

// TestStormDetector unit-tests the connect-rate tracker: immediate entry
// when the per-second attempt count crosses StormRate, exit only after
// two consecutive calm seconds.
func TestStormDetector(t *testing.T) {
	var a admissionState
	a.init(AdmissionConfig{StormRate: 10, StormAdmitPerSec: 5})
	sec := int64(1000)
	for i := 0; i < 10; i++ {
		storm, entered, _ := a.noteConnect(sec)
		if storm || entered {
			t.Fatalf("attempt %d below the rate tripped the detector", i)
		}
	}
	storm, entered, _ := a.noteConnect(sec)
	if !storm || !entered {
		t.Fatalf("attempt 11 did not trip: storm=%v entered=%v", storm, entered)
	}
	if a.stormsDetected.Load() != 1 {
		t.Fatalf("stormsDetected=%d", a.stormsDetected.Load())
	}
	// Next second: the finished storm second is not calm.
	if _, _, exited := a.noteConnect(sec + 1); exited {
		t.Fatal("exited after the storm second itself")
	}
	// Two consecutive calm seconds (1 attempt < rate/2) end the storm.
	if _, _, exited := a.noteConnect(sec + 2); exited {
		t.Fatal("exited after one calm second")
	}
	storm, _, exited := a.noteConnect(sec + 3)
	if !exited {
		t.Fatal("storm did not exit after two calm seconds")
	}
	if storm {
		t.Fatal("storm flag still set after exit")
	}
	// A long idle gap counts as calm time: re-enter and exit via gap.
	for i := 0; i < 12; i++ {
		a.noteConnect(sec + 10)
	}
	if !a.stormOn.Load() {
		t.Fatal("second storm did not trip")
	}
	a.noteConnect(sec + 100) // one rotation across a long idle gap
	if _, _, exited := a.noteConnect(sec + 101); !exited {
		t.Fatal("idle gap did not drain the storm")
	}
}

// TestStormTightensAndRelaxes drives a storm end-to-end through the
// endpoint: a burst within one virtual second trips the detector, the
// admit cap sheds the rest with ErrAdmissionStorm, and after two calm
// seconds admission is back to normal. The manual clock makes the
// second-bucket arithmetic deterministic.
func TestStormTightensAndRelaxes(t *testing.T) {
	clk := newTestClock()
	net := newTestNet(clk)
	rec := telemetry.New(telemetry.Options{Clock: clk})
	epS, err := NewEndpoint(Config{
		Transport: net.Endpoint("S"), Clock: clk, MaxConns: 1000,
		Admission: AdmissionConfig{StormRate: 10, StormAdmitPerSec: 5},
		Accept:    acceptAll,
		OnConn:    func(c *Conn) { c.OnDeliver(func([]byte) {}) },
		Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epS.Close()

	// The reboot burst: 50 connects in one second.
	for i := 0; i < 50; i++ {
		dialIn(t, clk, net, i)
	}
	s := epS.Snapshot()
	if !s.StormActive || s.StormsDetected != 1 {
		t.Fatalf("StormActive=%v StormsDetected=%d after burst", s.StormActive, s.StormsDetected)
	}
	// The first 10 attempts are below the rate and admitted; everything
	// after the detector trips is over the (already-spent) admit cap.
	if s.Accepted != 10 {
		t.Fatalf("Accepted=%d, want 10", s.Accepted)
	}
	if s.ShedStorm != 40 {
		t.Fatalf("ShedStorm=%d, want 40", s.ShedStorm)
	}

	// Drain: a trickle of connects across calm seconds relaxes admission.
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		dialIn(t, clk, net, 100+i)
	}
	s = epS.Snapshot()
	if s.StormActive {
		t.Fatal("storm still active after two calm seconds")
	}
	// The trickle itself was admitted (under the cap while the storm
	// lasted, unrestricted after).
	if s.Accepted != 13 {
		t.Fatalf("Accepted=%d after drain, want 13", s.Accepted)
	}

	// The detector's transitions are in the event ring.
	var sawEnter, sawExit bool
	snap := rec.Snapshot(false)
	for _, e := range snap.Events {
		if e.Kind == telemetry.EventShed {
			switch e.Cause {
			case stormCauseEnter:
				sawEnter = true
			case stormCauseExit:
				sawExit = true
			}
		}
	}
	if !sawEnter || !sawExit {
		t.Fatalf("storm events missing: enter=%v exit=%v", sawEnter, sawExit)
	}
	if rec.GaugeValue(telemetry.GaugeStormActive) != 0 {
		t.Fatal("storm gauge still set")
	}
}

// TestLoadGaugesAndTableAccounting: the occupancy gauges and table-memory
// stats surface endpoint load.
func TestLoadGaugesAndTableAccounting(t *testing.T) {
	clk := newTestClock()
	net := newTestNet(clk)
	rec := telemetry.New(telemetry.Options{Clock: clk})
	epS, err := NewEndpoint(Config{
		Transport: net.Endpoint("S"), Clock: clk, MaxConns: 4,
		Accept:    acceptAll,
		OnConn:    func(c *Conn) { c.OnDeliver(func([]byte) {}) },
		Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epS.Close()
	dialIn(t, clk, net, 0)
	dialIn(t, clk, net, 1)
	if got := rec.GaugeValue(telemetry.GaugeConns); got != 2 {
		t.Fatalf("GaugeConns=%d, want 2", got)
	}
	if got := rec.GaugeValue(telemetry.GaugeOccupancyPct); got != 50 {
		t.Fatalf("GaugeOccupancyPct=%d, want 50", got)
	}
	if got := rec.GaugeValue(telemetry.GaugeTableEntries); got != 2 {
		t.Fatalf("GaugeTableEntries=%d, want 2", got)
	}
	s := epS.Snapshot()
	if s.TableEntries != 2 {
		t.Fatalf("TableEntries=%d, want 2 (one learned cookie per client)", s.TableEntries)
	}
	if s.TableSlots < s.TableEntries || s.TableBytes != s.TableSlots*tableSlotBytes {
		t.Fatalf("TableSlots=%d TableBytes=%d inconsistent", s.TableSlots, s.TableBytes)
	}
	if s.TableBytesPerEntry <= 0 {
		t.Fatal("TableBytesPerEntry not reported")
	}
	snap := rec.Snapshot(false)
	if snap.Gauges["conns"] != 2 {
		t.Fatalf("snapshot gauges = %v", snap.Gauges)
	}
}

// TestShedEventRecorded: the first refusal lands in the event ring (the
// rest are rate-limited), so shedding is observable, not just counted.
func TestShedEventRecorded(t *testing.T) {
	clk := newTestClock()
	net := newTestNet(clk)
	rec := telemetry.New(telemetry.Options{Clock: clk})
	ep, err := NewEndpoint(Config{
		Transport: net.Endpoint("A"), Clock: clk, MaxConns: 1, Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Dial(PeerSpec{Addr: "B", LocalID: []byte("a"), RemoteID: []byte("b"), LocalPort: 1, RemotePort: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Dial(PeerSpec{Addr: "B", LocalID: []byte("a"), RemoteID: []byte("b"), LocalPort: 2, RemotePort: 9}); !errors.Is(err, ErrAdmissionFull) {
		t.Fatalf("err=%v, want ErrAdmissionFull", err)
	}
	snap := rec.Snapshot(false)
	found := false
	for _, e := range snap.Events {
		if e.Kind == telemetry.EventShed && e.Cause == shedCauseFull {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shed event in ring: %+v", snap.Events)
	}
}

// TestShedPolicyString pins the policy names.
func TestShedPolicyString(t *testing.T) {
	for p, want := range map[ShedPolicy]string{
		ShedRejectNew: "reject-new", ShedEvictIdle: "evict-idle",
		ShedEarlyDrop: "early-drop", ShedPolicy(99): "?",
	} {
		if got := p.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

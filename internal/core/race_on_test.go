//go:build race

package core

// raceEnabled reports that this binary carries race-detector
// instrumentation, which allocates on paths that are otherwise
// allocation-free; alloc-budget assertions skip under it.
const raceEnabled = true

package core

import (
	"fmt"
	"math/rand"
	"time"

	"paccel/internal/stack"
	"paccel/internal/telemetry"
)

// Connection recovery: the redial engine that turns Failed from a
// terminal state into a recoverable one. A connection whose supervision
// (or an explicit Fail) declares it dead enters Recovering instead of
// Failed when Config.Recovery enables it, and probes the peer on an
// exponential-backoff schedule with full jitter. Each probe reuses the
// first-message Connection-Identification path (§2.2): it travels with
// the identification attached, so the peer can re-learn our cookie even
// if its router evicted it, and the window layer replays its unacked
// frames the same way — the receiver's sequence space dedupes them, so
// nothing acknowledged or buffered is lost or duplicated across the
// failover. Any datagram that passes the receive filter completes the
// recovery; an exhausted retry budget lands the connection in Failed
// with ErrRecoveryExhausted.

// ErrRecoveryExhausted is the failure cause of a connection whose
// recovery retry budget (Config.Recovery.MaxAttempts) ran out. It is
// wrapped by ErrConnFailed like every other cause, and itself wraps the
// original failure, so errors.Is matches all three.
var ErrRecoveryExhausted = fmt.Errorf("core: recovery attempts exhausted")

// Recovery backoff defaults.
const (
	defaultRecoveryBaseDelay = 50 * time.Millisecond
	defaultRecoverySeed      = 1996
	// recoveryMaxShift caps the backoff doubling so BaseDelay<<k cannot
	// overflow a time.Duration.
	recoveryMaxShift = 20
)

// RecoveryConfig configures the redial engine (Config.Recovery).
// Recovery is enabled when MaxAttempts > 0; the zero value keeps the
// PR 2 behaviour where failure is terminal.
type RecoveryConfig struct {
	// MaxAttempts is the retry budget: the number of probe rounds
	// before the engine gives up and the connection fails for good
	// with ErrRecoveryExhausted. 0 disables recovery entirely.
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first attempt; the
	// ceiling doubles every attempt. The actual delay before attempt k
	// is drawn uniformly from [0, min(MaxDelay, BaseDelay<<k)) — "full
	// jitter", so a thousand connections cut by the same partition do
	// not probe in lockstep when it heals. 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling. 0 means 32×BaseDelay.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic for replayable tests; each
	// connection mixes in its dial order so two connections with the
	// same seed still desynchronize. 0 means a fixed default.
	Seed int64
	// OnRecover observes every completed recovery: the cause that
	// started it and how many probe rounds it took. Runs without the
	// connection lock, so it may use the Conn API.
	OnRecover func(c *Conn, cause error, attempts int)
	// OnGiveUp observes a connection whose retry budget ran out, with
	// the final error (ErrConnFailed wrapping ErrRecoveryExhausted
	// wrapping the original cause). It runs without the connection
	// lock, before OnConnFail fires for the terminal failure.
	OnGiveUp func(c *Conn, err error)
}

// recoveryOn reports whether the redial engine is configured.
func (c *Conn) recoveryOn() bool { return c.ep.cfg.Recovery.MaxAttempts > 0 }

// enterRecoveryLocked moves the connection from Active to Recovering:
// pending post-processing settles, supervision stops (its silence signal
// is what got us here), application sends divert to the backlog under
// the usual backpressure bounds, and the first probe is armed. Caller
// holds c.mu; enterRecoveryLocked releases it and flushes.
func (c *Conn) enterRecoveryLocked(cause error) {
	c.drain(&c.recv)
	c.drain(&c.send)
	if cause == nil {
		cause = ErrConnFailed
	}
	c.recovering = true
	c.recoverCause = cause
	c.recoverAttempt = 0
	c.stats.Recoveries++
	c.tel.Event(telemetry.EventState, c.outCookie, "recovering: "+cause.Error())
	c.stopSupervision()
	if !c.recoverHold {
		c.recoverHold = true
		c.send.disable++
	}
	c.armRecoveryLocked()
	c.mu.Unlock()
	c.flushTx()
}

// armRecoveryLocked schedules the next probe with full-jitter backoff.
// Caller holds c.mu.
func (c *Conn) armRecoveryLocked() {
	d := c.recoveryDelay(c.recoverAttempt)
	c.recoverTimer = c.ep.cfg.clock().AfterFunc(d, c.recoverTick)
}

// recoveryDelay draws the delay before probe round k (0-based):
// uniform over [0, min(MaxDelay, BaseDelay<<k)).
func (c *Conn) recoveryDelay(k int) time.Duration {
	r := &c.ep.cfg.Recovery
	base := r.BaseDelay
	if base <= 0 {
		base = defaultRecoveryBaseDelay
	}
	maxD := r.MaxDelay
	if maxD <= 0 {
		maxD = 32 * base
	}
	if k > recoveryMaxShift {
		k = recoveryMaxShift
	}
	ceil := base << uint(k)
	if ceil <= 0 || ceil > maxD {
		ceil = maxD
	}
	return time.Duration(c.recoverRng.Int63n(int64(ceil)))
}

// recoverTick is one probe round. Like superviseTick it takes the lock
// itself: it runs on a clock goroutine, not under AfterFunc's
// connection-lock wrapper (which skips failed connections and must not
// gate recovery).
func (c *Conn) recoverTick() {
	c.mu.Lock()
	if c.closed || !c.recovering {
		c.mu.Unlock()
		return
	}
	c.recoverTimer = nil
	r := &c.ep.cfg.Recovery
	if c.recoverAttempt >= r.MaxAttempts {
		cause := c.recoverCause
		attempts := c.recoverAttempt
		c.cancelRecoveryLocked()
		err := c.failLocked(fmt.Errorf("%w after %d attempts: %w",
			ErrRecoveryExhausted, attempts, cause)) // releases c.mu
		if cb := r.OnGiveUp; cb != nil {
			cb(c, err)
		}
		return
	}
	c.recoverAttempt++
	c.stats.RecoveryProbes++
	c.tel.Event(telemetry.EventResume, c.outCookie, "resume probe")
	t0 := c.telStartAlways()
	c.resumeProbeLocked()
	c.settle()
	c.telEnd(telemetry.OpProbe, t0)
	c.armRecoveryLocked()
	c.mu.Unlock()
	c.flushTx()
}

// resumeProbeLocked runs the session-resumption handshake: every
// resumable layer re-sends what the peer needs (the window layer sends
// an identified probe and replays unacked frames). The next ordinary
// message is marked to carry the connection identification too, so a
// stack with no resumable layer still re-identifies — the first-message
// path of §2.2 is the resume path. Caller holds c.mu.
func (c *Conn) resumeProbeLocked() {
	c.needConnID = true
	for _, l := range c.st.Layers() {
		if r, ok := l.(stack.Resumer); ok {
			r.Resume()
		}
	}
}

// cancelRecoveryLocked clears the recovering state: timer stopped, the
// send hold released (the backlog is kicked by the caller's settle, or
// freed by a terminal failLocked). Caller holds c.mu.
func (c *Conn) cancelRecoveryLocked() {
	c.recovering = false
	c.recoverCause = nil
	if c.recoverTimer != nil {
		c.recoverTimer.Stop()
		c.recoverTimer = nil
	}
	if c.recoverHold {
		c.recoverHold = false
		if c.send.disable > 0 {
			c.send.disable--
		}
	}
}

// finishRecoveryLocked completes a recovery — the peer was heard from
// again. Supervision restarts and the backlog accumulated while
// recovering drains on the caller's settle pass. It returns the
// OnRecover notification for the caller to run after releasing c.mu
// (callbacks never run under the connection lock). Caller holds c.mu.
func (c *Conn) finishRecoveryLocked() func() {
	cause := c.recoverCause
	attempts := c.recoverAttempt
	c.cancelRecoveryLocked()
	c.stats.Recovered++
	c.tel.Event(telemetry.EventState, c.outCookie, "active (recovered)")
	c.startSupervisionLocked()
	cb := c.ep.cfg.Recovery.OnRecover
	if cb == nil {
		return nil
	}
	return func() { cb(c, cause, attempts) }
}

// newRecoveryRng seeds a connection's jitter source: the configured
// seed (reproducible schedules) mixed with the connection's dial order
// (two connections sharing a seed still desynchronize).
func newRecoveryRng(ep *Endpoint, connSeq uint64) *rand.Rand {
	seed := ep.cfg.Recovery.Seed
	if seed == 0 {
		seed = defaultRecoverySeed
	}
	seed += int64(connSeq * 0x9E3779B97F4A7C15)
	return rand.New(rand.NewSource(seed))
}

package core

import (
	"encoding/binary"
	"fmt"
)

// Message packing (§3.4): when lazy post-processing creates a backlog, the
// PA packs the waiting messages into one message — one pre/post cycle for
// many application messages — and the receiving PA unpacks them before
// delivery. Every PA message carries a Packing header (Fig. 1) describing
// how it is packed.
//
// Wire form (all varints are unsigned LEB128, via encoding/binary):
//
//	mode 0: single unpacked message; nothing follows.
//	mode 1: uniform packing — varint count, varint size. The paper's
//	        current PA "only packs together messages of the same size".
//	mode 2: general packing — varint count, then count varint sizes, the
//	        "more sophisticated header, such as used in the original
//	        Horus system".
const (
	packSingle  = 0
	packUniform = 1
	packGeneral = 2
)

// encodePacking appends the packing header for the given message sizes.
// len(sizes) == 1 encodes the single-message form regardless of the size
// value (the payload length is implicit).
func encodePacking(dst []byte, sizes []int) []byte {
	if len(sizes) <= 1 {
		return append(dst, packSingle)
	}
	uniform := true
	for _, s := range sizes[1:] {
		if s != sizes[0] {
			uniform = false
			break
		}
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v int) {
		n := binary.PutUvarint(buf[:], uint64(v))
		dst = append(dst, buf[:n]...)
	}
	if uniform {
		dst = append(dst, packUniform)
		put(len(sizes))
		put(sizes[0])
		return dst
	}
	dst = append(dst, packGeneral)
	put(len(sizes))
	for _, s := range sizes {
		put(s)
	}
	return dst
}

// maxPacked bounds the number of sub-messages a packing header may claim,
// protecting the decoder against hostile input.
const maxPacked = 1 << 16

// decodePacking parses a packing header at the start of b. It returns the
// sub-message sizes (nil for an unpacked message) and the header length.
// payloadLen is the number of bytes that follow the header; the sizes must
// sum to it exactly.
func decodePacking(b []byte) (sizes []int, hdrLen int, err error) {
	if len(b) < 1 {
		return nil, 0, fmt.Errorf("core: missing packing header")
	}
	mode := b[0]
	off := 1
	get := func() (int, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, fmt.Errorf("core: truncated packing header")
		}
		off += n
		return int(v), nil
	}
	switch mode {
	case packSingle:
		return nil, 1, nil
	case packUniform:
		count, err := get()
		if err != nil {
			return nil, 0, err
		}
		size, err := get()
		if err != nil {
			return nil, 0, err
		}
		if count < 1 || count > maxPacked || size < 0 {
			return nil, 0, fmt.Errorf("core: invalid packing header (count %d, size %d)", count, size)
		}
		sizes = make([]int, count)
		for i := range sizes {
			sizes[i] = size
		}
		return sizes, off, nil
	case packGeneral:
		count, err := get()
		if err != nil {
			return nil, 0, err
		}
		if count < 1 || count > maxPacked {
			return nil, 0, fmt.Errorf("core: invalid packing count %d", count)
		}
		sizes = make([]int, count)
		for i := range sizes {
			if sizes[i], err = get(); err != nil {
				return nil, 0, err
			}
			if sizes[i] < 0 {
				return nil, 0, fmt.Errorf("core: negative packed size")
			}
		}
		return sizes, off, nil
	default:
		return nil, 0, fmt.Errorf("core: unknown packing mode %d", mode)
	}
}

// checkPackedSizes verifies that the decoded sizes exactly cover a payload
// of the given length.
func checkPackedSizes(sizes []int, payloadLen int) error {
	if sizes == nil {
		return nil
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != payloadLen {
		return fmt.Errorf("core: packed sizes sum to %d, payload is %d", total, payloadLen)
	}
	return nil
}

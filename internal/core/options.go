package core

import (
	"time"

	"paccel/internal/bits"
	"paccel/internal/layers"
	"paccel/internal/stack"
	"paccel/internal/telemetry"
	"paccel/internal/vclock"
)

// Transport is the unreliable datagram interface the PA runs over — the
// U-Net contract of the paper. Both netsim.Endpoint and udp.Transport
// satisfy it.
//
// Buffer ownership: the datagram slice passed to the handler is only
// valid for the duration of the call — transports recycle their receive
// buffers, so the handler must copy anything it retains (the engine's
// router copies into a pooled message immediately). Transports may invoke
// the handler concurrently from multiple goroutines; the engine's router
// is safe for concurrent receives and serializes per connection only.
type Transport interface {
	// Send transmits one datagram; delivery is unreliable. The datagram
	// is owned by the caller again once Send returns (implementations
	// copy what they queue).
	Send(dst string, datagram []byte) error
	// SetHandler installs the receive callback.
	SetHandler(h func(src string, datagram []byte))
	// LocalAddr names this endpoint.
	LocalAddr() string
	// Close shuts the transport down.
	Close() error
}

// BatchTransport is optionally implemented by transports that can
// transmit a burst of datagrams in one call — Linux sendmmsg on the UDP
// transport, deterministic burst delivery on netsim. The engine's
// transmit flush detects it once at endpoint construction and drains the
// whole tx queue per call instead of paying one Send per wire image.
//
// Contract: the datagrams are transmitted in slice order, and sent is how
// many of them were — always a prefix. A non-nil err describes a failure
// of the datagram at index sent; the datagrams after it were not
// attempted, and err == nil implies sent == len(datagrams). Loss on an
// unreliable link is not an error: a datagram the transport accepted and
// then dropped counts as sent. Buffer ownership matches Send — every
// datagram is the caller's again once SendBatch returns.
type BatchTransport interface {
	Transport
	SendBatch(dst string, datagrams [][]byte) (sent int, err error)
}

// BatchToTransport is optionally implemented by transports that can
// transmit a burst of datagrams with per-datagram destinations in one
// call — the group-fanout shape, where every datagram of the burst goes
// to a different member. On the Linux UDP transport one sendmmsg call
// carries the whole burst (each header with its own sockaddr); netsim
// and the topology deliver the burst in order. The fanout engine detects
// it once at endpoint construction, like BatchTransport.
//
// Contract: dsts and datagrams are parallel slices of equal length;
// datagrams are transmitted in slice order, and sent is how many of
// them were — always a prefix. A non-nil err describes a failure of the
// datagram at index sent (its destination is dsts[sent]); the datagrams
// after it were not attempted, and err == nil implies
// sent == len(datagrams). Loss on an unreliable link is not an error.
// Buffer ownership matches Send — every datagram is the caller's again
// once SendBatchTo returns.
type BatchToTransport interface {
	Transport
	SendBatchTo(dsts []string, datagrams [][]byte) (sent int, err error)
}

// RecvBatcher is optionally implemented by transports whose receive path
// is vectorized (Linux recvmmsg): RecvBatchStats reports how many batched
// reads have completed and how many datagrams they carried.
// Endpoint.Stats folds the counters into its snapshot.
type RecvBatcher interface {
	RecvBatchStats() (batches, datagrams uint64)
}

// MultiQueueTransport is optionally implemented by transports whose
// receive path is sharded across several independent sockets/read loops
// (udp.ListenSharded's SO_REUSEPORT queues). The endpoint detects it
// once at construction, like BatchTransport, and Snapshot reports the
// queue count plus per-queue receive counters so load imbalance across
// the kernel's flow hash stays observable.
type MultiQueueTransport interface {
	// NumQueues reports how many receive queues the transport runs.
	NumQueues() int
	// QueueRecvStats reports queue i's completed batched reads and the
	// datagrams they carried (i in [0, NumQueues)).
	QueueRecvStats(i int) (batches, datagrams uint64)
}

// Coalescer is optionally implemented by transports whose batch send
// path can merge a run of equal-size datagrams into one kernel
// super-datagram (UDP_SEGMENT). When Coalescible reports true, the
// engine's flush path groups the drained tx queue's equal-size datagrams
// into contiguous runs before SendBatch, so interleaved traffic from
// packing/fragmentation still presents the shape the offload needs. The
// report may change over the transport's life (a path-MTU refusal
// disables the offload), so the flush path re-checks per drain.
type Coalescer interface {
	Coalescible() bool
}

// PeerSpec identifies one connection: the peer's network address plus the
// connection identification both sides agree on (§2.1 class 1).
type PeerSpec struct {
	// Addr is the transport address of the peer.
	Addr string
	// LocalID and RemoteID are the endpoint identifiers (at most
	// layers.EndpointIDLen bytes).
	LocalID, RemoteID []byte
	// LocalPort and RemotePort demultiplex connections between the same
	// endpoints.
	LocalPort, RemotePort uint16
	// Epoch distinguishes incarnations of the connection.
	Epoch uint32

	// OutCookie fixes the outgoing connection cookie; 0 draws a random
	// one (the paper's behaviour).
	OutCookie uint64
	// ExpectInCookie pre-registers the peer's cookie, the §2.2
	// "agree on a cookie before starting to use it" alternative. 0
	// means the cookie is learned from the first identified message.
	ExpectInCookie uint64
	// SkipFirstConnID suppresses the connection identification on the
	// first message; only safe together with a cookie agreement.
	SkipFirstConnID bool
}

// StackBuilder constructs the protocol stack for a new connection, top
// layer first. The stack must contain an identification layer (one whose
// layer implements Identifier, normally *layers.Ident) for routing.
type StackBuilder func(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error)

// Identifier is implemented by the stack's connection-identification
// layer; the engine uses it for routing and identification parsing.
type Identifier interface {
	stack.Layer
	ExpectedIncoming(hdrSize int, peerOrder bits.ByteOrder) []byte
	ParseIncoming(hdr []byte, order bits.ByteOrder) layers.IdentInfo
}

// DefaultStack is the paper's measured four-layer configuration: checksum
// integrity, fragmentation, a 16-entry sliding window, and connection
// identification.
func DefaultStack(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
	return []stack.Layer{
		layers.NewChksum(),
		layers.NewFrag(),
		layers.NewWindow(),
		&layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		},
	}, nil
}

// Config configures an Endpoint. Transport is required; everything else
// has working defaults.
type Config struct {
	// Transport carries the PA's datagrams.
	Transport Transport
	// Clock drives timers and timestamps; nil means the real clock.
	Clock vclock.Clock
	// Order is this host's native byte order for header fields.
	Order bits.ByteOrder
	// Build constructs each connection's stack; nil means DefaultStack.
	// All connections of one endpoint must produce the same stack
	// shape (same layers in the same order), a routing requirement.
	Build StackBuilder
	// Accept, if non-nil, is consulted when an identified message
	// arrives for an unknown connection: return the spec for a new
	// connection and true to accept it. The new connection is handed to
	// OnConn.
	Accept func(remote layers.IdentInfo, netSrc string) (PeerSpec, bool)
	// OnConn observes every connection created by Accept.
	OnConn func(*Conn)
	// LazyPost defers post-processing past the end of each operation:
	// pending work runs before the connection's next operation in the
	// same direction (the §3.1 guarantee), on an explicit Flush, or on
	// the background drainer. The default (false) drains at the end of
	// each operation, after transmission and delivery — still off the
	// critical path, but without unbounded deferral.
	LazyPost bool
	// IdleDrain, with LazyPost, starts a background drainer per
	// connection that runs pending post-processing when the application
	// is idle — the paper's "executed, as much as possible, when the
	// application is idle or blocked" (§1). Without it, LazyPost relies
	// on the next operation or an explicit Flush.
	IdleDrain bool
	// CompiledFilters runs packet filters through the closure compiler
	// instead of the interpreter (the Exokernel-style optimization).
	CompiledFilters bool
	// SingleLockRouter routes every incoming datagram through one
	// exclusive endpoint lock instead of the sharded cookie table — the
	// pre-sharding router, kept as a benchmarking ablation so the
	// contention cost stays measurable (BenchmarkEndpointParallelRecv).
	// Never set it in production configurations.
	SingleLockRouter bool
	// PackSameSizeOnly restricts message packing to runs of equal-sized
	// messages, the paper's current PA. Default false: general packing.
	PackSameSizeOnly bool
	// MaxBacklog bounds the send backlog; 0 means 1024. A send that
	// finds the window closed and the backlog at the bound returns
	// ErrBacklogFull (which wraps ErrBackpressure) — or blocks, with
	// BlockOnBackpressure — instead of growing memory without limit.
	MaxBacklog int
	// BlockOnBackpressure makes Send block until backlog space frees
	// (or the connection closes or fails) instead of returning
	// ErrBacklogFull.
	BlockOnBackpressure bool
	// MaxPendingPost bounds each direction's deferred post-processing
	// queue under LazyPost; past the bound the engine degrades to
	// draining inline (counted in ConnStats.PostOverflows) rather than
	// deferring without limit. 0 means 4096.
	MaxPendingPost int
	// PeerTimeout enables dead-peer detection: a connection that hears
	// nothing from its peer for a full PeerTimeout interval moves to the
	// Failed state with ErrPeerSilent, surfaced via OnConnFail and the
	// Conn State/Err API. Detection costs one counter increment per
	// delivery and one timer per connection; latency is between one and
	// two intervals. 0 disables.
	PeerTimeout time.Duration
	// OnConnFail observes every connection entering the Failed state,
	// with the failure cause. It runs without the connection lock, so it
	// may use the Conn API (typically to Close it).
	OnConnFail func(*Conn, error)
	// Recovery configures the redial engine (recovery.go): with
	// MaxAttempts > 0, a connection that would fail enters the
	// Recovering state instead and probes the peer on an exponential-
	// backoff schedule with full jitter, resuming the session through
	// the identified first-message path (§2.2). The zero value keeps
	// failure terminal.
	Recovery RecoveryConfig
	// MaxConns is the hard capacity of the endpoint: the maximum number
	// of live connections (dialed or accepted). At capacity, new
	// connections are refused with ErrAdmissionFull (or handled by the
	// configured shed policy) before anything is allocated for them.
	// 0 means DefaultMaxConns.
	MaxConns int
	// Admission tunes the overload-protection machinery on the
	// new-connection path: shed policy, early-drop ramp, storm
	// detection. The zero value rejects new connections at MaxConns and
	// never sheds below capacity. See DESIGN.md §14.
	Admission AdmissionConfig
	// GCSweepBudget bounds how many routing-table slots one CookieTTL GC
	// sweep examines; larger tables are covered by proportionally more
	// frequent sweeps instead of longer ones, keeping the sweep pause
	// bounded at any table size. 0 means 4096.
	GCSweepBudget int
	// CookieTTL enables garbage collection of learned cookie routes: a
	// learned binding idle for more than the TTL (at most 1.5×TTL) is
	// evicted from the router (EndpointStats.CookiesEvicted), bounding
	// router memory under peer churn. A live peer recovers on its next
	// identified message, which re-learns the cookie (§2.2). Pre-agreed
	// cookies (PeerSpec.ExpectInCookie) are never evicted. 0 disables.
	CookieTTL time.Duration
	// MaxPack bounds how many messages one packed message may carry;
	// 0 means 64.
	MaxPack int
	// MaxPackBytes bounds a packed message's total payload; it must not
	// exceed the stack's fragmentation threshold, or the fragmenter
	// would split the packed message and reassembly would lose the
	// packing structure. 0 means layers.DefaultFragThreshold.
	MaxPackBytes int
	// Telemetry, if non-nil, receives latency histograms for the
	// critical-path operations (send pre-processing, lazy drains,
	// delivery, batch flushes, recovery probes) and structured
	// connection events (state transitions, faults, migrations,
	// resumptions). Nil disables recording; the instrumented paths then
	// cost one predictable nil-check branch and never read the clock
	// (see DESIGN.md §12 for the overhead contract).
	Telemetry *telemetry.Recorder
	// TelemetrySampleEvery records the duration of one in every N
	// critical-path operations per connection (rounded up to a power of
	// two); events are never sampled. Duration spans cost two wall-clock
	// reads, which is measurable against a sub-microsecond fast path, so
	// the default samples 1 in 8 — dense enough for live percentiles,
	// cheap enough to leave on. 1 records every operation. 0 means 8.
	TelemetrySampleEvery int
}

func (c *Config) clock() vclock.Clock {
	if c.Clock == nil {
		return vclock.Real{}
	}
	return c.Clock
}

func (c *Config) build() StackBuilder {
	if c.Build == nil {
		return DefaultStack
	}
	return c.Build
}

func (c *Config) maxBacklog() int {
	if c.MaxBacklog <= 0 {
		return 1024
	}
	return c.MaxBacklog
}

// DefaultMaxConns is the endpoint capacity when Config.MaxConns is 0 —
// the million-connection target of the churn work, ISSUE/ROADMAP item 2.
const DefaultMaxConns = 1 << 20

func (c *Config) maxConns() int {
	if c.MaxConns <= 0 {
		return DefaultMaxConns
	}
	return c.MaxConns
}

func (c *Config) gcSweepBudget() int {
	if c.GCSweepBudget <= 0 {
		return 4096
	}
	return c.GCSweepBudget
}

func (c *Config) maxPendingPost() int {
	if c.MaxPendingPost <= 0 {
		return 4096
	}
	return c.MaxPendingPost
}

func (c *Config) maxPack() int {
	if c.MaxPack <= 0 {
		return 64
	}
	return c.MaxPack
}

func (c *Config) maxPackBytes() int {
	if c.MaxPackBytes <= 0 {
		return layers.DefaultFragThreshold
	}
	return c.MaxPackBytes
}

// telemetrySampleMask resolves TelemetrySampleEvery to a power-of-two
// sampling mask (count&mask == 0 selects the sampled operations).
func (c *Config) telemetrySampleMask() uint32 {
	n := c.TelemetrySampleEvery
	if n <= 0 {
		n = 8
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return uint32(p - 1)
}

// Mode is the operation state of one PA side (paper Table 3).
type Mode uint8

// Table 3 modes.
const (
	Idle Mode = iota
	Pre
	Post
)

// String returns the Table 3 name of the mode.
func (m Mode) String() string {
	switch m {
	case Idle:
		return "IDLE"
	case Pre:
		return "PRE"
	case Post:
		return "POST"
	}
	return "?"
}

// ConnStats counts per-connection PA events. Fast* are critical-path
// operations that bypassed the protocol stack entirely; Slow* fell back to
// layered processing.
type ConnStats struct {
	Sent          uint64 // application messages accepted for sending
	FastSends     uint64
	SlowSends     uint64
	Backlogged    uint64 // sends queued while prediction was disabled
	PackedBatches uint64 // packed messages transmitted
	PackedMsgs    uint64 // application messages carried inside them

	Delivered    uint64 // application messages handed up
	FastDelivers uint64
	SlowDelivers uint64
	Consumed     uint64 // absorbed by a layer (acks, fragments, keepalives)
	Dropped      uint64 // filter or layer verdicts

	ConnIDSent    uint64 // messages that carried the identification
	PostRuns      uint64 // post-processing tasks executed
	PostOverflows uint64 // lazy post queue hit MaxPendingPost; drained inline
	ControlMsgs   uint64 // layer-generated messages transmitted
	Retransmits   uint64 // raw retransmissions

	Recoveries     uint64 // times the connection entered Recovering
	Recovered      uint64 // recoveries completed (peer heard again)
	RecoveryProbes uint64 // probe rounds sent while recovering
	PeerMigrations uint64 // route rewrites following the peer's address

	SendErrors uint64
}

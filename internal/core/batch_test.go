package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/faultinject"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/udp"
	"paccel/internal/vclock"
)

// TestFlushTxBatchesBurst drives a deterministic burst through flushTx
// and checks it leaves as one SendBatch: sends are backlogged behind a
// disabled gate, then released with MaxPack 1 so each becomes its own
// wire image, and one Flush drains all of them through the batch path.
func TestFlushTxBatchesBurst(t *testing.T) {
	const burst = 8
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.MaxPack = 1 // one wire image per message: the burst is a tx-queue burst, not a packed message
	})

	r.a.mu.Lock()
	r.a.DisableSend()
	r.a.mu.Unlock()
	for i := 0; i < burst; i++ {
		if err := r.a.Send([]byte(fmt.Sprintf("burst-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.fromA.count(); got != 0 {
		t.Fatalf("delivered %d messages while sending was disabled", got)
	}
	r.a.mu.Lock()
	r.a.EnableSend()
	r.a.mu.Unlock()
	r.a.Flush()

	if got := r.fromA.count(); got != burst {
		t.Fatalf("delivered %d messages, want %d", got, burst)
	}
	for i := 0; i < burst; i++ {
		if want := fmt.Sprintf("burst-%d", i); string(r.fromA.get(i)) != want {
			t.Fatalf("message %d = %q, want %q", i, r.fromA.get(i), want)
		}
	}
	st := r.epA.Snapshot()
	if st.BatchSends != 1 {
		t.Fatalf("BatchSends = %d, want 1 (one flushTx drain for the whole burst)", st.BatchSends)
	}
	if st.BatchDatagrams != burst {
		t.Fatalf("BatchDatagrams = %d, want %d", st.BatchDatagrams, burst)
	}
	if st.DatagramsPerBatch != burst {
		t.Fatalf("DatagramsPerBatch = %v, want %v", st.DatagramsPerBatch, float64(burst))
	}
	if st.TxErrors != 0 {
		t.Fatalf("TxErrors = %d, want 0", st.TxErrors)
	}
	if ns := r.net.Stats(); ns.BatchSends < 1 || ns.BatchDatagrams < burst {
		t.Fatalf("netsim saw BatchSends=%d BatchDatagrams=%d, want >=1/>=%d",
			ns.BatchSends, ns.BatchDatagrams, burst)
	}
}

// unorderedStack is the default stack minus the window layer: no acks, no
// ordering, no retransmission. Batch-error tests use it so a datagram the
// transport rejects stays missing instead of being retransmitted.
func unorderedStack(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
	return []stack.Layer{
		layers.NewChksum(),
		layers.NewFrag(),
		&layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		},
	}, nil
}

// flakyBatchTransport wraps a transport with a SendBatch that fails its
// first batch at a chosen index, transmitting only the datagrams before
// it — the shape of a mid-batch sendmmsg failure.
type flakyBatchTransport struct {
	Transport
	failAt int
	failed bool
}

func (f *flakyBatchTransport) SendBatch(dst string, datagrams [][]byte) (int, error) {
	if !f.failed && f.failAt < len(datagrams) {
		f.failed = true
		for i := 0; i < f.failAt; i++ {
			if err := f.Transport.Send(dst, datagrams[i]); err != nil {
				return i, err
			}
		}
		return f.failAt, errors.New("flaky: datagram rejected")
	}
	for i, d := range datagrams {
		if err := f.Transport.Send(dst, d); err != nil {
			return i, err
		}
	}
	return len(datagrams), nil
}

// TestBatchSendErrorSkipsFailedDatagram checks the flushTx contract
// around a mid-batch failure: exactly the failed datagram is charged to
// TxErrors and skipped, and the rest of the burst still goes out —
// batched, not demoted to a per-datagram loop.
func TestBatchSendErrorSkipsFailedDatagram(t *testing.T) {
	const burst, failAt = 8, 2
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	ft := &flakyBatchTransport{Transport: net.Endpoint("A"), failAt: failAt}
	epA, err := NewEndpoint(Config{Transport: ft, Clock: clk, Build: unorderedStack, MaxPack: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk, Build: unorderedStack})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	delivered := &sink{}
	b.OnDeliver(delivered.add)

	a.mu.Lock()
	a.DisableSend()
	a.mu.Unlock()
	for i := 0; i < burst; i++ {
		if err := a.Send([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	a.mu.Lock()
	a.EnableSend()
	a.mu.Unlock()
	a.Flush()

	st := epA.Snapshot()
	if st.TxErrors != 1 {
		t.Fatalf("TxErrors = %d, want 1", st.TxErrors)
	}
	if st.BatchSends != 2 {
		t.Fatalf("BatchSends = %d, want 2 (failed batch + resumed remainder)", st.BatchSends)
	}
	if want := uint64(burst - 1); st.BatchDatagrams != want {
		t.Fatalf("BatchDatagrams = %d, want %d", st.BatchDatagrams, want)
	}
	if got := a.Stats().SendErrors; got != 1 {
		t.Fatalf("conn SendErrors = %d, want 1", got)
	}
	// Without a window layer nothing retransmits: exactly the rejected
	// datagram is missing, and everything after it was still delivered.
	if got := delivered.count(); got != burst-1 {
		t.Fatalf("delivered %d messages, want %d", got, burst-1)
	}
	for i, want := 0, 0; want < burst; want++ {
		if want == failAt {
			continue
		}
		if exp := fmt.Sprintf("msg-%d", want); string(delivered.get(i)) != exp {
			t.Fatalf("message %d = %q, want %q", i, delivered.get(i), exp)
		}
		i++
	}
}

// errTransport is a plain (non-batching) transport whose every Send
// fails; it exercises the unbatched error-counting path.
type errTransport struct{ sends int }

func (e *errTransport) Send(dst string, datagram []byte) error {
	e.sends++
	return errors.New("errTransport: down")
}
func (e *errTransport) SetHandler(func(src string, datagram []byte)) {}
func (e *errTransport) LocalAddr() string                            { return "err" }
func (e *errTransport) Close() error                                 { return nil }

// TestUnbatchedSendErrorsCounted checks that per-datagram Send failures
// on a transport without SendBatch land in EndpointStats.TxErrors.
func TestUnbatchedSendErrorsCounted(t *testing.T) {
	tr := &errTransport{}
	ep, err := NewEndpoint(Config{Transport: tr, Clock: vclock.NewManual(t0), Build: unorderedStack})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	sa, _ := specAB()
	conn, err := ep.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := conn.Send([]byte("doomed")); err != nil {
			t.Fatal(err) // transport errors surface in stats, not from Send
		}
	}
	if got := ep.Snapshot().TxErrors; got != 3 {
		t.Fatalf("TxErrors = %d, want 3", got)
	}
	if got := conn.Stats().SendErrors; got != 3 {
		t.Fatalf("conn SendErrors = %d, want 3", got)
	}
	if tr.sends != 3 {
		t.Fatalf("transport saw %d sends, want 3", tr.sends)
	}
}

// TestBatchFaultDropEndToEnd runs a burst through the whole engine over
// a fault injector that drops one datagram mid-batch: exactly that
// message is missing at the far side and its neighbours are intact.
func TestBatchFaultDropEndToEnd(t *testing.T) {
	const burst, dropNth = 8, 3
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	ft := faultinject.New(net.Endpoint("A"), clk, 0,
		faultinject.Rule{Kind: faultinject.Drop, Direction: faultinject.Send, Nth: dropNth})
	epA, err := NewEndpoint(Config{Transport: ft, Clock: clk, Build: unorderedStack, MaxPack: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk, Build: unorderedStack})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	delivered := &sink{}
	b.OnDeliver(delivered.add)

	a.mu.Lock()
	a.DisableSend()
	a.mu.Unlock()
	for i := 0; i < burst; i++ {
		if err := a.Send([]byte(fmt.Sprintf("e2e-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	a.mu.Lock()
	a.EnableSend()
	a.mu.Unlock()
	a.Flush()

	if got := delivered.count(); got != burst-1 {
		t.Fatalf("delivered %d messages, want %d", got, burst-1)
	}
	for i, want := 0, 0; want < burst; want++ {
		if want == dropNth-1 {
			continue
		}
		if exp := fmt.Sprintf("e2e-%d", want); string(delivered.get(i)) != exp {
			t.Fatalf("message %d = %q, want %q", i, delivered.get(i), exp)
		}
		i++
	}
	// An injected drop is loss, not a transport failure.
	if got := epA.Snapshot().TxErrors; got != 0 {
		t.Fatalf("TxErrors = %d, want 0 (injected loss is not an error)", got)
	}
	if st := epA.Snapshot(); st.BatchSends != 1 || st.BatchDatagrams != burst {
		t.Fatalf("BatchSends=%d BatchDatagrams=%d, want 1/%d", st.BatchSends, st.BatchDatagrams, burst)
	}
}

// batchStress is the PR-1 stress shape with bursty senders: two
// goroutines per connection push blocking sends at one echo server, so
// wire images pile into the tx queue while flushTx holds txBusy and the
// drain leaves through SendBatch. Run under -race.
func batchStress(t *testing.T, nConns, msgs int, clientTransport func(i int) Transport, serverTransport Transport, serverAddr string) {
	t.Helper()
	errCh := make(chan error, nConns*4)
	reportErr := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	server, err := NewEndpoint(echoServerConfig(serverTransport, reportErr))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	var wg sync.WaitGroup
	clients := make([]*Endpoint, 0, nConns)
	for i := 0; i < nConns; i++ {
		ep, err := NewEndpoint(Config{Transport: clientTransport(i), BlockOnBackpressure: true})
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		clients = append(clients, ep)
		conn, err := ep.Dial(PeerSpec{
			Addr:    serverAddr,
			LocalID: []byte(fmt.Sprintf("bat%02d", i)), RemoteID: []byte("srv"),
			LocalPort: uint16(300 + i), RemotePort: 1, Epoch: 1,
		})
		if err != nil {
			t.Fatal(err)
		}

		var echoes atomic.Int64
		done := make(chan struct{})
		conn.OnDeliver(func([]byte) {
			if echoes.Add(1) == int64(msgs) {
				close(done)
			}
		})
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(i, g int) {
				defer wg.Done()
				payload := []byte(fmt.Sprintf("batch-%02d-payload", i))
				for j := 0; j < msgs/2; j++ {
					if err := conn.Send(payload); err != nil {
						reportErr(fmt.Errorf("conn %d sender %d: %w", i, g, err))
						return
					}
				}
			}(i, g)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				reportErr(fmt.Errorf("conn %d: timeout with %d/%d echoes", i, echoes.Load(), msgs))
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := server.Snapshot()
	t.Logf("server: BatchSends=%d BatchDatagrams=%d (%.2f/batch) BatchRecvs=%d RecvDatagrams=%d",
		st.BatchSends, st.BatchDatagrams, st.DatagramsPerBatch, st.BatchRecvs, st.RecvDatagrams)
	var cli EndpointStats
	for _, ep := range clients {
		cs := ep.Snapshot()
		cli.BatchSends += cs.BatchSends
		cli.BatchDatagrams += cs.BatchDatagrams
		cli.TxErrors += cs.TxErrors
	}
	t.Logf("clients: BatchSends=%d BatchDatagrams=%d TxErrors=%d",
		cli.BatchSends, cli.BatchDatagrams, cli.TxErrors)
	if cli.TxErrors != 0 {
		t.Fatalf("clients recorded %d TxErrors over a healthy transport", cli.TxErrors)
	}
}

// TestBatchStressNetsim hammers the batched flush over the in-memory
// network: deliveries run on the senders' goroutines, so SendBatch,
// the router, and the echo path race for 8 connections.
func TestBatchStressNetsim(t *testing.T) {
	msgs := 400
	if testing.Short() {
		msgs = 50
	}
	net := netsim.New(vclock.Real{}, netsim.Config{})
	batchStress(t, 8, msgs,
		func(i int) Transport { return net.Endpoint(fmt.Sprintf("bc%d", i)) },
		net.Endpoint("bsrv"), "bsrv")
}

// TestBatchStressUDP is the same hammer over real UDP loopback: on Linux
// the bursts leave through sendmmsg and arrive through the recvmmsg ring.
func TestBatchStressUDP(t *testing.T) {
	msgs := 100
	if testing.Short() {
		msgs = 20
	}
	serverT, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	batchStress(t, 8, msgs,
		func(i int) Transport {
			tr, err := udp.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
		serverT, serverT.LocalAddr())
}

package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"paccel/internal/faultinject"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

func TestFailIsTypedAndTerminal(t *testing.T) {
	var failMu sync.Mutex
	var failed []error
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.OnConnFail = func(c *Conn, err error) {
			failMu.Lock()
			failed = append(failed, err)
			failMu.Unlock()
		}
	})
	if r.a.State() != StateActive || r.a.Err() != nil {
		t.Fatalf("fresh conn: state=%v err=%v", r.a.State(), r.a.Err())
	}

	boom := errors.New("boom")
	r.a.Fail(boom)
	r.a.Fail(boom) // idempotent

	if r.a.State() != StateFailed {
		t.Fatalf("state = %v", r.a.State())
	}
	err := r.a.Err()
	if !errors.Is(err, ErrConnFailed) || !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want wrap of ErrConnFailed and the cause", err)
	}
	if serr := r.a.Send([]byte("x")); !errors.Is(serr, ErrConnFailed) {
		t.Fatalf("Send on failed conn = %v", serr)
	}
	failMu.Lock()
	n := len(failed)
	failMu.Unlock()
	if n != 1 {
		t.Fatalf("OnConnFail ran %d times, want 1", n)
	}

	// Late datagrams for the failed conn are dropped and counted, not
	// delivered and not router noise.
	before := r.a.Stats()
	if err := r.b.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	after := r.a.Stats()
	if after.Dropped != before.Dropped+1 {
		t.Fatalf("Dropped %d -> %d, want +1", before.Dropped, after.Dropped)
	}
	if after.Delivered != before.Delivered {
		t.Fatal("failed conn delivered a message")
	}

	if err := r.a.Close(); err != nil {
		t.Fatal(err)
	}
	if r.a.State() != StateClosed {
		t.Fatalf("state after close = %v", r.a.State())
	}
}

func TestDeadPeerDetection(t *testing.T) {
	const timeout = 100 * time.Millisecond
	var failMu sync.Mutex
	var cause error
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.PeerTimeout = timeout
		cfgA.OnConnFail = func(c *Conn, err error) {
			failMu.Lock()
			cause = err
			failMu.Unlock()
		}
	})

	// Live traffic (B's acks count) keeps supervision quiet across many
	// intervals.
	for i := 0; i < 6; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.settleNet(timeout / 2)
	}
	if r.a.State() != StateActive {
		t.Fatalf("live conn failed: %v", r.a.Err())
	}

	// Silence for two full intervals trips the detector.
	r.settleNet(2 * timeout)
	if r.a.State() != StateFailed {
		t.Fatal("silent peer not detected")
	}
	failMu.Lock()
	err := cause
	failMu.Unlock()
	if !errors.Is(err, ErrPeerSilent) || !errors.Is(err, ErrConnFailed) {
		t.Fatalf("failure cause = %v, want ErrPeerSilent wrapping ErrConnFailed", err)
	}
	// B has no PeerTimeout configured and must be unaffected.
	if r.b.State() != StateActive {
		t.Fatalf("B state = %v", r.b.State())
	}
}

// cookieCount sums the live entries of the sharded router.
func cookieCount(ep *Endpoint) int {
	n := 0
	for i := range ep.shards {
		sh := &ep.shards[i]
		sh.mu.RLock()
		n += sh.tab.used
		sh.mu.RUnlock()
	}
	return n
}

func TestCookieGCBoundsRouterUnderChurn(t *testing.T) {
	const ttl = time.Minute
	const churn = 32
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	served := &sink{}
	epS, err := NewEndpoint(Config{
		Transport: net.Endpoint("S"),
		Clock:     clk,
		CookieTTL: ttl,
		Accept: func(remote layers.IdentInfo, netSrc string) (PeerSpec, bool) {
			return PeerSpec{
				Addr:      netSrc,
				LocalID:   bytes.TrimRight(remote.Dst, "\x00"),
				RemoteID:  bytes.TrimRight(remote.Src, "\x00"),
				LocalPort: remote.DstPort, RemotePort: remote.SrcPort,
				Epoch: remote.Epoch,
			}, true
		},
		OnConn: func(c *Conn) { c.OnDeliver(served.add) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epS.Close()

	// A churning population: each client identifies itself once (the
	// server learns its cookie) and vanishes.
	for i := 0; i < churn; i++ {
		ep, err := NewEndpoint(Config{Transport: net.Endpoint(fmt.Sprintf("C%d", i)), Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := ep.Dial(PeerSpec{
			Addr: "S", LocalID: []byte(fmt.Sprintf("c%d", i)), RemoteID: []byte("srv"),
			LocalPort: uint16(i + 1), RemotePort: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send([]byte("hi")); err != nil {
			t.Fatal(err)
		}
		ep.Close()
	}
	if got := epS.Snapshot().CookiesLearned; got != churn {
		t.Fatalf("CookiesLearned = %d, want %d", got, churn)
	}
	if got := cookieCount(epS); got != churn {
		t.Fatalf("router holds %d cookies before GC, want %d", got, churn)
	}

	// Two TTLs of idleness: every learned binding must be gone.
	clk.Advance(2 * ttl)
	if got := cookieCount(epS); got != 0 {
		t.Fatalf("router holds %d cookies after GC, want 0 (bounded memory)", got)
	}
	if got := epS.Snapshot().CookiesEvicted; got != churn {
		t.Fatalf("CookiesEvicted = %d, want %d", got, churn)
	}
}

func TestCookieGCKeepsActivePeersAndRelearnsEvicted(t *testing.T) {
	const ttl = time.Minute
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	fromA := &sink{}
	epA, err := NewEndpoint(Config{Transport: net.Endpoint("A"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk, CookieTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	b.OnDeliver(fromA.add)

	// Steady traffic refreshes the learned binding's epoch: many TTLs
	// pass and the cookie survives.
	if err := a.Send([]byte("0")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		clk.Advance(ttl / 2)
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := epB.Snapshot().CookiesEvicted; got != 0 {
		t.Fatalf("active peer's cookie evicted %d times", got)
	}

	// Now go idle: the binding is evicted, cookie-only traffic is
	// dropped, and the window layer's identified retransmission
	// re-learns the route (§2.2 recovery).
	clk.Advance(2 * ttl)
	if got := epB.Snapshot().CookiesEvicted; got != 1 {
		t.Fatalf("CookiesEvicted = %d, want 1", got)
	}
	delivered := fromA.count()
	learned := epB.Snapshot().CookiesLearned
	if err := a.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if epB.Snapshot().UnknownCookie == 0 {
		t.Fatal("cookie-only datagram after eviction should be dropped")
	}
	// Drive the retransmission timer; the retransmit carries the
	// identification and restores the route.
	clk.Advance(5 * time.Second)
	if fromA.count() != delivered+1 {
		t.Fatalf("delivered %d, want %d (recovery via identified retransmit)",
			fromA.count(), delivered+1)
	}
	if got := epB.Snapshot().CookiesLearned; got != learned+1 {
		t.Fatalf("CookiesLearned = %d, want %d", got, learned+1)
	}
}

// shutdownTap asserts transmissions stop once the transport closes.
type shutdownTap struct {
	Transport
	mu              sync.Mutex
	closed          bool
	sendsAfterClose int
}

func (s *shutdownTap) Send(dst string, d []byte) error {
	s.mu.Lock()
	if s.closed {
		s.sendsAfterClose++
	}
	s.mu.Unlock()
	return s.Transport.Send(dst, d)
}

func (s *shutdownTap) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.Transport.Close()
}

func TestShutdownDrainsLazyPostBeforeTransportClose(t *testing.T) {
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	tapA := &shutdownTap{Transport: net.Endpoint("A")}
	epA, err := NewEndpoint(Config{Transport: tapA, Clock: clk, LazyPost: true})
	if err != nil {
		t.Fatal(err)
	}
	fromA := &sink{}
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk, LazyPost: true})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	b.OnDeliver(fromA.add)

	const n = 5
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Lazy post-processing: the last send's post op is still pending.
	if got := func() int { a.mu.Lock(); defer a.mu.Unlock(); return a.send.pendingLen() }(); got == 0 {
		t.Fatal("expected pending lazy post-processing before Shutdown")
	}
	preRuns := a.Stats().PostRuns

	if err := epA.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The pending op ran (Close alone would discard it) ...
	if got := a.Stats().PostRuns; got <= preRuns {
		t.Fatalf("PostRuns = %d, want > %d: Shutdown must drain, not discard", got, preRuns)
	}
	// ... the endpoint is closed, and nothing was transmitted after the
	// transport closed.
	if a.State() != StateClosed {
		t.Fatalf("conn state = %v", a.State())
	}
	tapA.mu.Lock()
	late := tapA.sendsAfterClose
	closed := tapA.closed
	tapA.mu.Unlock()
	if !closed || late != 0 {
		t.Fatalf("transport closed=%v, sends after close=%d", closed, late)
	}
	// Shutdown is terminal: new dials and sends are refused.
	if _, err := epA.Dial(sa); err != ErrConnClosed {
		t.Fatalf("Dial after shutdown = %v", err)
	}
}

func TestShutdownRespectsContext(t *testing.T) {
	// A window full of unacknowledged messages and a backlog that can
	// never drain (the peer is black-holed): Shutdown must give up when
	// the context expires, closing the endpoint anyway.
	r := newRig(t, netsim.Config{Latency: time.Hour}, nil)
	for i := 0; i < 20; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.epA.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if !r.epA.closed.Load() {
		t.Fatal("endpoint left open after context expiry")
	}
}

func TestBackpressureIsTyped(t *testing.T) {
	r := newRig(t, netsim.Config{Latency: time.Hour}, func(cfgA, cfgB *Config) {
		cfgA.MaxBacklog = 2
	})
	var err error
	for i := 0; i < 32 && err == nil; i++ {
		err = r.a.Send([]byte{byte(i)})
	}
	if !errors.Is(err, ErrBackpressure) || !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("overload err = %v, want ErrBacklogFull wrapping ErrBackpressure", err)
	}
}

func TestBlockOnBackpressureDrains(t *testing.T) {
	r := newRig(t, netsim.Config{Latency: 10 * time.Millisecond}, func(cfgA, cfgB *Config) {
		cfgA.MaxBacklog = 2
		cfgA.BlockOnBackpressure = true
	})
	// Fill the window (16) and the backlog (2) while the network holds
	// everything in flight.
	for i := 0; i < 18; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- r.a.Send([]byte{99}) }()

	// The blocked sender must not return while the backlog is full...
	select {
	case err := <-done:
		t.Fatalf("Send returned %v while backlog full", err)
	case <-time.After(20 * time.Millisecond):
	}
	// ... and completes once acknowledgements open the window. The
	// virtual clock is advanced from here; the blocked goroutine only
	// waits on the condition variable.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.settleNet(time.Second)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("blocked send finished with %v", err)
			}
			r.settleNet(time.Hour)
			if got := r.fromA.count(); got != 19 {
				t.Fatalf("delivered %d, want 19", got)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("blocked send never released")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBlockOnBackpressureReleasedByClose(t *testing.T) {
	r := newRig(t, netsim.Config{Latency: time.Hour}, func(cfgA, cfgB *Config) {
		cfgA.MaxBacklog = 2
		cfgA.BlockOnBackpressure = true
	})
	for i := 0; i < 18; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- r.a.Send([]byte{99}) }()
	time.Sleep(10 * time.Millisecond) // let the sender block
	r.a.Close()
	select {
	case err := <-done:
		if err != ErrConnClosed {
			t.Fatalf("blocked send after close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked send not released by Close")
	}
}

func TestChksumRefusesCorruptedFrames(t *testing.T) {
	// Every frame has one bit flipped in flight (netsim CorruptRate);
	// the checksum layer must refuse them all — counted as drops, never
	// a silently corrupted delivery.
	r := newRig(t, netsim.Config{CorruptRate: 1, Seed: 9}, nil)
	const k = 12
	for i := 0; i < k; i++ {
		if err := r.a.Send([]byte{byte(i), 0x55, 0xAA}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.fromA.count(); got != 0 {
		t.Fatalf("delivered %d corrupted messages, want 0", got)
	}
	if got := r.b.Stats().Dropped; got != k {
		t.Fatalf("receiver dropped %d, want %d (checksum refusal)", got, k)
	}
	if got := r.net.Stats().Corrupted; got < k {
		t.Fatalf("net corrupted %d, want >= %d", got, k)
	}
	// The damage is recoverable: heal the link and the retransmission
	// timers deliver everything, in order.
	r.net.SetCorruptRate(0)
	r.settleNet(time.Minute)
	if got := r.fromA.count(); got != k {
		t.Fatalf("delivered %d after healing, want %d", got, k)
	}
	for i := 0; i < k; i++ {
		if r.fromA.get(i)[0] != byte(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestMaxPendingPostDegradesInline(t *testing.T) {
	// The lazy post queue only grows without bound on a buffered-release
	// burst: an out-of-order gap closing releases a long run at once,
	// and each released message queues a post op. Build the gap by
	// stalling A's first datagram.
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	fiA := faultinject.New(net.Endpoint("A"), clk, 0,
		faultinject.Rule{Kind: faultinject.Stall, Direction: faultinject.Send, Nth: 1})
	epA, err := NewEndpoint(Config{Transport: fiA, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(Config{
		Transport: net.Endpoint("B"), Clock: clk,
		LazyPost: true, MaxPendingPost: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	sa, sb := specAB()
	// Pre-agreed cookies: every datagram routes without identification,
	// so the stalled first frame doesn't take the ident exchange with it.
	sa.OutCookie, sa.ExpectInCookie, sa.SkipFirstConnID = 111, 222, true
	sb.OutCookie, sb.ExpectInCookie, sb.SkipFirstConnID = 222, 111, true
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	fromA := &sink{}
	b.OnDeliver(fromA.add)

	// Frames 1..8 arrive ahead of the stalled frame 0 and sit in the
	// window's out-of-order buffer.
	for i := 0; i < 9; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fromA.count(); got != 0 {
		t.Fatalf("delivered %d with the gap open, want 0", got)
	}
	if fiA.ReleaseStalled() != 1 {
		t.Fatal("no stalled datagram to release")
	}
	// The next operation drains frame 0's pending post, which closes the
	// gap and releases the whole buffered run; the bound must degrade to
	// inline drains instead of queueing 8 deferred ops.
	if err := a.Send([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if got := fromA.count(); got != 10 {
		t.Fatalf("delivered %d, want 10", got)
	}
	st := b.Stats()
	if st.PostOverflows == 0 {
		t.Fatal("expected PostOverflows > 0 with MaxPendingPost=2")
	}
	if got := func() int { b.mu.Lock(); defer b.mu.Unlock(); return b.recv.pendingLen() }(); got > 3 {
		t.Fatalf("pending post queue = %d, want bounded near 2", got)
	}
}

package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/udp"
	"paccel/internal/vclock"
)

// Timer-teardown audit: every timer the stack arms — window retransmit,
// delayed ack, heartbeat, dead-peer supervision, cookie GC — must be
// stopped by conn Close and endpoint Close/Shutdown. The Manual clock's
// PendingCount makes a leaked timer a test failure instead of a background
// wakeup that keeps a "closed" endpoint alive.

func TestWindowTimersStoppedOnClose(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	// Black-hole the ack direction: A's retransmit timer stays armed and
	// B's delayed-ack timer arms (its acks vanish, so it keeps re-arming).
	r.net.SetLinkDown("B", "A", true)
	if err := r.a.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := r.clk.PendingCount(); got == 0 {
		t.Fatal("expected armed retransmit/delayed-ack timers")
	}
	r.a.Close()
	r.b.Close()
	if got := r.clk.PendingCount(); got != 0 {
		t.Fatalf("%d timers still armed after conn Close", got)
	}
}

func TestHeartbeatTimerStoppedOnClose(t *testing.T) {
	build := func(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
		hb := layers.NewHeartbeat()
		hb.Interval = time.Second
		return []stack.Layer{
			layers.NewChksum(),
			layers.NewWindow(),
			hb,
			&layers.Ident{
				Local: spec.LocalID, Remote: spec.RemoteID,
				LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
				Epoch: spec.Epoch, Order: order,
			},
		}, nil
	}
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.Build = build
		cfgB.Build = build
	})
	if got := r.clk.PendingCount(); got == 0 {
		t.Fatal("expected armed heartbeat timers")
	}
	r.a.Close()
	r.b.Close()
	if got := r.clk.PendingCount(); got != 0 {
		t.Fatalf("%d timers still armed after conn Close", got)
	}
}

func TestSupervisionAndGCTimersStoppedOnClose(t *testing.T) {
	for _, mode := range []string{"close", "shutdown"} {
		t.Run(mode, func(t *testing.T) {
			r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
				cfgA.PeerTimeout = time.Second // supervision timer on A
				cfgB.CookieTTL = time.Minute   // GC timer on B
			})
			if got := r.clk.PendingCount(); got < 2 {
				t.Fatalf("expected supervision + GC timers armed, have %d", got)
			}
			if mode == "close" {
				r.epA.Close()
				r.epB.Close()
			} else {
				if err := r.epA.Shutdown(context.Background()); err != nil {
					t.Fatal(err)
				}
				if err := r.epB.Shutdown(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			if got := r.clk.PendingCount(); got != 0 {
				t.Fatalf("%d timers still armed after endpoint %s", got, mode)
			}
		})
	}
}

// settleGoroutines polls until the goroutine count returns to the
// baseline (readLoops and drainers need a moment to observe the close).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > baseline %d\n%s", n, baseline,
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNoGoroutineLeakNetsim(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 6; i++ {
		net := netsim.New(vclock.Real{}, netsim.Config{})
		mk := func(addr string) *Endpoint {
			ep, err := NewEndpoint(Config{
				Transport: net.Endpoint(addr),
				LazyPost:  true,
				IdleDrain: true, // one background drainer goroutine per conn
			})
			if err != nil {
				t.Fatal(err)
			}
			return ep
		}
		epA, epB := mk("A"), mk("B")
		sa, sb := specAB()
		a, err := epA.Dial(sa)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := epB.Dial(sb); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if err := a.Send([]byte{byte(j)}); err != nil {
				t.Fatal(err)
			}
		}
		if i%2 == 0 {
			epA.Close()
			epB.Close()
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			epA.Shutdown(ctx)
			epB.Shutdown(ctx)
			cancel()
		}
	}
	settleGoroutines(t, baseline)
}

func TestNoGoroutineLeakUDP(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		trA, err := udp.Listen("127.0.0.1:0")
		if err != nil {
			t.Skipf("no loopback UDP: %v", err)
		}
		trB, err := udp.Listen("127.0.0.1:0")
		if err != nil {
			trA.Close()
			t.Skipf("no loopback UDP: %v", err)
		}
		epA, err := NewEndpoint(Config{Transport: trA, LazyPost: true, IdleDrain: true})
		if err != nil {
			t.Fatal(err)
		}
		epB, err := NewEndpoint(Config{Transport: trB})
		if err != nil {
			t.Fatal(err)
		}
		sa, sb := specAB()
		sa.Addr, sb.Addr = trB.LocalAddr(), trA.LocalAddr()
		a, err := epA.Dial(sa)
		if err != nil {
			t.Fatal(err)
		}
		got := make(chan struct{}, 8)
		b, err := epB.Dial(sb)
		if err != nil {
			t.Fatal(err)
		}
		b.OnDeliver(func(p []byte) { got <- struct{}{} })
		if err := a.Send([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("udp delivery timed out")
		}
		if i%2 == 0 {
			epA.Close()
			epB.Close()
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			epA.Shutdown(ctx)
			epB.Shutdown(ctx)
			cancel()
		}
	}
	settleGoroutines(t, baseline)
}

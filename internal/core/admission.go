package core

// Admission control on the unidentified/first-message path (DESIGN.md
// §14). A datagram that would create a connection — an identified first
// message hitting the accept hook, or a local Dial — passes admitNew
// before anything is allocated: the decision reads a handful of atomics
// (occupancy, the storm bucket, the xorshift state) and returns one of the
// pre-built typed errors, so shedding a connect storm is itself
// allocation-free and never touches a lock.

import (
	"fmt"
	"sync/atomic"

	"paccel/internal/telemetry"
)

// Admission errors. ErrAdmission wraps ErrBackpressure, so existing
// overload handling (errors.Is(err, ErrBackpressure)) catches shed
// connections too; the three concrete errors wrap ErrAdmission and name
// the policy decision that refused the connection. All are package-level
// values: the shed path must not allocate.
var (
	// ErrAdmission is the admission-control category: the endpoint
	// refused to create a connection to protect itself.
	ErrAdmission = fmt.Errorf("%w: admission control refused connection", ErrBackpressure)
	// ErrAdmissionFull reports the connection table at Config.MaxConns.
	ErrAdmissionFull = fmt.Errorf("%w: connection table at capacity", ErrAdmission)
	// ErrAdmissionStorm reports the connect-rate cap during a detected
	// storm (AdmissionConfig.StormRate).
	ErrAdmissionStorm = fmt.Errorf("%w: connect storm, rate cap reached", ErrAdmission)
	// ErrAdmissionEarlyDrop reports a probabilistic early drop as the
	// table approaches capacity (ShedEarlyDrop).
	ErrAdmissionEarlyDrop = fmt.Errorf("%w: probabilistic early drop near capacity", ErrAdmission)
)

// ShedPolicy selects what the endpoint does with a new connection when
// the table is at (or approaching) Config.MaxConns.
type ShedPolicy uint8

const (
	// ShedRejectNew (the default) refuses new connections at capacity
	// with ErrAdmissionFull; established connections are untouched.
	ShedRejectNew ShedPolicy = iota
	// ShedEvictIdle makes room at capacity by closing the
	// least-recently-routed connection with a learned cookie route (the
	// GC epoch ordering as an LRU approximation). If no idle victim is
	// found within the bounded scan, the new connection is refused.
	ShedEvictIdle
	// ShedEarlyDrop refuses a random fraction of new connections once
	// occupancy passes AdmissionConfig.EarlyDropStart, ramping linearly
	// to certain refusal at full — RED applied to connection slots, so
	// capacity degrades probabilistically instead of at a cliff.
	ShedEarlyDrop
)

// String names the policy.
func (p ShedPolicy) String() string {
	switch p {
	case ShedRejectNew:
		return "reject-new"
	case ShedEvictIdle:
		return "evict-idle"
	case ShedEarlyDrop:
		return "early-drop"
	}
	return "?"
}

// AdmissionConfig tunes admission control (Config.Admission). The zero
// value rejects new connections at Config.MaxConns and never sheds below
// capacity.
type AdmissionConfig struct {
	// Policy selects the shed behaviour at capacity.
	Policy ShedPolicy
	// EarlyDropStart is the occupancy fraction where ShedEarlyDrop's
	// ramp begins; 0 means 0.9. Under a detected storm the start is
	// halved — admission tightens while the storm lasts.
	EarlyDropStart float64
	// StormRate enables storm detection: more than this many connection
	// attempts within one second marks a storm, and while it lasts
	// admissions are capped at StormAdmitPerSec. The storm ends after
	// two consecutive calm seconds (attempt rate below half of
	// StormRate) — admission relaxes on drain. 0 disables detection.
	StormRate int
	// StormAdmitPerSec caps admissions per second during a storm;
	// 0 means StormRate/2.
	StormAdmitPerSec int
	// Seed fixes the early-drop randomness for deterministic tests;
	// 0 draws from a fixed default.
	Seed uint64
}

// admissionState is the endpoint's resolved admission machinery. All
// fields on the decision path are atomics — admitNew runs on transport
// receive goroutines and takes no locks.
type admissionState struct {
	policy     ShedPolicy
	dropStart  float64
	stormRate  int64
	stormAdmit int64

	rng atomic.Uint64 // xorshift64 state for early drop

	// One-second connect-rate bucket: bucketSec names the second the
	// counters cover; rotation is a CAS on the second boundary.
	bucketSec atomic.Int64
	attempts  atomic.Int64 // connection attempts this second
	admitted  atomic.Int64 // admissions this second (storm cap)

	stormOn        atomic.Bool
	calmSecs       atomic.Int64 // consecutive calm buckets while stormOn
	stormsDetected atomic.Uint64

	evictCursor atomic.Uint64 // rotating start shard for evict-idle scans
}

func (a *admissionState) init(cfg AdmissionConfig) {
	a.policy = cfg.Policy
	a.dropStart = cfg.EarlyDropStart
	if a.dropStart <= 0 || a.dropStart >= 1 {
		a.dropStart = 0.9
	}
	a.stormRate = int64(cfg.StormRate)
	a.stormAdmit = int64(cfg.StormAdmitPerSec)
	if a.stormAdmit <= 0 {
		a.stormAdmit = a.stormRate / 2
	}
	if a.stormAdmit < 1 {
		a.stormAdmit = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	a.rng.Store(seed)
}

// randFloat returns a uniform float64 in [0, 1) from the lock-free
// xorshift state.
func (a *admissionState) randFloat() float64 {
	for {
		s := a.rng.Load()
		x := s
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if a.rng.CompareAndSwap(s, x) {
			return float64(x>>11) / (1 << 53)
		}
	}
}

// noteConnect accounts one connection attempt at nowSec and reports
// whether a storm is in progress. Storm entry is immediate (the attempt
// that crosses StormRate within one second flips it); exit requires two
// consecutive calm seconds, evaluated at bucket rotation.
func (a *admissionState) noteConnect(nowSec int64) (storm, entered, exited bool) {
	sec := a.bucketSec.Load()
	if nowSec != sec && a.bucketSec.CompareAndSwap(sec, nowSec) {
		// This goroutine rotates the bucket: judge the finished second.
		n := a.attempts.Swap(0)
		a.admitted.Store(0)
		if a.stormOn.Load() {
			calm := n < a.stormRate/2
			if nowSec-sec > 1 {
				calm = true // idle seconds are calm seconds
			}
			if !calm {
				a.calmSecs.Store(0)
			} else if a.calmSecs.Add(1) >= 2 {
				a.stormOn.Store(false)
				a.calmSecs.Store(0)
				exited = true
			}
		}
	}
	if a.attempts.Add(1) > a.stormRate && !a.stormOn.Swap(true) {
		a.calmSecs.Store(0)
		a.stormsDetected.Add(1)
		entered = true
	}
	return a.stormOn.Load(), entered, exited
}

// Pre-built shed causes for the (rate-limited) telemetry events.
const (
	shedCauseFull      = "shed: connection table at capacity"
	shedCauseStorm     = "shed: connect storm rate cap"
	shedCauseEarlyDrop = "shed: early drop near capacity"
	stormCauseEnter    = "storm detected: admission tightened"
	stormCauseExit     = "storm drained: admission relaxed"
)

// admitNew is the admission decision for one new-connection attempt. It
// returns nil to admit or one of the typed admission errors, and runs
// before any allocation on the unidentified path: every branch reads
// atomics only. src selects the counter stripe for the shed statistics.
func (ep *Endpoint) admitNew(src string) error {
	a := &ep.adm
	storm := false
	if a.stormRate > 0 {
		var entered, exited bool
		storm, entered, exited = a.noteConnect(ep.cfg.clock().Now().Unix())
		if entered {
			ep.tel.Event(telemetry.EventShed, 0, stormCauseEnter)
			ep.tel.SetGauge(telemetry.GaugeStormActive, 1)
		}
		if exited {
			ep.tel.Event(telemetry.EventShed, 0, stormCauseExit)
			ep.tel.SetGauge(telemetry.GaugeStormActive, 0)
		}
		if storm && a.admitted.Load() >= a.stormAdmit {
			return ep.shed(src, ErrAdmissionStorm)
		}
	}
	n := ep.connCount.Load()
	limit := int64(ep.maxConns)
	if n >= limit {
		if a.policy != ShedEvictIdle || !ep.evictIdlest() {
			return ep.shed(src, ErrAdmissionFull)
		}
	} else if a.policy == ShedEarlyDrop {
		start := a.dropStart
		if storm {
			start *= 0.5 // tighten the ramp while the storm lasts
		}
		if occ := float64(n) / float64(limit); occ >= start {
			p := (occ - start) / (1 - start)
			if a.randFloat() < p {
				return ep.shed(src, ErrAdmissionEarlyDrop)
			}
		}
	}
	if a.stormRate > 0 {
		a.admitted.Add(1)
	}
	return nil
}

// shed accounts one refused connection — striped per-reason counters plus
// a rate-limited telemetry event — and returns the typed error. Shed
// traffic is never silent: it is visible in EndpointStats and, for the
// first and every 1024th refusal, in the event ring.
func (ep *Endpoint) shed(src string, cause error) error {
	st := ep.stats.stripe(stripeKey(src))
	var evCause string
	switch cause {
	case ErrAdmissionStorm:
		st.shedStorm.Add(1)
		evCause = shedCauseStorm
	case ErrAdmissionEarlyDrop:
		st.shedEarlyDrop.Add(1)
		evCause = shedCauseEarlyDrop
	default:
		st.shedFull.Add(1)
		evCause = shedCauseFull
	}
	if n := ep.shedTotal.Add(1); n == 1 || n&1023 == 0 {
		ep.tel.Event(telemetry.EventShed, 0, evCause)
	}
	return cause
}

// evictScanBudget bounds one evict-idle victim search: the scan examines
// at most this many table slots, so making room stays O(1) relative to
// the table size.
const evictScanBudget = 512

// evictIdlest closes the connection owning the oldest-epoch learned
// cookie route within a bounded scan window, making room for a new
// connection under ShedEvictIdle. It reports whether a slot was freed.
// Runs WITHOUT routeMu (Close takes it); the scan holds one shard
// read-lock at a time.
func (ep *Endpoint) evictIdlest() bool {
	var victim *Conn
	var oldest uint64 = ^uint64(0)
	scanned := 0
	start := ep.adm.evictCursor.Add(1)
	for s := 0; s < cookieShardCount && scanned < evictScanBudget; s++ {
		sh := &ep.shards[(start+uint64(s))&(cookieShardCount-1)]
		sh.mu.RLock()
		for i := 0; i < len(sh.tab.keys) && scanned < evictScanBudget; i++ {
			if sh.tab.keys[i] == 0 {
				continue
			}
			scanned++
			m := atomic.LoadUint64(&sh.tab.vals[i].meta)
			if !metaLearned(m) {
				continue
			}
			if e := metaEpoch(m); e < oldest {
				oldest = e
				victim = sh.tab.vals[i].conn
			}
		}
		sh.mu.RUnlock()
	}
	if victim == nil {
		return false
	}
	ep.admEvictions.Add(1)
	ep.tel.Event(telemetry.EventShed, 0, "evict-idle: closed idlest connection for admission")
	victim.Close()
	return ep.connCount.Load() < int64(ep.maxConns)
}

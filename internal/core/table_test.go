package core

import (
	"math/rand"
	"testing"
)

// TestCookieTableBasics exercises the open-addressed table's contract at
// small scale: lookup/insert/delete round-trips, the zero-cookie
// sentinel, and emptiness.
func TestCookieTableBasics(t *testing.T) {
	var tab cookieTable
	if tab.lookup(42) != nil {
		t.Fatal("lookup on empty table hit")
	}
	if tab.delete(42) {
		t.Fatal("delete on empty table reported present")
	}
	c := &Conn{}
	if !tab.insert(42, c, packMeta(7, true)) {
		t.Fatal("insert refused")
	}
	v := tab.lookup(42)
	if v == nil || v.conn != c {
		t.Fatalf("lookup after insert: %v", v)
	}
	if !metaLearned(v.meta) || metaEpoch(v.meta) != 7 {
		t.Fatalf("meta round-trip: learned=%v epoch=%d", metaLearned(v.meta), metaEpoch(v.meta))
	}
	if tab.lookup(0) != nil {
		t.Fatal("zero cookie routed")
	}
	if !tab.delete(42) {
		t.Fatal("delete missed present cookie")
	}
	if tab.used != 0 || tab.lookup(42) != nil {
		t.Fatalf("table not empty after delete: used=%d", tab.used)
	}
}

// TestCookieTableMetaStamp pins the packed-meta arithmetic: stamping a
// new epoch must preserve the learned bit, and the epoch must survive
// the full 63-bit range left after it.
func TestCookieTableMetaStamp(t *testing.T) {
	m := packMeta(5, true)
	m = metaStamp(m, 123456)
	if !metaLearned(m) || metaEpoch(m) != 123456 {
		t.Fatalf("stamp lost state: learned=%v epoch=%d", metaLearned(m), metaEpoch(m))
	}
	m = packMeta(9, false)
	m = metaStamp(m, 10)
	if metaLearned(m) {
		t.Fatal("stamp invented the learned bit")
	}
}

// TestCookieTableAgainstMapReference drives a long random sequence of
// inserts, deletes and lookups against a plain map and demands identical
// observable behaviour — the backward-shift deletion and probe-chain
// logic have to survive arbitrary interleavings, including keys engineered
// to collide in the low hash bits.
func TestCookieTableAgainstMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tab cookieTable
	tab.maxSlots = 1 << 12
	ref := make(map[uint64]*Conn)
	conns := [4]*Conn{{}, {}, {}, {}}
	// A small key universe forces constant collisions and re-insertion
	// of recently deleted keys; the high-bit variant keys collide with
	// the low ones in every table size's slot mask.
	key := func() uint64 {
		k := rng.Uint64()%512 + 1
		if rng.Intn(2) == 0 {
			k |= 1 << 40
		}
		return k
	}
	for i := 0; i < 200000; i++ {
		k := key()
		switch rng.Intn(3) {
		case 0: // insert
			c := conns[rng.Intn(len(conns))]
			if _, present := ref[k]; !present {
				if !tab.insert(k, c, packMeta(uint64(i), i%2 == 0)) {
					t.Fatalf("op %d: insert %#x refused below ceiling (used=%d cap=%d)", i, k, tab.used, len(tab.keys))
				}
				ref[k] = c
			}
		case 1: // delete
			_, present := ref[k]
			if got := tab.delete(k); got != present {
				t.Fatalf("op %d: delete %#x = %v, reference %v", i, k, got, present)
			}
			delete(ref, k)
		case 2: // lookup
			v := tab.lookup(k)
			c, present := ref[k]
			if present != (v != nil) {
				t.Fatalf("op %d: lookup %#x = %v, reference present=%v", i, k, v, present)
			}
			if present && v.conn != c {
				t.Fatalf("op %d: lookup %#x routed to wrong conn", i, k)
			}
		}
		if tab.used != len(ref) {
			t.Fatalf("op %d: used=%d, reference size=%d", i, tab.used, len(ref))
		}
	}
	// Every surviving key must still route.
	for k, c := range ref {
		v := tab.lookup(k)
		if v == nil || v.conn != c {
			t.Fatalf("final check: %#x lost", k)
		}
	}
}

// TestCookieTableGrowAndCeiling checks the growth policy: the table
// doubles at 3/4 load up to maxSlots, then admits up to 7/8 of the
// ceiling and refuses beyond — the hard-capacity backstop behind
// Config.MaxConns.
func TestCookieTableGrowAndCeiling(t *testing.T) {
	var tab cookieTable
	tab.maxSlots = 256
	c := &Conn{}
	inserted := 0
	for k := uint64(1); k <= 1024; k++ {
		if !tab.insert(k, c, 0) {
			break
		}
		inserted++
	}
	if len(tab.keys) != 256 {
		t.Fatalf("table stopped at %d slots, want ceiling 256", len(tab.keys))
	}
	want := 256 * 7 / 8
	if inserted != want {
		t.Fatalf("admitted %d entries at ceiling, want %d (7/8 of 256)", inserted, want)
	}
	// Deleting frees capacity again.
	if !tab.delete(1) {
		t.Fatal("delete failed")
	}
	if !tab.insert(2000, c, 0) {
		t.Fatal("insert refused after making room")
	}
	// Everything admitted still routes after all the growth.
	for k := uint64(2); k <= uint64(inserted); k++ {
		if tab.lookup(k) == nil {
			t.Fatalf("cookie %d lost across growth", k)
		}
	}
}

// TestCookieTableBackwardShift pins the deletion edge case: keys that
// probe past their home slot must remain reachable after an earlier
// chain member is deleted (no tombstones, chains are compacted).
func TestCookieTableBackwardShift(t *testing.T) {
	var tab cookieTable
	tab.maxSlots = minTableSlots
	c := &Conn{}
	// Find keys that share a home slot in a 64-slot table.
	home := func(k uint64) uint64 { return slotHash(k) & (minTableSlots - 1) }
	var cluster []uint64
	target := home(1)
	for k := uint64(1); len(cluster) < 5 && k < 1<<20; k++ {
		if home(k) == target {
			cluster = append(cluster, k)
		}
	}
	if len(cluster) < 5 {
		t.Fatal("could not build a collision cluster")
	}
	for _, k := range cluster {
		if !tab.insert(k, c, 0) {
			t.Fatalf("insert %#x refused", k)
		}
	}
	// Delete the head of the chain; the rest must still route.
	if !tab.delete(cluster[0]) {
		t.Fatal("delete failed")
	}
	for _, k := range cluster[1:] {
		if tab.lookup(k) == nil {
			t.Fatalf("cookie %#x unreachable after backward shift", k)
		}
	}
	// And the slots are compacted: re-deleting and re-inserting works.
	for _, k := range cluster[1:] {
		if !tab.delete(k) {
			t.Fatalf("delete %#x failed", k)
		}
	}
	if tab.used != 0 {
		t.Fatalf("used=%d after deleting all", tab.used)
	}
}

// TestNextPow2 pins the rounding helper.
func TestNextPow2(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128}, {1 << 20, 1 << 20}, {1<<20 + 1, 1 << 21}} {
		if got := nextPow2(tc[0]); got != tc[1] {
			t.Fatalf("nextPow2(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
}

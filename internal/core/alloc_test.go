package core

import (
	"sync"
	"testing"

	"paccel/internal/bits"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/telemetry"
	"paccel/internal/vclock"
)

// leanBuild is the checksum + fragmentation + identification stack: the
// configuration whose steady state the engine promises is allocation-free
// (no window layer, so no ack/retransmit timer machinery behind the
// measurement).
func leanBuild(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
	return []stack.Layer{
		layers.NewChksum(),
		layers.NewFrag(),
		&layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		},
	}, nil
}

// noBatch strips the SendBatch method from a transport so the engine's
// transmit flush falls back to one Send per datagram.
type noBatch struct{ Transport }

// allocTap remembers the last datagram the wrapped transport delivered,
// so the deliver subtest can capture a fast-path wire frame for replay.
type allocTap struct {
	Transport
	mu   sync.Mutex
	last []byte
}

func (t *allocTap) SetHandler(h func(src string, datagram []byte)) {
	t.Transport.SetHandler(func(src string, datagram []byte) {
		t.mu.Lock()
		t.last = append(t.last[:0], datagram...)
		t.mu.Unlock()
		h(src, datagram)
	})
}

// TestAllocBudget is the allocation gate for the engine's fast paths:
// steady-state send (flushed through SendBatch), send with the batch
// interface hidden (per-datagram flush), and routed delivery must all run
// at exactly 0 allocs/op — with telemetry disabled and with telemetry
// enabled at TelemetrySampleEvery=1, so the instrumentation itself
// (counter bump, clock reads, histogram record) is proven alloc-free too.
// CI runs this test on every push; a regression here fails the build
// before the perf gate ever sees it.
func TestAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; CI runs this test in its own non-race step")
	}
	for _, tc := range []struct {
		name string
		rec  *telemetry.Recorder
	}{
		{"telemetry-off", nil},
		{"telemetry-on", telemetry.New(telemetry.Options{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Run("send", func(t *testing.T) { allocSend(t, tc.rec, false) })
			t.Run("send-unbatched", func(t *testing.T) { allocSend(t, tc.rec, true) })
			t.Run("deliver", func(t *testing.T) { allocDeliver(t, tc.rec) })
			t.Run("shed", func(t *testing.T) { allocShed(t, tc.rec) })
			t.Run("fanout", func(t *testing.T) { allocFanout(t, tc.rec) })
			t.Run("secure-send", func(t *testing.T) { allocSecureSend(t, tc.rec) })
			t.Run("secure-deliver", func(t *testing.T) { allocSecureDeliver(t, tc.rec) })
		})
	}
}

// allocSend asserts the steady-state send over the instantaneous network
// is allocation-free. The far side's delivery runs inside the same call,
// so the budget covers the whole send+flush+route+deliver chain.
func allocSend(t *testing.T, rec *telemetry.Recorder, hideBatch bool) {
	t.Helper()
	net := netsim.New(vclock.Real{}, netsim.Config{})
	cfg := func(addr string) Config {
		var tr Transport = net.Endpoint(addr)
		if hideBatch {
			tr = noBatch{tr}
		}
		return Config{
			Transport: tr, Build: leanBuild,
			Telemetry: rec, TelemetrySampleEvery: 1,
		}
	}
	epA, err := NewEndpoint(cfg("A"))
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(cfg("B"))
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	b.OnDeliver(func([]byte) {})
	payload := make([]byte, 32)
	for i := 0; i < 256; i++ { // warm pools, prime prediction
		if err := a.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	var sendErr error
	allocs := testing.AllocsPerRun(500, func() {
		if err := a.Send(payload); err != nil {
			sendErr = err
		}
	})
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if allocs != 0 {
		t.Fatalf("send fast path: %.2f allocs/op, want 0", allocs)
	}
}

// allocDeliver asserts the routed delivery path alone — transport handler,
// cookie router, packet filter, fast-path delivery, application callback —
// is allocation-free, by replaying one captured cookie-only frame straight
// into the endpoint's receive handler.
func allocDeliver(t *testing.T, rec *telemetry.Recorder) {
	t.Helper()
	net := netsim.New(vclock.Real{}, netsim.Config{})
	tap := &allocTap{Transport: net.Endpoint("S")}
	server, err := NewEndpoint(Config{
		Transport: tap, Build: leanBuild,
		Telemetry: rec, TelemetrySampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := NewEndpoint(Config{Transport: net.Endpoint("C"), Build: leanBuild})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Pre-agreed cookies on both sides keep every frame cookie-only.
	sc, err := server.Dial(PeerSpec{
		Addr: "C", LocalID: []byte("server"), RemoteID: []byte("client"),
		LocalPort: 2000, RemotePort: 1000, Epoch: 1,
		OutCookie: 0xc11e, ExpectInCookie: 0x5eed, SkipFirstConnID: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.OnDeliver(func([]byte) {})
	cc, err := client.Dial(PeerSpec{
		Addr: "S", LocalID: []byte("client"), RemoteID: []byte("server"),
		LocalPort: 1000, RemotePort: 2000, Epoch: 1,
		OutCookie: 0x5eed, ExpectInCookie: 0xc11e, SkipFirstConnID: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Send([]byte("capture!")); err != nil {
		t.Fatal(err)
	}
	tap.mu.Lock()
	frame := append([]byte(nil), tap.last...)
	tap.mu.Unlock()
	if len(frame) == 0 {
		t.Fatal("no frame captured")
	}
	for i := 0; i < 256; i++ {
		server.onRecv("C", frame)
	}
	allocs := testing.AllocsPerRun(500, func() { server.onRecv("C", frame) })
	if allocs != 0 {
		t.Fatalf("deliver fast path: %.2f allocs/op, want 0", allocs)
	}
}

// allocFanout asserts the steady-state group fanout is allocation-free:
// one template build and filter pass, 16 member stamps, one batched
// transmit through SendBatchTo, and the members' synchronous deliveries
// on the far side — all inside the measured budget.
func allocFanout(t *testing.T, rec *telemetry.Recorder) {
	t.Helper()
	net := netsim.New(vclock.Real{}, netsim.Config{})
	sink := net.Endpoint("sink")
	sink.SetHandler(func(string, []byte) {})
	ep, err := NewEndpoint(Config{
		Transport: net.Endpoint("A"), Build: leanBuild,
		Telemetry: rec, TelemetrySampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	conns := make([]*Conn, 16)
	for i := range conns {
		conns[i], err = ep.Dial(PeerSpec{
			Addr:    "sink",
			LocalID: []byte("A"), RemoteID: []byte{byte(i)},
			LocalPort: uint16(i + 1), RemotePort: uint16(i + 1),
			Epoch: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	fan, err := NewFanout(ep, conns...)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32)
	for i := 0; i < 256; i++ { // warm pools, prime prediction
		if err := fan.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	var sendErr error
	allocs := testing.AllocsPerRun(500, func() {
		if err := fan.Send(payload); err != nil {
			sendErr = err
		}
	})
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if allocs != 0 {
		t.Fatalf("fanout fast path: %.2f allocs/op, want 0", allocs)
	}
}

// secureLeanBuild is leanBuild with AES-GCM in place of the checksum
// (the tag subsumes it): fragmentation + encryption + identification, no
// window, so the nonce counter advances one per frame with no gaps and
// the whole encrypted path stays on prediction.
func secureLeanBuild(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
	return []stack.Layer{
		layers.NewFrag(),
		layers.NewSecure([]byte("alloc budget key"), spec.LocalID, spec.RemoteID, spec.LocalPort, spec.RemotePort),
		&layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		},
	}, nil
}

// allocSecureSend asserts the encrypted steady-state send — seal in the
// send filter, batch flush, far-side open and delivery — is
// allocation-free once the AEAD scratches are warm.
func allocSecureSend(t *testing.T, rec *telemetry.Recorder) {
	t.Helper()
	net := netsim.New(vclock.Real{}, netsim.Config{})
	cfg := func(addr string) Config {
		return Config{
			Transport: net.Endpoint(addr), Build: secureLeanBuild,
			Telemetry: rec, TelemetrySampleEvery: 1,
		}
	}
	epA, err := NewEndpoint(cfg("A"))
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(cfg("B"))
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	b.OnDeliver(func([]byte) { delivered++ })
	payload := make([]byte, 32)
	for i := 0; i < 256; i++ { // warm pools, scratches, prediction
		if err := a.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	var sendErr error
	allocs := testing.AllocsPerRun(500, func() {
		if err := a.Send(payload); err != nil {
			sendErr = err
		}
	})
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if allocs != 0 {
		t.Fatalf("secure send fast path: %.2f allocs/op, want 0", allocs)
	}
	if delivered < 256+500 {
		t.Fatalf("delivered %d, want every sealed frame opened", delivered)
	}
}

// recordTap captures every outgoing datagram WITHOUT delivering it, so a
// later replay hits the receiving endpoint with its predictions still
// at the sequence's start.
type recordTap struct {
	Transport
	mu     sync.Mutex
	frames [][]byte
}

func (t *recordTap) SetHandler(h func(src string, datagram []byte)) {
	t.Transport.SetHandler(func(src string, datagram []byte) {
		t.mu.Lock()
		t.frames = append(t.frames, append([]byte(nil), datagram...))
		t.mu.Unlock()
	})
}

// allocSecureDeliver asserts the encrypted routed-delivery path — cookie
// route, delivery filter open (authenticate + decrypt in place), fast
// delivery, prediction update — is allocation-free. Unlike the plaintext
// deliver test a single frame cannot be replayed (the nonce prediction
// advances), so a pre-captured in-order sequence is fed instead.
func allocSecureDeliver(t *testing.T, rec *telemetry.Recorder) {
	t.Helper()
	const warm, runs = 256, 500
	net := netsim.New(vclock.Real{}, netsim.Config{})
	tap := &recordTap{Transport: net.Endpoint("S")}
	server, err := NewEndpoint(Config{
		Transport: tap, Build: secureLeanBuild,
		Telemetry: rec, TelemetrySampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := NewEndpoint(Config{Transport: net.Endpoint("C"), Build: secureLeanBuild})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Pre-agreed cookies keep every frame cookie-only; the tap swallows
	// the client's traffic so the server sees it first during the replay.
	sc, err := server.Dial(PeerSpec{
		Addr: "C", LocalID: []byte("server"), RemoteID: []byte("client"),
		LocalPort: 2000, RemotePort: 1000, Epoch: 1,
		OutCookie: 0xc11e, ExpectInCookie: 0x5eed, SkipFirstConnID: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	sc.OnDeliver(func([]byte) { delivered++ })
	cc, err := client.Dial(PeerSpec{
		Addr: "S", LocalID: []byte("client"), RemoteID: []byte("server"),
		LocalPort: 1000, RemotePort: 2000, Epoch: 1,
		OutCookie: 0x5eed, ExpectInCookie: 0xc11e, SkipFirstConnID: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := warm + runs + 1 // AllocsPerRun calls f once extra to warm up
	for i := 0; i < total; i++ {
		if err := cc.Send([]byte("sealed frame, distinct nonce")); err != nil {
			t.Fatal(err)
		}
	}
	tap.mu.Lock()
	frames := tap.frames
	tap.mu.Unlock()
	if len(frames) < total {
		t.Fatalf("captured %d frames, want %d", len(frames), total)
	}
	for i := 0; i < warm; i++ {
		server.onRecv("C", frames[i])
	}
	idx := warm
	allocs := testing.AllocsPerRun(runs, func() {
		server.onRecv("C", frames[idx])
		idx++
	})
	if allocs != 0 {
		t.Fatalf("secure deliver fast path: %.2f allocs/op, want 0", allocs)
	}
	if delivered != total {
		t.Fatalf("delivered %d of %d — frames dropped, not measured", delivered, total)
	}
}

// allocShed asserts the admission reject path is allocation-free: an
// identified first message arriving at a full endpoint must be refused
// before the identification is parsed or any connection state allocated —
// the whole point of shedding is that it stays cheap while the endpoint
// is drowning. The storm detector is enabled so its per-second
// bookkeeping is inside the measured budget too.
func allocShed(t *testing.T, rec *telemetry.Recorder) {
	t.Helper()
	net := netsim.New(vclock.Real{}, netsim.Config{})
	tap := &allocTap{Transport: net.Endpoint("S")}
	server, err := NewEndpoint(Config{
		Transport: tap, Build: leanBuild,
		MaxConns:  1,
		Admission: AdmissionConfig{StormRate: 64, Seed: 9},
		Accept: func(remote layers.IdentInfo, netSrc string) (PeerSpec, bool) {
			return PeerSpec{Addr: netSrc}, true
		},
		OnConn:    func(c *Conn) { c.OnDeliver(func([]byte) {}) },
		Telemetry: rec, TelemetrySampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := NewEndpoint(Config{Transport: net.Endpoint("C"), Build: leanBuild})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// The client's identified first message fills the server's one
	// connection slot; the tap keeps the frame.
	cc, err := client.Dial(PeerSpec{
		Addr: "S", LocalID: []byte("client"), RemoteID: []byte("server"),
		LocalPort: 1000, RemotePort: 2000, Epoch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Send([]byte("fill the table")); err != nil {
		t.Fatal(err)
	}
	tap.mu.Lock()
	frame := append([]byte(nil), tap.last...)
	tap.mu.Unlock()
	if len(frame) == 0 {
		t.Fatal("no frame captured")
	}
	// Flip one identification byte: the replay now looks like a brand-new
	// peer's first message, misses the ident table, and admission refuses
	// it at capacity — every single time.
	frame[PreambleSize] ^= 0xFF
	before := server.Snapshot()
	if before.Conns != 1 {
		t.Fatalf("Conns=%d, want the table full at 1", before.Conns)
	}
	for i := 0; i < 256; i++ {
		server.onRecv("Z", frame)
	}
	allocs := testing.AllocsPerRun(500, func() { server.onRecv("Z", frame) })
	if allocs != 0 {
		t.Fatalf("shed path: %.2f allocs/op, want 0", allocs)
	}
	after := server.Snapshot()
	if after.Conns != 1 || after.ShedTotal == before.ShedTotal {
		t.Fatalf("replays were not shed: Conns=%d ShedTotal=%d→%d",
			after.Conns, before.ShedTotal, after.ShedTotal)
	}
}

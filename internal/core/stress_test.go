package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/udp"
	"paccel/internal/vclock"
)

// echoServerConfig returns a server Config that accepts every incoming
// identification and echoes every delivery back.
func echoServerConfig(transport Transport, reportErr func(error)) Config {
	return Config{
		Transport: transport,
		Accept: func(remote layers.IdentInfo, netSrc string) (PeerSpec, bool) {
			return PeerSpec{
				Addr:      netSrc,
				LocalID:   bytes.TrimRight(remote.Dst, "\x00"),
				RemoteID:  bytes.TrimRight(remote.Src, "\x00"),
				LocalPort: remote.DstPort, RemotePort: remote.SrcPort,
				Epoch: remote.Epoch,
			}, true
		},
		OnConn: func(c *Conn) {
			c.OnDeliver(func(req []byte) {
				data := append([]byte(nil), req...)
				for {
					err := c.Send(data)
					if err == nil {
						return
					}
					if errors.Is(err, ErrBacklogFull) {
						time.Sleep(50 * time.Microsecond)
						continue
					}
					reportErr(err)
					return
				}
			})
		},
	}
}

// stressEndpoint hammers one server endpoint with concurrent sends and
// receives across nConns client connections: every client goroutine
// streams msgs echo round trips while the server concurrently receives
// and sends on all connections. Designed to run under -race.
func stressEndpoint(t *testing.T, nConns, msgs int, clientTransport func(i int) Transport, serverTransport Transport, serverAddr string) {
	t.Helper()

	errCh := make(chan error, nConns*4)
	reportErr := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	server, err := NewEndpoint(echoServerConfig(serverTransport, reportErr))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	var wg sync.WaitGroup
	for i := 0; i < nConns; i++ {
		ep, err := NewEndpoint(Config{Transport: clientTransport(i)})
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		conn, err := ep.Dial(PeerSpec{
			Addr:    serverAddr,
			LocalID: []byte(fmt.Sprintf("cli%02d", i)), RemoteID: []byte("srv"),
			LocalPort: uint16(100 + i), RemotePort: 1, Epoch: 1,
		})
		if err != nil {
			t.Fatal(err)
		}

		echoed := make(chan struct{}, msgs)
		conn.OnDeliver(func([]byte) { echoed <- struct{}{} })

		wg.Add(1)
		go func(i int, conn *Conn) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("stress-%02d-payload", i))
			pending := 0
			deadline := time.After(30 * time.Second)
			for sent := 0; sent < msgs; {
				err := conn.Send(payload)
				switch {
				case err == nil:
					sent++
					pending++
				case errors.Is(err, ErrBacklogFull):
					// Window backpressure: absorb an echo, then retry.
					select {
					case <-echoed:
						pending--
					case <-deadline:
						reportErr(fmt.Errorf("conn %d: timeout with %d/%d sent", i, sent, msgs))
						return
					}
				default:
					reportErr(fmt.Errorf("conn %d send: %w", i, err))
					return
				}
			}
			for pending > 0 {
				select {
				case <-echoed:
					pending--
				case <-deadline:
					reportErr(fmt.Errorf("conn %d: timeout awaiting %d echoes", i, pending))
					return
				}
			}
		}(i, conn)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if got := server.Snapshot().Accepted; got != uint64(nConns) {
		t.Fatalf("server accepted %d connections, want %d", got, nConns)
	}
}

// TestEndpointStressNetsim hammers one endpoint over the in-memory
// network: deliveries run on the senders' goroutines, so the router sees
// genuinely concurrent receives for 8 connections.
func TestEndpointStressNetsim(t *testing.T) {
	msgs := 400
	if testing.Short() {
		msgs = 50
	}
	net := netsim.New(vclock.Real{}, netsim.Config{})
	stressEndpoint(t, 8, msgs,
		func(i int) Transport { return net.Endpoint(fmt.Sprintf("c%d", i)) },
		net.Endpoint("srv"), "srv")
}

// TestEndpointStressUDP is the same hammer over real UDP sockets on the
// loopback; the window layer's retransmissions absorb any kernel-dropped
// datagrams.
func TestEndpointStressUDP(t *testing.T) {
	msgs := 100
	if testing.Short() {
		msgs = 20
	}
	serverT, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stressEndpoint(t, 8, msgs,
		func(i int) Transport {
			tr, err := udp.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
		serverT, serverT.LocalAddr())
}

package core

// The cache-packed routing table. Each router shard owns one cookieTable:
// an open-addressed, linear-probing cookie→conn map that replaces the
// built-in map the shards used before the million-connection work
// (DESIGN.md §14).
//
// Layout is the point. Keys live in their own []uint64, eight per cache
// line, so a probe sequence of typical length touches exactly one line of
// key memory; the per-entry value (connection pointer + GC metadata) lives
// in a parallel array touched only on a hit. A map bucket interleaves
// keys, values and tophash bytes, and at a million entries the difference
// is one-versus-several cache misses on every unidentified-path lookup —
// the ONCache observation applied to the router.
//
// The table is NOT internally synchronized: readers hold the shard's
// RLock, writers (insert, delete, grow) the full Lock. The one field
// mutated under the read lock is slotVal.meta — the GC epoch refresh on a
// routed lookup — which is therefore accessed with sync/atomic package
// functions. meta is a plain uint64, not an atomic.Uint64: backward-shift
// deletion relocates slots by assignment, which the noCopy guard inside
// atomic.Uint64 would (rightly) flag.

// minTableSlots is the initial capacity of a shard table (power of two).
// 64 slots = one 512-byte key block; a fresh endpoint's 64 shards cost
// ~96 KiB of table memory in total, paid lazily on first bind.
const minTableSlots = 64

// tableSlotBytes is the per-slot memory cost surfaced by the accounting:
// 8 bytes of key plus 16 bytes of slotVal (conn pointer, packed meta).
const tableSlotBytes = 8 + 16

// slotVal is the value half of one occupied slot.
type slotVal struct {
	conn *Conn
	// meta packs the entry's GC state: bit 0 is the learned flag, the
	// remaining bits the GC epoch at last use. Read/written with
	// sync/atomic functions when only the shard read-lock is held.
	meta uint64
}

const metaLearnedBit = 1

func packMeta(epoch uint64, learned bool) uint64 {
	m := epoch << 1
	if learned {
		m |= metaLearnedBit
	}
	return m
}

func metaEpoch(m uint64) uint64   { return m >> 1 }
func metaLearned(m uint64) bool   { return m&metaLearnedBit != 0 }
func metaStamp(m, epoch uint64) uint64 {
	return epoch<<1 | m&metaLearnedBit
}

// slotHash positions a cookie within a shard table. The same golden-ratio
// product as shardIndex, but the shard takes the top 6 bits and the slot
// the bottom log2(cap) bits, so the two indices stay independent.
func slotHash(cookie uint64) uint64 { return cookie * 0x9E3779B97F4A7C15 }

// cookieTable is one shard's open-addressed cookie→conn table. The zero
// value is an empty table; the first insert allocates minTableSlots.
// Cookie 0 is the empty-slot sentinel and is never stored (the router
// refuses to bind it; honest peers draw 62-bit random cookies).
type cookieTable struct {
	keys []uint64 // len = capacity, power of two; 0 marks an empty slot
	vals []slotVal
	mask uint64 // len(keys)-1
	used int
	// maxSlots caps growth (the endpoint derives it from Config.MaxConns);
	// 0 means minTableSlots.
	maxSlots int
}

// lookup returns the slot value for cookie, or nil. Caller holds at least
// the shard read-lock; the returned pointer is only valid while it does.
func (t *cookieTable) lookup(cookie uint64) *slotVal {
	if t.used == 0 || cookie == 0 {
		return nil
	}
	i := slotHash(cookie) & t.mask
	for {
		switch t.keys[i] {
		case cookie:
			return &t.vals[i]
		case 0:
			return nil
		}
		i = (i + 1) & t.mask
	}
}

// insert adds cookie→(conn, meta), growing at 3/4 load while the ceiling
// allows. It reports false when the table is at its hard capacity (load
// 7/8 of maxSlots); the cookie must not already be present (callers check
// under the same lock). Caller holds the shard write-lock.
func (t *cookieTable) insert(cookie uint64, c *Conn, meta uint64) bool {
	if t.keys == nil {
		t.init(minTableSlots)
	}
	if (t.used+1)*4 > len(t.keys)*3 && !t.grow() {
		// Ceiling reached: admit up to 7/8 load so the last admitted
		// entries still probe short chains, then refuse.
		if (t.used+1)*8 > len(t.keys)*7 {
			return false
		}
	}
	i := slotHash(cookie) & t.mask
	for t.keys[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.keys[i] = cookie
	t.vals[i] = slotVal{conn: c, meta: meta}
	t.used++
	return true
}

// delete removes cookie, compacting its probe chain by backward shift so
// the table never accumulates tombstones. Reports whether the cookie was
// present. Caller holds the shard write-lock.
func (t *cookieTable) delete(cookie uint64) bool {
	if t.used == 0 || cookie == 0 {
		return false
	}
	i := slotHash(cookie) & t.mask
	for t.keys[i] != cookie {
		if t.keys[i] == 0 {
			return false
		}
		i = (i + 1) & t.mask
	}
	t.used--
	// Backward-shift: walk the chain after the hole; any entry whose home
	// slot does not lie cyclically in (i, j] can fill the hole.
	j := i
	for {
		t.keys[i] = 0
		t.vals[i] = slotVal{}
		for {
			j = (j + 1) & t.mask
			k := t.keys[j]
			if k == 0 {
				return true
			}
			home := slotHash(k) & t.mask
			if i <= j {
				if i < home && home <= j {
					continue
				}
			} else if home > i || home <= j {
				continue
			}
			break
		}
		t.keys[i] = t.keys[j]
		t.vals[i] = t.vals[j]
		i = j
	}
}

// init allocates the table at capacity n (a power of two).
func (t *cookieTable) init(n int) {
	t.keys = make([]uint64, n)
	t.vals = make([]slotVal, n)
	t.mask = uint64(n - 1)
}

// ceiling resolves the growth cap.
func (t *cookieTable) ceiling() int {
	if t.maxSlots < minTableSlots {
		return minTableSlots
	}
	return t.maxSlots
}

// grow doubles the table, re-inserting every entry. Reports false at the
// growth ceiling. Caller holds the shard write-lock.
func (t *cookieTable) grow() bool {
	n := len(t.keys) * 2
	if n > t.ceiling() {
		return false
	}
	oldKeys, oldVals := t.keys, t.vals
	t.init(n)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := slotHash(k) & t.mask
		for t.keys[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
	}
	return true
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

var t0 = time.Date(1996, 8, 28, 0, 0, 0, 0, time.UTC)

// rig is a two-endpoint test fixture over a simulated network.
type rig struct {
	clk      *vclock.Manual
	net      *netsim.Network
	epA, epB *Endpoint
	a, b     *Conn
	fromA    *sink // messages delivered at B
	fromB    *sink // messages delivered at A
}

type sink struct {
	mu   sync.Mutex
	msgs [][]byte
}

func (s *sink) add(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, append([]byte(nil), p...))
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *sink) get(i int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.msgs[i]
}

func specAB() (PeerSpec, PeerSpec) {
	a := PeerSpec{
		Addr: "B", LocalID: []byte("alice"), RemoteID: []byte("bob"),
		LocalPort: 1, RemotePort: 2, Epoch: 7,
	}
	b := PeerSpec{
		Addr: "A", LocalID: []byte("bob"), RemoteID: []byte("alice"),
		LocalPort: 2, RemotePort: 1, Epoch: 7,
	}
	return a, b
}

// newRig builds two dialled endpoints A and B over netCfg. mod tweaks the
// endpoint configs before creation.
func newRig(t *testing.T, netCfg netsim.Config, mod func(cfgA, cfgB *Config)) *rig {
	t.Helper()
	r := &rig{clk: vclock.NewManual(t0)}
	r.net = netsim.New(r.clk, netCfg)
	cfgA := Config{Transport: r.net.Endpoint("A"), Clock: r.clk}
	cfgB := Config{Transport: r.net.Endpoint("B"), Clock: r.clk}
	if mod != nil {
		mod(&cfgA, &cfgB)
	}
	var err error
	if r.epA, err = NewEndpoint(cfgA); err != nil {
		t.Fatal(err)
	}
	if r.epB, err = NewEndpoint(cfgB); err != nil {
		t.Fatal(err)
	}
	sa, sb := specAB()
	if r.a, err = r.epA.Dial(sa); err != nil {
		t.Fatal(err)
	}
	if r.b, err = r.epB.Dial(sb); err != nil {
		t.Fatal(err)
	}
	r.fromA, r.fromB = &sink{}, &sink{}
	r.b.OnDeliver(r.fromA.add)
	r.a.OnDeliver(r.fromB.add)
	t.Cleanup(func() { r.epA.Close(); r.epB.Close() })
	return r
}

// settleNet advances the virtual clock far enough for every queued
// delivery, ack and retransmission to complete.
func (r *rig) settleNet(d time.Duration) { r.clk.Advance(d) }

func TestPingPong(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	if err := r.a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if r.fromA.count() != 1 || !bytes.Equal(r.fromA.get(0), []byte("ping")) {
		t.Fatalf("B got %d messages", r.fromA.count())
	}
	if err := r.b.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if r.fromB.count() != 1 || !bytes.Equal(r.fromB.get(0), []byte("pong")) {
		t.Fatalf("A got %d messages", r.fromB.count())
	}
}

func TestConnIDOnlyOnFirstMessage(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	for i := 0; i < 5; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r.settleNet(time.Second)
	st := r.a.Stats()
	if st.ConnIDSent != 1 {
		t.Fatalf("ConnIDSent = %d, want 1 (first message only)", st.ConnIDSent)
	}
	if r.fromA.count() != 5 {
		t.Fatalf("delivered %d", r.fromA.count())
	}
}

func TestFastPathEngages(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	const n = 20
	for i := 0; i < n; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.settleNet(10 * time.Millisecond) // let acks flow
	}
	sa := r.a.Stats()
	if sa.FastSends != n {
		t.Fatalf("FastSends = %d, want %d", sa.FastSends, n)
	}
	sb := r.b.Stats()
	// The first delivery carries the identification (slow); the rest are
	// predicted.
	if sb.SlowDelivers != 1 {
		t.Fatalf("SlowDelivers = %d, want 1", sb.SlowDelivers)
	}
	if sb.FastDelivers != n-1 {
		t.Fatalf("FastDelivers = %d, want %d", sb.FastDelivers, n-1)
	}
}

func TestRPCFromCallback(t *testing.T) {
	// The RPC pattern: B replies from inside its delivery callback, over
	// a synchronous network — must not deadlock.
	r := newRig(t, netsim.Config{}, nil)
	r.b.OnDeliver(func(p []byte) {
		if err := r.b.Send(append([]byte("re:"), p...)); err != nil {
			t.Error(err)
		}
	})
	for i := 0; i < 10; i++ {
		if err := r.a.Send([]byte(fmt.Sprintf("req%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if r.fromB.count() != 10 {
		t.Fatalf("replies = %d", r.fromB.count())
	}
	if got := string(r.fromB.get(3)); got != "re:req3" {
		t.Fatalf("reply = %q", got)
	}
}

func TestLossRecovery(t *testing.T) {
	r := newRig(t, netsim.Config{
		Latency:  50 * time.Microsecond,
		LossRate: 0.3,
		Seed:     11,
	}, nil)
	const n = 100
	for i := 0; i < n; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.settleNet(time.Millisecond)
	}
	// Let retransmissions complete.
	for i := 0; i < 100 && r.fromA.count() < n; i++ {
		r.settleNet(300 * time.Millisecond)
	}
	if r.fromA.count() != n {
		t.Fatalf("delivered %d/%d", r.fromA.count(), n)
	}
	for i := 0; i < n; i++ {
		if r.fromA.get(i)[0] != byte(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestReorderAndDuplicationRecovery(t *testing.T) {
	r := newRig(t, netsim.Config{
		Latency:     100 * time.Microsecond,
		ReorderRate: 0.3,
		DupRate:     0.3,
		Seed:        13,
	}, nil)
	const n = 80
	for i := 0; i < n; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.settleNet(50 * time.Microsecond)
	}
	for i := 0; i < 100 && r.fromA.count() < n; i++ {
		r.settleNet(300 * time.Millisecond)
	}
	if r.fromA.count() != n {
		t.Fatalf("delivered %d/%d (exactly-once violated?)", r.fromA.count(), n)
	}
	for i := 0; i < n; i++ {
		if r.fromA.get(i)[0] != byte(i) {
			t.Fatalf("out of order at %d: got %d", i, r.fromA.get(i)[0])
		}
	}
}

func TestWindowBackpressureAndPacking(t *testing.T) {
	r := newRig(t, netsim.Config{Latency: time.Millisecond}, nil)
	// Window 16: a burst of 40 equal-size messages fills the window and
	// backlogs the rest; when acks reopen it, the backlog is packed.
	const n = 40
	for i := 0; i < n; i++ {
		if err := r.a.Send([]byte{byte(i), 0xAA}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.a.Stats()
	if st.Backlogged == 0 {
		t.Fatal("no backpressure observed")
	}
	for i := 0; i < 50 && r.fromA.count() < n; i++ {
		r.settleNet(50 * time.Millisecond)
	}
	if r.fromA.count() != n {
		t.Fatalf("delivered %d/%d", r.fromA.count(), n)
	}
	for i := 0; i < n; i++ {
		if r.fromA.get(i)[0] != byte(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
	st = r.a.Stats()
	if st.PackedBatches == 0 {
		t.Fatal("backlog was not packed (§3.4)")
	}
	if unpacked := r.b.Stats().PackedMsgs; unpacked == 0 {
		t.Fatal("receiver did not unpack")
	}
}

func TestFragmentation(t *testing.T) {
	build := func(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
		f := layers.NewFrag()
		f.Threshold = 100
		return []stack.Layer{
			layers.NewChksum(),
			f,
			layers.NewWindow(),
			&layers.Ident{
				Local: spec.LocalID, Remote: spec.RemoteID,
				LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
				Epoch: spec.Epoch, Order: order,
			},
		}, nil
	}
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.Build = build
		cfgB.Build = build
	})
	big := bytes.Repeat([]byte("0123456789"), 57) // 570 bytes -> 6 fragments
	if err := r.a.Send(big); err != nil {
		t.Fatal(err)
	}
	r.settleNet(time.Second)
	if r.fromA.count() != 1 {
		t.Fatalf("delivered %d messages, want 1 reassembled", r.fromA.count())
	}
	if !bytes.Equal(r.fromA.get(0), big) {
		t.Fatal("reassembled payload differs")
	}
	// Fragments take the slow path by design (§6).
	if st := r.a.Stats(); st.SlowSends == 0 {
		t.Fatal("oversized send did not take the slow path")
	}
}

func TestCookieHandshake(t *testing.T) {
	// §2.2's alternative: agree on cookies up front; no identification
	// ever crosses the wire.
	sa, sb := specAB()
	sa.OutCookie, sa.ExpectInCookie, sa.SkipFirstConnID = 111, 222, true
	sb.OutCookie, sb.ExpectInCookie, sb.SkipFirstConnID = 222, 111, true
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	epA, err := NewEndpoint(Config{Transport: net.Endpoint("A"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	b.OnDeliver(func(p []byte) { got = append([]byte(nil), p...) })
	if err := a.Send([]byte("no-ident")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if !bytes.Equal(got, []byte("no-ident")) {
		t.Fatalf("got %q", got)
	}
	if st := a.Stats(); st.ConnIDSent != 0 {
		t.Fatalf("ConnIDSent = %d, want 0", st.ConnIDSent)
	}
}

func TestUnknownCookieDropped(t *testing.T) {
	sa, _ := specAB()
	sa.OutCookie, sa.SkipFirstConnID = 333, true // B never learns it
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	epA, err := NewEndpoint(Config{Transport: net.Endpoint("A"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if st := epB.Snapshot(); st.UnknownCookie != 1 {
		t.Fatalf("UnknownCookie = %d", st.UnknownCookie)
	}
}

func TestAcceptFlow(t *testing.T) {
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	var serverConn *Conn
	var served sink
	epB, err := NewEndpoint(Config{
		Transport: net.Endpoint("B"),
		Clock:     clk,
		Accept: func(remote layers.IdentInfo, netSrc string) (PeerSpec, bool) {
			return PeerSpec{
				Addr:      netSrc,
				LocalID:   bytes.TrimRight(remote.Dst, "\x00"),
				RemoteID:  bytes.TrimRight(remote.Src, "\x00"),
				LocalPort: remote.DstPort, RemotePort: remote.SrcPort,
				Epoch: remote.Epoch,
			}, true
		},
		OnConn: func(c *Conn) {
			serverConn = c
			c.OnDeliver(served.add)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	epA, err := NewEndpoint(Config{Transport: net.Endpoint("A"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	sa, _ := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("hello server")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if served.count() != 1 || !bytes.Equal(served.get(0), []byte("hello server")) {
		t.Fatalf("server got %d messages", served.count())
	}
	if serverConn == nil {
		t.Fatal("OnConn not invoked")
	}
	if st := epB.Snapshot(); st.Accepted != 1 {
		t.Fatalf("Accepted = %d", st.Accepted)
	}
	// And the server can reply over the accepted connection.
	var back sink
	a.OnDeliver(back.add)
	if err := serverConn.Send([]byte("welcome")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if back.count() != 1 || !bytes.Equal(back.get(0), []byte("welcome")) {
		t.Fatalf("client got %d messages", back.count())
	}
}

func TestCrossEndianDelivery(t *testing.T) {
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.Order = bits.LittleEndian
		cfgB.Order = bits.BigEndian
	})
	for i := 0; i < 10; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.settleNet(10 * time.Millisecond)
	}
	if r.fromA.count() != 10 {
		t.Fatalf("delivered %d", r.fromA.count())
	}
	// Heterogeneous peers are correct but never take the receive fast
	// path (prediction buffers are native-order).
	if st := r.b.Stats(); st.FastDelivers != 0 {
		t.Fatalf("FastDelivers = %d across byte orders", st.FastDelivers)
	}
	// And the reverse direction works too.
	if err := r.b.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	r.settleNet(10 * time.Millisecond)
	if r.fromB.count() != 1 || !bytes.Equal(r.fromB.get(0), []byte("back")) {
		t.Fatal("reverse direction failed")
	}
}

func TestCorruptionDropped(t *testing.T) {
	// A datagram corrupted in flight is dropped by the delivery filter
	// (checksum) and recovered by retransmission... netsim does not
	// corrupt, so inject manually through a raw endpoint.
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	epB, err := NewEndpoint(Config{Transport: net.Endpoint("B"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	_, sb := specAB()
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	var got sink
	b.OnDeliver(got.add)

	// Capture a legitimate datagram from A, corrupt its payload.
	rawA := net.Endpoint("A")
	var captured []byte
	epA, err := NewEndpoint(Config{Transport: &capturingTransport{Transport: rawA, out: &captured}, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	sa, _ := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("nothing captured")
	}
	if got.count() != 1 {
		t.Fatalf("clean message not delivered: %d", got.count())
	}
	bad := append([]byte(nil), captured...)
	bad[len(bad)-1] ^= 0xFF // corrupt last payload byte
	rawA.Send("B", bad)
	if got.count() != 1 {
		t.Fatal("corrupted datagram was delivered")
	}
	if st := b.Stats(); st.Dropped == 0 {
		t.Fatal("corruption not counted as dropped")
	}
}

// capturingTransport records the last datagram sent.
type capturingTransport struct {
	Transport
	out *[]byte
}

func (c *capturingTransport) Send(dst string, d []byte) error {
	*c.out = append([]byte(nil), d...)
	return c.Transport.Send(dst, d)
}

func TestBacklogFull(t *testing.T) {
	r := newRig(t, netsim.Config{Latency: time.Hour}, func(cfgA, cfgB *Config) {
		cfgA.MaxBacklog = 4
	})
	// Window 16 + backlog 4: sends 0..15 fly, 16..19 backlog, 20 errors.
	var err error
	for i := 0; i < 21; i++ {
		err = r.a.Send([]byte{byte(i)})
		if i < 20 && err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err != ErrBacklogFull {
		t.Fatalf("final send err = %v", err)
	}
}

func TestSendAfterClose(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	if err := r.a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.a.Send([]byte("x")); err != ErrConnClosed {
		t.Fatalf("err = %v", err)
	}
	if err := r.a.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

func TestModesIdleAtRest(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	r.a.Send([]byte("x"))
	r.settleNet(time.Second)
	s, rv := r.a.Modes()
	if s != Idle || rv != Idle {
		t.Fatalf("modes = %v, %v", s, rv)
	}
	if Idle.String() != "IDLE" || Pre.String() != "PRE" || Post.String() != "POST" {
		t.Fatal("mode names")
	}
}

func TestCompiledFiltersEquivalent(t *testing.T) {
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.CompiledFilters = true
		cfgB.CompiledFilters = true
	})
	for i := 0; i < 10; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.settleNet(10 * time.Millisecond)
	}
	if r.fromA.count() != 10 {
		t.Fatalf("delivered %d", r.fromA.count())
	}
	if st := r.a.Stats(); st.FastSends != 10 {
		t.Fatalf("FastSends = %d", st.FastSends)
	}
}

func TestPackSameSizeOnly(t *testing.T) {
	r := newRig(t, netsim.Config{Latency: time.Millisecond}, func(cfgA, cfgB *Config) {
		cfgA.PackSameSizeOnly = true
	})
	// Fill the window, then backlog mixed sizes: same-size packing must
	// still deliver everything in order.
	var want [][]byte
	for i := 0; i < 30; i++ {
		p := bytes.Repeat([]byte{byte(i)}, 1+i%3)
		want = append(want, p)
		if err := r.a.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60 && r.fromA.count() < len(want); i++ {
		r.settleNet(50 * time.Millisecond)
	}
	if r.fromA.count() != len(want) {
		t.Fatalf("delivered %d/%d", r.fromA.count(), len(want))
	}
	for i := range want {
		if !bytes.Equal(r.fromA.get(i), want[i]) {
			t.Fatalf("message %d differs", i)
		}
	}
}

func TestLazyPostFlush(t *testing.T) {
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.LazyPost = true
	})
	if err := r.a.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// With LazyPost, the post-send is still pending after the op...
	st := r.a.Stats()
	if st.PostRuns != 0 {
		t.Fatalf("PostRuns = %d before Flush", st.PostRuns)
	}
	r.a.Flush()
	st = r.a.Stats()
	if st.PostRuns == 0 {
		t.Fatal("Flush did not run post-processing")
	}
	// ...but a second Send drains it first (§3.1) even without Flush.
	if err := r.a.Send([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if r.fromA.count() != 2 {
		t.Fatalf("delivered %d", r.fromA.count())
	}
}

func TestGoldenWireFormat(t *testing.T) {
	// Regression-pin the Fig. 1 wire format: preamble (8B, cookie+flags),
	// then the compact class headers, packing byte, payload.
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	var captured []byte
	ep, err := NewEndpoint(Config{
		Transport: &capturingTransport{Transport: net.Endpoint("A"), out: &captured},
		Clock:     clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	sa, _ := specAB()
	sa.OutCookie = 0x2AAAAAAAAAAAAAAA & CookieMask
	sa.SkipFirstConnID = true
	c, err := ep.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte{0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	// Sizes: proto-spec = seq32+type2+isfrag1+last1 = 36 bits -> 5 B;
	// msg-spec = len16+ck16 = 4 B; gossip = ack32 = 4 B; packing = 1 B.
	wantLen := PreambleSize + 5 + 4 + 4 + 1 + 2
	if len(captured) != wantLen {
		t.Fatalf("wire length = %d, want %d", len(captured), wantLen)
	}
	pre, err := DecodePreamble(captured)
	if err != nil {
		t.Fatal(err)
	}
	if pre.ConnIDPresent {
		t.Fatal("CIP set despite SkipFirstConnID")
	}
	if pre.Cookie != sa.OutCookie {
		t.Fatalf("cookie = %#x", pre.Cookie)
	}
	if pre.Order != bits.BigEndian {
		t.Fatal("order bit")
	}
	// Payload travels in the clear at the tail.
	if !bytes.Equal(captured[wantLen-2:], []byte{0xDE, 0xAD}) {
		t.Fatal("payload not at tail")
	}
	// The normal-case header total is well under the paper's 40-byte
	// U-Net threshold.
	if hdr := wantLen - 2; hdr > 40 {
		t.Fatalf("normal header = %d bytes, paper demands < 40", hdr)
	}
}

func TestHeaderCompactness(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	s := r.a.Schema()
	if s.TotalSize() > 16 {
		t.Fatalf("normal headers = %d bytes", s.TotalSize())
	}
	if r.epA.IdentSize() != 76 {
		t.Fatalf("ident = %d bytes, want 76", r.epA.IdentSize())
	}
}

func TestManyMessagesStream(t *testing.T) {
	r := newRig(t, netsim.Config{Latency: 10 * time.Microsecond}, nil)
	const n = 1000
	sent := 0
	for sent < n {
		if err := r.a.Send([]byte{byte(sent), byte(sent >> 8)}); err != nil {
			t.Fatal(err)
		}
		sent++
		if sent%8 == 0 {
			r.settleNet(100 * time.Microsecond)
		}
	}
	for i := 0; i < 100 && r.fromA.count() < n; i++ {
		r.settleNet(50 * time.Millisecond)
	}
	if r.fromA.count() != n {
		t.Fatalf("delivered %d/%d", r.fromA.count(), n)
	}
	for i := 0; i < n; i++ {
		m := r.fromA.get(i)
		if int(m[0])|int(m[1])<<8 != i {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestPreambleRoundTrip(t *testing.T) {
	for _, p := range []Preamble{
		{ConnIDPresent: true, Order: bits.LittleEndian, Cookie: 12345},
		{ConnIDPresent: false, Order: bits.BigEndian, Cookie: CookieMask},
		{Cookie: 0},
	} {
		b := p.Encode(nil)
		got, err := DecodePreamble(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("round trip: %+v != %+v", got, p)
		}
	}
	if _, err := DecodePreamble([]byte{1, 2, 3}); err == nil {
		t.Fatal("short preamble accepted")
	}
}

func TestNewCookie(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		c, err := NewCookie()
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 || c > CookieMask {
			t.Fatalf("cookie %#x out of range", c)
		}
		if seen[c] {
			t.Fatal("cookie collision in 100 draws")
		}
		seen[c] = true
	}
}

func TestPackingCodec(t *testing.T) {
	cases := [][]int{
		nil,
		{42},
		{8, 8, 8, 8},
		{1, 2, 3},
		{0, 0},
	}
	for _, sizes := range cases {
		enc := encodePacking(nil, sizes)
		got, n, err := decodePacking(enc)
		if err != nil {
			t.Fatalf("%v: %v", sizes, err)
		}
		if n != len(enc) {
			t.Fatalf("%v: consumed %d of %d", sizes, n, len(enc))
		}
		if len(sizes) <= 1 {
			if got != nil {
				t.Fatalf("%v: got %v", sizes, got)
			}
			continue
		}
		if len(got) != len(sizes) {
			t.Fatalf("%v: got %v", sizes, got)
		}
		for i := range sizes {
			if got[i] != sizes[i] {
				t.Fatalf("%v: got %v", sizes, got)
			}
		}
	}
	// Malformed headers.
	for _, b := range [][]byte{{}, {9}, {1}, {1, 0x80}, {2, 3, 1}} {
		if _, _, err := decodePacking(b); err == nil {
			t.Fatalf("decodePacking(%v) accepted", b)
		}
	}
	if err := checkPackedSizes([]int{3, 4}, 7); err != nil {
		t.Fatal(err)
	}
	if err := checkPackedSizes([]int{3, 4}, 8); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestIdleDrainer(t *testing.T) {
	// LazyPost + IdleDrain: post-processing happens in the background
	// ("when the application is idle"), without a Flush or another op.
	net := netsim.New(vclock.Real{}, netsim.Config{})
	mk := func(addr string) *Endpoint {
		ep, err := NewEndpoint(Config{
			Transport: net.Endpoint(addr),
			LazyPost:  true,
			IdleDrain: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	epA, epB := mk("A"), mk("B")
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := epB.Dial(sb); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().PostRuns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background drainer never ran post-processing")
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstMessageLossRecovery(t *testing.T) {
	// §2.2: "if the first message is lost, the next message will be
	// dropped as well because the cookie is unknown and the connection
	// identification is not included. Currently, the PA relies on
	// retransmission by one of the protocol layers to deal with this
	// problem." Reproduce exactly that.
	r := newRig(t, netsim.Config{Latency: 40 * time.Microsecond}, nil)
	// Partition while the first (identification-carrying) message and a
	// few cookie-only successors are sent.
	r.net.SetLinkDown("A", "B", true)
	for i := 0; i < 3; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r.settleNet(time.Millisecond)
	if r.fromA.count() != 0 {
		t.Fatal("partitioned messages delivered")
	}
	// Heal. Nothing arrives until the retransmission timer fires;
	// retransmissions carry the identification, so B learns the cookie
	// and the whole stream recovers in order.
	r.net.SetLinkDown("A", "B", false)
	for i := 0; i < 100 && r.fromA.count() < 3; i++ {
		r.settleNet(300 * time.Millisecond)
	}
	if r.fromA.count() != 3 {
		t.Fatalf("delivered %d/3 after heal", r.fromA.count())
	}
	for i := 0; i < 3; i++ {
		if r.fromA.get(i)[0] != byte(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
	if st := r.a.Stats(); st.Retransmits == 0 {
		t.Fatal("recovery did not use retransmission")
	}
}

func TestUnknownCookieDropsUntilIdentArrives(t *testing.T) {
	// The §2.2 drop behaviour in detail: cookie-only messages sent after
	// a lost first message are dropped at the router, counted, and the
	// application never sees them out of order.
	r := newRig(t, netsim.Config{Latency: 40 * time.Microsecond}, nil)
	r.net.SetLinkDown("A", "B", true)
	if err := r.a.Send([]byte{0}); err != nil { // ident-carrier, lost
		t.Fatal(err)
	}
	r.settleNet(time.Millisecond)
	r.net.SetLinkDown("A", "B", false)
	if err := r.a.Send([]byte{1}); err != nil { // cookie-only, dropped at B
		t.Fatal(err)
	}
	r.settleNet(time.Millisecond)
	if got := r.epB.Snapshot().UnknownCookie; got == 0 {
		t.Fatal("cookie-only message was not counted as unknown")
	}
	if r.fromA.count() != 0 {
		t.Fatal("out-of-order delivery before recovery")
	}
	for i := 0; i < 100 && r.fromA.count() < 2; i++ {
		r.settleNet(300 * time.Millisecond)
	}
	if r.fromA.count() != 2 || r.fromA.get(0)[0] != 0 || r.fromA.get(1)[0] != 1 {
		t.Fatalf("recovery failed: %d delivered", r.fromA.count())
	}
}

func TestMultipleConnectionsBetweenSameHosts(t *testing.T) {
	// Two connections between the same endpoints, demultiplexed by port:
	// cookies route each to its own PA.
	r := newRig(t, netsim.Config{}, nil)
	sa2, sb2 := specAB()
	sa2.LocalPort, sa2.RemotePort = 11, 12
	sb2.LocalPort, sb2.RemotePort = 12, 11
	a2, err := r.epA.Dial(sa2)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.epB.Dial(sb2)
	if err != nil {
		t.Fatal(err)
	}
	var second sink
	b2.OnDeliver(second.add)
	if err := r.a.Send([]byte("conn1")); err != nil {
		t.Fatal(err)
	}
	if err := a2.Send([]byte("conn2")); err != nil {
		t.Fatal(err)
	}
	if r.fromA.count() != 1 || string(r.fromA.get(0)) != "conn1" {
		t.Fatalf("conn1 got %d", r.fromA.count())
	}
	if second.count() != 1 || string(second.get(0)) != "conn2" {
		t.Fatalf("conn2 got %d", second.count())
	}
	// Closing one must not disturb the other.
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.a.Send([]byte("still-up")); err != nil {
		t.Fatal(err)
	}
	if r.fromA.count() != 2 {
		t.Fatal("surviving connection broken by sibling close")
	}
}

func TestLittleEndianHomogeneousFastPath(t *testing.T) {
	// Two little-endian peers take the fast path like big-endian ones.
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.Order = bits.LittleEndian
		cfgB.Order = bits.LittleEndian
	})
	for i := 0; i < 10; i++ {
		if err := r.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		r.settleNet(10 * time.Millisecond)
	}
	if r.fromA.count() != 10 {
		t.Fatalf("delivered %d", r.fromA.count())
	}
	if st := r.b.Stats(); st.FastDelivers != 9 { // first carries ident
		t.Fatalf("FastDelivers = %d", st.FastDelivers)
	}
}

func TestDebugStringCoversTable3(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	r.a.Send([]byte("x"))
	out := r.a.DebugString()
	for _, want := range []string{"mode=", "disable=", "backlog=", "filter=", "predicted proto-spec", "cookie"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DebugString missing %q:\n%s", want, out)
		}
	}
}

// TestSoak pushes a sustained bidirectional workload through a lossy,
// reordering, duplicating network in virtual time: both directions must
// deliver everything exactly once, in order.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r := newRig(t, netsim.Config{
		Latency:     80 * time.Microsecond,
		LossRate:    0.15,
		DupRate:     0.1,
		ReorderRate: 0.15,
		Seed:        2026,
	}, nil)
	const n = 1500
	for i := 0; i < n; i++ {
		pi := []byte{byte(i), byte(i >> 8), 0xA}
		if err := r.a.Send(pi); err != nil {
			t.Fatal(err)
		}
		po := []byte{byte(i), byte(i >> 8), 0xB}
		if err := r.b.Send(po); err != nil {
			t.Fatal(err)
		}
		r.settleNet(200 * time.Microsecond)
	}
	for i := 0; i < 600 && (r.fromA.count() < n || r.fromB.count() < n); i++ {
		r.settleNet(300 * time.Millisecond)
	}
	if r.fromA.count() != n || r.fromB.count() != n {
		t.Fatalf("delivered %d/%d and %d/%d", r.fromA.count(), n, r.fromB.count(), n)
	}
	for i := 0; i < n; i++ {
		ma, mb := r.fromA.get(i), r.fromB.get(i)
		if int(ma[0])|int(ma[1])<<8 != i || ma[2] != 0xA {
			t.Fatalf("A→B stream wrong at %d", i)
		}
		if int(mb[0])|int(mb[1])<<8 != i || mb[2] != 0xB {
			t.Fatalf("B→A stream wrong at %d", i)
		}
	}
}

func TestVirtualTimeRTTIsNetworkBound(t *testing.T) {
	// Under the manual clock on the paper's network parameters, the
	// engine adds nothing to the virtual critical path: a round trip
	// costs exactly two propagation delays plus two cell-serialization
	// times. (Real CPU time is not modelled by the virtual clock; this
	// pins the engine's scheduling, not its speed.)
	r := newRig(t, netsim.PaperConfig(), nil)
	r.b.OnDeliver(func(p []byte) {
		if err := r.b.Send(p); err != nil {
			t.Error(err)
		}
	})
	done := 0
	r.a.OnDeliver(func([]byte) { done++ })

	start := r.clk.Now()
	if err := r.a.Send(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// Hop the virtual clock until the reply lands.
	for i := 0; i < 100 && done == 0; i++ {
		next, ok := r.clk.NextDeadline()
		if !ok {
			break
		}
		r.clk.AdvanceTo(next)
	}
	if done != 1 {
		t.Fatal("reply never delivered")
	}
	rtt := r.clk.Now().Sub(start)
	// First exchange carries the 76-byte identification each way plus
	// ~22B headers + 8B payload: 106B → 3 cells → ~9.1 µs tx, then 35
	// µs propagation, per direction.
	min := 2 * 35 * time.Microsecond
	max := 2 * (35 + 15) * time.Microsecond
	if rtt < min || rtt > max {
		t.Fatalf("virtual RTT = %v, want within [%v, %v]", rtt, min, max)
	}
}

func TestEpochRestart(t *testing.T) {
	// A peer restarting with a new epoch presents a fresh
	// identification; the Accept hook creates a new connection while
	// datagrams from the old incarnation keep being rejected by the
	// surviving side's ident layer.
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	var served sink
	accepted := 0
	epB, err := NewEndpoint(Config{
		Transport: net.Endpoint("B"),
		Clock:     clk,
		Accept: func(remote layers.IdentInfo, netSrc string) (PeerSpec, bool) {
			accepted++
			return PeerSpec{
				Addr:      netSrc,
				LocalID:   bytes.TrimRight(remote.Dst, "\x00"),
				RemoteID:  bytes.TrimRight(remote.Src, "\x00"),
				LocalPort: remote.DstPort, RemotePort: remote.SrcPort,
				Epoch: remote.Epoch,
			}, true
		},
		OnConn: func(c *Conn) { c.OnDeliver(served.add) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	dial := func(epoch uint32) (*Endpoint, *Conn) {
		ep, err := NewEndpoint(Config{Transport: net.Endpoint(fmt.Sprintf("A-%d", epoch)), Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		c, err := ep.Dial(PeerSpec{
			Addr: "B", LocalID: []byte("client"), RemoteID: []byte("kv"),
			LocalPort: 5, RemotePort: 6, Epoch: epoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ep, c
	}
	// First incarnation.
	ep1, c1 := dial(1)
	if err := c1.Send([]byte("epoch1")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if served.count() != 1 || accepted != 1 {
		t.Fatalf("served=%d accepted=%d", served.count(), accepted)
	}
	ep1.Close()
	// Restart with a new epoch: a distinct identification, so B's
	// accept hook runs again and a second connection serves it.
	ep2, c2 := dial(2)
	defer ep2.Close()
	if err := c2.Send([]byte("epoch2")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if served.count() != 2 || accepted != 2 {
		t.Fatalf("after restart: served=%d accepted=%d", served.count(), accepted)
	}
	if !bytes.Equal(served.get(1), []byte("epoch2")) {
		t.Fatalf("second incarnation delivered %q", served.get(1))
	}
}

func TestPackedBatchesRespectFragThreshold(t *testing.T) {
	// Regression for a bug found at streaming scale: the packer must
	// never build a packed message that the fragmentation layer would
	// split, or reassembly loses the packing structure and N messages
	// arrive as one. 1 KB messages, default 8000-byte threshold: at
	// most 7 per batch.
	r := newRig(t, netsim.Config{Latency: 500 * time.Microsecond, MTU: 64 << 10}, nil)
	const n = 120
	payload := bytes.Repeat([]byte{0x5A}, 1024)
	for i := 0; i < n; i++ {
		p := append([]byte(nil), payload...)
		p[0] = byte(i)
		if err := r.a.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200 && r.fromA.count() < n; i++ {
		r.settleNet(50 * time.Millisecond)
	}
	if r.fromA.count() != n {
		t.Fatalf("delivered %d/%d (packing structure lost?)", r.fromA.count(), n)
	}
	for i := 0; i < n; i++ {
		m := r.fromA.get(i)
		if len(m) != 1024 || m[0] != byte(i) {
			t.Fatalf("message %d corrupted: len=%d", i, len(m))
		}
	}
	st := r.a.Stats()
	if st.PackedBatches == 0 {
		t.Fatal("no packing happened; test lost its purpose")
	}
	if avg := float64(st.PackedMsgs) / float64(st.PackedBatches); avg > 7.01 {
		t.Fatalf("average batch %.1f × 1 KB exceeds the 8000-byte bound", avg)
	}
}

package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/telemetry"
)

// Fanout is the group-multicast engine: the paper's send-side split —
// one pre-processing pass, per-message work amortized — applied across
// the members of a group instead of across the messages of a backlog
// (§3.4's packing, rotated 90 degrees).
//
// One Send performs the pre-processing exactly once: a pooled *template*
// datagram is built (packing byte, header-class regions, payload) and
// the send packet filter runs over it once, filling the message-specific
// MsgSpec fields (checksum, length, timestamp) that are identical for
// every member — they digest only the payload. Then a per-member
// *stamping* pass clones the template and fills only what differs per
// member: the predicted protocol-specific header (that member's window
// sequence number) and gossip header (that member's ack state) are
// copied over the clone's regions, and the preamble is prepended with
// that member's cookie (plus the connection identification when due).
// Every stamped wire image is gathered into one scattered-destination
// burst and handed to the transport's SendBatchTo — one sendmmsg per 64
// members on Linux — instead of N full Send pipelines and N syscalls.
//
// Each member keeps its own reliable window: the stamped clone runs that
// member's PostSend post-processing (sequence advance, retransmit
// buffer), so loss, recovery and churn behave exactly as if the member
// had been sent to individually. A member whose window is closed joins
// its backlog (packed and sent when the window reopens); a member that
// is failed or closed contributes an error without blocking the rest.
//
// All members must be connections of the same endpoint, dialed with the
// same stack, so the template's geometry and filter program match every
// member. Send is safe for concurrent use; member churn (Add/Remove) may
// interleave with sends.
type Fanout struct {
	ep *Endpoint

	mu    sync.Mutex
	conns []*Conn

	// Gather scratch, reused across sends: the stamped wire images, their
	// per-index destinations, and the member connection owning each
	// pooled buffer.
	bufs   [][]byte
	dsts   []string
	owners []*Conn
	// failIdx are gather indices the transport refused this send,
	// ascending; errs collects every per-member failure (never only the
	// first — a partial fanout must be visible in full). leave gathers
	// members found closed mid-fanout: a Close racing an in-flight Send
	// is a departure, not a failure — it rides the view change (the
	// member is dropped from the group) instead of surfacing an error.
	failIdx []int
	errs    []error
	leave   []*Conn

	// tenv is the template's filter environment. Send runs under f.mu, so
	// one reusable environment suffices.
	tenv filter.Env

	// Telemetry: the members gauge tracks Add/Remove; fanout spans sample
	// through their own counter (under f.mu), mirroring Conn.telStart.
	members  *telemetry.NamedGauge
	telShard uint32
	telMask  uint32
	telCount uint32
}

// FanoutMembersGauge is the named telemetry gauge tracking the engine's
// current member count.
const FanoutMembersGauge = "fanout/members"

// TemplateStamper is optionally implemented by stack layers to declare
// their relationship with externally-built templates. The fanout engine
// builds one datagram and runs the send packet filter once for a whole
// group; a layer is template-safe when every MsgSpec (message-specific)
// field it registers is written by the send filter — never predicted —
// and everything member-specific it owns rides the predicted ProtoSpec
// or Gossip classes, which the stamping pass re-copies per member.
// The engine treats layers that do not implement the interface as safe
// (the built-in layers are — checksum and stamp fill MsgSpec by filter,
// the window predicts ProtoSpec/Gossip) and additionally verifies at
// stamp time that no layer has predicted MsgSpec bytes, falling back to
// the full per-member send path for that member if one has.
type TemplateStamper interface {
	TemplateStampable() bool
}

// ErrFanoutMixedEndpoints is returned by NewFanout when a member
// connection belongs to a different endpoint.
var ErrFanoutMixedEndpoints = errors.New("core: fanout members must share one endpoint")

// NewFanout creates a fanout engine over the endpoint's connections.
// Every conn must belong to ep. Members can be added and removed later.
func NewFanout(ep *Endpoint, conns ...*Conn) (*Fanout, error) {
	f := &Fanout{
		ep:      ep,
		members: ep.tel.NamedGauge(FanoutMembersGauge),
		telMask: ep.cfg.telemetrySampleMask(),
	}
	for _, c := range conns {
		if err := f.Add(c); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Add registers a member connection. It must belong to the engine's
// endpoint and its stack must not declare itself template-unsafe.
func (f *Fanout) Add(c *Conn) error {
	if c.ep != f.ep {
		return ErrFanoutMixedEndpoints
	}
	for _, l := range c.st.Layers() {
		if ts, ok := l.(TemplateStamper); ok && !ts.TemplateStampable() {
			return fmt.Errorf("core: fanout: layer %s is not template-stampable", l.Name())
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, have := range f.conns {
		if have == c {
			return nil
		}
	}
	f.conns = append(f.conns, c)
	if f.telShard == 0 {
		f.telShard = c.telShard
	}
	f.members.Set(int64(len(f.conns)))
	return nil
}

// Remove drops a member connection (member churn; the connection itself
// is not closed). Unknown members are ignored.
func (f *Fanout) Remove(c *Conn) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, have := range f.conns {
		if have == c {
			f.conns = append(f.conns[:i], f.conns[i+1:]...)
			break
		}
	}
	f.members.Set(int64(len(f.conns)))
}

// Len reports the current member count.
func (f *Fanout) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.conns)
}

// Send multicasts payload to every member: one template build and filter
// pass, one stamp per member, one batched transmit. Per-member failures
// (closed, failed, backlog full, transport refusal) are collected and
// returned joined; the remaining members are always attempted.
func (f *Fanout) Send(payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.conns) == 0 {
		return nil
	}
	var t0 time.Time
	if f.ep.tel != nil {
		f.telCount++
		if f.telCount&f.telMask == 0 {
			t0 = time.Now()
		}
	}
	f.errs = f.errs[:0]
	f.failIdx = f.failIdx[:0]
	f.leave = f.leave[:0]

	// Template build: the geometry (class sizes, filter program) is fixed
	// at stack construction and identical across the endpoint's members,
	// so the first member's is the group's. The filter writes only into
	// the template's regions via the environment — no connection state —
	// so no lock is needed here.
	tc := f.conns[0]
	tc.mu.Lock()
	stateful := !allZero(tc.send.predict[header.MsgSpec])
	tc.mu.Unlock()
	if stateful {
		// A layer predicts message-specific bytes — an encryption
		// layer's sealed flag. Its filter pass mutates per-connection
		// crypto state (a nonce burn under the template connection's
		// key), and the sealed bytes would be wrong for every other
		// member anyway: no shared template can exist. Skip the build
		// entirely and run the full per-member path.
		err := f.sendPerMember(payload)
		f.processLeaves()
		f.telEnd(t0)
		return err
	}
	tmpl := message.New(payload)
	tmpl.Push(1)[0] = packSingle
	gos := tmpl.Push(tc.gosN)
	msgRegion := tmpl.Push(tc.msgN)
	proto := tmpl.Push(tc.protoN)

	f.tenv = filter.Env{}
	f.tenv.Payload = tmpl.Payload()
	f.tenv.Order = tc.order
	f.tenv.Time = tc.envTime()
	f.tenv.Hdr[header.ProtoSpec] = proto
	f.tenv.Hdr[header.MsgSpec] = msgRegion
	f.tenv.Hdr[header.Gossip] = gos

	if status := tc.send.runFilter(&f.tenv); status != filter.StatusOK {
		// The filter wants the slow path for this shape (an over-threshold
		// payload headed for fragmentation): no shared template exists, so
		// every member takes its own full send.
		tmpl.Free()
		err := f.sendPerMember(payload)
		f.processLeaves()
		f.telEnd(t0)
		return err
	}

	protoOff := 0
	msgOff := tc.protoN
	gosOff := tc.protoN + tc.msgN

	// Stamp pass: per member, under that member's lock — drain its
	// pending send post-processing first (§3.1: a stale post op would
	// leave a stale predicted sequence), then clone the template and
	// overwrite only the member-specific predicted classes.
	f.bufs = f.bufs[:0]
	f.dsts = f.dsts[:0]
	f.owners = f.owners[:0]
	for _, c := range f.conns {
		c.mu.Lock()
		if err := c.sendOpen(); err != nil {
			closed := c.closed
			c.mu.Unlock()
			if closed {
				f.leave = append(f.leave, c)
			} else {
				f.memberErr(c, err)
			}
			continue
		}
		c.drain(&c.send)
		if c.send.disable > 0 {
			// Window closed: the payload joins this member's backlog and
			// is packed out when the window reopens, exactly as a direct
			// Send would. A full backlog is backpressure for this member
			// only.
			if len(c.send.backlog) >= c.ep.cfg.maxBacklog() {
				c.mu.Unlock()
				f.memberErr(c, ErrBacklogFull)
				continue
			}
			c.stats.Sent++
			c.stats.Backlogged++
			c.send.backlog = append(c.send.backlog, message.New(payload))
			c.mu.Unlock()
			continue
		}
		if !allZero(c.send.predict[header.MsgSpec]) {
			// A layer has predicted message-specific bytes, so the
			// template's filter-filled MsgSpec is not valid for this
			// member; take the full per-member path (see TemplateStamper).
			c.stats.Sent++
			err := c.sendMsg(message.New(payload), nil)
			c.boundPending(&c.send)
			c.settle()
			c.wakeIdle()
			c.mu.Unlock()
			c.flushTx()
			if err != nil {
				f.memberErr(c, err)
			}
			continue
		}

		m := tmpl.Clone()
		b := m.Bytes()
		copy(b[protoOff:protoOff+tc.protoN], c.send.predict[header.ProtoSpec])
		copy(b[gosOff:gosOff+tc.gosN], c.send.predict[header.Gossip])

		env := c.getEnv()
		env.Payload = m.Payload()
		env.Order = c.order
		env.Time = f.tenv.Time
		env.Hdr[header.ProtoSpec] = b[protoOff : protoOff+tc.protoN]
		env.Hdr[header.MsgSpec] = b[msgOff : msgOff+tc.msgN]
		env.Hdr[header.Gossip] = b[gosOff : gosOff+tc.gosN]

		c.stats.Sent++
		c.stats.FastSends++
		// transmit prepends this member's preamble (cookie, and the
		// connection identification when due) and queues the wire image
		// on the member's tx queue; steal it into the shared gather so
		// the whole fanout goes down as one burst.
		c.transmit(m)
		n := len(c.txq)
		buf := c.txq[n-1]
		c.txq[n-1] = nil
		c.txq = c.txq[:n-1]
		c.txPending.Add(-1)
		c.queuePostSend(m, env)
		c.boundPending(&c.send)
		c.settle()
		c.wakeIdle()
		dst := c.addr
		c.mu.Unlock()

		f.bufs = append(f.bufs, buf)
		f.dsts = append(f.dsts, dst)
		f.owners = append(f.owners, c)
	}
	tmpl.Free()

	// Batched transmit: the whole gather in one SendBatchTo (chunked by
	// the transport), with the per-datagram prefix-error contract — a
	// refused datagram is skipped and the rest of the burst re-batched.
	if len(f.bufs) > 0 {
		st := f.ep.stats.stripe(uint64(f.telShard))
		if bt := f.ep.batchTo; bt != nil && len(f.bufs) > 1 {
			off := 0
			for off < len(f.bufs) {
				n, err := bt.SendBatchTo(f.dsts[off:], f.bufs[off:])
				if n < 0 {
					n = 0
				}
				if n > len(f.bufs)-off {
					n = len(f.bufs) - off
				}
				st.batchSends.Add(1)
				st.batchDatagrams.Add(uint64(n))
				if err == nil {
					break
				}
				idx := off + n
				st.txErrors.Add(1)
				f.failIdx = append(f.failIdx, idx)
				f.errs = append(f.errs, fmt.Errorf("core: fanout to %s: %w", f.dsts[idx], err))
				off = idx + 1
			}
		} else {
			tr := f.ep.cfg.Transport
			for i := range f.bufs {
				if err := tr.Send(f.dsts[i], f.bufs[i]); err != nil {
					st.txErrors.Add(1)
					f.failIdx = append(f.failIdx, i)
					f.errs = append(f.errs, fmt.Errorf("core: fanout to %s: %w", f.dsts[i], err))
				}
			}
		}
	}

	// Return the stamped buffers to their owners' pools and attribute
	// transport refusals; then flush any residual per-member traffic the
	// stamping pass queued (a backlog kicked by an ack that arrived
	// synchronously).
	fi := 0
	for i, c := range f.owners {
		c.mu.Lock()
		c.putTxBuf(f.bufs[i])
		if fi < len(f.failIdx) && f.failIdx[fi] == i {
			c.stats.SendErrors++
			fi++
		}
		c.mu.Unlock()
		f.bufs[i] = nil
		f.owners[i] = nil
	}
	for _, c := range f.conns {
		c.flushTx()
	}

	f.processLeaves()
	f.telEnd(t0)
	return f.joinErrs()
}

// sendPerMember is the no-template fallback: every member runs its own
// full send pipeline. Caller holds f.mu.
func (f *Fanout) sendPerMember(payload []byte) error {
	for _, c := range f.conns {
		if err := c.Send(payload); err != nil {
			if errors.Is(err, ErrConnClosed) && c.State() == StateClosed {
				f.leave = append(f.leave, c)
				continue
			}
			f.memberErr(c, err)
		}
	}
	return f.joinErrs()
}

// processLeaves drops the members a Send found closed — departure rides
// the view change instead of repeating a per-member error every
// multicast. Caller holds f.mu.
func (f *Fanout) processLeaves() {
	if len(f.leave) == 0 {
		return
	}
	for _, gone := range f.leave {
		for i, have := range f.conns {
			if have == gone {
				f.conns = append(f.conns[:i], f.conns[i+1:]...)
				break
			}
		}
	}
	f.leave = f.leave[:0]
	f.members.Set(int64(len(f.conns)))
}

// memberErr records one member's failure without aborting the fanout.
func (f *Fanout) memberErr(c *Conn, err error) {
	f.errs = append(f.errs, fmt.Errorf("core: fanout member %s: %w", c.spec.Addr, err))
}

// joinErrs combines the collected per-member errors (nil when none).
func (f *Fanout) joinErrs() error {
	if len(f.errs) == 0 {
		return nil
	}
	err := errors.Join(f.errs...)
	f.errs = f.errs[:0]
	return err
}

// telEnd closes a sampled fanout span.
func (f *Fanout) telEnd(t0 time.Time) {
	if !t0.IsZero() {
		f.ep.tel.Record(telemetry.OpFanout, f.telShard, time.Since(t0))
	}
}

// allZero reports whether b contains only zero bytes.
func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/faultinject"
	"paccel/internal/layers"
	"paccel/internal/netsim"
	"paccel/internal/stack"
)

// heartbeatStack is DefaultStack plus a keepalive layer. Dead-peer
// detection plus recovery needs a liveness source, or an idle healed
// connection would (correctly) trip ErrPeerSilent again and flap
// between Active and Recovering.
func heartbeatStack(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
	return []stack.Layer{
		layers.NewChksum(),
		layers.NewFrag(),
		layers.NewWindow(),
		&layers.Heartbeat{Interval: 30 * time.Millisecond},
		&layers.Ident{
			Local: spec.LocalID, Remote: spec.RemoteID,
			LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
			Epoch: spec.Epoch, Order: order,
		},
	}, nil
}

// testRecovery is the recovery configuration the tests share: fast,
// deterministic backoff on the manual clock.
func testRecovery(maxAttempts int) RecoveryConfig {
	return RecoveryConfig{
		MaxAttempts: maxAttempts,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Seed:        7,
	}
}

// partitionAB cuts (or heals) both directions between A and B.
func partitionAB(r *rig, down bool) {
	r.net.SetLinkDown("A", "B", down)
	r.net.SetLinkDown("B", "A", down)
}

// advanceBy steps the manual clock in 5ms increments so timers,
// retransmissions and probes interleave the way real time would.
func advanceBy(r *rig, d time.Duration) {
	const step = 5 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		r.clk.Advance(step)
	}
}

// TestRecoveryHealsPartition is the tentpole scenario: a partition
// fails both sides into Recovering, the partition heals, probes
// re-establish the session, and every payload submitted before or
// during the failover is delivered exactly once, in order.
func TestRecoveryHealsPartition(t *testing.T) {
	type recovery struct {
		cause    error
		attempts int
	}
	var mu sync.Mutex
	var recovered []recovery
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		for _, cfg := range []*Config{cfgA, cfgB} {
			cfg.Build = heartbeatStack
			cfg.PeerTimeout = 100 * time.Millisecond
			cfg.Recovery = testRecovery(50)
		}
		cfgA.Recovery.OnRecover = func(c *Conn, cause error, attempts int) {
			mu.Lock()
			recovered = append(recovered, recovery{cause, attempts})
			mu.Unlock()
		}
	})

	var want [][]byte
	send := func(p string) {
		if err := r.a.Send([]byte(p)); err != nil {
			t.Fatalf("Send(%q) = %v", p, err)
		}
		want = append(want, []byte(p))
	}
	for i := 0; i < 5; i++ {
		send(fmt.Sprintf("pre-%d", i))
	}

	partitionAB(r, true)
	// Submitted into the void: these sit unacked in A's window.
	for i := 0; i < 3; i++ {
		send(fmt.Sprintf("cut-%d", i))
	}
	advanceBy(r, 300*time.Millisecond) // dead-peer detection trips
	if got := r.a.State(); got != StateRecovering {
		t.Fatalf("state during partition = %v, want recovering", got)
	}
	if err := r.a.Err(); err != nil {
		t.Fatalf("Err() while recovering = %v, want nil (not Failed)", err)
	}
	// Sends during recovery divert to the backlog.
	send("during-recovery")
	advanceBy(r, 200*time.Millisecond) // probes burn into the partition

	partitionAB(r, false)
	advanceBy(r, 2*time.Second)

	if got := r.a.State(); got != StateActive {
		t.Fatalf("state after heal = %v, want active", got)
	}
	if got := r.b.State(); got != StateActive {
		t.Fatalf("peer state after heal = %v, want active", got)
	}
	if r.fromA.count() != len(want) {
		t.Fatalf("B delivered %d messages, want %d", r.fromA.count(), len(want))
	}
	for i, w := range want {
		if !bytes.Equal(r.fromA.get(i), w) {
			t.Fatalf("message %d = %q, want %q", i, r.fromA.get(i), w)
		}
	}
	st := r.a.Stats()
	if st.Recoveries != 1 || st.Recovered != 1 {
		t.Fatalf("Recoveries=%d Recovered=%d, want 1/1", st.Recoveries, st.Recovered)
	}
	if st.RecoveryProbes == 0 {
		t.Fatal("no recovery probes counted")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recovered) != 1 {
		t.Fatalf("OnRecover ran %d times, want 1", len(recovered))
	}
	if !errors.Is(recovered[0].cause, ErrPeerSilent) {
		t.Fatalf("OnRecover cause = %v, want ErrPeerSilent", recovered[0].cause)
	}
	if recovered[0].attempts < 1 {
		t.Fatalf("OnRecover attempts = %d, want >= 1", recovered[0].attempts)
	}

	// The healed session keeps working both ways.
	if err := r.b.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if r.fromB.count() != 1 || !bytes.Equal(r.fromB.get(0), []byte("back")) {
		t.Fatalf("A got %d reverse messages", r.fromB.count())
	}
}

// TestRecoveryExhaustedFails: a permanent partition runs the retry
// budget out, and the connection lands in Failed with
// ErrRecoveryExhausted wrapping ErrConnFailed (and the original cause).
func TestRecoveryExhaustedFails(t *testing.T) {
	var gaveUp atomic.Int64
	var giveUpErr error
	var failMu sync.Mutex
	var failErrs []error
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.PeerTimeout = 100 * time.Millisecond
		cfgA.Recovery = testRecovery(4)
		cfgA.Recovery.OnGiveUp = func(c *Conn, err error) {
			gaveUp.Add(1)
			giveUpErr = err
		}
		cfgA.OnConnFail = func(c *Conn, err error) {
			failMu.Lock()
			failErrs = append(failErrs, err)
			failMu.Unlock()
		}
	})
	if err := r.a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	partitionAB(r, true)
	advanceBy(r, 3*time.Second)

	if got := r.a.State(); got != StateFailed {
		t.Fatalf("state = %v, want failed", got)
	}
	err := r.a.Err()
	for _, target := range []error{ErrConnFailed, ErrRecoveryExhausted, ErrPeerSilent} {
		if !errors.Is(err, target) {
			t.Fatalf("Err() = %v, want it to wrap %v", err, target)
		}
	}
	if serr := r.a.Send([]byte("x")); !errors.Is(serr, ErrRecoveryExhausted) {
		t.Fatalf("Send after exhaustion = %v, want ErrRecoveryExhausted", serr)
	}
	if gaveUp.Load() != 1 {
		t.Fatalf("OnGiveUp ran %d times, want 1", gaveUp.Load())
	}
	if !errors.Is(giveUpErr, ErrRecoveryExhausted) {
		t.Fatalf("OnGiveUp err = %v", giveUpErr)
	}
	failMu.Lock()
	defer failMu.Unlock()
	if len(failErrs) != 1 || !errors.Is(failErrs[0], ErrRecoveryExhausted) {
		t.Fatalf("OnConnFail calls = %v, want one exhaustion error", failErrs)
	}
	st := r.a.Stats()
	if st.RecoveryProbes != 4 {
		t.Fatalf("RecoveryProbes = %d, want the full budget of 4", st.RecoveryProbes)
	}
}

// TestExplicitFailDuringRecoveryEscalates: Fail on a recovering
// connection goes terminal immediately instead of starting another
// recovery round.
func TestExplicitFailDuringRecoveryEscalates(t *testing.T) {
	var gaveUp atomic.Int64
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.PeerTimeout = 100 * time.Millisecond
		cfgA.Recovery = testRecovery(50)
		cfgA.Recovery.OnGiveUp = func(*Conn, error) { gaveUp.Add(1) }
	})
	partitionAB(r, true)
	advanceBy(r, 300*time.Millisecond)
	if got := r.a.State(); got != StateRecovering {
		t.Fatalf("state = %v, want recovering", got)
	}
	boom := errors.New("boom")
	r.a.Fail(boom)
	if got := r.a.State(); got != StateFailed {
		t.Fatalf("state after explicit Fail = %v", got)
	}
	if err := r.a.Err(); !errors.Is(err, boom) || errors.Is(err, ErrRecoveryExhausted) {
		t.Fatalf("Err() = %v, want the explicit cause, not exhaustion", err)
	}
	if gaveUp.Load() != 0 {
		t.Fatal("OnGiveUp ran for an explicit escalation")
	}
	// The recovery timer is gone: advancing further must not probe.
	probes := r.a.Stats().RecoveryProbes
	advanceBy(r, time.Second)
	if got := r.a.Stats().RecoveryProbes; got != probes {
		t.Fatalf("probes kept firing after terminal failure: %d -> %d", probes, got)
	}
}

// TestRecoveryCallbackReentrancy is the lock-audit regression test:
// OnRecover, OnGiveUp and OnConnFail must run without the connection
// lock (or any router shard lock), so a callback that calls back into
// the Conn — Send, State, Stats, Close — must not deadlock.
func TestRecoveryCallbackReentrancy(t *testing.T) {
	t.Run("recover", func(t *testing.T) {
		var reentered atomic.Int64
		r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
			for _, cfg := range []*Config{cfgA, cfgB} {
				cfg.Build = heartbeatStack
				cfg.PeerTimeout = 100 * time.Millisecond
				cfg.Recovery = testRecovery(50)
			}
			cfgA.Recovery.OnRecover = func(c *Conn, cause error, attempts int) {
				_ = c.State()
				_ = c.Stats()
				if err := c.Send([]byte("from-callback")); err != nil {
					t.Errorf("Send inside OnRecover: %v", err)
				}
				reentered.Add(1)
			}
		})
		partitionAB(r, true)
		advanceBy(r, 300*time.Millisecond)
		partitionAB(r, false)
		advanceBy(r, 2*time.Second)
		if reentered.Load() != 1 {
			t.Fatalf("OnRecover ran %d times", reentered.Load())
		}
		found := false
		for i := 0; i < r.fromA.count(); i++ {
			if bytes.Equal(r.fromA.get(i), []byte("from-callback")) {
				found = true
			}
		}
		if !found {
			t.Fatal("message sent inside OnRecover never delivered")
		}
	})
	t.Run("giveup-close", func(t *testing.T) {
		var reentered atomic.Int64
		r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
			cfgA.PeerTimeout = 100 * time.Millisecond
			cfgA.Recovery = testRecovery(3)
			cfgA.Recovery.OnGiveUp = func(c *Conn, err error) {
				_ = c.State()
				_ = c.Err()
				_ = c.Close() // reentrant teardown must not deadlock
				reentered.Add(1)
			}
			cfgA.OnConnFail = func(c *Conn, err error) {
				_ = c.State()
				if serr := c.Send([]byte("x")); serr == nil {
					t.Error("Send inside OnConnFail succeeded on a failed conn")
				}
			}
		})
		partitionAB(r, true)
		advanceBy(r, 3*time.Second)
		if reentered.Load() != 1 {
			t.Fatalf("OnGiveUp ran %d times", reentered.Load())
		}
		if got := r.a.State(); got != StateClosed {
			t.Fatalf("state after reentrant Close = %v", got)
		}
	})
}

// TestCookieGCEvictionMidRecovery: the peer's router evicts our learned
// cookie while we are partitioned and recovering. The resume probe
// carries the connection identification (§2.2), so the redial comes
// back through the identified path and re-learns the cookie instead of
// failing.
func TestCookieGCEvictionMidRecovery(t *testing.T) {
	r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
		cfgA.Build = heartbeatStack
		cfgB.Build = heartbeatStack
		cfgA.PeerTimeout = 100 * time.Millisecond
		cfgA.Recovery = testRecovery(50)
		cfgB.CookieTTL = 50 * time.Millisecond
	})
	if err := r.a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := cookieCount(r.epB); got != 1 {
		t.Fatalf("B learned %d cookies, want 1", got)
	}

	partitionAB(r, true)
	advanceBy(r, 500*time.Millisecond) // A trips into recovery; B's GC evicts
	if got := r.a.State(); got != StateRecovering {
		t.Fatalf("state = %v, want recovering", got)
	}
	if got := r.epB.Snapshot().CookiesEvicted; got == 0 {
		t.Fatal("B never evicted the idle learned cookie")
	}
	if got := cookieCount(r.epB); got != 0 {
		t.Fatalf("B still routes %d cookies mid-partition", got)
	}

	partitionAB(r, false)
	advanceBy(r, 2*time.Second)
	if got := r.a.State(); got != StateActive {
		t.Fatalf("state after heal = %v, want active (resume via identified path)", got)
	}
	if got := cookieCount(r.epB); got != 1 {
		t.Fatalf("B re-learned %d cookies, want 1", got)
	}
	if err := r.a.Send([]byte("again")); err != nil {
		t.Fatal(err)
	}
	if r.fromA.count() != 2 || !bytes.Equal(r.fromA.get(1), []byte("again")) {
		t.Fatalf("B delivered %d messages after resume", r.fromA.count())
	}
}

// TestPeerAddressMigration: B's socket moves to a new transport address
// mid-connection (NAT rebind / endpoint restart). B's identified resume
// traffic from the new address migrates A's route — no new Dial — and
// traffic flows both ways afterwards.
func TestPeerAddressMigration(t *testing.T) {
	clk := newTestClock()
	net := newTestNet(clk)
	faultB := faultinject.New(net.Endpoint("B"), clk, 1)
	epA, err := NewEndpoint(Config{Transport: net.Endpoint("A"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	epB, err := NewEndpoint(Config{
		Transport:   faultB,
		Clock:       clk,
		PeerTimeout: 100 * time.Millisecond,
		Recovery:    testRecovery(50),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { epA.Close(); epB.Close() })
	sa, sb := specAB()
	a, err := epA.Dial(sa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epB.Dial(sb)
	if err != nil {
		t.Fatal(err)
	}
	atB, atA := &sink{}, &sink{}
	b.OnDeliver(atB.add)
	a.OnDeliver(atA.add)

	if err := a.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if atB.count() != 1 || atA.count() != 1 {
		t.Fatalf("warmup: B got %d, A got %d", atB.count(), atA.count())
	}
	if got := a.RemoteAddr(); got != "B" {
		t.Fatalf("RemoteAddr before flip = %q", got)
	}

	// The flip: the old address goes dark, B's socket moves to B2.
	net.SetLinkDown("A", "B", true)
	net.SetLinkDown("B", "A", true)
	for i := 0; i < 60; i++ {
		clk.Advance(5 * time.Millisecond)
	}
	if got := b.State(); got != StateRecovering {
		t.Fatalf("B state after flip = %v, want recovering", got)
	}
	faultB.SwapInner(net.Endpoint("B2"))
	for i := 0; i < 400; i++ {
		clk.Advance(5 * time.Millisecond)
	}

	if got := b.State(); got != StateActive {
		t.Fatalf("B state after migration = %v, want active", got)
	}
	if got := a.RemoteAddr(); got != "B2" {
		t.Fatalf("A's route after flip = %q, want B2", got)
	}
	if got := a.Spec().Addr; got != "B" {
		t.Fatalf("Spec().Addr = %q, must keep the original", got)
	}
	if got := a.Stats().PeerMigrations; got == 0 {
		t.Fatal("no migration counted")
	}

	// Same connection, new path, both directions.
	if err := a.Send([]byte("three")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte("four")); err != nil {
		t.Fatal(err)
	}
	if atB.count() != 2 || !bytes.Equal(atB.get(1), []byte("three")) {
		t.Fatalf("B delivered %d after migration", atB.count())
	}
	if atA.count() != 2 || !bytes.Equal(atA.get(1), []byte("four")) {
		t.Fatalf("A delivered %d after migration", atA.count())
	}
}

// TestCookieOnlyDatagramNeverMigrates: a datagram routed purely by
// cookie (no identification) must not rewrite the peer route, whatever
// its source address claims — migration requires ident validation.
func TestCookieOnlyDatagramNeverMigrates(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	if err := r.a.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	// Steady-state traffic is cookie-routed; replay it from a bogus
	// source straight into A's router.
	if err := r.b.Send([]byte("normal")); err != nil {
		t.Fatal(err)
	}
	if got := r.a.Stats().PeerMigrations; got != 0 {
		t.Fatalf("migrations after cookie traffic = %d", got)
	}
	if got := r.a.RemoteAddr(); got != "B" {
		t.Fatalf("RemoteAddr = %q", got)
	}
}

// TestRecoveryBackoffDeterministic: two runs with the same seed see the
// same probe schedule (the jitter is reproducible), and the delays stay
// within [0, MaxDelay).
func TestRecoveryBackoffDeterministic(t *testing.T) {
	schedule := func() []int64 {
		r := newRig(t, netsim.Config{}, func(cfgA, cfgB *Config) {
			cfgA.PeerTimeout = 100 * time.Millisecond
			cfgA.Recovery = testRecovery(8)
		})
		partitionAB(r, true)
		var times []int64
		probes := uint64(0)
		for i := 0; i < 1000; i++ {
			r.clk.Advance(time.Millisecond)
			if p := r.a.Stats().RecoveryProbes; p != probes {
				probes = p
				times = append(times, r.clk.Now().Sub(t0).Milliseconds())
			}
		}
		return times
	}
	first := schedule()
	second := schedule()
	if len(first) == 0 {
		t.Fatal("no probes observed")
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("schedules differ:\n%v\n%v", first, second)
	}
}

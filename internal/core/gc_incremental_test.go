package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

// TestCookieGCSweepBudgetBounded is the regression test for the
// incremental GC: the old sweep walked every shard's whole table under
// routeMu, so at large entry counts one timer callback stalled the
// receive path for the full scan. The incremental sweep must never
// examine more than Config.GCSweepBudget slots per callback — and must
// still evict everything the TTL contract promises.
func TestCookieGCSweepBudgetBounded(t *testing.T) {
	const ttl = time.Minute
	const budget = 128
	const entries = 20000
	const anchors = 8
	clk := newTestClock()
	net := newTestNet(clk)
	epS, err := NewEndpoint(Config{
		Transport:     net.Endpoint("S"),
		Clock:         clk,
		CookieTTL:     ttl,
		GCSweepBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epS.Close()

	// Spread the synthetic learned routes over a few anchor connections,
	// like a real fleet would.
	for i := 0; i < anchors; i++ {
		anchor, err := epS.Dial(PeerSpec{
			Addr: fmt.Sprintf("X%d", i), LocalID: []byte("s"), RemoteID: []byte("x"),
			LocalPort: uint16(i + 1), RemotePort: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := entries / anchors
		if got := epS.BindBenchCookies(anchor, uint64(1+i*n)<<20, n, true); got != n {
			t.Fatalf("anchor %d: bound %d of %d synthetic cookies", i, got, n)
		}
	}
	if got := cookieCount(epS); got != entries {
		t.Fatalf("router holds %d cookies before GC, want %d", got, entries)
	}
	slots := epS.Snapshot().TableSlots
	if slots <= budget {
		t.Fatalf("table has only %d slots — grow the test, the budget is not exercised", slots)
	}

	// Three TTLs: every pass is now split over many bounded sweeps, and
	// all idle learned routes must still be gone.
	clk.Advance(3 * ttl)
	s := epS.Snapshot()
	if s.GCMaxSweepSlots > budget {
		t.Fatalf("GCMaxSweepSlots = %d exceeds the %d-slot budget (sweep not incremental)",
			s.GCMaxSweepSlots, budget)
	}
	minSweeps := uint64(slots) / budget // at least one pass's worth of sweeps
	if s.GCSweeps < minSweeps {
		t.Fatalf("GCSweeps = %d, want ≥ %d — the pass was not split", s.GCSweeps, minSweeps)
	}
	if got := cookieCount(epS); got != 0 {
		t.Fatalf("router holds %d cookies after 3×TTL, want 0 (bounded memory)", got)
	}
	if s.CookiesEvicted != entries {
		t.Fatalf("CookiesEvicted = %d, want %d", s.CookiesEvicted, entries)
	}
}

// TestGCPacingUnchangedForSmallTables pins the compatibility contract:
// when the table fits inside one sweep budget, the GC keeps the classic
// TTL/2 cadence, so small-deployment eviction timing is bit-identical to
// the pre-incremental engine (the manual-clock GC tests above depend on
// it).
func TestGCPacingUnchangedForSmallTables(t *testing.T) {
	const ttl = time.Minute
	clk := newTestClock()
	net := newTestNet(clk)
	epS, err := NewEndpoint(Config{Transport: net.Endpoint("S"), Clock: clk, CookieTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer epS.Close()
	anchor, err := epS.Dial(PeerSpec{
		Addr: "X", LocalID: []byte("s"), RemoteID: []byte("x"), LocalPort: 1, RemotePort: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	epS.BindBenchCookies(anchor, 1<<20, 16, true)
	// A route never refreshed is evicted by the third sweep — exactly at
	// 1.5×TTL on the TTL/2 cadence, and not a sweep before.
	clk.Advance(3*ttl/2 - time.Millisecond)
	if got := cookieCount(epS); got != 16 {
		t.Fatalf("evicted early: %d cookies left before 1.5×TTL", got)
	}
	clk.Advance(time.Millisecond)
	if got := cookieCount(epS); got != 0 {
		t.Fatalf("%d cookies left at 1.5×TTL, want 0", got)
	}
	if s := epS.Snapshot(); s.GCSweeps != 3 {
		t.Fatalf("GCSweeps = %d over 1.5×TTL, want 3 (TTL/2 cadence)", s.GCSweeps)
	}
}

// TestShutdownMidStorm is the deadlock + goroutine-leak regression for
// Endpoint.Shutdown invoked while everything is on fire at once: the
// send backlog is full behind a partitioned link, recovery redials are
// in flight, a connect storm is hammering the admission path, and the
// incremental GC is sweeping. Shutdown must come back when its context
// expires (the backlog can never drain), close everything, and leave no
// goroutine behind.
func TestShutdownMidStorm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	net := netsim.New(vclock.Real{}, netsim.Config{})
	epS, err := NewEndpoint(Config{
		Transport:     net.Endpoint("S"),
		MaxConns:      3,
		MaxBacklog:    4,
		CookieTTL:     50 * time.Millisecond,
		GCSweepBudget: 64,
		Recovery:      RecoveryConfig{MaxAttempts: 10, BaseDelay: 2 * time.Millisecond, Seed: 1},
		Accept:        acceptAll,
		OnConn:        func(c *Conn) { c.OnDeliver(func([]byte) {}) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// A connection whose peer is partitioned away: its backlog fills and
	// cannot drain, and Fail puts recovery redials in flight.
	victim, err := epS.Dial(PeerSpec{
		Addr: "GONE", LocalID: []byte("s"), RemoteID: []byte("g"),
		LocalPort: 1, RemotePort: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.SetLinkDown("S", "GONE", true)
	net.SetLinkDown("GONE", "S", true)
	for i := 0; ; i++ {
		if err := victim.Send([]byte("stuck")); errors.Is(err, ErrBackpressure) {
			break
		}
		if i > 10000 {
			t.Fatal("backlog never filled")
		}
	}
	victim.Fail(errors.New("test: partition"))

	// The storm: concurrent clients spam identified first messages; with
	// MaxConns=3 the admission path is rejecting throughout.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var clients []*Endpoint
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ep, err := NewEndpoint(Config{Transport: net.Endpoint(fmt.Sprintf("C%d-%d", g, i))})
				if err != nil {
					return
				}
				mu.Lock()
				clients = append(clients, ep)
				mu.Unlock()
				conn, err := ep.Dial(PeerSpec{
					Addr: "S", LocalID: []byte(fmt.Sprintf("c%d-%d", g, i)), RemoteID: []byte("srv"),
					LocalPort: uint16(i%65000 + 1), RemotePort: 9, Epoch: uint32(g),
				})
				if err != nil {
					continue
				}
				conn.Send([]byte("storm"))
			}
		}(g)
	}

	// Let the storm rage, then shut down in the middle of it.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- epS.Shutdown(ctx) }()
	select {
	case err := <-done:
		// The victim's backlog can never drain, so the expected outcome
		// is the context's error after a forced Close.
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("Shutdown deadlocked mid-storm\n%s", buf[:runtime.Stack(buf, true)])
	}

	close(stop)
	wg.Wait()
	for _, ep := range clients {
		ep.Close()
	}
	settleGoroutines(t, baseline)
}

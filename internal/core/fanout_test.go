package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/header"
	"paccel/internal/layers"
	"paccel/internal/message"
	"paccel/internal/netsim"
	"paccel/internal/stack"
	"paccel/internal/telemetry"
	"paccel/internal/vclock"
)

// star is a hub endpoint with one full-stack connection to each of n
// member endpoints — the group-fanout fixture. Every channel runs the
// default four-layer stack, so each member has its own sliding window.
type star struct {
	clk   *vclock.Manual
	hub   *Endpoint
	conns []*Conn
	sinks []*sink
	fan   *Fanout
}

func memberName(i int) string { return fmt.Sprintf("m%02d", i) }

func newStar(t *testing.T, n int, rec *telemetry.Recorder, nc netsim.Config) *star {
	t.Helper()
	s := &star{clk: vclock.NewManual(t0)}
	net := netsim.New(s.clk, nc)
	hub, err := NewEndpoint(Config{
		Transport: net.Endpoint("hub"), Clock: s.clk,
		Telemetry: rec, TelemetrySampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.hub = hub
	t.Cleanup(func() { hub.Close() })
	for i := 0; i < n; i++ {
		name := memberName(i)
		ep, err := NewEndpoint(Config{Transport: net.Endpoint(name), Clock: s.clk})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		hc, err := hub.Dial(PeerSpec{
			Addr: name, LocalID: []byte("hub"), RemoteID: []byte(name),
			LocalPort: 1, RemotePort: uint16(i + 2), Epoch: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		mc, err := ep.Dial(PeerSpec{
			Addr: "hub", LocalID: []byte(name), RemoteID: []byte("hub"),
			LocalPort: uint16(i + 2), RemotePort: 1, Epoch: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		sk := &sink{}
		mc.OnDeliver(sk.add)
		s.conns = append(s.conns, hc)
		s.sinks = append(s.sinks, sk)
	}
	if s.fan, err = NewFanout(hub, s.conns...); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFanoutDeliversToAllMembers drives multicasts through the engine
// and checks every member's sink sees every payload, in order, on the
// fast path.
func TestFanoutDeliversToAllMembers(t *testing.T) {
	const members, rounds = 5, 40
	s := newStar(t, members, nil, netsim.Config{})
	for i := 0; i < rounds; i++ {
		if err := s.fan.Send([]byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
		// Let delayed acks fire so windows keep sliding.
		s.clk.Advance(200 * time.Millisecond)
	}
	s.clk.Advance(2 * time.Second)
	for m, sk := range s.sinks {
		if sk.count() != rounds {
			t.Fatalf("member %d delivered %d of %d", m, sk.count(), rounds)
		}
		for i := 0; i < rounds; i++ {
			want := fmt.Sprintf("msg-%03d", i)
			if string(sk.get(i)) != want {
				t.Fatalf("member %d message %d = %q, want %q", m, i, sk.get(i), want)
			}
		}
	}
	// The stamped path is the fast path: every multicast counts one
	// FastSend per member, and the gathers went down as batches.
	for m, c := range s.conns {
		st := c.Stats()
		if st.Sent != rounds {
			t.Fatalf("member %d conn Sent=%d, want %d", m, st.Sent, rounds)
		}
		if st.FastSends == 0 {
			t.Fatalf("member %d conn never took the fast path", m)
		}
	}
	if bs := s.hub.Snapshot().BatchSends; bs < rounds {
		t.Fatalf("BatchSends=%d, want >= %d (one batch per multicast)", bs, rounds)
	}
}

// TestFanoutMatchesPerMemberSend checks parity: the same payload
// sequence through the engine and through a per-member Send loop
// delivers identical bytes at every member.
func TestFanoutMatchesPerMemberSend(t *testing.T) {
	const members, rounds = 4, 25
	batched := newStar(t, members, nil, netsim.Config{})
	looped := newStar(t, members, nil, netsim.Config{})
	for i := 0; i < rounds; i++ {
		payload := []byte(fmt.Sprintf("parity-%03d", i))
		if err := batched.fan.Send(payload); err != nil {
			t.Fatal(err)
		}
		for _, c := range looped.conns {
			if err := c.Send(payload); err != nil {
				t.Fatal(err)
			}
		}
		batched.clk.Advance(200 * time.Millisecond)
		looped.clk.Advance(200 * time.Millisecond)
	}
	batched.clk.Advance(2 * time.Second)
	looped.clk.Advance(2 * time.Second)
	for m := 0; m < members; m++ {
		if batched.sinks[m].count() != looped.sinks[m].count() {
			t.Fatalf("member %d: fanout delivered %d, per-member %d",
				m, batched.sinks[m].count(), looped.sinks[m].count())
		}
		for i := 0; i < batched.sinks[m].count(); i++ {
			if string(batched.sinks[m].get(i)) != string(looped.sinks[m].get(i)) {
				t.Fatalf("member %d message %d: fanout %q vs per-member %q",
					m, i, batched.sinks[m].get(i), looped.sinks[m].get(i))
			}
		}
	}
}

// TestFanoutPerMemberWindows desynchronizes the members' window
// sequences with direct sends before multicasting: the stamping pass
// must use each member's own predicted sequence, not the template's.
func TestFanoutPerMemberWindows(t *testing.T) {
	const members = 3
	s := newStar(t, members, nil, netsim.Config{})
	// Member 0 is 5 messages ahead, member 1 is 2 ahead.
	for i := 0; i < 5; i++ {
		if err := s.conns[0].Send([]byte("ahead0")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := s.conns[1].Send([]byte("ahead1")); err != nil {
			t.Fatal(err)
		}
	}
	s.clk.Advance(time.Second)
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if err := s.fan.Send([]byte(fmt.Sprintf("multi-%02d", i))); err != nil {
			t.Fatal(err)
		}
		s.clk.Advance(200 * time.Millisecond)
	}
	s.clk.Advance(2 * time.Second)
	wants := []int{rounds + 5, rounds + 2, rounds}
	for m, sk := range s.sinks {
		if sk.count() != wants[m] {
			t.Fatalf("member %d delivered %d, want %d", m, sk.count(), wants[m])
		}
		// The multicasts arrive in order after the member's direct sends.
		for i := 0; i < rounds; i++ {
			want := fmt.Sprintf("multi-%02d", i)
			if got := string(sk.get(wants[m] - rounds + i)); got != want {
				t.Fatalf("member %d multicast %d = %q, want %q", m, i, got, want)
			}
		}
	}
}

// TestFanoutBacklogWhenWindowClosed fills the members' windows by
// multicasting without letting acks through, then releases the clock:
// overflow multicasts ride each member's backlog and every message still
// arrives exactly once, in order.
func TestFanoutBacklogWhenWindowClosed(t *testing.T) {
	const members, rounds = 3, 30 // window is 16: the tail must backlog
	// Latency keeps acks in flight while the burst fills the windows.
	s := newStar(t, members, nil, netsim.Config{Latency: 20 * time.Millisecond})
	for i := 0; i < rounds; i++ {
		if err := s.fan.Send([]byte(fmt.Sprintf("burst-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	backlogged := uint64(0)
	for _, c := range s.conns {
		backlogged += c.Stats().Backlogged
	}
	if backlogged == 0 {
		t.Fatal("expected the tail of the burst to backlog behind full windows")
	}
	for i := 0; i < 40; i++ {
		s.clk.Advance(500 * time.Millisecond)
	}
	for m, sk := range s.sinks {
		if sk.count() != rounds {
			t.Fatalf("member %d delivered %d of %d after drain", m, sk.count(), rounds)
		}
		for i := 0; i < rounds; i++ {
			want := fmt.Sprintf("burst-%02d", i)
			if string(sk.get(i)) != want {
				t.Fatalf("member %d message %d = %q, want %q", m, i, sk.get(i), want)
			}
		}
	}
}

// TestFanoutCollectsAllErrors fails two members mid-group and checks
// one Send reports both failures while the healthy members still get the
// message.
func TestFanoutCollectsAllErrors(t *testing.T) {
	const members = 4
	s := newStar(t, members, nil, netsim.Config{})
	if err := s.fan.Send([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	s.clk.Advance(time.Second)
	s.conns[1].Fail(errors.New("induced"))
	s.conns[3].Fail(errors.New("induced"))
	err := s.fan.Send([]byte("after"))
	if err == nil {
		t.Fatal("expected an error for the failed members")
	}
	if !errors.Is(err, ErrConnFailed) {
		t.Fatalf("err = %v, want ErrConnFailed in the chain", err)
	}
	msg := err.Error()
	for _, m := range []int{1, 3} {
		if !strings.Contains(msg, memberName(m)) {
			t.Fatalf("error %q does not name failed member %s", msg, memberName(m))
		}
	}
	// Failed members stay in the group: failure is the application's to
	// act on (close or recover), unlike a deliberate Close.
	if s.fan.Len() != members {
		t.Fatalf("Len = %d after member failures, want %d", s.fan.Len(), members)
	}
	s.clk.Advance(time.Second)
	for _, m := range []int{0, 2} {
		sk := s.sinks[m]
		if sk.count() != 2 || string(sk.get(1)) != "after" {
			t.Fatalf("healthy member %d delivered %d messages", m, sk.count())
		}
	}
}

// TestFanoutClosedMemberRidesViewChange closes two members mid-group: a
// Close racing an in-flight fanout is a departure, so the next Send
// drops them from the group silently — no per-member error — and the
// healthy members still get the message (the PR 9 churn leftover).
func TestFanoutClosedMemberRidesViewChange(t *testing.T) {
	const members = 4
	s := newStar(t, members, nil, netsim.Config{})
	if err := s.fan.Send([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	s.clk.Advance(time.Second)
	s.conns[1].Close()
	s.conns[3].Close()
	if err := s.fan.Send([]byte("after")); err != nil {
		t.Fatalf("Send over closed members: %v, want nil (leave rides the view change)", err)
	}
	if s.fan.Len() != members-2 {
		t.Fatalf("Len = %d after leaves, want %d", s.fan.Len(), members-2)
	}
	if err := s.fan.Send([]byte("steady")); err != nil {
		t.Fatalf("Send after view change: %v", err)
	}
	s.clk.Advance(time.Second)
	for _, m := range []int{0, 2} {
		sk := s.sinks[m]
		if sk.count() != 3 || string(sk.get(2)) != "steady" {
			t.Fatalf("healthy member %d delivered %d messages", m, sk.count())
		}
	}
}

// TestFanoutChurn adds and removes members mid-stream and checks the
// engine's membership, the telemetry gauge, and that removed members
// stop receiving.
func TestFanoutChurn(t *testing.T) {
	rec := telemetry.New(telemetry.Options{})
	const members = 3
	s := newStar(t, members, rec, netsim.Config{})
	gauge := rec.NamedGauge(FanoutMembersGauge)
	if got := gauge.Value(); got != members {
		t.Fatalf("members gauge = %d, want %d", got, members)
	}
	if err := s.fan.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	s.fan.Remove(s.conns[1])
	if s.fan.Len() != members-1 || gauge.Value() != members-1 {
		t.Fatalf("after Remove: Len=%d gauge=%d", s.fan.Len(), gauge.Value())
	}
	if err := s.fan.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.fan.Add(s.conns[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.fan.Add(s.conns[1]); err != nil { // idempotent
		t.Fatal(err)
	}
	if s.fan.Len() != members || gauge.Value() != members {
		t.Fatalf("after Add: Len=%d gauge=%d", s.fan.Len(), gauge.Value())
	}
	if err := s.fan.Send([]byte("three")); err != nil {
		t.Fatal(err)
	}
	s.clk.Advance(2 * time.Second)
	if got := s.sinks[1].count(); got != 2 {
		t.Fatalf("churned member delivered %d messages, want 2 (missed the middle one)", got)
	}
	if got := s.sinks[0].count(); got != 3 {
		t.Fatalf("steady member delivered %d messages, want 3", got)
	}
	// The engine's op histogram saw the fanouts.
	snap := rec.Snapshot(false)
	if snap.Ops[telemetry.OpFanout].Count == 0 {
		t.Fatal("telemetry recorded no fanout operations")
	}
}

// TestFanoutRejectsMixedEndpoints checks members must share the engine's
// endpoint.
func TestFanoutRejectsMixedEndpoints(t *testing.T) {
	r := newRig(t, netsim.Config{}, nil)
	if _, err := NewFanout(r.epA, r.a, r.b); !errors.Is(err, ErrFanoutMixedEndpoints) {
		t.Fatalf("NewFanout across endpoints: err = %v, want ErrFanoutMixedEndpoints", err)
	}
}

// notStampable wraps a layer and declares it template-unsafe.
type notStampable struct{ *layers.Chksum }

func (notStampable) TemplateStampable() bool { return false }

// TestFanoutRejectsUnstampableLayer checks a stack that declares itself
// template-unsafe is refused at Add time.
func TestFanoutRejectsUnstampableLayer(t *testing.T) {
	net := netsim.New(vclock.NewManual(t0), netsim.Config{})
	ep, err := NewEndpoint(Config{
		Transport: net.Endpoint("A"),
		Build: func(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
			return []stack.Layer{
				notStampable{layers.NewChksum()},
				layers.NewFrag(),
				&layers.Ident{
					Local: spec.LocalID, Remote: spec.RemoteID,
					LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
					Epoch: spec.Epoch, Order: order,
				},
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	c, err := ep.Dial(PeerSpec{Addr: "B", LocalID: []byte("a"), RemoteID: []byte("b"),
		LocalPort: 1, RemotePort: 2, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFanout(ep, c); err == nil ||
		!strings.Contains(err.Error(), "not template-stampable") {
		t.Fatalf("NewFanout with unstampable layer: err = %v", err)
	}
}

// msgSpecPredictor registers a message-specific field and — against the
// template contract — predicts it, forcing the engine's runtime
// fallback.
type msgSpecPredictor struct{ tag header.Handle }

func (l *msgSpecPredictor) Name() string { return "mspredict" }
func (l *msgSpecPredictor) Init(ic *stack.InitContext) error {
	var err error
	l.tag, err = ic.Schema.AddField(header.MsgSpec, l.Name(), "tag", 8, header.DontCare)
	return err
}
func (l *msgSpecPredictor) Prime(ctx *stack.Context) {
	l.tag.Write(ctx.PredictSend[header.MsgSpec], ctx.Order, 0xA5)
}
func (l *msgSpecPredictor) PreSend(ctx *stack.Context, m *message.Msg) stack.Verdict {
	l.tag.Write(ctx.Env.Hdr[header.MsgSpec], ctx.Order, 0xA5)
	return stack.Continue
}
func (l *msgSpecPredictor) PostSend(*stack.Context, *message.Msg)                 {}
func (l *msgSpecPredictor) PreDeliver(*stack.Context, *message.Msg) stack.Verdict { return stack.Continue }
func (l *msgSpecPredictor) PostDeliver(*stack.Context, *message.Msg)              {}

// TestFanoutFallbackOnPredictedMsgSpec checks the runtime backstop: a
// layer that predicts MsgSpec bytes invalidates the shared template, so
// the engine silently takes the full per-member path — correct delivery,
// no batches.
func TestFanoutFallbackOnPredictedMsgSpec(t *testing.T) {
	clk := vclock.NewManual(t0)
	net := netsim.New(clk, netsim.Config{})
	build := func(spec PeerSpec, order bits.ByteOrder) ([]stack.Layer, error) {
		return []stack.Layer{
			layers.NewChksum(),
			&msgSpecPredictor{},
			layers.NewFrag(),
			&layers.Ident{
				Local: spec.LocalID, Remote: spec.RemoteID,
				LocalPort: spec.LocalPort, RemotePort: spec.RemotePort,
				Epoch: spec.Epoch, Order: order,
			},
		}, nil
	}
	hub, err := NewEndpoint(Config{Transport: net.Endpoint("hub"), Clock: clk, Build: build})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	const members = 3
	var conns []*Conn
	var sinks []*sink
	for i := 0; i < members; i++ {
		name := memberName(i)
		ep, err := NewEndpoint(Config{Transport: net.Endpoint(name), Clock: clk, Build: build})
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		hc, err := hub.Dial(PeerSpec{
			Addr: name, LocalID: []byte("hub"), RemoteID: []byte(name),
			LocalPort: 1, RemotePort: uint16(i + 2), Epoch: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		mc, err := ep.Dial(PeerSpec{
			Addr: "hub", LocalID: []byte(name), RemoteID: []byte("hub"),
			LocalPort: uint16(i + 2), RemotePort: 1, Epoch: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		sk := &sink{}
		mc.OnDeliver(sk.add)
		conns = append(conns, hc)
		sinks = append(sinks, sk)
	}
	fan, err := NewFanout(hub, conns...)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 10
	for i := 0; i < rounds; i++ {
		if err := fan.Send([]byte(fmt.Sprintf("fb-%02d", i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(100 * time.Millisecond)
	}
	clk.Advance(time.Second)
	for m, sk := range sinks {
		if sk.count() != rounds {
			t.Fatalf("member %d delivered %d of %d on the fallback path", m, sk.count(), rounds)
		}
	}
}

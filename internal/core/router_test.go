package core

import (
	"errors"
	"testing"

	"paccel/internal/netsim"
	"paccel/internal/vclock"
)

func routerEndpoint(t *testing.T) *Endpoint {
	t.Helper()
	net := netsim.New(vclock.Real{}, netsim.Config{})
	ep, err := NewEndpoint(Config{Transport: net.Endpoint("A")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return ep
}

func routerSpec(i int, cookie uint64) PeerSpec {
	return PeerSpec{
		Addr: "B", LocalID: []byte("me"), RemoteID: []byte("peer"),
		LocalPort: uint16(10 + i), RemotePort: uint16(20 + i), Epoch: 1,
		ExpectInCookie: cookie,
	}
}

// TestDialCookieCollision: a pre-agreed cookie already routed to a live
// connection must be refused, not silently rebound (last-writer-wins let
// a second Dial hijack the first connection's traffic).
func TestDialCookieCollision(t *testing.T) {
	ep := routerEndpoint(t)
	const cookie = 0xfeedbeef

	first, err := ep.Dial(routerSpec(0, cookie))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Dial(routerSpec(1, cookie)); !errors.Is(err, ErrCookieCollision) {
		t.Fatalf("second Dial error = %v, want ErrCookieCollision", err)
	}
	if got := ep.Snapshot().CookieCollisions; got != 1 {
		t.Fatalf("CookieCollisions = %d, want 1", got)
	}
	if c := ep.lookupCookie(cookie); c != first {
		t.Fatalf("cookie routes to %p, want the first connection %p", c, first)
	}
	// The losing Dial must not leave routing debris behind.
	if _, err := ep.Dial(routerSpec(1, 0xfeedbee0)); err != nil {
		t.Fatalf("Dial after refused collision: %v", err)
	}
}

// TestLearnCookieKeepsExistingBinding: learning a cookie from an
// identified message must never steal a cookie already routed to another
// live connection — the existing binding wins and the event is counted.
func TestLearnCookieKeepsExistingBinding(t *testing.T) {
	ep := routerEndpoint(t)
	const cookie = 0xabadcafe

	first, err := ep.Dial(routerSpec(0, cookie))
	if err != nil {
		t.Fatal(err)
	}
	other, err := ep.Dial(routerSpec(1, 0))
	if err != nil {
		t.Fatal(err)
	}

	ep.learnCookie(other, cookie)
	if c := ep.lookupCookie(cookie); c != first {
		t.Fatalf("cookie routes to %p after learn, want original %p", c, first)
	}
	if got := ep.Snapshot().CookieCollisions; got != 1 {
		t.Fatalf("CookieCollisions = %d, want 1", got)
	}

	// Learning a fresh cookie for the same connection still works, and
	// replaces its previous one.
	ep.learnCookie(other, 0x1111)
	ep.learnCookie(other, 0x2222)
	if c := ep.lookupCookie(0x2222); c != other {
		t.Fatal("fresh cookie not learned")
	}
	if c := ep.lookupCookie(0x1111); c != nil {
		t.Fatal("stale cookie still routed after relearn")
	}
	if got := ep.Snapshot().CookiesLearned; got != 2 {
		t.Fatalf("CookiesLearned = %d, want 2", got)
	}
}

// TestCollisionStatsSnapshot: the new counter is part of the public
// snapshot and starts at zero.
func TestCollisionStatsSnapshot(t *testing.T) {
	ep := routerEndpoint(t)
	if got := ep.Snapshot().CookieCollisions; got != 0 {
		t.Fatalf("fresh endpoint CookieCollisions = %d", got)
	}
}

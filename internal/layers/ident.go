package layers

import (
	"bytes"
	"fmt"

	"paccel/internal/bits"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
)

// Ident geometry: the connection identification registered by the bottom
// layer occupies exactly the 76 bytes the paper reports for Horus (§2.2).
const (
	// EndpointIDLen is the size of an endpoint identifier. Horus
	// endpoints carry large (and growing) addresses; 32 bytes
	// accommodates a modern content-derived identifier.
	EndpointIDLen = 32
	// IdentVersion is the protocol version recorded in the connection
	// identification.
	IdentVersion = 1
)

// Ident is the bottom layer. It registers the Connection Identification
// fields (§2.1 class 1): source and destination endpoint identifiers,
// ports, an epoch that distinguishes connection incarnations, a protocol
// version, flags, and the sender's byte-order — 76 bytes in all, matching
// the paper's Horus figure. None of this changes during the connection,
// so with the Protocol Accelerator it is transmitted only on first or
// unusual messages; the baseline carries it on every message.
type Ident struct {
	// Local and Remote identify the two endpoints; at most
	// EndpointIDLen bytes each (shorter identifiers are zero-padded).
	Local, Remote []byte
	// LocalPort and RemotePort demultiplex connections between the same
	// endpoints.
	LocalPort, RemotePort uint16
	// Epoch distinguishes incarnations of the same connection.
	Epoch uint32
	// Order is the sender's native byte order, recorded in the
	// identification ("byte-ordering information of their
	// architectures", §2.1).
	Order bits.ByteOrder

	src, dst     header.Handle
	sport, dport header.Handle
	epoch        header.Handle
	version      header.Handle
	flags        header.Handle
	order        header.Handle
}

// Name implements stack.Layer.
func (l *Ident) Name() string { return "ident" }

// Init registers the connection identification fields.
func (l *Ident) Init(ic *stack.InitContext) error {
	if len(l.Local) > EndpointIDLen || len(l.Remote) > EndpointIDLen {
		return fmt.Errorf("ident: endpoint identifiers limited to %d bytes", EndpointIDLen)
	}
	var err error
	add := func(h *header.Handle, name string, sizeBits int) {
		if err != nil {
			return
		}
		*h, err = ic.Schema.AddField(header.ConnID, l.Name(), name, sizeBits, header.DontCare)
	}
	if l.src, err = ic.Schema.AddBytes(header.ConnID, l.Name(), "src", EndpointIDLen); err != nil {
		return err
	}
	if l.dst, err = ic.Schema.AddBytes(header.ConnID, l.Name(), "dst", EndpointIDLen); err != nil {
		return err
	}
	add(&l.sport, "sport", 16)
	add(&l.dport, "dport", 16)
	add(&l.epoch, "epoch", 32)
	add(&l.version, "version", 16)
	add(&l.flags, "flags", 8)
	add(&l.order, "order", 8)
	return err
}

// Prime writes the outgoing connection identification into the predicted
// ConnID header, where the engine reads it whenever a message must carry
// it.
func (l *Ident) Prime(ctx *stack.Context) {
	hdr := ctx.PredictSend[header.ConnID]
	copy(l.src.Bytes(hdr), l.Local)
	copy(l.dst.Bytes(hdr), l.Remote)
	l.sport.Write(hdr, ctx.Order, uint64(l.LocalPort))
	l.dport.Write(hdr, ctx.Order, uint64(l.RemotePort))
	l.epoch.Write(hdr, ctx.Order, uint64(l.Epoch))
	l.version.Write(hdr, ctx.Order, IdentVersion)
	l.flags.Write(hdr, ctx.Order, 0)
	l.order.Write(hdr, ctx.Order, uint64(l.Order))
}

// ExpectedIncoming returns the connection identification the peer will
// send (source and destination swapped), for the engine's routing table.
// hdrSize is the compiled ConnID header size; peerOrder is the byte order
// the peer writes aligned fields in.
func (l *Ident) ExpectedIncoming(hdrSize int, peerOrder bits.ByteOrder) []byte {
	hdr := make([]byte, hdrSize)
	copy(l.src.Bytes(hdr), l.Remote)
	copy(l.dst.Bytes(hdr), l.Local)
	l.sport.Write(hdr, peerOrder, uint64(l.RemotePort))
	l.dport.Write(hdr, peerOrder, uint64(l.LocalPort))
	l.epoch.Write(hdr, peerOrder, uint64(l.Epoch))
	l.version.Write(hdr, peerOrder, IdentVersion)
	l.flags.Write(hdr, peerOrder, 0)
	l.order.Write(hdr, peerOrder, uint64(peerOrder))
	return hdr
}

// PreSend implements stack.Layer; the identification is engine-managed.
func (l *Ident) PreSend(*stack.Context, *message.Msg) stack.Verdict { return stack.Continue }

// PostSend implements stack.Layer.
func (l *Ident) PostSend(*stack.Context, *message.Msg) {}

// PreDeliver verifies the connection identification when the message
// carries one (ctx.Env.Hdr[ConnID] non-nil). Mismatches — a different
// epoch, a foreign destination — are dropped.
func (l *Ident) PreDeliver(ctx *stack.Context, m *message.Msg) stack.Verdict {
	hdr := ctx.Env.Hdr[header.ConnID]
	if hdr == nil {
		return stack.Continue // normal message: identification omitted
	}
	if !bytes.Equal(l.dst.Bytes(hdr), pad(l.Local)) ||
		!bytes.Equal(l.src.Bytes(hdr), pad(l.Remote)) {
		return stack.Drop
	}
	if l.epoch.Read(hdr, ctx.Env.Order) != uint64(l.Epoch) {
		return stack.Drop
	}
	if l.version.Read(hdr, ctx.Env.Order) != IdentVersion {
		return stack.Drop
	}
	return stack.Continue
}

// PostDeliver implements stack.Layer.
func (l *Ident) PostDeliver(*stack.Context, *message.Msg) {}

func pad(id []byte) []byte {
	if len(id) == EndpointIDLen {
		return id
	}
	p := make([]byte, EndpointIDLen)
	copy(p, id)
	return p
}

// IdentInfo is a parsed incoming connection identification, used by an
// endpoint's accept hook to decide whether to create a connection.
type IdentInfo struct {
	Src, Dst         []byte
	SrcPort, DstPort uint16
	Epoch            uint32
	Version          uint16
	Order            bits.ByteOrder
}

// ParseIncoming decodes a peer's connection identification header. Any
// Ident instance initialized against the same stack shape can parse it
// (the layout is schema-determined), so endpoints keep a template instance
// for routing decisions.
func (l *Ident) ParseIncoming(hdr []byte, order bits.ByteOrder) IdentInfo {
	return IdentInfo{
		Src:     append([]byte(nil), l.src.Bytes(hdr)...),
		Dst:     append([]byte(nil), l.dst.Bytes(hdr)...),
		SrcPort: uint16(l.sport.Read(hdr, order)),
		DstPort: uint16(l.dport.Read(hdr, order)),
		Epoch:   uint32(l.epoch.Read(hdr, order)),
		Version: uint16(l.version.Read(hdr, order)),
		Order:   bits.ByteOrder(l.order.Read(hdr, order)),
	}
}

package layers

import (
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

var t0 = time.Date(1996, 8, 28, 0, 0, 0, 0, time.UTC)

// harness drives layers the way the engine does, with a mock Services.
type harness struct {
	t      *testing.T
	schema *header.Schema
	st     *stack.Stack
	sendF  *filter.Program
	recvF  *filter.Program
	clk    *vclock.Manual
	svc    *mockServices
	base   stack.Context
}

func newHarness(t *testing.T, ls ...stack.Layer) *harness {
	t.Helper()
	h := &harness{t: t, schema: header.New(), clk: vclock.NewManual(t0)}
	st, err := stack.NewStack(ls...)
	if err != nil {
		t.Fatal(err)
	}
	h.st = st
	sb, rb := filter.NewBuilder(), filter.NewBuilder()
	if err := st.Init(&stack.InitContext{Schema: h.schema, SendFilter: sb, RecvFilter: rb}); err != nil {
		t.Fatal(err)
	}
	if err := h.schema.Compile(); err != nil {
		t.Fatal(err)
	}
	if h.sendF, err = sb.Build(); err != nil {
		t.Fatal(err)
	}
	if h.recvF, err = rb.Build(); err != nil {
		t.Fatal(err)
	}
	h.svc = &mockServices{h: h}
	h.base = stack.Context{Order: bits.BigEndian, S: h.svc}
	for c := header.Class(0); c < header.NumClasses; c++ {
		h.base.PredictSend[c] = make([]byte, h.schema.Size(c))
		h.base.PredictRecv[c] = make([]byte, h.schema.Size(c))
	}
	st.Prime(&h.base)
	return h
}

// env builds a message with pushed class header regions (wire order) and
// the filter environment viewing them.
func (h *harness) env(payload []byte) (*message.Msg, *filter.Env) {
	m := message.New(payload)
	return m, h.attach(m)
}

// attach pushes zeroed header regions onto m and returns views.
func (h *harness) attach(m *message.Msg) *filter.Env {
	env := &filter.Env{Payload: m.Payload(), Order: bits.BigEndian}
	// Wire order: proto, msg, gossip in front of payload; push reversed.
	env.Hdr[header.Gossip] = m.Push(h.schema.Size(header.Gossip))
	env.Hdr[header.MsgSpec] = m.Push(h.schema.Size(header.MsgSpec))
	env.Hdr[header.ProtoSpec] = m.Push(h.schema.Size(header.ProtoSpec))
	return env
}

// ctx returns a phase context for the given message environment.
func (h *harness) ctx(env *filter.Env) *stack.Context {
	c := h.base
	c.Env = env
	return &c
}

// send runs PreSend+PostSend through the whole stack for payload and
// returns the message and its env.
func (h *harness) send(payload []byte) (*message.Msg, *filter.Env) {
	m, env := h.env(payload)
	ctx := h.ctx(env)
	v, _ := h.st.PreSend(ctx, m)
	if v != stack.Continue {
		h.t.Fatalf("PreSend verdict = %v", v)
	}
	h.st.PostSend(ctx, m)
	return m, env
}

type controlRec struct {
	from stack.Layer
	m    *message.Msg
	env  *filter.Env
	opts stack.ControlOpts
}

type rawRec struct {
	m       *message.Msg
	connID  bool
	payload []byte
}

type enqRec struct {
	from stack.Layer
	m    *message.Msg
}

// mockServices records engine interactions.
type mockServices struct {
	h           *harness
	sendDisable int
	recvDisable int
	controls    []controlRec
	raws        []rawRec
	enq         []enqRec
	deferred    []func()
}

func (s *mockServices) Clock() vclock.Clock { return s.h.clk }
func (s *mockServices) AfterFunc(d time.Duration, f func()) vclock.Timer {
	return s.h.clk.AfterFunc(d, f)
}
func (s *mockServices) DisableSend() { s.sendDisable++ }
func (s *mockServices) EnableSend()  { s.sendDisable-- }
func (s *mockServices) DisableRecv() { s.recvDisable++ }
func (s *mockServices) EnableRecv()  { s.recvDisable-- }

func (s *mockServices) SendControl(from stack.Layer, m *message.Msg, opts stack.ControlOpts) error {
	env := s.h.attach(m)
	if opts.Build != nil {
		opts.Build(env)
	}
	s.controls = append(s.controls, controlRec{from: from, m: m, env: env, opts: opts})
	return nil
}

func (s *mockServices) SendRaw(m *message.Msg, connID bool) error {
	s.raws = append(s.raws, rawRec{m: m, connID: connID, payload: append([]byte(nil), m.Payload()...)})
	return nil
}

func (s *mockServices) EnqueueDeliver(from stack.Layer, m *message.Msg) {
	s.enq = append(s.enq, enqRec{from: from, m: m})
}

func (s *mockServices) Defer(f func()) { s.deferred = append(s.deferred, f) }

// runDeferred executes queued post-phase actions (the engine's drain).
func (s *mockServices) runDeferred() {
	for len(s.deferred) > 0 {
		fs := s.deferred
		s.deferred = nil
		for _, f := range fs {
			f()
		}
	}
}

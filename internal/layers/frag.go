package layers

import (
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
)

// DefaultFragThreshold is the default maximum payload carried by one
// frame, comfortably under the ATM/netsim MTU once headers are added.
const DefaultFragThreshold = 8000

// Frag implements fragmentation/reassembly exactly as the paper's §6
// prescribes for the PA: the layer adds code to the send packet filter to
// reject messages over the threshold (forcing them onto the slow path,
// where PreSend splits them), and marks fragments with a protocol-specific
// bit so the receiving PA never treats a fragment as predicted — fragments
// always reach the stack for reassembly.
//
// Fragments are emitted as layer-generated messages, so the layers below
// (the sliding window) sequence and retransmit each fragment individually;
// reassembly relies on their FIFO exactly-once delivery and needs no
// fragment identifiers — just an end-marker bit.
type Frag struct {
	// Threshold is the maximum payload per frame; 0 means
	// DefaultFragThreshold.
	Threshold int

	isFrag header.Handle // 1 iff this frame is a fragment
	last   header.Handle // 1 iff this fragment completes a message

	assembling [][]byte // chunks of the message being reassembled
	pending    int      // bytes accumulated
}

// NewFrag returns a fragmentation layer with the default threshold.
func NewFrag() *Frag { return &Frag{Threshold: DefaultFragThreshold} }

// Name implements stack.Layer.
func (f *Frag) Name() string { return "frag" }

func (f *Frag) threshold() int {
	if f.Threshold <= 0 {
		return DefaultFragThreshold
	}
	return f.Threshold
}

// Init registers the two fragment bits and the send-filter size check.
func (f *Frag) Init(ic *stack.InitContext) error {
	var err error
	if f.isFrag, err = ic.Schema.AddField(header.ProtoSpec, f.Name(), "isfrag", 1, header.DontCare); err != nil {
		return err
	}
	if f.last, err = ic.Schema.AddField(header.ProtoSpec, f.Name(), "last", 1, header.DontCare); err != nil {
		return err
	}
	// "The fragmentation/reassembly layer adds code to the send packet
	// filter to reject messages over a certain size" (§6).
	ic.SendFilter.PushSize()
	ic.SendFilter.PushConst(int64(f.threshold()))
	ic.SendFilter.Arith(filter.Gt)
	ic.SendFilter.Abort(filter.StatusSlow)
	return nil
}

// Prime predicts non-fragment frames in both directions.
func (f *Frag) Prime(ctx *stack.Context) {
	f.isFrag.Write(ctx.PredictSend[header.ProtoSpec], ctx.Order, 0)
	f.last.Write(ctx.PredictSend[header.ProtoSpec], ctx.Order, 0)
	f.isFrag.Write(ctx.PredictRecv[header.ProtoSpec], ctx.Order, 0)
	f.last.Write(ctx.PredictRecv[header.ProtoSpec], ctx.Order, 0)
}

// PreSend passes small messages through and splits large ones into
// fragment control messages routed through the layers below.
func (f *Frag) PreSend(ctx *stack.Context, m *message.Msg) stack.Verdict {
	payload := ctx.Env.Payload
	thr := f.threshold()
	if len(payload) <= thr {
		hdr := ctx.Env.Hdr[header.ProtoSpec]
		f.isFrag.Write(hdr, ctx.Env.Order, 0)
		f.last.Write(hdr, ctx.Env.Order, 0)
		return stack.Continue
	}
	for off := 0; off < len(payload); off += thr {
		end := off + thr
		if end > len(payload) {
			end = len(payload)
		}
		isLast := end == len(payload)
		frag := message.New(payload[off:end])
		err := ctx.S.SendControl(f, frag, stack.ControlOpts{
			Build: func(env *filter.Env) {
				hdr := env.Hdr[header.ProtoSpec]
				f.isFrag.Write(hdr, env.Order, 1)
				f.last.Write(hdr, env.Order, b1(isLast))
			},
		})
		if err != nil {
			return stack.Drop
		}
	}
	return stack.Consume // original message replaced by its fragments
}

// PostSend implements stack.Layer; fragment state lives on the receive
// side only.
func (f *Frag) PostSend(*stack.Context, *message.Msg) {}

// PreDeliver consumes fragments into the reassembly buffer (via Defer, to
// keep the pre phase pure) and releases the reassembled message upward
// when the end marker arrives.
func (f *Frag) PreDeliver(ctx *stack.Context, m *message.Msg) stack.Verdict {
	hdr := ctx.Env.Hdr[header.ProtoSpec]
	if f.isFrag.Read(hdr, ctx.Env.Order) == 0 {
		return stack.Continue
	}
	isLast := f.last.Read(hdr, ctx.Env.Order) == 1
	chunk := append([]byte(nil), ctx.Env.Payload...)
	ctx.S.Defer(func() {
		f.assembling = append(f.assembling, chunk)
		f.pending += len(chunk)
		if !isLast {
			return
		}
		whole := make([]byte, 0, f.pending)
		for _, c := range f.assembling {
			whole = append(whole, c...)
		}
		f.assembling = nil
		f.pending = 0
		out := message.New(whole)
		out.Synthetic = true
		ctx.S.EnqueueDeliver(f, out)
	})
	return stack.Consume
}

// PostDeliver implements stack.Layer.
func (f *Frag) PostDeliver(*stack.Context, *message.Msg) {}

// AssemblingBytes reports the bytes buffered for reassembly (for tests
// and introspection).
func (f *Frag) AssemblingBytes() int { return f.pending }

func b1(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

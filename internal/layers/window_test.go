package layers

import (
	"bytes"
	"testing"
	"time"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
)

func windowHarness(t *testing.T, w *Window) *harness {
	t.Helper()
	return newHarness(t, w)
}

// dataFrame builds an incoming data frame with the given seq and
// piggybacked ack.
func dataFrame(h *harness, w *Window, seq, ack uint32, payload []byte) (*message.Msg, *filter.Env) {
	m, env := h.env(payload)
	w.seq.Write(env.Hdr[header.ProtoSpec], env.Order, uint64(seq))
	w.typ.Write(env.Hdr[header.ProtoSpec], env.Order, TypeData)
	w.ack.Write(env.Hdr[header.Gossip], env.Order, uint64(ack))
	return m, env
}

func ctrlFrame(h *harness, w *Window, typ uint64, seq, ack uint32) (*message.Msg, *filter.Env) {
	m, env := h.env(nil)
	w.seq.Write(env.Hdr[header.ProtoSpec], env.Order, uint64(seq))
	w.typ.Write(env.Hdr[header.ProtoSpec], env.Order, typ)
	w.ack.Write(env.Hdr[header.Gossip], env.Order, uint64(ack))
	return m, env
}

func TestWindowPreSendStamps(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	_, env := h.send([]byte("a"))
	if got := w.seq.Read(env.Hdr[header.ProtoSpec], env.Order); got != 0 {
		t.Fatalf("first seq = %d", got)
	}
	if got := w.typ.Read(env.Hdr[header.ProtoSpec], env.Order); got != TypeData {
		t.Fatalf("type = %d", got)
	}
	_, env2 := h.send([]byte("b"))
	if got := w.seq.Read(env2.Hdr[header.ProtoSpec], env2.Order); got != 1 {
		t.Fatalf("second seq = %d", got)
	}
}

func TestWindowPostSendSavesAndPredicts(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	h.send([]byte("saved"))
	if w.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", w.Outstanding())
	}
	if !bytes.Equal(w.unacked[0].Payload(), []byte("saved")) {
		t.Fatal("saved frame payload mismatch")
	}
	// Prediction: next send is seq 1, data.
	if got := w.seq.Read(h.base.PredictSend[header.ProtoSpec], bits.BigEndian); got != 1 {
		t.Fatalf("predicted seq = %d", got)
	}
	if got := w.typ.Read(h.base.PredictSend[header.ProtoSpec], bits.BigEndian); got != TypeData {
		t.Fatalf("predicted type = %d", got)
	}
}

func TestWindowFillsAndDisables(t *testing.T) {
	w := NewWindow()
	w.Size = 2
	h := windowHarness(t, w)
	h.send([]byte("0"))
	if h.svc.sendDisable != 0 {
		t.Fatal("disabled too early")
	}
	h.send([]byte("1"))
	if h.svc.sendDisable != 1 {
		t.Fatalf("disable count = %d, want 1", h.svc.sendDisable)
	}
	// Ack both: window reopens.
	m, env := ctrlFrame(h, w, TypeAck, 0, 2)
	defer m.Free()
	if v, _ := h.st.PreDeliver(h.ctx(env), m); v != stack.Consume {
		t.Fatal("ack not consumed")
	}
	h.svc.runDeferred()
	if h.svc.sendDisable != 0 {
		t.Fatalf("disable count after ack = %d", h.svc.sendDisable)
	}
	if w.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", w.Outstanding())
	}
	if w.Stats.AcksReceived != 1 {
		t.Fatalf("acks received = %d", w.Stats.AcksReceived)
	}
}

func TestWindowInSequenceDelivery(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	m, env := dataFrame(h, w, 0, 0, []byte("x"))
	defer m.Free()
	ctx := h.ctx(env)
	if v, _ := h.st.PreDeliver(ctx, m); v != stack.Continue {
		t.Fatal("in-seq frame not delivered")
	}
	h.st.PostDeliver(ctx, m)
	h.svc.runDeferred()
	if w.Expected() != 1 {
		t.Fatalf("expected = %d", w.Expected())
	}
	// Recv prediction now expects seq 1.
	if got := w.seq.Read(h.base.PredictRecv[header.ProtoSpec], bits.BigEndian); got != 1 {
		t.Fatalf("predicted recv seq = %d", got)
	}
	// Send prediction's piggyback ack freshened to 1.
	if got := w.ack.Read(h.base.PredictSend[header.Gossip], bits.BigEndian); got != 1 {
		t.Fatalf("predicted piggyback ack = %d", got)
	}
}

func TestWindowDuplicateDropsAndReacks(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	m, env := dataFrame(h, w, 0, 0, []byte("x"))
	defer m.Free()
	ctx := h.ctx(env)
	h.st.PreDeliver(ctx, m)
	h.st.PostDeliver(ctx, m)
	h.svc.runDeferred()

	dup, denv := dataFrame(h, w, 0, 0, []byte("x"))
	defer dup.Free()
	if v, _ := h.st.PreDeliver(h.ctx(denv), dup); v != stack.Drop {
		t.Fatal("duplicate not dropped")
	}
	h.svc.runDeferred()
	if w.Stats.Dups != 1 {
		t.Fatalf("dups = %d", w.Stats.Dups)
	}
	// The dup triggered an immediate re-ack.
	found := false
	for _, c := range h.svc.controls {
		if w.typ.Read(c.env.Hdr[header.ProtoSpec], c.env.Order) == TypeAck {
			found = true
			if got := w.ack.Read(c.env.Hdr[header.Gossip], c.env.Order); got != 1 {
				t.Fatalf("re-ack value = %d", got)
			}
		}
	}
	if !found {
		t.Fatal("no re-ack sent for duplicate")
	}
}

func TestWindowFutureBufferedAndReleased(t *testing.T) {
	w := NewWindow()
	w.Naks = true
	h := windowHarness(t, w)
	// Frame 1 arrives before frame 0.
	f1, env1 := dataFrame(h, w, 1, 0, []byte("one"))
	if v, _ := h.st.PreDeliver(h.ctx(env1), f1); v != stack.Consume {
		t.Fatal("future frame not consumed")
	}
	h.svc.runDeferred()
	if w.Stats.FuturesStored != 1 {
		t.Fatalf("futures stored = %d", w.Stats.FuturesStored)
	}
	// A nak for the missing frame 0 went out.
	if w.Stats.NaksSent != 1 {
		t.Fatalf("naks sent = %d", w.Stats.NaksSent)
	}
	// Frame 0 arrives: deliver, then release frame 1 via EnqueueDeliver.
	f0, env0 := dataFrame(h, w, 0, 0, []byte("zero"))
	defer f0.Free()
	ctx := h.ctx(env0)
	if v, _ := h.st.PreDeliver(ctx, f0); v != stack.Continue {
		t.Fatal("in-seq frame rejected")
	}
	h.st.PostDeliver(ctx, f0)
	h.svc.runDeferred()
	if len(h.svc.enq) != 1 {
		t.Fatalf("enqueued releases = %d", len(h.svc.enq))
	}
	if !bytes.Equal(h.svc.enq[0].m.Payload(), []byte("one")) {
		t.Fatal("released wrong frame")
	}
	if w.Expected() != 2 {
		t.Fatalf("expected = %d", w.Expected())
	}
}

func TestWindowFutureWithoutBufferingDrops(t *testing.T) {
	w := NewWindow()
	w.BufferOutOfOrder = false
	w.Naks = true
	h := windowHarness(t, w)
	f1, env1 := dataFrame(h, w, 3, 0, nil)
	defer f1.Free()
	if v, _ := h.st.PreDeliver(h.ctx(env1), f1); v != stack.Drop {
		t.Fatal("future frame not dropped")
	}
	h.svc.runDeferred()
	if w.Stats.NaksSent != 1 {
		t.Fatalf("naks = %d", w.Stats.NaksSent)
	}
}

func TestWindowNakTriggersResend(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	h.send([]byte("frame0"))
	h.send([]byte("frame1"))
	m, env := ctrlFrame(h, w, TypeNak, 1, 0)
	defer m.Free()
	if v, _ := h.st.PreDeliver(h.ctx(env), m); v != stack.Consume {
		t.Fatal("nak not consumed")
	}
	h.svc.runDeferred()
	if len(h.svc.raws) != 1 {
		t.Fatalf("raw resends = %d", len(h.svc.raws))
	}
	if !bytes.Equal(h.svc.raws[0].payload, []byte("frame1")) {
		t.Fatalf("resent wrong frame: %q", h.svc.raws[0].payload)
	}
	if !h.svc.raws[0].connID {
		t.Fatal("retransmission must carry the connection identification")
	}
}

func TestWindowTimeoutRetransmitsAll(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	h.send([]byte("a"))
	h.send([]byte("b"))
	h.clk.Advance(w.rto())
	if len(h.svc.raws) != 2 {
		t.Fatalf("retransmits = %d, want 2", len(h.svc.raws))
	}
	if w.Stats.Timeouts != 1 {
		t.Fatalf("timeouts = %d", w.Stats.Timeouts)
	}
	// Backoff: next timeout takes twice as long.
	h.clk.Advance(w.rto())
	if len(h.svc.raws) != 2 {
		t.Fatal("retransmitted before backoff expired")
	}
	h.clk.Advance(w.rto())
	if len(h.svc.raws) != 4 {
		t.Fatalf("retransmits after backoff = %d, want 4", len(h.svc.raws))
	}
}

func TestWindowAckStopsRetransmit(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	h.send([]byte("a"))
	m, env := ctrlFrame(h, w, TypeAck, 0, 1)
	defer m.Free()
	h.st.PreDeliver(h.ctx(env), m)
	h.svc.runDeferred()
	h.clk.Advance(10 * w.rto())
	if len(h.svc.raws) != 0 {
		t.Fatalf("retransmits after full ack = %d", len(h.svc.raws))
	}
}

func TestWindowDelayedAck(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	m, env := dataFrame(h, w, 0, 0, []byte("x"))
	defer m.Free()
	ctx := h.ctx(env)
	h.st.PreDeliver(ctx, m)
	h.st.PostDeliver(ctx, m)
	h.svc.runDeferred()
	if w.Stats.AcksSent != 0 {
		t.Fatal("acked immediately despite small pending count")
	}
	h.clk.Advance(w.delayedAck())
	if w.Stats.AcksSent != 1 {
		t.Fatalf("acks after delayed-ack timer = %d", w.Stats.AcksSent)
	}
}

func TestWindowAckEveryThreshold(t *testing.T) {
	w := NewWindow()
	w.Size = 4 // ackEvery = 2
	h := windowHarness(t, w)
	for i := uint32(0); i < 2; i++ {
		m, env := dataFrame(h, w, i, 0, []byte("x"))
		ctx := h.ctx(env)
		h.st.PreDeliver(ctx, m)
		h.st.PostDeliver(ctx, m)
		h.svc.runDeferred()
		m.Free()
	}
	if w.Stats.AcksSent != 1 {
		t.Fatalf("acks = %d, want 1 after %d deliveries", w.Stats.AcksSent, 2)
	}
}

func TestWindowPiggybackSuppressesAck(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	m, env := dataFrame(h, w, 0, 0, []byte("x"))
	defer m.Free()
	ctx := h.ctx(env)
	h.st.PreDeliver(ctx, m)
	h.st.PostDeliver(ctx, m)
	h.svc.runDeferred()
	// Reverse data goes out before the delayed ack fires: it piggybacks.
	h.send([]byte("reply"))
	h.clk.Advance(10 * w.delayedAck())
	if w.Stats.AcksSent != 0 {
		t.Fatalf("standalone acks = %d, want 0 (piggybacked)", w.Stats.AcksSent)
	}
}

func TestWindowPreDeliverIsPure(t *testing.T) {
	// PreDeliver on a data frame defers all bookkeeping: state must be
	// unchanged until runDeferred.
	w := NewWindow()
	h := windowHarness(t, w)
	m, env := dataFrame(h, w, 5, 3, nil) // future frame with ack info
	defer m.Free()
	before := *w
	h.st.PreDeliver(h.ctx(env), m)
	if w.expected != before.expected || w.ackedTo != before.ackedTo ||
		w.nextSeq != before.nextSeq || len(w.oooBuf) != 0 {
		t.Fatal("PreDeliver mutated window state")
	}
}

func TestWindowSeqLT(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{0, 1, true}, {1, 0, false}, {5, 5, false},
		{0xFFFFFFFF, 0, true}, // wraparound
		{0, 0xFFFFFFFF, false},
		{0x7FFFFFFF, 0x80000000, true},
	}
	for _, c := range cases {
		if got := seqLT(c.a, c.b); got != c.want {
			t.Errorf("seqLT(%#x,%#x) = %v", c.a, c.b, got)
		}
	}
}

func TestWindowStaleAckIgnored(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	h.send([]byte("a"))
	h.send([]byte("b"))
	m, env := ctrlFrame(h, w, TypeAck, 0, 2)
	defer m.Free()
	h.st.PreDeliver(h.ctx(env), m)
	h.svc.runDeferred()
	// A stale ack (1) arrives late: must not regress.
	m2, env2 := ctrlFrame(h, w, TypeAck, 0, 1)
	defer m2.Free()
	h.st.PreDeliver(h.ctx(env2), m2)
	h.svc.runDeferred()
	if w.ackedTo != 2 {
		t.Fatalf("ackedTo = %d", w.ackedTo)
	}
}

func TestWindowDoubledLayers(t *testing.T) {
	// The §5 experiment: the window layer stacked twice must still work
	// (each instance registers its own fields).
	w1, w2 := NewWindow(), NewWindow()
	h := newHarness(t, w1, w2)
	_, env := h.send([]byte("x"))
	if got := w1.seq.Read(env.Hdr[header.ProtoSpec], env.Order); got != 0 {
		t.Fatalf("w1 seq = %d", got)
	}
	if got := w2.seq.Read(env.Hdr[header.ProtoSpec], env.Order); got != 0 {
		t.Fatalf("w2 seq = %d", got)
	}
	if w1.Outstanding() != 1 || w2.Outstanding() != 1 {
		t.Fatal("both instances must save the frame")
	}
	// Proto-spec header now carries two seq fields + two type bits.
	if h.schema.Size(header.ProtoSpec) < 9 {
		t.Fatalf("doubled proto-spec header = %d bytes", h.schema.Size(header.ProtoSpec))
	}
}

func TestWindowFarFutureFreed(t *testing.T) {
	w := NewWindow()
	h := windowHarness(t, w)
	far, env := dataFrame(h, w, 1000, 0, nil)
	h.st.PreDeliver(h.ctx(env), far)
	h.svc.runDeferred()
	if len(w.oooBuf) != 0 {
		t.Fatal("absurdly far future frame stored")
	}
}

func TestWindowConfigDefaults(t *testing.T) {
	w := NewWindow()
	if w.size() != DefaultWindowSize {
		t.Fatal("default size")
	}
	if w.ackEvery() != DefaultWindowSize/2 {
		t.Fatal("default ackEvery")
	}
	if w.rto() != DefaultRetransTimeout {
		t.Fatal("default rto")
	}
	if w.delayedAck() != DefaultDelayedAck {
		t.Fatal("default delayed ack")
	}
	w.Size = 8
	w.AckEvery = 3
	w.RetransTimeout = time.Second
	w.DelayedAck = time.Millisecond * 7
	if w.size() != 8 || w.ackEvery() != 3 || w.rto() != time.Second || w.delayedAck() != 7*time.Millisecond {
		t.Fatal("explicit config ignored")
	}
}

func TestAdaptiveRTOEstimation(t *testing.T) {
	w := NewWindow()
	w.AdaptiveRTO = true
	w.RetransTimeout = 200 * time.Millisecond
	h := windowHarness(t, w)
	// Before any sample, the RTO is the configured maximum.
	if w.rto() != 200*time.Millisecond {
		t.Fatalf("initial rto = %v", w.rto())
	}
	// Send a frame, then ack it 500 µs later: the estimator converges
	// toward the observed round trip.
	h.send([]byte("sample"))
	h.clk.Advance(500 * time.Microsecond)
	m, env := ctrlFrame(h, w, TypeAck, 0, 1)
	defer m.Free()
	h.st.PreDeliver(h.ctx(env), m)
	h.svc.runDeferred()
	srtt, rttvar := w.RTTEstimate()
	if srtt != 500*time.Microsecond || rttvar != 250*time.Microsecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v", srtt, rttvar)
	}
	// rto = srtt + 4*rttvar = 1.5ms, above the floor (200ms/8 = 25ms)?
	// No: 1.5ms < 25ms, so the floor clamps it.
	if got := w.rto(); got != 25*time.Millisecond {
		t.Fatalf("rto = %v, want the 25ms floor", got)
	}
}

func TestAdaptiveRTOKarnsRule(t *testing.T) {
	w := NewWindow()
	w.AdaptiveRTO = true
	h := windowHarness(t, w)
	h.send([]byte("frame"))
	// Timeout fires: the frame is retransmitted, so its eventual ack
	// must not contribute an RTT sample (it is ambiguous).
	h.clk.Advance(w.rto())
	if len(h.svc.raws) != 1 {
		t.Fatalf("retransmits = %d", len(h.svc.raws))
	}
	h.clk.Advance(time.Millisecond)
	m, env := ctrlFrame(h, w, TypeAck, 0, 1)
	defer m.Free()
	h.st.PreDeliver(h.ctx(env), m)
	h.svc.runDeferred()
	if srtt, _ := w.RTTEstimate(); srtt != 0 {
		t.Fatalf("retransmitted frame contributed a sample: srtt=%v", srtt)
	}
}

func TestAdaptiveRTOConvergence(t *testing.T) {
	w := NewWindow()
	w.AdaptiveRTO = true
	w.RetransTimeout = time.Second
	h := windowHarness(t, w)
	// Feed many consistent samples; srtt converges and the RTO drops
	// well below the maximum (but respects the floor).
	for i := uint32(0); i < 40; i++ {
		h.send([]byte("x"))
		h.clk.Advance(40 * time.Millisecond)
		m, env := ctrlFrame(h, w, TypeAck, 0, i+1)
		h.st.PreDeliver(h.ctx(env), m)
		h.svc.runDeferred()
		m.Free()
	}
	srtt, _ := w.RTTEstimate()
	if srtt < 35*time.Millisecond || srtt > 45*time.Millisecond {
		t.Fatalf("srtt = %v, want ≈40ms", srtt)
	}
	if got := w.rto(); got >= time.Second || got < 40*time.Millisecond {
		t.Fatalf("adapted rto = %v", got)
	}
}

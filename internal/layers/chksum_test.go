package layers

import (
	"testing"

	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/stack"
)

func TestChksumPreSendFillsFields(t *testing.T) {
	h := newHarness(t, NewChksum())
	_, env := h.send([]byte("eight by"))
	hdr := env.Hdr[header.MsgSpec]
	c := h.st.Layers()[0].(*Chksum)
	if got := c.length.Read(hdr, env.Order); got != 8 {
		t.Fatalf("len = %d", got)
	}
	if got := c.sum.Read(hdr, env.Order); got != filter.InternetChecksum([]byte("eight by")) {
		t.Fatalf("ck = %#x", got)
	}
}

func TestChksumDeliveryVerdicts(t *testing.T) {
	h := newHarness(t, NewChksum())
	m, env := h.send([]byte("payload"))
	defer m.Free()
	if v, _ := h.st.PreDeliver(h.ctx(env), m); v != stack.Continue {
		t.Fatalf("valid message verdict = %v", v)
	}
	env.Payload[0] ^= 0xFF
	if v, _ := h.st.PreDeliver(h.ctx(env), m); v != stack.Drop {
		t.Fatalf("corrupt message verdict = %v", v)
	}
}

func TestChksumFilterMatchesPhases(t *testing.T) {
	// The fast path (filters) and slow path (PreSend) must produce
	// identical header bytes.
	h := newHarness(t, NewChksum())
	payload := []byte("identical wire bytes")

	_, slowEnv := h.send(payload)
	mFast, fastEnv := h.env(payload)
	defer mFast.Free()
	if st := h.sendF.Run(fastEnv); st != filter.StatusOK {
		t.Fatalf("send filter = %d", st)
	}
	slow := slowEnv.Hdr[header.MsgSpec]
	fast := fastEnv.Hdr[header.MsgSpec]
	for i := range slow {
		if slow[i] != fast[i] {
			t.Fatalf("msg-spec headers differ: slow %x fast %x", slow, fast)
		}
	}
	// And the recv filter accepts what either path produced.
	if st := h.recvF.Run(fastEnv); st != filter.StatusOK {
		t.Fatalf("recv filter = %d", st)
	}
	fastEnv.Payload[0] ^= 1
	if st := h.recvF.Run(fastEnv); st != filter.StatusDrop {
		t.Fatalf("recv filter on corruption = %d", st)
	}
}

func TestChksumLengthMismatchDrops(t *testing.T) {
	h := newHarness(t, NewChksum())
	m, env := h.send([]byte("abcdef"))
	defer m.Free()
	c := h.st.Layers()[0].(*Chksum)
	c.length.Write(env.Hdr[header.MsgSpec], env.Order, 5)
	if v, _ := h.st.PreDeliver(h.ctx(env), m); v != stack.Drop {
		t.Fatalf("verdict = %v", v)
	}
}

func TestChksumCustomDigest(t *testing.T) {
	c := NewChksum()
	c.Digest = filter.DigestXor8
	h := newHarness(t, c)
	m, env := h.send([]byte{0xF0, 0x0F})
	defer m.Free()
	if got := c.sum.Read(env.Hdr[header.MsgSpec], env.Order); got != 0xFF {
		t.Fatalf("xor digest = %#x", got)
	}
	if v, _ := h.st.PreDeliver(h.ctx(env), m); v != stack.Continue {
		t.Fatal("custom digest verification failed")
	}
}

// Digest ablation: the Internet checksum against CRC32C over typical
// payload sizes.
func BenchmarkDigestInternet1K(b *testing.B) {
	buf := make([]byte, 1024)
	fn, _ := filter.DigestByID(filter.DigestInternet)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		fn(buf)
	}
}

func BenchmarkDigestCRC32C1K(b *testing.B) {
	buf := make([]byte, 1024)
	fn, _ := filter.DigestByID(filter.DigestCRC32C)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		fn(buf)
	}
}

package layers

import (
	"time"

	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
	"paccel/internal/telemetry"
)

// Stamp is a latency-measurement micro-layer. It registers a 32-bit
// message-specific timestamp — the paper's own example of
// message-specific information (§2.1) — filled in by the send packet
// filter's PushTime customized instruction, and records one-way latency
// samples on delivery.
//
// Timestamps are microseconds on the connection's clock, truncated to 32
// bits; samples are only meaningful when both endpoints share a clock
// (same process, or the simulated network), which is exactly how the
// Table 4 one-way latency measurement uses it.
type Stamp struct {
	// OnSample receives each one-way latency observation.
	OnSample func(d time.Duration)

	ts header.Handle

	samples uint64
	total   time.Duration

	// Telemetry sink; nil disables. One-way samples cost no extra clock
	// read — the duration comes from the wire timestamp.
	tel      *telemetry.Recorder
	telShard uint32
}

// NewStamp returns a latency meter.
func NewStamp() *Stamp { return &Stamp{} }

// Name implements stack.Layer.
func (s *Stamp) Name() string { return "stamp" }

// SetTelemetry installs the engine's telemetry recorder: every one-way
// latency observation is recorded into the OpOneWay histogram.
func (s *Stamp) SetTelemetry(rec *telemetry.Recorder, _ uint64, shard uint32) {
	s.tel = rec
	s.telShard = shard
}

// Init registers the timestamp field and the send-filter code that fills
// it. The receive side has no filter check — a timestamp is informational.
func (s *Stamp) Init(ic *stack.InitContext) error {
	var err error
	if s.ts, err = ic.Schema.AddField(header.MsgSpec, s.Name(), "ts", 32, header.DontCare); err != nil {
		return err
	}
	ic.SendFilter.PushTime()
	ic.SendFilter.PopField(s.ts)
	return nil
}

// Prime implements stack.Layer; message-specific fields are not predicted.
func (s *Stamp) Prime(*stack.Context) {}

// PreSend fills the timestamp on the slow path, mirroring the filter.
func (s *Stamp) PreSend(ctx *stack.Context, m *message.Msg) stack.Verdict {
	s.ts.Write(ctx.Env.Hdr[header.MsgSpec], ctx.Env.Order, ctx.Env.Time)
	return stack.Continue
}

// PostSend implements stack.Layer.
func (s *Stamp) PostSend(*stack.Context, *message.Msg) {}

// PreDeliver implements stack.Layer; sampling is a post-phase effect.
func (s *Stamp) PreDeliver(ctx *stack.Context, m *message.Msg) stack.Verdict {
	return stack.Continue
}

// PostDeliver records the one-way latency sample.
func (s *Stamp) PostDeliver(ctx *stack.Context, m *message.Msg) {
	sent := uint32(s.ts.Read(ctx.Env.Hdr[header.MsgSpec], ctx.Env.Order))
	now := uint32(ctx.Env.Time)
	d := time.Duration(now-sent) * time.Microsecond
	s.samples++
	s.total += d
	s.tel.Record(telemetry.OpOneWay, s.telShard, d)
	if s.OnSample != nil {
		s.OnSample(d)
	}
}

// TemplateStampable declares the layer safe for externally-built
// templates (core.Fanout): the timestamp is message-specific, written
// only by the send packet filter from the template's single Env.Time,
// which the stamping pass shares across every member — all stamped
// copies of one multicast carry the same send time, as they should.
func (s *Stamp) TemplateStampable() bool { return true }

// Mean returns the mean observed one-way latency and the sample count.
func (s *Stamp) Mean() (time.Duration, uint64) {
	if s.samples == 0 {
		return 0, 0
	}
	return s.total / time.Duration(s.samples), s.samples
}

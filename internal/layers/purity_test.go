package layers

import (
	"fmt"
	"testing"

	"paccel/internal/stack"
)

// Canonical protocol processing (§3.1) requires pre phases to leave
// protocol state untouched — that is what lets the engine transmit and
// deliver before any state update. These tests snapshot each layer's full
// state (fmt %+v reaches scalar fields, map contents and slice contents)
// around its pre phases and demand bit-for-bit equality whenever the
// verdict is Continue. Effects requested via Defer run later, at
// post-processing time, by design.

func snapshot(l stack.Layer) string { return fmt.Sprintf("%+v", l) }

// pureLayers builds one instance of every layer type, plus a message
// generator appropriate for it.
func purityCases(t *testing.T) []struct {
	name  string
	layer stack.Layer
} {
	t.Helper()
	return []struct {
		name  string
		layer stack.Layer
	}{
		{"chksum", NewChksum()},
		{"frag", NewFrag()},
		{"window", NewWindow()},
		{"heartbeat", &Heartbeat{Interval: 1 << 30}},
		{"stamp", NewStamp()},
		{"ident", newIdent()},
		{"secure", NewSecure([]byte("purity key"), []byte("a"), []byte("b"), 1, 2)},
	}
}

func TestPreSendPurity(t *testing.T) {
	for _, tc := range purityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, tc.layer)
			m, env := h.env([]byte("purity-probe"))
			defer m.Free()
			before := snapshot(tc.layer)
			v := tc.layer.PreSend(h.ctx(env), m)
			after := snapshot(tc.layer)
			if v == stack.Continue && before != after {
				t.Fatalf("PreSend mutated state:\nbefore %s\nafter  %s", before, after)
			}
		})
	}
}

func TestPreDeliverPurity(t *testing.T) {
	for _, tc := range purityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, tc.layer)
			// Build a deliverable message: run the send pre phase
			// first so headers are coherent for this layer.
			m, env := h.env([]byte("purity-probe"))
			defer m.Free()
			tc.layer.PreSend(h.ctx(env), m)
			before := snapshot(tc.layer)
			deferredBefore := len(h.svc.deferred)
			tc.layer.PreDeliver(h.ctx(env), m)
			after := snapshot(tc.layer)
			if before != after {
				t.Fatalf("PreDeliver mutated state:\nbefore %s\nafter  %s", before, after)
			}
			// Any effects must have been requested through Defer,
			// not applied.
			_ = deferredBefore
		})
	}
}

// TestPreDeliverPurityOnControlFrames covers the window layer's ack, nak,
// duplicate and future paths: all must defer their bookkeeping.
func TestPreDeliverPurityOnControlFrames(t *testing.T) {
	w := NewWindow()
	w.Naks = true
	h := windowHarness(t, w)
	h.send([]byte("outstanding")) // so acks/naks have something to touch
	cases := []struct {
		name     string
		typ      uint64
		seq, ack uint32
	}{
		{"ack", TypeAck, 0, 1},
		{"nak", TypeNak, 0, 0},
		{"dup", TypeData, 0, 0},    // after delivering 0 below
		{"future", TypeData, 5, 0}, // gap
		{"in-seq", TypeData, 0, 0}, // normal
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, env := ctrlFrame(h, w, c.typ, c.seq, c.ack)
			defer func() {
				// Future frames are consumed (owned); others freed here.
				h.svc.deferred = nil
				m.Free()
			}()
			before := snapshot(w)
			w.PreDeliver(h.ctx(env), m)
			after := snapshot(w)
			if before != after {
				t.Fatalf("window.PreDeliver(%s) mutated state:\nbefore %s\nafter  %s",
					c.name, before, after)
			}
		})
	}
}

package layers

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
	"paccel/internal/telemetry"
)

// ErrNonceExhausted reports that a secure layer's nonce space is spent.
// The connection hard-fails (no recovery: a resume would rekey and reset
// the counter, masking the very guard that refused to reuse a nonce).
var ErrNonceExhausted = errors.New("layers: secure nonce space exhausted")

// gcmTagLen is AES-GCM's authentication tag size, carried as a
// message-specific blob field like chksum's digest.
const gcmTagLen = 16

// defaultNonceLimit bounds the per-epoch counter far below the 64-bit
// wrap; past it the layer refuses to seal.
const defaultNonceLimit = uint64(1) << 62

// Secure is an AES-GCM encryption layer in the accelerator's canonical
// form. Each piece of its wire state rides the header class the paper's
// taxonomy (§2.1) assigns it:
//
//   - nonce: a 64-bit counter, protocol-specific — predicted like a
//     sequence number (§3.2), so in-order traffic stays on the fast path.
//   - tag: the 16-byte GCM tag, message-specific — filled in by the send
//     packet filter's Seal op and checked by the delivery filter's Open
//     op, exactly like chksum's digest (§3.3).
//   - enc: a 1-bit message-specific flag marking the payload sealed.
//   - epoch: a 16-bit key generation number, gossip — piggybacked on
//     every message so a rekey needs no handshake round-trip.
//
// There is no key exchange protocol: both sides hold a pre-shared master
// key, and traffic keys are derived by binding it to the connection
// identification (endpoint IDs, ports, epoch) — the identified
// first-message path of §2.2 is what authenticates the binding, the same
// way it lets cookies skip an agreement round-trip.
//
// Rekeying rides session resumption: Resume bumps the sender's epoch and
// re-derives its key, so the recovery probes and the window layer's
// replayed frames (which the engine re-seals via Reseal — GCM forbids
// nonce reuse, so replays burn fresh counters under the new key) reach
// the peer already under the post-resume key. The receiver adopts a
// serially newer epoch on the first frame that authenticates under it
// and keeps one previous epoch for stragglers. The two directions rekey
// independently.
//
// The AEAD authenticates the payload plus the protocol-specific, gossip
// and message-specific regions (the tag's own bytes zeroed). The packing
// header is NOT authenticated: an attacker can re-split a packed frame
// into different sub-sizes of the same total, but cannot alter, reorder
// or splice the decrypted bytes themselves.
type Secure struct {
	// Key is the pre-shared master key (any non-zero length; it is
	// hashed, not used directly).
	Key []byte
	// Local and Remote identify the endpoints; with the ports they bind
	// the derived traffic keys to the connection identification and
	// separate the two directions.
	Local, Remote         []byte
	LocalPort, RemotePort uint16
	// NonceLimit caps the per-epoch counter (0 means a safe default).
	// Reaching it makes Seal fail terminally with ErrNonceExhausted.
	NonceLimit uint64

	nonce header.Handle // ProtoSpec: predicted send counter
	enc   header.Handle // MsgSpec: sealed flag
	tag   header.Handle // MsgSpec: GCM tag blob
	epoch header.Handle // Gossip: key generation

	order        bits.ByteOrder
	pSend, pRecv [header.NumClasses][]byte
	protoN, msgN int
	gosN         int
	tagOff       int // tag's byte offset inside the MsgSpec region
	primed       bool
	terminal     error

	// Send direction: current epoch, counter and key.
	sendEpoch uint16
	sendCtr   uint64
	sendAEAD  cipher.AEAD
	sendSalt  [4]byte
	// Retired send epoch, derived on demand when Reseal meets a frame
	// sealed before a rekey (one generation cached).
	oldSendEpoch uint16
	oldSendAEAD  cipher.AEAD
	oldSendSalt  [4]byte

	// Receive direction: current epoch plus one previous for stragglers,
	// and a candidate being auditioned (serially newer epoch seen on the
	// wire, adopted once a frame authenticates under it).
	recvEpoch     uint16
	recvAEAD      cipher.AEAD
	recvSalt      [4]byte
	prevRecvEpoch uint16
	prevRecvAEAD  cipher.AEAD
	prevRecvSalt  [4]byte
	candEpoch     uint16
	candAEAD      cipher.AEAD
	candSalt      [4]byte

	// Scratches sized once and reused: seal/open output (payload+tag),
	// the additional authenticated data, and the 12-byte GCM nonce.
	sealBuf  []byte
	aadBuf   []byte
	nonceBuf [12]byte

	stats SecureStats

	tel       *telemetry.Recorder
	telCookie uint64
}

// SecureStats counts the layer's activity.
type SecureStats struct {
	Sealed    uint64 // frames encrypted (incl. control frames)
	Opened    uint64 // frames verified and decrypted
	AuthFails uint64 // frames dropped: bad tag, unknown epoch, or unsealed
	Rekeys    uint64 // send-epoch bumps (session resumptions)
	Adoptions uint64 // receive-epoch adoptions (peer rekeys observed)
	Reseals   uint64 // replayed frames re-sealed under a newer epoch

	SendEpoch, RecvEpoch uint16
}

// NewSecure returns an encryption layer for the given pre-shared key and
// connection identity.
func NewSecure(key, local, remote []byte, localPort, remotePort uint16) *Secure {
	return &Secure{
		Key: key, Local: local, Remote: remote,
		LocalPort: localPort, RemotePort: remotePort,
	}
}

// Name implements stack.Layer.
func (s *Secure) Name() string { return "secure" }

// Init implements stack.Layer: it registers the four fields and programs
// both packet filters. The filter programs are a single instruction each —
// all crypto state lives behind the engine's AEAD hook, keeping the VM's
// "simple language" property (§3.3) intact.
func (s *Secure) Init(ic *stack.InitContext) error {
	if len(s.Key) == 0 {
		return fmt.Errorf("layers: secure: empty key")
	}
	var err error
	if s.nonce, err = ic.Schema.AddField(header.ProtoSpec, s.Name(), "nonce", 64, header.DontCare); err != nil {
		return err
	}
	if s.enc, err = ic.Schema.AddField(header.MsgSpec, s.Name(), "enc", 1, header.DontCare); err != nil {
		return err
	}
	if s.tag, err = ic.Schema.AddBytes(header.MsgSpec, s.Name(), "tag", gcmTagLen); err != nil {
		return err
	}
	if s.epoch, err = ic.Schema.AddField(header.Gossip, s.Name(), "epoch", 16, header.DontCare); err != nil {
		return err
	}
	ic.SendFilter.Seal(s.tag)
	ic.RecvFilter.Open(s.tag)
	return nil
}

// Prime implements stack.Layer: derive the epoch-1 traffic keys and prime
// the predictions — the sealed flag and epoch travel on every message, and
// the first nonce is 0.
func (s *Secure) Prime(ctx *stack.Context) {
	s.order = ctx.Order
	s.pSend = ctx.PredictSend
	s.pRecv = ctx.PredictRecv
	s.protoN = len(ctx.PredictSend[header.ProtoSpec])
	s.msgN = len(ctx.PredictSend[header.MsgSpec])
	s.gosN = len(ctx.PredictSend[header.Gossip])
	s.tagOff = s.tag.Offset() / 8

	s.sendEpoch, s.sendCtr = 1, 0
	s.sendAEAD, s.sendSalt = s.derive(1, s.Local, s.LocalPort, s.Remote, s.RemotePort)
	s.recvEpoch = 1
	s.recvAEAD, s.recvSalt = s.derive(1, s.Remote, s.RemotePort, s.Local, s.LocalPort)

	s.enc.Write(s.pSend[header.MsgSpec], s.order, 1)
	s.epoch.Write(s.pSend[header.Gossip], s.order, uint64(s.sendEpoch))
	s.nonce.Write(s.pSend[header.ProtoSpec], s.order, 0)
	s.enc.Write(s.pRecv[header.MsgSpec], s.order, 1)
	s.epoch.Write(s.pRecv[header.Gossip], s.order, uint64(s.recvEpoch))
	s.nonce.Write(s.pRecv[header.ProtoSpec], s.order, 0)
	s.primed = true
}

// PreSend implements stack.Layer. It is deliberately a no-op: sealing on
// the slow path happens through the send packet filter too (SendControl
// runs the full filter over every layer-generated message, and the only
// Slow verdict in the canonical stack — frag's oversize guard — consumes
// the original), so a pre-phase seal would double-encrypt fragments.
func (s *Secure) PreSend(*stack.Context, *message.Msg) stack.Verdict { return stack.Continue }

// PostSend mirrors the prediction updates the filter's Seal made: the
// next counter value and the current epoch.
func (s *Secure) PostSend(*stack.Context, *message.Msg) {
	s.nonce.Write(s.pSend[header.ProtoSpec], s.order, s.sendCtr)
	s.epoch.Write(s.pSend[header.Gossip], s.order, uint64(s.sendEpoch))
}

// PreDeliver implements stack.Layer. A no-op like PreSend: the delivery
// packet filter's Open runs on every incoming frame before the verdict
// phases, so by the time any pre-deliver phase sees the message the
// payload is already verified plaintext.
func (s *Secure) PreDeliver(*stack.Context, *message.Msg) stack.Verdict { return stack.Continue }

// PostDeliver predicts the peer's next nonce from the frame just
// delivered. Control frames burn counters without passing through here
// (they are consumed below this layer), so a gap costs one slow-path
// delivery and the prediction self-heals on the next data frame.
func (s *Secure) PostDeliver(ctx *stack.Context, _ *message.Msg) {
	if ctx.Env == nil || len(ctx.Env.Hdr[header.ProtoSpec]) == 0 {
		return
	}
	n := s.nonce.Read(ctx.Env.Hdr[header.ProtoSpec], ctx.Env.Order)
	s.nonce.Write(s.pRecv[header.ProtoSpec], s.order, n+1)
}

// TemplateStampable declares the layer's fields filter-written (the tag)
// or identical across group members (flag, epoch, nonce predictions).
// In practice core.Fanout detects the predicted sealed flag and routes
// secure stacks through per-member sends — each member's ciphertext is
// different — but the declaration keeps template builds safe for stacks
// that share this layer's schema without its keys.
func (s *Secure) TemplateStampable() bool { return true }

// SetTelemetry implements the engine's structural telemetry hookup.
func (s *Secure) SetTelemetry(r *telemetry.Recorder, cookie uint64, _ uint32) {
	s.tel = r
	s.telCookie = cookie
}

// Stats returns a snapshot of the layer's counters. Like all layer state
// it is maintained under the connection lock; snapshot while quiesced.
func (s *Secure) Stats() SecureStats {
	st := s.stats
	st.SendEpoch, st.RecvEpoch = s.sendEpoch, s.recvEpoch
	return st
}

// TerminalErr reports the layer's unrecoverable failure, if any. The
// engine checks it when a send fails and hard-fails the connection,
// bypassing recovery.
func (s *Secure) TerminalErr() error { return s.terminal }

// Resume implements stack.Resumer: rekey the send direction. The layer
// sits above the window layer, so by the time the window replays its
// unacked frames the new epoch is live and the engine's Reseal hook
// re-seals them under it — recovery, address migration and crypto state
// move in one step.
func (s *Secure) Resume() {
	if !s.primed || s.terminal != nil {
		return
	}
	s.sendEpoch++
	s.sendCtr = 0
	s.sendAEAD, s.sendSalt = s.derive(s.sendEpoch, s.Local, s.LocalPort, s.Remote, s.RemotePort)
	s.epoch.Write(s.pSend[header.Gossip], s.order, uint64(s.sendEpoch))
	s.nonce.Write(s.pSend[header.ProtoSpec], s.order, 0)
	s.stats.Rekeys++
	s.tel.Event(telemetry.EventResume, s.telCookie,
		fmt.Sprintf("rekey: send epoch %d", s.sendEpoch))
}

// Seal implements filter.AEAD for the send filter's Seal op: stamp the
// counter, epoch and sealed flag, then encrypt the payload in place and
// write the tag. Runs for every outgoing frame, fast and slow path alike.
func (s *Secure) Seal(env *filter.Env, tagH header.Handle) int {
	if s.terminal != nil {
		return filter.StatusFault
	}
	if s.sendCtr >= s.limit() {
		s.terminal = ErrNonceExhausted
		return filter.StatusFault
	}
	ctr := s.sendCtr
	s.sendCtr++
	proto := env.Hdr[header.ProtoSpec]
	msg := env.Hdr[header.MsgSpec]
	gos := env.Hdr[header.Gossip]
	s.nonce.Write(proto, env.Order, ctr)
	s.epoch.Write(gos, env.Order, uint64(s.sendEpoch))
	s.enc.Write(msg, env.Order, 1)
	s.sealRaw(s.sendAEAD, s.sendSalt, ctr, proto, msg, gos, env.Payload, tagH.Bytes(msg))
	s.stats.Sealed++
	return filter.StatusOK
}

// Open implements filter.AEAD for the delivery filter's Open op: select
// the key by the frame's epoch, verify the tag and decrypt in place.
// Serially newer epochs are auditioned and adopted on the first frame
// that authenticates; the previous epoch stays valid for stragglers.
func (s *Secure) Open(env *filter.Env, tagH header.Handle) int {
	proto := env.Hdr[header.ProtoSpec]
	msg := env.Hdr[header.MsgSpec]
	gos := env.Hdr[header.Gossip]
	if s.enc.Read(msg, env.Order) != 1 {
		s.stats.AuthFails++
		return filter.StatusDrop
	}
	ep := uint16(s.epoch.Read(gos, env.Order))
	var aead cipher.AEAD
	var salt [4]byte
	adopt := false
	switch {
	case ep == s.recvEpoch:
		aead, salt = s.recvAEAD, s.recvSalt
	case s.prevRecvAEAD != nil && ep == s.prevRecvEpoch:
		aead, salt = s.prevRecvAEAD, s.prevRecvSalt
	case epochLT(s.recvEpoch, ep):
		if s.candAEAD == nil || s.candEpoch != ep {
			s.candAEAD, s.candSalt = s.derive(ep, s.Remote, s.RemotePort, s.Local, s.LocalPort)
			s.candEpoch = ep
		}
		aead, salt, adopt = s.candAEAD, s.candSalt, true
	default: // older than the retained generations
		s.stats.AuthFails++
		return filter.StatusDrop
	}
	ctr := s.nonce.Read(proto, env.Order)
	if !s.openRaw(aead, salt, ctr, proto, msg, gos, env.Payload, tagH.Bytes(msg)) {
		s.stats.AuthFails++
		return filter.StatusDrop
	}
	if adopt {
		s.prevRecvAEAD, s.prevRecvSalt, s.prevRecvEpoch = s.recvAEAD, s.recvSalt, s.recvEpoch
		s.recvAEAD, s.recvSalt, s.recvEpoch = aead, salt, ep
		s.candAEAD = nil
		s.epoch.Write(s.pRecv[header.Gossip], s.order, uint64(ep))
		s.stats.Adoptions++
	}
	s.stats.Opened++
	return filter.StatusOK
}

// Reseal re-seals a stored frame about to be retransmitted raw (the
// window layer's replays). A frame sealed under the current epoch goes
// out unchanged — retransmitting identical bytes is nonce reuse only in
// name, the (nonce, key, plaintext) triple is unchanged. A frame sealed
// under a retired epoch is opened with the old key and sealed again
// under the current one with a fresh counter, in place: GCM ciphertext
// length equals plaintext length, so the stored clone's geometry fits.
func (s *Secure) Reseal(m *message.Msg) error {
	if s.terminal != nil {
		return s.terminal
	}
	b := m.Bytes()
	payload := m.Payload()
	hdrLen := len(b) - len(payload)
	if hdrLen < s.protoN+s.msgN+s.gosN {
		return nil // not a full frame; nothing this layer sealed
	}
	proto := b[:s.protoN]
	msg := b[s.protoN : s.protoN+s.msgN]
	gos := b[s.protoN+s.msgN : s.protoN+s.msgN+s.gosN]
	if s.enc.Read(msg, s.order) != 1 {
		return nil
	}
	ep := uint16(s.epoch.Read(gos, s.order))
	if ep == s.sendEpoch {
		return nil
	}
	var aead cipher.AEAD
	var salt [4]byte
	if s.oldSendAEAD != nil && s.oldSendEpoch == ep {
		aead, salt = s.oldSendAEAD, s.oldSendSalt
	} else {
		aead, salt = s.derive(ep, s.Local, s.LocalPort, s.Remote, s.RemotePort)
		s.oldSendAEAD, s.oldSendSalt, s.oldSendEpoch = aead, salt, ep
	}
	tag := s.tag.Bytes(msg)
	ctr := s.nonce.Read(proto, s.order)
	if !s.openRaw(aead, salt, ctr, proto, msg, gos, payload, tag) {
		return fmt.Errorf("layers: secure: reseal: stored frame fails authentication under epoch %d", ep)
	}
	if s.sendCtr >= s.limit() {
		s.terminal = ErrNonceExhausted
		return s.terminal
	}
	newCtr := s.sendCtr
	s.sendCtr++
	s.nonce.Write(proto, s.order, newCtr)
	s.epoch.Write(gos, s.order, uint64(s.sendEpoch))
	s.sealRaw(s.sendAEAD, s.sendSalt, newCtr, proto, msg, gos, payload, tag)
	s.stats.Reseals++
	return nil
}

// sealRaw encrypts payload in place and writes the tag, authenticating
// the three header regions (tag bytes zeroed in the AAD copy). The
// pooled scratches keep this allocation-free after warm-up.
func (s *Secure) sealRaw(aead cipher.AEAD, salt [4]byte, ctr uint64, proto, msg, gos, payload, tag []byte) {
	aad := s.aad(proto, msg, gos)
	copy(s.nonceBuf[:4], salt[:])
	binary.BigEndian.PutUint64(s.nonceBuf[4:], ctr)
	ct := aead.Seal(s.sealBuf[:0], s.nonceBuf[:], payload, aad)
	s.sealBuf = ct
	copy(payload, ct[:len(payload)])
	copy(tag, ct[len(payload):])
}

// openRaw verifies the tag and decrypts payload in place, reporting
// success. The ciphertext is staged in the scratch because GCM cannot
// decrypt a buffer onto itself while reading the tag from it.
func (s *Secure) openRaw(aead cipher.AEAD, salt [4]byte, ctr uint64, proto, msg, gos, payload, tag []byte) bool {
	aad := s.aad(proto, msg, gos)
	copy(s.nonceBuf[:4], salt[:])
	binary.BigEndian.PutUint64(s.nonceBuf[4:], ctr)
	ct := append(s.sealBuf[:0], payload...)
	ct = append(ct, tag...)
	s.sealBuf = ct
	_, err := aead.Open(payload[:0], s.nonceBuf[:], ct, aad)
	return err == nil
}

// aad assembles the additional authenticated data: proto ‖ gossip ‖
// msg-with-tag-zeroed. The nonce, epoch and sealed flag are all under
// the tag; only the packing header is not (see the type comment).
func (s *Secure) aad(proto, msg, gos []byte) []byte {
	buf := append(s.aadBuf[:0], proto...)
	buf = append(buf, gos...)
	base := len(buf)
	buf = append(buf, msg...)
	clear(buf[base+s.tagOff : base+s.tagOff+gcmTagLen])
	s.aadBuf = buf
	return buf
}

// derive computes one direction's traffic key and nonce salt for an
// epoch: SHA-256 over the master key, a domain label, the epoch, and the
// length-prefixed sender→receiver identity. The first 16 bytes key
// AES-128, the next 4 salt the GCM nonce (salt ‖ big-endian counter).
func (s *Secure) derive(epoch uint16, senderID []byte, senderPort uint16, recvID []byte, recvPort uint16) (cipher.AEAD, [4]byte) {
	h := sha256.New()
	var num [2]byte
	h.Write(s.Key)
	h.Write([]byte("paccel secure v1"))
	binary.BigEndian.PutUint16(num[:], epoch)
	h.Write(num[:])
	h.Write([]byte{byte(len(senderID))})
	h.Write(senderID)
	binary.BigEndian.PutUint16(num[:], senderPort)
	h.Write(num[:])
	h.Write([]byte{byte(len(recvID))})
	h.Write(recvID)
	binary.BigEndian.PutUint16(num[:], recvPort)
	h.Write(num[:])
	sum := h.Sum(nil)
	block, err := aes.NewCipher(sum[:16])
	if err != nil {
		panic(err) // unreachable: the key length is fixed
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic(err) // unreachable: standard nonce and tag sizes
	}
	var salt [4]byte
	copy(salt[:], sum[16:20])
	return aead, salt
}

func (s *Secure) limit() uint64 {
	if s.NonceLimit > 0 {
		return s.NonceLimit
	}
	return defaultNonceLimit
}

// epochLT orders epochs with serial-number arithmetic, so the 16-bit
// generation counter may wrap.
func epochLT(a, b uint16) bool { return int16(a-b) < 0 }

// Package layers provides the protocol micro-layers used by the paper's
// experiments: integrity (chksum), fragmentation (frag), a sliding window
// (window), connection identification (ident), liveness (heartbeat) and a
// latency meter (stamp). Layers are per-connection instances in canonical
// form (see package stack).
package layers

import (
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
)

// Chksum protects messages with a 16-bit length and a configurable digest
// (default: the RFC 1071 Internet checksum). Both fields are
// message-specific (§2.1), so on the fast path they are filled in by the
// send packet filter and verified by the delivery packet filter (§3.3) —
// the layer's own pre phases do identical work for the slow path, making
// the two paths byte-identical on the wire.
type Chksum struct {
	// Digest selects the digest function; zero value means the Internet
	// checksum.
	Digest filter.DigestID

	length header.Handle
	sum    header.Handle
}

// NewChksum returns an integrity layer using the Internet checksum.
func NewChksum() *Chksum { return &Chksum{Digest: filter.DigestInternet} }

// Name implements stack.Layer.
func (c *Chksum) Name() string { return "chksum" }

// Init implements stack.Layer: it registers the two message-specific
// fields and programs both packet filters.
func (c *Chksum) Init(ic *stack.InitContext) error {
	var err error
	if c.length, err = ic.Schema.AddField(header.MsgSpec, c.Name(), "len", 16, header.DontCare); err != nil {
		return err
	}
	if c.sum, err = ic.Schema.AddField(header.MsgSpec, c.Name(), "ck", 16, header.DontCare); err != nil {
		return err
	}
	// Send: len := size; ck := digest(payload).
	ic.SendFilter.PushSize()
	ic.SendFilter.PopField(c.length)
	ic.SendFilter.Digest(c.Digest)
	ic.SendFilter.PopField(c.sum)
	// Recv: drop unless len == size && ck == digest(payload).
	ic.RecvFilter.PushField(c.length)
	ic.RecvFilter.PushSize()
	ic.RecvFilter.Arith(filter.Ne)
	ic.RecvFilter.Abort(filter.StatusDrop)
	ic.RecvFilter.PushField(c.sum)
	ic.RecvFilter.Digest(c.Digest)
	ic.RecvFilter.Arith(filter.Ne)
	ic.RecvFilter.Abort(filter.StatusDrop)
	return nil
}

// Prime implements stack.Layer. Message-specific fields cannot be
// predicted (§3.2), so there is nothing to prime.
func (c *Chksum) Prime(*stack.Context) {}

// PreSend fills the fields on the slow path, mirroring the send filter.
func (c *Chksum) PreSend(ctx *stack.Context, m *message.Msg) stack.Verdict {
	hdr := ctx.Env.Hdr[header.MsgSpec]
	c.length.Write(hdr, ctx.Env.Order, uint64(len(ctx.Env.Payload)))
	fn := c.digestFunc()
	c.sum.Write(hdr, ctx.Env.Order, fn(ctx.Env.Payload))
	return stack.Continue
}

// PostSend implements stack.Layer; the layer is stateless.
func (c *Chksum) PostSend(*stack.Context, *message.Msg) {}

// PreDeliver verifies the fields on the slow path (and is the only check
// in engines without packet filters, such as the baseline).
func (c *Chksum) PreDeliver(ctx *stack.Context, m *message.Msg) stack.Verdict {
	hdr := ctx.Env.Hdr[header.MsgSpec]
	if c.length.Read(hdr, ctx.Env.Order) != uint64(len(ctx.Env.Payload)) {
		return stack.Drop
	}
	fn := c.digestFunc()
	if c.sum.Read(hdr, ctx.Env.Order) != fn(ctx.Env.Payload) {
		return stack.Drop
	}
	return stack.Continue
}

// PostDeliver implements stack.Layer; the layer is stateless.
func (c *Chksum) PostDeliver(*stack.Context, *message.Msg) {}

// TemplateStampable declares the layer safe for externally-built
// templates (core.Fanout): its fields are message-specific — the length
// and checksum digest only the payload, shared by every group member —
// and are written exclusively by the send packet filter, never
// predicted, so one filter pass over the template serves the whole
// fanout.
func (c *Chksum) TemplateStampable() bool { return true }

func (c *Chksum) digestFunc() filter.DigestFunc {
	if fn, ok := filter.DigestByID(c.Digest); ok {
		return fn
	}
	return filter.InternetChecksum
}

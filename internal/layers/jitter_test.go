package layers

import (
	"fmt"
	"testing"
	"time"
)

// beatSchedule drives one jittered heartbeat on its own virtual clock
// and returns the virtual offsets (ms since t0) of each beat over span.
func beatSchedule(t *testing.T, interval, jitter time.Duration, seed int64, span time.Duration) []int64 {
	t.Helper()
	hb := NewHeartbeat()
	hb.Interval = interval
	hb.Jitter = jitter
	hb.Seed = seed
	h := newHarness(t, hb)
	var times []int64
	beats := uint64(0)
	for elapsed := time.Duration(0); elapsed < span; elapsed += time.Millisecond {
		h.clk.Advance(time.Millisecond)
		if hb.Beats != beats {
			beats = hb.Beats
			times = append(times, h.clk.Now().Sub(t0).Milliseconds())
		}
	}
	return times
}

// TestHeartbeatJitterDesynchronizes: two connections primed at the same
// instant (the lockstep scenario: a shared partition heals, every conn
// re-arms together) must drift apart when Jitter is set, and every gap
// must stay inside [Interval, Interval+Jitter).
func TestHeartbeatJitterDesynchronizes(t *testing.T) {
	const (
		interval = 10 * time.Millisecond
		jitter   = 5 * time.Millisecond
		span     = 400 * time.Millisecond
	)
	s1 := beatSchedule(t, interval, jitter, 1, span)
	s2 := beatSchedule(t, interval, jitter, 2, span)
	if len(s1) < 10 || len(s2) < 10 {
		t.Fatalf("too few beats: %d and %d", len(s1), len(s2))
	}
	if fmt.Sprint(s1) == fmt.Sprint(s2) {
		t.Fatalf("identically-primed heartbeats stayed in lockstep: %v", s1)
	}
	for _, s := range [][]int64{s1, s2} {
		prev := int64(0)
		for _, at := range s {
			gap := at - prev
			if gap < interval.Milliseconds() || gap >= (interval+jitter).Milliseconds()+1 {
				t.Fatalf("beat gap %dms outside [%v, %v)", gap, interval, interval+jitter)
			}
			prev = at
		}
	}
}

// TestHeartbeatJitterDeterministic: a pinned Seed reproduces the exact
// beat schedule, run to run.
func TestHeartbeatJitterDeterministic(t *testing.T) {
	a := beatSchedule(t, 10*time.Millisecond, 5*time.Millisecond, 42, 200*time.Millisecond)
	b := beatSchedule(t, 10*time.Millisecond, 5*time.Millisecond, 42, 200*time.Millisecond)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
}

// TestHeartbeatJitterAutoSeed: Seed 0 draws a distinct per-instance
// seed, so even unconfigured connections do not share a schedule.
func TestHeartbeatJitterAutoSeed(t *testing.T) {
	a := beatSchedule(t, 10*time.Millisecond, 5*time.Millisecond, 0, 400*time.Millisecond)
	b := beatSchedule(t, 10*time.Millisecond, 5*time.Millisecond, 0, 400*time.Millisecond)
	if fmt.Sprint(a) == fmt.Sprint(b) {
		t.Fatalf("auto-seeded heartbeats share a schedule: %v", a)
	}
}

// TestHeartbeatNoJitterStaysExact guards the default: with Jitter unset
// the beat period is exactly Interval (existing deployments depend on
// precise keepalive spacing).
func TestHeartbeatNoJitterStaysExact(t *testing.T) {
	s := beatSchedule(t, 10*time.Millisecond, 0, 0, 100*time.Millisecond)
	if len(s) != 10 {
		t.Fatalf("beats = %d, want 10", len(s))
	}
	for i, at := range s {
		if at != int64(10*(i+1)) {
			t.Fatalf("beat %d at %dms, want %d", i, at, 10*(i+1))
		}
	}
}

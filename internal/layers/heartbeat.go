package layers

import (
	"math/rand"
	"sync/atomic"
	"time"

	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
	"paccel/internal/vclock"
)

// DefaultHeartbeatInterval is the default keepalive period.
const DefaultHeartbeatInterval = time.Second

// Heartbeat is a liveness micro-layer: it emits a small layer-generated
// message when the connection has been silent for an interval, and invokes
// OnSilence when nothing has been heard from the peer for several
// intervals. It demonstrates a second independent source of layer-
// generated messages (§3.2) and another protocol-specific bit that keeps
// control traffic off the receive fast path.
type Heartbeat struct {
	// Interval between keepalives; 0 means DefaultHeartbeatInterval.
	Interval time.Duration
	// Misses is the number of silent intervals before OnSilence fires;
	// 0 means 3.
	Misses int
	// OnSilence is called (once per silence episode, under the
	// connection lock) when the peer has been quiet too long. It must
	// not call back into the connection (Send, Close): unlike the
	// engine's OnConnFail/OnRecover callbacks, layer callbacks run
	// inside the serialized critical path.
	OnSilence func(quiet time.Duration)
	// Jitter spreads each beat: the gap between beats is Interval plus
	// a uniform draw from [0, Jitter). Thousands of connections primed
	// together (a shared partition healing, a mass reconnect) then
	// desynchronize instead of beating in lockstep forever. 0 (the
	// default) keeps exact intervals. Silence detection is unaffected:
	// it measures time since the peer was heard, not tick phase.
	Jitter time.Duration
	// Seed pins the jitter sequence for deterministic tests; 0 draws a
	// per-layer seed so distinct connections differ.
	Seed int64

	hb header.Handle // ProtoSpec: 1 iff this frame is a keepalive

	s         stack.Services
	lastHeard time.Time
	timer     vclock.Timer
	silenced  bool
	rng       *rand.Rand

	// Beats counts keepalives sent; Heard counts keepalives received.
	Beats, Heard uint64
}

// NewHeartbeat returns a keepalive layer with default timing.
func NewHeartbeat() *Heartbeat { return &Heartbeat{} }

// Name implements stack.Layer.
func (h *Heartbeat) Name() string { return "heartbeat" }

func (h *Heartbeat) interval() time.Duration {
	if h.Interval <= 0 {
		return DefaultHeartbeatInterval
	}
	return h.Interval
}

func (h *Heartbeat) misses() int {
	if h.Misses <= 0 {
		return 3
	}
	return h.Misses
}

// Init registers the keepalive bit.
func (h *Heartbeat) Init(ic *stack.InitContext) error {
	var err error
	h.hb, err = ic.Schema.AddField(header.ProtoSpec, h.Name(), "hb", 1, header.DontCare)
	return err
}

// Prime predicts non-keepalive frames and starts the interval timer.
func (h *Heartbeat) Prime(ctx *stack.Context) {
	h.s = ctx.S
	h.hb.Write(ctx.PredictSend[header.ProtoSpec], ctx.Order, 0)
	h.hb.Write(ctx.PredictRecv[header.ProtoSpec], ctx.Order, 0)
	h.lastHeard = ctx.S.Clock().Now()
	h.arm()
}

// hbSeedSeq disperses auto-drawn jitter seeds across layer instances.
var hbSeedSeq atomic.Int64

func (h *Heartbeat) arm() {
	d := h.interval()
	if h.Jitter > 0 {
		if h.rng == nil {
			seed := h.Seed
			if seed == 0 {
				seed = hbSeedSeq.Add(1) * 0x5851F42D // distinct per instance
			}
			h.rng = rand.New(rand.NewSource(seed))
		}
		d += time.Duration(h.rng.Int63n(int64(h.Jitter)))
	}
	h.timer = h.s.AfterFunc(d, h.tick)
}

func (h *Heartbeat) tick() {
	now := h.s.Clock().Now()
	quiet := now.Sub(h.lastHeard)
	if quiet >= time.Duration(h.misses())*h.interval() && !h.silenced {
		h.silenced = true
		if h.OnSilence != nil {
			h.OnSilence(quiet)
		}
	}
	h.beat()
	h.arm()
}

// beat emits one keepalive control message through the layers below.
func (h *Heartbeat) beat() {
	h.Beats++
	msg := message.New(nil)
	err := h.s.SendControl(h, msg, stack.ControlOpts{
		Build: func(env *filter.Env) {
			h.hb.Write(env.Hdr[header.ProtoSpec], env.Order, 1)
		},
	})
	if err != nil {
		msg.Free()
	}
}

// PreSend marks normal frames as non-keepalive.
func (h *Heartbeat) PreSend(ctx *stack.Context, m *message.Msg) stack.Verdict {
	h.hb.Write(ctx.Env.Hdr[header.ProtoSpec], ctx.Env.Order, 0)
	return stack.Continue
}

// PostSend implements stack.Layer.
func (h *Heartbeat) PostSend(*stack.Context, *message.Msg) {}

// PreDeliver consumes keepalives and notes liveness for every frame.
func (h *Heartbeat) PreDeliver(ctx *stack.Context, m *message.Msg) stack.Verdict {
	isHB := h.hb.Read(ctx.Env.Hdr[header.ProtoSpec], ctx.Env.Order) == 1
	ctx.S.Defer(func() {
		h.lastHeard = h.s.Clock().Now()
		h.silenced = false
		if isHB {
			h.Heard++
		}
	})
	if isHB {
		return stack.Consume
	}
	return stack.Continue
}

// PostDeliver implements stack.Layer.
func (h *Heartbeat) PostDeliver(*stack.Context, *message.Msg) {}

// Stop cancels the interval timer (connection teardown).
func (h *Heartbeat) Stop() {
	if h.timer != nil {
		h.timer.Stop()
		h.timer = nil
	}
}

// Close implements io.Closer for connection teardown.
func (h *Heartbeat) Close() error {
	h.Stop()
	return nil
}

package layers

import (
	"bytes"
	"errors"
	"testing"

	"paccel/internal/bits"
	"paccel/internal/filter"
	"paccel/internal/header"
	"paccel/internal/message"
	"paccel/internal/stack"
)

// securePair builds the two ends of an encrypted channel: mirrored
// identities, one shared master key, independent harnesses over an
// identical single-layer stack (so the schema geometry matches and a
// message sealed by one side parses on the other).
func securePair(t *testing.T) (*Secure, *Secure, *harness) {
	t.Helper()
	key := []byte("a pre-shared master key")
	a := NewSecure(key, []byte("alice"), []byte("bob"), 1, 2)
	b := NewSecure(key, []byte("bob"), []byte("alice"), 2, 1)
	ha := newHarness(t, a)
	newHarness(t, b) // primes b over an identical schema
	return a, b, ha
}

// seal runs a's send filter (the Seal op) over a fresh message.
func seal(t *testing.T, a *Secure, h *harness, payload []byte) (*message.Msg, *filter.Env) {
	t.Helper()
	m, env := h.env(payload)
	t.Cleanup(m.Free)
	env.AEAD = a
	if st := h.sendF.Run(env); st != filter.StatusOK {
		t.Fatalf("send filter status = %d", st)
	}
	return m, env
}

// open runs b's delivery filter (the Open op) over the same wire bytes.
func open(b *Secure, h *harness, env *filter.Env) int {
	env.AEAD = b
	return h.recvF.Run(env)
}

func TestSecureRoundTripOnWire(t *testing.T) {
	a, b, ha := securePair(t)
	payload := []byte("the plaintext payload")
	_, env := seal(t, a, ha, payload)
	if bytes.Equal(env.Payload, payload) {
		t.Fatal("payload not encrypted on the wire")
	}
	if st := open(b, ha, env); st != filter.StatusOK {
		t.Fatalf("open status = %d, want OK", st)
	}
	if !bytes.Equal(env.Payload, payload) {
		t.Fatalf("decrypted payload = %q, want %q", env.Payload, payload)
	}
	if a.Stats().Sealed != 1 || b.Stats().Opened != 1 {
		t.Fatalf("stats: sealed=%d opened=%d", a.Stats().Sealed, b.Stats().Opened)
	}
}

// TestSecureCounterNonces checks consecutive seals burn consecutive
// counters and decrypt independently, in any arrival order — the nonce
// travels in the protocol-specific header.
func TestSecureCounterNonces(t *testing.T) {
	a, b, ha := securePair(t)
	_, env1 := seal(t, a, ha, []byte("first"))
	_, env2 := seal(t, a, ha, []byte("second"))
	n1 := a.nonce.Read(env1.Hdr[header.ProtoSpec], env1.Order)
	n2 := a.nonce.Read(env2.Hdr[header.ProtoSpec], env2.Order)
	if n1 != 0 || n2 != 1 {
		t.Fatalf("nonces = %d, %d, want 0, 1", n1, n2)
	}
	if st := open(b, ha, env2); st != filter.StatusOK {
		t.Fatalf("open second: status %d", st)
	}
	if st := open(b, ha, env1); st != filter.StatusOK {
		t.Fatalf("open first: status %d", st)
	}
}

// TestSecureTamperDetection flips bits across every byte of the frame —
// payload, tag, nonce, sealed flag, epoch — and demands a drop each time.
func TestSecureTamperDetection(t *testing.T) {
	a, b, ha := securePair(t)
	payload := []byte("integrity matters")
	m, env := seal(t, a, ha, payload)
	frame := m.Bytes()
	pristine := append([]byte(nil), frame...)
	for i := range frame {
		for _, bit := range []byte{0x01, 0x80} {
			frame[i] ^= bit
			if st := open(b, ha, env); st != filter.StatusDrop {
				t.Fatalf("byte %d bit %#x: open status = %d, want Drop", i, bit, st)
			}
			copy(frame, pristine)
		}
	}
	if st := open(b, ha, env); st != filter.StatusOK {
		t.Fatalf("pristine frame after tamper sweep: status %d", st)
	}
	if !bytes.Equal(env.Payload, payload) {
		t.Fatalf("payload = %q, want %q", env.Payload, payload)
	}
}

// TestSecureWrongKeyDrops checks a peer holding a different master key
// cannot authenticate anything.
func TestSecureWrongKeyDrops(t *testing.T) {
	a, _, ha := securePair(t)
	c := NewSecure([]byte("a different master key"), []byte("bob"), []byte("alice"), 2, 1)
	newHarness(t, c)
	_, env := seal(t, a, ha, []byte("secret"))
	if st := open(c, ha, env); st != filter.StatusDrop {
		t.Fatalf("open under wrong key: status %d, want Drop", st)
	}
	if c.Stats().AuthFails != 1 {
		t.Fatalf("AuthFails = %d, want 1", c.Stats().AuthFails)
	}
}

// TestSecureRekeyAdoption resumes the sender (epoch bump) and checks the
// receiver adopts the new epoch on the first frame that authenticates
// under it, while still accepting a straggler from the retired epoch.
func TestSecureRekeyAdoption(t *testing.T) {
	a, b, ha := securePair(t)
	_, envOld := seal(t, a, ha, []byte("before rekey"))

	a.Resume()
	if st := a.Stats(); st.Rekeys != 1 || st.SendEpoch != 2 {
		t.Fatalf("after Resume: %+v", st)
	}
	_, envNew := seal(t, a, ha, []byte("after rekey"))
	if got := uint16(a.epoch.Read(envNew.Hdr[header.Gossip], envNew.Order)); got != 2 {
		t.Fatalf("post-rekey frame epoch = %d, want 2", got)
	}

	if st := open(b, ha, envNew); st != filter.StatusOK {
		t.Fatalf("open post-rekey frame: status %d", st)
	}
	if st := b.Stats(); st.Adoptions != 1 || st.RecvEpoch != 2 {
		t.Fatalf("receiver did not adopt: %+v", st)
	}
	// Straggler sealed under the retired epoch still authenticates.
	if st := open(b, ha, envOld); st != filter.StatusOK {
		t.Fatalf("open straggler: status %d", st)
	}
	if !bytes.Equal(envOld.Payload, []byte("before rekey")) {
		t.Fatalf("straggler payload = %q", envOld.Payload)
	}
}

// TestSecureReseal checks the retransmit path: a frame sealed before a
// rekey is re-sealed in place under the current epoch with a fresh
// counter, and the peer decrypts it.
func TestSecureReseal(t *testing.T) {
	a, b, ha := securePair(t)
	payload := []byte("replayed after rekey")
	m, env := seal(t, a, ha, payload)

	a.Resume()
	if err := a.Reseal(m); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Reseals != 1 {
		t.Fatalf("Reseals = %d, want 1", a.Stats().Reseals)
	}
	if got := uint16(a.epoch.Read(env.Hdr[header.Gossip], env.Order)); got != 2 {
		t.Fatalf("resealed frame epoch = %d, want 2", got)
	}
	if st := open(b, ha, env); st != filter.StatusOK {
		t.Fatalf("open resealed frame: status %d", st)
	}
	if !bytes.Equal(env.Payload, payload) {
		t.Fatalf("payload = %q, want %q", env.Payload, payload)
	}

	// Same-epoch reseal is a no-op: retransmitting identical bytes keeps
	// the (key, nonce, plaintext) triple unchanged.
	m2, _ := seal(t, a, ha, []byte("steady"))
	before := append([]byte(nil), m2.Bytes()...)
	if err := a.Reseal(m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m2.Bytes(), before) {
		t.Fatal("same-epoch reseal modified the frame")
	}
}

// TestSecureNonceExhaustion drives the counter into its limit and checks
// the terminal guard: Seal faults, TerminalErr reports, and Resume
// refuses to mask the failure with a rekey.
func TestSecureNonceExhaustion(t *testing.T) {
	a := NewSecure([]byte("k"), []byte("alice"), []byte("bob"), 1, 2)
	a.NonceLimit = 2
	h := newHarness(t, a)
	for i := 0; i < 2; i++ {
		seal(t, a, h, []byte("ok"))
	}
	m, env := h.env([]byte("one too many"))
	t.Cleanup(m.Free)
	env.AEAD = a
	if st := h.sendF.Run(env); st != filter.StatusFault {
		t.Fatalf("seal past limit: status %d, want Fault", st)
	}
	if !errors.Is(a.TerminalErr(), ErrNonceExhausted) {
		t.Fatalf("TerminalErr = %v", a.TerminalErr())
	}
	a.Resume()
	if st := a.Stats(); st.SendEpoch != 1 || a.TerminalErr() == nil {
		t.Fatalf("Resume masked the terminal guard: %+v", st)
	}
	if err := a.Reseal(m); !errors.Is(err, ErrNonceExhausted) {
		t.Fatalf("Reseal after exhaustion = %v", err)
	}
}

// TestSecureRejectsEmptyKey checks Init refuses a missing key — Prime
// cannot fail, so the check must happen at stack construction time.
func TestSecureRejectsEmptyKey(t *testing.T) {
	s := NewSecure(nil, []byte("a"), []byte("b"), 1, 2)
	err := s.Init(&stack.InitContext{
		Schema:     header.New(),
		SendFilter: filter.NewBuilder(),
		RecvFilter: filter.NewBuilder(),
	})
	if err == nil {
		t.Fatal("Init with empty key succeeded")
	}
}

// Fuzz scaffolding: testing.F cannot drive the *testing.T harness, so the
// pair is initialized by hand over a shared schema and filter programs.
var (
	fuzzSchema   *header.Schema
	fuzzSend     *filter.Program
	fuzzRecv     *filter.Program
	fuzzA, fuzzB *Secure
)

func fuzzInit(f *testing.F) {
	f.Helper()
	key := []byte("fuzz master key")
	fuzzA = NewSecure(key, []byte("alice"), []byte("bob"), 1, 2)
	fuzzB = NewSecure(key, []byte("bob"), []byte("alice"), 2, 1)
	// Each side gets its own stack/schema/filters; the geometries are
	// identical because the layer composition is.
	for _, s := range []*Secure{fuzzA, fuzzB} {
		schema := header.New()
		sb, rb := filter.NewBuilder(), filter.NewBuilder()
		st, err := stack.NewStack(s)
		if err != nil {
			f.Fatal(err)
		}
		if err := st.Init(&stack.InitContext{Schema: schema, SendFilter: sb, RecvFilter: rb}); err != nil {
			f.Fatal(err)
		}
		if err := schema.Compile(); err != nil {
			f.Fatal(err)
		}
		if fuzzSend, err = sb.Build(); err != nil {
			f.Fatal(err)
		}
		if fuzzRecv, err = rb.Build(); err != nil {
			f.Fatal(err)
		}
		ctx := &stack.Context{Order: bits.BigEndian}
		for c := header.Class(0); c < header.NumClasses; c++ {
			ctx.PredictSend[c] = make([]byte, schema.Size(c))
			ctx.PredictRecv[c] = make([]byte, schema.Size(c))
		}
		s.Prime(ctx)
		fuzzSchema = schema
	}
}

// fuzzSeal seals a payload with fuzzA over the hand-built schema.
func fuzzSeal(t *testing.T, payload []byte) ([]byte, *filter.Env) {
	t.Helper()
	m := message.New(payload)
	t.Cleanup(m.Free)
	env := &filter.Env{Payload: m.Payload(), Order: bits.BigEndian}
	env.Hdr[header.Gossip] = m.Push(fuzzSchema.Size(header.Gossip))
	env.Hdr[header.MsgSpec] = m.Push(fuzzSchema.Size(header.MsgSpec))
	env.Hdr[header.ProtoSpec] = m.Push(fuzzSchema.Size(header.ProtoSpec))
	env.AEAD = fuzzA
	if st := fuzzSend.Run(env); st != filter.StatusOK {
		t.Fatalf("send filter status = %d", st)
	}
	return m.Bytes(), env
}

// FuzzSecureOnWire seals real traffic and fuzzes byte corruptions across
// the frame: any change — tag, nonce, epoch, sealed flag, or ciphertext —
// must drop, and the unmodified frame must keep opening cleanly.
func FuzzSecureOnWire(f *testing.F) {
	fuzzInit(f)

	// Corpus seeded at the interesting offsets of a sealed frame: the
	// nonce (proto), the sealed flag and tag (msg), the epoch (gossip),
	// and the ciphertext, plus a pristine frame and an empty payload.
	f.Add([]byte("seed payload"), uint16(0), byte(0))     // pristine
	f.Add([]byte("seed payload"), uint16(0), byte(1))     // nonce
	f.Add([]byte("seed payload"), uint16(8), byte(0x80))  // sealed flag / tag
	f.Add([]byte("seed payload"), uint16(24), byte(0xff)) // tag tail
	f.Add([]byte("seed payload"), uint16(25), byte(2))    // epoch
	f.Add([]byte("tampered ciphertext"), uint16(30), byte(4))
	f.Add([]byte{}, uint16(5), byte(9))

	f.Fuzz(func(t *testing.T, payload []byte, idx uint16, xor byte) {
		frame, env := fuzzSeal(t, payload)
		pos := int(idx) % len(frame)
		if xor != 0 {
			frame[pos] ^= xor
		}
		env.AEAD = fuzzB
		st := fuzzRecv.Run(env)
		if xor == 0 {
			if st != filter.StatusOK {
				t.Fatalf("pristine frame dropped: status %d", st)
			}
			if !bytes.Equal(env.Payload, payload) {
				t.Fatalf("payload = %q, want %q", env.Payload, payload)
			}
		} else if st != filter.StatusDrop {
			t.Fatalf("corrupted frame (byte %d ^ %#x) not dropped: status %d", pos, xor, st)
		}
	})
}
